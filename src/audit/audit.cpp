#include "audit/audit.hpp"

#include <cinttypes>

#include "common/logging.hpp"

namespace crisp
{
namespace audit
{

using integrity::InvariantViolation;
using logging_detail::formatMessage;

void
auditStreamCounters(const StatsRegistry &stats, Cycle now,
                    std::vector<InvariantViolation> &out)
{
    for (const auto &[id, st] : stats.allStreams()) {
        const uint64_t classified =
            st.l2Hits + st.l2MshrMerges + st.dramReads;
        if (st.l2Accesses != classified) {
            out.push_back(
                {"counter-stream-identity",
                 formatMessage("stream %u: l2Accesses (%" PRIu64
                               ") != l2Hits (%" PRIu64 ") + l2MshrMerges "
                               "(%" PRIu64 ") + dramReads (%" PRIu64 ")",
                               id, st.l2Accesses, st.l2Hits,
                               st.l2MshrMerges, st.dramReads),
                 now});
        }
        if (st.l1Hits + st.l1MshrMerges > st.l1Accesses) {
            out.push_back(
                {"counter-stream-identity",
                 formatMessage("stream %u: l1Hits (%" PRIu64
                               ") + l1MshrMerges (%" PRIu64
                               ") exceed l1Accesses (%" PRIu64 ")",
                               id, st.l1Hits, st.l1MshrMerges,
                               st.l1Accesses),
                 now});
        }
        if (st.firstCycle != 0 && st.lastCycle != 0 &&
            st.firstCycle > st.lastCycle) {
            out.push_back(
                {"counter-stream-identity",
                 formatMessage("stream %u: firstCycle (%" PRIu64
                               ") after lastCycle (%" PRIu64 ")",
                               id, st.firstCycle, st.lastCycle),
                 now});
        }
    }
}

void
auditBankStreamParity(const StatsRegistry &stats, const L2Subsystem &l2,
                      Cycle now, std::vector<InvariantViolation> &out)
{
    const uint64_t stream_accesses =
        stats.sumOver(&StreamStats::l2Accesses);
    const uint64_t stream_hits = stats.sumOver(&StreamStats::l2Hits);
    if (l2.accesses() != stream_accesses) {
        out.push_back(
            {"counter-bank-parity",
             formatMessage("L2 bank accesses (%" PRIu64 " tag + %" PRIu64
                           " merged) != stream l2Accesses sum (%" PRIu64
                           ")",
                           l2.tagAccesses(), l2.mergedAccesses(),
                           stream_accesses),
             now});
    }
    if (l2.hits() != stream_hits) {
        out.push_back(
            {"counter-bank-parity",
             formatMessage("L2 bank hits (%" PRIu64
                           ") != stream l2Hits sum (%" PRIu64
                           "); a fill-time re-access would inflate the "
                           "bank side",
                           l2.hits(), stream_hits),
             now});
    }
}

void
auditL1L2Conservation(const StatsRegistry &stats,
                      const std::vector<const Sm *> &sms,
                      const L2Subsystem &l2, Cycle now,
                      SmallFlatMap<StreamId, uint64_t> &in_flight,
                      std::vector<InvariantViolation> &out)
{
    in_flight.clear();
    l2.countQueuedByStream(in_flight);
    for (const Sm *sm : sms) {
        sm->countFabricRetriesByStream(in_flight);
    }
    for (const auto &[id, st] : stats.allStreams()) {
        const uint64_t l1_misses =
            st.l1Accesses - st.l1Hits - st.l1MshrMerges;
        const auto it = in_flight.find(id);
        const uint64_t pending = it == in_flight.end() ? 0 : it->second;
        if (l1_misses != st.l2Accesses + pending) {
            out.push_back(
                {"counter-l1l2-conservation",
                 formatMessage("stream %u: L1 misses (%" PRIu64
                               ") != l2Accesses (%" PRIu64
                               ") + in flight toward L2 (%" PRIu64 ")",
                               id, l1_misses, st.l2Accesses, pending),
                 now});
        }
    }
}

void
auditL1L2Conservation(const StatsRegistry &stats,
                      const std::vector<const Sm *> &sms,
                      const L2Subsystem &l2, Cycle now,
                      std::vector<InvariantViolation> &out)
{
    SmallFlatMap<StreamId, uint64_t> scratch;
    auditL1L2Conservation(stats, sms, l2, now, scratch, out);
}

void
auditFillPairing(const StatsRegistry &stats, const L2Subsystem &l2,
                 Cycle now, std::vector<InvariantViolation> &out)
{
    const uint64_t dram_reads = stats.sumOver(&StreamStats::dramReads);
    const uint64_t pending = l2.inFlight().pendingFills;
    if (dram_reads != l2.fillsCompleted() + pending) {
        out.push_back(
            {"counter-fill-pairing",
             formatMessage("stream dramReads sum (%" PRIu64
                           ") != dram fills installed (%" PRIu64
                           ") + fills pending (%" PRIu64
                           "); a dropped fill leaves this short forever",
                           dram_reads, l2.fillsCompleted(), pending),
             now});
    }
    const uint64_t allocs = l2.mshrPrimaryAllocations();
    const uint64_t served = l2.mshrFillsServed();
    const uint64_t in_use = l2.inFlight().mshrEntries;
    if (allocs != served + in_use) {
        out.push_back(
            {"counter-fill-pairing",
             formatMessage("L2 MSHR primary allocations (%" PRIu64
                           ") != fills served (%" PRIu64
                           ") + entries in use (%" PRIu64 ")",
                           allocs, served, in_use),
             now});
    }
}

void
auditMachine(const StatsRegistry &merged,
             const std::vector<const Sm *> &sms,
             const std::vector<const L2Subsystem *> &l2s,
             const SmallFlatMap<StreamId, uint64_t> &fabric_in_flight,
             Cycle now, std::vector<InvariantViolation> &out)
{
    auditStreamCounters(merged, now, out);

    // Bank/stream parity over the union of every device's banks.
    uint64_t bank_accesses = 0;
    uint64_t bank_hits = 0;
    for (const L2Subsystem *l2 : l2s) {
        bank_accesses += l2->accesses();
        bank_hits += l2->hits();
    }
    const uint64_t stream_accesses =
        merged.sumOver(&StreamStats::l2Accesses);
    const uint64_t stream_hits = merged.sumOver(&StreamStats::l2Hits);
    if (bank_accesses != stream_accesses) {
        out.push_back(
            {"counter-bank-parity",
             formatMessage("machine L2 bank accesses (%" PRIu64
                           ") != merged stream l2Accesses sum (%" PRIu64
                           ") across %zu devices",
                           bank_accesses, stream_accesses, l2s.size()),
             now});
    }
    if (bank_hits != stream_hits) {
        out.push_back(
            {"counter-bank-parity",
             formatMessage("machine L2 bank hits (%" PRIu64
                           ") != merged stream l2Hits sum (%" PRIu64
                           ") across %zu devices",
                           bank_hits, stream_hits, l2s.size()),
             now});
    }

    // L1<->L2 conservation with the fabric as one more in-flight stage.
    SmallFlatMap<StreamId, uint64_t> in_flight;
    for (const L2Subsystem *l2 : l2s) {
        l2->countQueuedByStream(in_flight);
    }
    for (const Sm *sm : sms) {
        sm->countFabricRetriesByStream(in_flight);
    }
    for (const auto &[id, n] : fabric_in_flight) {
        in_flight[id] += n;
    }
    for (const auto &[id, st] : merged.allStreams()) {
        const uint64_t l1_misses =
            st.l1Accesses - st.l1Hits - st.l1MshrMerges;
        const auto it = in_flight.find(id);
        const uint64_t pending = it == in_flight.end() ? 0 : it->second;
        if (l1_misses != st.l2Accesses + pending) {
            out.push_back(
                {"counter-l1l2-conservation",
                 formatMessage("stream %u: machine L1 misses (%" PRIu64
                               ") != merged l2Accesses (%" PRIu64
                               ") + in flight toward any L2 (%" PRIu64 ")",
                               id, l1_misses, st.l2Accesses, pending),
                 now});
        }
    }

    // DRAM read / fill pairing over every device's DRAM.
    uint64_t fills = 0;
    uint64_t pending_fills = 0;
    uint64_t allocs = 0;
    uint64_t served = 0;
    uint64_t in_use = 0;
    for (const L2Subsystem *l2 : l2s) {
        fills += l2->fillsCompleted();
        pending_fills += l2->inFlight().pendingFills;
        allocs += l2->mshrPrimaryAllocations();
        served += l2->mshrFillsServed();
        in_use += l2->inFlight().mshrEntries;
    }
    const uint64_t dram_reads = merged.sumOver(&StreamStats::dramReads);
    if (dram_reads != fills + pending_fills) {
        out.push_back(
            {"counter-fill-pairing",
             formatMessage("merged stream dramReads sum (%" PRIu64
                           ") != machine fills installed (%" PRIu64
                           ") + fills pending (%" PRIu64 ")",
                           dram_reads, fills, pending_fills),
             now});
    }
    if (allocs != served + in_use) {
        out.push_back(
            {"counter-fill-pairing",
             formatMessage("machine L2 MSHR primary allocations (%" PRIu64
                           ") != fills served (%" PRIu64
                           ") + entries in use (%" PRIu64 ")",
                           allocs, served, in_use),
             now});
    }
}

void
auditHistogram(const Histogram &h, const char *name, Cycle now,
               std::vector<InvariantViolation> &out)
{
    if (!h.selfConsistent()) {
        uint64_t bucket_sum = 0;
        for (uint64_t b = 0; b <= h.maxTracked(); ++b) {
            bucket_sum += h.count(b);
        }
        out.push_back(
            {"counter-histogram",
             formatMessage("histogram %s: totalSamples (%" PRIu64
                           ") != bucket sum (%" PRIu64 ")",
                           name, h.totalSamples(), bucket_sum),
             now});
    }
}

void
auditAll(const StatsRegistry &stats, const std::vector<const Sm *> &sms,
         const L2Subsystem &l2, Cycle now,
         SmallFlatMap<StreamId, uint64_t> &scratch,
         std::vector<InvariantViolation> &out)
{
    auditStreamCounters(stats, now, out);
    auditBankStreamParity(stats, l2, now, out);
    auditL1L2Conservation(stats, sms, l2, now, scratch, out);
    auditFillPairing(stats, l2, now, out);
}

void
auditAll(const StatsRegistry &stats, const std::vector<const Sm *> &sms,
         const L2Subsystem &l2, Cycle now,
         std::vector<InvariantViolation> &out)
{
    SmallFlatMap<StreamId, uint64_t> scratch;
    auditAll(stats, sms, l2, now, scratch, out);
}

} // namespace audit
} // namespace crisp
