#ifndef CRISP_AUDIT_AUDIT_HPP
#define CRISP_AUDIT_AUDIT_HPP

#include <vector>

#include "common/stats.hpp"
#include "core/sm.hpp"
#include "integrity/report.hpp"
#include "mem/l2_subsystem.hpp"

namespace crisp
{

/**
 * Counter-conservation audit.
 *
 * The integrity layer (src/integrity) detects a machine that stops
 * making progress; this layer detects a machine that keeps running but
 * *counts wrong*. Every identity below holds exactly at a cycle
 * boundary, so any violation is a real accounting bug (or an injected
 * fault), never a race with in-flight work: requests that have been
 * counted on one side but not yet on the other are balanced explicitly
 * (bank queues, fabric-retry queues, pending DRAM fills).
 *
 * Checkers append integrity::InvariantViolation rows with "counter-*"
 * check names so Gpu::run folds them into the same HangReport pipeline
 * as the watchdog. Enable via integrity::RunOptions::auditInterval.
 */
namespace audit
{

/**
 * Per-stream internal identities:
 *  - l2Accesses == l2Hits + l2MshrMerges + dramReads (every L2 access
 *    is exactly one of: tag hit, merged into a pending fill, or a
 *    primary miss that reads DRAM);
 *  - l1Hits + l1MshrMerges <= l1Accesses;
 *  - firstCycle <= lastCycle when both are set.
 */
void auditStreamCounters(const StatsRegistry &stats, Cycle now,
                         std::vector<integrity::InvariantViolation> &out);

/**
 * Bank-counter sums agree with stream-counter sums:
 *  - L2Subsystem::accesses() (tag probes + MSHR merges) == sum of
 *    per-stream l2Accesses;
 *  - L2Subsystem::hits() == sum of per-stream l2Hits.
 * This is the identity the fill-time double-count broke: phantom
 * fill accesses inflated the bank side only, so hitRate() and the
 * telemetry l2.hitRate column disagreed with StreamStats::l2HitRate().
 */
void auditBankStreamParity(const StatsRegistry &stats,
                           const L2Subsystem &l2, Cycle now,
                           std::vector<integrity::InvariantViolation> &out);

/**
 * Per-stream cross-layer conservation: every L1 miss (demand accesses
 * minus hits minus MSHR merges) is either an L2 access already, queued
 * in a bank, or parked in an SM's fabric-retry queue.
 *
 * The @p scratch overload reuses the caller's flat map for the in-flight
 * tally (cleared on entry) so a periodic audit cadence does not allocate
 * per invocation; the convenience overload owns a local one.
 */
void auditL1L2Conservation(const StatsRegistry &stats,
                           const std::vector<const Sm *> &sms,
                           const L2Subsystem &l2, Cycle now,
                           SmallFlatMap<StreamId, uint64_t> &scratch,
                           std::vector<integrity::InvariantViolation> &out);
void auditL1L2Conservation(const StatsRegistry &stats,
                           const std::vector<const Sm *> &sms,
                           const L2Subsystem &l2, Cycle now,
                           std::vector<integrity::InvariantViolation> &out);

/**
 * DRAM read / fill pairing:
 *  - sum of per-stream dramReads == fills installed + fills still
 *    pending (a dropped fill breaks this forever);
 *  - L2 MSHR primary allocations == MSHR fills served + entries in use
 *    (catches double-fills and entries erased without a fill).
 */
void auditFillPairing(const StatsRegistry &stats, const L2Subsystem &l2,
                      Cycle now,
                      std::vector<integrity::InvariantViolation> &out);

/**
 * Machine-wide audit for a multi-GPU machine. Remote traffic splits one
 * stream's counters across devices — the issuing device holds the L1
 * side, the owning device holds the L2/DRAM side — so the identities
 * only close over the union: @p merged is the per-stream union of every
 * device's registry (StatsRegistry::absorbShadow or StreamStats::absorb),
 * @p sms concatenates every device's SMs, @p l2s lists every device's L2,
 * and @p fabric_in_flight counts requests still traversing the inter-GPU
 * fabric per stream (queued at a link, on the wire, or parked at the
 * destination) — the fabric's contribution to the L1↔L2 conservation
 * balance, exactly like a bank queue or an SM retry queue.
 */
void auditMachine(const StatsRegistry &merged,
                  const std::vector<const Sm *> &sms,
                  const std::vector<const L2Subsystem *> &l2s,
                  const SmallFlatMap<StreamId, uint64_t> &fabric_in_flight,
                  Cycle now,
                  std::vector<integrity::InvariantViolation> &out);

/**
 * Histogram conservation: totalSamples() == sum over buckets. @p name
 * labels the histogram in the violation detail (histograms live in
 * analyses, not in the Gpu, so callers pass theirs explicitly).
 */
void auditHistogram(const Histogram &h, const char *name, Cycle now,
                    std::vector<integrity::InvariantViolation> &out);

/**
 * Run every machine-wide audit (all of the above except histograms).
 * The @p scratch overload is for repeated-cadence callers (see
 * auditL1L2Conservation); the convenience overload owns a local scratch.
 */
void auditAll(const StatsRegistry &stats,
              const std::vector<const Sm *> &sms, const L2Subsystem &l2,
              Cycle now, SmallFlatMap<StreamId, uint64_t> &scratch,
              std::vector<integrity::InvariantViolation> &out);
void auditAll(const StatsRegistry &stats,
              const std::vector<const Sm *> &sms, const L2Subsystem &l2,
              Cycle now, std::vector<integrity::InvariantViolation> &out);

} // namespace audit
} // namespace crisp

#endif // CRISP_AUDIT_AUDIT_HPP
