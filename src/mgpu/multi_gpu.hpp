#ifndef CRISP_MGPU_MULTI_GPU_HPP
#define CRISP_MGPU_MULTI_GPU_HPP

#include <memory>
#include <vector>

#include "engine/engine_config.hpp"
#include "gpu/gpu.hpp"
#include "graphics/address_space.hpp"
#include "integrity/report.hpp"
#include "mgpu/fabric.hpp"

namespace crisp
{
namespace mgpu
{

/** Configuration of an N-device machine: per-device GPU + fabric knobs. */
struct MultiGpuConfig
{
    uint32_t numGpus = 2;

    /** Every device runs the same per-device configuration. */
    GpuConfig gpu = GpuConfig::rtx3070();

    FabricConfig fabric;

    /**
     * Static heap window per device: device d owns addresses
     * [d * windowBytes, (d+1) * windowBytes). 16 GiB keeps every
     * single-device heap convention (scene 0x1000'0000, framebuffer
     * 0x4000'0000, compute 0x8000'0000) inside device 0's window.
     */
    Addr windowBytes = 1ull << 34;

    /**
     * Stream-id stride between devices: device d allocates stream ids
     * from d * streamIdStride, so per-stream statistics keyed by id stay
     * unambiguous machine-wide (the merged registry and the Chrome trace
     * both rely on this).
     */
    StreamId streamIdStride = 32;

    /** Two/four RTX 3070-class devices over an NVLink-ish mesh. */
    static MultiGpuConfig dualRtx3070();
    static MultiGpuConfig quadRtx3070();
};

/**
 * Top level of a multi-GPU machine: owns N Gpu devices and the
 * InterGpuFabric between them, ticks them in lockstep (fabric first,
 * then devices in id order — all serial on the main thread, so the
 * per-device parallel engines keep threads 1/2/4 byte-identical), and
 * closes the conservation identities machine-wide.
 */
class MultiGpu
{
  public:
    explicit MultiGpu(const MultiGpuConfig &cfg);
    ~MultiGpu();

    uint32_t numGpus() const { return cfg_.numGpus; }
    Gpu &device(uint32_t d);
    const Gpu &device(uint32_t d) const;
    InterGpuFabric &fabric() { return *fabric_; }
    const InterGpuFabric &fabric() const { return *fabric_; }
    const MultiGpuConfig &config() const { return cfg_; }

    /** First byte of device @p d's static heap window. */
    Addr windowBase(uint32_t d) const;

    /**
     * A heap inside device @p d's window, at the same local offset the
     * single-GPU entry points use — allocate a buffer from heapFor(0)
     * and read it from a stream on device 1 to generate remote traffic.
     */
    AddressSpace heapFor(uint32_t d, Addr local_base = 0x1000'0000ull) const;

    /** Configure every device's cycle engine (before the first tick). */
    void setEngine(const engine::EngineConfig &engine);

    /** Advance the machine one cycle (fabric, then devices in id order). */
    void tick();

    /** Every device drained and no packet left on the fabric. */
    bool done() const;

    Cycle now() const { return cycle_; }

    struct RunResult
    {
        Cycle cycles = 0;
        bool completed = false;
        std::vector<integrity::InvariantViolation> violations;
    };

    /**
     * Run until done or @p max_cycles elapse. A non-zero
     * @p audit_interval runs the machine-wide counter audit at that
     * cadence (and once at the end); any violation stops the run.
     */
    RunResult run(Cycle max_cycles = ~0ull, Cycle audit_interval = 0);

    /**
     * Union of every device's per-stream statistics (disjoint stream-id
     * ranges make this a disjoint merge for local counters; remote
     * traffic genuinely splits one stream across registries, which is
     * why machine-wide identities only close on the merged view).
     */
    StatsRegistry mergedStats() const;

    /** Machine-wide conservation audit (see audit::auditMachine). */
    void audit(Cycle now,
               std::vector<integrity::InvariantViolation> &out) const;

  private:
    MultiGpuConfig cfg_;
    std::unique_ptr<InterGpuFabric> fabric_;
    std::vector<std::unique_ptr<Gpu>> devices_;
    Cycle cycle_ = 0;
};

} // namespace mgpu
} // namespace crisp

#endif // CRISP_MGPU_MULTI_GPU_HPP
