#include "mgpu/fabric.hpp"

#include <utility>

#include "common/logging.hpp"

namespace crisp
{
namespace mgpu
{

InterGpuFabric::InterGpuFabric(const FabricConfig &cfg,
                               uint32_t num_devices, Addr window_bytes)
    : cfg_(cfg), numDevices_(num_devices), windowBytes_(window_bytes)
{
    fatal_if(numDevices_ < 2, "a fabric needs at least 2 devices");
    fatal_if(windowBytes_ == 0, "device heap window must be non-zero");
    fatal_if(cfg_.linkBytesPerCycle <= 0.0,
             "link bandwidth must be positive");
    fatal_if(cfg_.requestQueueCapacity == 0,
             "request queue capacity must be non-zero");
    fatal_if(cfg_.migrateAfter != 0 && cfg_.pageBytes == 0,
             "page migration needs a non-zero page size");
    devices_.assign(numDevices_, nullptr);
    requestLinks_.reserve(numDevices_ * numDevices_);
    responseLinks_.reserve(numDevices_ * numDevices_);
    for (uint32_t i = 0; i < numDevices_ * numDevices_; ++i) {
        requestLinks_.emplace_back(cfg_);
        responseLinks_.emplace_back(cfg_);
    }
}

void
InterGpuFabric::attachDevice(uint32_t id, Gpu *gpu)
{
    fatal_if(id >= numDevices_, "device id %u out of range", id);
    fatal_if(gpu == nullptr, "attaching a null device");
    devices_[id] = gpu;
}

uint32_t
InterGpuFabric::staticOwnerOf(Addr line) const
{
    const Addr w = line / windowBytes_;
    return w >= numDevices_ ? numDevices_ - 1 : static_cast<uint32_t>(w);
}

uint32_t
InterGpuFabric::ownerOf(Addr line) const
{
    if (!pageOwner_.empty()) {
        const auto it = pageOwner_.find(line / cfg_.pageBytes);
        if (it != pageOwner_.end()) {
            return it->second;
        }
    }
    return staticOwnerOf(line);
}

InterGpuFabric::Link &
InterGpuFabric::requestLink(uint32_t src, uint32_t dst)
{
    return requestLinks_[src * numDevices_ + dst];
}

const InterGpuFabric::Link &
InterGpuFabric::requestLink(uint32_t src, uint32_t dst) const
{
    return requestLinks_[src * numDevices_ + dst];
}

InterGpuFabric::Link &
InterGpuFabric::responseLink(uint32_t src, uint32_t dst)
{
    return responseLinks_[src * numDevices_ + dst];
}

const InterGpuFabric::Link &
InterGpuFabric::responseLink(uint32_t src, uint32_t dst) const
{
    return responseLinks_[src * numDevices_ + dst];
}

uint32_t
InterGpuFabric::requestBytes(const MemRequest &req) const
{
    // A store carries its line; a load request is header-only (the line
    // comes back on the response link).
    return req.write ? cfg_.headerBytes + kLineBytes : cfg_.headerBytes;
}

bool
InterGpuFabric::submitRemote(MemRequest req, Cycle now)
{
    const uint32_t src = req.srcDevice;
    const uint32_t dst = ownerOf(req.line);
    panic_if(src >= numDevices_, "remote submit from unknown device %u",
             src);
    panic_if(src == dst, "remote submit for a locally owned line");
    Link &link = requestLink(src, dst);
    if (link.queue.size() >= cfg_.requestQueueCapacity) {
        return false;
    }
    link.queue.push_back(std::move(req));
    ++requestsAccepted_;
    if (cfg_.migrateAfter != 0) {
        recordTouch(link.queue.back(), dst, now);
    }
    return true;
}

void
InterGpuFabric::recordTouch(const MemRequest &req, uint32_t owner,
                            Cycle now)
{
    const Addr page = req.line / cfg_.pageBytes;
    const uint32_t toucher = req.srcDevice;
    if (++touches_[{page, toucher}] < cfg_.migrateAfter) {
        return;
    }
    // K-th remote touch: the page moves to the toucher. The triggering
    // request still traverses remotely (it was routed above); the bulk
    // copy is charged on the owner → toucher response wire, delaying
    // fills behind it — migration is not free bandwidth.
    pageOwner_[page] = toucher;
    touches_.erase(touches_.lower_bound({page, 0}),
                   touches_.upper_bound({page, numDevices_}));
    ++pageMigrations_;
    migratedBytes_ += cfg_.pageBytes;
    bytesTransferred_ += cfg_.pageBytes;
    responseLink(owner, toucher)
        .wire.transfer(now, static_cast<uint32_t>(cfg_.pageBytes));
    if (devices_[toucher] != nullptr) {
        devices_[toucher]->stats().stream(req.stream).pageMigrations++;
    }
}

void
InterGpuFabric::submitRemoteResponse(MemRequest resp, uint32_t from_device,
                                     Cycle now)
{
    (void)now;
    panic_if(from_device >= numDevices_ ||
                 resp.srcDevice >= numDevices_ ||
                 resp.srcDevice == from_device,
             "bad response route %u -> %u", from_device, resp.srcDevice);
    responseLink(from_device, resp.srcDevice)
        .queue.push_back(std::move(resp));
    ++responsesAccepted_;
}

void
InterGpuFabric::pump(Link &link, Cycle now)
{
    // Admit queued packets onto the wire until it is booked at least one
    // cycle ahead: sustained throughput tracks linkBytesPerCycle while
    // every admission stays deterministic and main-thread-serial.
    while (!link.queue.empty() && link.wire.backlog(now) == 0) {
        MemRequest req = std::move(link.queue.front());
        link.queue.pop_front();
        const uint32_t bytes = requestBytes(req);
        const Cycle due = link.wire.transfer(now, bytes);
        bytesTransferred_ += bytes;
        link.inFlight.push_back({std::move(req), due});
    }
}

void
InterGpuFabric::step(Cycle now)
{
    // 1. Land due request packets (wire → destination landing queue).
    for (Link &link : requestLinks_) {
        while (!link.inFlight.empty() &&
               link.inFlight.front().dueAt <= now) {
            link.landed.push_back(std::move(link.inFlight.front().req));
            link.inFlight.pop_front();
        }
    }

    // 2. Drain landing queues into destination L2s. Round-robin across
    //    source devices with a rotation start that is a pure function of
    //    the cycle, one grant per link per round — the PR-9 fairness
    //    scheme — so no source link can starve another under a saturated
    //    destination. A bank refusal blocks that link for this cycle
    //    (bank queues drain during the device tick, after this step).
    for (uint32_t dst = 0; dst < numDevices_; ++dst) {
        const uint32_t start =
            static_cast<uint32_t>(now % static_cast<Cycle>(numDevices_));
        bool progress = true;
        std::vector<bool> blocked(numDevices_, false);
        while (progress) {
            progress = false;
            for (uint32_t r = 0; r < numDevices_; ++r) {
                const uint32_t src = (start + r) % numDevices_;
                if (src == dst || blocked[src]) {
                    continue;
                }
                Link &link = requestLink(src, dst);
                if (link.landed.empty()) {
                    continue;
                }
                if (!devices_[dst]->acceptRemoteRequest(
                        link.landed.front(), now)) {
                    blocked[src] = true;
                    continue;
                }
                link.landed.pop_front();
                ++requestsDelivered_;
                progress = true;
            }
        }
    }

    // 3. Deliver due response packets straight to the requesting SM
    //    (memResponse never refuses; the L1 fill path absorbs it).
    for (Link &link : responseLinks_) {
        while (!link.inFlight.empty() &&
               link.inFlight.front().dueAt <= now) {
            MemRequest resp = std::move(link.inFlight.front().req);
            link.inFlight.pop_front();
            devices_[resp.srcDevice]->deliverRemoteResponse(resp, now);
            ++responsesDelivered_;
        }
    }

    // 4. Pump admissions onto the wires. Doing this last gives every
    //    packet at least one full cycle of queue residency, matching the
    //    submit-then-step order of the in-device bank queues.
    for (Link &link : requestLinks_) {
        pump(link, now);
    }
    for (Link &link : responseLinks_) {
        // Responses carry the full line.
        while (!link.queue.empty() && link.wire.backlog(now) == 0) {
            MemRequest resp = std::move(link.queue.front());
            link.queue.pop_front();
            const uint32_t bytes = cfg_.headerBytes + kLineBytes;
            const Cycle due = link.wire.transfer(now, bytes);
            bytesTransferred_ += bytes;
            link.inFlight.push_back({std::move(resp), due});
        }
    }
}

bool
InterGpuFabric::idle() const
{
    for (const Link &link : requestLinks_) {
        if (!link.queue.empty() || !link.inFlight.empty() ||
            !link.landed.empty()) {
            return false;
        }
    }
    for (const Link &link : responseLinks_) {
        if (!link.queue.empty() || !link.inFlight.empty()) {
            return false;
        }
    }
    return true;
}

uint64_t
InterGpuFabric::requestsInFlight() const
{
    uint64_t n = 0;
    for (const Link &link : requestLinks_) {
        n += link.queue.size() + link.inFlight.size() +
            link.landed.size();
    }
    return n;
}

uint64_t
InterGpuFabric::responsesInFlight() const
{
    uint64_t n = 0;
    for (const Link &link : responseLinks_) {
        n += link.queue.size() + link.inFlight.size();
    }
    return n;
}

void
InterGpuFabric::countInFlightByStream(
    SmallFlatMap<StreamId, uint64_t> &out) const
{
    for (const Link &link : requestLinks_) {
        for (const MemRequest &req : link.queue) {
            out[req.stream]++;
        }
        for (const Packet &p : link.inFlight) {
            out[p.req.stream]++;
        }
        for (const MemRequest &req : link.landed) {
            out[req.stream]++;
        }
    }
}

double
InterGpuFabric::totalBusyCycles() const
{
    double busy = 0.0;
    for (const Link &link : requestLinks_) {
        busy += link.wire.busyCycles();
    }
    for (const Link &link : responseLinks_) {
        busy += link.wire.busyCycles();
    }
    return busy;
}

} // namespace mgpu
} // namespace crisp
