#ifndef CRISP_MGPU_FABRIC_HPP
#define CRISP_MGPU_FABRIC_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/types.hpp"
#include "gpu/gpu.hpp"
#include "mem/icnt.hpp"
#include "mem/mem_request.hpp"

namespace crisp
{
namespace mgpu
{

/** Knobs of the inter-GPU fabric (MGSim-style peer-to-peer links). */
struct FabricConfig
{
    /** One-way link traversal latency in core cycles (NVLink-ish). */
    Cycle linkLatency = 256;

    /** Serialization bandwidth of one directed link, bytes per cycle. */
    double linkBytesPerCycle = 64.0;

    /**
     * Bounded request queue per directed link. A full queue refuses the
     * submit, so the SM parks the request in its egress retry queue and
     * backpressure propagates exactly as it does for a full L2 bank.
     */
    uint32_t requestQueueCapacity = 32;

    /**
     * Opt-in page migration: after a device touches a remote page this
     * many times, the page migrates to the toucher (its lines become
     * local) and the copy is charged as pageBytes of response-link
     * traffic. 0 disables migration (pure remote access).
     */
    uint32_t migrateAfter = 0;

    /** Migration granule in bytes. */
    uint64_t pageBytes = 4096;

    /** Header bytes of a request/response packet on the wire. */
    uint32_t headerBytes = 32;
};

/**
 * Point-to-point inter-GPU interconnect: a full mesh of directed links,
 * each with a fixed latency, a bytes-per-cycle serialization limit and a
 * bounded request queue. Requests whose line lives in another device's
 * heap window traverse src→owner, are delivered into the owner's L2, and
 * the fill returns over the owner→src response link. Landing-side
 * arbitration is round-robin across source devices with a rotation start
 * derived purely from the cycle number — the same fairness scheme as the
 * intra-GPU memory phase (Gpu::memoryPhase), one level up.
 *
 * All state is stepped serially on the main thread (between device
 * ticks), so multi-threaded SM stepping stays byte-identical.
 */
class InterGpuFabric : public RemoteMemPort
{
  public:
    /**
     * @param window_bytes size of each device's static heap window:
     *        device d owns [d * window_bytes, (d+1) * window_bytes)
     *        (the last device owns everything above its base).
     */
    InterGpuFabric(const FabricConfig &cfg, uint32_t num_devices,
                   Addr window_bytes);

    /** Wire up device @p id (not owned). All devices must be attached. */
    void attachDevice(uint32_t id, Gpu *gpu);

    // RemoteMemPort
    uint32_t ownerOf(Addr line) const override;
    bool submitRemote(MemRequest req, Cycle now) override;
    void submitRemoteResponse(MemRequest resp, uint32_t from_device,
                              Cycle now) override;

    /** Owner of @p line ignoring migration overrides. */
    uint32_t staticOwnerOf(Addr line) const;

    /**
     * Advance one cycle: land due request packets into destination L2s
     * (round-robin across source links), deliver due response packets to
     * the requesting SMs, then pump admitted packets onto the wires.
     * Must run before the device ticks of the same cycle.
     */
    void step(Cycle now);

    /** True when no packet is queued, on a wire, or parked anywhere. */
    bool idle() const;

    // --- Counters (audit + fig17) -----------------------------------------

    uint64_t requestsAccepted() const { return requestsAccepted_; }
    uint64_t requestsDelivered() const { return requestsDelivered_; }
    uint64_t responsesAccepted() const { return responsesAccepted_; }
    uint64_t responsesDelivered() const { return responsesDelivered_; }
    /** Payload + header bytes ever scheduled on any wire. */
    uint64_t bytesTransferred() const { return bytesTransferred_; }
    uint64_t pageMigrations() const { return pageMigrations_; }
    uint64_t migratedBytes() const { return migratedBytes_; }

    /** Requests not yet delivered into a destination L2. */
    uint64_t requestsInFlight() const;
    /** Responses not yet delivered back to the requesting SM. */
    uint64_t responsesInFlight() const;

    /**
     * Add every in-flight *request* to @p out per stream (queued at a
     * link, on the wire, or landed but refused by the destination L2).
     * These are L1 misses not yet counted as L2 accesses — the fabric's
     * term in the machine-wide L1↔L2 conservation identity.
     */
    void countInFlightByStream(SmallFlatMap<StreamId, uint64_t> &out) const;

    /** Busy cycles summed over every wire (utilization numerator). */
    double totalBusyCycles() const;

    const FabricConfig &config() const { return cfg_; }
    uint32_t numDevices() const { return numDevices_; }

  private:
    /** One on-the-wire packet: delivery due at @p dueAt (FIFO per link). */
    struct Packet
    {
        MemRequest req;
        Cycle dueAt = 0;
    };

    /** One directed link (either direction class). */
    struct Link
    {
        std::deque<MemRequest> queue;  ///< Admitted, awaiting bandwidth.
        std::deque<Packet> inFlight;   ///< On the wire, FIFO by dueAt.
        std::deque<MemRequest> landed; ///< Requests only: awaiting dst L2.
        IcntLink wire;

        explicit Link(const FabricConfig &cfg)
            : wire(cfg.linkBytesPerCycle, cfg.linkLatency)
        {
        }
    };

    Link &requestLink(uint32_t src, uint32_t dst);
    const Link &requestLink(uint32_t src, uint32_t dst) const;
    Link &responseLink(uint32_t src, uint32_t dst);
    const Link &responseLink(uint32_t src, uint32_t dst) const;

    uint32_t requestBytes(const MemRequest &req) const;
    void recordTouch(const MemRequest &req, uint32_t owner, Cycle now);
    void pump(Link &link, Cycle now);

    FabricConfig cfg_;
    uint32_t numDevices_;
    Addr windowBytes_;
    std::vector<Gpu *> devices_;
    /** links_[src * numDevices_ + dst]; diagonal entries stay empty. */
    std::vector<Link> requestLinks_;
    std::vector<Link> responseLinks_;

    /** Migration overrides: page number → current owner device. */
    std::map<Addr, uint32_t> pageOwner_;
    /** Remote-touch counts per (page number, touching device). */
    std::map<std::pair<Addr, uint32_t>, uint32_t> touches_;

    uint64_t requestsAccepted_ = 0;
    uint64_t requestsDelivered_ = 0;
    uint64_t responsesAccepted_ = 0;
    uint64_t responsesDelivered_ = 0;
    uint64_t bytesTransferred_ = 0;
    uint64_t pageMigrations_ = 0;
    uint64_t migratedBytes_ = 0;
};

} // namespace mgpu
} // namespace crisp

#endif // CRISP_MGPU_FABRIC_HPP
