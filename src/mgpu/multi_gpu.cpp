#include "mgpu/multi_gpu.hpp"

#include "audit/audit.hpp"
#include "common/logging.hpp"

namespace crisp
{
namespace mgpu
{

MultiGpuConfig
MultiGpuConfig::dualRtx3070()
{
    MultiGpuConfig cfg;
    cfg.numGpus = 2;
    cfg.gpu = GpuConfig::rtx3070();
    return cfg;
}

MultiGpuConfig
MultiGpuConfig::quadRtx3070()
{
    MultiGpuConfig cfg;
    cfg.numGpus = 4;
    cfg.gpu = GpuConfig::rtx3070();
    return cfg;
}

MultiGpu::MultiGpu(const MultiGpuConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg_.numGpus < 2 || cfg_.numGpus > 8,
             "MultiGpu models 2..8 devices, not %u", cfg_.numGpus);
    fatal_if(cfg_.streamIdStride == 0, "stream-id stride must be non-zero");
    fabric_ = std::make_unique<InterGpuFabric>(cfg_.fabric, cfg_.numGpus,
                                               cfg_.windowBytes);
    devices_.reserve(cfg_.numGpus);
    for (uint32_t d = 0; d < cfg_.numGpus; ++d) {
        devices_.push_back(std::make_unique<Gpu>(cfg_.gpu));
        Gpu &gpu = *devices_.back();
        gpu.setDeviceId(d);
        gpu.setStreamIdBase(d * cfg_.streamIdStride);
        gpu.setRemotePort(fabric_.get());
        fabric_->attachDevice(d, &gpu);
    }
}

MultiGpu::~MultiGpu() = default;

Gpu &
MultiGpu::device(uint32_t d)
{
    fatal_if(d >= devices_.size(), "device %u out of range", d);
    return *devices_[d];
}

const Gpu &
MultiGpu::device(uint32_t d) const
{
    fatal_if(d >= devices_.size(), "device %u out of range", d);
    return *devices_[d];
}

Addr
MultiGpu::windowBase(uint32_t d) const
{
    fatal_if(d >= cfg_.numGpus, "device %u out of range", d);
    return static_cast<Addr>(d) * cfg_.windowBytes;
}

AddressSpace
MultiGpu::heapFor(uint32_t d, Addr local_base) const
{
    fatal_if(local_base >= cfg_.windowBytes,
             "heap base beyond the device window");
    return AddressSpace(windowBase(d) + local_base);
}

void
MultiGpu::setEngine(const engine::EngineConfig &engine)
{
    for (auto &gpu : devices_) {
        gpu->setEngine(engine);
    }
}

void
MultiGpu::tick()
{
    ++cycle_;
    // Fabric first: deliveries land in bank queues / SMs before the
    // device's own memory phase and L2 step of the same cycle, mirroring
    // the submit-before-step order inside one device. Everything here is
    // main-thread serial; only SM stepping inside each device's tick is
    // sharded, so determinism is per-device and composes.
    fabric_->step(cycle_);
    for (auto &gpu : devices_) {
        gpu->tick();
    }
}

bool
MultiGpu::done() const
{
    if (!fabric_->idle()) {
        return false;
    }
    for (const auto &gpu : devices_) {
        if (!gpu->done()) {
            return false;
        }
    }
    return true;
}

MultiGpu::RunResult
MultiGpu::run(Cycle max_cycles, Cycle audit_interval)
{
    RunResult result;
    while (cycle_ < max_cycles && !done()) {
        tick();
        if (audit_interval != 0 && cycle_ % audit_interval == 0) {
            audit(cycle_, result.violations);
            if (!result.violations.empty()) {
                result.cycles = cycle_;
                return result;
            }
        }
    }
    result.cycles = cycle_;
    result.completed = done();
    if (audit_interval != 0) {
        audit(cycle_, result.violations);
        result.completed &= result.violations.empty();
    }
    return result;
}

StatsRegistry
MultiGpu::mergedStats() const
{
    StatsRegistry merged;
    for (const auto &gpu : devices_) {
        // absorbShadow mutates its source; fold a copy instead.
        StatsRegistry shadow = gpu->stats();
        merged.absorbShadow(shadow);
    }
    return merged;
}

void
MultiGpu::audit(Cycle now,
                std::vector<integrity::InvariantViolation> &out) const
{
    const StatsRegistry merged = mergedStats();
    std::vector<const Sm *> sms;
    std::vector<const L2Subsystem *> l2s;
    for (const auto &gpu : devices_) {
        const std::vector<const Sm *> dev_sms = gpu->constSms();
        sms.insert(sms.end(), dev_sms.begin(), dev_sms.end());
        l2s.push_back(&gpu->l2());
    }
    SmallFlatMap<StreamId, uint64_t> fabric_in_flight;
    fabric_->countInFlightByStream(fabric_in_flight);
    audit::auditMachine(merged, sms, l2s, fabric_in_flight, now, out);

    // Fabric conservation: every accepted packet is delivered or still
    // in flight, and migration byte accounting pairs with the count.
    using integrity::InvariantViolation;
    using logging_detail::formatMessage;
    if (fabric_->requestsAccepted() !=
        fabric_->requestsDelivered() + fabric_->requestsInFlight()) {
        out.push_back(
            {"counter-fabric-conservation",
             formatMessage("fabric requests accepted (%llu) != delivered "
                           "(%llu) + in flight (%llu)",
                           static_cast<unsigned long long>(
                               fabric_->requestsAccepted()),
                           static_cast<unsigned long long>(
                               fabric_->requestsDelivered()),
                           static_cast<unsigned long long>(
                               fabric_->requestsInFlight())),
             now});
    }
    if (fabric_->responsesAccepted() !=
        fabric_->responsesDelivered() + fabric_->responsesInFlight()) {
        out.push_back(
            {"counter-fabric-conservation",
             formatMessage("fabric responses accepted (%llu) != delivered "
                           "(%llu) + in flight (%llu)",
                           static_cast<unsigned long long>(
                               fabric_->responsesAccepted()),
                           static_cast<unsigned long long>(
                               fabric_->responsesDelivered()),
                           static_cast<unsigned long long>(
                               fabric_->responsesInFlight())),
             now});
    }
    if (fabric_->migratedBytes() !=
        fabric_->pageMigrations() * fabric_->config().pageBytes) {
        out.push_back(
            {"counter-fabric-conservation",
             formatMessage("fabric migrated bytes (%llu) != migrations "
                           "(%llu) * page size (%llu)",
                           static_cast<unsigned long long>(
                               fabric_->migratedBytes()),
                           static_cast<unsigned long long>(
                               fabric_->pageMigrations()),
                           static_cast<unsigned long long>(
                               fabric_->config().pageBytes)),
             now});
    }
    // The per-stream remote counters pair with the fabric totals: every
    // accepted request was counted remoteAccesses by its source device,
    // every delivered response was counted remoteResponses.
    const uint64_t remote_accesses =
        merged.sumOver(&StreamStats::remoteAccesses);
    if (remote_accesses != fabric_->requestsAccepted()) {
        out.push_back(
            {"counter-fabric-conservation",
             formatMessage("stream remoteAccesses sum (%llu) != fabric "
                           "requests accepted (%llu)",
                           static_cast<unsigned long long>(remote_accesses),
                           static_cast<unsigned long long>(
                               fabric_->requestsAccepted())),
             now});
    }
    const uint64_t remote_responses =
        merged.sumOver(&StreamStats::remoteResponses);
    if (remote_responses != fabric_->responsesDelivered()) {
        out.push_back(
            {"counter-fabric-conservation",
             formatMessage("stream remoteResponses sum (%llu) != fabric "
                           "responses delivered (%llu)",
                           static_cast<unsigned long long>(remote_responses),
                           static_cast<unsigned long long>(
                               fabric_->responsesDelivered())),
             now});
    }
}

} // namespace mgpu
} // namespace crisp
