#ifndef CRISP_ISA_TRACE_HPP
#define CRISP_ISA_TRACE_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace crisp
{

/** Register sentinel: "no register operand". */
inline constexpr uint8_t kNoReg = 0xff;

/**
 * One executed warp instruction in a trace.
 *
 * Matches the information Accel-Sim's SASS traces carry per instruction:
 * opcode, register operands (for dependence tracking), the active mask, and
 * per-active-thread memory addresses for loads/stores/texture samples.
 */
struct TraceInstr
{
    Opcode opcode = Opcode::MOV;
    uint8_t dst = kNoReg;
    std::array<uint8_t, 3> srcs = {kNoReg, kNoReg, kNoReg};
    uint32_t activeMask = 0xffffffffu;

    /**
     * Per-active-thread byte addresses for memory instructions, in ascending
     * lane order (entry i belongs to the i-th set bit of activeMask).
     * Empty for non-memory instructions.
     */
    std::vector<Addr> addrs;
    /** Bytes accessed per thread (memory instructions only). */
    uint8_t accessBytes = 0;
    /** Data classification for L2-composition accounting. */
    DataClass dataClass = DataClass::Unknown;

    uint32_t activeLanes() const { return __builtin_popcount(activeMask); }
    bool hasDst() const { return dst != kNoReg; }

    /** Field-wise equality (trace round-trip tests, trace_diff). */
    bool operator==(const TraceInstr &) const = default;
};

/** The ordered instruction stream of one warp. */
struct WarpTrace
{
    std::vector<TraceInstr> instrs;
    /** Number of live threads in this warp (<= kWarpSize). */
    uint32_t threadCount = kWarpSize;

    bool operator==(const WarpTrace &) const = default;
};

/** All warps of one CTA (thread block). */
struct CtaTrace
{
    std::vector<WarpTrace> warps;

    uint64_t totalInstrs() const;

    bool operator==(const CtaTrace &) const = default;
};

/** CUDA-style 3D extent. */
struct Dim3
{
    uint32_t x = 1;
    uint32_t y = 1;
    uint32_t z = 1;

    uint64_t count() const
    {
        return static_cast<uint64_t>(x) * y * z;
    }
    bool operator==(const Dim3 &) const = default;
};

/**
 * Lazily produces the trace of each CTA of a kernel.
 *
 * Full-resolution frames produce traces far too large to precompute (the
 * paper's artifact hits the same wall and samples frames); generators create
 * each CTA's instruction stream on demand, deterministically.
 */
class CtaGenerator
{
  public:
    virtual ~CtaGenerator() = default;

    /** Build the trace for linear CTA index @p cta_index (row-major). */
    virtual CtaTrace generate(uint32_t cta_index) const = 0;
};

/** Generator backed by pre-built traces (tests, small kernels). */
class VectorCtaSource : public CtaGenerator
{
  public:
    explicit VectorCtaSource(std::vector<CtaTrace> ctas)
        : ctas_(std::move(ctas))
    {
    }

    CtaTrace generate(uint32_t cta_index) const override;

    size_t size() const { return ctas_.size(); }

  private:
    std::vector<CtaTrace> ctas_;
};

/**
 * A launchable kernel: static launch parameters plus the trace source.
 *
 * Mirrors what the Accel-Sim tracer records in a kernel header: grid/CTA
 * dimensions, register and shared-memory requirements, and the stream the
 * kernel was submitted on.
 */
struct KernelInfo
{
    std::string name;
    StreamId stream = 0;
    Dim3 grid;
    Dim3 cta;
    uint32_t regsPerThread = 32;
    uint32_t smemPerCta = 0;
    /**
     * Drawcall this kernel belongs to (0 = not part of a drawcall). The
     * render pipeline assigns ids so telemetry can group a drawcall's
     * vertex- and fragment-stage kernels into one timeline span.
     */
    uint32_t drawcall = 0;
    std::shared_ptr<const CtaGenerator> source;

    uint32_t threadsPerCta() const
    {
        return static_cast<uint32_t>(cta.count());
    }
    uint32_t warpsPerCta() const
    {
        return (threadsPerCta() + kWarpSize - 1) / kWarpSize;
    }
    uint32_t numCtas() const { return static_cast<uint32_t>(grid.count()); }
};

/**
 * Coalesce a memory instruction's per-thread addresses into the set of
 * distinct 128 B cache lines it touches (deduplicated, ascending). This is
 * the access stream the L1 sees and the unit used by the paper's static
 * trace analysis (Fig 10).
 */
std::vector<Addr> coalesceToLines(const TraceInstr &instr);

/**
 * Out-param variant for hot paths: clears and refills @p out (same
 * contents and order as the returning overload) without allocating when
 * the vector's capacity already suffices.
 */
void coalesceToLines(const TraceInstr &instr, std::vector<Addr> &out);

/** Coalesce to distinct 32 B sectors instead of full lines. */
std::vector<Addr> coalesceToSectors(const TraceInstr &instr);

} // namespace crisp

#endif // CRISP_ISA_TRACE_HPP
