#include "isa/opcode.hpp"

#include "common/logging.hpp"

namespace crisp
{

namespace opcode_detail
{

void
unknownOpcode(int op)
{
    panic("unknown opcode %d", op);
}

} // namespace opcode_detail

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::FADD: return "FADD";
      case Opcode::FMUL: return "FMUL";
      case Opcode::FFMA: return "FFMA";
      case Opcode::FSETP: return "FSETP";
      case Opcode::IADD: return "IADD";
      case Opcode::IMAD: return "IMAD";
      case Opcode::ISETP: return "ISETP";
      case Opcode::LOP: return "LOP";
      case Opcode::SHF: return "SHF";
      case Opcode::MOV: return "MOV";
      case Opcode::SEL: return "SEL";
      case Opcode::MUFU_RCP: return "MUFU.RCP";
      case Opcode::MUFU_SIN: return "MUFU.SIN";
      case Opcode::MUFU_EX2: return "MUFU.EX2";
      case Opcode::MUFU_SQRT: return "MUFU.SQRT";
      case Opcode::HMMA: return "HMMA";
      case Opcode::LDG: return "LDG";
      case Opcode::STG: return "STG";
      case Opcode::LDS: return "LDS";
      case Opcode::STS: return "STS";
      case Opcode::LDC: return "LDC";
      case Opcode::TEX: return "TEX";
      case Opcode::BRA: return "BRA";
      case Opcode::BAR: return "BAR";
      case Opcode::EXIT: return "EXIT";
      default: return "???";
    }
}

} // namespace crisp
