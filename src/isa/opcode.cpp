#include "isa/opcode.hpp"

#include "common/logging.hpp"

namespace crisp
{

OpClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::FADD:
      case Opcode::FMUL:
      case Opcode::FFMA:
      case Opcode::FSETP:
        return OpClass::FP32;
      case Opcode::IADD:
      case Opcode::IMAD:
      case Opcode::ISETP:
      case Opcode::LOP:
      case Opcode::SHF:
      case Opcode::MOV:
      case Opcode::SEL:
        return OpClass::INT;
      case Opcode::MUFU_RCP:
      case Opcode::MUFU_SIN:
      case Opcode::MUFU_EX2:
      case Opcode::MUFU_SQRT:
        return OpClass::SFU;
      case Opcode::HMMA:
        return OpClass::Tensor;
      case Opcode::LDG:
      case Opcode::STG:
        return OpClass::MemGlobal;
      case Opcode::LDS:
      case Opcode::STS:
        return OpClass::MemShared;
      case Opcode::LDC:
        return OpClass::MemConst;
      case Opcode::TEX:
        return OpClass::MemTexture;
      case Opcode::BRA:
      case Opcode::EXIT:
        return OpClass::Control;
      case Opcode::BAR:
        return OpClass::Barrier;
      default:
        panic("unknown opcode %d", static_cast<int>(op));
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::FADD: return "FADD";
      case Opcode::FMUL: return "FMUL";
      case Opcode::FFMA: return "FFMA";
      case Opcode::FSETP: return "FSETP";
      case Opcode::IADD: return "IADD";
      case Opcode::IMAD: return "IMAD";
      case Opcode::ISETP: return "ISETP";
      case Opcode::LOP: return "LOP";
      case Opcode::SHF: return "SHF";
      case Opcode::MOV: return "MOV";
      case Opcode::SEL: return "SEL";
      case Opcode::MUFU_RCP: return "MUFU.RCP";
      case Opcode::MUFU_SIN: return "MUFU.SIN";
      case Opcode::MUFU_EX2: return "MUFU.EX2";
      case Opcode::MUFU_SQRT: return "MUFU.SQRT";
      case Opcode::HMMA: return "HMMA";
      case Opcode::LDG: return "LDG";
      case Opcode::STG: return "STG";
      case Opcode::LDS: return "LDS";
      case Opcode::STS: return "STS";
      case Opcode::LDC: return "LDC";
      case Opcode::TEX: return "TEX";
      case Opcode::BRA: return "BRA";
      case Opcode::BAR: return "BAR";
      case Opcode::EXIT: return "EXIT";
      default: return "???";
    }
}

bool
isMemory(Opcode op)
{
    switch (opcodeClass(op)) {
      case OpClass::MemGlobal:
      case OpClass::MemShared:
      case OpClass::MemConst:
      case OpClass::MemTexture:
        return true;
      default:
        return false;
    }
}

bool
isStore(Opcode op)
{
    return op == Opcode::STG || op == Opcode::STS;
}

} // namespace crisp
