#ifndef CRISP_ISA_TRACE_BUILDER_HPP
#define CRISP_ISA_TRACE_BUILDER_HPP

#include <vector>

#include "isa/trace.hpp"

namespace crisp
{

/**
 * Fluent helper for emitting warp traces.
 *
 * Workload generators and the shader lowering pass use this to keep
 * instruction emission readable. Register numbers are caller-managed; the
 * builder only assembles TraceInstr records.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(uint32_t thread_count = kWarpSize);

    /** Restrict subsequent instructions to the given active mask. */
    TraceBuilder &mask(uint32_t active_mask);

    /** Emit an ALU-style instruction (FP32/INT/SFU/Tensor). */
    TraceBuilder &alu(Opcode op, uint8_t dst, uint8_t s0 = kNoReg,
                      uint8_t s1 = kNoReg, uint8_t s2 = kNoReg);

    /** Emit @p count back-to-back ALU instructions forming a dep chain. */
    TraceBuilder &aluChain(Opcode op, uint8_t dst, uint8_t src,
                           uint32_t count);

    /**
     * Emit a memory instruction. @p addrs holds one address per active lane
     * in ascending lane order.
     */
    TraceBuilder &mem(Opcode op, uint8_t dst, std::vector<Addr> addrs,
                      uint8_t bytes, DataClass cls,
                      uint8_t addr_src = kNoReg);

    /** Load with a linear per-lane stride: lane i reads base + i * stride. */
    TraceBuilder &memStrided(Opcode op, uint8_t dst, Addr base,
                             uint32_t stride, uint8_t bytes, DataClass cls);

    /** All active lanes access the same address (broadcast/uniform). */
    TraceBuilder &memUniform(Opcode op, uint8_t dst, Addr addr, uint8_t bytes,
                             DataClass cls);

    /** CTA-wide barrier. */
    TraceBuilder &bar();

    /** Terminate the warp. */
    TraceBuilder &exit();

    /** Number of instructions emitted so far. */
    size_t size() const { return trace_.instrs.size(); }

    /** Take the assembled warp trace (builder resets). */
    WarpTrace take();

  private:
    WarpTrace trace_;
    uint32_t curMask_;
    uint32_t fullMask_;
};

} // namespace crisp

#endif // CRISP_ISA_TRACE_BUILDER_HPP
