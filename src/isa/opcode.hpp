#ifndef CRISP_ISA_OPCODE_HPP
#define CRISP_ISA_OPCODE_HPP

#include <cstdint>

namespace crisp
{

/**
 * SASS-like trace opcodes.
 *
 * CRISP is trace-driven: the functional frontends (the graphics pipeline and
 * the synthetic CUDA-kernel generators) emit instructions in this reduced
 * SASS-flavoured ISA, and the timing model replays them. The set mirrors the
 * opcode classes Accel-Sim's trace parser distinguishes; exact SASS encodings
 * are irrelevant to timing, only the executing unit and memory behaviour
 * matter.
 */
enum class Opcode : uint8_t
{
    // Single-precision float pipe.
    FADD,
    FMUL,
    FFMA,
    FSETP,
    // Integer pipe.
    IADD,
    IMAD,
    ISETP,
    LOP,
    SHF,
    MOV,
    SEL,
    // Special-function unit (transcendentals).
    MUFU_RCP,
    MUFU_SIN,
    MUFU_EX2,
    MUFU_SQRT,
    // Tensor core matrix-multiply-accumulate.
    HMMA,
    // Memory.
    LDG,   ///< Load from global memory.
    STG,   ///< Store to global memory.
    LDS,   ///< Load from shared memory.
    STS,   ///< Store to shared memory.
    LDC,   ///< Load from constant memory (uniform, models c[] accesses).
    TEX,   ///< Texture sample (issued to the unified L1 data cache).
    // Control.
    BRA,
    BAR,   ///< CTA-wide barrier.
    EXIT,
    NumOpcodes
};

/** Functional unit / pipeline an opcode executes on. */
enum class OpClass : uint8_t
{
    FP32,
    INT,
    SFU,
    Tensor,
    MemGlobal,
    MemShared,
    MemConst,
    MemTexture,
    Control,
    Barrier,
    NumClasses
};

/** Pipeline class for an opcode. */
OpClass opcodeClass(Opcode op);

/** Mnemonic string for tracing/debug output. */
const char *opcodeName(Opcode op);

/** True if the opcode reads or writes memory (incl. TEX). */
bool isMemory(Opcode op);

/** True if the opcode writes to global memory. */
bool isStore(Opcode op);

} // namespace crisp

#endif // CRISP_ISA_OPCODE_HPP
