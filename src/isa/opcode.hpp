#ifndef CRISP_ISA_OPCODE_HPP
#define CRISP_ISA_OPCODE_HPP

#include <cstddef>
#include <cstdint>

namespace crisp
{

/**
 * SASS-like trace opcodes.
 *
 * CRISP is trace-driven: the functional frontends (the graphics pipeline and
 * the synthetic CUDA-kernel generators) emit instructions in this reduced
 * SASS-flavoured ISA, and the timing model replays them. The set mirrors the
 * opcode classes Accel-Sim's trace parser distinguishes; exact SASS encodings
 * are irrelevant to timing, only the executing unit and memory behaviour
 * matter.
 */
enum class Opcode : uint8_t
{
    // Single-precision float pipe.
    FADD,
    FMUL,
    FFMA,
    FSETP,
    // Integer pipe.
    IADD,
    IMAD,
    ISETP,
    LOP,
    SHF,
    MOV,
    SEL,
    // Special-function unit (transcendentals).
    MUFU_RCP,
    MUFU_SIN,
    MUFU_EX2,
    MUFU_SQRT,
    // Tensor core matrix-multiply-accumulate.
    HMMA,
    // Memory.
    LDG,   ///< Load from global memory.
    STG,   ///< Store to global memory.
    LDS,   ///< Load from shared memory.
    STS,   ///< Store to shared memory.
    LDC,   ///< Load from constant memory (uniform, models c[] accesses).
    TEX,   ///< Texture sample (issued to the unified L1 data cache).
    // Control.
    BRA,
    BAR,   ///< CTA-wide barrier.
    EXIT,
    NumOpcodes
};

/** Functional unit / pipeline an opcode executes on. */
enum class OpClass : uint8_t
{
    FP32,
    INT,
    SFU,
    Tensor,
    MemGlobal,
    MemShared,
    MemConst,
    MemTexture,
    Control,
    Barrier,
    NumClasses
};

namespace opcode_detail
{
/** Out-of-range opcode: report and abort (never returns). */
[[noreturn]] void unknownOpcode(int op);

/** Opcode → pipeline class, indexed by the enum value. */
inline constexpr OpClass kClassTable[] = {
    OpClass::FP32,       // FADD
    OpClass::FP32,       // FMUL
    OpClass::FP32,       // FFMA
    OpClass::FP32,       // FSETP
    OpClass::INT,        // IADD
    OpClass::INT,        // IMAD
    OpClass::INT,        // ISETP
    OpClass::INT,        // LOP
    OpClass::INT,        // SHF
    OpClass::INT,        // MOV
    OpClass::INT,        // SEL
    OpClass::SFU,        // MUFU_RCP
    OpClass::SFU,        // MUFU_SIN
    OpClass::SFU,        // MUFU_EX2
    OpClass::SFU,        // MUFU_SQRT
    OpClass::Tensor,     // HMMA
    OpClass::MemGlobal,  // LDG
    OpClass::MemGlobal,  // STG
    OpClass::MemShared,  // LDS
    OpClass::MemShared,  // STS
    OpClass::MemConst,   // LDC
    OpClass::MemTexture, // TEX
    OpClass::Control,    // BRA
    OpClass::Barrier,    // BAR
    OpClass::Control,    // EXIT
};
static_assert(sizeof(kClassTable) / sizeof(kClassTable[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "kClassTable must cover every opcode");
} // namespace opcode_detail

/**
 * Pipeline class for an opcode. Inline table lookup: this sits on the
 * per-candidate issue path and is among the hottest calls in the profile.
 */
inline OpClass
opcodeClass(Opcode op)
{
    const auto i = static_cast<size_t>(op);
    if (i >= static_cast<size_t>(Opcode::NumOpcodes)) {
        opcode_detail::unknownOpcode(static_cast<int>(op));
    }
    return opcode_detail::kClassTable[i];
}

/** Mnemonic string for tracing/debug output. */
const char *opcodeName(Opcode op);

/** True if the opcode reads or writes memory (incl. TEX). */
inline bool
isMemory(Opcode op)
{
    switch (opcodeClass(op)) {
      case OpClass::MemGlobal:
      case OpClass::MemShared:
      case OpClass::MemConst:
      case OpClass::MemTexture:
        return true;
      default:
        return false;
    }
}

/** True if the opcode writes to global memory. */
inline bool
isStore(Opcode op)
{
    return op == Opcode::STG || op == Opcode::STS;
}

} // namespace crisp

#endif // CRISP_ISA_OPCODE_HPP
