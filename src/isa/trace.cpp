#include "isa/trace.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

uint64_t
CtaTrace::totalInstrs() const
{
    uint64_t total = 0;
    for (const auto &w : warps) {
        total += w.instrs.size();
    }
    return total;
}

CtaTrace
VectorCtaSource::generate(uint32_t cta_index) const
{
    panic_if(cta_index >= ctas_.size(), "CTA index %u out of range (%zu)",
             cta_index, ctas_.size());
    return ctas_[cta_index];
}

namespace
{

void
coalesce(const TraceInstr &instr, uint32_t granule, std::vector<Addr> &out)
{
    out.clear();
    if (instr.addrs.empty()) {
        return;
    }
    const uint32_t bytes = std::max<uint32_t>(instr.accessBytes, 1);
    out.reserve(instr.addrs.size());
    for (Addr a : instr.addrs) {
        const Addr first = a / granule;
        const Addr last = (a + bytes - 1) / granule;
        for (Addr blk = first; blk <= last; ++blk) {
            out.push_back(blk * granule);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

} // namespace

std::vector<Addr>
coalesceToLines(const TraceInstr &instr)
{
    std::vector<Addr> out;
    coalesce(instr, kLineBytes, out);
    return out;
}

void
coalesceToLines(const TraceInstr &instr, std::vector<Addr> &out)
{
    coalesce(instr, kLineBytes, out);
}

std::vector<Addr>
coalesceToSectors(const TraceInstr &instr)
{
    std::vector<Addr> out;
    coalesce(instr, kSectorBytes, out);
    return out;
}

} // namespace crisp
