#include "isa/trace_builder.hpp"

#include "common/logging.hpp"

namespace crisp
{

TraceBuilder::TraceBuilder(uint32_t thread_count)
{
    panic_if(thread_count == 0 || thread_count > kWarpSize,
             "warp thread count %u out of range", thread_count);
    trace_.threadCount = thread_count;
    fullMask_ = thread_count == kWarpSize ? 0xffffffffu
                                          : ((1u << thread_count) - 1);
    curMask_ = fullMask_;
}

TraceBuilder &
TraceBuilder::mask(uint32_t active_mask)
{
    curMask_ = active_mask & fullMask_;
    return *this;
}

TraceBuilder &
TraceBuilder::alu(Opcode op, uint8_t dst, uint8_t s0, uint8_t s1, uint8_t s2)
{
    TraceInstr in;
    in.opcode = op;
    in.dst = dst;
    in.srcs = {s0, s1, s2};
    in.activeMask = curMask_;
    trace_.instrs.push_back(std::move(in));
    return *this;
}

TraceBuilder &
TraceBuilder::aluChain(Opcode op, uint8_t dst, uint8_t src, uint32_t count)
{
    for (uint32_t i = 0; i < count; ++i) {
        // dst depends on previous dst write: serial chain.
        alu(op, dst, dst, src);
    }
    return *this;
}

TraceBuilder &
TraceBuilder::mem(Opcode op, uint8_t dst, std::vector<Addr> addrs,
                  uint8_t bytes, DataClass cls, uint8_t addr_src)
{
    panic_if(!isMemory(op), "mem() requires a memory opcode");
    const uint32_t lanes = __builtin_popcount(curMask_);
    panic_if(addrs.size() != lanes,
             "address count %zu does not match %u active lanes", addrs.size(),
             lanes);
    TraceInstr in;
    in.opcode = op;
    in.dst = isStore(op) ? kNoReg : dst;
    in.srcs = {addr_src, isStore(op) ? dst : kNoReg, kNoReg};
    in.activeMask = curMask_;
    in.addrs = std::move(addrs);
    in.accessBytes = bytes;
    in.dataClass = cls;
    trace_.instrs.push_back(std::move(in));
    return *this;
}

TraceBuilder &
TraceBuilder::memStrided(Opcode op, uint8_t dst, Addr base, uint32_t stride,
                         uint8_t bytes, DataClass cls)
{
    const uint32_t lanes = __builtin_popcount(curMask_);
    std::vector<Addr> addrs;
    addrs.reserve(lanes);
    for (uint32_t i = 0; i < lanes; ++i) {
        addrs.push_back(base + static_cast<Addr>(i) * stride);
    }
    return mem(op, dst, std::move(addrs), bytes, cls);
}

TraceBuilder &
TraceBuilder::memUniform(Opcode op, uint8_t dst, Addr addr, uint8_t bytes,
                         DataClass cls)
{
    const uint32_t lanes = __builtin_popcount(curMask_);
    return mem(op, dst, std::vector<Addr>(lanes, addr), bytes, cls);
}

TraceBuilder &
TraceBuilder::bar()
{
    TraceInstr in;
    in.opcode = Opcode::BAR;
    in.activeMask = fullMask_;
    trace_.instrs.push_back(std::move(in));
    return *this;
}

TraceBuilder &
TraceBuilder::exit()
{
    TraceInstr in;
    in.opcode = Opcode::EXIT;
    in.activeMask = fullMask_;
    trace_.instrs.push_back(std::move(in));
    return *this;
}

WarpTrace
TraceBuilder::take()
{
    WarpTrace out = std::move(trace_);
    trace_ = WarpTrace{};
    trace_.threadCount = out.threadCount;
    curMask_ = fullMask_;
    return out;
}

} // namespace crisp
