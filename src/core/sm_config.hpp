#ifndef CRISP_CORE_SM_CONFIG_HPP
#define CRISP_CORE_SM_CONFIG_HPP

#include <cstdint>

#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace crisp
{

namespace sm_config_detail
{
/** Op class with no such parameter: report and abort (never returns). */
[[noreturn]] void badOpClass(const char *what, OpClass cls);
} // namespace sm_config_detail

/** Warp scheduler policy. */
enum class SchedulerPolicy : uint8_t
{
    /** Greedy-then-oldest: keep issuing one warp until it stalls. */
    Gto,
    /** Loose round-robin: rotate the starting warp every cycle. */
    Lrr,
};

/**
 * Per-SM microarchitecture parameters (Table II row "per SM").
 *
 * Defaults follow the paper's Ampere-class configuration: 64 warp slots, 4
 * schedulers, 4 units of each execution class, 64K registers, and a unified
 * L1 data cache shared with shared memory.
 */
struct SmConfig
{
    SchedulerPolicy scheduler = SchedulerPolicy::Gto;
    uint32_t maxWarps = 64;
    uint32_t maxCtas = 32;
    uint32_t numSchedulers = 4;
    uint32_t registers = 65536;
    uint32_t smemBytes = 100 * 1024;

    /** Unified L1 data cache (texture accesses use this cache too). */
    uint64_t l1SizeBytes = 128 * 1024;
    uint32_t l1Ways = 8;
    Cycle l1HitLatency = 32;
    uint32_t l1MshrEntries = 48;
    uint32_t l1MshrTargets = 8;
    /** Line-requests the L1 can accept per cycle (LDST ports). */
    uint32_t l1PortsPerCycle = 4;
    /** In-flight memory instructions the LDST unit can queue. */
    uint32_t ldstQueueDepth = 32;
    /**
     * Upper bound on refused-request retries re-sent to the fabric per
     * cycle (0 = explicit opt-out, unbounded). Bounding the drain keeps
     * a deeply backpressured SM from spending its whole cycle flushing
     * the retry queue while fresh requests livelock behind it. With the
     * round-robin fabric arbiter interleaving SMs one request per grant
     * round, a finite cap is the sane default: 8 retries covers two
     * l1PortsPerCycle generations of refused traffic without letting one
     * SM's backlog monopolize the bank queues that drain each cycle.
     */
    uint32_t maxFabricRetriesPerCycle = 8;

    /** Execution unit counts (one pool per OpClass). */
    uint32_t fp32Units = 4;
    uint32_t intUnits = 4;
    uint32_t sfuUnits = 4;
    uint32_t tensorUnits = 4;

    /** Result latencies (cycles from issue to writeback). */
    Cycle fp32Latency = 4;
    Cycle intLatency = 4;
    Cycle sfuLatency = 21;
    Cycle tensorLatency = 16;
    Cycle smemLatency = 24;
    Cycle constLatency = 8;

    /** Initiation intervals (cycles a unit is blocked per instruction). */
    uint32_t fp32Interval = 1;
    uint32_t intInterval = 1;
    uint32_t sfuInterval = 8;
    uint32_t tensorInterval = 2;

    /** Shared memory banks for the conflict model. */
    uint32_t smemBanks = 32;

    // Inline: these sit on the per-issue hot path (one call per issued
    // instruction); the error paths live out of line in sm_config.cpp.
    uint32_t
    unitsFor(OpClass cls) const
    {
        switch (cls) {
          case OpClass::FP32: return fp32Units;
          case OpClass::INT: return intUnits;
          case OpClass::SFU: return sfuUnits;
          case OpClass::Tensor: return tensorUnits;
          default: sm_config_detail::badOpClass("execution unit pool", cls);
        }
    }
    Cycle
    latencyFor(OpClass cls) const
    {
        switch (cls) {
          case OpClass::FP32: return fp32Latency;
          case OpClass::INT: return intLatency;
          case OpClass::SFU: return sfuLatency;
          case OpClass::Tensor: return tensorLatency;
          case OpClass::MemShared: return smemLatency;
          case OpClass::MemConst: return constLatency;
          default: sm_config_detail::badOpClass("fixed latency", cls);
        }
    }
    uint32_t
    intervalFor(OpClass cls) const
    {
        switch (cls) {
          case OpClass::FP32: return fp32Interval;
          case OpClass::INT: return intInterval;
          case OpClass::SFU: return sfuInterval;
          case OpClass::Tensor: return tensorInterval;
          default: sm_config_detail::badOpClass("initiation interval", cls);
        }
    }
};

} // namespace crisp

#endif // CRISP_CORE_SM_CONFIG_HPP
