#include "core/sm_config.hpp"

#include "common/logging.hpp"

namespace crisp
{

uint32_t
SmConfig::unitsFor(OpClass cls) const
{
    switch (cls) {
      case OpClass::FP32: return fp32Units;
      case OpClass::INT: return intUnits;
      case OpClass::SFU: return sfuUnits;
      case OpClass::Tensor: return tensorUnits;
      default:
        panic("no execution unit pool for op class %d",
              static_cast<int>(cls));
    }
}

Cycle
SmConfig::latencyFor(OpClass cls) const
{
    switch (cls) {
      case OpClass::FP32: return fp32Latency;
      case OpClass::INT: return intLatency;
      case OpClass::SFU: return sfuLatency;
      case OpClass::Tensor: return tensorLatency;
      case OpClass::MemShared: return smemLatency;
      case OpClass::MemConst: return constLatency;
      default:
        panic("no fixed latency for op class %d", static_cast<int>(cls));
    }
}

uint32_t
SmConfig::intervalFor(OpClass cls) const
{
    switch (cls) {
      case OpClass::FP32: return fp32Interval;
      case OpClass::INT: return intInterval;
      case OpClass::SFU: return sfuInterval;
      case OpClass::Tensor: return tensorInterval;
      default:
        panic("no initiation interval for op class %d",
              static_cast<int>(cls));
    }
}

} // namespace crisp
