#include "core/sm_config.hpp"

#include "common/logging.hpp"

namespace crisp
{
namespace sm_config_detail
{

void
badOpClass(const char *what, OpClass cls)
{
    panic("no %s for op class %d", what, static_cast<int>(cls));
}

} // namespace sm_config_detail
} // namespace crisp
