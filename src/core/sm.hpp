#ifndef CRISP_CORE_SM_HPP
#define CRISP_CORE_SM_HPP

#include <bitset>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "core/sm_config.hpp"
#include "isa/trace.hpp"
#include "mem/cache.hpp"
#include "mem/mem_request.hpp"
#include "mem/mshr.hpp"
#include "telemetry/self_profiler.hpp"

namespace crisp
{

/** Port through which an SM injects line requests into the L2 subsystem. */
class MemFabricPort
{
  public:
    virtual ~MemFabricPort() = default;
    /** @return false when the fabric refuses the request (backpressure). */
    virtual bool submitToL2(MemRequest req, Cycle now) = 0;
};

/** Resource footprint of a CTA, used by quota and occupancy accounting. */
struct CtaFootprint
{
    uint32_t threads = 0;
    uint32_t registers = 0;
    uint32_t smemBytes = 0;
    uint32_t warps = 0;

    static CtaFootprint of(const KernelInfo &k);
};

/** Per-stream resource quota inside one SM (fine-grained partitioning). */
struct SmQuota
{
    uint32_t maxThreads = ~0u;
    uint32_t maxRegisters = ~0u;
    uint32_t maxSmemBytes = ~0u;
};

/**
 * Cycle-level Streaming Multiprocessor model.
 *
 * Replays warp traces with in-order issue per warp, a register scoreboard,
 * greedy-then-oldest (GTO) warp scheduling across numSchedulers schedulers,
 * per-class execution unit pools with initiation intervals, a shared-memory
 * bank-conflict model, barriers, and a unified L1 data cache with MSHRs in
 * front of the L2 fabric. Texture loads flow through the unified L1, per the
 * paper's Ampere model (§III).
 *
 * Resource usage is tracked per stream so the GPU-level CTA scheduler can
 * implement the fine-grained intra-SM partitioning methods.
 */
class Sm
{
  public:
    using CtaDoneHandler =
        std::function<void(uint32_t smId, StreamId stream, KernelId kernel)>;

    Sm(uint32_t sm_id, const SmConfig &cfg, MemFabricPort *fabric,
       StatsRegistry *stats);

    /**
     * Try to place one CTA of @p kernel on this SM, honoring total resources
     * and the stream's quota. @return false if it does not fit.
     */
    bool canAccept(const KernelInfo &kernel) const;

    /** Launch a CTA (caller must have checked canAccept). */
    void launchCta(const KernelInfo &kernel, KernelId kernel_id,
                   uint32_t cta_index, Cycle now);

    /** Advance the SM by one cycle. */
    void step(Cycle now);

    /**
     * Attach the telemetry self-profiler (not owned; nullptr detaches).
     * When set, the LDST drain is attributed separately from issue.
     */
    void setProfiler(telemetry::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Response from the L2 fabric for a previously submitted line. */
    void memResponse(const MemRequest &resp, Cycle now);

    /** Called when a CTA's last warp exits. */
    void setCtaDoneHandler(CtaDoneHandler handler);

    /** Per-stream intra-SM quota (fine-grained partitioning). */
    void setQuota(StreamId stream, const SmQuota &quota);
    void clearQuotas();

    /**
     * Warp-scheduler issue priority (lower issues first; default 0).
     * Async compute runs the compute queue at lower priority so graphics
     * warps keep their issue slots and compute fills the gaps.
     */
    void setIssuePriority(StreamId stream, int priority);
    void clearIssuePriorities();

    bool idle() const;
    uint32_t activeWarps() const { return activeWarps_; }
    uint32_t activeWarpsOf(StreamId stream) const;
    uint32_t activeCtas() const
    {
        return static_cast<uint32_t>(liveCtaSlots_.size());
    }
    uint32_t activeCtasOf(StreamId stream) const;
    uint32_t usedThreadsOf(StreamId stream) const;

    /** Instructions issued by this SM for @p stream (sampling phases). */
    uint64_t issuedInstrsOf(StreamId stream) const;

    uint32_t smId() const { return smId_; }
    const SmConfig &config() const { return cfg_; }

    // --- Integrity introspection ------------------------------------------

    /**
     * Occupancy plus a per-warp stall classification, sampled between
     * cycles. Feeds the watchdog's HangReport: when nothing commits, the
     * dominant stall reason per SM is the first thing a debugger wants.
     */
    struct IntegrityProbe
    {
        uint32_t activeWarps = 0;
        uint32_t activeCtas = 0;
        uint32_t atBarrier = 0;       ///< Warps parked at a CTA barrier.
        uint32_t waitScoreboard = 0;  ///< Blocked on a pending register.
        uint32_t waitExecUnit = 0;    ///< Execution unit pool busy.
        uint32_t waitSmem = 0;        ///< Shared-memory port busy.
        uint32_t waitLdst = 0;        ///< LDST queue at its stream's limit.
        uint32_t ready = 0;           ///< Could issue next cycle.
        uint64_t ldstQueueDepth = 0;
        uint64_t fabricRetryDepth = 0;
        Cycle fabricRetryMaxWait = 0; ///< Lifetime worst retry wait.
        Cycle fabricRetryOldestAge = 0; ///< Oldest parked retry's age.
        uint64_t outstandingLoads = 0;///< Load trackers awaiting data.
        uint32_t l1MshrEntries = 0;
        Addr oldestMissLine = 0;      ///< Line of the oldest L1 MSHR entry.
        Cycle oldestMissAge = 0;      ///< Its age in cycles (0 when none).
        bool issueFrozen = false;

        /** Largest stall bucket as a short label ("scoreboard", ...). */
        const char *dominantStall() const;
    };
    IntegrityProbe probe(Cycle now) const;

    /**
     * Recompute resource accounting from live CTAs and compare against the
     * incrementally tracked totals, per-stream usage and SM capacity.
     * @return false (with @p detail filled) on any mismatch.
     */
    bool auditAccounting(std::string *detail) const;

    /** Fault injection: freeze or thaw this SM's issue stage. */
    void setIssueFrozen(bool frozen) { issueFrozen_ = frozen; }
    bool issueFrozen() const { return issueFrozen_; }

    /**
     * Fault injection: skew the tracked thread count without touching any
     * CTA, modeling an accounting leak. auditAccounting() must catch it.
     */
    void skewAccountingForFaultInjection(uint32_t threads)
    {
        usedThreads_ += threads;
    }

    const Mshr &l1Mshr() const { return l1Mshr_; }
    size_t fabricRetryDepth() const { return fabricRetry_.size(); }

    /**
     * Longest time (cycles) any fabric request parked in the retry
     * queue has waited between being refused and finally accepted, over
     * the SM's whole lifetime. The round-robin fabric arbiter exists to
     * bound this; the starvation regression test pins the bound.
     */
    Cycle maxFabricRetryWait() const { return maxFabricRetryWait_; }

    /**
     * Age (cycles) of the oldest request still parked in the retry
     * queue, 0 when the queue is empty. The bounded-stall invariant
     * checks this against the arbitration-derived bound.
     */
    Cycle oldestFabricRetryAge(Cycle now) const
    {
        return fabricRetryParkedAt_.empty()
            ? 0
            : now - fabricRetryParkedAt_.front();
    }

    /**
     * Read misses parked SM-side waiting for the fabric to accept them.
     * The cross-layer conservation invariant balances L1 MSHR entries
     * against these plus the L2's in-flight reads — so parked
     * write-through stores (which hold no MSHR entry and expect no
     * response) must not be counted here.
     */
    uint64_t pendingFabricReads() const
    {
        uint64_t reads = 0;
        for (const auto &req : fabricRetry_) {
            if (req.expectsResponse()) {
                ++reads;
            }
        }
        return reads;
    }

    /**
     * True if a read for @p line is still parked in the fabric-retry
     * queue — the SM-side leg of the leak scan's is-it-orphaned test: an
     * L1 MSHR entry whose request has not even reached the L2 yet is
     * starved, not leaked.
     */
    bool fabricRetryHasLine(Addr line) const
    {
        for (const auto &req : fabricRetry_) {
            if (req.line == line && req.expectsResponse()) {
                return true;
            }
        }
        return false;
    }

    /**
     * Add each request (reads *and* write-through stores) parked in the
     * fabric-retry queue to @p out[stream]. The audit balances per-stream
     * L1 misses against L2 accesses plus requests still on their way
     * there, and a parked store has been counted as an L1 access already.
     * Takes the audit layer's reusable flat-map scratch so the
     * cadence-4096 audits allocate nothing.
     */
    void
    countFabricRetriesByStream(SmallFlatMap<StreamId, uint64_t> &out) const
    {
        for (const auto &req : fabricRetry_) {
            ++out[req.stream];
        }
    }

    // --- Fabric arbitration (grant-driven memory phase) -------------------

    /**
     * External memory phase: the owning Gpu's round-robin fabric arbiter
     * drives this SM's fabric-facing memory phase (retry queue + LDST
     * unit) through beginMemPhase()/memPhaseGrant() before stepping the
     * SMs, so step() must not run it again. Both the serial and the
     * staged engine set this; only a standalone SM (unit tests) services
     * its own queues inside step().
     */
    void setExternalMemPhase(bool external) { extMemPhase_ = external; }
    bool externalMemPhase() const { return extMemPhase_; }

    /** True while the retry queue or the LDST unit has work to submit. */
    bool hasMemPhaseWork() const
    {
        return !fabricRetry_.empty() || !ldstQueue_.empty();
    }

    /**
     * Open this SM's memory phase for cycle @p now: reload the per-cycle
     * L1 port and retry budgets and clear the blocked flags. Must be
     * called once per cycle before any memPhaseGrant().
     */
    void beginMemPhase(Cycle now);

    /**
     * One retry-stage grant: re-send the head of the fabric-retry queue
     * (FIFO). A refusal blocks the stage for the rest of the cycle —
     * bank-queue refusals are monotone within a cycle — as does the
     * per-cycle retry cap. @return true when a request was submitted;
     * false drops this SM from the arbiter's retry rotation this cycle.
     * Parked requests are the oldest traffic in the machine, so the
     * arbiter runs every SM's retry rounds before any LDST round: fresh
     * lines must not steal freed bank slots from starved retries.
     */
    bool memPhaseGrantRetry(Cycle now);

    /**
     * One LDST-stage grant: push at most one line through the LDST unit
     * (L1 hit, MSHR merge, or fabric submission; refused submissions
     * park in the retry queue). A head-of-line stall blocks the unit
     * for the rest of the cycle. @return true when a line progressed;
     * false drops this SM from the LDST rotation this cycle.
     */
    bool memPhaseGrantLdst(Cycle now);

    /**
     * One combined grant for a standalone SM servicing itself inside
     * step(): the retry stage first, then one LDST line.
     */
    bool memPhaseGrant(Cycle now)
    {
        return memPhaseGrantRetry(now) || memPhaseGrantLdst(now);
    }

    // --- Parallel cycle engine support ------------------------------------

    /**
     * Staged-fabric mode: step() runs only the SM-private stages
     * (writebacks, issue, execute) and never touches the fabric, the
     * stats registry, the profiler or the CTA-done handler — stats and
     * profiler writes go to thread-local shadows, CTA completions to a
     * per-SM list. The fabric-facing memory phase runs under the owner's
     * arbiter on the main thread BEFORE the parallel phase each cycle,
     * so the request stream seen by the L2 is identical for any thread
     * count. Toggle only while the SM has no staged work in flight.
     */
    void setStagedFabric(bool staged);
    bool stagedFabric() const { return staged_; }

    /**
     * Self-contained memory phase for a standalone staged SM (unit
     * tests): beginMemPhase() plus grants until no progress remains —
     * what an arbiter with a single SM in the rotation would do.
     */
    void stepMemory(Cycle now);

    /** Deliver CTA completions deferred by the staged step, in order. */
    void flushStagedCtaDones();

    /** Fold the staged step's shadow stats into the global registry. */
    void flushShadowStats();

    /** Fold the staged step's shadow profiler into the attached one. */
    void flushShadowProfiler();

    /**
     * Monotone count of units of work done by this SM (issues, line
     * requests, writebacks, fabric sends). The cycle engine compares it
     * across a tick to detect machine-wide idle cycles.
     */
    uint64_t workCount() const { return workCount_; }

    /**
     * Earliest future cycle (> @p now) at which this SM can do work on
     * its own: a due writeback, an execution unit or the shared-memory
     * port freeing up for a waiting warp, or an issuable warp next
     * cycle. Returns kNeverCycle when every path is blocked on memory
     * responses (the L2 side owns those wake-ups). Conservative answers
     * (too early) are always safe; the fast-forward logic takes the
     * minimum across all components.
     */
    Cycle nextWorkCycle(Cycle now) const;

    /**
     * Fast-forward bookkeeping: credit @p count skipped idle cycles to
     * the per-stream active-cycle counters, exactly as ticking through
     * them would have (streams with live warps count every cycle).
     */
    void creditIdleCycles(uint64_t count);

  private:
    struct WarpState
    {
        WarpTrace trace;
        size_t pc = 0;
        uint32_t slot = 0;
        uint32_t ctaKey = 0;
        StreamId stream = 0;
        bool live = false;
        bool atBarrier = false;
        /** Stream issue priority, cached so the scheduler order and the
         *  issue path never look it up per attempt (refreshed whenever
         *  setIssuePriority / clearIssuePriorities changes the table). */
        int prio = 0;
        bool prioStream = false;    ///< prio < 0 (LDST fast lane).
        uint32_t ldstLimit = 0;     ///< Cached ldstLimitFor(stream).
        uint64_t age = 0;           ///< Launch order for GTO.
        std::bitset<256> pendingWrites;
    };

    struct CtaState
    {
        StreamId stream = 0;
        KernelId kernel = 0;
        CtaFootprint footprint;
        uint32_t liveWarps = 0;
        uint32_t warpsAtBarrier = 0;
        std::vector<uint32_t> warpSlots;
    };

    struct LoadTracker
    {
        uint32_t warpSlot = 0;
        uint8_t reg = kNoReg;
        uint32_t remaining = 0;
        bool isTexture = false;
        bool active = false;
        /** Allocation generation; id = (gen << kTrackerIdxBits) | slot. */
        uint64_t gen = 0;
    };
    static constexpr uint32_t kTrackerIdxBits = 20;
    static constexpr uint32_t kNoSlotIndex = ~0u;

    /** An in-flight memory instruction working through the LDST unit. */
    struct LdstEntry
    {
        uint64_t tracker = 0;
        StreamId stream = 0;
        DataClass cls = DataClass::Unknown;
        bool write = false;
        bool texture = false;
        std::vector<Addr> lines;    ///< Remaining lines to inject.
    };

    bool tryIssue(WarpState &warp, Cycle now);
    void issueMemory(WarpState &warp, const TraceInstr &instr, Cycle now);
    size_t ldstLimitFor(StreamId stream) const;
    int priorityOf(StreamId stream) const;
    /** Re-derive every live warp's cached priority fields and re-sort the
     *  per-scheduler issue orders (called on priority-table changes). */
    void refreshPriorityCaches();
    void schedOrderInsert(const WarpState &warp);
    void schedOrderRemove(const WarpState &warp);
    LoadTracker *findTracker(uint64_t id);
    uint64_t allocTracker(const LoadTracker &tracker);
    void freeTracker(uint32_t idx);
    std::vector<Addr> takePooledLines();
    void recycleLines(std::vector<Addr> &&lines);
    /** Stats routing: the shadow registry inside a staged step, the
     *  shared one everywhere else (launchCta, responses run on the main
     *  thread and write the global registry directly, as before). */
    StreamStats &streamStats(StreamId stream)
    {
        return stepping_ ? shadowStats_.stream(stream)
                         : stats_->stream(stream);
    }
    void scheduleWriteback(uint32_t slot, uint8_t reg, Cycle when);
    void finishWarp(WarpState &warp, Cycle now);
    void releaseBarrier(CtaState &cta);
    /** Outcome of pushing one line through the LDST unit. */
    enum class LdstOutcome
    {
        Progress,   ///< One line left the unit (hit, merge, or fabric).
        Blocked,    ///< Head-of-line stall: no progress until next cycle.
        Idle        ///< Queue empty or L1 port budget exhausted.
    };
    LdstOutcome stepLdstOne(Cycle now);
    uint32_t smemConflictCycles(const TraceInstr &instr) const;

    uint32_t smId_;
    SmConfig cfg_;
    MemFabricPort *fabric_;
    StatsRegistry *stats_;
    CtaDoneHandler onCtaDone_;
    telemetry::SelfProfiler *profiler_ = nullptr;

    std::vector<WarpState> warps_;          // one per warp slot
    std::vector<uint32_t> freeSlots_;
    // CTA arena: states live in a slot pool whose index is the CTA key,
    // so launch/commit churn reuses slots (and each slot's warpSlots
    // capacity) instead of hashing into a node-based map.
    std::vector<CtaState> ctaPool_;
    std::vector<uint32_t> ctaFreeSlots_;
    std::vector<uint32_t> liveCtaSlots_;    // insertion order
    uint64_t warpAgeCounter_ = 0;
    uint32_t activeWarps_ = 0;
    bool issueFrozen_ = false;
    /** First quota breach observed at CTA launch (sticky; "" = none). */
    std::string quotaBreach_;

    // Aggregate and per-stream resource usage. Flat maps: an SM sees a
    // handful of streams and these sit on the per-issue path.
    uint32_t usedThreads_ = 0;
    uint32_t usedRegisters_ = 0;
    uint32_t usedSmem_ = 0;
    SmallFlatMap<StreamId, CtaFootprint> usedByStream_;
    SmallFlatMap<StreamId, SmQuota> quotas_;
    SmallFlatMap<StreamId, int> issuePriority_;
    SmallFlatMap<StreamId, uint64_t> issuedByStream_;
    /** Live-warp count per stream (drives active-cycle counting without
     *  walking the CTA table every cycle). */
    SmallFlatMap<StreamId, uint32_t> liveWarpsByStream_;

    // Per-scheduler issue order: live slots sorted by (prio, age), kept
    // incrementally so the per-cycle GTO pass is a walk, not a sort.
    std::vector<std::vector<uint32_t>> schedOrder_;
    /** Greedy pick per scheduler (kNoSlotIndex = none). */
    std::vector<uint32_t> greedySlot_;
    /** Scratch for the round-robin policy's per-cycle candidate list. */
    std::vector<uint32_t> candScratch_;

    // Execution unit pools: busy-until per unit, indexed by OpClass, plus
    // a cached pool minimum so a busy-pool rejection is one compare.
    std::vector<std::vector<Cycle>> unitFreeAt_;
    std::vector<Cycle> unitMinFree_;
    // Shared-memory port: serialized by bank conflicts, independent of the
    // ALU pipes (compute kernels heavy on shared memory do not steal issue
    // bandwidth from rendering's address math).
    Cycle smemPortFreeAt_ = 0;
    mutable std::vector<uint32_t> smemBankScratch_;
    mutable std::vector<Addr> smemSeenScratch_;

    // Pending register writebacks: min-heap of (cycle << 24 | slot << 8 |
    // reg). Same-cycle writebacks commute (each clears a distinct
    // scoreboard bit), so the heap's tie order is unobservable and the
    // per-insert node allocation of the old multimap goes away.
    std::vector<uint64_t> writebackHeap_;

    // LDST unit.
    std::deque<LdstEntry> ldstQueue_;
    /** Retired LdstEntry line buffers, reused to avoid per-issue churn. */
    std::vector<std::vector<Addr>> linePool_;
    /** Requests refused by the fabric, waiting to be re-sent. */
    std::deque<MemRequest> fabricRetry_;
    /** Park cycle of each fabricRetry_ entry (parallel deque). */
    std::deque<Cycle> fabricRetryParkedAt_;
    Cycle maxFabricRetryWait_ = 0;
    // Grant-driven memory phase: per-cycle budgets and sticky blocked
    // flags, reloaded by beginMemPhase(). A retry-head refusal blocks
    // only the retry stage (fresh lines may target other banks); an LDST
    // head-of-line stall blocks the LDST unit for the rest of the cycle.
    uint32_t memPortsLeft_ = 0;
    uint32_t memRetriesLeft_ = 0;
    bool memRetryBlocked_ = false;
    bool memLdstBlocked_ = false;
    /** Memory phase driven by the owner's arbiter, not by step(). */
    bool extMemPhase_ = false;
    // Load trackers live in a generation-checked slot pool; ids encode
    // (generation, slot) so stale MSHR keys simply fail the lookup.
    std::vector<LoadTracker> trackerPool_;
    std::vector<uint32_t> trackerFreeSlots_;
    uint64_t trackerGen_ = 0;
    uint64_t liveTrackers_ = 0;

    // Parallel cycle engine: thread-local shadows and deferred CTA
    // completions, merged by the owner in SM-id order after the barrier.
    bool staged_ = false;
    bool stepping_ = false;       ///< Inside a staged step() right now.
    std::vector<std::pair<StreamId, KernelId>> stagedCtaDones_;
    StatsRegistry shadowStats_;
    telemetry::SelfProfiler shadowProfiler_;
    uint64_t workCount_ = 0;

    // Unified L1 data cache.
    SetAssocCache l1_;
    Mshr l1Mshr_;
};

} // namespace crisp

#endif // CRISP_CORE_SM_HPP
