#include "core/sm.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "telemetry/self_profiler.hpp"

namespace crisp
{

CtaFootprint
CtaFootprint::of(const KernelInfo &k)
{
    CtaFootprint fp;
    fp.threads = k.threadsPerCta();
    fp.registers = k.threadsPerCta() * k.regsPerThread;
    fp.smemBytes = k.smemPerCta;
    fp.warps = k.warpsPerCta();
    return fp;
}

Sm::Sm(uint32_t sm_id, const SmConfig &cfg, MemFabricPort *fabric,
       StatsRegistry *stats)
    : smId_(sm_id),
      cfg_(cfg),
      fabric_(fabric),
      stats_(stats),
      l1_({cfg.l1SizeBytes, cfg.l1Ways, kLineBytes}),
      l1Mshr_(cfg.l1MshrEntries, cfg.l1MshrTargets)
{
    panic_if(fabric_ == nullptr || stats_ == nullptr,
             "SM requires a fabric port and stats registry");
    // The SM never reads hitLruPos (that field feeds the L2's TAP utility
    // monitors); skip the per-hit LRU-stack scan.
    l1_.setHitLruPosReporting(false);
    warps_.resize(cfg_.maxWarps);
    freeSlots_.reserve(cfg_.maxWarps);
    for (uint32_t s = cfg_.maxWarps; s-- > 0;) {
        freeSlots_.push_back(s);
    }
    unitFreeAt_.resize(static_cast<size_t>(OpClass::NumClasses));
    for (OpClass cls : {OpClass::FP32, OpClass::INT, OpClass::SFU,
                        OpClass::Tensor}) {
        unitFreeAt_[static_cast<size_t>(cls)].assign(cfg_.unitsFor(cls), 0);
    }
    unitMinFree_.assign(static_cast<size_t>(OpClass::NumClasses), 0);
    schedOrder_.resize(cfg_.numSchedulers);
    for (auto &order : schedOrder_) {
        order.reserve(cfg_.maxWarps / cfg_.numSchedulers + 1);
    }
    greedySlot_.assign(cfg_.numSchedulers, kNoSlotIndex);
    smemBankScratch_.assign(cfg_.smemBanks, 0);
    smemSeenScratch_.reserve(kWarpSize);
}

int
Sm::priorityOf(StreamId stream) const
{
    auto it = issuePriority_.find(stream);
    return it == issuePriority_.end() ? 0 : it->second;
}

void
Sm::refreshPriorityCaches()
{
    for (WarpState &warp : warps_) {
        if (!warp.live) {
            continue;
        }
        warp.prio = priorityOf(warp.stream);
        warp.prioStream = warp.prio < 0;
        warp.ldstLimit =
            static_cast<uint32_t>(ldstLimitFor(warp.stream));
    }
    for (auto &order : schedOrder_) {
        std::sort(order.begin(), order.end(),
                  [this](uint32_t a, uint32_t b) {
                      const WarpState &wa = warps_[a];
                      const WarpState &wb = warps_[b];
                      if (wa.prio != wb.prio) {
                          return wa.prio < wb.prio;
                      }
                      return wa.age < wb.age;
                  });
    }
}

void
Sm::schedOrderInsert(const WarpState &warp)
{
    auto &order = schedOrder_[warp.slot % cfg_.numSchedulers];
    auto pos = std::lower_bound(
        order.begin(), order.end(), warp.slot,
        [this, &warp](uint32_t slot, uint32_t) {
            const WarpState &w = warps_[slot];
            if (w.prio != warp.prio) {
                return w.prio < warp.prio;
            }
            return w.age < warp.age;
        });
    order.insert(pos, warp.slot);
}

void
Sm::schedOrderRemove(const WarpState &warp)
{
    const uint32_t sched = warp.slot % cfg_.numSchedulers;
    auto &order = schedOrder_[sched];
    auto it = std::find(order.begin(), order.end(), warp.slot);
    panic_if(it == order.end(), "warp slot %u missing from issue order",
             warp.slot);
    order.erase(it);
    if (greedySlot_[sched] == warp.slot) {
        greedySlot_[sched] = kNoSlotIndex;
    }
}

Sm::LoadTracker *
Sm::findTracker(uint64_t id)
{
    const uint64_t idx = id & ((1ull << kTrackerIdxBits) - 1);
    if (idx >= trackerPool_.size()) {
        return nullptr;
    }
    LoadTracker &t = trackerPool_[idx];
    if (!t.active || t.gen != (id >> kTrackerIdxBits)) {
        return nullptr;
    }
    return &t;
}

uint64_t
Sm::allocTracker(const LoadTracker &tracker)
{
    uint32_t idx;
    if (trackerFreeSlots_.empty()) {
        idx = static_cast<uint32_t>(trackerPool_.size());
        panic_if(idx >= (1u << kTrackerIdxBits),
                 "load tracker pool exhausted");
        trackerPool_.push_back(tracker);
    } else {
        idx = trackerFreeSlots_.back();
        trackerFreeSlots_.pop_back();
        trackerPool_[idx] = tracker;
    }
    LoadTracker &t = trackerPool_[idx];
    t.active = true;
    t.gen = ++trackerGen_;
    ++liveTrackers_;
    return (t.gen << kTrackerIdxBits) | idx;
}

void
Sm::freeTracker(uint32_t idx)
{
    trackerPool_[idx].active = false;
    trackerFreeSlots_.push_back(idx);
    --liveTrackers_;
}

std::vector<Addr>
Sm::takePooledLines()
{
    if (linePool_.empty()) {
        return {};
    }
    std::vector<Addr> lines = std::move(linePool_.back());
    linePool_.pop_back();
    lines.clear();
    return lines;
}

void
Sm::recycleLines(std::vector<Addr> &&lines)
{
    if (linePool_.size() < 64) {
        linePool_.push_back(std::move(lines));
    }
}

bool
Sm::canAccept(const KernelInfo &kernel) const
{
    const CtaFootprint fp = CtaFootprint::of(kernel);
    if (freeSlots_.size() < fp.warps || liveCtaSlots_.size() >= cfg_.maxCtas) {
        return false;
    }
    if (usedThreads_ + fp.threads > cfg_.maxWarps * kWarpSize ||
        usedRegisters_ + fp.registers > cfg_.registers ||
        usedSmem_ + fp.smemBytes > cfg_.smemBytes) {
        return false;
    }
    auto qit = quotas_.find(kernel.stream);
    if (qit != quotas_.end()) {
        const SmQuota &q = qit->second;
        CtaFootprint used;
        auto uit = usedByStream_.find(kernel.stream);
        if (uit != usedByStream_.end()) {
            used = uit->second;
        }
        if (used.threads + fp.threads > q.maxThreads ||
            used.registers + fp.registers > q.maxRegisters ||
            used.smemBytes + fp.smemBytes > q.maxSmemBytes) {
            return false;
        }
    }
    return true;
}

void
Sm::launchCta(const KernelInfo &kernel, KernelId kernel_id,
              uint32_t cta_index, Cycle now)
{
    panic_if(!canAccept(kernel), "launchCta without canAccept");
    panic_if(!kernel.source, "kernel %s has no trace source",
             kernel.name.c_str());

    CtaTrace trace = kernel.source->generate(cta_index);
    const CtaFootprint fp = CtaFootprint::of(kernel);

    // Take a CTA slot from the arena (the pool keeps each slot's
    // warpSlots capacity across kernels, so steady-state launches do not
    // allocate).
    uint32_t key;
    if (ctaFreeSlots_.empty()) {
        key = static_cast<uint32_t>(ctaPool_.size());
        ctaPool_.emplace_back();
    } else {
        key = ctaFreeSlots_.back();
        ctaFreeSlots_.pop_back();
    }
    liveCtaSlots_.push_back(key);
    CtaState &cta = ctaPool_[key];
    cta.stream = kernel.stream;
    cta.kernel = kernel_id;
    cta.footprint = fp;
    cta.liveWarps = 0;
    cta.warpsAtBarrier = 0;
    cta.warpSlots.clear();

    usedThreads_ += fp.threads;
    usedRegisters_ += fp.registers;
    usedSmem_ += fp.smemBytes;
    CtaFootprint &su = usedByStream_[kernel.stream];
    su.threads += fp.threads;
    su.registers += fp.registers;
    su.smemBytes += fp.smemBytes;
    su.warps += fp.warps;

    // Quota invariant: a launch may never push a stream past its quota
    // (canAccept guards this; a breach means the accounting or the CTA
    // scheduler is broken). Dynamic quota *shrinks* legally leave usage
    // above quota until CTAs commit, so the check belongs here, not in a
    // periodic scan. The breach is sticky and surfaces via audit.
    auto qit = quotas_.find(kernel.stream);
    if (quotaBreach_.empty() && qit != quotas_.end() &&
        (su.threads > qit->second.maxThreads ||
         su.registers > qit->second.maxRegisters ||
         su.smemBytes > qit->second.maxSmemBytes)) {
        quotaBreach_ = logging_detail::formatMessage(
            "SM %u stream %u over quota at CTA launch (cycle %llu): used "
            "thr %u/%u, reg %u/%u, smem %u/%u", smId_, kernel.stream,
            static_cast<unsigned long long>(now), su.threads,
            qit->second.maxThreads, su.registers,
            qit->second.maxRegisters, su.smemBytes,
            qit->second.maxSmemBytes);
    }

    auto &st = stats_->stream(kernel.stream);
    st.ctasLaunched++;
    if (st.firstCycle == 0) {
        st.firstCycle = now;
    }
    ++workCount_;

    // Pad with empty warps if the generator produced fewer than the launch
    // geometry implies (partial CTAs at grid edges produce fewer warps).
    const int prio = priorityOf(kernel.stream);
    const uint32_t ldst_limit =
        static_cast<uint32_t>(ldstLimitFor(kernel.stream));
    const uint32_t want = fp.warps;
    for (uint32_t w = 0; w < want; ++w) {
        panic_if(freeSlots_.empty(), "warp slots exhausted mid-launch");
        const uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        WarpState &warp = warps_[slot];
        warp = WarpState{};
        warp.slot = slot;
        warp.ctaKey = key;
        warp.stream = kernel.stream;
        warp.live = true;
        warp.prio = prio;
        warp.prioStream = prio < 0;
        warp.ldstLimit = ldst_limit;
        warp.age = ++warpAgeCounter_;
        if (w < trace.warps.size()) {
            warp.trace = std::move(trace.warps[w]);
        }
        cta.warpSlots.push_back(slot);
        cta.liveWarps++;
        activeWarps_++;
        ++liveWarpsByStream_[kernel.stream];
        schedOrderInsert(warp);
        st.warpsLaunched++;
    }

    // Immediately retire warps with empty traces.
    for (uint32_t slot : std::vector<uint32_t>(cta.warpSlots)) {
        WarpState &warp = warps_[slot];
        if (warp.live && warp.trace.instrs.empty()) {
            finishWarp(warp, now);
        }
    }
}

void
Sm::setCtaDoneHandler(CtaDoneHandler handler)
{
    onCtaDone_ = std::move(handler);
}

void
Sm::setQuota(StreamId stream, const SmQuota &quota)
{
    quotas_[stream] = quota;
}

void
Sm::clearQuotas()
{
    quotas_.clear();
}

void
Sm::setIssuePriority(StreamId stream, int priority)
{
    issuePriority_[stream] = priority;
    refreshPriorityCaches();
}

void
Sm::clearIssuePriorities()
{
    issuePriority_.clear();
    refreshPriorityCaches();
}

bool
Sm::idle() const
{
    return activeWarps_ == 0 && ldstQueue_.empty() && liveTrackers_ == 0 &&
           writebackHeap_.empty() && fabricRetry_.empty();
}

uint32_t
Sm::activeWarpsOf(StreamId stream) const
{
    uint32_t count = 0;
    for (const auto &w : warps_) {
        if (w.live && w.stream == stream) {
            ++count;
        }
    }
    return count;
}

uint32_t
Sm::activeCtasOf(StreamId stream) const
{
    uint32_t count = 0;
    for (uint32_t key : liveCtaSlots_) {
        if (ctaPool_[key].stream == stream) {
            ++count;
        }
    }
    return count;
}

uint32_t
Sm::usedThreadsOf(StreamId stream) const
{
    auto it = usedByStream_.find(stream);
    return it == usedByStream_.end() ? 0 : it->second.threads;
}

uint64_t
Sm::issuedInstrsOf(StreamId stream) const
{
    auto it = issuedByStream_.find(stream);
    return it == issuedByStream_.end() ? 0 : it->second;
}

void
Sm::scheduleWriteback(uint32_t slot, uint8_t reg, Cycle when)
{
    panic_if(when >= (1ull << 40) || slot > 0xffff,
             "writeback (cycle %llu, slot %u) overflows the heap packing",
             static_cast<unsigned long long>(when), slot);
    writebackHeap_.push_back((when << 24) |
                             (static_cast<uint64_t>(slot) << 8) | reg);
    std::push_heap(writebackHeap_.begin(), writebackHeap_.end(),
                   std::greater<uint64_t>());
}

void
Sm::releaseBarrier(CtaState &cta)
{
    for (uint32_t slot : cta.warpSlots) {
        warps_[slot].atBarrier = false;
    }
    cta.warpsAtBarrier = 0;
}

void
Sm::finishWarp(WarpState &warp, Cycle now)
{
    warp.live = false;
    activeWarps_--;
    schedOrderRemove(warp);
    auto lw = liveWarpsByStream_.find(warp.stream);
    panic_if(lw == liveWarpsByStream_.end() || lw->second == 0,
             "warp finished with no live-warp count");
    --lw->second;
    CtaState &cta = ctaPool_[warp.ctaKey];
    panic_if(cta.liveWarps == 0, "warp finished with no live CTA");
    cta.liveWarps--;

    if (cta.liveWarps == 0) {
        // CTA commit: release resources for future CTAs (possibly of the
        // other partition after a dynamic ratio change, §III-A).
        usedThreads_ -= cta.footprint.threads;
        usedRegisters_ -= cta.footprint.registers;
        usedSmem_ -= cta.footprint.smemBytes;
        CtaFootprint &su = usedByStream_[cta.stream];
        su.threads -= cta.footprint.threads;
        su.registers -= cta.footprint.registers;
        su.smemBytes -= cta.footprint.smemBytes;
        su.warps -= cta.footprint.warps;
        for (uint32_t slot : cta.warpSlots) {
            freeSlots_.push_back(slot);
        }
        auto &st = streamStats(cta.stream);
        st.lastCycle = std::max(st.lastCycle, now);
        const StreamId stream = cta.stream;
        const KernelId kernel = cta.kernel;
        auto live_it = std::find(liveCtaSlots_.begin(), liveCtaSlots_.end(),
                                 warp.ctaKey);
        panic_if(live_it == liveCtaSlots_.end(),
                 "finished CTA missing from live list");
        liveCtaSlots_.erase(live_it);
        ctaFreeSlots_.push_back(warp.ctaKey);
        if (stepping_) {
            // Staged step: the CTA-done callback mutates GPU-global
            // state (stream bookkeeping, telemetry, controllers), so it
            // is deferred to the post-barrier merge. Completions at
            // launch time (empty traces) still fire synchronously.
            stagedCtaDones_.emplace_back(stream, kernel);
        } else if (onCtaDone_) {
            onCtaDone_(smId_, stream, kernel);
        }
    } else if (cta.warpsAtBarrier == cta.liveWarps &&
               cta.warpsAtBarrier > 0) {
        // The exiting warp was the last one not waiting: release.
        releaseBarrier(cta);
    }
}

uint32_t
Sm::smemConflictCycles(const TraceInstr &instr) const
{
    // Serialization equals the maximum number of distinct 4B words that
    // map to the same bank across the active lanes. Member scratch: this
    // runs per shared-memory instruction, so it must not allocate.
    std::fill(smemBankScratch_.begin(), smemBankScratch_.end(), 0);
    smemSeenScratch_.clear();
    uint32_t worst = 1;
    for (Addr a : instr.addrs) {
        const Addr word = a / 4;
        if (std::find(smemSeenScratch_.begin(), smemSeenScratch_.end(),
                      word) != smemSeenScratch_.end()) {
            continue;   // broadcast within the warp is conflict-free
        }
        smemSeenScratch_.push_back(word);
        const uint32_t bank = static_cast<uint32_t>(word % cfg_.smemBanks);
        worst = std::max(worst, ++smemBankScratch_[bank]);
    }
    return worst;
}

size_t
Sm::ldstLimitFor(StreamId stream) const
{
    // Lower-priority streams may only fill half the LDST queue, so an
    // async-compute stream cannot head-of-line block graphics memory
    // instructions.
    auto prio = issuePriority_.find(stream);
    const bool is_priority =
        prio != issuePriority_.end() && prio->second < 0;
    return is_priority || issuePriority_.empty()
        ? cfg_.ldstQueueDepth
        : cfg_.ldstQueueDepth / 2;
}

void
Sm::issueMemory(WarpState &warp, const TraceInstr &instr, Cycle now)
{
    // Queue-limit admission already happened in tryIssue (against the
    // warp's cached limit), so this always succeeds.
    const bool store = isStore(instr.opcode);
    const bool texture = instr.opcode == Opcode::TEX;
    std::vector<Addr> lines = takePooledLines();
    coalesceToLines(instr, lines);
    panic_if(lines.empty(), "memory instruction with no addresses");

    LdstEntry entry;
    entry.stream = warp.stream;
    entry.cls = instr.dataClass;
    entry.write = store;
    entry.texture = texture;
    entry.lines = std::move(lines);

    if (!store) {
        LoadTracker tracker;
        tracker.warpSlot = warp.slot;
        tracker.reg = instr.dst;
        tracker.remaining = static_cast<uint32_t>(entry.lines.size());
        tracker.isTexture = texture;
        entry.tracker = allocTracker(tracker);
        if (instr.hasDst()) {
            warp.pendingWrites.set(instr.dst);
        }
    }
    (void)now;
    if (warp.prioStream) {
        // Priority entries service ahead of queued lower-priority ones
        // (but stay ordered among themselves).
        auto pos = ldstQueue_.begin();
        while (pos != ldstQueue_.end()) {
            auto p = issuePriority_.find(pos->stream);
            if (p == issuePriority_.end() || p->second >= 0) {
                break;
            }
            ++pos;
        }
        ldstQueue_.insert(pos, std::move(entry));
    } else {
        ldstQueue_.push_back(std::move(entry));
    }
}

bool
Sm::tryIssue(WarpState &warp, Cycle now)
{
    if (!warp.live || warp.atBarrier || warp.pc >= warp.trace.instrs.size()) {
        return false;
    }
    const TraceInstr &instr = warp.trace.instrs[warp.pc];

    // Register scoreboard: stall on RAW and WAW hazards. Most warps have
    // no pending writes at all; one bitset sweep skips the per-operand
    // tests in that common case.
    if (warp.pendingWrites.any()) {
        if (instr.hasDst() && warp.pendingWrites.test(instr.dst)) {
            return false;
        }
        for (uint8_t src : instr.srcs) {
            if (src != kNoReg && warp.pendingWrites.test(src)) {
                return false;
            }
        }
    }

    const OpClass cls = opcodeClass(instr.opcode);
    switch (cls) {
      case OpClass::FP32:
      case OpClass::INT:
      case OpClass::SFU:
      case OpClass::Tensor: {
        // Cached pool minimum: a busy pool (the common rejection) is one
        // compare instead of a scan.
        if (unitMinFree_[static_cast<size_t>(cls)] > now) {
            return false;
        }
        auto &pool = unitFreeAt_[static_cast<size_t>(cls)];
        auto unit = std::min_element(pool.begin(), pool.end());
        *unit = now + cfg_.intervalFor(cls);
        unitMinFree_[static_cast<size_t>(cls)] =
            *std::min_element(pool.begin(), pool.end());
        if (instr.hasDst()) {
            warp.pendingWrites.set(instr.dst);
            scheduleWriteback(warp.slot, instr.dst,
                              now + cfg_.latencyFor(cls));
        }
        break;
      }
      case OpClass::MemShared: {
        if (smemPortFreeAt_ > now) {
            return false;
        }
        const uint32_t serial = smemConflictCycles(instr);
        smemPortFreeAt_ = now + serial;
        auto &st = streamStats(warp.stream);
        st.smemAccesses++;
        st.smemBankConflicts += serial - 1;
        if (instr.hasDst()) {
            warp.pendingWrites.set(instr.dst);
            scheduleWriteback(warp.slot, instr.dst,
                              now + cfg_.smemLatency + serial - 1);
        }
        break;
      }
      case OpClass::MemConst:
        if (instr.hasDst()) {
            warp.pendingWrites.set(instr.dst);
            scheduleWriteback(warp.slot, instr.dst, now + cfg_.constLatency);
        }
        break;
      case OpClass::MemGlobal:
      case OpClass::MemTexture:
        // The queue-limit check is the only way issueMemory can refuse;
        // doing it here against the warp's cached limit keeps the
        // (overwhelmingly common) full-queue rejection to two loads.
        if (ldstQueue_.size() >= warp.ldstLimit) {
            return false;
        }
        issueMemory(warp, instr, now);
        break;
      case OpClass::Barrier: {
        CtaState &cta = ctaPool_[warp.ctaKey];
        warp.atBarrier = true;
        if (++cta.warpsAtBarrier == cta.liveWarps) {
            releaseBarrier(cta);
        }
        break;
      }
      case OpClass::Control:
        break;
      default:
        panic("unhandled op class %d", static_cast<int>(cls));
    }

    warp.pc++;
    auto &st = streamStats(warp.stream);
    st.instructions++;
    issuedByStream_[warp.stream]++;
    ++workCount_;

    if (instr.opcode == Opcode::EXIT || warp.pc >= warp.trace.instrs.size()) {
        finishWarp(warp, now);
    }
    return true;
}

void
Sm::beginMemPhase(Cycle now)
{
    (void)now;
    memPortsLeft_ = cfg_.l1PortsPerCycle;
    // The per-cycle retry cap keeps a deeply backlogged SM from flushing
    // an arbitrarily long retry queue in one cycle ahead of fresh
    // requests; 0 is the explicit opt-out (unbounded).
    memRetriesLeft_ = cfg_.maxFabricRetriesPerCycle == 0
        ? ~0u
        : cfg_.maxFabricRetriesPerCycle;
    memRetryBlocked_ = false;
    memLdstBlocked_ = false;
}

bool
Sm::memPhaseGrantRetry(Cycle now)
{
    // Re-send the head of the egress retry queue (FIFO). A refusal
    // blocks only this stage for the rest of the cycle — bank queues
    // drain after the SM phases, so re-probing the same full bank within
    // the cycle cannot succeed — while fresh LDST lines may still land
    // on other banks in the LDST rounds.
    if (memRetryBlocked_ || fabricRetry_.empty() || memRetriesLeft_ == 0) {
        return false;
    }
    if (!fabric_->submitToL2(fabricRetry_.front(), now)) {
        memRetryBlocked_ = true;
        return false;
    }
    const Cycle waited = now - fabricRetryParkedAt_.front();
    if (waited > maxFabricRetryWait_) {
        maxFabricRetryWait_ = waited;
    }
    fabricRetry_.pop_front();
    fabricRetryParkedAt_.pop_front();
    --memRetriesLeft_;
    ++workCount_;
    return true;
}

bool
Sm::memPhaseGrantLdst(Cycle now)
{
    if (memLdstBlocked_) {
        return false;
    }
    const LdstOutcome outcome = stepLdstOne(now);
    if (outcome == LdstOutcome::Blocked) {
        memLdstBlocked_ = true;
    }
    return outcome == LdstOutcome::Progress;
}

Sm::LdstOutcome
Sm::stepLdstOne(Cycle now)
{
    if (memPortsLeft_ == 0 || ldstQueue_.empty()) {
        return LdstOutcome::Idle;
    }
    LdstEntry &entry = ldstQueue_.front();
    auto &st = streamStats(entry.stream);
    const Addr line = entry.lines.back();

    if (entry.write) {
        // Write-through, no-allocate L1. A refused store parks in the
        // egress retry queue like a refused read (the NoC egress port
        // holds both), bounded by the LDST queue depth so backpressure
        // still propagates to issue once the fabric stays saturated.
        MemRequest req;
        req.line = line;
        req.write = true;
        req.stream = entry.stream;
        req.dataClass = entry.cls;
        req.smId = smId_;
        if (!fabric_->submitToL2(req, now)) {
            if (fabricRetry_.size() >= cfg_.ldstQueueDepth) {
                return LdstOutcome::Blocked;
            }
            fabricRetry_.push_back(req);
            fabricRetryParkedAt_.push_back(now);
        }
        // The store left the LDST unit (accepted or parked): touch the
        // tag array and count the access exactly once — the retry path
        // never counts, so a parked store cannot inflate either counter.
        l1_.access(line, true, entry.stream, entry.cls, false);
        st.l1Accesses++;
    } else if (l1Mshr_.pending(line)) {
        // Load path through the unified L1: merge into a pending miss.
        const auto outcome = l1Mshr_.allocate(line, entry.tracker, now);
        if (outcome == Mshr::Outcome::Stall) {
            return LdstOutcome::Blocked;
        }
        st.l1Accesses++;
        st.l1MshrMerges++;
        if (entry.texture) {
            st.l1TexAccesses++;
        }
    } else {
        const bool would_miss = !l1_.probe(line, entry.stream);
        if (would_miss && l1Mshr_.full()) {
            return LdstOutcome::Blocked;
        }
        auto res = l1_.access(line, false, entry.stream, entry.cls,
                              /*allocate_on_miss=*/false);
        st.l1Accesses++;
        if (entry.texture) {
            st.l1TexAccesses++;
        }
        if (res.hit) {
            st.l1Hits++;
            LoadTracker *tracker = findTracker(entry.tracker);
            panic_if(tracker == nullptr, "L1 hit for dead tracker");
            if (--tracker->remaining == 0) {
                scheduleWriteback(tracker->warpSlot, tracker->reg,
                                  now + cfg_.l1HitLatency);
                freeTracker(static_cast<uint32_t>(
                    entry.tracker & ((1ull << kTrackerIdxBits) - 1)));
            }
        } else {
            const auto outcome = l1Mshr_.allocate(line, entry.tracker, now);
            panic_if(outcome != Mshr::Outcome::NewEntry,
                     "L1 MSHR allocate failed after capacity check");
            MemRequest req;
            req.line = line;
            req.write = false;
            req.stream = entry.stream;
            req.dataClass = entry.cls;
            req.smId = smId_;
            req.completionKey = line;
            if (!fabric_->submitToL2(req, now)) {
                // Fabric refused: the MSHR entry stays allocated; park
                // the request in the egress queue and re-send later.
                fabricRetry_.push_back(req);
                fabricRetryParkedAt_.push_back(now);
            }
        }
    }

    entry.lines.pop_back();
    --memPortsLeft_;
    ++workCount_;
    if (entry.lines.empty()) {
        recycleLines(std::move(entry.lines));
        ldstQueue_.pop_front();
    }
    return LdstOutcome::Progress;
}

void
Sm::memResponse(const MemRequest &resp, Cycle now)
{
    // Fill the unified L1 (reads only; write-through stores never respond).
    // fill(), not access(): the returning data is not a demand access, so
    // it must not count toward the L1's access/miss totals or steal LRU
    // recency from resident lines.
    l1_.fill(resp.line, false, resp.stream, resp.dataClass);
    for (uint64_t key : l1Mshr_.fill(resp.line)) {
        LoadTracker *tracker = findTracker(key);
        if (tracker == nullptr) {
            continue;
        }
        if (--tracker->remaining == 0) {
            scheduleWriteback(tracker->warpSlot, tracker->reg, now);
            freeTracker(static_cast<uint32_t>(
                key & ((1ull << kTrackerIdxBits) - 1)));
        }
    }
}

const char *
Sm::IntegrityProbe::dominantStall() const
{
    if (activeWarps == 0) {
        return ldstQueueDepth + outstandingLoads + fabricRetryDepth > 0
            ? "mem-drain"
            : "idle";
    }
    const char *label = "ready";
    uint32_t best = ready;
    const std::pair<const char *, uint32_t> buckets[] = {
        {"scoreboard", waitScoreboard}, {"barrier", atBarrier},
        {"exec-unit", waitExecUnit},    {"smem-port", waitSmem},
        {"ldst-full", waitLdst},
    };
    for (const auto &[name, count] : buckets) {
        if (count > best) {
            best = count;
            label = name;
        }
    }
    return issueFrozen ? "frozen" : label;
}

Sm::IntegrityProbe
Sm::probe(Cycle now) const
{
    IntegrityProbe p;
    p.activeWarps = activeWarps_;
    p.activeCtas = static_cast<uint32_t>(liveCtaSlots_.size());
    p.ldstQueueDepth = ldstQueue_.size();
    p.fabricRetryDepth = fabricRetry_.size();
    p.fabricRetryMaxWait = maxFabricRetryWait_;
    p.fabricRetryOldestAge = oldestFabricRetryAge(now);
    p.outstandingLoads = liveTrackers_;
    p.l1MshrEntries = l1Mshr_.entriesInUse();
    p.issueFrozen = issueFrozen_;
    if (p.l1MshrEntries > 0) {
        const auto oldest = l1Mshr_.entries().front();
        p.oldestMissLine = oldest.line;
        p.oldestMissAge = now >= oldest.allocatedAt
            ? now - oldest.allocatedAt
            : 0;
    }
    for (const auto &warp : warps_) {
        if (!warp.live) {
            continue;
        }
        if (warp.atBarrier) {
            p.atBarrier++;
            continue;
        }
        if (warp.pc >= warp.trace.instrs.size()) {
            p.ready++;   // Retires at its next issue opportunity.
            continue;
        }
        const TraceInstr &instr = warp.trace.instrs[warp.pc];
        bool hazard = instr.hasDst() && warp.pendingWrites.test(instr.dst);
        for (uint8_t src : instr.srcs) {
            hazard = hazard ||
                     (src != kNoReg && warp.pendingWrites.test(src));
        }
        if (hazard) {
            p.waitScoreboard++;
            continue;
        }
        const OpClass cls = opcodeClass(instr.opcode);
        switch (cls) {
          case OpClass::FP32:
          case OpClass::INT:
          case OpClass::SFU:
          case OpClass::Tensor: {
            const auto &pool = unitFreeAt_[static_cast<size_t>(cls)];
            if (*std::min_element(pool.begin(), pool.end()) > now) {
                p.waitExecUnit++;
            } else {
                p.ready++;
            }
            break;
          }
          case OpClass::MemShared:
            if (smemPortFreeAt_ > now) {
                p.waitSmem++;
            } else {
                p.ready++;
            }
            break;
          case OpClass::MemGlobal:
          case OpClass::MemTexture:
            if (ldstQueue_.size() >= ldstLimitFor(warp.stream)) {
                p.waitLdst++;
            } else {
                p.ready++;
            }
            break;
          default:
            p.ready++;
            break;
        }
    }
    return p;
}

bool
Sm::auditAccounting(std::string *detail) const
{
    // Runs on every watchdog tick (possibly every cycle): accumulate on
    // the stack, no per-call allocation.
    uint32_t threads = 0;
    uint32_t registers = 0;
    uint32_t smem = 0;
    uint32_t live_warps = 0;
    for (uint32_t key : liveCtaSlots_) {
        const CtaState &cta = ctaPool_[key];
        threads += cta.footprint.threads;
        registers += cta.footprint.registers;
        smem += cta.footprint.smemBytes;
        live_warps += cta.liveWarps;
    }

    auto fail = [&](const std::string &msg) {
        if (detail) {
            *detail = msg;
        }
        return false;
    };
    using logging_detail::formatMessage;

    if (!quotaBreach_.empty()) {
        return fail(quotaBreach_);
    }

    if (threads != usedThreads_ || registers != usedRegisters_ ||
        smem != usedSmem_) {
        return fail(formatMessage(
            "SM %u tracked usage (thr %u, reg %u, smem %u) != recomputed "
            "(thr %u, reg %u, smem %u)", smId_, usedThreads_,
            usedRegisters_, usedSmem_, threads, registers, smem));
    }
    if (live_warps != activeWarps_) {
        return fail(formatMessage(
            "SM %u tracked active warps %u != recomputed %u", smId_,
            activeWarps_, live_warps));
    }
    if (usedThreads_ > cfg_.maxWarps * kWarpSize ||
        usedRegisters_ > cfg_.registers || usedSmem_ > cfg_.smemBytes) {
        return fail(formatMessage(
            "SM %u allocation (thr %u, reg %u, smem %u) exceeds capacity "
            "(thr %u, reg %u, smem %u)", smId_, usedThreads_,
            usedRegisters_, usedSmem_, cfg_.maxWarps * kWarpSize,
            cfg_.registers, cfg_.smemBytes));
    }
    for (const auto &[stream, used] : usedByStream_) {
        CtaFootprint expect;
        for (uint32_t key : liveCtaSlots_) {
            const CtaState &cta = ctaPool_[key];
            if (cta.stream != stream) {
                continue;
            }
            expect.threads += cta.footprint.threads;
            expect.registers += cta.footprint.registers;
            expect.smemBytes += cta.footprint.smemBytes;
            expect.warps += cta.footprint.warps;
        }
        if (used.threads != expect.threads ||
            used.registers != expect.registers ||
            used.smemBytes != expect.smemBytes ||
            used.warps != expect.warps) {
            return fail(formatMessage(
                "SM %u stream %u tracked usage (thr %u, reg %u, smem %u, "
                "warps %u) != recomputed (thr %u, reg %u, smem %u, warps "
                "%u)", smId_, stream, used.threads, used.registers,
                used.smemBytes, used.warps, expect.threads,
                expect.registers, expect.smemBytes, expect.warps));
        }
    }
    return true;
}

void
Sm::step(Cycle now)
{
    stepping_ = staged_;

    // Fabric-facing memory phase (retry queue + LDST unit). Under a Gpu
    // the round-robin arbiter already ran it this cycle, serially on the
    // main thread before any SM stepped; a standalone SM services its
    // own queues here — exactly what an arbiter with a single SM in the
    // rotation would do.
    if (!staged_ && !extMemPhase_) {
        beginMemPhase(now);
        telemetry::SelfProfiler::Scope prof_scope(
            profiler_, telemetry::Component::L1Ldst);
        while (memPhaseGrant(now)) {
        }
    }

    // Commit due register writebacks (clears scoreboard entries). The heap
    // pops same-cycle writebacks in packed (slot, reg) order rather than
    // the old multimap's insertion order; each pop clears a distinct
    // scoreboard bit, so the tie order is unobservable.
    while (!writebackHeap_.empty() && (writebackHeap_.front() >> 24) <= now) {
        std::pop_heap(writebackHeap_.begin(), writebackHeap_.end(),
                      std::greater<uint64_t>());
        const uint64_t packed = writebackHeap_.back();
        writebackHeap_.pop_back();
        const uint8_t reg = static_cast<uint8_t>(packed & 0xff);
        if (reg != kNoReg) {
            warps_[(packed >> 8) & 0xffff].pendingWrites.reset(reg);
        }
        ++workCount_;
    }

    // Count active cycles per stream (streams with live warps this cycle).
    for (const auto &[stream, live] : liveWarpsByStream_) {
        if (live > 0) {
            streamStats(stream).cycles++;
        }
    }

    // Fault injection: a frozen issue stage stops dead while writebacks
    // and in-flight memory continue, so the SM quietly stops committing —
    // the hang class the forward-progress watchdog exists to diagnose.
    if (issueFrozen_) {
        stepping_ = false;
        return;
    }

    // GTO issue with stream priorities: each scheduler owns the slots with
    // slot % numSchedulers == id and picks, in order, by (stream priority,
    // greediness, age). The greedy bit keeps a warp issuing back-to-back
    // until it stalls; priority lets graphics warps claim issue slots ahead
    // of a lower-priority async-compute stream.
    //
    // schedOrder_ maintains each scheduler's live slots sorted by
    // (prio, age), so the old gather-and-sort becomes a walk: the single
    // greedy slot is tried when the walk first reaches its priority
    // group, which reproduces the (prio, greedy, age) sort order exactly.
    for (uint32_t sched = 0; sched < cfg_.numSchedulers; ++sched) {
        if (cfg_.scheduler == SchedulerPolicy::Gto) {
            const auto &order = schedOrder_[sched];
            const uint32_t greedy = greedySlot_[sched];
            bool greedy_pending = greedy != kNoSlotIndex;
            const int greedy_prio =
                greedy_pending ? warps_[greedy].prio : 0;
            // Index loop: a successful issue can launch CTAs (via the
            // CTA-done handler) that append to this order before the
            // break below.
            for (size_t i = 0; i < order.size(); ++i) {
                const uint32_t slot = order[i];
                if (greedy_pending && warps_[slot].prio == greedy_prio) {
                    greedy_pending = false;
                    if (tryIssue(warps_[greedy], now)) {
                        greedySlot_[sched] = warps_[greedy].live
                            ? greedy
                            : kNoSlotIndex;
                        break;
                    }
                }
                if (slot == greedy) {
                    continue;
                }
                if (tryIssue(warps_[slot], now)) {
                    greedySlot_[sched] = warps_[slot].live
                        ? slot
                        : kNoSlotIndex;
                    break;
                }
            }
        } else {
            // Loose round-robin: rotate the start position each cycle,
            // still respecting stream priorities.
            candScratch_.clear();
            for (uint32_t slot = sched; slot < cfg_.maxWarps;
                 slot += cfg_.numSchedulers) {
                if (warps_[slot].live) {
                    candScratch_.push_back(slot);
                }
            }
            if (!candScratch_.empty()) {
                const size_t rot =
                    static_cast<size_t>(now) % candScratch_.size();
                std::rotate(candScratch_.begin(),
                            candScratch_.begin() + rot, candScratch_.end());
            }
            std::stable_sort(candScratch_.begin(), candScratch_.end(),
                             [this](uint32_t a, uint32_t b) {
                                 return warps_[a].prio < warps_[b].prio;
                             });
            for (size_t i = 0; i < candScratch_.size(); ++i) {
                const uint32_t slot = candScratch_[i];
                if (tryIssue(warps_[slot], now)) {
                    greedySlot_[sched] = warps_[slot].live
                        ? slot
                        : kNoSlotIndex;
                    break;
                }
            }
        }
    }
    stepping_ = false;
}

void
Sm::setStagedFabric(bool staged)
{
    panic_if(!stagedCtaDones_.empty(),
             "SM %u: staged-fabric toggled with staged work in flight",
             smId_);
    // Every engine now runs the memory phase before the writeback commit
    // of the same cycle (the arbiter runs it before the SMs step at
    // all), so there is no legacy/staged ordering difference left to
    // guard against — staged mode only changes where stats and CTA
    // completions land.
    staged_ = staged;
}

void
Sm::stepMemory(Cycle now)
{
    beginMemPhase(now);
    telemetry::SelfProfiler::Scope prof_scope(
        profiler_, telemetry::Component::L1Ldst);
    while (memPhaseGrant(now)) {
    }
}

void
Sm::flushStagedCtaDones()
{
    if (stagedCtaDones_.empty()) {
        return;
    }
    // The handler can trigger kernel completions that launch CTAs onto
    // this SM, which may retire empty warps synchronously and append to
    // stagedCtaDones_ again — swap first so iteration stays valid.
    std::vector<std::pair<StreamId, KernelId>> dones;
    dones.swap(stagedCtaDones_);
    if (!onCtaDone_) {
        return;
    }
    for (const auto &[stream, kernel] : dones) {
        onCtaDone_(smId_, stream, kernel);
    }
}

void
Sm::flushShadowStats()
{
    stats_->absorbShadow(shadowStats_);
}

void
Sm::flushShadowProfiler()
{
    if (profiler_ != nullptr) {
        profiler_->absorb(shadowProfiler_);
    }
}

Cycle
Sm::nextWorkCycle(Cycle now) const
{
    // Anything queued SM-side makes next cycle productive: the LDST unit
    // retries every cycle and the retry queue re-probes the fabric. (A
    // blocked LDST head could in principle be analyzed more sharply, but
    // conservative-early answers only shrink the jump.)
    if (!ldstQueue_.empty() || !fabricRetry_.empty()) {
        return now + 1;
    }

    Cycle wake = kNeverCycle;
    auto consider = [&](Cycle at) {
        wake = std::min(wake, std::max(at, now + 1));
    };

    if (!writebackHeap_.empty()) {
        consider(writebackHeap_.front() >> 24);
    }

    if (activeWarps_ == 0 || issueFrozen_) {
        return wake;
    }

    // A warp whose next instruction waits only on an execution resource
    // wakes up when that resource frees; one blocked on the scoreboard
    // wakes with the writeback already considered above; one blocked on
    // memory wakes with the L2 response (owned by the L2 side).
    for (const auto &warp : warps_) {
        if (!warp.live || warp.atBarrier) {
            continue;
        }
        if (warp.pc >= warp.trace.instrs.size()) {
            return now + 1;   // Retires at its next issue opportunity.
        }
        const TraceInstr &instr = warp.trace.instrs[warp.pc];
        bool hazard = instr.hasDst() && warp.pendingWrites.test(instr.dst);
        for (uint8_t src : instr.srcs) {
            hazard = hazard ||
                     (src != kNoReg && warp.pendingWrites.test(src));
        }
        if (hazard) {
            continue;   // Wakes via a writeback (or a memory response).
        }
        const OpClass cls = opcodeClass(instr.opcode);
        switch (cls) {
          case OpClass::FP32:
          case OpClass::INT:
          case OpClass::SFU:
          case OpClass::Tensor: {
            const auto &pool = unitFreeAt_[static_cast<size_t>(cls)];
            consider(*std::min_element(pool.begin(), pool.end()));
            break;
          }
          case OpClass::MemShared:
            consider(smemPortFreeAt_);
            break;
          default:
            // Issuable right now (memory ops with queue room, barriers,
            // control, const loads): the very next cycle does work.
            return now + 1;
        }
    }
    return wake;
}

void
Sm::creditIdleCycles(uint64_t count)
{
    // Mirrors the per-cycle counting in step(): every stream with a live
    // warp is "active" for each skipped cycle. Main thread only, so the
    // global registry is written directly.
    for (const auto &[stream, live] : liveWarpsByStream_) {
        if (live > 0) {
            stats_->stream(stream).cycles += count;
        }
    }
}

} // namespace crisp
