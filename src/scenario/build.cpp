#include "scenario/build.hpp"

#include <cmath>
#include <functional>
#include <map>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp::scenario
{

GpuConfig
gpuConfigFor(const Scenario &sc)
{
    GpuConfig cfg = sc.gpu.preset == "orin" ? GpuConfig::jetsonOrin()
                                            : GpuConfig::rtx3070();
    if (sc.gpu.numSms != 0) {
        cfg.numSms = sc.gpu.numSms;
        cfg.finalize();
    }
    return cfg;
}

namespace
{

/** Explicit-scene state carried across frames (deform retargeting). */
struct GfxBuild
{
    Scene *scene = nullptr;
    const Mesh *deformSrc = nullptr;
    std::vector<size_t> deformDraws;  ///< scene->draws indices to retarget.
};

Mesh
makeMesh(const MeshNode &m, AddressSpace &heap)
{
    if (m.type == "plane") {
        return Mesh::makePlane(m.name, m.quads, m.size, m.uvTile, heap);
    }
    if (m.type == "sphere") {
        return Mesh::makeSphere(m.name, m.stacks, m.slices, m.radius, heap);
    }
    if (m.type == "box") {
        return Mesh::makeBox(m.name, m.extent, heap, m.uvTile);
    }
    if (m.type == "cylinder") {
        return Mesh::makeCylinder(m.name, m.slices, m.radius, m.height,
                                  heap, m.uvTile);
    }
    fatal_if(m.type != "rock", "unvalidated mesh type %s", m.type.c_str());
    return Mesh::makeRock(m.name, m.stacks, m.slices, m.radius, m.seed,
                          heap);
}

Scene
buildExplicitScene(const Scenario &sc, AddressSpace &heap, GfxBuild &gb)
{
    const GraphicsDesc &g = sc.graphics;
    Scene scene;
    scene.name = sc.name;
    scene.camera.eye = g.camera.eye;
    scene.camera.view =
        Mat4::lookAt(g.camera.eye, g.camera.lookAt, {0.0f, 1.0f, 0.0f});
    scene.camera.proj = Mat4::perspective(
        g.camera.fovDeg * static_cast<float>(M_PI) / 180.0f,
        static_cast<float>(g.width) / static_cast<float>(g.height), 0.1f,
        200.0f);

    std::map<std::string, Mesh *> meshes;
    for (const MeshNode &m : g.meshes) {
        meshes[m.name] = scene.addMesh(makeMesh(m, heap));
    }
    std::map<std::string, std::pair<Material *, uint32_t>> materials;
    for (const MaterialNode &mn : g.materials) {
        Material *p;
        if (mn.shader == "pbr") {
            p = addPbrMaterial(scene, heap, mn.name, mn.texDim, mn.seed);
        } else if (mn.layers > 1) {
            // Layered array texture (the Planets asteroid idiom): one
            // texture with mn.layers layers, instances select a layer.
            Material mat;
            mat.name = mn.name;
            mat.kind = ShaderKind::Basic;
            mat.extraFragmentAlu = mn.extraAlu;
            mat.textures.push_back(
                scene.addTexture(std::make_unique<Texture2D>(
                    mn.name + ".array", mn.texDim, mn.texDim,
                    TexFormat::RGBA8, heap, mn.layers, true, mn.seed)));
            p = scene.addMaterial(std::move(mat));
        } else {
            p = addBasicMaterial(scene, heap, mn.name, mn.texDim, mn.seed,
                                 mn.extraAlu);
        }
        materials[mn.name] = {p, mn.layers};
    }

    for (const DrawNode &dn : g.draws) {
        DrawCall d;
        d.name = dn.name;
        d.mesh = meshes.at(dn.mesh);
        const auto &[mat, layers] = materials.at(dn.material);
        d.material = mat;
        d.model = Mat4::translation(dn.translate) *
                  Mat4::rotationY(dn.rotateYDeg *
                                  static_cast<float>(M_PI) / 180.0f) *
                  Mat4::scaling({dn.scale, dn.scale, dn.scale});
        if (dn.instances > 1) {
            d.instanceCount = dn.instances;
            d.instanceBufAddr = heap.alloc(64ull * dn.instances);
            Rng rng(dn.instanceSeed);
            for (uint32_t i = 0; i < dn.instances; ++i) {
                const float angle = 2.0f * static_cast<float>(M_PI) *
                                    static_cast<float>(i) / dn.instances;
                const float radius =
                    dn.ringRadius *
                    (1.0f + 0.4f * static_cast<float>(rng.nextDouble()));
                const float y =
                    1.5f * static_cast<float>(rng.nextDouble() - 0.5);
                const float s =
                    0.5f + 1.2f * static_cast<float>(rng.nextDouble());
                d.instanceModels.push_back(
                    d.model *
                    Mat4::translation({radius * std::cos(angle), y,
                                       radius * std::sin(angle)}) *
                    Mat4::rotationY(angle * 3.0f) *
                    Mat4::scaling({s, s, s}));
                d.instanceLayers.push_back(i % layers);
            }
        }
        if (g.deform.enabled && dn.mesh == g.deform.mesh) {
            gb.deformDraws.push_back(scene.draws.size());
        }
        scene.draws.push_back(std::move(d));
    }
    if (g.deform.enabled) {
        gb.deformSrc = meshes.at(g.deform.mesh);
    }
    return scene;
}

/** Scene + pipeline, in crisp_sim's order (scene first, then pipeline). */
GfxBuild
prepareGraphics(const Scenario &sc, AddressSpace &heap, Materialized &out)
{
    const GraphicsDesc &g = sc.graphics;
    GfxBuild gb;
    if (g.preset.empty()) {
        auto scene = std::make_unique<Scene>();
        *scene = buildExplicitScene(sc, heap, gb);
        out.scenes.push_back(std::move(scene));
    } else {
        out.scenes.push_back(std::make_unique<Scene>(
            buildSceneByName(g.preset, heap)));
    }
    gb.scene = out.scenes.back().get();

    PipelineConfig pc;
    pc.width = g.width;
    pc.height = g.height;
    pc.lodEnabled = g.lod;
    if (g.batchSize != 0) {
        pc.batchSize = g.batchSize;
    }
    out.pipeline = std::make_unique<RenderPipeline>(pc, heap);
    return gb;
}

/**
 * Functionally render frame @p f. With deform animation the deforming
 * mesh is re-tessellated at time f*step into fresh heap allocations and
 * its draws retargeted — every frame re-uploads the deformed geometry.
 */
RenderSubmission
renderFrame(const Scenario &sc, GfxBuild &gb, uint32_t f,
            AddressSpace &heap, RenderPipeline &pipeline)
{
    const DeformNode &d = sc.graphics.deform;
    if (d.enabled) {
        Mesh *frame_mesh = gb.scene->addMesh(Mesh::deformed(
            d.mesh + "@f" + std::to_string(f), *gb.deformSrc,
            d.step * static_cast<float>(f), d.amplitude, d.frequency,
            heap));
        for (size_t i : gb.deformDraws) {
            gb.scene->draws[i].mesh = frame_mesh;
        }
    }
    return pipeline.submit(*gb.scene);
}

MemPatternKind
patternKind(const std::string &name)
{
    if (name == "stencil") {
        return MemPatternKind::Stencil;
    }
    if (name == "gather") {
        return MemPatternKind::Gather;
    }
    if (name == "broadcast") {
        return MemPatternKind::Broadcast;
    }
    return MemPatternKind::Streaming;
}

std::vector<KernelInfo>
buildPresetCompute(const ComputeDesc &cd, AddressSpace &heap,
                   RenderPipeline *pipeline)
{
    if (cd.preset == "VIO") {
        return buildVio(heap, cd.frames, cd.width, cd.height);
    }
    if (cd.preset == "HOLO") {
        return buildHolo(heap, cd.points);
    }
    if (cd.preset == "NN") {
        return buildNn(heap, cd.layers);
    }
    fatal_if(cd.preset != "ATW", "unvalidated compute preset %s",
             cd.preset.c_str());
    const Addr color = pipeline
        ? pipeline->framebuffer().colorAddr(0, 0)
        : heap.alloc(4ull * cd.width * cd.height);
    return buildTimewarp(heap, color, cd.width, cd.height);
}

/** One KernelInfo per explicit kernel node, buffers resolved to heap.
 *  @p buffer_heap (when set) picks a per-buffer heap instead of @p heap —
 *  the multi-GPU path homing "device"-tagged buffers in other windows. */
std::vector<KernelInfo>
buildExplicitKernels(const ComputeDesc &cd, AddressSpace &heap,
                     RenderPipeline *pipeline,
                     const std::function<AddressSpace &(const BufferNode &)>
                         &buffer_heap = {})
{
    struct Region
    {
        Addr base = 0;
        uint64_t bytes = 0;
    };
    std::map<std::string, Region> regions;
    for (const BufferNode &b : cd.buffers) {
        AddressSpace &h = buffer_heap ? buffer_heap(b) : heap;
        regions[b.name] = {h.alloc(b.bytes), b.bytes};
    }
    auto resolve = [&](const LoadNode &ln) {
        MemPattern p;
        p.kind = patternKind(ln.pattern);
        if (ln.buffer == "frame_color" && !regions.count("frame_color")) {
            fatal_if(!pipeline, "frame_color needs a graphics side");
            p.base = pipeline->framebuffer().colorAddr(0, 0);
            p.regionBytes = 4ull * pipeline->config().width *
                            pipeline->config().height;
        } else {
            const Region &r = regions.at(ln.buffer);
            p.base = r.base;
            p.regionBytes = r.bytes;
        }
        p.accessBytes = static_cast<uint8_t>(ln.accessBytes);
        p.count = ln.count;
        p.rowPitch = ln.rowPitch;
        return p;
    };

    std::vector<KernelInfo> infos;
    infos.reserve(cd.kernels.size());
    for (const KernelNode &kn : cd.kernels) {
        ComputeKernelDesc d;
        d.name = kn.name;
        d.ctas = kn.ctas;
        d.threadsPerCta = kn.threadsPerCta;
        d.regsPerThread = kn.regsPerThread;
        d.smemPerCta = kn.smemPerCta;
        d.iterations = kn.iterations;
        d.fp32Ops = kn.fp32Ops;
        d.intOps = kn.intOps;
        d.sfuOps = kn.sfuOps;
        d.tensorOps = kn.tensorOps;
        d.smemLoads = kn.smemLoads;
        d.smemStores = kn.smemStores;
        d.barrierPerIteration = kn.barrierPerIteration;
        d.divergenceMaxExtraIters = kn.divergenceExtraIters;
        d.divergenceSeed = kn.divergenceSeed;
        for (const LoadNode &ln : kn.loads) {
            d.loads.push_back(resolve(ln));
        }
        if (kn.hasStore) {
            d.store = resolve(kn.store);
            d.hasStore = true;
        }
        infos.push_back(buildComputeKernel(d));
    }
    return infos;
}

/** Replay the explicit kernel list once per burst at the schedule's
 *  arrival offsets (periodic or Poisson). */
void
enqueueExplicit(Gpu &gpu, StreamId cmp, const ComputeDesc &cd,
                const std::vector<KernelInfo> &infos)
{
    const std::vector<Cycle> bases =
        burstBases(cd.schedule, gpu.config().coreClockMhz);
    for (uint32_t b = 0; b < cd.schedule.bursts; ++b) {
        const Cycle burst_base = bases[b];
        std::map<std::string, KernelId> ids;
        for (size_t i = 0; i < cd.kernels.size(); ++i) {
            const KernelNode &kn = cd.kernels[i];
            KernelId id;
            if (kn.hasAfter) {
                id = gpu.enqueueKernelAfter(cmp, infos[i], ids.at(kn.after),
                                            kn.delay);
            } else {
                id = gpu.enqueueKernelAt(cmp, infos[i], burst_base + kn.at);
            }
            ids[kn.name] = id;
        }
    }
}

} // namespace

std::vector<Cycle>
burstBases(const ScheduleNode &s, double core_clock_mhz)
{
    std::vector<Cycle> bases;
    bases.reserve(s.bursts);
    if (!s.poisson) {
        for (uint32_t b = 0; b < s.bursts; ++b) {
            bases.push_back(static_cast<Cycle>(b) * s.period);
        }
        return bases;
    }
    // Exponential inter-arrival gaps with mean core_clock/rate_hz
    // cycles; cumulative sums keep arrivals non-decreasing, which the
    // FIFO stream order requires. 1-u keeps log() off zero.
    const double cycles_per_arrival = core_clock_mhz * 1.0e6 / s.rateHz;
    Rng rng(s.seed);
    double t = 0.0;
    for (uint32_t b = 0; b < s.bursts; ++b) {
        t += -std::log(1.0 - rng.nextDouble()) * cycles_per_arrival;
        bases.push_back(static_cast<Cycle>(t));
    }
    return bases;
}

SubmitResult
submitScenario(const Scenario &sc, Gpu &gpu, AddressSpace &heap,
               Materialized &out)
{
    SubmitResult r;
    GfxBuild gb;
    if (sc.graphics.present) {
        gb = prepareGraphics(sc, heap, out);
        r.gfx = gpu.createStream("graphics");
    }
    if (sc.compute.present) {
        r.cmp = gpu.createStream("compute");
    }
    for (uint32_t f = 0; sc.graphics.present && f < sc.graphics.frames;
         ++f) {
        out.frames.push_back(
            renderFrame(sc, gb, f, heap, *out.pipeline));
        submitFrame(gpu, r.gfx, out.frames.back(),
                    sc.graphics.fixedFunctionDelay);
    }
    if (r.cmp != kInvalidStream) {
        const ComputeDesc &cd = sc.compute;
        if (!cd.preset.empty()) {
            // Preset workloads serialize in stream order, exactly as
            // crisp_sim's hand path enqueues them.
            for (const KernelInfo &k :
                 buildPresetCompute(cd, heap, out.pipeline.get())) {
                gpu.enqueueKernel(r.cmp, k);
            }
        } else {
            enqueueExplicit(gpu, r.cmp, cd,
                            buildExplicitKernels(cd, heap,
                                                 out.pipeline.get()));
        }
    }
    return r;
}

MultiSubmitResult
submitScenarioMulti(const Scenario &sc, mgpu::MultiGpu &mgpu,
                    Materialized &out)
{
    const uint32_t n = mgpu.config().numGpus;
    MultiSubmitResult r;
    PartitionPolicy policy = PartitionPolicy::Exhaustive;
    switch (sc.gpu.placement) {
    case Placement::Split:
        r.gfxDevice = 0;
        r.cmpDevice = 1;
        break;
    case Placement::Colocated:
        policy = PartitionPolicy::Mps;
        break;
    case Placement::Mig:
        policy = PartitionPolicy::Mig;
        break;
    }
    if (sc.graphics.device >= 0) {
        r.gfxDevice = static_cast<uint32_t>(sc.graphics.device);
    }
    if (sc.compute.device >= 0) {
        r.cmpDevice = static_cast<uint32_t>(sc.compute.device);
    }
    fatal_if(r.gfxDevice >= n || r.cmpDevice >= n,
             "scenario stream device out of range");

    // One heap per device, each at the single-GPU layout's local base
    // offset into that device's address window — addresses outlive the
    // allocators, which only exist for the duration of the build.
    std::vector<AddressSpace> heaps;
    heaps.reserve(n);
    for (uint32_t d = 0; d < n; ++d) {
        heaps.push_back(mgpu.heapFor(d));
    }

    GfxBuild gb;
    if (sc.graphics.present) {
        gb = prepareGraphics(sc, heaps[r.gfxDevice], out);
        r.gfx = mgpu.device(r.gfxDevice).createStream("graphics");
    }
    if (sc.compute.present) {
        r.cmp = mgpu.device(r.cmpDevice).createStream("compute");
    }
    for (uint32_t f = 0; sc.graphics.present && f < sc.graphics.frames;
         ++f) {
        out.frames.push_back(renderFrame(sc, gb, f, heaps[r.gfxDevice],
                                         *out.pipeline));
        submitFrame(mgpu.device(r.gfxDevice), r.gfx, out.frames.back(),
                    sc.graphics.fixedFunctionDelay);
    }
    if (r.cmp != kInvalidStream) {
        const ComputeDesc &cd = sc.compute;
        Gpu &cgpu = mgpu.device(r.cmpDevice);
        if (!cd.preset.empty()) {
            for (const KernelInfo &k : buildPresetCompute(
                     cd, heaps[r.cmpDevice], out.pipeline.get())) {
                cgpu.enqueueKernel(r.cmp, k);
            }
        } else {
            const std::function<AddressSpace &(const BufferNode &)>
                buffer_heap = [&](const BufferNode &b) -> AddressSpace & {
                return heaps[b.device >= 0
                                 ? static_cast<uint32_t>(b.device)
                                 : r.cmpDevice];
            };
            enqueueExplicit(cgpu, r.cmp, cd,
                            buildExplicitKernels(cd, heaps[r.cmpDevice],
                                                 out.pipeline.get(),
                                                 buffer_heap));
        }
    }

    // Placement implies partitioning when both streams share a device:
    // colocated = MPS (even SM split), mig = MiG (SM split + L2 bank
    // masks). Split devices keep the Exhaustive default — each stream
    // owns its device outright.
    if (policy != PartitionPolicy::Exhaustive &&
        r.gfxDevice == r.cmpDevice && r.gfx != kInvalidStream &&
        r.cmp != kInvalidStream) {
        PartitionConfig part;
        part.policy = policy;
        mgpu.device(r.gfxDevice).setPartition(part);
    }
    return r;
}

bool
flattenable(const Scenario &sc, std::string &why)
{
    why.clear();
    if (sc.graphics.present && sc.graphics.fixedFunctionDelay != 0) {
        why = "fixed_function_delay has no packed-trace representation";
        return false;
    }
    if (sc.gpu.numGpus > 1) {
        why = "multi-GPU scenarios have no packed-trace representation";
        return false;
    }
    const ComputeDesc &cd = sc.compute;
    if (cd.present && cd.preset.empty()) {
        if (cd.schedule.bursts > 1) {
            why = "burst schedules have no packed-trace representation";
            return false;
        }
        if (cd.schedule.poisson) {
            why = "Poisson arrival schedules have no packed-trace "
                  "representation";
            return false;
        }
        for (const KernelNode &kn : cd.kernels) {
            if (kn.hasAt && kn.at != 0) {
                why = "arrival times (\"at\") have no packed-trace "
                      "representation";
                return false;
            }
            if (kn.delay != 0) {
                why = "dependency delays have no packed-trace "
                      "representation";
                return false;
            }
        }
    }
    return true;
}

bool
computeReadsFrame(const Scenario &sc)
{
    if (!sc.graphics.present || !sc.compute.present) {
        return false;
    }
    if (sc.compute.preset == "ATW") {
        return true;
    }
    for (const KernelNode &kn : sc.compute.kernels) {
        for (const LoadNode &ln : kn.loads) {
            if (ln.buffer == "frame_color") {
                return true;
            }
        }
        if (kn.hasStore && kn.store.buffer == "frame_color") {
            return true;
        }
    }
    return false;
}

void
flattenGraphicsSide(const Scenario &sc, AddressSpace &heap,
                    Materialized &out, std::vector<KernelInfo> &kernels,
                    std::vector<int> &deps)
{
    GfxBuild gb = prepareGraphics(sc, heap, out);
    for (uint32_t f = 0; f < sc.graphics.frames; ++f) {
        RenderSubmission rs = renderFrame(sc, gb, f, heap, *out.pipeline);
        const int offset = static_cast<int>(kernels.size());
        for (size_t i = 0; i < rs.kernels.size(); ++i) {
            kernels.push_back(rs.kernels[i]);
            const int dep = i < rs.dependsOn.size() ? rs.dependsOn[i] : -1;
            deps.push_back(dep < 0 ? -1 : dep + offset);
        }
        out.frames.push_back(std::move(rs));
    }
}

void
flattenComputeSide(const Scenario &sc, AddressSpace &heap,
                   RenderPipeline *pipeline,
                   std::vector<KernelInfo> &kernels,
                   std::vector<int> &deps)
{
    const ComputeDesc &cd = sc.compute;
    if (!cd.preset.empty()) {
        kernels = buildPresetCompute(cd, heap, pipeline);
        for (size_t i = 0; i < kernels.size(); ++i) {
            // The live path chains presets in stream order.
            deps.push_back(i == 0 ? -1 : static_cast<int>(i) - 1);
        }
    } else {
        kernels = buildExplicitKernels(cd, heap, pipeline);
        std::map<std::string, int> index;
        for (size_t i = 0; i < cd.kernels.size(); ++i) {
            const KernelNode &kn = cd.kernels[i];
            deps.push_back(kn.hasAfter ? index.at(kn.after) : -1);
            index[kn.name] = static_cast<int>(i);
        }
    }
}

bool
flattenScenario(const Scenario &sc, AddressSpace &heap, Materialized &out,
                Flattened &flat, std::string &why)
{
    if (!flattenable(sc, why)) {
        return false;
    }
    if (sc.graphics.present) {
        flattenGraphicsSide(sc, heap, out, flat.gfxKernels,
                            flat.gfxDependsOn);
    }
    if (sc.compute.present) {
        flattenComputeSide(sc, heap, out.pipeline.get(), flat.cmpKernels,
                           flat.cmpDependsOn);
    }
    return true;
}

} // namespace crisp::scenario
