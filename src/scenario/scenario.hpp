#ifndef CRISP_SCENARIO_SCENARIO_HPP
#define CRISP_SCENARIO_SCENARIO_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graphics/vec.hpp"

namespace crisp::scenario
{

/**
 * @file
 * crisp::scenario — data-driven workload description files.
 *
 * A scenario file is one JSON document describing a complete submission:
 * the rendering side (a preset scene or an explicit mesh/material/draw
 * graph, resolution, batching knobs, per-frame deformation) and the
 * compute side (a preset workload or explicit kernel descriptions with
 * buffers, dependencies and an arrival schedule). The loader validates
 * the document against the schema below and resolves every named node,
 * so a file either produces exactly the submission it describes or a
 * single file:line:col-carrying rejection — never a partial build or a
 * fatal() deep inside a generator.
 *
 * `//` line comments are allowed (stripped before parsing, offsets
 * preserved so diagnostics still point at the right byte).
 *
 * The same file drives every entry point: `crisp_sim --scenario`,
 * `trace_pack <file.json>`, `crisp_submit --scenario` and crispd's
 * `scenario` job kind, which also caches flattenable scenarios by their
 * canonicalized text (see Scenario::canonicalText).
 */

/**
 * A rejected scenario: where and why. `file` is the path given to the
 * loader (or the caller's label for in-memory text); line/column are
 * 1-based and point at the offending JSON value.
 */
struct ScenarioError
{
    std::string file;
    uint32_t line = 0;
    uint32_t col = 0;
    std::string message;

    /** "file:line:col: message" (the compiler-diagnostic shape). */
    std::string str() const;
};

// --- Graphics side ---------------------------------------------------------

/** One named procedural mesh ("type" selects the Mesh::make* factory). */
struct MeshNode
{
    std::string name;
    std::string type;          ///< plane | sphere | box | cylinder | rock.
    uint32_t quads = 8;        ///< plane: quads per side.
    float size = 10.0f;        ///< plane: edge length.
    float uvTile = 1.0f;       ///< plane/box/cylinder: uv tiling factor.
    uint32_t stacks = 16;      ///< sphere/rock.
    uint32_t slices = 24;      ///< sphere/rock/cylinder.
    float radius = 1.0f;       ///< sphere/rock/cylinder.
    float height = 2.0f;       ///< cylinder.
    Vec3 extent{1.0f, 1.0f, 1.0f};  ///< box.
    uint64_t seed = 1;         ///< rock: noise seed.
};

/** One named material (built via the exported scene material helpers). */
struct MaterialNode
{
    std::string name;
    std::string shader = "basic";  ///< basic | pbr.
    uint32_t texDim = 256;
    uint64_t seed = 1;
    uint32_t extraAlu = 0;     ///< basic: extra per-fragment ALU ops.
    /** basic only: >1 builds a layered array texture (Planets-style);
     *  instanced draws then cycle instances through the layers. */
    uint32_t layers = 1;
};

/** One draw call referencing a mesh and material by name. */
struct DrawNode
{
    std::string name;
    std::string mesh;
    std::string material;
    Vec3 translate{0.0f, 0.0f, 0.0f};
    float scale = 1.0f;
    float rotateYDeg = 0.0f;
    /** >1 builds an instanced ring (the Planets asteroid-belt idiom):
     *  deterministic placement from instanceSeed at ringRadius. */
    uint32_t instances = 1;
    uint64_t instanceSeed = 303;
    float ringRadius = 10.0f;
};

struct CameraNode
{
    Vec3 eye{0.0f, 3.0f, 10.0f};
    Vec3 lookAt{0.0f, 0.0f, 0.0f};
    float fovDeg = 60.0f;
};

/**
 * Per-frame sinusoidal deformation of one mesh (animated/cloth content):
 * frame f re-tessellates `mesh` at time f*step through Mesh::deformed,
 * allocating fresh vertex/index buffers — the dynamic re-upload cost a
 * deforming mesh pays every frame.
 */
struct DeformNode
{
    bool enabled = false;
    std::string mesh;
    float amplitude = 0.05f;
    float frequency = 3.0f;
    float step = 0.5f;
};

struct GraphicsDesc
{
    bool present = false;
    /** Preset scene name (SPL|SPH|PT|IT|PL|MT); empty = explicit nodes. */
    std::string preset;
    std::vector<MeshNode> meshes;
    std::vector<MaterialNode> materials;
    std::vector<DrawNode> draws;
    CameraNode camera;
    uint32_t width = 640;
    uint32_t height = 360;
    bool lod = true;
    uint32_t frames = 1;
    uint32_t batchSize = 0;    ///< 0 = pipeline default.
    Cycle fixedFunctionDelay = 0;
    DeformNode deform;
    /** Device this stream runs on (num_gpus > 1; -1 = placement default). */
    int32_t device = -1;
};

// --- Compute side ----------------------------------------------------------

/** A named global-memory region kernels address their patterns at. */
struct BufferNode
{
    std::string name;
    uint64_t bytes = 1 << 20;
    /** Device whose heap window homes this buffer (num_gpus > 1;
     *  -1 = the compute stream's own device). A buffer homed away from
     *  the stream that reads it makes every miss a remote access. */
    int32_t device = -1;
};

/** One memory-access group of an explicit kernel. */
struct LoadNode
{
    /** Declared buffer name, or "frame_color" for the rendered frame's
     *  color buffer (requires a graphics side; the ATW idiom). */
    std::string buffer;
    std::string pattern = "streaming";  ///< streaming|stencil|gather|broadcast.
    uint32_t accessBytes = 4;
    uint32_t count = 1;
    uint32_t rowPitch = 640;
};

/** One explicit compute kernel (maps onto ComputeKernelDesc). */
struct KernelNode
{
    std::string name;
    uint32_t ctas = 64;
    uint32_t threadsPerCta = 256;
    uint32_t regsPerThread = 32;
    uint32_t smemPerCta = 0;
    uint32_t iterations = 1;
    uint32_t fp32Ops = 0;
    uint32_t intOps = 0;
    uint32_t sfuOps = 0;
    uint32_t tensorOps = 0;
    uint32_t smemLoads = 0;
    uint32_t smemStores = 0;
    bool barrierPerIteration = false;
    uint32_t divergenceExtraIters = 0;
    uint64_t divergenceSeed = 0;
    std::vector<LoadNode> loads;
    bool hasStore = false;
    LoadNode store;
    /** Launch dependency: name of an earlier kernel in this list. */
    std::string after;
    bool hasAfter = false;
    Cycle delay = 0;           ///< Extra cycles after `after` completes.
    Cycle at = 0;              ///< Arrival cycle (enqueueKernelAt).
    bool hasAt = false;
};

/** Burst-arrival schedule: the kernel list replayed `bursts` times,
 *  burst b arriving at cycle b*period (+ each kernel's own `at`), or —
 *  with a Poisson arrival model — at seeded-random cumulative
 *  exponential gaps around 1/rate_hz (deterministic for a fixed seed). */
struct ScheduleNode
{
    uint32_t bursts = 1;
    Cycle period = 0;
    /** "arrivals": {"kind": "poisson", "rate_hz": ..., "seed": ...}. */
    bool poisson = false;
    double rateHz = 0.0;
    uint64_t seed = 1;
};

struct ComputeDesc
{
    bool present = false;
    /** Preset workload (VIO|HOLO|NN|ATW); empty = explicit kernels. */
    std::string preset;
    uint32_t frames = 1;       ///< VIO.
    uint32_t width = 320;      ///< VIO / ATW.
    uint32_t height = 240;     ///< VIO / ATW.
    uint32_t points = 3;       ///< HOLO.
    uint32_t layers = 3;       ///< NN.
    std::vector<BufferNode> buffers;
    std::vector<KernelNode> kernels;
    ScheduleNode schedule;
    /** Device this stream runs on (num_gpus > 1; -1 = placement default). */
    int32_t device = -1;
};

// --- Whole scenario --------------------------------------------------------

/** How a multi-GPU scenario spreads its streams across devices. */
enum class Placement
{
    Split,      ///< Graphics and compute on different devices.
    Colocated,  ///< Both streams on one device, MPS-style SM split.
    Mig,        ///< Both on one device, MiG SM split + L2 bank masks.
};

struct GpuDesc
{
    std::string preset = "rtx3070";  ///< rtx3070 | orin.
    uint32_t numSms = 0;             ///< 0 = preset's count.
    /** Devices in the machine; 1 = classic single-GPU submission. */
    uint32_t numGpus = 1;
    /** Stream dispatch across devices (num_gpus > 1 only). */
    Placement placement = Placement::Split;
};

struct Scenario
{
    std::string name;
    GpuDesc gpu;
    GraphicsDesc graphics;
    ComputeDesc compute;

    /**
     * Canonical single-line rendering of the validated document
     * (comments stripped, whitespace normalized, key order preserved).
     * Two files describing the same scenario byte-for-byte after
     * canonicalization share cache fingerprints in crispd.
     */
    std::string canonicalText;
    /** Path (or caller label) the scenario was loaded from. */
    std::string sourceFile;
};

/**
 * Parse and validate scenario text. On failure returns false and fills
 * @p err with file:line:col coordinates of the offending value; @p out
 * is unspecified. @p file_label is used for diagnostics only.
 */
bool loadScenarioText(const std::string &text, const std::string &file_label,
                      Scenario &out, ScenarioError &err);

/** Read @p path and load it; missing/unreadable files are errors too. */
bool loadScenarioFile(const std::string &path, Scenario &out,
                      ScenarioError &err);

} // namespace crisp::scenario

#endif // CRISP_SCENARIO_SCENARIO_HPP
