#ifndef CRISP_SCENARIO_BUILD_HPP
#define CRISP_SCENARIO_BUILD_HPP

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "mgpu/multi_gpu.hpp"
#include "scenario/scenario.hpp"

namespace crisp::scenario
{

/** The GpuConfig a scenario asks for (preset plus num_sms override). */
GpuConfig gpuConfigFor(const Scenario &sc);

/**
 * Everything the enqueued kernels reference — the scene (trace generators
 * sample its textures at replay time), the pipeline and the functional
 * frame reports. Must outlive the Gpu::run that replays the kernels.
 */
struct Materialized
{
    std::vector<std::unique_ptr<Scene>> scenes;
    std::unique_ptr<RenderPipeline> pipeline;
    std::vector<RenderSubmission> frames;
};

/** Stream ids the scenario's work landed on (kInvalidStream = no side). */
struct SubmitResult
{
    StreamId gfx = kInvalidStream;
    StreamId cmp = kInvalidStream;
};

/**
 * Materialize the scenario and enqueue all of its work on @p gpu.
 *
 * The call sequence mirrors crisp_sim's hand-built path exactly — scene,
 * pipeline, graphics stream, compute stream, per-frame submission,
 * compute enqueue — in the same order with the same heap-allocation
 * pattern, so a preset-backed scenario file replays bit-identically to
 * the equivalent crisp_sim command line.
 *
 * Partitioning is not part of the scenario (callers pick the policy);
 * call Gpu::setPartition after this returns.
 */
SubmitResult submitScenario(const Scenario &sc, Gpu &gpu,
                            AddressSpace &heap, Materialized &out);

/** submitScenarioMulti's SubmitResult: stream ids plus the device each
 *  stream landed on under the scenario's placement. */
struct MultiSubmitResult
{
    StreamId gfx = kInvalidStream;
    StreamId cmp = kInvalidStream;
    uint32_t gfxDevice = 0;
    uint32_t cmpDevice = 0;
};

/**
 * Materialize a multi-GPU scenario (gpu.num_gpus > 1) onto @p mgpu.
 *
 * The gpu.placement knob resolves each stream to a device — split puts
 * graphics on device 0 and compute on device 1, colocated/mig put both
 * on device 0 (with the matching MPS/MiG partition applied) — and
 * per-stream "device" fields override it. Graphics resources allocate
 * from the graphics device's heap window, compute buffers from the
 * compute device's, and a buffer's own "device" field overrides that;
 * a buffer homed away from the stream that touches it makes every L1
 * miss a remote access over the inter-GPU fabric.
 */
MultiSubmitResult submitScenarioMulti(const Scenario &sc,
                                      mgpu::MultiGpu &mgpu,
                                      Materialized &out);

/**
 * Arrival cycle of each burst of @p s: b*period for the periodic model,
 * or seeded cumulative exponential gaps with mean core_clock/rate_hz
 * for the Poisson model — deterministic for a fixed seed.
 */
std::vector<Cycle> burstBases(const ScheduleNode &s, double core_clock_mhz);

/**
 * A scenario flattened to the packed-trace shape: per-stream kernel lists
 * with dependency indices (-1 = none). Only dependency-expressible
 * scenarios flatten; arrival schedules (bursts, "at", "delay",
 * fixed_function_delay) have no CRTR representation.
 */
struct Flattened
{
    std::vector<KernelInfo> gfxKernels;
    std::vector<int> gfxDependsOn;
    std::vector<KernelInfo> cmpKernels;
    std::vector<int> cmpDependsOn;
};

/**
 * Whether the scenario can be expressed in the packed-trace shape at
 * all. False (with @p why set) for arrival schedules — bursts, "at",
 * "delay", fixed_function_delay — which only run live.
 */
bool flattenable(const Scenario &sc, std::string &why);

/**
 * Whether the compute side samples the rendered frame (the ATW preset
 * or a "frame_color" load with a graphics side present). Such sides
 * cannot be built without the graphics pipeline, so a cache cannot
 * treat the two sides as independent entries.
 */
bool computeReadsFrame(const Scenario &sc);

/**
 * Flatten only the graphics side: functionally render every frame and
 * collect the kernels with cross-frame-adjusted dependency indices.
 * Requires sc.graphics.present and flattenable().
 */
void flattenGraphicsSide(const Scenario &sc, AddressSpace &heap,
                         Materialized &out,
                         std::vector<KernelInfo> &kernels,
                         std::vector<int> &deps);

/**
 * Flatten only the compute side. @p pipeline resolves frame_color/ATW
 * references (may be nullptr when computeReadsFrame() is false).
 * Requires sc.compute.present and flattenable(). Preset workloads get
 * the serial chain deps the live path's stream order implies.
 */
void flattenComputeSide(const Scenario &sc, AddressSpace &heap,
                        RenderPipeline *pipeline,
                        std::vector<KernelInfo> &kernels,
                        std::vector<int> &deps);

/**
 * Flatten the whole scenario without a Gpu (trace packing, cache
 * population): graphics side first, then compute, matching the live
 * path's heap-allocation order. Returns false with @p why set when not
 * flattenable(); such scenarios still run live through submitScenario.
 */
bool flattenScenario(const Scenario &sc, AddressSpace &heap,
                     Materialized &out, Flattened &flat, std::string &why);

} // namespace crisp::scenario

#endif // CRISP_SCENARIO_BUILD_HPP
