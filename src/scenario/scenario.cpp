#include "scenario/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <set>

#include "common/json.hpp"

namespace crisp::scenario
{

std::string
ScenarioError::str() const
{
    return file + ":" + std::to_string(line) + ":" + std::to_string(col) +
           ": " + message;
}

namespace
{

/**
 * Strip `//` line comments, preserving byte offsets: every comment byte
 * (up to, not including, the newline) becomes a space, so offsets stamped
 * by the JSON parser still index the original file for diagnostics.
 * Comment markers inside string literals are left alone.
 */
std::string
stripComments(const std::string &text)
{
    std::string out = text;
    bool in_string = false;
    bool escaped = false;
    for (size_t i = 0; i < out.size(); ++i) {
        const char c = out[i];
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
            continue;
        }
        if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
            while (i < out.size() && out[i] != '\n') {
                out[i++] = ' ';
            }
        }
    }
    return out;
}

/**
 * Validation context: the source text (for offset -> line:col), the error
 * slot, and a sticky ok flag so every helper no-ops after the first
 * failure — the loader reports exactly one, earliest-detected error.
 */
struct Ctx
{
    const std::string &text;
    const std::string &file;
    ScenarioError &err;
    bool ok = true;

    bool
    fail(const Json &node, std::string msg)
    {
        if (!ok) {
            return false;
        }
        ok = false;
        err.file = file;
        const size_t off =
            node.srcOffset() == Json::kNoOffset ? 0 : node.srcOffset();
        Json::offsetToLineCol(text, off, err.line, err.col);
        err.message = std::move(msg);
        return false;
    }

    /** Reject keys outside the allowlist (typo'd or unsupported knobs). */
    bool
    checkKeys(const Json &obj, std::initializer_list<const char *> allowed)
    {
        if (!ok) {
            return false;
        }
        for (const auto &[key, value] : obj.fields()) {
            bool known = false;
            for (const char *a : allowed) {
                if (key == a) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                return fail(value, "unknown key \"" + key + "\"");
            }
        }
        return true;
    }

    /** Optional unsigned integer field with an inclusive range. */
    template <typename T>
    bool
    getUint(const Json &obj, const char *key, T &out, uint64_t min,
            uint64_t max)
    {
        if (!ok) {
            return false;
        }
        const Json *v = obj.find(key);
        if (!v) {
            return true;
        }
        if (!v->isNumber()) {
            return fail(*v, std::string(key) + " must be a number");
        }
        const double d = v->asDouble();
        if (d < 0 || d != std::floor(d)) {
            return fail(*v,
                        std::string(key) + " must be a non-negative integer");
        }
        const uint64_t u = v->asU64();
        if (u < min || u > max) {
            return fail(*v, std::string(key) + " must be in [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "], got " +
                                std::to_string(u));
        }
        out = static_cast<T>(u);
        return true;
    }

    /** Optional finite float field with an inclusive range. */
    bool
    getFloat(const Json &obj, const char *key, float &out, double min,
             double max)
    {
        if (!ok) {
            return false;
        }
        const Json *v = obj.find(key);
        if (!v) {
            return true;
        }
        if (!v->isNumber()) {
            return fail(*v, std::string(key) + " must be a number");
        }
        const double d = v->asDouble();
        if (!std::isfinite(d) || d < min || d > max) {
            return fail(*v, std::string(key) + " must be in [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "]");
        }
        out = static_cast<float>(d);
        return true;
    }

    bool
    getBool(const Json &obj, const char *key, bool &out)
    {
        if (!ok) {
            return false;
        }
        const Json *v = obj.find(key);
        if (!v) {
            return true;
        }
        if (!v->isBool()) {
            return fail(*v, std::string(key) + " must be true or false");
        }
        out = v->asBool();
        return true;
    }

    bool
    getString(const Json &obj, const char *key, std::string &out)
    {
        if (!ok) {
            return false;
        }
        const Json *v = obj.find(key);
        if (!v) {
            return true;
        }
        if (!v->isString()) {
            return fail(*v, std::string(key) + " must be a string");
        }
        out = v->asString();
        return true;
    }

    /** Required string drawn from a closed set of alternatives. */
    bool
    getChoice(const Json &obj, const char *key, std::string &out,
              std::initializer_list<const char *> choices)
    {
        if (!getString(obj, key, out)) {
            return false;
        }
        if (!ok) {
            return false;
        }
        for (const char *c : choices) {
            if (out == c) {
                return true;
            }
        }
        std::string all;
        for (const char *c : choices) {
            all += all.empty() ? "" : "|";
            all += c;
        }
        const Json *v = obj.find(key);
        return fail(v ? *v : obj, std::string(key) + " must be one of " +
                                      all + ", got \"" + out + "\"");
    }

    /** Optional [x, y, z] array of finite numbers. */
    bool
    getVec3(const Json &obj, const char *key, Vec3 &out)
    {
        if (!ok) {
            return false;
        }
        const Json *v = obj.find(key);
        if (!v) {
            return true;
        }
        if (!v->isArray() || v->items().size() != 3) {
            return fail(*v, std::string(key) +
                                " must be an array of 3 numbers");
        }
        float xyz[3];
        for (size_t i = 0; i < 3; ++i) {
            const Json &e = v->items()[i];
            if (!e.isNumber() || !std::isfinite(e.asDouble())) {
                return fail(e, std::string(key) +
                                   " must be an array of 3 finite numbers");
            }
            xyz[i] = static_cast<float>(e.asDouble());
        }
        out = {xyz[0], xyz[1], xyz[2]};
        return true;
    }
};

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

bool
parseMesh(Ctx &c, const Json &node, MeshNode &out)
{
    if (!node.isObject()) {
        return c.fail(node, "mesh entry must be an object");
    }
    c.checkKeys(node, {"name", "type", "quads", "size", "uv_tile", "stacks",
                       "slices", "radius", "height", "extent", "seed"});
    c.getString(node, "name", out.name);
    c.getChoice(node, "type", out.type,
                {"plane", "sphere", "box", "cylinder", "rock"});
    c.getUint(node, "quads", out.quads, 1, 256);
    c.getFloat(node, "size", out.size, 0.01, 1000.0);
    c.getFloat(node, "uv_tile", out.uvTile, 0.01, 256.0);
    c.getUint(node, "stacks", out.stacks, 2, 256);
    c.getUint(node, "slices", out.slices, 3, 256);
    c.getFloat(node, "radius", out.radius, 0.01, 1000.0);
    c.getFloat(node, "height", out.height, 0.01, 1000.0);
    c.getVec3(node, "extent", out.extent);
    c.getUint(node, "seed", out.seed, 0, ~0ull >> 1);
    if (c.ok && out.name.empty()) {
        return c.fail(node, "mesh needs a non-empty \"name\"");
    }
    if (c.ok && out.type.empty()) {
        return c.fail(node, "mesh \"" + out.name + "\" needs a \"type\"");
    }
    if (c.ok && (out.extent.x <= 0 || out.extent.y <= 0 ||
                 out.extent.z <= 0)) {
        return c.fail(*node.find("extent"),
                      "extent components must be positive");
    }
    return c.ok;
}

bool
parseMaterial(Ctx &c, const Json &node, MaterialNode &out)
{
    if (!node.isObject()) {
        return c.fail(node, "material entry must be an object");
    }
    c.checkKeys(node,
                {"name", "shader", "tex_dim", "seed", "extra_alu", "layers"});
    c.getString(node, "name", out.name);
    if (node.find("shader")) {
        c.getChoice(node, "shader", out.shader, {"basic", "pbr"});
    }
    c.getUint(node, "tex_dim", out.texDim, 16, 2048);
    c.getUint(node, "seed", out.seed, 0, ~0ull >> 1);
    c.getUint(node, "extra_alu", out.extraAlu, 0, 1024);
    c.getUint(node, "layers", out.layers, 1, 64);
    if (c.ok && out.name.empty()) {
        return c.fail(node, "material needs a non-empty \"name\"");
    }
    if (c.ok && !isPowerOfTwo(out.texDim)) {
        return c.fail(*node.find("tex_dim"),
                      "tex_dim must be a power of two");
    }
    if (c.ok && out.shader == "pbr" && out.layers > 1) {
        return c.fail(*node.find("layers"),
                      "layered array textures need shader \"basic\"");
    }
    if (c.ok && out.shader == "pbr" && out.extraAlu > 0) {
        return c.fail(*node.find("extra_alu"),
                      "extra_alu applies to shader \"basic\" only");
    }
    return c.ok;
}

bool
parseDraw(Ctx &c, const Json &node, DrawNode &out)
{
    if (!node.isObject()) {
        return c.fail(node, "draw entry must be an object");
    }
    c.checkKeys(node, {"name", "mesh", "material", "translate", "scale",
                       "rotate_y_deg", "instances", "instance_seed",
                       "ring_radius"});
    c.getString(node, "name", out.name);
    c.getString(node, "mesh", out.mesh);
    c.getString(node, "material", out.material);
    c.getVec3(node, "translate", out.translate);
    c.getFloat(node, "scale", out.scale, 0.001, 1000.0);
    c.getFloat(node, "rotate_y_deg", out.rotateYDeg, -360.0, 360.0);
    c.getUint(node, "instances", out.instances, 1, 4096);
    c.getUint(node, "instance_seed", out.instanceSeed, 0, ~0ull >> 1);
    c.getFloat(node, "ring_radius", out.ringRadius, 0.1, 1000.0);
    if (c.ok && out.name.empty()) {
        return c.fail(node, "draw needs a non-empty \"name\"");
    }
    if (c.ok && out.mesh.empty()) {
        return c.fail(node, "draw \"" + out.name + "\" needs a \"mesh\"");
    }
    if (c.ok && out.material.empty()) {
        return c.fail(node,
                      "draw \"" + out.name + "\" needs a \"material\"");
    }
    return c.ok;
}

/**
 * Optional "device" field of a workload or buffer node: which device of
 * an n-GPU machine it lives on. Rejected outright on a single-GPU
 * machine so a file cannot silently describe traffic that cannot exist.
 */
bool
parseDevice(Ctx &c, const Json &node, uint32_t num_gpus, int32_t &out)
{
    const Json *v = node.find("device");
    if (!v || !c.ok) {
        return c.ok;
    }
    if (num_gpus <= 1) {
        return c.fail(*v, "\"device\" needs gpu.num_gpus > 1");
    }
    uint32_t device = 0;
    if (!c.getUint(node, "device", device, 0, num_gpus - 1)) {
        return false;
    }
    out = static_cast<int32_t>(device);
    return true;
}

bool
parseGraphics(Ctx &c, const Json &node, GraphicsDesc &out,
              uint32_t num_gpus)
{
    if (!node.isObject()) {
        return c.fail(node, "\"graphics\" must be an object");
    }
    out.present = true;
    c.checkKeys(node, {"preset", "meshes", "materials", "draws", "camera",
                       "width", "height", "lod", "frames", "batch_size",
                       "fixed_function_delay", "animation", "device"});
    parseDevice(c, node, num_gpus, out.device);
    if (node.find("preset")) {
        c.getChoice(node, "preset", out.preset,
                    {"SPL", "SPH", "PT", "IT", "PL", "MT"});
    }
    c.getUint(node, "width", out.width, 16, 4096);
    c.getUint(node, "height", out.height, 16, 4096);
    c.getBool(node, "lod", out.lod);
    c.getUint(node, "frames", out.frames, 1, 64);
    c.getUint(node, "batch_size", out.batchSize, 0, 1024);
    c.getUint(node, "fixed_function_delay", out.fixedFunctionDelay, 0,
              1'000'000'000ull);
    if (!c.ok) {
        return false;
    }

    const bool explicit_nodes = node.find("meshes") ||
        node.find("materials") || node.find("draws") || node.find("camera");
    if (!out.preset.empty() && explicit_nodes) {
        return c.fail(node, "\"preset\" excludes explicit "
                            "meshes/materials/draws/camera nodes");
    }
    if (out.preset.empty() && !explicit_nodes) {
        return c.fail(node, "graphics needs a \"preset\" or explicit "
                            "meshes/materials/draws");
    }

    std::set<std::string> mesh_names;
    std::set<std::string> material_names;
    if (out.preset.empty()) {
        const Json *meshes = node.find("meshes");
        const Json *materials = node.find("materials");
        const Json *draws = node.find("draws");
        if (!meshes || !meshes->isArray() || meshes->items().empty()) {
            return c.fail(meshes ? *meshes : node,
                          "\"meshes\" must be a non-empty array");
        }
        if (!materials || !materials->isArray() ||
            materials->items().empty()) {
            return c.fail(materials ? *materials : node,
                          "\"materials\" must be a non-empty array");
        }
        if (!draws || !draws->isArray() || draws->items().empty()) {
            return c.fail(draws ? *draws : node,
                          "\"draws\" must be a non-empty array");
        }
        for (const Json &m : meshes->items()) {
            MeshNode mesh;
            if (!parseMesh(c, m, mesh)) {
                return false;
            }
            if (!mesh_names.insert(mesh.name).second) {
                return c.fail(m, "duplicate mesh \"" + mesh.name + "\"");
            }
            out.meshes.push_back(std::move(mesh));
        }
        for (const Json &m : materials->items()) {
            MaterialNode mat;
            if (!parseMaterial(c, m, mat)) {
                return false;
            }
            if (!material_names.insert(mat.name).second) {
                return c.fail(m, "duplicate material \"" + mat.name + "\"");
            }
            out.materials.push_back(std::move(mat));
        }
        std::set<std::string> draw_names;
        for (const Json &d : draws->items()) {
            DrawNode draw;
            if (!parseDraw(c, d, draw)) {
                return false;
            }
            if (!draw_names.insert(draw.name).second) {
                return c.fail(d, "duplicate draw \"" + draw.name + "\"");
            }
            if (!mesh_names.count(draw.mesh)) {
                return c.fail(d, "draw \"" + draw.name +
                                     "\" references unknown mesh \"" +
                                     draw.mesh + "\"");
            }
            if (!material_names.count(draw.material)) {
                return c.fail(d, "draw \"" + draw.name +
                                     "\" references unknown material \"" +
                                     draw.material + "\"");
            }
            out.draws.push_back(std::move(draw));
        }
        if (const Json *cam = node.find("camera")) {
            if (!cam->isObject()) {
                return c.fail(*cam, "\"camera\" must be an object");
            }
            c.checkKeys(*cam, {"eye", "look_at", "fov_deg"});
            c.getVec3(*cam, "eye", out.camera.eye);
            c.getVec3(*cam, "look_at", out.camera.lookAt);
            c.getFloat(*cam, "fov_deg", out.camera.fovDeg, 10.0, 170.0);
            if (!c.ok) {
                return false;
            }
        }
    }

    if (const Json *anim = node.find("animation")) {
        if (!anim->isObject()) {
            return c.fail(*anim, "\"animation\" must be an object");
        }
        c.checkKeys(*anim, {"deform"});
        const Json *deform = anim->find("deform");
        if (!deform) {
            return c.fail(*anim, "\"animation\" needs a \"deform\" object");
        }
        if (!deform->isObject()) {
            return c.fail(*deform, "\"deform\" must be an object");
        }
        c.checkKeys(*deform, {"mesh", "amplitude", "frequency", "step"});
        out.deform.enabled = true;
        c.getString(*deform, "mesh", out.deform.mesh);
        c.getFloat(*deform, "amplitude", out.deform.amplitude, 0.0, 100.0);
        c.getFloat(*deform, "frequency", out.deform.frequency, 0.0, 1000.0);
        c.getFloat(*deform, "step", out.deform.step, 0.0, 100.0);
        if (!c.ok) {
            return false;
        }
        if (!out.preset.empty()) {
            return c.fail(*deform,
                          "deform animation needs explicit meshes, not a "
                          "preset scene");
        }
        if (!mesh_names.count(out.deform.mesh)) {
            return c.fail(*deform, "deform references unknown mesh \"" +
                                       out.deform.mesh + "\"");
        }
    }
    return c.ok;
}

bool
parseLoad(Ctx &c, const Json &node, LoadNode &out, const char *what)
{
    if (!node.isObject()) {
        return c.fail(node, std::string(what) + " must be an object");
    }
    c.checkKeys(node,
                {"buffer", "pattern", "access_bytes", "count", "row_pitch"});
    c.getString(node, "buffer", out.buffer);
    if (node.find("pattern")) {
        c.getChoice(node, "pattern", out.pattern,
                    {"streaming", "stencil", "gather", "broadcast"});
    }
    c.getUint(node, "access_bytes", out.accessBytes, 1, 16);
    c.getUint(node, "count", out.count, 1, 64);
    c.getUint(node, "row_pitch", out.rowPitch, 1, 1 << 20);
    if (c.ok && out.buffer.empty()) {
        return c.fail(node, std::string(what) + " needs a \"buffer\"");
    }
    if (c.ok && !isPowerOfTwo(out.accessBytes)) {
        return c.fail(*node.find("access_bytes"),
                      "access_bytes must be a power of two");
    }
    return c.ok;
}

bool
parseKernel(Ctx &c, const Json &node, KernelNode &out,
            const std::set<std::string> &buffer_names, bool has_graphics)
{
    if (!node.isObject()) {
        return c.fail(node, "kernel entry must be an object");
    }
    c.checkKeys(node, {"name", "ctas", "threads_per_cta", "regs_per_thread",
                       "smem_per_cta", "iterations", "fp32_ops", "int_ops",
                       "sfu_ops", "tensor_ops", "smem_loads", "smem_stores",
                       "barrier_per_iteration", "divergence", "loads",
                       "store", "after", "delay", "at"});
    c.getString(node, "name", out.name);
    c.getUint(node, "ctas", out.ctas, 1, 65536);
    c.getUint(node, "threads_per_cta", out.threadsPerCta, 32, 1024);
    c.getUint(node, "regs_per_thread", out.regsPerThread, 1, 255);
    c.getUint(node, "smem_per_cta", out.smemPerCta, 0, 1 << 20);
    c.getUint(node, "iterations", out.iterations, 1, 65536);
    c.getUint(node, "fp32_ops", out.fp32Ops, 0, 4096);
    c.getUint(node, "int_ops", out.intOps, 0, 4096);
    c.getUint(node, "sfu_ops", out.sfuOps, 0, 4096);
    c.getUint(node, "tensor_ops", out.tensorOps, 0, 4096);
    c.getUint(node, "smem_loads", out.smemLoads, 0, 4096);
    c.getUint(node, "smem_stores", out.smemStores, 0, 4096);
    c.getBool(node, "barrier_per_iteration", out.barrierPerIteration);
    c.getUint(node, "delay", out.delay, 0, 1'000'000'000ull);
    if (!c.ok) {
        return false;
    }
    if (out.name.empty()) {
        return c.fail(node, "kernel needs a non-empty \"name\"");
    }
    if (out.threadsPerCta % 32 != 0) {
        return c.fail(*node.find("threads_per_cta"),
                      "threads_per_cta must be a multiple of 32");
    }
    if (const Json *div = node.find("divergence")) {
        if (!div->isObject()) {
            return c.fail(*div, "\"divergence\" must be an object");
        }
        c.checkKeys(*div, {"extra_iterations", "seed"});
        c.getUint(*div, "extra_iterations", out.divergenceExtraIters, 1,
                  1024);
        c.getUint(*div, "seed", out.divergenceSeed, 0, ~0ull >> 1);
        if (!c.ok) {
            return false;
        }
    }
    if (const Json *loads = node.find("loads")) {
        if (!loads->isArray()) {
            return c.fail(*loads, "\"loads\" must be an array");
        }
        if (loads->items().size() > 8) {
            return c.fail(*loads, "at most 8 load groups per kernel");
        }
        for (const Json &l : loads->items()) {
            LoadNode load;
            if (!parseLoad(c, l, load, "load entry")) {
                return false;
            }
            if (!buffer_names.count(load.buffer) &&
                !(load.buffer == "frame_color" && has_graphics)) {
                return c.fail(l, "load references unknown buffer \"" +
                                     load.buffer + "\"" +
                                     (load.buffer == "frame_color"
                                          ? " (frame_color needs a "
                                            "graphics side)"
                                          : ""));
            }
            out.loads.push_back(std::move(load));
        }
    }
    if (const Json *store = node.find("store")) {
        if (!parseLoad(c, *store, out.store, "\"store\"")) {
            return false;
        }
        if (!buffer_names.count(out.store.buffer)) {
            return c.fail(*store, "store references unknown buffer \"" +
                                      out.store.buffer + "\"");
        }
        out.hasStore = true;
    }
    if (const Json *after = node.find("after")) {
        if (!after->isString() || after->asString().empty()) {
            return c.fail(*after, "\"after\" must name an earlier kernel");
        }
        out.after = after->asString();
        out.hasAfter = true;
    }
    if (const Json *at = node.find("at")) {
        out.hasAt = true;
        c.getUint(node, "at", out.at, 0, 1'000'000'000'000ull);
        if (!c.ok) {
            return false;
        }
        if (out.hasAfter) {
            return c.fail(*at, "\"at\" and \"after\" are mutually "
                               "exclusive");
        }
    }
    if (out.hasAfter && node.find("delay") == nullptr) {
        out.delay = 0;
    }
    if (!out.hasAfter && out.delay != 0) {
        return c.fail(*node.find("delay"),
                      "\"delay\" needs an \"after\" dependency");
    }
    return c.ok;
}

bool
parseCompute(Ctx &c, const Json &node, ComputeDesc &out, bool has_graphics,
             uint32_t num_gpus)
{
    if (!node.isObject()) {
        return c.fail(node, "\"compute\" must be an object");
    }
    out.present = true;
    c.checkKeys(node, {"preset", "frames", "width", "height", "points",
                       "layers", "buffers", "kernels", "schedule",
                       "device"});
    if (!parseDevice(c, node, num_gpus, out.device)) {
        return false;
    }
    if (node.find("preset")) {
        c.getChoice(node, "preset", out.preset,
                    {"VIO", "HOLO", "NN", "ATW"});
    }
    c.getUint(node, "frames", out.frames, 1, 64);
    c.getUint(node, "width", out.width, 16, 4096);
    c.getUint(node, "height", out.height, 16, 4096);
    c.getUint(node, "points", out.points, 1, 64);
    c.getUint(node, "layers", out.layers, 1, 64);
    if (!c.ok) {
        return false;
    }

    const bool explicit_nodes = node.find("buffers") || node.find("kernels");
    if (!out.preset.empty() && explicit_nodes) {
        return c.fail(node,
                      "\"preset\" excludes explicit buffers/kernels");
    }
    if (out.preset.empty() && !explicit_nodes) {
        return c.fail(node, "compute needs a \"preset\" or explicit "
                            "\"kernels\"");
    }
    if (!out.preset.empty() && node.find("schedule")) {
        return c.fail(*node.find("schedule"),
                      "\"schedule\" needs explicit kernels, not a preset");
    }

    std::set<std::string> buffer_names;
    if (out.preset.empty()) {
        uint64_t total_bytes = 0;
        if (const Json *buffers = node.find("buffers")) {
            if (!buffers->isArray()) {
                return c.fail(*buffers, "\"buffers\" must be an array");
            }
            for (const Json &b : buffers->items()) {
                if (!b.isObject()) {
                    return c.fail(b, "buffer entry must be an object");
                }
                c.checkKeys(b, {"name", "bytes", "device"});
                BufferNode buf;
                c.getString(b, "name", buf.name);
                c.getUint(b, "bytes", buf.bytes, 4096, 1ull << 30);
                if (!parseDevice(c, b, num_gpus, buf.device)) {
                    return false;
                }
                if (!c.ok) {
                    return false;
                }
                if (buf.name.empty()) {
                    return c.fail(b, "buffer needs a non-empty \"name\"");
                }
                if (buf.name == "frame_color") {
                    return c.fail(b, "\"frame_color\" is reserved for the "
                                     "rendered frame's color buffer");
                }
                if (!buffer_names.insert(buf.name).second) {
                    return c.fail(b, "duplicate buffer \"" + buf.name +
                                         "\"");
                }
                total_bytes += buf.bytes;
                if (total_bytes > (4ull << 30)) {
                    return c.fail(b, "buffers exceed the 4 GiB heap "
                                     "budget");
                }
                out.buffers.push_back(std::move(buf));
            }
        }
        const Json *kernels = node.find("kernels");
        if (!kernels || !kernels->isArray() || kernels->items().empty()) {
            return c.fail(kernels ? *kernels : node,
                          "\"kernels\" must be a non-empty array");
        }
        if (kernels->items().size() > 64) {
            return c.fail(*kernels, "at most 64 kernels per scenario");
        }
        std::set<std::string> kernel_names;
        Cycle last_at = 0;
        for (const Json &k : kernels->items()) {
            KernelNode kn;
            if (!parseKernel(c, k, kn, buffer_names, has_graphics)) {
                return false;
            }
            if (!kernel_names.insert(kn.name).second) {
                return c.fail(k, "duplicate kernel \"" + kn.name + "\"");
            }
            if (kn.hasAfter) {
                bool found = false;
                for (const KernelNode &prev : out.kernels) {
                    if (prev.name == kn.after) {
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    return c.fail(k, "kernel \"" + kn.name +
                                         "\" depends on \"" + kn.after +
                                         "\" which is not an earlier "
                                         "kernel");
                }
            } else {
                // Stream order is FIFO: a later arrival in front of an
                // earlier one would stall the queue, so arrival times
                // must be non-decreasing in list order.
                if (kn.at < last_at) {
                    return c.fail(k, "kernel \"" + kn.name +
                                         "\" arrives before the previous "
                                         "kernel (\"at\" must be "
                                         "non-decreasing)");
                }
                last_at = kn.at;
            }
            out.kernels.push_back(std::move(kn));
        }
        if (const Json *sched = node.find("schedule")) {
            if (!sched->isObject()) {
                return c.fail(*sched, "\"schedule\" must be an object");
            }
            c.checkKeys(*sched, {"bursts", "period", "arrivals"});
            c.getUint(*sched, "bursts", out.schedule.bursts, 1, 1024);
            c.getUint(*sched, "period", out.schedule.period, 0,
                      1'000'000'000'000ull);
            if (!c.ok) {
                return false;
            }
            if (const Json *arr = sched->find("arrivals")) {
                if (!arr->isObject()) {
                    return c.fail(*arr, "\"arrivals\" must be an object");
                }
                if (sched->find("period")) {
                    return c.fail(*arr, "\"arrivals\" and \"period\" are "
                                        "mutually exclusive");
                }
                c.checkKeys(*arr, {"kind", "rate_hz", "seed"});
                std::string kind;
                c.getChoice(*arr, "kind", kind, {"poisson"});
                if (!arr->find("rate_hz")) {
                    return c.fail(*arr, "\"arrivals\" needs a \"rate_hz\"");
                }
                float rate = 0.0f;
                c.getFloat(*arr, "rate_hz", rate, 0.001, 1.0e9);
                c.getUint(*arr, "seed", out.schedule.seed, 0,
                          ~0ull);
                if (!c.ok) {
                    return false;
                }
                out.schedule.poisson = true;
                out.schedule.rateHz = static_cast<double>(rate);
            } else if (out.schedule.bursts > 1 &&
                       out.schedule.period == 0) {
                return c.fail(*sched, "bursts > 1 needs a non-zero "
                                      "\"period\" or an \"arrivals\" "
                                      "model");
            }
        }
    }
    return c.ok;
}

} // namespace

bool
loadScenarioText(const std::string &text, const std::string &file_label,
                 Scenario &out, ScenarioError &err)
{
    out = Scenario();
    out.sourceFile = file_label;

    const std::string stripped = stripComments(text);
    Json doc;
    std::string parse_err;
    if (!Json::parse(stripped, doc, parse_err)) {
        // Parse errors carry "offset N: what"; convert to line:col.
        err.file = file_label;
        size_t off = 0;
        if (std::sscanf(parse_err.c_str(), "offset %zu:", &off) == 1) {
            const size_t colon = parse_err.find(": ");
            if (colon != std::string::npos) {
                parse_err = parse_err.substr(colon + 2);
            }
        }
        Json::offsetToLineCol(stripped, off, err.line, err.col);
        err.message = parse_err;
        return false;
    }

    Ctx c{stripped, file_label, err};
    if (!doc.isObject()) {
        return c.fail(doc, "scenario must be a JSON object");
    }
    c.checkKeys(doc, {"crisp_scenario", "name", "gpu", "graphics",
                      "compute"});
    if (!c.ok) {
        return false;
    }
    const Json *version = doc.find("crisp_scenario");
    if (!version || !version->isNumber() || version->asU64(0) != 1) {
        return c.fail(version ? *version : doc,
                      "scenario needs \"crisp_scenario\": 1");
    }
    c.getString(doc, "name", out.name);
    if (c.ok && out.name.empty()) {
        return c.fail(doc, "scenario needs a non-empty \"name\"");
    }
    if (const Json *gpu = doc.find("gpu")) {
        if (!gpu->isObject()) {
            return c.fail(*gpu, "\"gpu\" must be an object");
        }
        c.checkKeys(*gpu, {"preset", "num_sms", "num_gpus", "placement"});
        if (gpu->find("preset")) {
            c.getChoice(*gpu, "preset", out.gpu.preset,
                        {"rtx3070", "orin"});
        }
        c.getUint(*gpu, "num_sms", out.gpu.numSms, 0, 128);
        c.getUint(*gpu, "num_gpus", out.gpu.numGpus, 1, 8);
        if (const Json *pl = gpu->find("placement")) {
            if (out.gpu.numGpus <= 1) {
                return c.fail(*pl, "\"placement\" needs num_gpus > 1");
            }
            std::string placement;
            c.getChoice(*gpu, "placement", placement,
                        {"split", "colocated", "mig"});
            if (!c.ok) {
                return false;
            }
            out.gpu.placement = placement == "split"
                                    ? Placement::Split
                                    : (placement == "colocated"
                                           ? Placement::Colocated
                                           : Placement::Mig);
        }
        if (!c.ok) {
            return false;
        }
    }
    if (const Json *gfx = doc.find("graphics")) {
        if (!parseGraphics(c, *gfx, out.graphics, out.gpu.numGpus)) {
            return false;
        }
    }
    if (const Json *cmp = doc.find("compute")) {
        if (!parseCompute(c, *cmp, out.compute, out.graphics.present,
                          out.gpu.numGpus)) {
            return false;
        }
    }
    if (!out.graphics.present && !out.compute.present) {
        return c.fail(doc, "scenario needs a \"graphics\" and/or "
                           "\"compute\" section");
    }
    if (!c.ok) {
        return false;
    }
    out.canonicalText = doc.dump();
    return true;
}

bool
loadScenarioFile(const std::string &path, Scenario &out, ScenarioError &err)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        err = {path, 0, 0, "cannot open scenario file"};
        return false;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    const bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err) {
        err = {path, 0, 0, "error reading scenario file"};
        return false;
    }
    return loadScenarioText(text, path, out, err);
}

} // namespace crisp::scenario
