#include "mem/cache.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2Of(uint64_t v)
{
    uint32_t s = 0;
    while ((1ull << s) < v) {
        ++s;
    }
    return s;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheGeometry &geom) : geom_(geom)
{
    fatal_if(geom_.lineBytes == 0 || geom_.ways == 0,
             "invalid cache geometry");
    fatal_if(geom_.sizeBytes % (geom_.lineBytes * geom_.ways) != 0,
             "cache size %llu not divisible into %u-way sets",
             static_cast<unsigned long long>(geom_.sizeBytes), geom_.ways);
    numSets_ = geom_.numSets();
    ways_ = geom_.ways;
    pow2Line_ = isPow2(geom_.lineBytes);
    pow2Sets_ = isPow2(numSets_);
    lineShift_ = pow2Line_ ? log2Of(geom_.lineBytes) : 0;
    setMask_ = pow2Sets_ ? numSets_ - 1 : 0;
    const size_t n = static_cast<size_t>(numSets_) * ways_;
    tags_.assign(n, 0);
    lastUse_.assign(n, 0);
    flags_.assign(n, 0);
    validSectors_.assign(n, 0);
    streams_.assign(n, kInvalidStream);
    classes_.assign(n, DataClass::Unknown);
}

uint32_t
SetAssocCache::mapSet(Addr line, StreamId stream) const
{
    // Simple xor-fold hash decorrelates strided accesses across sets.
    const Addr blk = pow2Line_ ? line >> lineShift_ : line / geom_.lineBytes;
    const Addr folded = blk ^ (blk >> 13);
    uint32_t set = pow2Sets_
        ? static_cast<uint32_t>(folded) & setMask_
        : static_cast<uint32_t>(folded % numSets_);
    if (!windows_.empty()) {
        if (const SetWindow *w = windowFor(stream)) {
            return w->first + set % w->count;
        }
    }
    return set;
}

const SetAssocCache::SetWindow *
SetAssocCache::windowFor(StreamId stream) const
{
    for (const auto &w : windows_) {
        if (w.stream == stream && w.count > 0) {
            return &w;
        }
    }
    return nullptr;
}

uint32_t
SetAssocCache::findWayIndex(uint32_t set, Addr tag) const
{
    const uint32_t base = set * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        if ((flags_[base + w] & kValid) && tags_[base + w] == tag) {
            return base + w;
        }
    }
    return kNoWay;
}

uint32_t
SetAssocCache::lruPosition(uint32_t set, uint32_t idx) const
{
    // Count lines in the set more recently used than this one.
    const uint32_t base = set * ways_;
    const uint64_t mine = lastUse_[idx];
    uint32_t pos = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        const uint32_t i = base + w;
        if (i != idx && (flags_[i] & kValid) && lastUse_[i] > mine) {
            ++pos;
        }
    }
    return pos;
}

uint32_t
SetAssocCache::pickVictim(uint32_t set, bool &evicted, Addr &evicted_line,
                          bool &evicted_dirty,
                          uint8_t &evicted_sectors) const
{
    const uint32_t base = set * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (!(flags_[base + w] & kValid)) {
            return base + w;
        }
    }
    uint32_t victim = base;
    for (uint32_t w = 1; w < ways_; ++w) {
        if (lastUse_[base + w] < lastUse_[victim]) {
            victim = base + w;
        }
    }
    evicted = true;
    evicted_line = tags_[victim] * geom_.lineBytes;
    evicted_dirty = (flags_[victim] & kDirty) != 0;
    evicted_sectors = validSectors_[victim];
    return victim;
}

void
SetAssocCache::installLine(uint32_t idx, Addr tag, bool write,
                           StreamId stream, DataClass cls,
                           uint8_t sector_bit)
{
    flags_[idx] = static_cast<uint8_t>(kValid | (write ? kDirty : 0));
    tags_[idx] = tag;
    lastUse_[idx] = ++useCounter_;
    streams_[idx] = stream;
    classes_[idx] = cls;
    validSectors_[idx] = sector_bit;
}

void
SetAssocCache::clearLine(uint32_t idx)
{
    flags_[idx] = 0;
    tags_[idx] = 0;
    lastUse_[idx] = 0;
    streams_[idx] = kInvalidStream;
    classes_[idx] = DataClass::Unknown;
    validSectors_[idx] = 0;
}

CacheAccessResult
SetAssocCache::access(Addr line, bool write, StreamId stream, DataClass cls,
                      bool allocate_on_miss)
{
    const bool sectored = geom_.sectorBytes != 0;
    uint8_t sector_bit = 0xff;  // unsectored: every sector at once
    if (sectored) {
        panic_if(line % geom_.sectorBytes != 0,
                 "unaligned sector address %llx",
                 static_cast<unsigned long long>(line));
        const uint32_t sector = static_cast<uint32_t>(
            line % geom_.lineBytes / geom_.sectorBytes);
        sector_bit = static_cast<uint8_t>(1u << sector);
        line -= line % geom_.lineBytes;
    } else {
        panic_if(pow2Line_ ? (line & ((Addr(1) << lineShift_) - 1)) != 0
                           : line % geom_.lineBytes != 0,
                 "unaligned line address %llx",
                 static_cast<unsigned long long>(line));
    }
    ++accesses_;
    const Addr tag = pow2Line_ ? line >> lineShift_ : line / geom_.lineBytes;
    const uint32_t set = mapSet(line, stream);

    CacheAccessResult res;
    const uint32_t hit_idx = findWayIndex(set, tag);
    if (hit_idx != kNoWay) {
        if (sectored && !(validSectors_[hit_idx] & sector_bit)) {
            // Tag hit, sector miss: fetch just this sector, no eviction.
            ++sectorMisses_;
            res.sectorMiss = true;
            if (allocate_on_miss) {
                validSectors_[hit_idx] |= sector_bit;
                lastUse_[hit_idx] = ++useCounter_;
                if (write) {
                    flags_[hit_idx] |= kDirty;
                }
            }
            return res;
        }
        ++hits_;
        res.hit = true;
        if (reportHitLruPos_) {
            res.hitLruPos = lruPosition(set, hit_idx);
        }
        lastUse_[hit_idx] = ++useCounter_;
        if (write) {
            flags_[hit_idx] |= kDirty;
        }
        // A line can be promoted between classes (e.g. pipeline data later
        // reread as compute); keep the original class, matching how the
        // paper attributes a line to its producer.
        return res;
    }

    if (!allocate_on_miss) {
        return res;
    }

    // Choose a victim: first invalid way, otherwise true LRU.
    const uint32_t victim =
        pickVictim(set, res.evicted, res.evictedLine, res.evictedDirty,
                   res.evictedValidSectors);
    installLine(victim, tag, write, stream, cls, sector_bit);
    return res;
}

CacheFillResult
SetAssocCache::fill(Addr line, bool write, StreamId stream, DataClass cls)
{
    const bool sectored = geom_.sectorBytes != 0;
    uint8_t sector_bit = 0xff;  // unsectored: every sector at once
    if (sectored) {
        panic_if(line % geom_.sectorBytes != 0,
                 "unaligned sector address %llx",
                 static_cast<unsigned long long>(line));
        const uint32_t sector = static_cast<uint32_t>(
            line % geom_.lineBytes / geom_.sectorBytes);
        sector_bit = static_cast<uint8_t>(1u << sector);
        line -= line % geom_.lineBytes;
    } else {
        panic_if(line % geom_.lineBytes != 0, "unaligned line address %llx",
                 static_cast<unsigned long long>(line));
    }
    ++fills_;
    const Addr tag = pow2Line_ ? line >> lineShift_ : line / geom_.lineBytes;
    const uint32_t set = mapSet(line, stream);

    CacheFillResult res;
    const uint32_t resident = findWayIndex(set, tag);
    if (resident != kNoWay) {
        // Tag installed at miss time (or by a racing access) is still
        // resident: validate the sector in place. Recency belongs to the
        // demand access, so LRU is deliberately left alone.
        res.wasPresent = true;
        validSectors_[resident] |= sector_bit;
        if (write) {
            flags_[resident] |= kDirty;
        }
        return res;
    }

    // Interim eviction: the tag was displaced between miss and fill.
    // Re-install it, displacing at most one victim, reported once.
    const uint32_t victim =
        pickVictim(set, res.evicted, res.evictedLine, res.evictedDirty,
                   res.evictedValidSectors);
    installLine(victim, tag, write, stream, cls, sector_bit);
    return res;
}

bool
SetAssocCache::probe(Addr line, StreamId stream) const
{
    const Addr tag = pow2Line_ ? line >> lineShift_ : line / geom_.lineBytes;
    return findWayIndex(mapSet(line, stream), tag) != kNoWay;
}

void
SetAssocCache::invalidateAll()
{
    for (size_t i = 0; i < flags_.size(); ++i) {
        clearLine(static_cast<uint32_t>(i));
    }
}

void
SetAssocCache::invalidateStream(StreamId stream)
{
    for (size_t i = 0; i < flags_.size(); ++i) {
        if ((flags_[i] & kValid) && streams_[i] == stream) {
            clearLine(static_cast<uint32_t>(i));
        }
    }
}

void
SetAssocCache::setStreamSetWindow(StreamId stream, uint32_t first,
                                  uint32_t count)
{
    panic_if(first + count > numSets_,
             "set window [%u, %u) exceeds %u sets", first, first + count,
             numSets_);
    for (auto &w : windows_) {
        if (w.stream == stream) {
            w.first = first;
            w.count = count;
            return;
        }
    }
    windows_.push_back({stream, first, count});
}

void
SetAssocCache::clearSetWindows()
{
    windows_.clear();
}

CacheComposition
SetAssocCache::composition() const
{
    CacheComposition comp;
    comp.totalLines = flags_.size();
    for (size_t i = 0; i < flags_.size(); ++i) {
        if (!(flags_[i] & kValid)) {
            continue;
        }
        ++comp.validLines;
        ++comp.byClass[static_cast<size_t>(classes_[i])];
        if (const SetWindow *w = windowFor(streams_[i])) {
            const uint32_t set = static_cast<uint32_t>(i / ways_);
            if (set < w->first || set >= w->first + w->count) {
                ++comp.strandedLines;
            }
        }
    }
    return comp;
}

uint64_t
SetAssocCache::evictStreamOutsideWindow(StreamId stream,
                                        std::vector<Addr> *dirty_lines)
{
    const SetWindow *w = windowFor(stream);
    if (w == nullptr) {
        return 0;
    }
    uint64_t evicted = 0;
    for (size_t i = 0; i < flags_.size(); ++i) {
        if (!(flags_[i] & kValid) || streams_[i] != stream) {
            continue;
        }
        const uint32_t set = static_cast<uint32_t>(i / ways_);
        if (set >= w->first && set < w->first + w->count) {
            continue;
        }
        if ((flags_[i] & kDirty) && dirty_lines != nullptr) {
            dirty_lines->push_back(tags_[i] * geom_.lineBytes);
        }
        clearLine(static_cast<uint32_t>(i));
        ++evicted;
    }
    return evicted;
}

} // namespace crisp
