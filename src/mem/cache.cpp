#include "mem/cache.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

SetAssocCache::SetAssocCache(const CacheGeometry &geom) : geom_(geom)
{
    fatal_if(geom_.lineBytes == 0 || geom_.ways == 0,
             "invalid cache geometry");
    fatal_if(geom_.sizeBytes % (geom_.lineBytes * geom_.ways) != 0,
             "cache size %llu not divisible into %u-way sets",
             static_cast<unsigned long long>(geom_.sizeBytes), geom_.ways);
    lines_.resize(static_cast<size_t>(geom_.numSets()) * geom_.ways);
}

uint32_t
SetAssocCache::mapSet(Addr line, StreamId stream) const
{
    const uint32_t num_sets = geom_.numSets();
    // Simple xor-fold hash decorrelates strided accesses across sets.
    const Addr blk = line / geom_.lineBytes;
    uint32_t set = static_cast<uint32_t>((blk ^ (blk >> 13)) % num_sets);
    if (const SetWindow *w = windowFor(stream)) {
        return w->first + set % w->count;
    }
    return set;
}

const SetAssocCache::SetWindow *
SetAssocCache::windowFor(StreamId stream) const
{
    for (const auto &w : windows_) {
        if (w.stream == stream && w.count > 0) {
            return &w;
        }
    }
    return nullptr;
}

SetAssocCache::Line *
SetAssocCache::findLine(uint32_t set, Addr tag)
{
    Line *base = &lines_[static_cast<size_t>(set) * geom_.ways];
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            return &base[w];
        }
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(uint32_t set, Addr tag) const
{
    return const_cast<SetAssocCache *>(this)->findLine(set, tag);
}

uint32_t
SetAssocCache::lruPosition(uint32_t set, const Line *line) const
{
    // Count lines in the set more recently used than this one.
    const Line *base = &lines_[static_cast<size_t>(set) * geom_.ways];
    uint32_t pos = 0;
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (&base[w] != line && base[w].valid &&
            base[w].lastUse > line->lastUse) {
            ++pos;
        }
    }
    return pos;
}

CacheAccessResult
SetAssocCache::access(Addr line, bool write, StreamId stream, DataClass cls,
                      bool allocate_on_miss)
{
    const bool sectored = geom_.sectorBytes != 0;
    uint8_t sector_bit = 0xff;  // unsectored: every sector at once
    if (sectored) {
        panic_if(line % geom_.sectorBytes != 0,
                 "unaligned sector address %llx",
                 static_cast<unsigned long long>(line));
        const uint32_t sector = static_cast<uint32_t>(
            line % geom_.lineBytes / geom_.sectorBytes);
        sector_bit = static_cast<uint8_t>(1u << sector);
        line -= line % geom_.lineBytes;
    } else {
        panic_if(line % geom_.lineBytes != 0, "unaligned line address %llx",
                 static_cast<unsigned long long>(line));
    }
    ++accesses_;
    const Addr tag = line / geom_.lineBytes;
    const uint32_t set = mapSet(line, stream);

    CacheAccessResult res;
    if (Line *hit_line = findLine(set, tag)) {
        if (sectored && !(hit_line->validSectors & sector_bit)) {
            // Tag hit, sector miss: fetch just this sector, no eviction.
            ++sectorMisses_;
            res.sectorMiss = true;
            if (allocate_on_miss) {
                hit_line->validSectors |= sector_bit;
                hit_line->lastUse = ++useCounter_;
                hit_line->dirty = hit_line->dirty || write;
            }
            return res;
        }
        ++hits_;
        res.hit = true;
        res.hitLruPos = lruPosition(set, hit_line);
        hit_line->lastUse = ++useCounter_;
        hit_line->dirty = hit_line->dirty || write;
        // A line can be promoted between classes (e.g. pipeline data later
        // reread as compute); keep the original class, matching how the
        // paper attributes a line to its producer.
        return res;
    }

    if (!allocate_on_miss) {
        return res;
    }

    // Choose a victim: first invalid way, otherwise true LRU.
    Line *base = &lines_[static_cast<size_t>(set) * geom_.ways];
    Line *victim = nullptr;
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (victim == nullptr) {
        victim = base;
        for (uint32_t w = 1; w < geom_.ways; ++w) {
            if (base[w].lastUse < victim->lastUse) {
                victim = &base[w];
            }
        }
        res.evicted = true;
        res.evictedLine = victim->tag * geom_.lineBytes;
        res.evictedDirty = victim->dirty;
        res.evictedValidSectors = victim->validSectors;
    }

    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lastUse = ++useCounter_;
    victim->stream = stream;
    victim->cls = cls;
    victim->validSectors = sector_bit;
    return res;
}

CacheFillResult
SetAssocCache::fill(Addr line, bool write, StreamId stream, DataClass cls)
{
    const bool sectored = geom_.sectorBytes != 0;
    uint8_t sector_bit = 0xff;  // unsectored: every sector at once
    if (sectored) {
        panic_if(line % geom_.sectorBytes != 0,
                 "unaligned sector address %llx",
                 static_cast<unsigned long long>(line));
        const uint32_t sector = static_cast<uint32_t>(
            line % geom_.lineBytes / geom_.sectorBytes);
        sector_bit = static_cast<uint8_t>(1u << sector);
        line -= line % geom_.lineBytes;
    } else {
        panic_if(line % geom_.lineBytes != 0, "unaligned line address %llx",
                 static_cast<unsigned long long>(line));
    }
    ++fills_;
    const Addr tag = line / geom_.lineBytes;
    const uint32_t set = mapSet(line, stream);

    CacheFillResult res;
    if (Line *resident = findLine(set, tag)) {
        // Tag installed at miss time (or by a racing access) is still
        // resident: validate the sector in place. Recency belongs to the
        // demand access, so LRU is deliberately left alone.
        res.wasPresent = true;
        resident->validSectors |= sector_bit;
        resident->dirty = resident->dirty || write;
        return res;
    }

    // Interim eviction: the tag was displaced between miss and fill.
    // Re-install it, displacing at most one victim, reported once.
    Line *base = &lines_[static_cast<size_t>(set) * geom_.ways];
    Line *victim = nullptr;
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (victim == nullptr) {
        victim = base;
        for (uint32_t w = 1; w < geom_.ways; ++w) {
            if (base[w].lastUse < victim->lastUse) {
                victim = &base[w];
            }
        }
        res.evicted = true;
        res.evictedLine = victim->tag * geom_.lineBytes;
        res.evictedDirty = victim->dirty;
        res.evictedValidSectors = victim->validSectors;
    }

    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lastUse = ++useCounter_;
    victim->stream = stream;
    victim->cls = cls;
    victim->validSectors = sector_bit;
    return res;
}

bool
SetAssocCache::probe(Addr line, StreamId stream) const
{
    const Addr tag = line / geom_.lineBytes;
    return findLine(mapSet(line, stream), tag) != nullptr;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &l : lines_) {
        l = Line{};
    }
}

void
SetAssocCache::invalidateStream(StreamId stream)
{
    for (auto &l : lines_) {
        if (l.valid && l.stream == stream) {
            l = Line{};
        }
    }
}

void
SetAssocCache::setStreamSetWindow(StreamId stream, uint32_t first,
                                  uint32_t count)
{
    panic_if(first + count > geom_.numSets(),
             "set window [%u, %u) exceeds %u sets", first, first + count,
             geom_.numSets());
    for (auto &w : windows_) {
        if (w.stream == stream) {
            w.first = first;
            w.count = count;
            return;
        }
    }
    windows_.push_back({stream, first, count});
}

void
SetAssocCache::clearSetWindows()
{
    windows_.clear();
}

CacheComposition
SetAssocCache::composition() const
{
    CacheComposition comp;
    comp.totalLines = lines_.size();
    for (size_t i = 0; i < lines_.size(); ++i) {
        const Line &l = lines_[i];
        if (!l.valid) {
            continue;
        }
        ++comp.validLines;
        ++comp.byClass[static_cast<size_t>(l.cls)];
        if (const SetWindow *w = windowFor(l.stream)) {
            const uint32_t set = static_cast<uint32_t>(i / geom_.ways);
            if (set < w->first || set >= w->first + w->count) {
                ++comp.strandedLines;
            }
        }
    }
    return comp;
}

uint64_t
SetAssocCache::evictStreamOutsideWindow(StreamId stream,
                                        std::vector<Addr> *dirty_lines)
{
    const SetWindow *w = windowFor(stream);
    if (w == nullptr) {
        return 0;
    }
    uint64_t evicted = 0;
    for (size_t i = 0; i < lines_.size(); ++i) {
        Line &l = lines_[i];
        if (!l.valid || l.stream != stream) {
            continue;
        }
        const uint32_t set = static_cast<uint32_t>(i / geom_.ways);
        if (set >= w->first && set < w->first + w->count) {
            continue;
        }
        if (l.dirty && dirty_lines != nullptr) {
            dirty_lines->push_back(l.tag * geom_.lineBytes);
        }
        l = Line{};
        ++evicted;
    }
    return evicted;
}

} // namespace crisp
