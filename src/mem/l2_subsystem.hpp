#ifndef CRISP_MEM_L2_SUBSYSTEM_HPP
#define CRISP_MEM_L2_SUBSYSTEM_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/flat_map.hpp"
#include "common/stats.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/fault_hook.hpp"
#include "mem/icnt.hpp"
#include "mem/mem_request.hpp"
#include "mem/mshr.hpp"

namespace crisp
{

namespace telemetry
{
class TelemetrySink;
class SelfProfiler;
}

/** Configuration of the shared L2 + DRAM side of the machine. */
struct L2Config
{
    uint32_t numBanks = 16;
    CacheGeometry bankGeometry{256 * 1024, 16, kLineBytes};
    Cycle l2Latency = 90;             ///< Probe-to-data latency (core cycles).
    Cycle icntLatency = 25;           ///< One-way interconnect latency.
    double icntBytesPerCycle = 512;   ///< Per-direction icnt bandwidth.
    double dramBytesPerCycle = 396;   ///< Aggregate DRAM bandwidth.
    Cycle dramLatency = 180;          ///< DRAM access latency.
    uint32_t mshrEntriesPerBank = 64;
    uint32_t mshrTargetsPerEntry = 8;
    uint32_t bankQueueCapacity = 32;
    /**
     * Data bandwidth of one L2 bank (slice) in bytes per cycle: a 128 B
     * line occupies the bank for several cycles. This is what MiG's
     * bank-level partitioning halves for each stream (Fig 14).
     */
    double bankBytesPerCycle = 32.0;
};

/**
 * Shared L2 cache + DRAM subsystem: banked tag stores, per-bank queues,
 * MSHRs, and DRAM channels behind an interconnect.
 *
 * Supports the paper's three L2 organizations:
 *  - **MPS**: fully shared (default);
 *  - **MiG**: bank-level partitioning via per-stream bank masks;
 *  - **TAP**: set-level partitioning via per-stream set windows in every
 *    bank (Section VI-C).
 *
 * Responses are delivered through a callback, so the owner (the GPU model)
 * can route completions back to the issuing SM.
 */
class L2Subsystem
{
  public:
    using ResponseHandler = std::function<void(const MemRequest &)>;
    /** Observer invoked on every bank access (stream, line, hit, lruPos). */
    using AccessListener =
        std::function<void(StreamId, Addr, bool, uint32_t)>;

    L2Subsystem(const L2Config &cfg, StatsRegistry *stats);

    /** Install the response callback (must be set before stepping). */
    void setResponseHandler(ResponseHandler handler);

    /** Optional access observer (used by TAP's utility monitors). */
    void setAccessListener(AccessListener listener);

    /**
     * Try to enqueue a request from an SM at cycle @p now.
     * @return false if the target bank queue is full (caller retries).
     */
    bool submit(MemRequest req, Cycle now);

    /** Advance all banks and deliver due responses/fills. */
    void step(Cycle now);

    /** True when no request is in flight anywhere in the subsystem. */
    bool idle() const;

    /**
     * Earliest future cycle (> @p now) at which stepping this subsystem
     * can do anything: the nearest DRAM fill return, response delivery,
     * or bank-queue head becoming serviceable. kNeverCycle when nothing
     * is in flight. A head stalled on a full MSHR reports now+1 (it
     * unblocks on a fill, which is already covered, but the bank retries
     * every cycle, so the conservative answer keeps it exact).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Monotone count of units of work done (requests accepted, fills
     * completed, bank services, responses delivered). The cycle engine
     * compares it across a tick to detect a machine-wide idle cycle.
     */
    uint64_t workCount() const { return workCount_; }

    /**
     * MiG-style bank partitioning: restrict @p stream to the banks with set
     * bits in @p mask. Requests hash across only those banks.
     */
    void setStreamBankMask(StreamId stream, uint64_t mask);
    void clearBankMasks();

    /**
     * TAP-style set partitioning: give @p stream @p count sets starting at
     * @p first within every bank.
     */
    void setStreamSetWindow(StreamId stream, uint32_t first, uint32_t count);
    void clearSetWindows();

    /**
     * Evict @p stream's lines stranded outside its current set window in
     * every bank (TAP evict-on-shrink). Dirty victims consume DRAM write
     * bandwidth at cycle @p now and are charged to the stream's
     * dramWrites. Returns the number of lines evicted.
     */
    uint64_t evictStrandedLines(StreamId stream, Cycle now);

    /**
     * Attach a fault-injection hook (not owned; nullptr detaches). The hook
     * is consulted when DRAM fills return and when responses are delivered.
     */
    void setFaultHook(MemFaultHook *hook) { faultHook_ = hook; }

    /**
     * Attach a telemetry sink (not owned; nullptr detaches). The L2 emits
     * per-bank consecutive-miss bursts and DRAM row-conflict bursts, and
     * attributes its step phases to the sink's self-profiler when that is
     * enabled.
     */
    void setTelemetry(telemetry::TelemetrySink *sink);

    // --- Integrity introspection -----------------------------------------

    /** Counts of everything currently in flight inside the subsystem. */
    struct InFlight
    {
        uint64_t queuedRequests = 0;     ///< Requests sitting in bank queues.
        uint64_t queuedReads = 0;        ///< Of which expect a response.
        uint64_t mshrEntries = 0;        ///< Outstanding missed lines.
        uint64_t mshrResponseTargets = 0;///< Merged waiters expecting data.
        uint64_t pendingFills = 0;       ///< DRAM fills not yet returned.
        uint64_t pendingResponses = 0;   ///< Responses in the return icnt.
    };
    InFlight inFlight() const;

    /** One outstanding MSHR entry with its waiters' SM ids decoded. */
    struct MshrEntryInfo
    {
        uint32_t bank = 0;
        Addr line = 0;
        Cycle allocatedAt = 0;
        uint32_t targets = 0;
        std::vector<uint32_t> smIds;    ///< SMs awaiting this line's data.
    };
    /** Snapshot of every outstanding MSHR entry, oldest first. */
    std::vector<MshrEntryInfo> mshrEntries() const;

    /**
     * Allocation cycle of the oldest outstanding MSHR entry across all
     * banks, or ~0ull when none — the cheap pre-check for leak scans.
     */
    Cycle oldestMshrAllocation() const;

    /**
     * True when traffic that will eventually complete SM @p smId's read
     * of @p line is still alive inside the subsystem: a queued request,
     * a merged L2 MSHR target, or an undelivered response. The leak scan
     * uses this to tell a *starved* L1 MSHR entry (slow but live — seen
     * under DRAM saturation, where a request can queue for tens of
     * thousands of cycles) from an *orphaned* one whose response was
     * lost and will never arrive. Walks the in-flight structures, so
     * callers should gate it behind an age threshold.
     */
    bool lineInFlightFor(uint32_t smId, Addr line) const;

    /**
     * True when a DRAM fill for @p line on bank @p bank is still on its
     * way back. A leaked L2 MSHR entry (dropped fill) has none.
     */
    bool fillInFlight(uint32_t bank, Addr line) const;

    /** Current depth of each bank's request queue. */
    std::vector<size_t> bankQueueDepths() const;

    /** Booked-ahead cycles on the request/response interconnect links. */
    Cycle requestLinkBacklog(Cycle now) const
    {
        return requestLink_.backlog(now);
    }
    Cycle responseLinkBacklog(Cycle now) const
    {
        return responseLink_.backlog(now);
    }

    /** Read requests accepted from SMs (cumulative). */
    uint64_t readsAccepted() const { return readsAccepted_; }
    /** Responses actually delivered back to SMs (cumulative). */
    uint64_t responsesDelivered() const { return responsesDelivered_; }

    /** Aggregate composition across banks (Figs 11 and 15). */
    CacheComposition composition() const;

    /**
     * Demand accesses the subsystem served. Tag-array probes plus
     * MSHR-merged accesses (which consume a bank slot but never touch the
     * tag array), so this matches the per-stream l2Accesses sum and
     * hitRate() agrees with StreamStats::l2HitRate(). Fill-time installs
     * are not accesses and are excluded (see SetAssocCache::fill).
     */
    uint64_t accesses() const;
    uint64_t hits() const;
    double hitRate() const;

    /** Tag-array probes only (accesses() minus MSHR merges). */
    uint64_t tagAccesses() const;
    /** Accesses merged into a pending MSHR fill instead of probing tags. */
    uint64_t mergedAccesses() const { return mergedAccesses_; }
    /** DRAM fills installed into the banks (cumulative). Conservation:
     *  sum of per-stream dramReads == fillsCompleted() + pendingFills. */
    uint64_t fillsCompleted() const { return fillsCompleted_; }
    /** Cumulative primary MSHR allocations across banks. */
    uint64_t mshrPrimaryAllocations() const;
    /** Cumulative MSHR fills across banks. */
    uint64_t mshrFillsServed() const;

    /**
     * Add each request currently sitting in a bank queue (submitted but
     * not yet counted as an l2Access) to @p out[stream]. The audit uses
     * this to balance per-stream L1 misses against L2 accesses at a cycle
     * boundary.
     */
    void countQueuedByStream(SmallFlatMap<StreamId, uint64_t> &out) const;
    double dramBusyCycles() const;
    uint64_t dramRequests() const;

    const L2Config &config() const { return cfg_; }

  private:
    struct PendingFill
    {
        MemRequest req;
        uint32_t bank;
    };

    uint32_t bankFor(Addr line, StreamId stream) const;
    void respond(MemRequest req, Cycle now, Cycle ready);
    void noteBankMiss(uint32_t bank, StreamId stream, Cycle now);

    L2Config cfg_;
    StatsRegistry *stats_;
    ResponseHandler onResponse_;
    AccessListener onAccess_;
    MemFaultHook *faultHook_ = nullptr;
    telemetry::TelemetrySink *telemetry_ = nullptr;
    telemetry::SelfProfiler *profiler_ = nullptr;
    /** Consecutive misses per bank since the last hit (burst detector). */
    std::vector<uint32_t> missStreaks_;
    /** DRAM row conflicts already covered by an emitted burst event. */
    uint64_t rowConflictsSeen_ = 0;
    uint64_t readsAccepted_ = 0;
    uint64_t responsesDelivered_ = 0;
    uint64_t workCount_ = 0;
    /** Reads currently in bank queues (kept incrementally: inFlight() is
     *  called every watchdog tick and must not walk the queues). */
    uint64_t queuedReads_ = 0;
    /** Accesses merged into pending MSHR fills (no tag probe). */
    uint64_t mergedAccesses_ = 0;
    /** DRAM fills installed into banks. */
    uint64_t fillsCompleted_ = 0;

    std::vector<SetAssocCache> banks_;
    std::vector<std::deque<MemRequest>> bankQueues_;
    std::vector<Cycle> bankFreeAt_;
    std::vector<Mshr> mshrs_;
    IcntLink requestLink_;
    IcntLink responseLink_;
    DramChannel dram_;

    /** Fills ordered by data-return time. */
    std::multimap<Cycle, PendingFill> pendingFills_;
    /** Responses ordered by delivery time. */
    std::multimap<Cycle, MemRequest> pendingResponses_;

    std::map<StreamId, uint64_t> bankMasks_;
};

} // namespace crisp

#endif // CRISP_MEM_L2_SUBSYSTEM_HPP
