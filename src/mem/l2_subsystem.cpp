#include "mem/l2_subsystem.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "telemetry/sink.hpp"

namespace crisp
{

namespace
{

/** Consecutive misses in one bank that count as a burst. */
constexpr uint32_t kMissBurstStreak = 16;

/** New DRAM row conflicts accumulated before a burst event is emitted. */
constexpr uint64_t kRowConflictBurst = 64;

} // namespace

L2Subsystem::L2Subsystem(const L2Config &cfg, StatsRegistry *stats)
    : cfg_(cfg),
      stats_(stats),
      requestLink_(cfg.icntBytesPerCycle, cfg.icntLatency),
      responseLink_(cfg.icntBytesPerCycle, cfg.icntLatency),
      dram_(cfg.dramBytesPerCycle, cfg.dramLatency)
{
    fatal_if(cfg_.numBanks == 0, "L2 needs at least one bank");
    panic_if(stats_ == nullptr, "L2 needs a stats registry");
    banks_.reserve(cfg_.numBanks);
    bankQueues_.resize(cfg_.numBanks);
    bankFreeAt_.assign(cfg_.numBanks, 0);
    for (uint32_t b = 0; b < cfg_.numBanks; ++b) {
        banks_.emplace_back(cfg_.bankGeometry);
        mshrs_.emplace_back(cfg_.mshrEntriesPerBank,
                            cfg_.mshrTargetsPerEntry);
    }
    missStreaks_.assign(cfg_.numBanks, 0);
}

void
L2Subsystem::setTelemetry(telemetry::TelemetrySink *sink)
{
    telemetry_ = sink;
    profiler_ = sink && sink->config().selfProfile ? &sink->profiler()
                                                   : nullptr;
    rowConflictsSeen_ = dram_.rowConflicts();
}

void
L2Subsystem::noteBankMiss(uint32_t bank, StreamId stream, Cycle now)
{
    const uint32_t streak = ++missStreaks_[bank];
    if (telemetry_ && streak % kMissBurstStreak == 0) {
        telemetry_->emit({now, telemetry::EventKind::MissBurst, bank,
                          stream, streak, 0});
    }
}

void
L2Subsystem::setResponseHandler(ResponseHandler handler)
{
    onResponse_ = std::move(handler);
}

void
L2Subsystem::setAccessListener(AccessListener listener)
{
    onAccess_ = std::move(listener);
}

namespace
{

// The L2 MSHR merges misses from different SMs; each target key must carry
// the requesting SM so the fill can route every response correctly.
uint64_t
encodeTarget(const MemRequest &req)
{
    if (!req.expectsResponse()) {
        return MemRequest::kNoCompletion;
    }
    panic_if(req.completionKey >= (1ull << 48),
             "completion key too large to encode");
    return (static_cast<uint64_t>(req.smId) + 1) << 48 | req.completionKey;
}

void
decodeTarget(uint64_t key, MemRequest &req)
{
    req.smId = static_cast<uint32_t>((key >> 48) - 1);
    req.completionKey = key & ((1ull << 48) - 1);
}

} // namespace

uint32_t
L2Subsystem::bankFor(Addr line, StreamId stream) const
{
    const Addr blk = line / kLineBytes;
    const uint64_t h = blk ^ (blk >> 7) ^ (blk >> 17);
    auto it = bankMasks_.find(stream);
    if (it == bankMasks_.end() || it->second == 0) {
        return static_cast<uint32_t>(h % cfg_.numBanks);
    }
    // Hash across only the banks enabled in this stream's mask.
    const uint64_t mask = it->second;
    const uint32_t allowed = __builtin_popcountll(mask);
    uint32_t pick = static_cast<uint32_t>(h % allowed);
    for (uint32_t b = 0; b < cfg_.numBanks; ++b) {
        if (mask & (1ull << b)) {
            if (pick == 0) {
                return b;
            }
            --pick;
        }
    }
    panic("bank mask %llx has no banks below numBanks",
          static_cast<unsigned long long>(mask));
}

bool
L2Subsystem::submit(MemRequest req, Cycle now)
{
    const uint32_t bank = bankFor(req.line, req.stream);
    if (bankQueues_[bank].size() >= cfg_.bankQueueCapacity) {
        return false;
    }
    // Request packet: header only for reads, header + line data for writes.
    const uint32_t bytes = req.write ? kLineBytes + 8 : 8;
    req.readyAt = requestLink_.transfer(now, bytes);
    if (req.expectsResponse()) {
        ++readsAccepted_;
        ++queuedReads_;
    }
    ++workCount_;
    bankQueues_[bank].push_back(std::move(req));
    return true;
}

void
L2Subsystem::respond(MemRequest req, Cycle now, Cycle ready)
{
    if (!req.expectsResponse()) {
        return;
    }
    (void)now;
    const Cycle delivered = responseLink_.transfer(ready, kLineBytes + 8);
    pendingResponses_.emplace(delivered, std::move(req));
}

void
L2Subsystem::step(Cycle now)
{
    // 1. Complete DRAM fills whose data has returned.
    {
    telemetry::SelfProfiler::Scope prof_scope(profiler_,
                                              telemetry::Component::Dram);
    while (!pendingFills_.empty() && pendingFills_.begin()->first <= now) {
        auto node = pendingFills_.extract(pendingFills_.begin());
        const Cycle ready = node.key();
        PendingFill &pf = node.mapped();
        ++workCount_;
        if (faultHook_) {
            Cycle delay = 0;
            const auto action = faultHook_->onDramFill(pf.req, now, delay);
            if (action == MemFaultHook::Action::Drop) {
                // The fill is lost: the MSHR entry stays allocated and
                // every merged waiter starves — the leak the integrity
                // layer's MSHR-age checker exists to catch.
                continue;
            }
            if (action == MemFaultHook::Action::Delay) {
                pendingFills_.emplace(now + std::max<Cycle>(delay, 1),
                                      std::move(pf));
                continue;
            }
        }
        // The tag was installed by access() at miss time; completing the
        // fill is not a demand access, so it must not perturb the bank's
        // hit/access counters (that double-count made a pure-miss stream
        // read ~50% bank hit rate). fill() validates the line in place,
        // or — if the tag was evicted between miss and fill — re-installs
        // it, reporting the single interim-eviction victim.
        auto &bank = banks_[pf.bank];
        const auto res = bank.fill(pf.req.line, pf.req.write, pf.req.stream,
                                   pf.req.dataClass);
        ++fillsCompleted_;
        if (res.evicted && res.evictedDirty) {
            // Dirty writeback consumes DRAM write bandwidth, charged to
            // the filling stream exactly once.
            dram_.service(ready, kLineBytes, res.evictedLine);
            stats_->stream(pf.req.stream).dramWrites++;
        }
        for (uint64_t key : mshrs_[pf.bank].fill(pf.req.line)) {
            if (key == MemRequest::kNoCompletion) {
                continue;
            }
            MemRequest resp = pf.req;
            decodeTarget(key, resp);
            respond(std::move(resp), now, ready);
        }
    }
    }

    // 2. Each bank services queued requests at its slice bandwidth.
    {
    telemetry::SelfProfiler::Scope prof_scope(profiler_,
                                              telemetry::Component::L2);
    const Cycle bank_occupancy = static_cast<Cycle>(
        std::max(1.0, kLineBytes / cfg_.bankBytesPerCycle));
    for (uint32_t b = 0; b < cfg_.numBanks; ++b) {
        auto &queue = bankQueues_[b];
        if (queue.empty() || queue.front().readyAt > now ||
            bankFreeAt_[b] > now) {
            continue;
        }
        MemRequest &req = queue.front();
        ++workCount_;
        auto &st = stats_->stream(req.stream);

        if (mshrs_[b].pending(req.line)) {
            // Merge with the in-flight fill.
            const auto outcome =
                mshrs_[b].allocate(req.line, encodeTarget(req), now);
            if (outcome == Mshr::Outcome::Stall) {
                continue;   // retry next cycle
            }
            st.l2Accesses++;
            st.l2MshrMerges++;
            ++mergedAccesses_;
            if (onAccess_) {
                onAccess_(req.stream, req.line, false, 0);
            }
            noteBankMiss(b, req.stream, now);
            bankFreeAt_[b] = now + bank_occupancy;
            if (req.expectsResponse()) {
                --queuedReads_;
            }
            queue.pop_front();
            continue;
        }

        if (mshrs_[b].full()) {
            // No MSHR space for a potential miss: stall before touching the
            // tag array so a retried miss still pays the DRAM round trip.
            continue;
        }

        auto res = banks_[b].access(req.line, req.write, req.stream,
                                    req.dataClass);
        st.l2Accesses++;
        if (onAccess_) {
            onAccess_(req.stream, req.line, res.hit, res.hitLruPos);
        }
        if (res.hit) {
            st.l2Hits++;
            missStreaks_[b] = 0;
            respond(req, now, now + cfg_.l2Latency);
            bankFreeAt_[b] = now + bank_occupancy;
            if (req.expectsResponse()) {
                --queuedReads_;
            }
            queue.pop_front();
            continue;
        }

        // Miss: the access() above already installed the tag; roll the
        // timing through DRAM. Dirty victim costs a writeback.
        noteBankMiss(b, req.stream, now);
        if (res.evicted && res.evictedDirty) {
            dram_.service(now, kLineBytes, res.evictedLine);
            st.dramWrites++;
        }
        const auto outcome =
            mshrs_[b].allocate(req.line, encodeTarget(req), now);
        panic_if(outcome != Mshr::Outcome::NewEntry,
                 "MSHR allocate failed after capacity check");
        st.dramReads++;
        const Cycle data_ready = dram_.service(now, kLineBytes, req.line);
        pendingFills_.emplace(data_ready, PendingFill{req, b});
        bankFreeAt_[b] = now + bank_occupancy;
        if (req.expectsResponse()) {
            --queuedReads_;
        }
        queue.pop_front();
    }
    }

    if (telemetry_) {
        const uint64_t conflicts = dram_.rowConflicts();
        if (conflicts - rowConflictsSeen_ >= kRowConflictBurst) {
            telemetry_->emit({now, telemetry::EventKind::RowConflictBurst,
                              0, 0, conflicts, 0});
            rowConflictsSeen_ = conflicts;
        }
    }

    // 3. Deliver due responses to the SMs.
    {
    telemetry::SelfProfiler::Scope prof_scope(profiler_,
                                              telemetry::Component::Icnt);
    while (!pendingResponses_.empty() &&
           pendingResponses_.begin()->first <= now) {
        auto node = pendingResponses_.extract(pendingResponses_.begin());
        ++workCount_;
        panic_if(!onResponse_, "L2 response with no handler installed");
        if (faultHook_) {
            Cycle delay = 0;
            const auto action =
                faultHook_->onResponse(node.mapped(), now, delay);
            if (action == MemFaultHook::Action::Drop) {
                // Lost response: the requesting SM's L1 MSHR entry and
                // load tracker are now orphaned; the conservation checker
                // sees one more issued read than completed + outstanding.
                continue;
            }
            if (action == MemFaultHook::Action::Delay) {
                pendingResponses_.emplace(now + std::max<Cycle>(delay, 1),
                                          std::move(node.mapped()));
                continue;
            }
        }
        ++responsesDelivered_;
        onResponse_(node.mapped());
    }
    }
}

L2Subsystem::InFlight
L2Subsystem::inFlight() const
{
    InFlight f;
    for (const auto &q : bankQueues_) {
        f.queuedRequests += q.size();
    }
    f.queuedReads = queuedReads_;
    for (const auto &mshr : mshrs_) {
        f.mshrEntries += mshr.entriesInUse();
        f.mshrResponseTargets += mshr.responseTargets();
    }
    f.pendingFills = pendingFills_.size();
    f.pendingResponses = pendingResponses_.size();
    return f;
}

std::vector<L2Subsystem::MshrEntryInfo>
L2Subsystem::mshrEntries() const
{
    std::vector<MshrEntryInfo> out;
    for (uint32_t b = 0; b < cfg_.numBanks; ++b) {
        for (const auto &entry : mshrs_[b].entries()) {
            MshrEntryInfo info;
            info.bank = b;
            info.line = entry.line;
            info.allocatedAt = entry.allocatedAt;
            info.targets = entry.targets;
            for (uint64_t key : entry.keys) {
                if (key == MemRequest::kNoCompletion) {
                    continue;
                }
                MemRequest decoded;
                decodeTarget(key, decoded);
                info.smIds.push_back(decoded.smId);
            }
            out.push_back(std::move(info));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const MshrEntryInfo &a, const MshrEntryInfo &b) {
                  return a.allocatedAt < b.allocatedAt;
              });
    return out;
}

Cycle
L2Subsystem::oldestMshrAllocation() const
{
    Cycle oldest = ~0ull;
    for (const auto &mshr : mshrs_) {
        if (mshr.entriesInUse() > 0) {
            oldest = std::min(oldest, mshr.oldestAllocation());
        }
    }
    return oldest;
}

bool
L2Subsystem::lineInFlightFor(uint32_t smId, Addr line) const
{
    for (const auto &queue : bankQueues_) {
        for (const MemRequest &req : queue) {
            if (req.line == line && req.smId == smId &&
                req.expectsResponse()) {
                return true;
            }
        }
    }
    for (const auto &mshr : mshrs_) {
        for (uint64_t key : mshr.keysFor(line)) {
            if (key == MemRequest::kNoCompletion) {
                continue;
            }
            MemRequest decoded;
            decodeTarget(key, decoded);
            if (decoded.smId == smId) {
                return true;
            }
        }
    }
    for (const auto &[due, req] : pendingResponses_) {
        if (req.line == line && req.smId == smId) {
            return true;
        }
    }
    return false;
}

bool
L2Subsystem::fillInFlight(uint32_t bank, Addr line) const
{
    for (const auto &[due, fill] : pendingFills_) {
        if (fill.bank == bank && fill.req.line == line) {
            return true;
        }
    }
    return false;
}

std::vector<size_t>
L2Subsystem::bankQueueDepths() const
{
    std::vector<size_t> depths;
    depths.reserve(bankQueues_.size());
    for (const auto &q : bankQueues_) {
        depths.push_back(q.size());
    }
    return depths;
}

Cycle
L2Subsystem::nextEventCycle(Cycle now) const
{
    Cycle wake = kNeverCycle;
    auto consider = [&](Cycle at) {
        wake = std::min(wake, std::max(at, now + 1));
    };
    if (!pendingFills_.empty()) {
        consider(pendingFills_.begin()->first);
    }
    if (!pendingResponses_.empty()) {
        consider(pendingResponses_.begin()->first);
    }
    for (uint32_t b = 0; b < cfg_.numBanks; ++b) {
        const auto &queue = bankQueues_[b];
        if (!queue.empty()) {
            // MSHR-stalled heads report the conservative now+1; the fill
            // that unblocks them is already covered above.
            consider(std::max(queue.front().readyAt, bankFreeAt_[b]));
        }
    }
    return wake;
}

bool
L2Subsystem::idle() const
{
    if (!pendingFills_.empty() || !pendingResponses_.empty()) {
        return false;
    }
    for (const auto &q : bankQueues_) {
        if (!q.empty()) {
            return false;
        }
    }
    return true;
}

void
L2Subsystem::setStreamBankMask(StreamId stream, uint64_t mask)
{
    const uint64_t valid = cfg_.numBanks >= 64
        ? ~0ull
        : ((1ull << cfg_.numBanks) - 1);
    fatal_if((mask & valid) == 0, "bank mask selects no valid banks");
    bankMasks_[stream] = mask & valid;
}

void
L2Subsystem::clearBankMasks()
{
    bankMasks_.clear();
}

void
L2Subsystem::setStreamSetWindow(StreamId stream, uint32_t first,
                                uint32_t count)
{
    for (auto &bank : banks_) {
        bank.setStreamSetWindow(stream, first, count);
    }
}

void
L2Subsystem::clearSetWindows()
{
    for (auto &bank : banks_) {
        bank.clearSetWindows();
    }
}

CacheComposition
L2Subsystem::composition() const
{
    CacheComposition total;
    for (const auto &bank : banks_) {
        const CacheComposition c = bank.composition();
        total.validLines += c.validLines;
        total.totalLines += c.totalLines;
        total.strandedLines += c.strandedLines;
        for (size_t i = 0; i < c.byClass.size(); ++i) {
            total.byClass[i] += c.byClass[i];
        }
    }
    return total;
}

uint64_t
L2Subsystem::accesses() const
{
    return tagAccesses() + mergedAccesses_;
}

uint64_t
L2Subsystem::tagAccesses() const
{
    uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank.accesses();
    }
    return total;
}

uint64_t
L2Subsystem::mshrPrimaryAllocations() const
{
    uint64_t total = 0;
    for (const auto &mshr : mshrs_) {
        total += mshr.primaryAllocations();
    }
    return total;
}

uint64_t
L2Subsystem::mshrFillsServed() const
{
    uint64_t total = 0;
    for (const auto &mshr : mshrs_) {
        total += mshr.fillsServed();
    }
    return total;
}

void
L2Subsystem::countQueuedByStream(SmallFlatMap<StreamId, uint64_t> &out) const
{
    for (const auto &q : bankQueues_) {
        for (const auto &req : q) {
            ++out[req.stream];
        }
    }
}

uint64_t
L2Subsystem::evictStrandedLines(StreamId stream, Cycle now)
{
    uint64_t evicted = 0;
    std::vector<Addr> dirty;
    for (auto &bank : banks_) {
        dirty.clear();
        evicted += bank.evictStreamOutsideWindow(stream, &dirty);
        for (Addr line : dirty) {
            dram_.service(now, kLineBytes, line);
            stats_->stream(stream).dramWrites++;
        }
    }
    return evicted;
}

uint64_t
L2Subsystem::hits() const
{
    uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank.hits();
    }
    return total;
}

double
L2Subsystem::hitRate() const
{
    const uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(a);
}

double
L2Subsystem::dramBusyCycles() const
{
    return dram_.busyCycles();
}

uint64_t
L2Subsystem::dramRequests() const
{
    return dram_.requests();
}

} // namespace crisp
