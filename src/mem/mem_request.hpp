#ifndef CRISP_MEM_MEM_REQUEST_HPP
#define CRISP_MEM_MEM_REQUEST_HPP

#include <cstdint>

#include "common/types.hpp"

namespace crisp
{

/**
 * A cache-line-granularity memory request flowing between an SM and the
 * L2/DRAM subsystem.
 *
 * Requests are created by the LDST unit after coalescing, carry the issuing
 * SM and a completion key so responses can wake the right warp instruction,
 * and are tagged with the stream and data class for per-stream statistics
 * and L2 composition accounting.
 */
struct MemRequest
{
    Addr line = 0;              ///< 128 B aligned line address.
    bool write = false;
    StreamId stream = 0;
    DataClass dataClass = DataClass::Unknown;
    uint32_t smId = 0;
    /**
     * Opaque completion key assigned by the issuing SM; responses echo it.
     * Writes use kNoCompletion and are fire-and-forget.
     */
    uint64_t completionKey = kNoCompletion;
    Cycle readyAt = 0;          ///< Earliest cycle the current stage may act.
    /**
     * Device that issued the request. Stamped by the owning Gpu on submit
     * and echoed by the L2 in the response, so a multi-GPU fabric can
     * route a remote fill back to the requesting device. Single-GPU runs
     * leave it 0 throughout.
     */
    uint32_t srcDevice = 0;

    static constexpr uint64_t kNoCompletion = ~0ull;

    bool expectsResponse() const { return completionKey != kNoCompletion; }
};

} // namespace crisp

#endif // CRISP_MEM_MEM_REQUEST_HPP
