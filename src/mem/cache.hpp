#ifndef CRISP_MEM_CACHE_HPP
#define CRISP_MEM_CACHE_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace crisp
{

/** Geometry of a set-associative cache. */
struct CacheGeometry
{
    uint64_t sizeBytes = 128 * 1024;
    uint32_t ways = 8;
    uint32_t lineBytes = kLineBytes;
    /**
     * Sector size in bytes; 0 models an unsectored cache. Accel-Sim's
     * Ampere caches are sectored (32 B sectors in 128 B lines): tags are
     * line-granularity but data validity and fills are per sector, so a
     * miss fetches 32 B instead of the whole line.
     */
    uint32_t sectorBytes = 0;

    uint32_t numLines() const
    {
        return static_cast<uint32_t>(sizeBytes / lineBytes);
    }
    uint32_t numSets() const { return numLines() / ways; }
    uint32_t
    sectorsPerLine() const
    {
        return sectorBytes == 0 ? 1 : lineBytes / sectorBytes;
    }
};

/** Outcome of a single cache probe. */
struct CacheAccessResult
{
    bool hit = false;
    /**
     * Sectored caches only: the tag matched but the requested sector was
     * not yet valid — a "sector miss" that fetches sectorBytes without
     * evicting anything.
     */
    bool sectorMiss = false;
    /**
     * LRU stack position of the hit within its set (0 = MRU). Valid only on
     * hits; used by utility monitors (TAP case study).
     */
    uint32_t hitLruPos = 0;
    /** True when a valid line was evicted to make room. */
    bool evicted = false;
    Addr evictedLine = 0;
    bool evictedDirty = false;
    /**
     * Sector-validity bitmap of the evicted line at eviction time. A
     * partially filled sectored line writes back only its valid sectors,
     * so writeback accounting needs the bitmap, not just the dirty bit.
     */
    uint8_t evictedValidSectors = 0;
};

/**
 * Outcome of a fill-time install (SetAssocCache::fill). Fills are data
 * returns for a tag that was (usually) installed at miss time, so they are
 * not demand accesses and never count toward accesses()/hits().
 */
struct CacheFillResult
{
    /**
     * The tag was still resident (the common case: installed at miss time
     * and not displaced since). The fill validates the sector in place.
     */
    bool wasPresent = false;
    /**
     * The tag had been evicted between miss and fill ("interim eviction")
     * and the re-install displaced a valid victim.
     */
    bool evicted = false;
    Addr evictedLine = 0;
    bool evictedDirty = false;
    uint8_t evictedValidSectors = 0;
};

/** Per-class line occupancy snapshot (L2 composition, Figs 11/15). */
struct CacheComposition
{
    /** Valid-line count per DataClass, indexed by the enum value. */
    std::array<uint64_t, static_cast<size_t>(DataClass::NumClasses)> byClass{};
    uint64_t validLines = 0;
    uint64_t totalLines = 0;
    /**
     * Valid lines whose owning stream has a set window that no longer
     * covers the line's set (a TAP repartition shrank the window after the
     * line was installed). mapSet only returns in-window sets, so the
     * stream can never hit these lines again; they are dead capacity held
     * against the stream. Stranded lines are still counted in byClass /
     * validLines — this field reports the overlap separately.
     */
    uint64_t strandedLines = 0;

    /** Share of *valid* lines holding class @p c (composition plots). */
    double fraction(DataClass c) const
    {
        return validLines == 0
            ? 0.0
            : static_cast<double>(byClass[static_cast<size_t>(c)]) /
                  static_cast<double>(validLines);
    }

    /** Occupancy of the whole array. */
    double validFraction() const
    {
        return totalLines == 0
            ? 0.0
            : static_cast<double>(validLines) /
                  static_cast<double>(totalLines);
    }
};

/**
 * Set-associative cache tag store with true-LRU replacement.
 *
 * Models tags and replacement state only (the simulator is trace-driven, so
 * no data payload is needed). Supports the paper's set-level partitioning:
 * an optional per-stream set *window* remaps a stream's accesses into a
 * contiguous subset of the sets, which is how CRISP models TAP's L2 set
 * assignment ("each bank is partitioned by assigning sets to each workload",
 * §VI-C) without disturbing unpartitioned streams.
 *
 * Tag state is stored structure-of-arrays: the way-scan on every access
 * touches only the tag and flag arrays (one cache line for an 8-way set)
 * instead of striding across 40-byte line records, and power-of-two
 * geometries resolve set/tag with precomputed shifts and masks.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geom);

    /**
     * Probe and (on a read or write-allocate miss) fill the line.
     *
     * @param line line-aligned address (sectored caches accept any
     *        sector-aligned address and validate just that sector)
     * @param write true for stores (write-allocate policy)
     * @param stream owning stream for partition/composition accounting
     * @param cls data classification recorded on fill
     * @param allocate_on_miss when false, a miss does not install the line
     *        (used for the L1's write-through/no-allocate stores)
     */
    CacheAccessResult access(Addr line, bool write, StreamId stream,
                             DataClass cls, bool allocate_on_miss = true);

    /**
     * Complete an outstanding miss: validate the line/sector without
     * counting a demand access. Unlike access(), fill() never touches
     * accesses_/hits_ (fills are data returns, not probes) and does not
     * refresh LRU when the tag is already resident — recency was claimed
     * by the demand access at miss time. If the tag was evicted between
     * miss and fill, the line is re-installed (victim: first invalid way,
     * else true LRU) and the eviction is reported exactly once in the
     * result so the caller can account the writeback deterministically.
     */
    CacheFillResult fill(Addr line, bool write, StreamId stream,
                         DataClass cls);

    /** Fill-time installs/refreshes completed (see fill()). */
    uint64_t fills() const { return fills_; }

    /** Sector misses observed (sectored geometries only). */
    uint64_t sectorMisses() const { return sectorMisses_; }

    /** True if the line is currently resident (no LRU update). */
    bool probe(Addr line, StreamId stream) const;

    /** Invalidate everything (partition reconfiguration). */
    void invalidateAll();

    /** Invalidate lines owned by one stream. */
    void invalidateStream(StreamId stream);

    /**
     * Restrict @p stream to @p count sets starting at @p first. Accesses are
     * remapped with modulo into the window. Pass count = numSets, first = 0
     * to reset to the full cache.
     */
    void setStreamSetWindow(StreamId stream, uint32_t first, uint32_t count);

    /** Remove all set windows (fully shared cache). */
    void clearSetWindows();

    /**
     * Evict @p stream's valid lines living in sets outside the stream's
     * current set window (stranded by a window shrink; see
     * CacheComposition::strandedLines). Dirty victims are appended to
     * @p dirty_lines (when non-null) so the caller can account their
     * writebacks. Returns the number of lines evicted. No-op when the
     * stream has no window.
     */
    uint64_t evictStreamOutsideWindow(StreamId stream,
                                      std::vector<Addr> *dirty_lines);

    /** Occupancy snapshot for composition plots. */
    CacheComposition composition() const;

    /**
     * Enable/disable CacheAccessResult::hitLruPos computation (default
     * on). The per-hit LRU-stack scan costs an extra pass over the set;
     * callers that ignore the field (the SM's L1) turn it off, while the
     * L2 keeps it for the TAP utility monitors.
     */
    void setHitLruPosReporting(bool enabled) { reportHitLruPos_ = enabled; }

    const CacheGeometry &geometry() const { return geom_; }

    uint64_t accesses() const { return accesses_; }
    uint64_t hits() const { return hits_; }
    double hitRate() const
    {
        return accesses_ == 0
            ? 0.0
            : static_cast<double>(hits_) / static_cast<double>(accesses_);
    }

  private:
    struct SetWindow
    {
        StreamId stream = kInvalidStream;
        uint32_t first = 0;
        uint32_t count = 0;
    };

    /** Line flag bits (flags_ array). */
    static constexpr uint8_t kValid = 0x1;
    static constexpr uint8_t kDirty = 0x2;
    static constexpr uint32_t kNoWay = ~0u;

    uint32_t mapSet(Addr line, StreamId stream) const;
    const SetWindow *windowFor(StreamId stream) const;
    /** Index into the way arrays of the resident tag, or kNoWay. */
    uint32_t findWayIndex(uint32_t set, Addr tag) const;
    uint32_t lruPosition(uint32_t set, uint32_t idx) const;
    /** First invalid way of the set, else the true-LRU victim. Reports
     *  the eviction (if any) into @p evicted/... exactly like the old
     *  AoS victim scan: scan order breaks lastUse ties low-way-first. */
    uint32_t pickVictim(uint32_t set, bool &evicted, Addr &evicted_line,
                        bool &evicted_dirty, uint8_t &evicted_sectors) const;
    void installLine(uint32_t idx, Addr tag, bool write, StreamId stream,
                     DataClass cls, uint8_t sector_bit);
    void clearLine(uint32_t idx);

    CacheGeometry geom_;
    uint32_t numSets_ = 0;
    uint32_t ways_ = 0;
    /** Power-of-two fast paths (0 = use division fallback). */
    uint32_t lineShift_ = 0;
    uint32_t setMask_ = 0;
    bool pow2Line_ = false;
    bool pow2Sets_ = false;
    bool reportHitLruPos_ = true;

    // Structure-of-arrays line state, indexed set * ways + way.
    std::vector<Addr> tags_;
    std::vector<uint64_t> lastUse_;
    std::vector<uint8_t> flags_;
    std::vector<uint8_t> validSectors_;
    std::vector<StreamId> streams_;
    std::vector<DataClass> classes_;

    std::vector<SetWindow> windows_;
    uint64_t useCounter_ = 0;
    uint64_t accesses_ = 0;
    uint64_t hits_ = 0;
    uint64_t sectorMisses_ = 0;
    uint64_t fills_ = 0;
};

} // namespace crisp

#endif // CRISP_MEM_CACHE_HPP
