#include "mem/mshr.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

Mshr::Mshr(uint32_t num_entries, uint32_t max_targets)
    : numEntries_(num_entries), maxTargets_(max_targets)
{
    fatal_if(num_entries == 0 || max_targets == 0,
             "MSHR needs at least one entry and one target");
}

Mshr::Outcome
Mshr::allocate(Addr line, uint64_t key, Cycle now)
{
    auto it = table_.find(line);
    if (it != table_.end()) {
        if (it->second.keys.size() >= maxTargets_) {
            return Outcome::Stall;
        }
        it->second.keys.push_back(key);
        if (key != kVoidKey) {
            ++responseTargets_;
        }
        ++mergedAllocations_;
        return Outcome::Merged;
    }
    if (table_.size() >= numEntries_) {
        return Outcome::Stall;
    }
    Entry entry;
    entry.keys.push_back(key);
    entry.allocatedAt = now;
    table_.emplace(line, std::move(entry));
    allocationOrder_.emplace_back(line, now);
    if (key != kVoidKey) {
        ++responseTargets_;
    }
    ++primaryAllocations_;
    return Outcome::NewEntry;
}

bool
Mshr::pending(Addr line) const
{
    return table_.count(line) != 0;
}

std::vector<uint64_t>
Mshr::keysFor(Addr line) const
{
    auto it = table_.find(line);
    if (it == table_.end()) {
        return {};
    }
    return it->second.keys;
}

bool
Mshr::wouldStall(Addr line) const
{
    auto it = table_.find(line);
    if (it != table_.end()) {
        return it->second.keys.size() >= maxTargets_;
    }
    return table_.size() >= numEntries_;
}

std::vector<uint64_t>
Mshr::fill(Addr line)
{
    auto it = table_.find(line);
    if (it == table_.end()) {
        return {};
    }
    std::vector<uint64_t> keys = std::move(it->second.keys);
    for (uint64_t key : keys) {
        if (key != kVoidKey) {
            panic_if(responseTargets_ == 0, "MSHR target count underflow");
            --responseTargets_;
        }
    }
    table_.erase(it);
    ++fillsServed_;
    // Prune resolved allocations from the age-order queue so it stays
    // bounded even when oldestAllocation() is never called.
    while (!allocationOrder_.empty()) {
        const auto &[front_line, at] = allocationOrder_.front();
        auto front_it = table_.find(front_line);
        if (front_it != table_.end() &&
            front_it->second.allocatedAt == at) {
            break;
        }
        allocationOrder_.pop_front();
    }
    return keys;
}

std::vector<Mshr::EntryInfo>
Mshr::entries() const
{
    std::vector<EntryInfo> out;
    out.reserve(table_.size());
    for (const auto &[line, entry] : table_) {
        EntryInfo info;
        info.line = line;
        info.allocatedAt = entry.allocatedAt;
        info.targets = static_cast<uint32_t>(entry.keys.size());
        info.keys = entry.keys;
        out.push_back(std::move(info));
    }
    std::sort(out.begin(), out.end(),
              [](const EntryInfo &a, const EntryInfo &b) {
                  return a.allocatedAt < b.allocatedAt;
              });
    return out;
}

Cycle
Mshr::oldestAllocation() const
{
    // Drop stale front records (entry filled, or the line re-allocated
    // later with a different timestamp). Each record is popped at most
    // once, so the per-call cost is amortized constant.
    while (!allocationOrder_.empty()) {
        const auto &[line, at] = allocationOrder_.front();
        auto it = table_.find(line);
        if (it != table_.end() && it->second.allocatedAt == at) {
            return at;
        }
        allocationOrder_.pop_front();
    }
    return 0;
}

} // namespace crisp
