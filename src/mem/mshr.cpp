#include "mem/mshr.hpp"

#include "common/logging.hpp"

namespace crisp
{

Mshr::Mshr(uint32_t num_entries, uint32_t max_targets)
    : numEntries_(num_entries), maxTargets_(max_targets)
{
    fatal_if(num_entries == 0 || max_targets == 0,
             "MSHR needs at least one entry and one target");
}

Mshr::Outcome
Mshr::allocate(Addr line, uint64_t key)
{
    auto it = table_.find(line);
    if (it != table_.end()) {
        if (it->second.size() >= maxTargets_) {
            return Outcome::Stall;
        }
        it->second.push_back(key);
        return Outcome::Merged;
    }
    if (table_.size() >= numEntries_) {
        return Outcome::Stall;
    }
    table_.emplace(line, std::vector<uint64_t>{key});
    return Outcome::NewEntry;
}

bool
Mshr::pending(Addr line) const
{
    return table_.count(line) != 0;
}

std::vector<uint64_t>
Mshr::fill(Addr line)
{
    auto it = table_.find(line);
    if (it == table_.end()) {
        return {};
    }
    std::vector<uint64_t> keys = std::move(it->second);
    table_.erase(it);
    return keys;
}

} // namespace crisp
