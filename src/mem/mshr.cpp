#include "mem/mshr.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

namespace
{

uint32_t
nextPow2(uint32_t v)
{
    uint32_t p = 1;
    while (p < v) {
        p <<= 1;
    }
    return p;
}

} // namespace

Mshr::Mshr(uint32_t num_entries, uint32_t max_targets)
    : numEntries_(num_entries), maxTargets_(max_targets)
{
    fatal_if(num_entries == 0 || max_targets == 0,
             "MSHR needs at least one entry and one target");
    const uint32_t table_size = nextPow2(std::max(16u, num_entries * 2));
    tableMask_ = table_size - 1;
    table_.assign(table_size, kNil);
    pool_.resize(num_entries);
    freeList_.reserve(num_entries);
    for (uint32_t i = num_entries; i > 0; --i) {
        freeList_.push_back(i - 1);
    }
}

uint32_t
Mshr::hashSlot(Addr line) const
{
    // Fibonacci multiplicative hash; lines share their low alignment bits,
    // so plain masking would collide every access into a few slots.
    return static_cast<uint32_t>(
               (line * 0x9E3779B97F4A7C15ull) >> 32) & tableMask_;
}

uint32_t
Mshr::findSlot(Addr line) const
{
    for (uint32_t slot = hashSlot(line);; slot = (slot + 1) & tableMask_) {
        const uint32_t idx = table_[slot];
        if (idx == kNil) {
            return kNil;
        }
        if (pool_[idx].line == line) {
            return slot;
        }
    }
}

void
Mshr::eraseSlot(uint32_t slot)
{
    // Backward-shift deletion: pull each displaced cluster member back
    // into the hole so probes never need tombstones.
    uint32_t hole = slot;
    for (uint32_t probe = (hole + 1) & tableMask_;;
         probe = (probe + 1) & tableMask_) {
        const uint32_t idx = table_[probe];
        if (idx == kNil) {
            break;
        }
        const uint32_t ideal = hashSlot(pool_[idx].line);
        // Move back only if the element's ideal slot does not lie in
        // (hole, probe] — i.e. the hole sits on its probe path.
        if (((probe - ideal) & tableMask_) >= ((probe - hole) & tableMask_)) {
            table_[hole] = idx;
            hole = probe;
        }
    }
    table_[hole] = kNil;
}

Mshr::Outcome
Mshr::allocate(Addr line, uint64_t key, Cycle now)
{
    const uint32_t slot = findSlot(line);
    if (slot != kNil) {
        Entry &e = pool_[table_[slot]];
        if (e.keys.size() >= maxTargets_) {
            return Outcome::Stall;
        }
        e.keys.push_back(key);
        if (key != kVoidKey) {
            ++responseTargets_;
        }
        ++mergedAllocations_;
        return Outcome::Merged;
    }
    if (used_ >= numEntries_) {
        return Outcome::Stall;
    }
    const uint32_t idx = freeList_.back();
    freeList_.pop_back();
    Entry &e = pool_[idx];
    e.line = line;
    e.allocatedAt = now;
    e.keys.clear();
    e.keys.push_back(key);
    e.prev = orderTail_;
    e.next = kNil;
    if (orderTail_ != kNil) {
        pool_[orderTail_].next = idx;
    } else {
        orderHead_ = idx;
    }
    orderTail_ = idx;
    uint32_t probe = hashSlot(line);
    while (table_[probe] != kNil) {
        probe = (probe + 1) & tableMask_;
    }
    table_[probe] = idx;
    ++used_;
    if (key != kVoidKey) {
        ++responseTargets_;
    }
    ++primaryAllocations_;
    return Outcome::NewEntry;
}

bool
Mshr::pending(Addr line) const
{
    return findSlot(line) != kNil;
}

std::vector<uint64_t>
Mshr::keysFor(Addr line) const
{
    const uint32_t slot = findSlot(line);
    if (slot == kNil) {
        return {};
    }
    return pool_[table_[slot]].keys;
}

bool
Mshr::wouldStall(Addr line) const
{
    const uint32_t slot = findSlot(line);
    if (slot != kNil) {
        return pool_[table_[slot]].keys.size() >= maxTargets_;
    }
    return used_ >= numEntries_;
}

const std::vector<uint64_t> &
Mshr::fill(Addr line)
{
    fillScratch_.clear();
    const uint32_t slot = findSlot(line);
    if (slot == kNil) {
        return fillScratch_;
    }
    const uint32_t idx = table_[slot];
    Entry &e = pool_[idx];
    fillScratch_.assign(e.keys.begin(), e.keys.end());
    e.keys.clear();
    for (uint64_t key : fillScratch_) {
        if (key != kVoidKey) {
            panic_if(responseTargets_ == 0, "MSHR target count underflow");
            --responseTargets_;
        }
    }
    // Unlink from the allocation-order list.
    if (e.prev != kNil) {
        pool_[e.prev].next = e.next;
    } else {
        orderHead_ = e.next;
    }
    if (e.next != kNil) {
        pool_[e.next].prev = e.prev;
    } else {
        orderTail_ = e.prev;
    }
    eraseSlot(slot);
    freeList_.push_back(idx);
    --used_;
    ++fillsServed_;
    return fillScratch_;
}

std::vector<Mshr::EntryInfo>
Mshr::entries() const
{
    // The order list is already oldest-first: allocation cycles are
    // non-decreasing, so no sort is needed.
    std::vector<EntryInfo> out;
    out.reserve(used_);
    for (uint32_t idx = orderHead_; idx != kNil; idx = pool_[idx].next) {
        const Entry &e = pool_[idx];
        EntryInfo info;
        info.line = e.line;
        info.allocatedAt = e.allocatedAt;
        info.targets = static_cast<uint32_t>(e.keys.size());
        info.keys = e.keys;
        out.push_back(std::move(info));
    }
    return out;
}

Cycle
Mshr::oldestAllocation() const
{
    return orderHead_ == kNil ? 0 : pool_[orderHead_].allocatedAt;
}

} // namespace crisp
