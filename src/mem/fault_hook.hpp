#ifndef CRISP_MEM_FAULT_HOOK_HPP
#define CRISP_MEM_FAULT_HOOK_HPP

#include "common/types.hpp"
#include "mem/mem_request.hpp"

namespace crisp
{

/**
 * Interception point for the integrity layer's fault injector.
 *
 * The L2 subsystem consults the hook (when one is attached) at the two
 * places where data leaves the memory system: when a DRAM fill returns to
 * a bank, and when a response is about to be delivered to an SM. The hook
 * decides whether the event proceeds normally, is delayed, or is dropped
 * on the floor — the latter models the lost-response bugs that otherwise
 * surface only as a simulation spinning to max_cycles.
 *
 * Defined in mem/ (not integrity/) so crisp_mem stays free of upward
 * dependencies; crisp::integrity::FaultInjector implements it.
 */
class MemFaultHook
{
  public:
    enum class Action
    {
        None,   ///< Proceed normally.
        Drop,   ///< Discard the event (fill never happens / response lost).
        Delay   ///< Re-schedule the event @c delay cycles later.
    };

    virtual ~MemFaultHook() = default;

    /** A DRAM fill's data has returned for @p req. */
    virtual Action onDramFill(const MemRequest &req, Cycle now,
                              Cycle &delay) = 0;

    /** A response to @p req is due for delivery to its SM. */
    virtual Action onResponse(const MemRequest &req, Cycle now,
                              Cycle &delay) = 0;
};

} // namespace crisp

#endif // CRISP_MEM_FAULT_HOOK_HPP
