#ifndef CRISP_MEM_ICNT_HPP
#define CRISP_MEM_ICNT_HPP

#include <cstdint>

#include "common/types.hpp"

namespace crisp
{

/**
 * One direction of the SM<->L2 interconnect.
 *
 * Modeled as a shared channel with a fixed traversal latency plus a
 * bandwidth constraint: each packet occupies the channel for
 * bytes / bytes_per_cycle cycles. The rendering pipeline also uses this
 * path when post-cull attributes are redistributed between SMs (§III).
 */
class IcntLink
{
  public:
    IcntLink(double bytes_per_cycle, Cycle latency);

    /**
     * Schedule a packet of @p bytes entering at @p now.
     * @return cycle at which the packet is delivered.
     */
    Cycle transfer(Cycle now, uint32_t bytes);

    double busyCycles() const { return busyCycles_; }
    uint64_t packets() const { return packets_; }

    /**
     * Cycles of already-committed traffic still ahead of @p now — how far
     * the channel is booked into the future. Used by hang reports as the
     * interconnect's queue-depth analogue.
     */
    Cycle backlog(Cycle now) const
    {
        const double b = freeAt_ - static_cast<double>(now);
        return b > 0.0 ? static_cast<Cycle>(b) : 0;
    }

  private:
    double bytesPerCycle_;
    Cycle latency_;
    double freeAt_ = 0.0;
    double busyCycles_ = 0.0;
    uint64_t packets_ = 0;
};

} // namespace crisp

#endif // CRISP_MEM_ICNT_HPP
