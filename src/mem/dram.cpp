#include "mem/dram.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

DramChannel::DramChannel(double bytes_per_cycle, Cycle access_latency)
    : bytesPerCycle_(bytes_per_cycle), accessLatency_(access_latency)
{
    fatal_if(bytes_per_cycle <= 0.0, "DRAM bandwidth must be positive");
}

Cycle
DramChannel::service(Cycle now, uint32_t bytes, Addr addr)
{
    const double start = std::max(static_cast<double>(now), freeAt_);
    const double occupancy = static_cast<double>(bytes) / bytesPerCycle_;
    freeAt_ = start + occupancy;
    busyCycles_ += occupancy;
    ++requests_;
    // 2 KiB row buffer: consecutive accesses landing in different rows
    // would pay a precharge/activate on real hardware. The simple model
    // only counts them (telemetry), it does not change the latency.
    const Addr row = addr >> 11;
    if (lastRow_ != ~static_cast<Addr>(0) && row != lastRow_) {
        ++rowConflicts_;
    }
    lastRow_ = row;
    return static_cast<Cycle>(freeAt_) + accessLatency_;
}

} // namespace crisp
