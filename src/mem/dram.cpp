#include "mem/dram.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

DramChannel::DramChannel(double bytes_per_cycle, Cycle access_latency)
    : bytesPerCycle_(bytes_per_cycle), accessLatency_(access_latency)
{
    fatal_if(bytes_per_cycle <= 0.0, "DRAM bandwidth must be positive");
}

Cycle
DramChannel::service(Cycle now, uint32_t bytes)
{
    const double start = std::max(static_cast<double>(now), freeAt_);
    const double occupancy = static_cast<double>(bytes) / bytesPerCycle_;
    freeAt_ = start + occupancy;
    busyCycles_ += occupancy;
    ++requests_;
    return static_cast<Cycle>(freeAt_) + accessLatency_;
}

} // namespace crisp
