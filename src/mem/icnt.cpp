#include "mem/icnt.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace crisp
{

IcntLink::IcntLink(double bytes_per_cycle, Cycle latency)
    : bytesPerCycle_(bytes_per_cycle), latency_(latency)
{
    fatal_if(bytes_per_cycle <= 0.0, "interconnect bandwidth must be positive");
}

Cycle
IcntLink::transfer(Cycle now, uint32_t bytes)
{
    const double start = std::max(static_cast<double>(now), freeAt_);
    const double occupancy = static_cast<double>(bytes) / bytesPerCycle_;
    freeAt_ = start + occupancy;
    busyCycles_ += occupancy;
    ++packets_;
    return static_cast<Cycle>(freeAt_) + latency_;
}

} // namespace crisp
