#ifndef CRISP_MEM_MSHR_HPP
#define CRISP_MEM_MSHR_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace crisp
{

/**
 * Miss Status Holding Register file.
 *
 * Tracks outstanding line misses and merges secondary misses to the same
 * line into the existing entry, so one fill satisfies all waiters. Full
 * MSHRs (or a full target list) stall the requester, which is one of the
 * throughput limits that make workloads bandwidth-bound in the TAP study.
 */
class Mshr
{
  public:
    /**
     * @param num_entries distinct outstanding lines
     * @param max_targets merged requests per line (incl. the primary)
     */
    Mshr(uint32_t num_entries, uint32_t max_targets);

    /** Result of trying to record a miss. */
    enum class Outcome
    {
        NewEntry,   ///< Primary miss: caller must send a fill request.
        Merged,     ///< Secondary miss merged; no new downstream request.
        Stall       ///< No entry/target space; caller must retry later.
    };

    /** Record a miss for @p line with completion @p key. */
    Outcome allocate(Addr line, uint64_t key);

    /** True if a fill for @p line is already outstanding. */
    bool pending(Addr line) const;

    /**
     * The fill arrived: pops and returns all completion keys waiting on the
     * line (empty if the line was not pending).
     */
    std::vector<uint64_t> fill(Addr line);

    uint32_t entriesInUse() const
    {
        return static_cast<uint32_t>(table_.size());
    }
    bool full() const { return entriesInUse() >= numEntries_; }

  private:
    uint32_t numEntries_;
    uint32_t maxTargets_;
    std::unordered_map<Addr, std::vector<uint64_t>> table_;
};

} // namespace crisp

#endif // CRISP_MEM_MSHR_HPP
