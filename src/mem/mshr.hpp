#ifndef CRISP_MEM_MSHR_HPP
#define CRISP_MEM_MSHR_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace crisp
{

/**
 * Miss Status Holding Register file.
 *
 * Tracks outstanding line misses and merges secondary misses to the same
 * line into the existing entry, so one fill satisfies all waiters. Full
 * MSHRs (or a full target list) stall the requester, which is one of the
 * throughput limits that make workloads bandwidth-bound in the TAP study.
 *
 * Each entry remembers the cycle of its primary allocation so the
 * integrity layer can detect leaked entries: a line whose fill never
 * arrives ages forever and is the classic silent-hang bug in cycle
 * simulators.
 */
class Mshr
{
  public:
    /**
     * @param num_entries distinct outstanding lines
     * @param max_targets merged requests per line (incl. the primary)
     */
    Mshr(uint32_t num_entries, uint32_t max_targets);

    /**
     * Target key recorded for requests that expect no response (e.g. L2
     * write misses). Void keys occupy a target slot but are not counted
     * by responseTargets().
     */
    static constexpr uint64_t kVoidKey = ~0ull;

    /** Result of trying to record a miss. */
    enum class Outcome
    {
        NewEntry,   ///< Primary miss: caller must send a fill request.
        Merged,     ///< Secondary miss merged; no new downstream request.
        Stall       ///< No entry/target space; caller must retry later.
    };

    /** Record a miss for @p line with completion @p key at cycle @p now. */
    Outcome allocate(Addr line, uint64_t key, Cycle now = 0);

    /** True if a fill for @p line is already outstanding. */
    bool pending(Addr line) const;

    /**
     * Target keys currently waiting on @p line (empty when the line is
     * not pending). The integrity leak scan uses this to test whether a
     * specific requester still has a merged target alive downstream.
     */
    std::vector<uint64_t> keysFor(Addr line) const;

    /**
     * True if allocate(line, ...) would return Stall right now: the line
     * is pending with a full target list, or it is not pending and no
     * entry is free. Side-effect-free; the fast-forward wake computation
     * uses it to classify a blocked LDST head without mutating the MSHR.
     */
    bool wouldStall(Addr line) const;

    /**
     * The fill arrived: pops and returns all completion keys waiting on the
     * line (empty if the line was not pending).
     */
    std::vector<uint64_t> fill(Addr line);

    uint32_t entriesInUse() const
    {
        return static_cast<uint32_t>(table_.size());
    }
    bool full() const { return entriesInUse() >= numEntries_; }

    /** Outstanding targets that expect a response (key != kVoidKey). */
    uint64_t responseTargets() const { return responseTargets_; }

    /** Cumulative primary allocations (NewEntry outcomes). */
    uint64_t primaryAllocations() const { return primaryAllocations_; }
    /** Cumulative secondary allocations merged into a pending line. */
    uint64_t mergedAllocations() const { return mergedAllocations_; }
    /** Cumulative fills that resolved a pending line. Conservation:
     *  primaryAllocations() == fillsServed() + entriesInUse(). */
    uint64_t fillsServed() const { return fillsServed_; }

    /** Introspection snapshot of one outstanding entry. */
    struct EntryInfo
    {
        Addr line = 0;
        Cycle allocatedAt = 0;
        uint32_t targets = 0;
        std::vector<uint64_t> keys;
    };

    /** Snapshot of all outstanding entries (integrity/leak scans). */
    std::vector<EntryInfo> entries() const;

    /**
     * Allocation cycle of the oldest outstanding entry (0 when empty).
     * Amortized O(1): the integrity layer calls this every watchdog tick,
     * so it must not scan the table.
     */
    Cycle oldestAllocation() const;

  private:
    struct Entry
    {
        std::vector<uint64_t> keys;
        Cycle allocatedAt = 0;
    };

    uint32_t numEntries_;
    uint32_t maxTargets_;
    uint64_t responseTargets_ = 0;
    uint64_t primaryAllocations_ = 0;
    uint64_t mergedAllocations_ = 0;
    uint64_t fillsServed_ = 0;
    std::unordered_map<Addr, Entry> table_;
    /**
     * Primary allocations in time order; filled entries are pruned lazily
     * by oldestAllocation(), keeping it amortized O(1).
     */
    mutable std::deque<std::pair<Addr, Cycle>> allocationOrder_;
};

} // namespace crisp

#endif // CRISP_MEM_MSHR_HPP
