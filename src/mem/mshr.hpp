#ifndef CRISP_MEM_MSHR_HPP
#define CRISP_MEM_MSHR_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace crisp
{

/**
 * Miss Status Holding Register file.
 *
 * Tracks outstanding line misses and merges secondary misses to the same
 * line into the existing entry, so one fill satisfies all waiters. Full
 * MSHRs (or a full target list) stall the requester, which is one of the
 * throughput limits that make workloads bandwidth-bound in the TAP study.
 *
 * Each entry remembers the cycle of its primary allocation so the
 * integrity layer can detect leaked entries: a line whose fill never
 * arrives ages forever and is the classic silent-hang bug in cycle
 * simulators.
 *
 * Storage is a fixed entry pool indexed by an open-addressed hash table
 * (linear probing, backward-shift deletion) plus an intrusive
 * allocation-order list through the pool. allocate()/pending() sit on the
 * per-request hot path of every cache level, so lookups must not chase
 * unordered_map nodes; the order list makes oldestAllocation() a true
 * O(1) head read instead of a lazily pruned deque.
 */
class Mshr
{
  public:
    /**
     * @param num_entries distinct outstanding lines
     * @param max_targets merged requests per line (incl. the primary)
     */
    Mshr(uint32_t num_entries, uint32_t max_targets);

    /**
     * Target key recorded for requests that expect no response (e.g. L2
     * write misses). Void keys occupy a target slot but are not counted
     * by responseTargets().
     */
    static constexpr uint64_t kVoidKey = ~0ull;

    /** Result of trying to record a miss. */
    enum class Outcome
    {
        NewEntry,   ///< Primary miss: caller must send a fill request.
        Merged,     ///< Secondary miss merged; no new downstream request.
        Stall       ///< No entry/target space; caller must retry later.
    };

    /** Record a miss for @p line with completion @p key at cycle @p now. */
    Outcome allocate(Addr line, uint64_t key, Cycle now = 0);

    /** True if a fill for @p line is already outstanding. */
    bool pending(Addr line) const;

    /**
     * Target keys currently waiting on @p line (empty when the line is
     * not pending). The integrity leak scan uses this to test whether a
     * specific requester still has a merged target alive downstream.
     */
    std::vector<uint64_t> keysFor(Addr line) const;

    /**
     * True if allocate(line, ...) would return Stall right now: the line
     * is pending with a full target list, or it is not pending and no
     * entry is free. Side-effect-free; the fast-forward wake computation
     * uses it to classify a blocked LDST head without mutating the MSHR.
     */
    bool wouldStall(Addr line) const;

    /**
     * The fill arrived: pops and returns all completion keys waiting on
     * the line (empty if the line was not pending). The reference aliases
     * internal scratch valid until the next fill() on this Mshr — iterate
     * it directly, don't hold it across calls.
     */
    const std::vector<uint64_t> &fill(Addr line);

    uint32_t entriesInUse() const { return used_; }
    bool full() const { return used_ >= numEntries_; }

    /** Outstanding targets that expect a response (key != kVoidKey). */
    uint64_t responseTargets() const { return responseTargets_; }

    /** Cumulative primary allocations (NewEntry outcomes). */
    uint64_t primaryAllocations() const { return primaryAllocations_; }
    /** Cumulative secondary allocations merged into a pending line. */
    uint64_t mergedAllocations() const { return mergedAllocations_; }
    /** Cumulative fills that resolved a pending line. Conservation:
     *  primaryAllocations() == fillsServed() + entriesInUse(). */
    uint64_t fillsServed() const { return fillsServed_; }

    /** Introspection snapshot of one outstanding entry. */
    struct EntryInfo
    {
        Addr line = 0;
        Cycle allocatedAt = 0;
        uint32_t targets = 0;
        std::vector<uint64_t> keys;
    };

    /** Snapshot of all outstanding entries (integrity/leak scans),
     *  oldest primary allocation first. */
    std::vector<EntryInfo> entries() const;

    /** Allocation cycle of the oldest outstanding entry (0 when empty).
     *  O(1): head of the intrusive allocation-order list. */
    Cycle oldestAllocation() const;

  private:
    static constexpr uint32_t kNil = ~0u;

    struct Entry
    {
        Addr line = 0;
        Cycle allocatedAt = 0;
        /** Keeps its capacity across pool reuse: merged targets per line
         *  are small and bounded by maxTargets_, so steady state never
         *  reallocates. */
        std::vector<uint64_t> keys;
        /** Intrusive allocation-order list (oldest at head_). */
        uint32_t prev = kNil;
        uint32_t next = kNil;
    };

    uint32_t hashSlot(Addr line) const;
    /** Hash-table slot holding @p line, or kNil. */
    uint32_t findSlot(Addr line) const;
    /** Backward-shift deletion starting at table slot @p slot. */
    void eraseSlot(uint32_t slot);

    uint32_t numEntries_;
    uint32_t maxTargets_;
    uint32_t used_ = 0;
    uint32_t tableMask_ = 0;
    uint64_t responseTargets_ = 0;
    uint64_t primaryAllocations_ = 0;
    uint64_t mergedAllocations_ = 0;
    uint64_t fillsServed_ = 0;
    uint32_t orderHead_ = kNil;
    uint32_t orderTail_ = kNil;
    /** Open-addressed table of pool indices (kNil = empty slot). Sized to
     *  a power of two ≥ 2× numEntries_, so load factor stays ≤ 50% and
     *  linear probes stay short even when the MSHR is full. */
    std::vector<uint32_t> table_;
    std::vector<Entry> pool_;
    std::vector<uint32_t> freeList_;
    std::vector<uint64_t> fillScratch_;
};

} // namespace crisp

#endif // CRISP_MEM_MSHR_HPP
