#ifndef CRISP_MEM_DRAM_HPP
#define CRISP_MEM_DRAM_HPP

#include <cstdint>

#include "common/types.hpp"

namespace crisp
{

/**
 * Bandwidth/latency DRAM channel model.
 *
 * Each memory partition owns one channel. A request occupies the channel for
 * line_bytes / bytes_per_cycle cycles (bandwidth) and completes a fixed
 * access latency after its service slot (CAS + row overheads folded into one
 * number, as in Accel-Sim's simple DRAM mode). Queued requests serialize,
 * which is what makes the Fig 14 workload pairs bandwidth-bound.
 */
class DramChannel
{
  public:
    /**
     * @param bytes_per_cycle channel bandwidth in bytes per core cycle
     * @param access_latency fixed access latency in core cycles
     */
    DramChannel(double bytes_per_cycle, Cycle access_latency);

    /**
     * Schedule a @p bytes transfer arriving at @p now.
     *
     * @param addr the address touched; used only to track row-buffer
     *        locality (consecutive requests to different rows count as a
     *        row conflict). Latency is unaffected — the simple mode folds
     *        row overheads into the fixed access latency.
     * @return the cycle at which the data is available.
     */
    Cycle service(Cycle now, uint32_t bytes, Addr addr = 0);

    /** Cycles the channel has spent transferring data. */
    double busyCycles() const { return busyCycles_; }
    uint64_t requests() const { return requests_; }

    /** Back-to-back requests that switched DRAM rows. */
    uint64_t rowConflicts() const { return rowConflicts_; }

    /** Utilization over the first @p elapsed cycles. */
    double utilization(Cycle elapsed) const
    {
        return elapsed == 0 ? 0.0
                            : busyCycles_ / static_cast<double>(elapsed);
    }

  private:
    double bytesPerCycle_;
    Cycle accessLatency_;
    double freeAt_ = 0.0;      // fractional cycle the channel frees up
    double busyCycles_ = 0.0;
    uint64_t requests_ = 0;
    Addr lastRow_ = ~static_cast<Addr>(0);
    uint64_t rowConflicts_ = 0;
};

} // namespace crisp

#endif // CRISP_MEM_DRAM_HPP
