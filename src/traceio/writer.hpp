#ifndef CRISP_TRACEIO_WRITER_HPP
#define CRISP_TRACEIO_WRITER_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "isa/trace.hpp"
#include "traceio/format.hpp"
#include "traceio/reader.hpp"

namespace crisp::traceio
{

/**
 * Streaming CRTR writer.
 *
 * Chunks are emitted as they are produced — one CTA resident at a time,
 * so packing a kernel never materializes more than a single CTA's trace
 * (full-resolution fragment kernels are far too large to hold whole).
 * A file is valid only after finish() writes the End chunk; abandoning
 * a writer leaves a file every reader rejects as truncated.
 */
class TraceWriter
{
  public:
    /**
     * @param fingerprint free-form identity of the producing
     *        configuration (generator parameters, GPU config, heap
     *        base). Readers and the trace cache compare it verbatim.
     */
    TraceWriter(std::string path, std::string fingerprint);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    bool valid() const { return error_.ok(); }
    const TraceError &error() const { return error_; }

    /**
     * Begin a kernel: emits its header chunk. Exactly
     * info.numCtas() addCta() calls must follow before the next
     * beginKernel()/finish(). @p depends_on is the index of an earlier
     * kernel in this file (-1 = none), mirroring
     * RenderSubmission::dependsOn.
     */
    void beginKernel(const KernelInfo &info, int depends_on = -1);

    /** Append one CTA of the kernel begun last. */
    void addCta(const CtaTrace &cta);

    /**
     * Pack a whole kernel: header plus every CTA pulled from
     * info.source in index order (streamed, bounded memory).
     */
    void writeKernel(const KernelInfo &info, int depends_on = -1);

    /**
     * Write the End chunk and close. @p heap_bytes_used records how
     * much address space the generator consumed (see
     * EndRecord::heapBytesUsed). Returns false if any step failed;
     * the error() carries the first failure.
     */
    bool finish(uint64_t heap_bytes_used = 0);

  private:
    void writeChunk(ChunkType type, const std::vector<uint8_t> &payload);
    void setError(TraceError::Kind kind, const std::string &detail);

    std::string path_;
    std::FILE *file_ = nullptr;
    TraceError error_;
    uint64_t offset_ = 0;
    bool finished_ = false;
    uint32_t ctasExpected_ = 0;
    uint32_t ctasWritten_ = 0;
    EndRecord totals_;
    std::vector<uint8_t> scratch_;
};

/**
 * Pack @p kernels (with optional submission dependencies, parallel to
 * kernels; empty = none) into @p path. Returns false with @p err set on
 * failure.
 */
bool writeTrace(const std::string &path, const std::string &fingerprint,
                const std::vector<KernelInfo> &kernels,
                const std::vector<int> &depends_on, uint64_t heap_bytes_used,
                TraceError &err);

} // namespace crisp::traceio

#endif // CRISP_TRACEIO_WRITER_HPP
