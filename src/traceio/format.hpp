#ifndef CRISP_TRACEIO_FORMAT_HPP
#define CRISP_TRACEIO_FORMAT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/trace.hpp"

namespace crisp::traceio
{

/**
 * @file
 * The CRTR on-disk trace container.
 *
 * CRISP is trace-driven the way the Accel-Sim family is: workloads are
 * instruction traces, and a platform needs those traces to exist as
 * portable, verifiable artifacts rather than only as in-memory generator
 * output. CRTR is the container:
 *
 *   file  := "CRTR" | u32le formatVersion | chunk*
 *   chunk := u8 type | u32le payloadLen | u32le crc32(payload) | payload
 *
 * Chunks appear in stream order: one Meta chunk, then per kernel one
 * KernelHeader chunk followed by exactly ctaCount CtaData chunks, and a
 * final End chunk carrying file-wide totals (its presence is the
 * truncation detector; its totals cross-check the chunk stream). Every
 * payload is covered by a CRC32 verified on read, so corruption is
 * reported instead of simulated.
 *
 * Integers inside payloads are LEB128 varints (zigzag for signed
 * values). Memory addresses are the bulk of a trace, so they are
 * delta-encoded per warp: each address is written as the zigzag delta
 * from the previous address in the same warp's instruction stream.
 * Strided and stencil patterns collapse to one- or two-byte deltas.
 */

/** Container magic: the first four bytes of every trace file. */
inline constexpr char kMagic[4] = {'C', 'R', 'T', 'R'};

/**
 * Format version. Bump on any layout or encoding change; readers reject
 * files whose version differs (no cross-version decoding is attempted —
 * traces are cheap to regenerate, silent misdecodes are not).
 */
inline constexpr uint32_t kFormatVersion = 1;

/** Chunk type tags. */
enum class ChunkType : uint8_t
{
    Meta = 1,         ///< Fingerprint of the producing configuration.
    KernelHeader = 2, ///< Launch parameters of the next kernel.
    CtaData = 3,      ///< One CTA's warps and instructions.
    End = 4,          ///< File-wide totals; absence means truncation.
};

/** Size of the fixed chunk prelude (type + length + crc). */
inline constexpr size_t kChunkPrelude = 1 + 4 + 4;

/** Sanity cap on a single chunk payload (corrupt length fields). */
inline constexpr uint32_t kMaxChunkPayload = 1u << 30;

// --- CRC32 ----------------------------------------------------------------

/** IEEE 802.3 CRC32 (the zlib polynomial), table-driven. */
uint32_t crc32(const uint8_t *data, size_t len, uint32_t seed = 0);

// --- Varint encoding ------------------------------------------------------

/** Append a LEB128 unsigned varint. */
void putVarint(std::vector<uint8_t> &out, uint64_t v);

/** Append a zigzag-encoded signed varint. */
void putSigned(std::vector<uint8_t> &out, int64_t v);

/**
 * Bounded byte cursor for decoding; overruns set fail() instead of
 * reading past the payload.
 */
class ByteCursor
{
  public:
    ByteCursor(const uint8_t *data, size_t len) : p_(data), end_(data + len)
    {
    }

    bool fail() const { return fail_; }
    bool atEnd() const { return p_ == end_ && !fail_; }
    size_t remaining() const { return static_cast<size_t>(end_ - p_); }

    uint8_t u8();
    uint64_t varint();
    int64_t signedVarint();
    /** Copy @p n raw bytes into @p out; fails if fewer remain. */
    bool bytes(void *out, size_t n);

  private:
    const uint8_t *p_;
    const uint8_t *end_;
    bool fail_ = false;
};

// --- Payload codecs -------------------------------------------------------

/** KernelHeader chunk contents: launch parameters minus the generator. */
struct KernelHeaderRecord
{
    std::string name;
    StreamId stream = 0;
    Dim3 grid;
    Dim3 cta;
    uint32_t regsPerThread = 32;
    uint32_t smemPerCta = 0;
    uint32_t drawcall = 0;
    /** Submission dependency (index into the file's kernels; -1 = none). */
    int32_t dependsOn = -1;
    /** Number of CtaData chunks that follow this header. */
    uint32_t ctaCount = 0;
};

/** End chunk contents: totals cross-checked against the chunk stream. */
struct EndRecord
{
    uint64_t kernelCount = 0;
    uint64_t ctaCount = 0;
    uint64_t instrCount = 0;
    /**
     * Bytes the generator consumed from its AddressSpace while building
     * the trace. A cache hit advances the caller's heap by this much so
     * later allocations cannot collide with addresses baked into the
     * trace.
     */
    uint64_t heapBytesUsed = 0;
};

void encodeMeta(std::vector<uint8_t> &out, const std::string &fingerprint);
bool decodeMeta(ByteCursor &in, std::string &fingerprint, std::string &err);

void encodeKernelHeader(std::vector<uint8_t> &out,
                        const KernelHeaderRecord &rec);
bool decodeKernelHeader(ByteCursor &in, KernelHeaderRecord &rec,
                        std::string &err);

void encodeCta(std::vector<uint8_t> &out, const CtaTrace &cta);
/** @param instrs_out incremented by the CTA's instruction count */
bool decodeCta(ByteCursor &in, CtaTrace &cta, uint64_t &instrs_out,
               std::string &err);

void encodeEnd(std::vector<uint8_t> &out, const EndRecord &rec);
bool decodeEnd(ByteCursor &in, EndRecord &rec, std::string &err);

} // namespace crisp::traceio

#endif // CRISP_TRACEIO_FORMAT_HPP
