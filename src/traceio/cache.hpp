#ifndef CRISP_TRACEIO_CACHE_HPP
#define CRISP_TRACEIO_CACHE_HPP

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "graphics/address_space.hpp"
#include "isa/trace.hpp"

namespace crisp::traceio
{

/** FNV-1a 64-bit hash of a cache key string. */
uint64_t keyHash(const std::string &key);

/**
 * Content-addressed on-disk cache of packed workload traces.
 *
 * Keys are full generator-configuration descriptions (generator name,
 * every parameter, heap base, machine constants, format version); the
 * key hashes to the cache file name and is stored verbatim as the
 * trace fingerprint, so a hash collision or a stale file is detected
 * by string compare and treated as a miss — content addressing means
 * a changed configuration can never replay the wrong trace.
 *
 * Disabled by default: construction from the environment only enables
 * the cache when CRISP_TRACE_CACHE names a directory. A corrupt or
 * truncated cache file is diagnosed (warn with the trace-io error),
 * dropped, and rebuilt — cache damage degrades to generation cost,
 * never to wrong simulation input.
 *
 * Safe under concurrent populates from multiple threads *and*
 * processes (a job server runs many simulations against one cache
 * directory): each writer stages through a unique pid+tid-suffixed
 * temp file before the atomic rename, so two writers never interleave
 * bytes, and a writer that loses the rename race treats the other
 * writer's (identical-keyed) entry as the cache being populated — a
 * win, not an error. Counters are atomics for the same reason.
 */
class TraceCache
{
  public:
    /** Disabled cache: loadOrBuild always builds. */
    TraceCache() = default;

    /** Cache rooted at @p dir (created if missing). */
    explicit TraceCache(std::string dir);

    /** Honour CRISP_TRACE_CACHE; unset or empty leaves the cache off. */
    static TraceCache fromEnv();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Cache file path a key maps to ("<dir>/<hash16>.crtr"). */
    std::string pathForKey(const std::string &key) const;

    using Builder = std::function<std::vector<KernelInfo>(AddressSpace &)>;

    /**
     * Return the kernels for @p key: replayed from the cache on a hit
     * (heap advanced by the recorded footprint so later allocations
     * stay disjoint), generated via @p build and packed into the cache
     * on a miss. With the cache disabled this is exactly build(heap).
     */
    std::vector<KernelInfo> loadOrBuild(const std::string &key,
                                        AddressSpace &heap,
                                        const Builder &build,
                                        bool *hit_out = nullptr);

    /**
     * A kernel list with launch dependencies (indices into the list,
     * -1 = none) — the full submission shape the CRTR format records.
     * loadOrBuild() keeps only the kernels; scenario- and scene-backed
     * submissions carry intra-frame dependencies that must survive the
     * cache round-trip, or a replayed frame serializes its drawcalls.
     */
    struct CachedSubmission
    {
        std::vector<KernelInfo> kernels;
        std::vector<int> dependsOn;
    };
    using SubmissionBuilder =
        std::function<CachedSubmission(AddressSpace &)>;

    /** loadOrBuild, dependency-preserving: deps are packed on a miss and
     *  replayed on a hit (sized to the kernels, -1-padded on old files). */
    CachedSubmission loadOrBuildSubmission(const std::string &key,
                                           AddressSpace &heap,
                                           const SubmissionBuilder &build,
                                           bool *hit_out = nullptr);

    struct Stats
    {
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
        /** Cache files rejected (corrupt, truncated, key mismatch). */
        std::atomic<uint64_t> rejects{0};
        /** Failed attempts to populate the cache (I/O errors). */
        std::atomic<uint64_t> storeFailures{0};
        /** Populates that lost the rename race to a concurrent writer
         *  (the entry exists either way, so this is not a failure). */
        std::atomic<uint64_t> populateRaces{0};
    };
    const Stats &stats() const { return stats_; }

  private:
    std::string dir_;
    Stats stats_;
};

} // namespace crisp::traceio

#endif // CRISP_TRACEIO_CACHE_HPP
