#ifndef CRISP_TRACEIO_REPLAY_HPP
#define CRISP_TRACEIO_REPLAY_HPP

#include <vector>

#include "gpu/gpu.hpp"
#include "traceio/reader.hpp"

namespace crisp::traceio
{

/**
 * Replay frontend: enqueue a loaded trace on a GPU stream with the
 * dependencies recorded in the file, exactly as submitFrame() enqueues
 * a live RenderSubmission. A trace packed from a submission and
 * replayed through this path produces byte-identical StreamStats to
 * the live run — the kernels decode to the same instruction streams
 * and the dependency graph is preserved.
 *
 * @return the KernelId of each submitted kernel, parallel to
 *         trace.kernels.
 */
inline std::vector<KernelId>
submitLoaded(Gpu &gpu, StreamId stream, const LoadedTrace &trace,
             Cycle fixed_function_delay = 0)
{
    std::vector<KernelId> ids;
    ids.reserve(trace.kernels.size());
    for (size_t i = 0; i < trace.kernels.size(); ++i) {
        const int dep = trace.dependsOn[i];
        const KernelId dep_id =
            dep >= 0 ? ids[static_cast<size_t>(dep)] : Gpu::kNoDependency;
        ids.push_back(gpu.enqueueKernelAfter(stream, trace.kernels[i],
                                             dep_id,
                                             dep >= 0 ? fixed_function_delay
                                                      : 0));
    }
    return ids;
}

} // namespace crisp::traceio

#endif // CRISP_TRACEIO_REPLAY_HPP
