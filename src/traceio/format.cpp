#include "traceio/format.hpp"

#include <array>

#include "isa/opcode.hpp"

namespace crisp::traceio
{

namespace
{

std::array<uint32_t, 256>
buildCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(const uint8_t *data, size_t len, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = buildCrcTable();
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i) {
        c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

void
putSigned(std::vector<uint8_t> &out, int64_t v)
{
    putVarint(out, (static_cast<uint64_t>(v) << 1) ^
                       static_cast<uint64_t>(v >> 63));
}

uint8_t
ByteCursor::u8()
{
    if (p_ == end_) {
        fail_ = true;
        return 0;
    }
    return *p_++;
}

uint64_t
ByteCursor::varint()
{
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
        if (p_ == end_) {
            fail_ = true;
            return 0;
        }
        const uint8_t b = *p_++;
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            return v;
        }
    }
    fail_ = true; // > 10 continuation bytes: not a valid varint
    return 0;
}

int64_t
ByteCursor::signedVarint()
{
    const uint64_t z = varint();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

bool
ByteCursor::bytes(void *out, size_t n)
{
    if (remaining() < n) {
        fail_ = true;
        return false;
    }
    __builtin_memcpy(out, p_, n);
    p_ += n;
    return true;
}

// --- Meta ------------------------------------------------------------------

void
encodeMeta(std::vector<uint8_t> &out, const std::string &fingerprint)
{
    putVarint(out, fingerprint.size());
    out.insert(out.end(), fingerprint.begin(), fingerprint.end());
}

bool
decodeMeta(ByteCursor &in, std::string &fingerprint, std::string &err)
{
    const uint64_t len = in.varint();
    if (in.fail() || len > in.remaining()) {
        err = "meta fingerprint length overruns payload";
        return false;
    }
    fingerprint.resize(len);
    in.bytes(fingerprint.data(), len);
    return !in.fail();
}

// --- KernelHeader ----------------------------------------------------------

void
encodeKernelHeader(std::vector<uint8_t> &out, const KernelHeaderRecord &rec)
{
    putVarint(out, rec.name.size());
    out.insert(out.end(), rec.name.begin(), rec.name.end());
    putVarint(out, rec.stream);
    putVarint(out, rec.grid.x);
    putVarint(out, rec.grid.y);
    putVarint(out, rec.grid.z);
    putVarint(out, rec.cta.x);
    putVarint(out, rec.cta.y);
    putVarint(out, rec.cta.z);
    putVarint(out, rec.regsPerThread);
    putVarint(out, rec.smemPerCta);
    putVarint(out, rec.drawcall);
    putSigned(out, rec.dependsOn);
    putVarint(out, rec.ctaCount);
}

bool
decodeKernelHeader(ByteCursor &in, KernelHeaderRecord &rec, std::string &err)
{
    const uint64_t name_len = in.varint();
    if (in.fail() || name_len > in.remaining()) {
        err = "kernel name length overruns payload";
        return false;
    }
    rec.name.resize(name_len);
    in.bytes(rec.name.data(), name_len);
    rec.stream = static_cast<StreamId>(in.varint());
    rec.grid.x = static_cast<uint32_t>(in.varint());
    rec.grid.y = static_cast<uint32_t>(in.varint());
    rec.grid.z = static_cast<uint32_t>(in.varint());
    rec.cta.x = static_cast<uint32_t>(in.varint());
    rec.cta.y = static_cast<uint32_t>(in.varint());
    rec.cta.z = static_cast<uint32_t>(in.varint());
    rec.regsPerThread = static_cast<uint32_t>(in.varint());
    rec.smemPerCta = static_cast<uint32_t>(in.varint());
    rec.drawcall = static_cast<uint32_t>(in.varint());
    rec.dependsOn = static_cast<int32_t>(in.signedVarint());
    rec.ctaCount = static_cast<uint32_t>(in.varint());
    if (in.fail()) {
        err = "kernel header truncated";
        return false;
    }
    if (!in.atEnd()) {
        err = "kernel header has trailing bytes";
        return false;
    }
    if (rec.grid.count() == 0 || rec.cta.count() == 0) {
        err = "kernel '" + rec.name + "' has an empty grid or CTA extent";
        return false;
    }
    if (rec.ctaCount != rec.grid.count()) {
        err = "kernel '" + rec.name + "' ctaCount " +
              std::to_string(rec.ctaCount) + " != grid size " +
              std::to_string(rec.grid.count());
        return false;
    }
    if (rec.dependsOn < -1) {
        err = "kernel '" + rec.name + "' has malformed dependency index";
        return false;
    }
    return true;
}

// --- CtaData ---------------------------------------------------------------

void
encodeCta(std::vector<uint8_t> &out, const CtaTrace &cta)
{
    putVarint(out, cta.warps.size());
    for (const WarpTrace &warp : cta.warps) {
        putVarint(out, warp.threadCount);
        putVarint(out, warp.instrs.size());
        Addr prev = 0; // per-warp running base for address deltas
        for (const TraceInstr &in : warp.instrs) {
            out.push_back(static_cast<uint8_t>(in.opcode));
            out.push_back(in.dst);
            out.push_back(in.srcs[0]);
            out.push_back(in.srcs[1]);
            out.push_back(in.srcs[2]);
            putVarint(out, in.activeMask);
            out.push_back(in.accessBytes);
            out.push_back(static_cast<uint8_t>(in.dataClass));
            putVarint(out, in.addrs.size());
            for (Addr a : in.addrs) {
                putSigned(out, static_cast<int64_t>(a) -
                                   static_cast<int64_t>(prev));
                prev = a;
            }
        }
    }
}

bool
decodeCta(ByteCursor &in, CtaTrace &cta, uint64_t &instrs_out,
          std::string &err)
{
    const uint64_t warp_count = in.varint();
    // An SM supports at most 64 warps; any real CTA is far below the cap.
    if (in.fail() || warp_count > 1024) {
        err = "CTA warp count invalid";
        return false;
    }
    cta.warps.resize(warp_count);
    for (uint64_t w = 0; w < warp_count; ++w) {
        WarpTrace &warp = cta.warps[w];
        warp.threadCount = static_cast<uint32_t>(in.varint());
        if (in.fail() || warp.threadCount > kWarpSize) {
            err = "warp " + std::to_string(w) + " thread count invalid";
            return false;
        }
        const uint64_t instr_count = in.varint();
        // Each instruction costs >= 9 payload bytes; reject counts the
        // remaining payload cannot possibly hold (corrupt length field).
        if (in.fail() || instr_count > in.remaining()) {
            err = "warp " + std::to_string(w) + " instruction count invalid";
            return false;
        }
        warp.instrs.resize(instr_count);
        Addr prev = 0;
        for (uint64_t i = 0; i < instr_count; ++i) {
            TraceInstr &instr = warp.instrs[i];
            const uint8_t op = in.u8();
            if (op >= static_cast<uint8_t>(Opcode::NumOpcodes)) {
                err = "warp " + std::to_string(w) + " instr " +
                      std::to_string(i) + " has invalid opcode " +
                      std::to_string(op);
                return false;
            }
            instr.opcode = static_cast<Opcode>(op);
            instr.dst = in.u8();
            instr.srcs[0] = in.u8();
            instr.srcs[1] = in.u8();
            instr.srcs[2] = in.u8();
            instr.activeMask = static_cast<uint32_t>(in.varint());
            instr.accessBytes = in.u8();
            const uint8_t cls = in.u8();
            if (cls >= static_cast<uint8_t>(DataClass::NumClasses)) {
                err = "warp " + std::to_string(w) + " instr " +
                      std::to_string(i) + " has invalid data class " +
                      std::to_string(cls);
                return false;
            }
            instr.dataClass = static_cast<DataClass>(cls);
            const uint64_t addr_count = in.varint();
            if (in.fail() || addr_count > kWarpSize) {
                err = "warp " + std::to_string(w) + " instr " +
                      std::to_string(i) + " address count invalid";
                return false;
            }
            instr.addrs.resize(addr_count);
            for (uint64_t a = 0; a < addr_count; ++a) {
                prev = static_cast<Addr>(static_cast<int64_t>(prev) +
                                         in.signedVarint());
                instr.addrs[a] = prev;
            }
            if (in.fail()) {
                err = "warp " + std::to_string(w) + " truncated mid-instr";
                return false;
            }
        }
        instrs_out += instr_count;
    }
    if (!in.atEnd()) {
        err = "CTA payload has trailing bytes";
        return false;
    }
    return true;
}

// --- End -------------------------------------------------------------------

void
encodeEnd(std::vector<uint8_t> &out, const EndRecord &rec)
{
    putVarint(out, rec.kernelCount);
    putVarint(out, rec.ctaCount);
    putVarint(out, rec.instrCount);
    putVarint(out, rec.heapBytesUsed);
}

bool
decodeEnd(ByteCursor &in, EndRecord &rec, std::string &err)
{
    rec.kernelCount = in.varint();
    rec.ctaCount = in.varint();
    rec.instrCount = in.varint();
    rec.heapBytesUsed = in.varint();
    if (in.fail() || !in.atEnd()) {
        err = "end chunk malformed";
        return false;
    }
    return true;
}

} // namespace crisp::traceio
