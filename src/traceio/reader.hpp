#ifndef CRISP_TRACEIO_READER_HPP
#define CRISP_TRACEIO_READER_HPP

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "integrity/report.hpp"
#include "isa/trace.hpp"
#include "traceio/format.hpp"

namespace crisp::traceio
{

/**
 * Diagnosable trace I/O failure.
 *
 * Every malformed input — missing file, wrong magic, version skew,
 * truncation, CRC mismatch, schema violation — lands here with the file
 * offset where it was detected, never in UB or a partially decoded
 * trace. violation() adapts the error to the integrity pipeline's
 * InvariantViolation shape so trace corruption surfaces through the
 * same reporting path as simulation invariant breaks.
 */
struct TraceError
{
    enum class Kind
    {
        None,
        Io,        ///< open/read failure (missing file, short read).
        BadMagic,  ///< not a CRTR file.
        Version,   ///< format version != kFormatVersion.
        Truncated, ///< chunk stream ends without a valid End chunk.
        Corrupt,   ///< CRC mismatch on a chunk payload.
        Schema,    ///< payload decodes to out-of-range values.
    };

    Kind kind = Kind::None;
    std::string detail;
    uint64_t offset = 0; ///< File offset of the offending chunk/field.

    bool ok() const { return kind == Kind::None; }
    static const char *kindName(Kind k);

    /**
     * True for kinds worth retrying with backoff: Io (the file may be
     * mid-rename or on flaky storage), Truncated and Corrupt (a reader
     * can race a concurrent cache populate or sit on storage that lies
     * about durability; a re-read after the writer's rename lands sees
     * the complete file). BadMagic/Version/Schema are structural — the
     * file is simply not a compatible trace and never will be.
     */
    bool transient() const;

    /** One-line human rendering: "trace-io <kind> @<offset>: <detail>". */
    std::string render() const;

    /** Adapt to the integrity layer (check = "trace-io-<kind>"). */
    integrity::InvariantViolation violation() const;
};

/**
 * Streaming reader over a CRTR trace file.
 *
 * Construction scans the whole chunk stream once with bounded memory:
 * every chunk's CRC is verified and every payload is decoded (and
 * discarded, for CTA chunks), so a corrupt or truncated file is
 * rejected at open on every read path. What is retained is the small
 * per-kernel index — launch parameters plus the file offset of each
 * CTA chunk — which readCta() uses to re-read and decode one CTA at a
 * time (CRC re-verified, so a file modified after open is still
 * caught).
 */
class TraceReader
{
  public:
    /** One kernel of the file: header plus CTA chunk locations. */
    struct Kernel
    {
        KernelHeaderRecord header;
        uint64_t instrCount = 0;
        /** File offset of each CTA's chunk prelude, in CTA order. */
        std::vector<uint64_t> ctaOffsets;
    };

    explicit TraceReader(std::string path);

    bool valid() const { return error_.ok(); }
    const TraceError &error() const { return error_; }
    const std::string &path() const { return path_; }

    uint32_t version() const { return version_; }
    const std::string &fingerprint() const { return fingerprint_; }
    const EndRecord &totals() const { return totals_; }

    size_t kernelCount() const { return kernels_.size(); }
    const Kernel &kernel(size_t i) const { return kernels_[i]; }
    const std::vector<Kernel> &kernels() const { return kernels_; }

    /**
     * Decode one CTA of one kernel. Thread-safe: calls share one
     * persistent stream under a lock (replay launches thousands of CTAs;
     * an open() per CTA dominated replay cost). The payload CRC is still
     * re-verified on every read, so a file modified after open is still
     * caught. Returns false with @p err filled on any failure; @p out is
     * untouched on failure.
     */
    bool readCta(size_t kernel_index, uint32_t cta_index, CtaTrace &out,
                 TraceError &err) const;

  private:
    void scan();

    std::string path_;
    TraceError error_;
    uint32_t version_ = 0;
    std::string fingerprint_;
    EndRecord totals_;
    std::vector<Kernel> kernels_;
    /** Lazily opened stream reused across readCta calls. */
    mutable std::ifstream ctaStream_;
    mutable std::mutex ctaMutex_;
};

/**
 * CtaGenerator view over a packed trace kernel: decodes CTAs from disk
 * on demand (bounded memory — one CTA resident per generate() call).
 * Corruption detected mid-replay is fatal() with the file offset; the
 * trace was fully validated at open, so this only fires if the file
 * changed underneath the simulation.
 */
class FileCtaSource : public CtaGenerator
{
  public:
    FileCtaSource(std::shared_ptr<const TraceReader> reader,
                  size_t kernel_index)
        : reader_(std::move(reader)), kernelIndex_(kernel_index)
    {
    }

    CtaTrace generate(uint32_t cta_index) const override;

  private:
    std::shared_ptr<const TraceReader> reader_;
    size_t kernelIndex_;
};

/**
 * A fully loaded trace file: kernels ready to enqueue (sources decode
 * from disk lazily via FileCtaSource) plus the submission dependencies,
 * mirroring RenderSubmission's kernels/dependsOn pair.
 */
struct LoadedTrace
{
    std::vector<KernelInfo> kernels;
    /** dependsOn[i] = index of the kernel that must finish first; -1 none. */
    std::vector<int> dependsOn;
    std::string fingerprint;
    uint64_t heapBytesUsed = 0;
};

/**
 * Open @p path and build a replayable LoadedTrace. On failure returns
 * false and fills @p err; @p out is untouched.
 */
bool loadTrace(const std::string &path, LoadedTrace &out, TraceError &err);

} // namespace crisp::traceio

#endif // CRISP_TRACEIO_READER_HPP
