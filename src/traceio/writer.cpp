#include "traceio/writer.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace crisp::traceio
{

TraceWriter::TraceWriter(std::string path, std::string fingerprint)
    : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
        setError(TraceError::Kind::Io, "cannot create " + path_);
        return;
    }
    uint8_t header[8];
    std::memcpy(header, kMagic, 4);
    const uint32_t version = kFormatVersion;
    std::memcpy(header + 4, &version, 4);
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
        setError(TraceError::Kind::Io, "short write of the CRTR header");
        return;
    }
    offset_ = sizeof(header);

    scratch_.clear();
    encodeMeta(scratch_, fingerprint);
    writeChunk(ChunkType::Meta, scratch_);
}

TraceWriter::~TraceWriter()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        if (!finished_) {
            // No End chunk: every reader will reject this file as
            // truncated rather than replay a partial trace.
            warn("trace writer for %s destroyed before finish(); the file "
                 "is deliberately left truncated",
                 path_.c_str());
        }
    }
}

void
TraceWriter::setError(TraceError::Kind kind, const std::string &detail)
{
    if (error_.ok()) {
        error_ = {kind, detail, offset_};
    }
}

void
TraceWriter::writeChunk(ChunkType type, const std::vector<uint8_t> &payload)
{
    if (!error_.ok() || file_ == nullptr) {
        return;
    }
    if (payload.size() > kMaxChunkPayload) {
        setError(TraceError::Kind::Schema,
                 "chunk payload exceeds the format cap (" +
                     std::to_string(payload.size()) + " bytes)");
        return;
    }
    uint8_t prelude[kChunkPrelude];
    prelude[0] = static_cast<uint8_t>(type);
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint32_t crc = crc32(payload.data(), payload.size());
    std::memcpy(prelude + 1, &len, 4);
    std::memcpy(prelude + 5, &crc, 4);
    if (std::fwrite(prelude, 1, sizeof(prelude), file_) != sizeof(prelude) ||
        std::fwrite(payload.data(), 1, payload.size(), file_) !=
            payload.size()) {
        setError(TraceError::Kind::Io,
                 "short write to " + path_ + " (disk full?)");
        return;
    }
    offset_ += kChunkPrelude + payload.size();
}

void
TraceWriter::beginKernel(const KernelInfo &info, int depends_on)
{
    panic_if(finished_, "beginKernel after finish");
    if (ctasWritten_ != ctasExpected_) {
        setError(TraceError::Kind::Schema,
                 "previous kernel got " + std::to_string(ctasWritten_) +
                     " of " + std::to_string(ctasExpected_) + " CTAs");
        return;
    }
    KernelHeaderRecord rec;
    rec.name = info.name;
    rec.stream = info.stream;
    rec.grid = info.grid;
    rec.cta = info.cta;
    rec.regsPerThread = info.regsPerThread;
    rec.smemPerCta = info.smemPerCta;
    rec.drawcall = info.drawcall;
    rec.dependsOn = depends_on;
    rec.ctaCount = info.numCtas();
    if (depends_on < -1 ||
        depends_on >= static_cast<int>(totals_.kernelCount)) {
        setError(TraceError::Kind::Schema,
                 "kernel '" + info.name + "' dependency index " +
                     std::to_string(depends_on) +
                     " does not name an earlier kernel");
        return;
    }
    scratch_.clear();
    encodeKernelHeader(scratch_, rec);
    writeChunk(ChunkType::KernelHeader, scratch_);
    ctasExpected_ = rec.ctaCount;
    ctasWritten_ = 0;
    ++totals_.kernelCount;
}

void
TraceWriter::addCta(const CtaTrace &cta)
{
    panic_if(finished_, "addCta after finish");
    if (ctasWritten_ >= ctasExpected_) {
        setError(TraceError::Kind::Schema,
                 "more CTAs added than the kernel's grid holds");
        return;
    }
    scratch_.clear();
    encodeCta(scratch_, cta);
    writeChunk(ChunkType::CtaData, scratch_);
    ++ctasWritten_;
    ++totals_.ctaCount;
    for (const WarpTrace &w : cta.warps) {
        totals_.instrCount += w.instrs.size();
    }
}

void
TraceWriter::writeKernel(const KernelInfo &info, int depends_on)
{
    panic_if(info.source == nullptr,
             "cannot pack kernel '%s': it has no trace source",
             info.name.c_str());
    beginKernel(info, depends_on);
    const uint32_t ctas = info.numCtas();
    for (uint32_t i = 0; i < ctas && error_.ok(); ++i) {
        addCta(info.source->generate(i));
    }
}

bool
TraceWriter::finish(uint64_t heap_bytes_used)
{
    panic_if(finished_, "finish called twice");
    if (ctasWritten_ != ctasExpected_) {
        setError(TraceError::Kind::Schema,
                 "last kernel got " + std::to_string(ctasWritten_) + " of " +
                     std::to_string(ctasExpected_) + " CTAs");
    }
    totals_.heapBytesUsed = heap_bytes_used;
    scratch_.clear();
    encodeEnd(scratch_, totals_);
    writeChunk(ChunkType::End, scratch_);
    finished_ = true;
    if (file_ != nullptr) {
        if (std::fclose(file_) != 0) {
            setError(TraceError::Kind::Io, "close of " + path_ + " failed");
        }
        file_ = nullptr;
    }
    return error_.ok();
}

bool
writeTrace(const std::string &path, const std::string &fingerprint,
           const std::vector<KernelInfo> &kernels,
           const std::vector<int> &depends_on, uint64_t heap_bytes_used,
           TraceError &err)
{
    panic_if(!depends_on.empty() && depends_on.size() != kernels.size(),
             "depends_on must be empty or parallel to kernels");
    TraceWriter writer(path, fingerprint);
    for (size_t i = 0; i < kernels.size(); ++i) {
        writer.writeKernel(kernels[i],
                           depends_on.empty() ? -1 : depends_on[i]);
    }
    if (!writer.finish(heap_bytes_used)) {
        err = writer.error();
        return false;
    }
    return true;
}

} // namespace crisp::traceio
