#include "traceio/cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <system_error>
#include <thread>

#include "common/logging.hpp"
#include "traceio/reader.hpp"
#include "traceio/writer.hpp"

namespace crisp::traceio
{

uint64_t
keyHash(const std::string &key)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("trace cache: cannot create %s (%s); cache disabled",
             dir_.c_str(), ec.message().c_str());
        dir_.clear();
    }
}

TraceCache
TraceCache::fromEnv()
{
    const char *dir = std::getenv("CRISP_TRACE_CACHE");
    if (dir == nullptr || dir[0] == '\0') {
        return TraceCache();
    }
    return TraceCache(dir);
}

std::string
TraceCache::pathForKey(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.crtr",
                  static_cast<unsigned long long>(keyHash(key)));
    return dir_ + "/" + name;
}

std::vector<KernelInfo>
TraceCache::loadOrBuild(const std::string &key, AddressSpace &heap,
                        const Builder &build, bool *hit_out)
{
    return loadOrBuildSubmission(
               key, heap,
               [&](AddressSpace &h) {
                   return CachedSubmission{build(h), {}};
               },
               hit_out)
        .kernels;
}

TraceCache::CachedSubmission
TraceCache::loadOrBuildSubmission(const std::string &key, AddressSpace &heap,
                                  const SubmissionBuilder &build,
                                  bool *hit_out)
{
    if (hit_out != nullptr) {
        *hit_out = false;
    }
    if (!enabled()) {
        return build(heap);
    }

    const std::string path = pathForKey(key);
    if (std::filesystem::exists(path)) {
        LoadedTrace loaded;
        TraceError err;
        if (loadTrace(path, loaded, err)) {
            if (loaded.fingerprint == key) {
                // Advance the heap exactly as the generator would have,
                // so callers allocating after us stay clear of the
                // addresses baked into the replayed trace.
                if (loaded.heapBytesUsed > 0) {
                    heap.alloc(loaded.heapBytesUsed, 1);
                }
                ++stats_.hits;
                if (hit_out != nullptr) {
                    *hit_out = true;
                }
                // Entries written through loadOrBuild carry no deps;
                // pad so consumers can index dependsOn[i] regardless.
                loaded.dependsOn.resize(loaded.kernels.size(), -1);
                return {std::move(loaded.kernels),
                        std::move(loaded.dependsOn)};
            }
            warn("trace cache: %s fingerprint mismatch (hash collision or "
                 "stale config); regenerating",
                 path.c_str());
        } else {
            warn("trace cache: rejecting %s: %s; regenerating",
                 path.c_str(), err.render().c_str());
        }
        ++stats_.rejects;
    }

    ++stats_.misses;
    const Addr heap_before = heap.allocatedEnd();
    CachedSubmission built = build(heap);
    std::vector<KernelInfo> &kernels = built.kernels;
    const uint64_t heap_used = heap.allocatedEnd() - heap_before;

    // Populate via a temp file + atomic rename so concurrent readers
    // never see a half-written trace. The temp name is unique per
    // writer (pid + thread id): two threads or two *processes* racing
    // to populate the same key each stage their own bytes — a shared
    // temp name would interleave writes and install garbage.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<uint64_t>(getpid())) +
        "." +
        std::to_string(std::hash<std::thread::id>{}(
            std::this_thread::get_id()));
    TraceError err;
    if (!writeTrace(tmp, key, kernels, built.dependsOn, heap_used, err)) {
        warn("trace cache: cannot populate %s: %s", path.c_str(),
             err.render().c_str());
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        ++stats_.storeFailures;
        return built;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code exists_ec;
        std::filesystem::remove(tmp, exists_ec);
        if (std::filesystem::exists(path, exists_ec)) {
            // Lost the rename race: a concurrent writer installed its
            // entry for this key first. Content addressing makes the
            // two entries interchangeable, so the cache is populated
            // either way — count the race, not a failure.
            ++stats_.populateRaces;
        } else {
            warn("trace cache: cannot move %s into place: %s",
                 tmp.c_str(), ec.message().c_str());
            ++stats_.storeFailures;
        }
    }
    return built;
}

} // namespace crisp::traceio
