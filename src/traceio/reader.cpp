#include "traceio/reader.hpp"

#include <cstring>
#include <fstream>

#include "common/logging.hpp"

namespace crisp::traceio
{

namespace
{

/** Read one chunk prelude; returns false at clean EOF. */
bool
readPrelude(std::ifstream &f, uint8_t &type, uint32_t &len, uint32_t &crc,
            bool &clean_eof)
{
    uint8_t prelude[kChunkPrelude];
    f.read(reinterpret_cast<char *>(prelude), sizeof(prelude));
    if (f.gcount() == 0 && f.eof()) {
        clean_eof = true;
        return false;
    }
    if (static_cast<size_t>(f.gcount()) != sizeof(prelude)) {
        clean_eof = false;
        return false;
    }
    type = prelude[0];
    std::memcpy(&len, prelude + 1, 4);
    std::memcpy(&crc, prelude + 5, 4);
    return true;
}

} // namespace

const char *
TraceError::kindName(Kind k)
{
    switch (k) {
      case Kind::None: return "none";
      case Kind::Io: return "io";
      case Kind::BadMagic: return "bad-magic";
      case Kind::Version: return "version";
      case Kind::Truncated: return "truncated";
      case Kind::Corrupt: return "corrupt";
      case Kind::Schema: return "schema";
      default: return "?";
    }
}

std::string
TraceError::render() const
{
    return std::string("trace-io ") + kindName(kind) + " @" +
           std::to_string(offset) + ": " + detail;
}

bool
TraceError::transient() const
{
    switch (kind) {
      case Kind::Io:
      case Kind::Truncated:
      case Kind::Corrupt:
        return true;
      default:
        return false;
    }
}

integrity::InvariantViolation
TraceError::violation() const
{
    integrity::InvariantViolation v;
    v.check = std::string("trace-io-") + kindName(kind);
    v.detail = detail + " (file offset " + std::to_string(offset) + ")";
    v.cycle = 0;
    return v;
}

TraceReader::TraceReader(std::string path) : path_(std::move(path))
{
    scan();
}

void
TraceReader::scan()
{
    std::ifstream f(path_, std::ios::binary);
    if (!f) {
        error_ = {TraceError::Kind::Io, "cannot open " + path_, 0};
        return;
    }

    char magic[4];
    uint32_t version = 0;
    f.read(magic, 4);
    f.read(reinterpret_cast<char *>(&version), 4);
    if (!f) {
        error_ = {TraceError::Kind::Truncated,
                  "file shorter than the CRTR header", 0};
        return;
    }
    if (std::memcmp(magic, kMagic, 4) != 0) {
        error_ = {TraceError::Kind::BadMagic,
                  path_ + " is not a CRTR trace file", 0};
        return;
    }
    if (version != kFormatVersion) {
        error_ = {TraceError::Kind::Version,
                  "format version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kFormatVersion) + ")",
                  4};
        return;
    }
    version_ = version;

    bool saw_meta = false;
    bool saw_end = false;
    uint64_t total_ctas = 0;
    uint64_t total_instrs = 0;
    std::vector<uint8_t> payload;
    uint64_t offset = 8;

    while (true) {
        uint8_t type = 0;
        uint32_t len = 0;
        uint32_t crc = 0;
        bool clean_eof = false;
        if (!readPrelude(f, type, len, crc, clean_eof)) {
            if (!clean_eof) {
                error_ = {TraceError::Kind::Truncated,
                          "chunk prelude cut short", offset};
                return;
            }
            break;
        }
        if (len > kMaxChunkPayload) {
            error_ = {TraceError::Kind::Schema,
                      "chunk payload length " + std::to_string(len) +
                          " exceeds the format cap",
                      offset};
            return;
        }
        payload.resize(len);
        f.read(reinterpret_cast<char *>(payload.data()), len);
        if (static_cast<size_t>(f.gcount()) != len) {
            error_ = {TraceError::Kind::Truncated,
                      "chunk payload cut short (" +
                          std::to_string(f.gcount()) + " of " +
                          std::to_string(len) + " bytes)",
                      offset};
            return;
        }
        if (crc32(payload.data(), payload.size()) != crc) {
            error_ = {TraceError::Kind::Corrupt,
                      "chunk CRC mismatch (" + std::to_string(len) +
                          "-byte payload)",
                      offset};
            return;
        }
        if (saw_end) {
            error_ = {TraceError::Kind::Schema,
                      "chunk after the End chunk", offset};
            return;
        }

        ByteCursor cur(payload.data(), payload.size());
        std::string err;
        switch (static_cast<ChunkType>(type)) {
          case ChunkType::Meta: {
            if (saw_meta) {
                error_ = {TraceError::Kind::Schema, "duplicate Meta chunk",
                          offset};
                return;
            }
            if (!decodeMeta(cur, fingerprint_, err)) {
                error_ = {TraceError::Kind::Schema, err, offset};
                return;
            }
            saw_meta = true;
            break;
          }
          case ChunkType::KernelHeader: {
            if (!saw_meta) {
                error_ = {TraceError::Kind::Schema,
                          "kernel header before Meta chunk", offset};
                return;
            }
            if (!kernels_.empty() &&
                kernels_.back().ctaOffsets.size() !=
                    kernels_.back().header.ctaCount) {
                error_ = {TraceError::Kind::Schema,
                          "kernel '" + kernels_.back().header.name +
                              "' has " +
                              std::to_string(
                                  kernels_.back().ctaOffsets.size()) +
                              " CTA chunks, header promised " +
                              std::to_string(kernels_.back().header.ctaCount),
                          offset};
                return;
            }
            Kernel k;
            if (!decodeKernelHeader(cur, k.header, err)) {
                error_ = {TraceError::Kind::Schema, err, offset};
                return;
            }
            if (k.header.dependsOn >=
                static_cast<int32_t>(kernels_.size())) {
                error_ = {TraceError::Kind::Schema,
                          "kernel '" + k.header.name +
                              "' depends on a later kernel",
                          offset};
                return;
            }
            kernels_.push_back(std::move(k));
            break;
          }
          case ChunkType::CtaData: {
            if (kernels_.empty()) {
                error_ = {TraceError::Kind::Schema,
                          "CTA chunk before any kernel header", offset};
                return;
            }
            Kernel &k = kernels_.back();
            if (k.ctaOffsets.size() >= k.header.ctaCount) {
                error_ = {TraceError::Kind::Schema,
                          "kernel '" + k.header.name +
                              "' has more CTA chunks than its header "
                              "promised",
                          offset};
                return;
            }
            CtaTrace cta;
            uint64_t instrs = 0;
            if (!decodeCta(cur, cta, instrs, err)) {
                error_ = {TraceError::Kind::Schema, err, offset};
                return;
            }
            k.ctaOffsets.push_back(offset);
            k.instrCount += instrs;
            total_instrs += instrs;
            ++total_ctas;
            break;
          }
          case ChunkType::End: {
            if (!decodeEnd(cur, totals_, err)) {
                error_ = {TraceError::Kind::Schema, err, offset};
                return;
            }
            saw_end = true;
            break;
          }
          default:
            error_ = {TraceError::Kind::Schema,
                      "unknown chunk type " + std::to_string(type), offset};
            return;
        }
        offset += kChunkPrelude + len;
    }

    if (!saw_end) {
        error_ = {TraceError::Kind::Truncated,
                  "no End chunk (file truncated mid-stream)", offset};
        return;
    }
    if (!kernels_.empty() && kernels_.back().ctaOffsets.size() !=
                                 kernels_.back().header.ctaCount) {
        error_ = {TraceError::Kind::Schema,
                  "last kernel '" + kernels_.back().header.name +
                      "' is missing CTA chunks",
                  offset};
        return;
    }
    if (totals_.kernelCount != kernels_.size() ||
        totals_.ctaCount != total_ctas ||
        totals_.instrCount != total_instrs) {
        error_ = {TraceError::Kind::Schema,
                  "End totals disagree with the chunk stream (kernels " +
                      std::to_string(totals_.kernelCount) + "/" +
                      std::to_string(kernels_.size()) + ", ctas " +
                      std::to_string(totals_.ctaCount) + "/" +
                      std::to_string(total_ctas) + ", instrs " +
                      std::to_string(totals_.instrCount) + "/" +
                      std::to_string(total_instrs) + ")",
                  offset};
        return;
    }
}

bool
TraceReader::readCta(size_t kernel_index, uint32_t cta_index, CtaTrace &out,
                     TraceError &err) const
{
    if (!valid()) {
        err = error_;
        return false;
    }
    if (kernel_index >= kernels_.size() ||
        cta_index >= kernels_[kernel_index].ctaOffsets.size()) {
        err = {TraceError::Kind::Schema,
               "CTA index " + std::to_string(cta_index) + " of kernel " +
                   std::to_string(kernel_index) + " out of range",
               0};
        return false;
    }
    const uint64_t offset = kernels_[kernel_index].ctaOffsets[cta_index];

    // Read the chunk under the stream lock, decode outside it. The
    // stream stays open across calls — replay issues one readCta per
    // CTA launch, and an open() per call was the dominant replay cost.
    std::vector<uint8_t> payload;
    uint32_t crc = 0;
    {
        std::lock_guard<std::mutex> lock(ctaMutex_);
        if (!ctaStream_.is_open()) {
            ctaStream_.open(path_, std::ios::binary);
            if (!ctaStream_) {
                ctaStream_.close();
                err = {TraceError::Kind::Io, "cannot reopen " + path_,
                       offset};
                return false;
            }
        }
        ctaStream_.clear();
        ctaStream_.seekg(static_cast<std::streamoff>(offset));
        uint8_t type = 0;
        uint32_t len = 0;
        bool clean_eof = false;
        if (!readPrelude(ctaStream_, type, len, crc, clean_eof) ||
            type != static_cast<uint8_t>(ChunkType::CtaData) ||
            len > kMaxChunkPayload) {
            err = {TraceError::Kind::Truncated,
                   "CTA chunk vanished (file changed since open?)", offset};
            return false;
        }
        payload.resize(len);
        ctaStream_.read(reinterpret_cast<char *>(payload.data()), len);
        if (static_cast<size_t>(ctaStream_.gcount()) != len) {
            err = {TraceError::Kind::Truncated, "CTA payload cut short",
                   offset};
            return false;
        }
    }
    if (crc32(payload.data(), payload.size()) != crc) {
        err = {TraceError::Kind::Corrupt, "CTA chunk CRC mismatch", offset};
        return false;
    }
    ByteCursor cur(payload.data(), payload.size());
    CtaTrace cta;
    uint64_t instrs = 0;
    std::string detail;
    if (!decodeCta(cur, cta, instrs, detail)) {
        err = {TraceError::Kind::Schema, detail, offset};
        return false;
    }
    out = std::move(cta);
    return true;
}

CtaTrace
FileCtaSource::generate(uint32_t cta_index) const
{
    CtaTrace cta;
    TraceError err;
    if (!reader_->readCta(kernelIndex_, cta_index, cta, err)) {
        fatal("trace replay failed for %s kernel %zu CTA %u: %s",
              reader_->path().c_str(), kernelIndex_, cta_index,
              err.render().c_str());
    }
    return cta;
}

bool
loadTrace(const std::string &path, LoadedTrace &out, TraceError &err)
{
    auto reader = std::make_shared<TraceReader>(path);
    if (!reader->valid()) {
        err = reader->error();
        return false;
    }
    LoadedTrace loaded;
    loaded.fingerprint = reader->fingerprint();
    loaded.heapBytesUsed = reader->totals().heapBytesUsed;
    loaded.kernels.reserve(reader->kernelCount());
    loaded.dependsOn.reserve(reader->kernelCount());
    for (size_t i = 0; i < reader->kernelCount(); ++i) {
        const KernelHeaderRecord &h = reader->kernel(i).header;
        KernelInfo info;
        info.name = h.name;
        info.stream = h.stream;
        info.grid = h.grid;
        info.cta = h.cta;
        info.regsPerThread = h.regsPerThread;
        info.smemPerCta = h.smemPerCta;
        info.drawcall = h.drawcall;
        info.source = std::make_shared<FileCtaSource>(reader, i);
        loaded.kernels.push_back(std::move(info));
        loaded.dependsOn.push_back(h.dependsOn);
    }
    out = std::move(loaded);
    return true;
}

} // namespace crisp::traceio
