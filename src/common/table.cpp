#include "common/table.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"

namespace crisp
{

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panic_if(cells.size() != headers_.size(),
             "row width %zu does not match header width %zu", cells.size(),
             headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::toText() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size()) {
                out << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        out << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return out.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            // Quote cells containing separators.
            const bool quote =
                row[c].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                out << '"';
                for (char ch : row[c]) {
                    if (ch == '"') {
                        out << '"';
                    }
                    out << ch;
                }
                out << '"';
            } else {
                out << row[c];
            }
            if (c + 1 < row.size()) {
                out << ',';
            }
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_) {
        emit(row);
    }
    return out.str();
}

bool
Table::writeCsv(const std::string &path) const
{
    std::ofstream f(path);
    if (!f) {
        warn("could not write CSV to %s", path.c_str());
        return false;
    }
    f << toCsv();
    return true;
}

void
Table::emit(const std::string &csv_path) const
{
    std::printf("%s\n", toText().c_str());
    writeCsv(csv_path);
}

} // namespace crisp
