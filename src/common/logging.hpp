#ifndef CRISP_COMMON_LOGGING_HPP
#define CRISP_COMMON_LOGGING_HPP

#include <cstdio>
#include <cstdlib>
#include <string>

/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic() is for simulator bugs (conditions that can never legally occur);
 * fatal() is for user errors (bad configuration, invalid arguments).
 * inform()/warn() report status without stopping the simulation.
 */

namespace crisp
{

namespace logging_detail
{
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Global verbosity switch; tests silence inform() output. */
extern bool verbose;
} // namespace logging_detail

/** Enable or disable inform() output (warnings always print). */
void setVerbose(bool on);
bool isVerbose();

} // namespace crisp

/** Abort: an internal simulator invariant was violated (a CRISP bug). */
#define panic(...)                                                            \
    ::crisp::logging_detail::panicImpl(                                       \
        __FILE__, __LINE__, ::crisp::logging_detail::formatMessage(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user/config error. */
#define fatal(...)                                                            \
    ::crisp::logging_detail::fatalImpl(                                       \
        __FILE__, __LINE__, ::crisp::logging_detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning about approximated or suspicious behaviour. */
#define warn(...)                                                             \
    ::crisp::logging_detail::warnImpl(                                        \
        ::crisp::logging_detail::formatMessage(__VA_ARGS__))

/** Informational status message (suppressed unless verbose). */
#define inform(...)                                                           \
    ::crisp::logging_detail::informImpl(                                      \
        ::crisp::logging_detail::formatMessage(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define panic_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond) {                                                           \
            panic(__VA_ARGS__);                                               \
        }                                                                     \
    } while (0)

/** fatal() unless the user-facing condition holds. */
#define fatal_if(cond, ...)                                                   \
    do {                                                                      \
        if (cond) {                                                           \
            fatal(__VA_ARGS__);                                               \
        }                                                                     \
    } while (0)

#endif // CRISP_COMMON_LOGGING_HPP
