#ifndef CRISP_COMMON_TABLE_HPP
#define CRISP_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace crisp
{

/**
 * Small column-aligned table printer used by the benchmark harnesses to
 * reproduce the paper's tables/figure series as text, with optional CSV
 * output for plotting.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render with aligned columns, suitable for terminals. */
    std::string toText() const;

    /** Render as CSV. */
    std::string toCsv() const;

    /** Write CSV to a file; returns false (with a warning) on failure. */
    bool writeCsv(const std::string &path) const;

    /**
     * Standard bench emission path: print the aligned text to stdout
     * (followed by a blank separator line) and write the CSV that the
     * golden suite checks. Keeping both in one call stops the text
     * report and the golden CSV from drifting apart.
     */
    void emit(const std::string &csv_path) const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace crisp

#endif // CRISP_COMMON_TABLE_HPP
