#ifndef CRISP_COMMON_FLAT_MAP_HPP
#define CRISP_COMMON_FLAT_MAP_HPP

#include <algorithm>
#include <utility>
#include <vector>

namespace crisp
{

/**
 * A sorted-vector map for the small per-stream tables on simulation hot
 * paths (an SM sees a handful of streams, never thousands).
 *
 * Replaces `std::map` where profiling showed the per-access node walk and
 * the per-insert node allocation dominating: lookups are a short linear
 * scan over one contiguous cache line, inserts memmove a few pairs.
 * Iteration order is ascending by key, exactly like `std::map`, so
 * switching a consumer between the two cannot reorder any output.
 */
template <typename Key, typename Value>
class SmallFlatMap
{
  public:
    using value_type = std::pair<Key, Value>;
    using iterator = typename std::vector<value_type>::iterator;
    using const_iterator = typename std::vector<value_type>::const_iterator;

    iterator begin() { return data_.begin(); }
    iterator end() { return data_.end(); }
    const_iterator begin() const { return data_.begin(); }
    const_iterator end() const { return data_.end(); }

    bool empty() const { return data_.empty(); }
    size_t size() const { return data_.size(); }
    void clear() { data_.clear(); }

    iterator
    find(const Key &key)
    {
        for (auto it = data_.begin(); it != data_.end(); ++it) {
            if (it->first == key) {
                return it;
            }
        }
        return data_.end();
    }

    const_iterator
    find(const Key &key) const
    {
        for (auto it = data_.begin(); it != data_.end(); ++it) {
            if (it->first == key) {
                return it;
            }
        }
        return data_.end();
    }

    size_t count(const Key &key) const { return find(key) != end() ? 1 : 0; }

    Value &
    operator[](const Key &key)
    {
        auto it = std::lower_bound(
            data_.begin(), data_.end(), key,
            [](const value_type &v, const Key &k) { return v.first < k; });
        if (it != data_.end() && it->first == key) {
            return it->second;
        }
        return data_.insert(it, value_type{key, Value{}})->second;
    }

    size_t
    erase(const Key &key)
    {
        auto it = find(key);
        if (it == data_.end()) {
            return 0;
        }
        data_.erase(it);
        return 1;
    }

  private:
    std::vector<value_type> data_;
};

} // namespace crisp

#endif // CRISP_COMMON_FLAT_MAP_HPP
