#ifndef CRISP_COMMON_JSON_HPP
#define CRISP_COMMON_JSON_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace crisp
{

/**
 * Minimal JSON document: the value model behind crispd's line-delimited
 * protocol, the spooled job reports, and the scenario description files.
 *
 * The simulator's output side already writes JSON by hand (Chrome
 * traces, bench result files); the job server and the scenario loader
 * must also *read* JSON — from untrusted clients and hand-edited files —
 * so parsing is strict and total: parse() either produces a
 * fully-validated document or a position-carrying error string, never a
 * partial value. Numbers are kept as doubles (every field the protocol
 * carries fits a double exactly; 64-bit cycle counts are capped far
 * below 2^53 by admission quotas).
 *
 * Input may span multiple lines (pretty-printed scenario files); the
 * compact dump() side still never emits raw newlines, so protocol lines
 * stay single-line.
 */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** srcOffset() value for constructed (non-parsed) values. */
    static constexpr size_t kNoOffset = static_cast<size_t>(-1);

    Json() = default;
    static Json null() { return Json(); }
    static Json boolean(bool b);
    static Json number(double v);
    static Json number(uint64_t v);
    static Json str(std::string s);
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0.0) const;
    /** Number as a non-negative integer; fallback on non-numbers,
     *  negatives and non-integral values. */
    uint64_t asU64(uint64_t fallback = 0) const;
    const std::string &asString() const { return str_; }

    /** Object field by key, or nullptr (also nullptr on non-objects). */
    const Json *find(const std::string &key) const;
    /** Object field by key, defaulting: missing keys act as Null. */
    const Json &at(const std::string &key) const;

    const std::vector<Json> &items() const { return arr_; }
    const std::vector<std::pair<std::string, Json>> &fields() const
    {
        return obj_;
    }

    /** Set (or replace) an object field; fatal on non-objects. */
    Json &set(const std::string &key, Json value);
    /** Append an array element; fatal on non-arrays. */
    Json &push(Json value);

    /** Compact single-line rendering (protocol lines must not contain
     *  raw newlines; dump() escapes any that appear in strings). */
    std::string dump() const;

    /**
     * Parse one complete JSON document. Trailing non-whitespace, bad
     * escapes, unterminated containers and non-UTF8-safe control bytes
     * are all errors; @p err gets "offset N: what" on failure and @p out
     * is untouched.
     */
    static bool parse(const std::string &text, Json &out, std::string &err);

    /**
     * Byte offset of this value's first character in the text parse()
     * consumed, kNoOffset for values built with the factories. Consumers
     * holding the source text (the scenario loader) turn this into a
     * line:column coordinate for semantic errors — "unknown key" or
     * "wrong type" diagnostics that fire long after the parse itself
     * succeeded.
     */
    size_t srcOffset() const { return srcOffset_; }
    void setSrcOffset(size_t offset) { srcOffset_ = offset; }

    /** Convert a byte offset into 1-based line/column against @p text. */
    static void offsetToLineCol(const std::string &text, size_t offset,
                                uint32_t &line, uint32_t &col);

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
    size_t srcOffset_ = kNoOffset;
};

} // namespace crisp

#endif // CRISP_COMMON_JSON_HPP
