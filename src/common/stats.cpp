#include "common/stats.hpp"

#include "common/logging.hpp"

namespace crisp
{

const char *
dataClassName(DataClass c)
{
    switch (c) {
      case DataClass::Unknown: return "unknown";
      case DataClass::Texture: return "texture";
      case DataClass::Pipeline: return "pipeline";
      case DataClass::Compute: return "compute";
      default: return "invalid";
    }
}

Histogram::Histogram(uint64_t max_value)
    : maxValue_(max_value), buckets_(max_value + 1, 0)
{
}

void
Histogram::add(uint64_t value, uint64_t weight)
{
    const uint64_t b = value > maxValue_ ? maxValue_ : value;
    buckets_[b] += weight;
    samples_ += weight;
    weightedSum_ += value * weight;
}

uint64_t
Histogram::count(uint64_t bucket) const
{
    panic_if(bucket > maxValue_, "histogram bucket %llu out of range",
             static_cast<unsigned long long>(bucket));
    return buckets_[bucket];
}

double
Histogram::mean() const
{
    return samples_ == 0
        ? 0.0
        : static_cast<double>(weightedSum_) / static_cast<double>(samples_);
}

uint64_t
Histogram::minValue() const
{
    for (uint64_t b = 0; b <= maxValue_; ++b) {
        if (buckets_[b] > 0) {
            return b;
        }
    }
    return 0;
}

uint64_t
Histogram::maxValue() const
{
    for (uint64_t b = maxValue_ + 1; b-- > 0;) {
        if (buckets_[b] > 0) {
            return b;
        }
    }
    return 0;
}

uint64_t
Histogram::modeBucket() const
{
    uint64_t best = 0;
    uint64_t best_count = 0;
    for (uint64_t b = 0; b <= maxValue_; ++b) {
        if (buckets_[b] > best_count) {
            best_count = buckets_[b];
            best = b;
        }
    }
    return best;
}

void
Histogram::merge(const Histogram &other)
{
    panic_if(other.maxValue_ != maxValue_,
             "merging histograms with different ranges");
    for (uint64_t b = 0; b <= maxValue_; ++b) {
        buckets_[b] += other.buckets_[b];
    }
    samples_ += other.samples_;
    weightedSum_ += other.weightedSum_;
}

bool
Histogram::selfConsistent() const
{
    uint64_t total = 0;
    for (uint64_t b = 0; b <= maxValue_; ++b) {
        total += buckets_[b];
    }
    return total == samples_;
}

void
StreamStats::absorb(const StreamStats &delta)
{
    cycles += delta.cycles;
    instructions += delta.instructions;
    warpsLaunched += delta.warpsLaunched;
    ctasLaunched += delta.ctasLaunched;
    kernelsCompleted += delta.kernelsCompleted;
    l1Accesses += delta.l1Accesses;
    l1Hits += delta.l1Hits;
    l1MshrMerges += delta.l1MshrMerges;
    l1TexAccesses += delta.l1TexAccesses;
    l2Accesses += delta.l2Accesses;
    l2Hits += delta.l2Hits;
    l2MshrMerges += delta.l2MshrMerges;
    dramReads += delta.dramReads;
    dramWrites += delta.dramWrites;
    smemAccesses += delta.smemAccesses;
    smemBankConflicts += delta.smemBankConflicts;
    remoteAccesses += delta.remoteAccesses;
    remoteResponses += delta.remoteResponses;
    pageMigrations += delta.pageMigrations;
    // 0 means "unset" on both sides, so the merged mark is the minimum
    // over *set* values: shadows merge in SM order, not time order, and a
    // later shadow can carry the earlier first cycle. (Taking the first
    // non-zero delta here used to truncate the ipc() window.)
    if (delta.firstCycle != 0 &&
        (firstCycle == 0 || delta.firstCycle < firstCycle)) {
        firstCycle = delta.firstCycle;
    }
    if (delta.lastCycle > lastCycle) {
        lastCycle = delta.lastCycle;
    }
}

double
StreamStats::l1HitRate() const
{
    return l1Accesses == 0
        ? 0.0
        : static_cast<double>(l1Hits) / static_cast<double>(l1Accesses);
}

double
StreamStats::l2HitRate() const
{
    return l2Accesses == 0
        ? 0.0
        : static_cast<double>(l2Hits) / static_cast<double>(l2Accesses);
}

double
StreamStats::ipc() const
{
    const uint64_t active = lastCycle > firstCycle ? lastCycle - firstCycle : 0;
    return active == 0
        ? 0.0
        : static_cast<double>(instructions) / static_cast<double>(active);
}

void
StatsRegistry::add(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

uint64_t
StatsRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

StreamStats &
StatsRegistry::streamSlow(StreamId id)
{
    StreamStats &st = streams_[id];
    // Cap the dense index so a hostile id cannot balloon it; ids past the
    // cap still work, just through the map.
    constexpr StreamId kMaxIndexed = 4096;
    if (id < kMaxIndexed) {
        if (streamIndex_.size() <= id) {
            streamIndex_.resize(id + 1, nullptr);
        }
        streamIndex_[id] = &st;
    }
    return st;
}

const StreamStats *
StatsRegistry::findStream(StreamId id) const
{
    auto it = streams_.find(id);
    return it == streams_.end() ? nullptr : &it->second;
}

const std::map<StreamId, StreamStats> &
StatsRegistry::allStreams() const
{
    return streams_;
}

void
StatsRegistry::clear()
{
    counters_.clear();
    streams_.clear();
    streamIndex_.clear();
}

void
StatsRegistry::absorbShadow(StatsRegistry &shadow)
{
    for (auto &[id, st] : shadow.streams_) {
        streams_[id].absorb(st);
        st = StreamStats{};
    }
    for (auto &[name, value] : shadow.counters_) {
        if (value != 0) {
            counters_[name] += value;
            value = 0;
        }
    }
}

} // namespace crisp
