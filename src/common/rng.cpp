#include "common/rng.hpp"

#include <cmath>

namespace crisp
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_) {
        w = splitmix64(s);
    }
    haveSpare_ = false;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    if (bound == 0) {
        return 0;
    }
    // 128-bit multiply-shift keeps the distribution close enough to uniform
    // for workload synthesis while staying branch-free and deterministic.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBelow(span));
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = nextDouble();
    double u2 = nextDouble();
    while (u1 <= 1e-12) {
        u1 = nextDouble();
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

} // namespace crisp
