#include "common/metrics.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace crisp
{

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    panic_if(xs.size() != ys.size(), "pearson: length mismatch %zu vs %zu",
             xs.size(), ys.size());
    const size_t n = xs.size();
    if (n < 2) {
        return 0.0;
    }
    double mx = 0.0;
    double my = 0.0;
    for (size_t i = 0; i < n; ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0) {
        return 0.0;
    }
    return sxy / std::sqrt(sxx * syy);
}

double
mape(const std::vector<double> &reference, const std::vector<double> &predicted,
     size_t *skipped)
{
    panic_if(reference.size() != predicted.size(),
             "mape: length mismatch %zu vs %zu", reference.size(),
             predicted.size());
    double total = 0.0;
    size_t used = 0;
    size_t zeros = 0;
    for (size_t i = 0; i < reference.size(); ++i) {
        if (reference[i] == 0.0) {
            ++zeros;
            continue;
        }
        total += std::fabs((predicted[i] - reference[i]) / reference[i]);
        ++used;
    }
    if (skipped != nullptr) {
        *skipped = zeros;
    } else if (zeros != 0) {
        warn("mape: skipped %zu of %zu points with zero reference", zeros,
             reference.size());
    }
    return used == 0 ? 0.0 : 100.0 * total / static_cast<double>(used);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    double total = 0.0;
    for (double x : xs) {
        total += x;
    }
    return total / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0) {
            return 0.0;
        }
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace crisp
