#ifndef CRISP_COMMON_RNG_HPP
#define CRISP_COMMON_RNG_HPP

#include <cstdint>

namespace crisp
{

/**
 * Deterministic pseudo-random generator (xoshiro256**).
 *
 * Every stochastic element of the simulator (scene generation, oracle noise)
 * draws from an explicitly seeded Rng so runs are reproducible bit-for-bit
 * across platforms; std::mt19937 distributions are implementation-defined,
 * so we implement the distributions ourselves.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed (splitmix64 expansion). */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free Lemire reduction. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (deterministic). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

  private:
    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace crisp

#endif // CRISP_COMMON_RNG_HPP
