#ifndef CRISP_COMMON_METRICS_HPP
#define CRISP_COMMON_METRICS_HPP

#include <cstddef>
#include <vector>

namespace crisp
{

/**
 * @file
 * Correlation metrics used by the validation studies (Figs 3, 6 and 9):
 * Pearson correlation between simulator and hardware-oracle counters, and
 * Mean Absolute Percentage Error for per-drawcall traffic counts.
 */

/**
 * Pearson correlation coefficient of two equal-length series.
 * Returns 0 for degenerate inputs (fewer than two points or zero variance).
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/**
 * Mean Absolute Percentage Error of @p predicted against @p reference,
 * in percent. Reference points equal to zero are skipped (the percentage
 * error is undefined there); the number of skipped points is written to
 * @p skipped when non-null, and logged as a warning otherwise so a
 * correlation study cannot quietly drop data.
 */
double mape(const std::vector<double> &reference,
            const std::vector<double> &predicted,
            size_t *skipped = nullptr);

/** Arithmetic mean (0 for an empty series). */
double mean(const std::vector<double> &xs);

/** Geometric mean (0 if any element is <= 0 or the series is empty). */
double geomean(const std::vector<double> &xs);

} // namespace crisp

#endif // CRISP_COMMON_METRICS_HPP
