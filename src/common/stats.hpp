#ifndef CRISP_COMMON_STATS_HPP
#define CRISP_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace crisp
{

/**
 * A fixed-bucket histogram over non-negative integer samples.
 *
 * Used for the paper's static trace analyses such as Fig 10 (texture cache
 * lines referenced per CTA).
 */
class Histogram
{
  public:
    /** @param max_value samples above this are clamped into the last bucket */
    explicit Histogram(uint64_t max_value = 64);

    void add(uint64_t value, uint64_t weight = 1);

    uint64_t count(uint64_t bucket) const;
    uint64_t totalSamples() const { return samples_; }
    double mean() const;
    /** Smallest value with a non-zero count, or 0 when empty. */
    uint64_t minValue() const;
    uint64_t maxValue() const;
    /** Bucket with the highest count (the mode); ties pick the smaller. */
    uint64_t modeBucket() const;
    uint64_t maxTracked() const { return maxValue_; }

    /** Merge another histogram into this one (same max_value required). */
    void merge(const Histogram &other);

    /**
     * Conservation check: the sample count must equal the sum over
     * buckets (every add/merge lands each sample in exactly one bucket).
     */
    bool selfConsistent() const;

  private:
    uint64_t maxValue_;
    uint64_t samples_ = 0;
    uint64_t weightedSum_ = 0;
    std::vector<uint64_t> buckets_;
};

/**
 * Per-stream statistics block.
 *
 * The paper (§III-A) notes that Accel-Sim aggregates statistics across
 * streams, which is misleading under concurrent execution, and extends the
 * model to per-stream stat tracking. StreamStats is the per-stream record;
 * StatsRegistry owns one per stream plus the machine-wide aggregates.
 */
struct StreamStats
{
    uint64_t cycles = 0;            ///< Cycles in which the stream had work.
    uint64_t instructions = 0;      ///< Warp-instructions issued.
    uint64_t warpsLaunched = 0;
    uint64_t ctasLaunched = 0;
    uint64_t kernelsCompleted = 0;

    uint64_t l1Accesses = 0;
    uint64_t l1Hits = 0;
    /** L1 accesses merged into an in-flight L1 MSHR fill (neither hit nor
     *  new miss; audit: l1Accesses − l1Hits − l1MshrMerges = L1 misses
     *  sent toward the L2). */
    uint64_t l1MshrMerges = 0;
    uint64_t l1TexAccesses = 0;     ///< Texture loads through the unified L1.
    uint64_t l2Accesses = 0;
    uint64_t l2Hits = 0;
    /** L2 accesses merged into an in-flight L2 MSHR fill (audit:
     *  l2Accesses = l2Hits + l2MshrMerges + dramReads). */
    uint64_t l2MshrMerges = 0;
    uint64_t dramReads = 0;
    uint64_t dramWrites = 0;
    uint64_t smemAccesses = 0;
    uint64_t smemBankConflicts = 0;

    /** L1 misses routed over the inter-GPU fabric to a peer device's L2
     *  (counted on the issuing device; the peer counts the l2Accesses). */
    uint64_t remoteAccesses = 0;
    /** Remote fills returned over the fabric to this device's SMs. */
    uint64_t remoteResponses = 0;
    /** Pages this stream's remote touches migrated to the touching device. */
    uint64_t pageMigrations = 0;

    Cycle firstCycle = 0;           ///< Cycle the first CTA issued (0 = unset).
    Cycle lastCycle = 0;            ///< Cycle the last CTA committed.

    /**
     * Fold a delta block into this one: counters add, firstCycle keeps
     * the earliest non-zero mark (min over set values — shadows can
     * arrive out of order), lastCycle keeps the latest. Used by the
     * parallel cycle engine to merge per-SM shadow stats at the barrier.
     */
    void absorb(const StreamStats &delta);

    double l1HitRate() const;
    double l2HitRate() const;
    double ipc() const;
};

/**
 * Registry of named scalar counters plus per-stream stat blocks.
 *
 * Scalar counters support ad-hoc instrumentation from any module; the
 * structured per-stream blocks back the paper's concurrency case studies.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    // The dense stream index caches pointers into this registry's own map
    // nodes, so copies must drop it (it is rebuilt on first access).
    StatsRegistry(const StatsRegistry &other)
        : counters_(other.counters_), streams_(other.streams_)
    {
    }
    StatsRegistry &
    operator=(const StatsRegistry &other)
    {
        counters_ = other.counters_;
        streams_ = other.streams_;
        streamIndex_.clear();
        return *this;
    }
    // Moves transfer the map nodes, so the cached pointers stay valid.
    StatsRegistry(StatsRegistry &&) = default;
    StatsRegistry &operator=(StatsRegistry &&) = default;

    /** Add to a named machine-wide counter, creating it on first use. */
    void add(const std::string &name, uint64_t delta = 1);
    uint64_t get(const std::string &name) const;

    /**
     * Per-stream structured stats (created on first access). O(1) for the
     * small stream ids the GPU allocates: a dense pointer index fronts
     * the ordered map, which profiling showed on the per-issue path.
     */
    StreamStats &
    stream(StreamId id)
    {
        if (id < streamIndex_.size() && streamIndex_[id] != nullptr) {
            return *streamIndex_[id];
        }
        return streamSlow(id);
    }
    const StreamStats *findStream(StreamId id) const;
    const std::map<StreamId, StreamStats> &allStreams() const;

    /** Sum of a member over all streams, e.g. total instructions. */
    template <typename T>
    uint64_t
    sumOver(T StreamStats::*member) const
    {
        uint64_t total = 0;
        for (const auto &[id, st] : streams_) {
            total += static_cast<uint64_t>(st.*member);
        }
        return total;
    }

    void clear();

    /**
     * Fold every per-stream block of @p shadow into this registry and
     * zero the source blocks in place (map nodes are kept, so a registry
     * absorbed every cycle does not reallocate). Scalar counters are
     * folded the same way.
     */
    void absorbShadow(StatsRegistry &shadow);

  private:
    StreamStats &streamSlow(StreamId id);

    std::map<std::string, uint64_t> counters_;
    std::map<StreamId, StreamStats> streams_;
    /** Dense id → map-node pointer cache (map nodes never move). */
    std::vector<StreamStats *> streamIndex_;
};

} // namespace crisp

#endif // CRISP_COMMON_STATS_HPP
