#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"

namespace crisp
{

Json
Json::boolean(bool b)
{
    Json j;
    j.type_ = Type::Bool;
    j.bool_ = b;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.type_ = Type::Number;
    j.num_ = v;
    return j;
}

Json
Json::number(uint64_t v)
{
    return number(static_cast<double>(v));
}

Json
Json::str(std::string s)
{
    Json j;
    j.type_ = Type::String;
    j.str_ = std::move(s);
    return j;
}

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool(bool fallback) const
{
    return type_ == Type::Bool ? bool_ : fallback;
}

double
Json::asDouble(double fallback) const
{
    return type_ == Type::Number ? num_ : fallback;
}

uint64_t
Json::asU64(uint64_t fallback) const
{
    if (type_ != Type::Number || num_ < 0.0 ||
        num_ != std::floor(num_) || num_ > 9.007199254740992e15) {
        return fallback;
    }
    return static_cast<uint64_t>(num_);
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object) {
        return nullptr;
    }
    for (const auto &[k, v] : obj_) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    static const Json null_value;
    const Json *v = find(key);
    return v ? *v : null_value;
}

Json &
Json::set(const std::string &key, Json value)
{
    panic_if(type_ != Type::Object, "Json::set on a non-object");
    for (auto &[k, v] : obj_) {
        if (k == key) {
            v = std::move(value);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(value));
    return *this;
}

Json &
Json::push(Json value)
{
    panic_if(type_ != Type::Array, "Json::push on a non-array");
    arr_.push_back(std::move(value));
    return *this;
}

void
Json::offsetToLineCol(const std::string &text, size_t offset,
                      uint32_t &line, uint32_t &col)
{
    line = 1;
    col = 1;
    const size_t end = offset < text.size() ? offset : text.size();
    for (size_t i = 0; i < end; ++i) {
        if (text[i] == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
    }
}

namespace
{

void
dumpString(const std::string &s, std::string &out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

void
dumpValue(const Json &j, std::string &out)
{
    switch (j.type()) {
      case Json::Type::Null:
        out += "null";
        break;
      case Json::Type::Bool:
        out += j.asBool() ? "true" : "false";
        break;
      case Json::Type::Number: {
        const double v = j.asDouble();
        char buf[40];
        // Integers (the common case: ids, counters, cycles) print
        // without an exponent or trailing zeros.
        if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
            std::snprintf(buf, sizeof(buf), "%.0f", v);
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
        }
        out += buf;
        break;
      }
      case Json::Type::String:
        dumpString(j.asString(), out);
        break;
      case Json::Type::Array: {
        out += '[';
        bool first = true;
        for (const Json &item : j.items()) {
            if (!first) {
                out += ',';
            }
            first = false;
            dumpValue(item, out);
        }
        out += ']';
        break;
      }
      case Json::Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : j.fields()) {
            if (!first) {
                out += ',';
            }
            first = false;
            dumpString(k, out);
            out += ':';
            dumpValue(v, out);
        }
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser over a byte range; positions for errors. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    parseDocument(Json &out)
    {
        skipWs();
        if (!parseValue(out, 0)) {
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            return fail("trailing characters after document");
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char *what)
    {
        err_ = "offset " + std::to_string(pos_) + ": " + what;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
                break;
            }
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0) {
            return fail("invalid literal");
        }
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (pos_ >= text_.size()) {
                return fail("unterminated string");
            }
            const unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20) {
                return fail("raw control character in string");
            }
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) {
                return fail("unterminated escape");
            }
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    return fail("truncated \\u escape");
                }
                unsigned value = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    value <<= 4;
                    if (h >= '0' && h <= '9') {
                        value |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        value |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        value |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        return fail("bad hex digit in \\u escape");
                    }
                }
                // Encode as UTF-8 (surrogate pairs unsupported: the
                // protocol carries names and paths, not astral text).
                if (value < 0x80) {
                    out += static_cast<char>(value);
                } else if (value < 0x800) {
                    out += static_cast<char>(0xc0 | (value >> 6));
                    out += static_cast<char>(0x80 | (value & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (value >> 12));
                    out += static_cast<char>(0x80 | ((value >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (value & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
    }

    bool
    parseNumber(Json &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        // JSON forbids leading zeros ("01") and a bare leading dot;
        // strtod accepts both, so check the grammar first.
        const size_t digits = tok[0] == '-' ? 1 : 0;
        if (tok.size() <= digits ||
            !std::isdigit(static_cast<unsigned char>(tok[digits])) ||
            (tok[digits] == '0' && digits + 1 < tok.size() &&
             std::isdigit(static_cast<unsigned char>(tok[digits + 1])))) {
            pos_ = start;
            return fail("malformed number");
        }
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0' || !std::isfinite(v)) {
            pos_ = start;
            return fail("malformed number");
        }
        out = Json::number(v);
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        const size_t value_start = pos_;
        if (!parseValueInner(out, depth)) {
            return false;
        }
        out.setSrcOffset(value_start);
        return true;
    }

    bool
    parseValueInner(Json &out, int depth)
    {
        if (depth > kMaxDepth) {
            return fail("nesting too deep");
        }
        if (pos_ >= text_.size()) {
            return fail("unexpected end of input");
        }
        const char c = text_[pos_];
        if (c == 'n') {
            if (!literal("null")) {
                return false;
            }
            out = Json::null();
            return true;
        }
        if (c == 't') {
            if (!literal("true")) {
                return false;
            }
            out = Json::boolean(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false")) {
                return false;
            }
            out = Json::boolean(false);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s)) {
                return false;
            }
            out = Json::str(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                out = std::move(arr);
                return true;
            }
            while (true) {
                Json item;
                skipWs();
                if (!parseValue(item, depth + 1)) {
                    return false;
                }
                arr.push(std::move(item));
                skipWs();
                if (pos_ >= text_.size()) {
                    return fail("unterminated array");
                }
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    out = std::move(arr);
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                out = std::move(obj);
                return true;
            }
            while (true) {
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != '"') {
                    return fail("expected object key string");
                }
                std::string key;
                if (!parseString(key)) {
                    return false;
                }
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':') {
                    return fail("expected ':' after object key");
                }
                ++pos_;
                skipWs();
                Json value;
                if (!parseValue(value, depth + 1)) {
                    return false;
                }
                obj.set(key, std::move(value));
                skipWs();
                if (pos_ >= text_.size()) {
                    return fail("unterminated object");
                }
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    out = std::move(obj);
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            return parseNumber(out);
        }
        return fail("unexpected character");
    }

    const std::string &text_;
    std::string &err_;
    size_t pos_ = 0;
};

} // namespace

std::string
Json::dump() const
{
    std::string out;
    dumpValue(*this, out);
    return out;
}

bool
Json::parse(const std::string &text, Json &out, std::string &err)
{
    Json parsed;
    Parser p(text, err);
    if (!p.parseDocument(parsed)) {
        return false;
    }
    out = std::move(parsed);
    return true;
}

} // namespace crisp
