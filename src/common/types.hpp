#ifndef CRISP_COMMON_TYPES_HPP
#define CRISP_COMMON_TYPES_HPP

#include <cstdint>

namespace crisp
{

/** Simulation time in core clock cycles. */
using Cycle = uint64_t;

/** A byte address in the simulated GPU's global address space. */
using Addr = uint64_t;

/** Identifier of a hardware stream (graphics batch or compute stream). */
using StreamId = uint32_t;

/** Identifier of a kernel within the simulation. */
using KernelId = uint32_t;

/** Number of threads per warp, fixed across all modeled GPUs. */
inline constexpr uint32_t kWarpSize = 32;

/** Cache line size in bytes (Table II GPUs use 128 B lines). */
inline constexpr uint32_t kLineBytes = 128;

/** Memory access sector size in bytes (coalescing granularity). */
inline constexpr uint32_t kSectorBytes = 32;

/** Invalid/unassigned stream sentinel. */
inline constexpr StreamId kInvalidStream = 0xffffffffu;

/**
 * "No event scheduled" sentinel for next-wake computations: components
 * report the earliest future cycle at which they can make progress, or
 * kNeverCycle when nothing is pending (the fast-forward logic then
 * ignores them).
 */
inline constexpr Cycle kNeverCycle = ~0ull;

/**
 * Classification of the data held by a cache line, used for the paper's
 * L2-composition case studies (Figs 11 and 15).
 */
enum class DataClass : uint8_t
{
    Unknown = 0,  ///< Not attributed (e.g. never filled).
    Texture,      ///< Texel data sampled by fragment shaders.
    Pipeline,     ///< Inter-stage rendering data (vertex attrs, framebuffer).
    Compute,      ///< Data touched by general compute kernels.
    NumClasses
};

/** Human-readable name for a DataClass value. */
const char *dataClassName(DataClass c);

} // namespace crisp

#endif // CRISP_COMMON_TYPES_HPP
