#ifndef CRISP_PARTITION_WARPED_SLICER_HPP
#define CRISP_PARTITION_WARPED_SLICER_HPP

#include <map>
#include <vector>

#include "gpu/gpu.hpp"

namespace crisp
{

/** Warped-Slicer tuning knobs. */
struct WarpedSlicerConfig
{
    StreamId streamA = 0;       ///< Rendering stream.
    StreamId streamB = 1;       ///< Compute stream.
    Cycle sampleCycles = 4000;  ///< Length of the sampling window.
    uint32_t numConfigs = 4;    ///< Distinct quota splits sampled at once.
};

/**
 * Warped-Slicer (Xu et al., ISCA'16) on top of fine-grained intra-SM
 * partitioning, as evaluated in the paper's Fig 12/13 case study.
 *
 * At each kernel launch (a new drawcall on the rendering stream or a new
 * kernel on the compute stream) the mechanism enters a sampling phase:
 * different SMs run different static quota splits in parallel, and the
 * per-SM instruction progress of each stream is recorded. At the end of the
 * window a water-filling pass picks the split that maximizes the combined
 * normalized throughput, which is then applied to every SM until the next
 * launch resets the process.
 */
class WarpedSlicer : public GpuController
{
  public:
    explicit WarpedSlicer(const WarpedSlicerConfig &cfg);

    void onKernelLaunch(Gpu &gpu, const KernelInfo &info,
                        KernelId id) override;
    void onCycle(Gpu &gpu, Cycle now) override;

    /** Share of SM resources currently granted to stream A. */
    double currentShareA() const { return shareA_; }

    /** (cycle, shareA) decisions, for the Fig 13 style timeline. */
    const std::vector<std::pair<Cycle, double>> &decisions() const
    {
        return decisions_;
    }

    uint64_t samplingPhases() const { return samplingPhases_; }

    /** Times the starvation rescue re-entered sampling (see onCycle). */
    uint64_t starvationRescues() const { return starvationRescues_; }

  private:
    double shareForConfig(uint32_t config) const;
    void beginSampling(Gpu &gpu, Cycle now);
    void finishSampling(Gpu &gpu, Cycle now);
    bool streamStarved(Gpu &gpu, StreamId stream) const;

    WarpedSlicerConfig cfg_;
    bool sampling_ = false;
    Cycle sampleEnd_ = 0;
    double shareA_ = 0.5;
    uint64_t samplingPhases_ = 0;
    uint64_t starvationRescues_ = 0;
    /** First cycle a monitored stream was seen starved (0 = not). */
    Cycle starvedSince_ = 0;
    /** Issued-instruction counters per SM per stream at window start. */
    std::vector<uint64_t> baselineA_;
    std::vector<uint64_t> baselineB_;
    std::vector<std::pair<Cycle, double>> decisions_;
};

} // namespace crisp

#endif // CRISP_PARTITION_WARPED_SLICER_HPP
