#include "partition/warped_slicer.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "telemetry/sink.hpp"

namespace crisp
{

WarpedSlicer::WarpedSlicer(const WarpedSlicerConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg_.numConfigs < 2, "need at least two sampled configs");
}

double
WarpedSlicer::shareForConfig(uint32_t config) const
{
    // Config c grants stream A (c+1)/(numConfigs+1) of the SM.
    return static_cast<double>(config + 1) /
           static_cast<double>(cfg_.numConfigs + 1);
}

void
WarpedSlicer::beginSampling(Gpu &gpu, Cycle now)
{
    sampling_ = true;
    samplingPhases_++;
    sampleEnd_ = now + cfg_.sampleCycles;
    baselineA_.resize(gpu.numSms());
    baselineB_.resize(gpu.numSms());
    for (uint32_t s = 0; s < gpu.numSms(); ++s) {
        baselineA_[s] = gpu.sm(s).issuedInstrsOf(cfg_.streamA);
        baselineB_[s] = gpu.sm(s).issuedInstrsOf(cfg_.streamB);
        const uint32_t config = s % cfg_.numConfigs;
        const double share = shareForConfig(config);
        gpu.setSmQuota(s, cfg_.streamA, gpu.quotaFromShare(share));
        gpu.setSmQuota(s, cfg_.streamB, gpu.quotaFromShare(1.0 - share));
    }
}

void
WarpedSlicer::finishSampling(Gpu &gpu, Cycle now)
{
    sampling_ = false;

    // Aggregate per-config progress of both streams.
    std::vector<double> progA(cfg_.numConfigs, 0.0);
    std::vector<double> progB(cfg_.numConfigs, 0.0);
    for (uint32_t s = 0; s < gpu.numSms(); ++s) {
        const uint32_t config = s % cfg_.numConfigs;
        progA[config] += static_cast<double>(
            gpu.sm(s).issuedInstrsOf(cfg_.streamA) - baselineA_[s]);
        progB[config] += static_cast<double>(
            gpu.sm(s).issuedInstrsOf(cfg_.streamB) - baselineB_[s]);
    }
    const double max_a = *std::max_element(progA.begin(), progA.end());
    const double max_b = *std::max_element(progB.begin(), progB.end());

    // Water-filling over the sampled performance curves: maximize the sum
    // of normalized throughputs.
    uint32_t best = cfg_.numConfigs / 2;
    double best_score = -1.0;
    for (uint32_t c = 0; c < cfg_.numConfigs; ++c) {
        const double na = max_a > 0.0 ? progA[c] / max_a : 0.0;
        const double nb = max_b > 0.0 ? progB[c] / max_b : 0.0;
        const double score = na + nb;
        if (score > best_score) {
            best_score = score;
            best = c;
        }
    }

    shareA_ = shareForConfig(best);
    decisions_.emplace_back(now, shareA_);
    if (auto *sink = gpu.telemetry()) {
        sink->emit({now, telemetry::EventKind::Repartition, 0,
                    cfg_.streamA,
                    static_cast<uint64_t>(shareA_ * 1000.0 + 0.5), 0});
    }
    for (uint32_t s = 0; s < gpu.numSms(); ++s) {
        gpu.setSmQuota(s, cfg_.streamA, gpu.quotaFromShare(shareA_));
        gpu.setSmQuota(s, cfg_.streamB, gpu.quotaFromShare(1.0 - shareA_));
    }
}

void
WarpedSlicer::onKernelLaunch(Gpu &gpu, const KernelInfo &info, KernelId id)
{
    (void)info;
    (void)id;
    // The dynamic partition is reset at each new kernel launch (compute)
    // and each new drawcall (rendering), per §VI-C.
    beginSampling(gpu, gpu.now());
}

bool
WarpedSlicer::streamStarved(Gpu &gpu, StreamId stream) const
{
    if (gpu.pendingKernels(stream) == 0) {
        return false;
    }
    for (uint32_t s = 0; s < gpu.numSms(); ++s) {
        if (gpu.sm(s).activeCtasOf(stream) > 0) {
            return false;
        }
    }
    return true;
}

void
WarpedSlicer::onCycle(Gpu &gpu, Cycle now)
{
    if (sampling_) {
        if (now >= sampleEnd_) {
            finishSampling(gpu, now);
        }
        return;
    }

    // Starvation rescue: the applied split is only re-evaluated at the
    // next kernel launch, so a stream whose pending CTAs no longer fit
    // under its quota (the sampling window can be uninformative — e.g.
    // it measured only carryover execution of CTAs resident from before
    // the split) would otherwise wedge forever once the other stream
    // stops launching. A monitored stream with kernels in flight but no
    // resident CTAs for a full sample window cannot place work: re-enter
    // sampling, whose per-SM config spread guarantees the stream SMs
    // with a large enough share to make progress again — the same
    // minimum-allocation guarantee TAP gives at set granularity.
    if (streamStarved(gpu, cfg_.streamA) ||
        streamStarved(gpu, cfg_.streamB)) {
        if (starvedSince_ == 0) {
            starvedSince_ = now;
        } else if (now - starvedSince_ >= cfg_.sampleCycles) {
            starvedSince_ = 0;
            starvationRescues_++;
            beginSampling(gpu, now);
        }
    } else {
        starvedSince_ = 0;
    }
}

} // namespace crisp
