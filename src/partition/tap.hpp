#ifndef CRISP_PARTITION_TAP_HPP
#define CRISP_PARTITION_TAP_HPP

#include <array>
#include <vector>

#include "gpu/gpu.hpp"

namespace crisp
{

/** TAP tuning knobs. */
struct TapConfig
{
    StreamId gfxStream = 0;
    StreamId computeStream = 1;
    Cycle epoch = 50000;      ///< Repartitioning period in cycles.
    uint32_t maxLruPos = 16;  ///< LRU stack depth tracked by the monitors.
    /**
     * TLP-awareness threshold: when one stream's L2 access rate is below
     * this fraction of the other's, it is treated as cache-insensitive and
     * receives the minimum allocation (the paper observes exactly this for
     * the compute-bound HOLO workload, which ends up with a single set).
     */
    double accessRatioFloor = 0.02;
    /**
     * When a repartition shrinks a stream's set window, lines the stream
     * owns in sets outside the new window are *stranded*: mapSet only
     * returns in-window sets, so the stream can never hit them again,
     * yet they hold capacity and count toward its composition shares.
     * With this flag the controller evicts them at the epoch boundary
     * (dirty victims are written back and charged to the stream); off by
     * default, stranded lines age out via LRU and are reported in
     * CacheComposition::strandedLines.
     */
    bool evictOnShrink = false;
};

/**
 * TAP (Lee & Kim, HPCA'12) applied to the GPU's shared L2, as evaluated in
 * Fig 14/15: utility-based cache partitioning corrected for the large
 * access-rate mismatch between rendering and compute streams.
 *
 * Utility monitors record, per stream, the LRU stack position of every L2
 * hit. At each epoch boundary the marginal-utility curves decide a set
 * split: each bank's sets are divided between the two streams
 * proportionally to their measured utility, with a minimum of one set each
 * (CRISP models TAP at set granularity, §VI-C). The TLP-aware correction
 * prevents the high-access-rate graphics stream from being starved *or*
 * from ceding capacity to a compute stream that cannot use it.
 */
class TapController : public GpuController
{
  public:
    TapController(const TapConfig &cfg, Gpu &gpu);

    void onCycle(Gpu &gpu, Cycle now) override;

    /** Sets per bank currently assigned to the graphics stream. */
    uint32_t gfxSets() const { return gfxSets_; }
    uint32_t computeSets() const { return computeSets_; }

    /** (cycle, gfxSets) repartitioning decisions. */
    const std::vector<std::pair<Cycle, uint32_t>> &decisions() const
    {
        return decisions_;
    }

  private:
    struct Umon
    {
        uint64_t accesses = 0;
        uint64_t hits = 0;
        std::vector<uint64_t> hitsAtPos;

        double
        utility() const
        {
            // Marginal utility: realized hits plus a small access-rate
            // term, so a high-traffic stream that currently misses (e.g.
            // streaming under a too-small window) still registers demand —
            // this is the TLP-aware correction over plain UCP.
            double u = 0.02 * static_cast<double>(accesses);
            for (size_t p = 0; p < hitsAtPos.size(); ++p) {
                u += static_cast<double>(hitsAtPos[p]);
            }
            return u;
        }
    };

    void repartition(Gpu &gpu, Cycle now);

    TapConfig cfg_;
    Cycle nextEpoch_;
    Umon gfx_;
    Umon compute_;
    uint32_t gfxSets_ = 0;
    uint32_t computeSets_ = 0;
    std::vector<std::pair<Cycle, uint32_t>> decisions_;
};

} // namespace crisp

#endif // CRISP_PARTITION_TAP_HPP
