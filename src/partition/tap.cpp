#include "partition/tap.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "telemetry/sink.hpp"

namespace crisp
{

TapController::TapController(const TapConfig &cfg, Gpu &gpu)
    : cfg_(cfg), nextEpoch_(cfg.epoch)
{
    gfx_.hitsAtPos.assign(cfg_.maxLruPos, 0);
    compute_.hitsAtPos.assign(cfg_.maxLruPos, 0);

    // Subscribe the utility monitors to every L2 bank access.
    gpu.l2().setAccessListener([this](StreamId stream, Addr line, bool hit,
                                      uint32_t lru_pos) {
        (void)line;
        Umon *mon = nullptr;
        if (stream == cfg_.gfxStream) {
            mon = &gfx_;
        } else if (stream == cfg_.computeStream) {
            mon = &compute_;
        } else {
            return;
        }
        mon->accesses++;
        if (hit) {
            mon->hits++;
            const uint32_t pos = std::min(lru_pos, cfg_.maxLruPos - 1);
            mon->hitsAtPos[pos]++;
        }
    });

    // Start from an even split.
    const uint32_t sets = gpu.l2().config().bankGeometry.numSets();
    gfxSets_ = sets / 2;
    computeSets_ = sets - gfxSets_;
    gpu.l2().setStreamSetWindow(cfg_.gfxStream, 0, gfxSets_);
    gpu.l2().setStreamSetWindow(cfg_.computeStream, gfxSets_, computeSets_);
}

void
TapController::repartition(Gpu &gpu, Cycle now)
{
    const uint32_t sets = gpu.l2().config().bankGeometry.numSets();

    double u_gfx = gfx_.utility();
    double u_cmp = compute_.utility();

    // TLP-aware correction: a stream whose access rate is negligible next
    // to the other's cannot convert cache capacity into performance;
    // clamp it to the minimum allocation.
    const double acc_gfx = static_cast<double>(gfx_.accesses);
    const double acc_cmp = static_cast<double>(compute_.accesses);
    if (acc_cmp < cfg_.accessRatioFloor * acc_gfx) {
        u_cmp = 0.0;
    }
    if (acc_gfx < cfg_.accessRatioFloor * acc_cmp) {
        u_gfx = 0.0;
    }

    uint32_t gfx_sets;
    if (u_gfx + u_cmp <= 0.0) {
        gfx_sets = sets / 2;
    } else {
        gfx_sets = static_cast<uint32_t>(
            static_cast<double>(sets) * u_gfx / (u_gfx + u_cmp) + 0.5);
    }
    gfx_sets = std::clamp(gfx_sets, 1u, sets - 1);

    if (gfx_sets != gfxSets_) {
        const bool gfx_shrank = gfx_sets < gfxSets_;
        gfxSets_ = gfx_sets;
        computeSets_ = sets - gfx_sets;
        gpu.l2().setStreamSetWindow(cfg_.gfxStream, 0, gfxSets_);
        gpu.l2().setStreamSetWindow(cfg_.computeStream, gfxSets_,
                                    computeSets_);
        if (cfg_.evictOnShrink) {
            // Exactly one side shrank (the windows tile the bank): flush
            // its now-stranded lines so they stop occupying the other
            // side's sets. The grown side has no lines outside its new,
            // larger window.
            gpu.l2().evictStrandedLines(gfx_shrank ? cfg_.gfxStream
                                                   : cfg_.computeStream,
                                        now);
        }
    }
    decisions_.emplace_back(now, gfxSets_);
    if (auto *sink = gpu.telemetry()) {
        sink->emit({now, telemetry::EventKind::TapWindow, 0,
                    cfg_.gfxStream, gfxSets_, computeSets_});
    }

    // Exponential decay so the monitors adapt to phase changes.
    auto decay = [](Umon &m) {
        m.accesses /= 2;
        m.hits /= 2;
        for (auto &h : m.hitsAtPos) {
            h /= 2;
        }
    };
    decay(gfx_);
    decay(compute_);
}

void
TapController::onCycle(Gpu &gpu, Cycle now)
{
    if (now >= nextEpoch_) {
        repartition(gpu, now);
        nextEpoch_ = now + cfg_.epoch;
    }
}

} // namespace crisp
