#ifndef CRISP_WORKLOADS_SCENES_HPP
#define CRISP_WORKLOADS_SCENES_HPP

#include <string>
#include <vector>

#include "graphics/scene.hpp"

namespace crisp
{

/**
 * @file
 * Procedural stand-ins for the paper's rendering workloads (§V-A). The
 * original scenes are real Vulkan applications traced through Mesa; these
 * builders reproduce their *structural* properties — material/shader type,
 * texture counts and formats, geometric density, instancing — which are
 * what drive the memory-system behaviour the paper studies.
 *
 *  - SPL  Sponza (Khronos Vulkan-Samples): basic shading, 1 texture/draw.
 *  - SPH  Sponza PBR (Godot): same atrium with 8-map PBR materials.
 *  - PT   Pistol: one high-detail PBR object, 8 maps (pbrtexture sample).
 *  - IT   Planets: instanced drawing with a layered array texture.
 *  - PL   Platformer 3D (Godot demo): many small objects, mixed materials.
 *  - MT   Material Testers (Godot demo): sphere grid of varied materials.
 */

/** Sponza atrium; @p pbr selects the Godot PBR version (SPH) vs SPL. */
Scene buildSponza(AddressSpace &heap, bool pbr);

/** Antique metallic pistol rendered with PBR and eight maps (PT). */
Scene buildPistol(AddressSpace &heap);

/** Instanced asteroid field around a planet, layered texture (IT). */
Scene buildPlanets(AddressSpace &heap, uint32_t instances = 160);

/** Platformer level: ground, platforms, collectibles (PL). */
Scene buildPlatformer(AddressSpace &heap);

/** Material testers: a grid of spheres with varied materials (MT). */
Scene buildMaterialTesters(AddressSpace &heap);

/**
 * Create a basic (single diffuse map) material and register it with the
 * scene. Exported so data-driven scenario files build materials through
 * the exact same path (texture naming, formats, seeding) as the preset
 * scenes above.
 */
Material *addBasicMaterial(Scene &scene, AddressSpace &heap,
                           const std::string &name, uint32_t tex_dim,
                           uint64_t seed, uint32_t extra_alu = 0);

/**
 * Create a PBR material with the paper's eight maps: irradiance, BRDF LUT,
 * albedo, normal, prefilter, ambient occlusion, metallic, roughness — in
 * their typical formats.
 */
Material *addPbrMaterial(Scene &scene, AddressSpace &heap,
                         const std::string &name, uint32_t tex_dim,
                         uint64_t seed);

/** Short names of all evaluation scenes, in the paper's order. */
const std::vector<std::string> &allSceneNames();

/** Build a scene by its short name (SPL, SPH, PT, IT, PL, MT). */
Scene buildSceneByName(const std::string &name, AddressSpace &heap);

} // namespace crisp

#endif // CRISP_WORKLOADS_SCENES_HPP
