#include "workloads/compute.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "isa/trace_builder.hpp"

namespace crisp
{

namespace
{

uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Compute one lane's address for a pattern. */
Addr
patternAddr(const MemPattern &p, uint64_t global_thread, uint32_t access,
            uint32_t iteration)
{
    const uint64_t elems = std::max<uint64_t>(
        1, p.regionBytes / p.accessBytes);
    uint64_t index = 0;
    switch (p.kind) {
      case MemPatternKind::Streaming:
        index = global_thread * p.count + access +
                static_cast<uint64_t>(iteration) * elems / 7;
        break;
      case MemPatternKind::Stencil: {
        // Neighborhood taps around the thread's pixel: offsets alternate
        // horizontally and vertically.
        static const int64_t taps[] = {0, 1, -1, 0, 0, 2, -2, 0};
        const int64_t dx = taps[(access * 2) % 8];
        const int64_t dy = taps[(access * 2 + 1) % 8];
        const int64_t linear = static_cast<int64_t>(global_thread) + dx +
                               dy * static_cast<int64_t>(p.rowPitch);
        index = static_cast<uint64_t>(
            std::clamp<int64_t>(linear, 0,
                                static_cast<int64_t>(elems) - 1));
        break;
      }
      case MemPatternKind::Gather:
        index = mix64(global_thread * 131 + access * 17 + iteration) % elems;
        break;
      case MemPatternKind::Broadcast:
        index = (access + iteration * 13) % std::min<uint64_t>(elems, 1024);
        break;
    }
    return p.base + (index % elems) * p.accessBytes;
}

/** Trace generator for a declarative compute kernel. */
class ComputeCtaGenerator : public CtaGenerator
{
  public:
    explicit ComputeCtaGenerator(ComputeKernelDesc desc)
        : desc_(std::move(desc))
    {
    }

    CtaTrace
    generate(uint32_t cta_index) const override
    {
        const ComputeKernelDesc &d = desc_;
        CtaTrace cta;
        const uint32_t warps = (d.threadsPerCta + kWarpSize - 1) / kWarpSize;
        for (uint32_t w = 0; w < warps; ++w) {
            const uint32_t lanes =
                std::min(kWarpSize, d.threadsPerCta - w * kWarpSize);
            TraceBuilder tb(lanes);
            const uint64_t thread_base =
                static_cast<uint64_t>(cta_index) * d.threadsPerCta +
                w * kWarpSize;

            for (uint32_t it = 0; it < d.iterations; ++it) {
                uint8_t load_reg = 2;
                for (const MemPattern &p : d.loads) {
                    for (uint32_t a = 0; a < p.count; ++a) {
                        std::vector<Addr> addrs;
                        addrs.reserve(lanes);
                        for (uint32_t l = 0; l < lanes; ++l) {
                            addrs.push_back(
                                patternAddr(p, thread_base + l, a, it));
                        }
                        tb.mem(Opcode::LDG, load_reg, std::move(addrs),
                               p.accessBytes, DataClass::Compute);
                        load_reg = static_cast<uint8_t>(
                            2 + ((load_reg - 1) % 6));
                    }
                }
                if (d.smemStores > 0) {
                    for (uint32_t s = 0; s < d.smemStores; ++s) {
                        // Conflict-free layout: lane-linear word addresses.
                        tb.memStrided(Opcode::STS, 2,
                                      (w * kWarpSize) * 4 + s * 4096, 4, 4,
                                      DataClass::Compute);
                    }
                }
                if (d.barrierPerIteration) {
                    tb.bar();
                }
                for (uint32_t s = 0; s < d.smemLoads; ++s) {
                    tb.memStrided(Opcode::LDS, 3,
                                  (s % 4) * 1024 + (w % 4) * 128, 4, 4,
                                  DataClass::Compute);
                }
                for (uint32_t i = 0; i < d.intOps; ++i) {
                    tb.alu(Opcode::IMAD, 9, 2, 3);
                }
                for (uint32_t i = 0; i < d.fp32Ops; ++i) {
                    tb.alu(Opcode::FFMA,
                           static_cast<uint8_t>(10 + (i & 3)), 2,
                           static_cast<uint8_t>(10 + ((i + 1) & 3)));
                }
                for (uint32_t i = 0; i < d.sfuOps; ++i) {
                    tb.alu(Opcode::MUFU_SIN, 14, 10);
                }
                for (uint32_t i = 0; i < d.tensorOps; ++i) {
                    tb.alu(Opcode::HMMA, 15, 3, 10);
                }
                if (d.barrierPerIteration) {
                    tb.bar();
                }
            }

            if (d.divergenceMaxExtraIters > 0) {
                // Divergent traversal tail: per-lane extra-iteration
                // budgets from a hash, then keep iterating with only the
                // lanes whose budget remains — the warp's active mask
                // shrinks as "rays" terminate. No barriers or shared
                // memory here: diverged lanes cannot rendezvous.
                std::vector<uint32_t> budget(lanes);
                for (uint32_t l = 0; l < lanes; ++l) {
                    budget[l] = static_cast<uint32_t>(
                        mix64(d.divergenceSeed ^
                              ((thread_base + l) *
                               0x9e3779b97f4a7c15ull)) %
                        (d.divergenceMaxExtraIters + 1));
                }
                for (uint32_t e = 0; e < d.divergenceMaxExtraIters; ++e) {
                    uint32_t active_mask = 0;
                    for (uint32_t l = 0; l < lanes; ++l) {
                        if (budget[l] > e) {
                            active_mask |= 1u << l;
                        }
                    }
                    if (active_mask == 0) {
                        break;
                    }
                    tb.mask(active_mask);
                    for (const MemPattern &p : d.loads) {
                        for (uint32_t a = 0; a < p.count; ++a) {
                            std::vector<Addr> addrs;
                            for (uint32_t l = 0; l < lanes; ++l) {
                                if (active_mask & (1u << l)) {
                                    addrs.push_back(patternAddr(
                                        p, thread_base + l, a,
                                        d.iterations + e));
                                }
                            }
                            tb.mem(Opcode::LDG, 4, std::move(addrs),
                                   p.accessBytes, DataClass::Compute);
                        }
                    }
                    for (uint32_t i = 0; i < d.intOps; ++i) {
                        tb.alu(Opcode::IMAD, 9, 2, 3);
                    }
                    for (uint32_t i = 0; i < d.fp32Ops; ++i) {
                        tb.alu(Opcode::FFMA,
                               static_cast<uint8_t>(10 + (i & 3)), 2,
                               static_cast<uint8_t>(10 + ((i + 1) & 3)));
                    }
                    for (uint32_t i = 0; i < d.sfuOps; ++i) {
                        tb.alu(Opcode::MUFU_SIN, 14, 10);
                    }
                }
                tb.mask(0xffffffffu);
            }

            if (d.hasStore) {
                for (uint32_t a = 0; a < d.store.count; ++a) {
                    std::vector<Addr> addrs;
                    addrs.reserve(lanes);
                    for (uint32_t l = 0; l < lanes; ++l) {
                        addrs.push_back(
                            patternAddr(d.store, thread_base + l, a, 0));
                    }
                    tb.mem(Opcode::STG, 10, std::move(addrs),
                           d.store.accessBytes, DataClass::Compute);
                }
            }
            tb.exit();
            cta.warps.push_back(tb.take());
        }
        return cta;
    }

  private:
    ComputeKernelDesc desc_;
};

} // namespace

KernelInfo
buildComputeKernel(const ComputeKernelDesc &desc)
{
    fatal_if(desc.ctas == 0 || desc.threadsPerCta == 0,
             "kernel %s has an empty launch", desc.name.c_str());
    KernelInfo info;
    info.name = desc.name;
    info.grid = {desc.ctas, 1, 1};
    info.cta = {desc.threadsPerCta, 1, 1};
    info.regsPerThread = desc.regsPerThread;
    info.smemPerCta = desc.smemPerCta;
    info.source = std::make_shared<ComputeCtaGenerator>(desc);
    return info;
}

std::vector<KernelInfo>
buildVio(AddressSpace &heap, uint32_t frames, uint32_t width,
         uint32_t height)
{
    std::vector<KernelInfo> kernels;
    const uint64_t image_bytes = static_cast<uint64_t>(width) * height;
    const Addr img_a = heap.alloc(image_bytes);
    const Addr img_b = heap.alloc(image_bytes);
    const Addr remap_table = heap.alloc(image_bytes * 8);
    const Addr features = heap.alloc(1 << 16);

    for (uint32_t f = 0; f < frames; ++f) {
        for (uint32_t level = 0; level < 2; ++level) {
            const uint32_t w = width >> level;
            const uint32_t h = height >> level;
            const uint32_t pixels = w * h;
            const uint32_t ctas = std::max(1u, pixels / 256);

            ComputeKernelDesc gauss;
            gauss.name = "vio.gauss.l" + std::to_string(level);
            gauss.ctas = ctas;
            gauss.regsPerThread = 24;
            gauss.fp32Ops = 22;
            gauss.intOps = 10;
            gauss.loads = {{MemPatternKind::Stencil, img_a, pixels, 1, 5,
                            w}};
            gauss.store = {MemPatternKind::Streaming, img_b, pixels, 1, 1,
                           w};
            gauss.hasStore = true;
            kernels.push_back(buildComputeKernel(gauss));

            ComputeKernelDesc remap;
            remap.name = "vio.remap.l" + std::to_string(level);
            remap.ctas = ctas;
            remap.regsPerThread = 28;
            remap.fp32Ops = 12;
            remap.intOps = 14;
            remap.loads = {
                {MemPatternKind::Streaming, remap_table, pixels * 8ull, 8,
                 1, w},
                {MemPatternKind::Gather, img_b, pixels, 1, 4, w}};
            remap.store = {MemPatternKind::Streaming, img_a, pixels, 1, 1,
                           w};
            remap.hasStore = true;
            kernels.push_back(buildComputeKernel(remap));

            ComputeKernelDesc fast;
            fast.name = "vio.fast.l" + std::to_string(level);
            fast.ctas = ctas;
            fast.regsPerThread = 32;
            fast.intOps = 34;   // Bresenham-circle comparisons.
            fast.fp32Ops = 4;
            fast.loads = {{MemPatternKind::Stencil, img_a, pixels, 1, 8,
                           w}};
            fast.store = {MemPatternKind::Streaming, features, 1 << 16, 4,
                          1, w};
            fast.hasStore = true;
            kernels.push_back(buildComputeKernel(fast));

            ComputeKernelDesc flow;
            flow.name = "vio.flow.l" + std::to_string(level);
            flow.ctas = std::max(1u, ctas / 4);  // sparse feature windows
            flow.regsPerThread = 40;
            flow.fp32Ops = 56;
            flow.intOps = 12;
            flow.sfuOps = 2;
            flow.iterations = 2;
            flow.loads = {{MemPatternKind::Stencil, img_a, pixels, 1, 6, w},
                          {MemPatternKind::Stencil, img_b, pixels, 1, 6,
                           w}};
            flow.store = {MemPatternKind::Streaming, features, 1 << 16, 8,
                          1, w};
            flow.hasStore = true;
            kernels.push_back(buildComputeKernel(flow));
        }
    }
    return kernels;
}

std::vector<KernelInfo>
buildHolo(AddressSpace &heap, uint32_t points)
{
    std::vector<KernelInfo> kernels;
    const Addr point_buf = heap.alloc(1 << 16);
    const Addr phase_buf = heap.alloc(1 << 22);

    for (uint32_t p = 0; p < points; ++p) {
        ComputeKernelDesc holo;
        holo.name = "holo.phase." + std::to_string(p);
        holo.ctas = 224;
        holo.regsPerThread = 40;
        holo.iterations = 4;
        // Phase accumulation: long FMA chains plus sin/cos per point.
        holo.fp32Ops = 48;
        holo.sfuOps = 6;
        holo.intOps = 6;
        holo.loads = {{MemPatternKind::Broadcast, point_buf, 1 << 16, 16,
                       1, 1}};
        holo.store = {MemPatternKind::Streaming, phase_buf, 1 << 22, 4, 1,
                      1};
        holo.hasStore = true;
        kernels.push_back(buildComputeKernel(holo));
    }
    return kernels;
}

std::vector<KernelInfo>
buildNn(AddressSpace &heap, uint32_t layers)
{
    std::vector<KernelInfo> kernels;
    const Addr activations = heap.alloc(1 << 22);
    const Addr weights = heap.alloc(1 << 22);
    const Addr output = heap.alloc(1 << 22);

    for (uint32_t l = 0; l < layers; ++l) {
        ComputeKernelDesc conv;
        conv.name = "nn.conv." + std::to_string(l);
        // Batch fixed at two eye images: grids too small to fill the GPU.
        conv.ctas = 16 + 8 * (l % 2);
        conv.threadsPerCta = 256;
        conv.regsPerThread = 64;
        conv.smemPerCta = 32 * 1024;
        conv.iterations = 16;  // k-loop over input-channel tiles
        conv.barrierPerIteration = true;
        // Blocked GEMM: both the weight tile of the current k-step and
        // the (small, batch-2) activation tiles are shared across CTAs —
        // the network's layers fit on-chip, so its DRAM and L1 footprints
        // are tiny and it coexists gently with texture-heavy rendering.
        conv.loads = {
            {MemPatternKind::Broadcast, activations, 256 * 1024, 8, 1, 256},
            {MemPatternKind::Broadcast, weights, 128 * 1024, 8, 2, 256}};
        conv.smemStores = 2;
        conv.smemLoads = 8;
        conv.tensorOps = 8;
        conv.fp32Ops = 12;
        conv.intOps = 8;
        conv.store = {MemPatternKind::Streaming, output, 1 << 22, 8, 2,
                      256};
        conv.hasStore = true;
        kernels.push_back(buildComputeKernel(conv));
    }
    return kernels;
}

std::vector<KernelInfo>
buildTimewarp(AddressSpace &heap, Addr frame_color, uint32_t width,
              uint32_t height)
{
    std::vector<KernelInfo> kernels;
    const uint64_t frame_bytes = 4ull * width * height;
    const Addr warped = heap.alloc(frame_bytes);

    for (uint32_t eye = 0; eye < 2; ++eye) {
        ComputeKernelDesc warp;
        warp.name = "atw.eye" + std::to_string(eye);
        warp.ctas = std::max(1u, width * height / 512);
        warp.threadsPerCta = 256;
        warp.regsPerThread = 32;
        // Per pixel: pose re-projection math (two mat3 transforms plus a
        // perspective divide) and a distortion-corrected gather of the
        // rendered frame.
        warp.fp32Ops = 28;
        warp.intOps = 8;
        warp.sfuOps = 2;
        warp.loads = {{MemPatternKind::Gather, frame_color, frame_bytes, 4,
                       4, width}};
        warp.store = {MemPatternKind::Streaming, warped, frame_bytes, 4, 1,
                      width};
        warp.hasStore = true;
        kernels.push_back(buildComputeKernel(warp));
    }
    return kernels;
}

} // namespace crisp
