#include "workloads/cached.hpp"

#include <cstdio>

namespace crisp
{

std::string
computeCacheKey(const std::string &generator, const std::string &params,
                Addr heap_base)
{
    char suffix[128];
    std::snprintf(suffix, sizeof(suffix),
                  "/gen=%u/base=0x%llx/warp=%u/line=%u",
                  kComputeGenRevision,
                  static_cast<unsigned long long>(heap_base), kWarpSize,
                  kLineBytes);
    return generator + "/" + params + suffix;
}

std::vector<KernelInfo>
buildVioCached(traceio::TraceCache &cache, AddressSpace &heap,
               uint32_t frames, uint32_t width, uint32_t height)
{
    char params[96];
    std::snprintf(params, sizeof(params), "frames=%u/w=%u/h=%u", frames,
                  width, height);
    return cache.loadOrBuild(
        computeCacheKey("vio", params, heap.allocatedEnd()), heap,
        [&](AddressSpace &h) { return buildVio(h, frames, width, height); });
}

std::vector<KernelInfo>
buildHoloCached(traceio::TraceCache &cache, AddressSpace &heap,
                uint32_t points)
{
    char params[48];
    std::snprintf(params, sizeof(params), "points=%u", points);
    return cache.loadOrBuild(
        computeCacheKey("holo", params, heap.allocatedEnd()), heap,
        [&](AddressSpace &h) { return buildHolo(h, points); });
}

std::vector<KernelInfo>
buildNnCached(traceio::TraceCache &cache, AddressSpace &heap,
              uint32_t layers)
{
    char params[48];
    std::snprintf(params, sizeof(params), "layers=%u", layers);
    return cache.loadOrBuild(
        computeCacheKey("nn", params, heap.allocatedEnd()), heap,
        [&](AddressSpace &h) { return buildNn(h, layers); });
}

} // namespace crisp
