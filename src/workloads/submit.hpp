#ifndef CRISP_WORKLOADS_SUBMIT_HPP
#define CRISP_WORKLOADS_SUBMIT_HPP

#include <vector>

#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"

namespace crisp
{

/**
 * Enqueue a rendered frame on a GPU stream with its intra-frame
 * dependencies, so drawcalls overlap the way Immediate Tiled Rendering
 * pipelines them (a fragment kernel waits only on its own vertex kernel).
 *
 * @return the KernelId of each submitted kernel, parallel to
 *         submission.kernels.
 */
/**
 * @param fixed_function_delay cycles between a vertex kernel's completion
 *        and its fragment kernel's eligibility, modeling the primitive
 *        assembly/binning FIFO the paper suggests in SIV (0 = free).
 */
inline std::vector<KernelId>
submitFrame(Gpu &gpu, StreamId stream, const RenderSubmission &submission,
            Cycle fixed_function_delay = 0)
{
    std::vector<KernelId> ids;
    ids.reserve(submission.kernels.size());
    for (size_t i = 0; i < submission.kernels.size(); ++i) {
        const int dep = i < submission.dependsOn.size()
            ? submission.dependsOn[i]
            : -1;
        const KernelId dep_id =
            dep >= 0 ? ids[static_cast<size_t>(dep)] : Gpu::kNoDependency;
        ids.push_back(gpu.enqueueKernelAfter(stream, submission.kernels[i],
                                             dep_id,
                                             dep >= 0
                                                 ? fixed_function_delay
                                                 : 0));
    }
    return ids;
}

} // namespace crisp

#endif // CRISP_WORKLOADS_SUBMIT_HPP
