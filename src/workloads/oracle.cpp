#include "workloads/oracle.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"

namespace crisp
{

HardwareOracle::HardwareOracle(const OracleConfig &cfg) : cfg_(cfg) {}

double
HardwareOracle::noisy(double value, double rel_sigma, uint64_t salt) const
{
    Rng rng(cfg_.seed ^ (salt * 0x9e3779b97f4a7c15ull));
    return value * (1.0 + rel_sigma * rng.gaussian());
}

double
HardwareOracle::vsInvocations(const DrawcallReport &report) const
{
    // The profiler reports exact invoked threads; add tiny counter noise.
    return noisy(static_cast<double>(report.vsInvocations), cfg_.vsNoise,
                 report.drawIndex + 1);
}

double
HardwareOracle::l1TexAccesses(const KernelInfo &fs_kernel,
                              uint32_t draw_salt) const
{
    // Hardware texture units merge the accesses of a quad (2x2 fragment
    // group) before issuing to the L1: count distinct lines per quad per
    // TEX instruction. The simulator instead coalesces at warp
    // granularity, so the two counters agree only approximately — like
    // silicon vs simulator.
    uint64_t accesses = 0;
    for (uint32_t c = 0; c < fs_kernel.numCtas(); ++c) {
        const CtaTrace cta = fs_kernel.source->generate(c);
        for (const auto &warp : cta.warps) {
            for (const auto &in : warp.instrs) {
                if (in.opcode != Opcode::TEX) {
                    continue;
                }
                // Texture units merge across two quads (8 lanes) per
                // request group on the modeled hardware.
                for (size_t q = 0; q < in.addrs.size(); q += 8) {
                    std::set<Addr> lines;
                    const size_t end = std::min(in.addrs.size(), q + 8);
                    for (size_t l = q; l < end; ++l) {
                        lines.insert(in.addrs[l] / kLineBytes);
                    }
                    accesses += lines.size();
                }
            }
        }
    }
    return noisy(static_cast<double>(accesses), cfg_.texNoise,
                 0x7e0 + draw_salt);
}

double
HardwareOracle::frameTimeMs(const RenderSubmission &submission,
                            const GpuConfig &gpu) const
{
    // Roofline-style estimate: per drawcall the GPU is bounded by either
    // shader issue throughput or DRAM bandwidth, plus fixed submission
    // overhead per drawcall. Instruction estimates use the functional
    // reports, not the cycle model.
    double cycles = 0.0;
    uint64_t salt = 1;
    for (const auto &r : submission.reports) {
        const double vs_instr =
            static_cast<double>(r.vsThreadsLaunched) * 45.0 / kWarpSize;
        const double fs_per_thread =
            r.texturesPerFragment > 4 ? 140.0 : 30.0;
        const double fs_instr = static_cast<double>(r.fragments) *
                                fs_per_thread / kWarpSize;
        // Issue-side: the machine sustains roughly 3.2 warp-instructions
        // per SM per cycle when fully occupied.
        const double issue_cycles =
            (vs_instr + fs_instr) / (3.2 * gpu.numSms);

        // Memory side: texture misses plus attribute traffic. The miss
        // factors are calibrated against profiler counters on real frames
        // (silicon caches absorb most texture reuse).
        const double tex_bytes = static_cast<double>(r.fragments) *
                                 r.texturesPerFragment * 0.07 * kLineBytes;
        const double attr_bytes =
            static_cast<double>(r.vsInvocations) * 64.0 +
            static_cast<double>(r.fragments) * 8.0;
        const double mem_cycles =
            (tex_bytes + attr_bytes) / gpu.dramBytesPerCycle();

        cycles += std::max(issue_cycles, mem_cycles) + 800.0;
        ++salt;
    }
    const double hw_cycles = cycles * cfg_.hwSpeedFactor;
    return noisy(gpu.cyclesToMs(static_cast<Cycle>(hw_cycles)),
                 cfg_.frameNoise, 0xF00D + salt);
}

} // namespace crisp
