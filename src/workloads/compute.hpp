#ifndef CRISP_WORKLOADS_COMPUTE_HPP
#define CRISP_WORKLOADS_COMPUTE_HPP

#include <string>
#include <vector>

#include "graphics/address_space.hpp"
#include "isa/trace.hpp"

namespace crisp
{

/**
 * @file
 * Synthetic CUDA-kernel trace generators for the paper's XR system tasks
 * (§V-B). The paper collects SASS traces from silicon with NVBit; we build
 * generators that emit the same trace schema with the documented
 * instruction mixes and memory-access patterns:
 *
 *  - **VIO** (visual-inertial odometry): a pipeline of many small
 *    image-processing kernels (Gaussian blur, undistort/remap, FAST corner
 *    detection, Lucas-Kanade optical flow) over camera frames.
 *  - **HOLO** (hologram generation): extremely compute-bound phase
 *    accumulation, heavy on FMA chains and transcendentals, few memory
 *    accesses.
 *  - **NN** (RITnet eye segmentation): principal GEMM/conv kernels with
 *    shared-memory tiling and tensor ops, small-batch and low-occupancy.
 */

/** Per-thread global-memory access pattern of a synthetic kernel. */
enum class MemPatternKind : uint8_t
{
    Streaming,  ///< Unit-stride, each thread its own element.
    Stencil,    ///< Neighborhood loads around the thread's pixel.
    Gather,     ///< Hashed/irregular indices (remap tables).
    Broadcast,  ///< All threads read the same small table (high reuse).
};

/** One global-memory access group in a kernel body. */
struct MemPattern
{
    MemPatternKind kind = MemPatternKind::Streaming;
    Addr base = 0;
    uint64_t regionBytes = 1 << 20;
    uint8_t accessBytes = 4;
    uint32_t count = 1;          ///< Loads (or stores) per thread.
    uint32_t rowPitch = 640;     ///< Element pitch for stencil patterns.
};

/** Declarative description of a synthetic compute kernel. */
struct ComputeKernelDesc
{
    std::string name;
    uint32_t ctas = 64;
    uint32_t threadsPerCta = 256;
    uint32_t regsPerThread = 32;
    uint32_t smemPerCta = 0;

    uint32_t iterations = 1;     ///< Body repetitions (k-loop).
    // Per-thread per-iteration operation counts.
    uint32_t fp32Ops = 0;
    uint32_t intOps = 0;
    uint32_t sfuOps = 0;
    uint32_t tensorOps = 0;
    uint32_t smemLoads = 0;
    uint32_t smemStores = 0;
    bool barrierPerIteration = false;

    std::vector<MemPattern> loads;   ///< Per iteration.
    MemPattern store;                ///< Applied once at kernel end.
    bool hasStore = false;

    /**
     * Branch divergence (ray-traversal style): after the uniform
     * iterations, each lane draws a private extra-iteration budget in
     * [0, divergenceMaxExtraIters] from a per-lane hash, and the warp
     * keeps iterating with a shrinking active mask until every lane's
     * budget is spent — the classic while-loop divergence of BVH
     * traversal, where rays exit at different depths. Each extra
     * iteration re-emits the load patterns and ALU mix under the
     * partial mask, so both the execution units and the coalescer see
     * progressively sparser warps. 0 keeps the kernel uniform (and the
     * emitted trace bit-identical to descriptions predating the field).
     */
    uint32_t divergenceMaxExtraIters = 0;
    uint64_t divergenceSeed = 0;
};

/** Materialize a synthetic kernel as a launchable trace kernel. */
KernelInfo buildComputeKernel(const ComputeKernelDesc &desc);

/**
 * The VIO pipeline: @p frames camera frames, each running blur, remap,
 * corner detection and optical flow at two pyramid levels — many small
 * kernels, matching the paper's observation that sampling-based dynamic
 * partitioning cannot amortize its overhead on VIO.
 */
std::vector<KernelInfo> buildVio(AddressSpace &heap, uint32_t frames = 1,
                                 uint32_t width = 320, uint32_t height = 240);

/** Hologram generation: a few large, heavily compute-bound kernels. */
std::vector<KernelInfo> buildHolo(AddressSpace &heap, uint32_t points = 3);

/**
 * RITnet principal kernels (Principal Kernel Selection, §V-B): GEMM-style
 * conv kernels with shared-memory tiling, tensor ops and small grids that
 * cannot fill the machine (batch is fixed at two eye images).
 */
std::vector<KernelInfo> buildNn(AddressSpace &heap, uint32_t layers = 3);

/**
 * Asynchronous timewarp (§II): the MR post-processing pass that re-projects
 * the rendered frame to the user's latest head pose right before scanout.
 * One wide kernel per eye: gather-reads the rendered color buffer with a
 * pose-dependent distortion and writes the warped output — the classic
 * async-compute companion of the rendering pipeline.
 *
 * @param frame_color base address of the rendered color buffer (pass the
 *        framebuffer's colorAddr(0,0) to warp an actual rendered frame)
 */
std::vector<KernelInfo> buildTimewarp(AddressSpace &heap, Addr frame_color,
                                      uint32_t width = 640,
                                      uint32_t height = 360);

} // namespace crisp

#endif // CRISP_WORKLOADS_COMPUTE_HPP
