#include "workloads/scenes.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace crisp
{

Material *
addBasicMaterial(Scene &scene, AddressSpace &heap, const std::string &name,
                 uint32_t tex_dim, uint64_t seed,
                 uint32_t extra_alu)
{
    Material mat;
    mat.name = name;
    mat.kind = ShaderKind::Basic;
    mat.extraFragmentAlu = extra_alu;
    mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
        name + ".albedo", tex_dim, tex_dim, TexFormat::RGBA8, heap, 1, true,
        seed)));
    return scene.addMaterial(std::move(mat));
}

Material *
addPbrMaterial(Scene &scene, AddressSpace &heap, const std::string &name,
               uint32_t tex_dim, uint64_t seed)
{
    struct MapDesc
    {
        const char *suffix;
        TexFormat fmt;
        uint32_t dim;
    };
    const MapDesc maps[8] = {
        {"irradiance", TexFormat::RGBA16F, 128},
        {"brdf", TexFormat::RG8, 256},
        {"albedo", TexFormat::RGBA8, tex_dim},
        {"normal", TexFormat::RGBA8, tex_dim},
        {"prefilter", TexFormat::RGBA16F, 128},
        {"ao", TexFormat::R8, tex_dim},
        {"metallic", TexFormat::R8, tex_dim},
        {"roughness", TexFormat::R8, tex_dim},
    };
    Material mat;
    mat.name = name;
    mat.kind = ShaderKind::Pbr;
    for (uint32_t i = 0; i < 8; ++i) {
        mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
            name + "." + maps[i].suffix, maps[i].dim, maps[i].dim,
            maps[i].fmt, heap, 1, true, seed * 8 + i)));
    }
    return scene.addMaterial(std::move(mat));
}

namespace
{

void
addDraw(Scene &scene, const std::string &name, Mesh *mesh, Material *mat,
        const Mat4 &model)
{
    DrawCall d;
    d.name = name;
    d.mesh = mesh;
    d.material = mat;
    d.model = model;
    scene.draws.push_back(std::move(d));
}

Camera
makeCamera(const Vec3 &eye, const Vec3 &center, float aspect,
           float fovy_deg = 60.0f)
{
    Camera cam;
    cam.eye = eye;
    cam.view = Mat4::lookAt(eye, center, {0.0f, 1.0f, 0.0f});
    cam.proj = Mat4::perspective(fovy_deg * static_cast<float>(M_PI) /
                                     180.0f,
                                 aspect, 0.1f, 200.0f);
    return cam;
}

} // namespace

Scene
buildSponza(AddressSpace &heap, bool pbr)
{
    Scene scene;
    scene.name = pbr ? "SPH" : "SPL";
    scene.camera = makeCamera({11.0f, 3.2f, 0.5f}, {0.0f, 2.4f, 0.0f},
                              16.0f / 9.0f, 65.0f);

    // Shared geometry of the atrium.
    Mesh *floor = scene.addMesh(Mesh::makePlane("floor", 24, 28.0f, 10.0f,
                                                heap));
    Mesh *ceiling = scene.addMesh(Mesh::makePlane("ceiling", 12, 28.0f,
                                                  8.0f, heap));
    // Large surfaces tile their textures heavily, like real game content:
    // the repeated texels are what give Sponza its high L2 hit rate.
    Mesh *column = scene.addMesh(Mesh::makeCylinder("column", 20, 0.45f,
                                                    5.0f, heap, 6.0f));
    Mesh *wall = scene.addMesh(Mesh::makeBox("wall", {26.0f, 6.0f, 0.8f},
                                             heap, 12.0f));
    Mesh *arch = scene.addMesh(Mesh::makeBox("arch", {2.2f, 1.2f, 1.0f},
                                             heap, 3.0f));
    Mesh *curtain = scene.addMesh(Mesh::makePlane("curtain", 16, 4.0f, 2.0f,
                                                  heap));
    Mesh *pot = scene.addMesh(Mesh::makeSphere("pot", 14, 18, 0.6f, heap));

    // Material groups: the Khronos version uses one basic texture per
    // drawcall; the Godot version replaces them with PBR material sets.
    auto make_mat = [&](const std::string &name, uint32_t dim,
                        uint64_t seed) {
        return pbr ? addPbrMaterial(scene, heap, name, dim, seed)
                   : addBasicMaterial(scene, heap, name, dim, seed);
    };
    Material *m_floor = make_mat("sponza.floor", 512, 101);
    Material *m_stone = make_mat("sponza.stone", 512, 102);
    Material *m_wall = make_mat("sponza.wall", 512, 103);
    Material *m_fabric = make_mat("sponza.fabric", 256, 104);
    Material *m_bronze = make_mat("sponza.bronze", 256, 105);

    addDraw(scene, "floor", floor, m_floor, Mat4::identity());
    // The ceiling faces downward into the atrium.
    addDraw(scene, "ceiling", ceiling, m_wall,
            Mat4::translation({0.0f, 7.5f, 0.0f}) *
                Mat4::rotationX(static_cast<float>(M_PI)));
    addDraw(scene, "wall.n", wall, m_wall,
            Mat4::translation({0.0f, 3.0f, -6.5f}));
    addDraw(scene, "wall.s", wall, m_wall,
            Mat4::translation({0.0f, 3.0f, 6.5f}));

    // Two colonnades of columns with arches between them.
    for (int i = 0; i < 6; ++i) {
        const float x = -10.0f + 4.0f * static_cast<float>(i);
        addDraw(scene, "col.n" + std::to_string(i), column, m_stone,
                Mat4::translation({x, 0.0f, -4.0f}));
        addDraw(scene, "col.s" + std::to_string(i), column, m_stone,
                Mat4::translation({x, 0.0f, 4.0f}));
        if (i < 5) {
            addDraw(scene, "arch" + std::to_string(i), arch, m_stone,
                    Mat4::translation({x + 2.0f, 5.4f, -4.0f}));
        }
    }
    // Hanging curtains along the upper gallery.
    for (int i = 0; i < 4; ++i) {
        const float x = -8.0f + 5.0f * static_cast<float>(i);
        Mat4 m = Mat4::translation({x, 4.5f, 0.0f}) *
                 Mat4::rotationX(static_cast<float>(M_PI) / 2.0f);
        addDraw(scene, "curtain" + std::to_string(i), curtain, m_fabric, m);
    }
    // Decorative pots on the floor.
    for (int i = 0; i < 3; ++i) {
        addDraw(scene, "pot" + std::to_string(i), pot, m_bronze,
                Mat4::translation({-6.0f + 6.0f * static_cast<float>(i),
                                   0.6f, 0.0f}));
    }
    return scene;
}

Scene
buildPistol(AddressSpace &heap)
{
    Scene scene;
    scene.name = "PT";
    scene.camera = makeCamera({0.9f, 0.45f, 1.3f}, {0.0f, 0.1f, 0.0f},
                              16.0f / 9.0f, 45.0f);

    Mesh *body = scene.addMesh(Mesh::makeBox("body", {0.9f, 0.28f, 0.12f},
                                             heap));
    Mesh *barrel = scene.addMesh(Mesh::makeCylinder("barrel", 28, 0.05f,
                                                    0.8f, heap));
    Mesh *grip = scene.addMesh(Mesh::makeBox("grip", {0.22f, 0.5f, 0.1f},
                                             heap));
    Mesh *sight = scene.addMesh(Mesh::makeSphere("sight", 16, 20, 0.035f,
                                                 heap));
    Mesh *trigger = scene.addMesh(Mesh::makeCylinder("trigger", 18, 0.08f,
                                                     0.04f, heap));

    // One high-resolution 8-map PBR material shared by the whole object,
    // matching the pbrtexture sample.
    Material *metal = addPbrMaterial(scene, heap, "pistol.metal", 1024,
                                     201);

    addDraw(scene, "body", body, metal,
            Mat4::translation({0.0f, 0.2f, 0.0f}));
    addDraw(scene, "barrel", barrel, metal,
            Mat4::translation({0.45f, 0.24f, 0.0f}) *
                Mat4::rotationY(static_cast<float>(M_PI) / 2.0f) *
                Mat4::rotationX(static_cast<float>(M_PI) / 2.0f));
    addDraw(scene, "grip", grip, metal,
            Mat4::translation({-0.32f, -0.12f, 0.0f}) *
                Mat4::rotationY(0.15f));
    addDraw(scene, "sight", sight, metal,
            Mat4::translation({0.1f, 0.38f, 0.0f}));
    addDraw(scene, "trigger", trigger, metal,
            Mat4::translation({-0.05f, 0.0f, 0.0f}) *
                Mat4::rotationX(static_cast<float>(M_PI) / 2.0f));
    return scene;
}

Scene
buildPlanets(AddressSpace &heap, uint32_t instances)
{
    Scene scene;
    scene.name = "IT";
    scene.camera = makeCamera({0.0f, 14.0f, 30.0f}, {0.0f, 0.0f, 0.0f},
                              16.0f / 9.0f, 55.0f);

    Mesh *planet = scene.addMesh(Mesh::makeSphere("planet", 28, 40, 6.0f,
                                                  heap));
    Mesh *rock = scene.addMesh(Mesh::makeRock("rock", 12, 16, 0.5f, 7,
                                              heap));

    Material *m_planet = addBasicMaterial(scene, heap, "planet.surface",
                                          512, 301);

    // The asteroid material is a layered array texture; the layer index is
    // a per-instance vertex attribute (§V-A).
    Material *m_rock = [&] {
        Material mat;
        mat.name = "rock.layers";
        mat.kind = ShaderKind::Basic;
        mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
            "rock.array", 256, 256, TexFormat::RGBA8, heap, 8, true, 302)));
        return scene.addMaterial(std::move(mat));
    }();

    addDraw(scene, "planet", planet, m_planet, Mat4::identity());

    DrawCall belt;
    belt.name = "asteroid.belt";
    belt.mesh = rock;
    belt.material = m_rock;
    belt.instanceCount = instances;
    belt.instanceBufAddr = heap.alloc(64ull * instances);
    Rng rng(303);
    for (uint32_t i = 0; i < instances; ++i) {
        const float angle = 2.0f * static_cast<float>(M_PI) *
                            static_cast<float>(i) / instances;
        const float radius =
            10.0f + 4.0f * static_cast<float>(rng.nextDouble());
        const float y =
            1.5f * static_cast<float>(rng.nextDouble() - 0.5);
        const float s =
            0.5f + 1.2f * static_cast<float>(rng.nextDouble());
        belt.instanceModels.push_back(
            Mat4::translation({radius * std::cos(angle), y,
                               radius * std::sin(angle)}) *
            Mat4::rotationY(angle * 3.0f) * Mat4::scaling({s, s, s}));
        belt.instanceLayers.push_back(i % 8);
    }
    scene.draws.push_back(std::move(belt));
    return scene;
}

Scene
buildPlatformer(AddressSpace &heap)
{
    Scene scene;
    scene.name = "PL";
    scene.camera = makeCamera({10.0f, 7.0f, 14.0f}, {0.0f, 1.5f, 0.0f},
                              16.0f / 9.0f, 60.0f);

    Mesh *ground = scene.addMesh(Mesh::makePlane("ground", 20, 40.0f, 12.0f,
                                                 heap));
    Mesh *platform = scene.addMesh(Mesh::makeBox("platform",
                                                 {2.4f, 0.5f, 2.4f}, heap));
    Mesh *crate = scene.addMesh(Mesh::makeBox("crate", {1.0f, 1.0f, 1.0f},
                                              heap));
    Mesh *coin = scene.addMesh(Mesh::makeSphere("coin", 10, 14, 0.3f,
                                                heap));
    Mesh *player = scene.addMesh(Mesh::makeSphere("player", 18, 24, 0.7f,
                                                  heap));

    Material *m_grass = addBasicMaterial(scene, heap, "pl.grass", 512, 401);
    Material *m_stone = addBasicMaterial(scene, heap, "pl.stone", 256, 402);
    Material *m_wood = addBasicMaterial(scene, heap, "pl.wood", 256, 403);
    Material *m_gold = addBasicMaterial(scene, heap, "pl.gold", 128, 404);
    Material *m_player = addPbrMaterial(scene, heap, "pl.player", 256, 405);

    addDraw(scene, "ground", ground, m_grass, Mat4::identity());

    Rng rng(406);
    for (int i = 0; i < 14; ++i) {
        const float x = static_cast<float>(rng.uniform(-12.0, 12.0));
        const float z = static_cast<float>(rng.uniform(-10.0, 10.0));
        const float y = 0.5f + 0.8f * static_cast<float>(i % 5);
        addDraw(scene, "platform" + std::to_string(i), platform, m_stone,
                Mat4::translation({x, y, z}));
        if (i % 2 == 0) {
            addDraw(scene, "crate" + std::to_string(i), crate, m_wood,
                    Mat4::translation({x, y + 0.8f, z}));
        }
        if (i % 3 == 0) {
            addDraw(scene, "coin" + std::to_string(i), coin, m_gold,
                    Mat4::translation({x, y + 1.8f, z}));
        }
    }
    addDraw(scene, "player", player, m_player,
            Mat4::translation({4.0f, 1.2f, 6.0f}));
    return scene;
}

Scene
buildMaterialTesters(AddressSpace &heap)
{
    Scene scene;
    scene.name = "MT";
    scene.camera = makeCamera({0.0f, 2.5f, 9.0f}, {0.0f, 0.0f, 0.0f},
                              16.0f / 9.0f, 50.0f);

    Mesh *ball = scene.addMesh(Mesh::makeSphere("tester", 26, 36, 1.0f,
                                                heap));
    Mesh *stand = scene.addMesh(Mesh::makePlane("stand", 8, 16.0f, 4.0f,
                                                heap));

    Material *m_floor = addBasicMaterial(scene, heap, "mt.floor", 256, 501);
    addDraw(scene, "stand", stand, m_floor,
            Mat4::translation({0.0f, -1.2f, 0.0f}));

    // A 3x3 grid of testers alternating material complexity, including
    // procedural materials with extra per-fragment ALU work.
    for (int row = 0; row < 3; ++row) {
        for (int col = 0; col < 3; ++col) {
            const int id = row * 3 + col;
            const std::string name = "mt.ball" + std::to_string(id);
            Material *mat = nullptr;
            switch (id % 3) {
              case 0:
                mat = addPbrMaterial(scene, heap, name, 256, 510 + id);
                break;
              case 1:
                mat = addBasicMaterial(scene, heap, name, 256, 510 + id);
                break;
              default:
                // Procedural: cheap texture but heavy generated shading.
                mat = addBasicMaterial(scene, heap, name, 64, 510 + id,
                                       /*extra_alu=*/48);
                break;
            }
            addDraw(scene, name, ball, mat,
                    Mat4::translation({-3.0f + 3.0f * col,
                                       2.4f - 2.4f * row, 0.0f}));
        }
    }
    return scene;
}

const std::vector<std::string> &
allSceneNames()
{
    static const std::vector<std::string> names = {"SPH", "PL", "MT",
                                                   "SPL", "PT", "IT"};
    return names;
}

Scene
buildSceneByName(const std::string &name, AddressSpace &heap)
{
    if (name == "SPL") {
        return buildSponza(heap, false);
    }
    if (name == "SPH") {
        return buildSponza(heap, true);
    }
    if (name == "PT") {
        return buildPistol(heap);
    }
    if (name == "IT") {
        return buildPlanets(heap);
    }
    if (name == "PL") {
        return buildPlatformer(heap);
    }
    if (name == "MT") {
        return buildMaterialTesters(heap);
    }
    fatal("unknown scene %s", name.c_str());
}

} // namespace crisp
