#ifndef CRISP_WORKLOADS_CACHED_HPP
#define CRISP_WORKLOADS_CACHED_HPP

#include <string>
#include <vector>

#include "traceio/cache.hpp"
#include "workloads/compute.hpp"

namespace crisp
{

/**
 * @file
 * Trace-cache-aware wrappers over the compute-workload generators.
 *
 * Each wrapper derives a content key from the full generator
 * configuration — generator name and schema revision, every parameter,
 * the heap base the addresses are laid out from, and the machine
 * constants baked into the traces — and routes through
 * traceio::TraceCache::loadOrBuild. With the cache disabled (the
 * default) they are exactly the live generators; with
 * CRISP_TRACE_CACHE set, repeated bench/sweep runs replay the packed
 * trace from disk instead of regenerating it, bit-for-bit.
 *
 * Bump kComputeGenRevision whenever any generator's emitted trace
 * changes for the same parameters, so stale cache entries miss on the
 * key instead of silently replaying old workloads.
 */

/** Schema revision of the compute generators' emitted traces. */
inline constexpr uint32_t kComputeGenRevision = 1;

/** Cache key for a generator invocation ("<params>" is generator-local). */
std::string computeCacheKey(const std::string &generator,
                            const std::string &params, Addr heap_base);

/** buildVio through the trace cache. */
std::vector<KernelInfo> buildVioCached(traceio::TraceCache &cache,
                                       AddressSpace &heap,
                                       uint32_t frames = 1,
                                       uint32_t width = 320,
                                       uint32_t height = 240);

/** buildHolo through the trace cache. */
std::vector<KernelInfo> buildHoloCached(traceio::TraceCache &cache,
                                        AddressSpace &heap,
                                        uint32_t points = 3);

/** buildNn through the trace cache. */
std::vector<KernelInfo> buildNnCached(traceio::TraceCache &cache,
                                      AddressSpace &heap,
                                      uint32_t layers = 3);

} // namespace crisp

#endif // CRISP_WORKLOADS_CACHED_HPP
