#ifndef CRISP_WORKLOADS_ORACLE_HPP
#define CRISP_WORKLOADS_ORACLE_HPP

#include "common/rng.hpp"
#include "gpu/gpu_config.hpp"
#include "graphics/pipeline.hpp"

namespace crisp
{

/** Oracle noise/calibration knobs. */
struct OracleConfig
{
    uint64_t seed = 0xC0FFEE;
    /** Relative measurement noise on frame times (profiler jitter). */
    double frameNoise = 0.06;
    /** Relative noise on L1 texture access counters. */
    double texNoise = 0.12;
    /** Relative noise on the profiler's thread counts. */
    double vsNoise = 0.01;
    /**
     * Hardware-vs-simulator speed bias: the paper observes simulated frame
     * times are consistently longer than silicon (missing driver shader
     * optimizations, §VI-A); the oracle's analytic model runs this much
     * faster than the simulator's trace cost model.
     */
    double hwSpeedFactor = 0.50;
};

/**
 * HardwareOracle: the stand-in for the NVIDIA RTX 3070 / Jetson Orin
 * silicon the paper validates against (Figs 3, 6, 9).
 *
 * We have no GPU or vendor profiler in this environment, so validation
 * targets come from an *independent analytic model* of the same workloads:
 * profiler-style exact counters where hardware reports exact values
 * (vertex invocations), quad-granularity texture-unit merging for L1
 * texture accesses, and a roofline-style frame-time estimate — each with
 * deterministic measurement noise. Because the oracle shares no code with
 * the cycle-level timing model, correlating the two is a meaningful
 * validation exercise of the same *kind* the paper performs, though
 * absolute correlation numbers are calibration targets rather than silicon
 * measurements (see DESIGN.md, substitutions).
 */
class HardwareOracle
{
  public:
    explicit HardwareOracle(const OracleConfig &cfg = {});

    /**
     * Profiler-reported vertex shader invocation count for one drawcall
     * (exact thread count, unlike the simulator's warps x 32; Fig 3).
     */
    double vsInvocations(const DrawcallReport &report) const;

    /**
     * "Silicon" L1 texture access count for one drawcall's fragment
     * kernel: the hardware texture unit merges requests at quad
     * granularity before they reach the L1, modeled here by counting
     * distinct 128 B lines per quad (Fig 9).
     */
    double l1TexAccesses(const KernelInfo &fs_kernel,
                         uint32_t draw_salt = 0) const;

    /**
     * Measured frame time in milliseconds for a full submission on the
     * given GPU: a roofline estimate over shader work and DRAM traffic
     * plus per-drawcall submission overhead (Fig 6).
     */
    double frameTimeMs(const RenderSubmission &submission,
                       const GpuConfig &gpu) const;

  private:
    double noisy(double value, double rel_sigma, uint64_t salt) const;

    OracleConfig cfg_;
};

} // namespace crisp

#endif // CRISP_WORKLOADS_ORACLE_HPP
