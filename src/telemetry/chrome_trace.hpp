#ifndef CRISP_TELEMETRY_CHROME_TRACE_HPP
#define CRISP_TELEMETRY_CHROME_TRACE_HPP

#include <string>
#include <vector>

#include "telemetry/sink.hpp"

namespace crisp
{
namespace telemetry
{

/**
 * Render a sink's retained events as Chrome trace_event JSON (the JSON
 * Array Format), loadable in Perfetto / chrome://tracing.
 *
 * Track mapping:
 *  - pid 0 is the machine ("gpu"): repartition / TAP-window decisions, L2
 *    miss bursts and DRAM row-conflict bursts, one tid per event kind;
 *  - each stream is a process (pid = stream id + 1) named after it:
 *    tid 0 carries kernels and tid 1 drawcalls as duration ("X") events,
 *    tid 2+k is SM k, carrying CTA dispatch/retire instants.
 *
 * Timestamps are simulated cycles, not microseconds: 1 ts unit = 1 core
 * cycle. Kernels whose launch or completion fell out of the ring are
 * skipped (only complete pairs become durations).
 */
std::string chromeTraceJson(const TelemetrySink &sink);

/**
 * Multi-device variant: sinks[d] is device d's sink (null entries are
 * skipped). Device d's tracks keep the single-sink mapping but live in
 * their own pid range (machine process at d*2^20, streams behind it)
 * with process names prefixed "gpu<d> ", so an N-GPU run renders as N
 * labelled process groups on one shared timeline.
 */
std::string chromeTraceJson(const std::vector<const TelemetrySink *> &sinks);

/** Write chromeTraceJson to @p path; false (with a warning) on failure. */
bool writeChromeTrace(const TelemetrySink &sink, const std::string &path);

/** Multi-device writeChromeTrace. */
bool writeChromeTrace(const std::vector<const TelemetrySink *> &sinks,
                      const std::string &path);

/** Write already-rendered trace JSON to @p path. */
bool writeChromeTrace(const std::string &json, const std::string &path);

} // namespace telemetry
} // namespace crisp

#endif // CRISP_TELEMETRY_CHROME_TRACE_HPP
