#ifndef CRISP_TELEMETRY_CHROME_TRACE_HPP
#define CRISP_TELEMETRY_CHROME_TRACE_HPP

#include <string>

#include "telemetry/sink.hpp"

namespace crisp
{
namespace telemetry
{

/**
 * Render a sink's retained events as Chrome trace_event JSON (the JSON
 * Array Format), loadable in Perfetto / chrome://tracing.
 *
 * Track mapping:
 *  - pid 0 is the machine ("gpu"): repartition / TAP-window decisions, L2
 *    miss bursts and DRAM row-conflict bursts, one tid per event kind;
 *  - each stream is a process (pid = stream id + 1) named after it:
 *    tid 0 carries kernels and tid 1 drawcalls as duration ("X") events,
 *    tid 2+k is SM k, carrying CTA dispatch/retire instants.
 *
 * Timestamps are simulated cycles, not microseconds: 1 ts unit = 1 core
 * cycle. Kernels whose launch or completion fell out of the ring are
 * skipped (only complete pairs become durations).
 */
std::string chromeTraceJson(const TelemetrySink &sink);

/** Write chromeTraceJson to @p path; false (with a warning) on failure. */
bool writeChromeTrace(const TelemetrySink &sink, const std::string &path);

} // namespace telemetry
} // namespace crisp

#endif // CRISP_TELEMETRY_CHROME_TRACE_HPP
