#ifndef CRISP_TELEMETRY_EVENT_HPP
#define CRISP_TELEMETRY_EVENT_HPP

#include <cstdint>

#include "common/types.hpp"

namespace crisp
{
namespace telemetry
{

/**
 * Typed event classes recorded by the tracer.
 *
 * The set mirrors what the paper's concurrency case studies reason about:
 * when kernels and drawcalls run (Fig 13's timeline), when the dynamic
 * partitioning mechanisms act (Warped-Slicer repartitions, TAP window
 * decisions), and where the memory system degenerates (L2 miss streaks,
 * DRAM row thrashing).
 */
enum class EventKind : uint8_t
{
    KernelLaunch = 0,  ///< a=kernel id, b=name key.
    KernelComplete,    ///< a=kernel id, b=name key.
    DrawcallBegin,     ///< a=drawcall id, b=name key.
    DrawcallEnd,       ///< a=drawcall id, b=name key.
    CtaDispatch,       ///< unit=SM, a=kernel id, b=CTA index.
    CtaRetire,         ///< unit=SM, a=kernel id, b=CTA index.
    Repartition,       ///< Warped-Slicer pick; a=stream-A share in permille.
    TapWindow,         ///< TAP epoch decision; a=gfx sets, b=compute sets.
    MissBurst,         ///< unit=L2 bank, a=consecutive-miss streak length.
    RowConflictBurst,  ///< a=cumulative DRAM row conflicts at emission.
    NumKinds
};

/** Short stable name for an event kind ("kernel-launch", ...). */
const char *eventKindName(EventKind kind);

/**
 * One fixed-size trace record.
 *
 * Events carry raw ids; names referenced by @c b for the kernel/drawcall
 * kinds live in the sink's intern table so the hot emit path never touches
 * a string.
 */
struct Event
{
    Cycle cycle = 0;
    EventKind kind = EventKind::KernelLaunch;
    uint32_t unit = 0;      ///< SM id / L2 bank id, when meaningful.
    StreamId stream = 0;
    uint64_t a = 0;         ///< Kind-specific payload (see EventKind).
    uint64_t b = 0;         ///< Kind-specific payload (see EventKind).

    bool operator==(const Event &) const = default;
};

} // namespace telemetry
} // namespace crisp

#endif // CRISP_TELEMETRY_EVENT_HPP
