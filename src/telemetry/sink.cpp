#include "telemetry/sink.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace crisp
{
namespace telemetry
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::KernelLaunch: return "kernel-launch";
      case EventKind::KernelComplete: return "kernel-complete";
      case EventKind::DrawcallBegin: return "drawcall-begin";
      case EventKind::DrawcallEnd: return "drawcall-end";
      case EventKind::CtaDispatch: return "cta-dispatch";
      case EventKind::CtaRetire: return "cta-retire";
      case EventKind::Repartition: return "repartition";
      case EventKind::TapWindow: return "tap-window";
      case EventKind::MissBurst: return "l2-miss-burst";
      case EventKind::RowConflictBurst: return "dram-row-conflicts";
      default: return "?";
    }
}

// --- CounterSeries ------------------------------------------------------

uint32_t
CounterSeries::column(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end()) {
        return it->second;
    }
    const uint32_t idx = static_cast<uint32_t>(columns_.size());
    index_.emplace(name, idx);
    names_.push_back(name);
    // Backfill so all columns stay row-aligned.
    columns_.emplace_back(cycles_.size(), 0.0);
    return idx;
}

bool
CounterSeries::hasColumn(const std::string &name) const
{
    return index_.count(name) != 0;
}

void
CounterSeries::beginRow(Cycle cycle)
{
    cycles_.push_back(cycle);
    for (auto &col : columns_) {
        col.push_back(0.0);
    }
}

void
CounterSeries::set(uint32_t column_index, double value)
{
    panic_if(column_index >= columns_.size(),
             "series column %u out of range", column_index);
    panic_if(cycles_.empty(), "series set() before beginRow()");
    columns_[column_index].back() = value;
}

const std::vector<double> &
CounterSeries::values(uint32_t column_index) const
{
    panic_if(column_index >= columns_.size(),
             "series column %u out of range", column_index);
    return columns_[column_index];
}

const std::vector<double> &
CounterSeries::values(const std::string &name) const
{
    auto it = index_.find(name);
    fatal_if(it == index_.end(), "series has no column named %s",
             name.c_str());
    return columns_[it->second];
}

Table
CounterSeries::toTable(size_t row_step, int precision) const
{
    std::vector<std::string> headers = {"cycle"};
    headers.insert(headers.end(), names_.begin(), names_.end());
    Table t(std::move(headers));
    const size_t step = std::max<size_t>(1, row_step);
    for (size_t r = 0; r < cycles_.size(); r += step) {
        std::vector<std::string> row = {std::to_string(cycles_[r])};
        for (const auto &col : columns_) {
            row.push_back(Table::num(col[r], precision));
        }
        t.addRow(std::move(row));
    }
    return t;
}

// --- TelemetrySink ------------------------------------------------------

TelemetrySink::TelemetrySink(const TelemetryConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg_.eventCapacity == 0, "telemetry ring needs capacity >= 1");
    ring_.resize(cfg_.eventCapacity);
    names_.push_back("?");   // key 0 = unknown
}

std::vector<Event>
TelemetrySink::events() const
{
    return lastEvents(ring_.size());
}

std::vector<Event>
TelemetrySink::lastEvents(size_t count) const
{
    const size_t retained =
        static_cast<size_t>(std::min<uint64_t>(emitted_, ring_.size()));
    const size_t n = std::min(count, retained);
    std::vector<Event> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t seq = emitted_ - n + i;
        out.push_back(ring_[static_cast<size_t>(seq % ring_.size())]);
    }
    return out;
}

uint32_t
TelemetrySink::internName(const std::string &name)
{
    auto it = nameIndex_.find(name);
    if (it != nameIndex_.end()) {
        return it->second;
    }
    const uint32_t key = static_cast<uint32_t>(names_.size());
    nameIndex_.emplace(name, key);
    names_.push_back(name);
    return key;
}

const std::string &
TelemetrySink::name(uint32_t key) const
{
    return key < names_.size() ? names_[key] : names_[0];
}

void
TelemetrySink::registerStream(StreamId id, const std::string &name)
{
    streams_[id] = name;
}

std::string
TelemetrySink::describe(const Event &e) const
{
    const char *kind = eventKindName(e.kind);
    switch (e.kind) {
      case EventKind::KernelLaunch:
      case EventKind::KernelComplete:
        return logging_detail::formatMessage(
            "cycle %llu: %s stream=%u kernel=%llu (%s)",
            static_cast<unsigned long long>(e.cycle), kind, e.stream,
            static_cast<unsigned long long>(e.a),
            name(static_cast<uint32_t>(e.b)).c_str());
      case EventKind::DrawcallBegin:
      case EventKind::DrawcallEnd:
        return logging_detail::formatMessage(
            "cycle %llu: %s stream=%u drawcall=%llu (%s)",
            static_cast<unsigned long long>(e.cycle), kind, e.stream,
            static_cast<unsigned long long>(e.a),
            name(static_cast<uint32_t>(e.b)).c_str());
      case EventKind::CtaDispatch:
      case EventKind::CtaRetire:
        return logging_detail::formatMessage(
            "cycle %llu: %s sm=%u stream=%u kernel=%llu cta=%llu",
            static_cast<unsigned long long>(e.cycle), kind, e.unit,
            e.stream, static_cast<unsigned long long>(e.a),
            static_cast<unsigned long long>(e.b));
      case EventKind::Repartition:
        return logging_detail::formatMessage(
            "cycle %llu: %s stream=%u shareA=%.1f%%",
            static_cast<unsigned long long>(e.cycle), kind, e.stream,
            static_cast<double>(e.a) / 10.0);
      case EventKind::TapWindow:
        return logging_detail::formatMessage(
            "cycle %llu: %s gfxSets=%llu computeSets=%llu",
            static_cast<unsigned long long>(e.cycle), kind,
            static_cast<unsigned long long>(e.a),
            static_cast<unsigned long long>(e.b));
      case EventKind::MissBurst:
        return logging_detail::formatMessage(
            "cycle %llu: %s bank=%u stream=%u streak=%llu",
            static_cast<unsigned long long>(e.cycle), kind, e.unit,
            e.stream, static_cast<unsigned long long>(e.a));
      case EventKind::RowConflictBurst:
        return logging_detail::formatMessage(
            "cycle %llu: %s conflicts=%llu",
            static_cast<unsigned long long>(e.cycle), kind,
            static_cast<unsigned long long>(e.a));
      default:
        return logging_detail::formatMessage(
            "cycle %llu: %s", static_cast<unsigned long long>(e.cycle),
            kind);
    }
}

} // namespace telemetry
} // namespace crisp
