#include "telemetry/chrome_trace.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "common/logging.hpp"

namespace crisp
{
namespace telemetry
{

namespace
{

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

class TraceWriter
{
  public:
    void
    append(const std::string &name, const char *ph, Cycle ts, uint64_t pid,
           uint64_t tid, const std::string &extra = "")
    {
        if (!first_) {
            out_ += ",\n";
        }
        first_ = false;
        out_ += logging_detail::formatMessage(
            "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%llu,\"pid\":%llu,"
            "\"tid\":%llu%s%s}",
            jsonEscape(name).c_str(), ph,
            static_cast<unsigned long long>(ts),
            static_cast<unsigned long long>(pid),
            static_cast<unsigned long long>(tid),
            extra.empty() ? "" : ",", extra.c_str());
    }

    void
    metadata(const char *what, const std::string &name, uint64_t pid,
             uint64_t tid)
    {
        append(what, "M", 0, pid, tid,
               logging_detail::formatMessage(
                   "\"args\":{\"name\":\"%s\"}",
                   jsonEscape(name).c_str()));
    }

    std::string
    finish()
    {
        return "[\n" + out_ + "\n]\n";
    }

  private:
    std::string out_;
    bool first_ = true;
};

// Machine-track (pid 0) tids per event kind.
constexpr uint64_t kTidRepartition = 0;
constexpr uint64_t kTidTapWindow = 1;
constexpr uint64_t kTidMissBurst = 2;
constexpr uint64_t kTidRowConflict = 3;

// Per-stream-process tids.
constexpr uint64_t kTidKernels = 0;
constexpr uint64_t kTidDrawcalls = 1;
constexpr uint64_t kTidSmBase = 2;

// Devices are separated by pid range: device d's machine process sits at
// d*kPidStride and its stream processes at d*kPidStride + stream + 1.
// Stream ids are machine-global (MultiGpu spaces them by its stream-id
// stride), so stream pids cannot collide across devices either way.
constexpr uint64_t kPidStride = 1ull << 20;

/** Emit one sink's events with all pids offset by @p pid_base and the
 *  process names prefixed by @p prefix (e.g. "gpu1 "). */
void
appendSink(TraceWriter &w, const TelemetrySink &sink, uint64_t pid_base,
           const std::string &prefix)
{
    const std::vector<Event> events = sink.events();

    // Process/thread metadata. SM thread names are derived from the CTA
    // events actually present so the exporter needs no machine config.
    w.metadata("process_name", prefix + "gpu", pid_base, 0);
    w.metadata("thread_name", "repartition", pid_base, kTidRepartition);
    w.metadata("thread_name", "tap-window", pid_base, kTidTapWindow);
    w.metadata("thread_name", "l2-miss-bursts", pid_base, kTidMissBurst);
    w.metadata("thread_name", "dram-row-conflicts", pid_base,
               kTidRowConflict);
    for (const auto &[id, name] : sink.streams()) {
        const uint64_t pid = pid_base + static_cast<uint64_t>(id) + 1;
        w.metadata("process_name", prefix + "stream " + name, pid, 0);
        w.metadata("thread_name", "kernels", pid, kTidKernels);
        w.metadata("thread_name", "drawcalls", pid, kTidDrawcalls);
    }
    std::set<std::pair<uint64_t, uint32_t>> sm_tracks;
    for (const Event &e : events) {
        if (e.kind == EventKind::CtaDispatch ||
            e.kind == EventKind::CtaRetire) {
            const uint64_t pid =
                pid_base + static_cast<uint64_t>(e.stream) + 1;
            if (sm_tracks.emplace(pid, e.unit).second) {
                w.metadata("thread_name",
                           logging_detail::formatMessage("sm%u", e.unit),
                           pid, kTidSmBase + e.unit);
            }
        }
    }

    // Pair begin/end kinds into duration events; everything else becomes
    // an instant on its track.
    std::map<std::pair<StreamId, uint64_t>, Event> open_kernels;
    std::map<std::pair<StreamId, uint64_t>, Event> open_drawcalls;
    for (const Event &e : events) {
        const uint64_t pid = pid_base + static_cast<uint64_t>(e.stream) + 1;
        switch (e.kind) {
          case EventKind::KernelLaunch:
            open_kernels[{e.stream, e.a}] = e;
            break;
          case EventKind::KernelComplete: {
            auto it = open_kernels.find({e.stream, e.a});
            if (it == open_kernels.end()) {
                break;   // launch fell out of the ring
            }
            w.append(sink.name(static_cast<uint32_t>(e.b)), "X",
                     it->second.cycle, pid, kTidKernels,
                     logging_detail::formatMessage(
                         "\"dur\":%llu,\"args\":{\"kernel\":%llu}",
                         static_cast<unsigned long long>(
                             e.cycle - it->second.cycle),
                         static_cast<unsigned long long>(e.a)));
            open_kernels.erase(it);
            break;
          }
          case EventKind::DrawcallBegin:
            open_drawcalls[{e.stream, e.a}] = e;
            break;
          case EventKind::DrawcallEnd: {
            auto it = open_drawcalls.find({e.stream, e.a});
            if (it == open_drawcalls.end()) {
                break;
            }
            w.append(sink.name(static_cast<uint32_t>(e.b)), "X",
                     it->second.cycle, pid, kTidDrawcalls,
                     logging_detail::formatMessage(
                         "\"dur\":%llu,\"args\":{\"drawcall\":%llu}",
                         static_cast<unsigned long long>(
                             e.cycle - it->second.cycle),
                         static_cast<unsigned long long>(e.a)));
            open_drawcalls.erase(it);
            break;
          }
          case EventKind::CtaDispatch:
          case EventKind::CtaRetire:
            w.append(eventKindName(e.kind), "i", e.cycle, pid,
                     kTidSmBase + e.unit,
                     logging_detail::formatMessage(
                         "\"s\":\"t\",\"args\":{\"kernel\":%llu,\"cta\":"
                         "%llu}",
                         static_cast<unsigned long long>(e.a),
                         static_cast<unsigned long long>(e.b)));
            break;
          case EventKind::Repartition:
            w.append(eventKindName(e.kind), "i", e.cycle, pid_base,
                     kTidRepartition,
                     logging_detail::formatMessage(
                         "\"s\":\"p\",\"args\":{\"shareA_permille\":%llu}",
                         static_cast<unsigned long long>(e.a)));
            break;
          case EventKind::TapWindow:
            w.append(eventKindName(e.kind), "i", e.cycle, pid_base,
                     kTidTapWindow,
                     logging_detail::formatMessage(
                         "\"s\":\"p\",\"args\":{\"gfxSets\":%llu,"
                         "\"computeSets\":%llu}",
                         static_cast<unsigned long long>(e.a),
                         static_cast<unsigned long long>(e.b)));
            break;
          case EventKind::MissBurst:
            w.append(eventKindName(e.kind), "i", e.cycle, pid_base,
                     kTidMissBurst,
                     logging_detail::formatMessage(
                         "\"s\":\"p\",\"args\":{\"bank\":%u,\"stream\":%u,"
                         "\"streak\":%llu}",
                         e.unit, e.stream,
                         static_cast<unsigned long long>(e.a)));
            break;
          case EventKind::RowConflictBurst:
            w.append(eventKindName(e.kind), "i", e.cycle, pid_base,
                     kTidRowConflict,
                     logging_detail::formatMessage(
                         "\"s\":\"p\",\"args\":{\"conflicts\":%llu}",
                         static_cast<unsigned long long>(e.a)));
            break;
          default:
            break;
        }
    }

    // Kernels/drawcalls still open at export time: emit as zero-length
    // markers so a truncated run is still visible on the timeline.
    for (const auto &[key, e] : open_kernels) {
        w.append(sink.name(static_cast<uint32_t>(e.b)) + " (running)", "i",
                 e.cycle, pid_base + static_cast<uint64_t>(e.stream) + 1,
                 kTidKernels, "\"s\":\"t\"");
    }
    for (const auto &[key, e] : open_drawcalls) {
        w.append(sink.name(static_cast<uint32_t>(e.b)) + " (running)", "i",
                 e.cycle, pid_base + static_cast<uint64_t>(e.stream) + 1,
                 kTidDrawcalls, "\"s\":\"t\"");
    }
}

} // namespace

std::string
chromeTraceJson(const TelemetrySink &sink)
{
    TraceWriter w;
    appendSink(w, sink, 0, "");
    return w.finish();
}

std::string
chromeTraceJson(const std::vector<const TelemetrySink *> &sinks)
{
    TraceWriter w;
    for (size_t d = 0; d < sinks.size(); ++d) {
        if (sinks[d] == nullptr) {
            continue;
        }
        appendSink(w, *sinks[d], d * kPidStride,
                   logging_detail::formatMessage("gpu%zu ", d));
    }
    return w.finish();
}

bool
writeChromeTrace(const TelemetrySink &sink, const std::string &path)
{
    return writeChromeTrace(chromeTraceJson(sink), path);
}

bool
writeChromeTrace(const std::vector<const TelemetrySink *> &sinks,
                 const std::string &path)
{
    return writeChromeTrace(chromeTraceJson(sinks), path);
}

bool
writeChromeTrace(const std::string &json, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        warn("cannot open %s for writing", path.c_str());
        return false;
    }
    const size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size()) {
        warn("short write to %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace telemetry
} // namespace crisp
