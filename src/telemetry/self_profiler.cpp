#include "telemetry/self_profiler.hpp"

#include "common/table.hpp"

namespace crisp
{
namespace telemetry
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::CtaScheduler: return "cta-scheduler";
      case Component::SmIssue: return "sm-issue";
      case Component::L1Ldst: return "l1-ldst";
      case Component::L2: return "l2";
      case Component::Icnt: return "icnt";
      case Component::Dram: return "dram";
      case Component::Raster: return "raster";
      case Component::Controllers: return "controllers";
      default: return "?";
    }
}

SelfProfiler::Scope::Scope(SelfProfiler *profiler, Component c)
    : profiler_(profiler), component_(c)
{
    if (profiler_) {
        start_ = std::chrono::steady_clock::now();
        parent_ = profiler_->current_;
        profiler_->current_ = this;
    }
}

SelfProfiler::Scope::~Scope()
{
    if (!profiler_) {
        return;
    }
    const double inclusive_ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start_)
            .count();
    profiler_->nanos_[static_cast<size_t>(component_)] +=
        inclusive_ns - childNs_;
    profiler_->current_ = parent_;
    if (parent_) {
        parent_->childNs_ += inclusive_ns;
    }
}

double
SelfProfiler::totalNanos() const
{
    double total = 0.0;
    for (double ns : nanos_) {
        total += ns;
    }
    return total;
}

std::string
SelfProfiler::render(uint64_t cycles) const
{
    const double total = totalNanos();
    Table t(cycles > 0
                ? std::vector<std::string>{"component", "seconds", "share%",
                                           "ns/cycle"}
                : std::vector<std::string>{"component", "seconds",
                                           "share%"});
    for (size_t i = 0; i < nanos_.size(); ++i) {
        const double ns = nanos_[i];
        std::vector<std::string> row = {
            componentName(static_cast<Component>(i)),
            Table::num(ns / 1e9, 3),
            Table::num(total > 0.0 ? 100.0 * ns / total : 0.0, 1)};
        if (cycles > 0) {
            row.push_back(Table::num(ns / static_cast<double>(cycles), 1));
        }
        t.addRow(std::move(row));
    }
    return t.toText();
}

void
SelfProfiler::reset()
{
    nanos_.fill(0.0);
    current_ = nullptr;
}

void
SelfProfiler::absorb(SelfProfiler &other)
{
    for (size_t i = 0; i < nanos_.size(); ++i) {
        nanos_[i] += other.nanos_[i];
        other.nanos_[i] = 0.0;
    }
}

} // namespace telemetry
} // namespace crisp
