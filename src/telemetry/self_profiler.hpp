#ifndef CRISP_TELEMETRY_SELF_PROFILER_HPP
#define CRISP_TELEMETRY_SELF_PROFILER_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace crisp
{
namespace telemetry
{

/** Simulator components wall-clock time is attributed to. */
enum class Component : uint8_t
{
    CtaScheduler = 0,  ///< Gpu::issueCtas + kernel promotion.
    SmIssue,           ///< Sm::step outside the LDST unit.
    L1Ldst,            ///< Sm LDST drain: coalescing, L1 probes, MSHRs.
    L2,                ///< L2 bank service (tag probes, MSHR merging).
    Icnt,              ///< Interconnect response delivery.
    Dram,              ///< DRAM fill completion.
    Raster,            ///< Functional rasterization at submit time.
    Controllers,       ///< GpuController hooks (partitioning, sampling).
    NumComponents
};

/** Short stable name for a component ("sm-issue", ...). */
const char *componentName(Component c);

/**
 * Wall-clock self-profiler: attributes simulation time to model
 * components through RAII scopes.
 *
 * Scopes nest; a nested scope's time is *excluded* from its parent, so the
 * rendered table is a true exclusive breakdown (per "Parallelizing a modern
 * GPU simulator": knowing where simulator time goes per component is the
 * prerequisite for making it fast). Scope entry/exit costs two
 * steady_clock reads, which is why profiling is opt-in and every
 * instrumented site is gated on a null profiler pointer.
 */
class SelfProfiler
{
  public:
    class Scope
    {
      public:
        Scope(SelfProfiler *profiler, Component c);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SelfProfiler *profiler_;
        Component component_;
        std::chrono::steady_clock::time_point start_;
        double childNs_ = 0.0;   ///< Time claimed by nested scopes.
        Scope *parent_ = nullptr;
    };

    /** Exclusive nanoseconds attributed to @p c so far. */
    double nanos(Component c) const
    {
        return nanos_[static_cast<size_t>(c)];
    }

    /** Total nanoseconds across all components. */
    double totalNanos() const;

    /**
     * Render the breakdown as a column-aligned table: component, seconds,
     * share of the total, and (when @p cycles is non-zero) the attributed
     * nanoseconds per simulated cycle.
     */
    std::string render(uint64_t cycles = 0) const;

    void reset();

    /**
     * Fold another profiler's attributed time into this one and zero the
     * source. The parallel cycle engine gives each worker-stepped SM a
     * shadow profiler and absorbs them in SM-id order at the barrier, so
     * scope bookkeeping never crosses threads. Absorbed time is added to
     * the per-component totals directly; it is not subtracted from any
     * scope currently open on this profiler, so in parallel runs the
     * sm-issue bucket measures barrier wall time while l1-ldst sums
     * per-worker busy time (the two can overlap).
     */
    void absorb(SelfProfiler &other);

  private:
    friend class Scope;

    std::array<double, static_cast<size_t>(Component::NumComponents)>
        nanos_{};
    Scope *current_ = nullptr;
};

} // namespace telemetry
} // namespace crisp

#endif // CRISP_TELEMETRY_SELF_PROFILER_HPP
