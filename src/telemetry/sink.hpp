#ifndef CRISP_TELEMETRY_SINK_HPP
#define CRISP_TELEMETRY_SINK_HPP

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/event.hpp"
#include "telemetry/self_profiler.hpp"

namespace crisp
{

class Table;

namespace telemetry
{

/** Knobs of one attached sink. */
struct TelemetryConfig
{
    /**
     * Event ring capacity in records. The ring keeps the *newest* events:
     * once full, each emit overwrites the oldest record and bumps the
     * dropped count — a hang report wants the last events before the
     * stall, not the first events of the run.
     */
    size_t eventCapacity = 1 << 16;

    /**
     * Counter sampling period in cycles; 0 disables the time-series
     * sampler. The cadence matches the bench samplers this subsystem
     * replaced: the first sample lands on cycle 1, so a run of C cycles
     * yields exactly ceil(C / sampleInterval) samples.
     */
    Cycle sampleInterval = 0;

    /**
     * Separate (slower) period for the L2 composition columns, which
     * require an O(lines) cache walk per snapshot; between snapshots the
     * last values are carried forward so rows stay aligned. 0 = same as
     * sampleInterval (what the Fig 11/15 benches use).
     */
    Cycle compositionInterval = 0;

    /** Enable the wall-clock self-profiler (adds clock reads per scope). */
    bool selfProfile = false;
};

/**
 * Columnar counter time-series.
 *
 * One row per sample; columns are interned by name and stored as separate
 * vectors (columnar) so a bench can hand a whole series column to a table
 * or a correlation metric without restructuring. Columns added after the
 * first row are backfilled with zeros.
 */
class CounterSeries
{
  public:
    /** Intern a column, returning its index (idempotent per name). */
    uint32_t column(const std::string &name);

    /** True when @p name was interned. */
    bool hasColumn(const std::string &name) const;

    /** Start a new sample row at @p cycle; new cells default to 0. */
    void beginRow(Cycle cycle);

    /** Set a cell of the current row (fatal without a beginRow). */
    void set(uint32_t column_index, double value);

    size_t rows() const { return cycles_.size(); }
    const std::vector<Cycle> &cycles() const { return cycles_; }

    /** All values of one column, by index or name (fatal when missing). */
    const std::vector<double> &values(uint32_t column_index) const;
    const std::vector<double> &values(const std::string &name) const;

    const std::vector<std::string> &columnNames() const { return names_; }

    /**
     * Render the series as a table (cycle + every column), sampling every
     * @p row_step rows — the generic CSV exporter for the bench suite.
     */
    Table toTable(size_t row_step = 1, int precision = 4) const;

  private:
    std::map<std::string, uint32_t> index_;
    std::vector<std::string> names_;
    std::vector<Cycle> cycles_;
    std::vector<std::vector<double>> columns_;
};

/**
 * Shared telemetry sink: a preallocated event ring, the counter
 * time-series, a name intern table, and the optional self-profiler.
 *
 * Producers (SMs, L2, DRAM, pipeline, partition controllers) hold a raw
 * pointer that is null when telemetry is disabled, so a disabled sink
 * costs exactly one branch per emit site.
 */
class TelemetrySink
{
  public:
    explicit TelemetrySink(const TelemetryConfig &cfg = {});

    const TelemetryConfig &config() const { return cfg_; }

    /** Record one event (ring push; overwrites the oldest when full). */
    void
    emit(const Event &e)
    {
        ring_[static_cast<size_t>(emitted_ % ring_.size())] = e;
        ++emitted_;
        ++counts_[static_cast<size_t>(e.kind)];
    }

    /** Events ever emitted (including overwritten ones). */
    uint64_t emitted() const { return emitted_; }

    /** Events of one kind ever emitted (robust to ring wraparound). */
    uint64_t
    count(EventKind kind) const
    {
        return counts_[static_cast<size_t>(kind)];
    }

    /** Events lost to ring wraparound. */
    uint64_t
    dropped() const
    {
        return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
    }

    /** Retained events, oldest first (linearized ring copy). */
    std::vector<Event> events() const;

    /** The newest @p count retained events, oldest first. */
    std::vector<Event> lastEvents(size_t count) const;

    /** Intern @p name, returning a stable key for Event payloads. */
    uint32_t internName(const std::string &name);

    /** Resolve an interned key ("?" for unknown keys). */
    const std::string &name(uint32_t key) const;

    /** Register a stream's name (exporters map streams to processes). */
    void registerStream(StreamId id, const std::string &name);
    const std::map<StreamId, std::string> &streams() const
    {
        return streams_;
    }

    CounterSeries &series() { return series_; }
    const CounterSeries &series() const { return series_; }

    SelfProfiler &profiler() { return profiler_; }
    const SelfProfiler &profiler() const { return profiler_; }

    /** One-line human rendering of an event (hang reports, debugging). */
    std::string describe(const Event &e) const;

  private:
    TelemetryConfig cfg_;
    std::vector<Event> ring_;
    uint64_t emitted_ = 0;
    std::array<uint64_t, static_cast<size_t>(EventKind::NumKinds)>
        counts_{};
    std::vector<std::string> names_;
    std::map<std::string, uint32_t> nameIndex_;
    std::map<StreamId, std::string> streams_;
    CounterSeries series_;
    SelfProfiler profiler_;
};

} // namespace telemetry
} // namespace crisp

#endif // CRISP_TELEMETRY_SINK_HPP
