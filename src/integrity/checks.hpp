#ifndef CRISP_INTEGRITY_CHECKS_HPP
#define CRISP_INTEGRITY_CHECKS_HPP

#include <vector>

#include "core/sm.hpp"
#include "integrity/report.hpp"
#include "mem/l2_subsystem.hpp"

namespace crisp
{
namespace integrity
{

/**
 * Cross-layer invariant checkers over the machine's memory fabric and
 * cores. The Gpu runs them on every watchdog tick; each appends
 * violations instead of panicking so the caller decides the on-hang
 * policy and can bundle everything into one HangReport.
 */

/**
 * Conservation of in-flight memory reads, checked two ways:
 *  1. cumulative, L2-side: reads accepted == responses delivered +
 *     outstanding (bank queues + MSHR targets + response queue);
 *  2. structural, cross-layer: every outstanding L1 MSHR line must have
 *     exactly one representative in the SM's retry queue or somewhere in
 *     the L2 subsystem.
 * A dropped response breaks both; a leaked-but-consistent MSHR entry
 * breaks neither (the age-based leak scan exists for that).
 */
void checkConservation(const std::vector<const Sm *> &sms,
                       const L2Subsystem &l2, Cycle now,
                       std::vector<InvariantViolation> &out);

/** Per-SM resource accounting audit (tracked vs recomputed vs quota). */
void checkSmAccounting(const std::vector<const Sm *> &sms, Cycle now,
                       std::vector<InvariantViolation> &out);

/**
 * Bounded-stall invariant over the fabric-retry queues: the round-robin
 * arbiter guarantees every SM a grant per round, so no parked request
 * should ever wait anywhere near @p bound cycles (the caller derives it
 * from the arbitration worst case times a safety factor; see
 * RunOptions::retryWaitBoundFactor). One "fabric-retry-starvation"
 * violation per offending SM, naming the age and the bound.
 */
void checkBoundedRetryWait(const std::vector<const Sm *> &sms, Cycle now,
                           Cycle bound,
                           std::vector<InvariantViolation> &out);

/**
 * MSHR leak scan over every SM's L1 MSHR and the L2's banked MSHRs. An
 * entry is leaked when it is older than @p max_age *and* orphaned —
 * nothing between the SM and DRAM (fabric-retry queue, bank queues,
 * merged L2 MSHR target, pending fill or response) will ever complete
 * it. Age alone is not enough: under DRAM saturation a live request can
 * legitimately queue for tens of thousands of cycles (the divergent-
 * gather scenarios do this), while a dropped fill or response leaves no
 * in-flight trace. Returns structured rows (for the HangReport) and
 * appends one violation per leaked entry, naming the line address and
 * the owning SM/bank — the acceptance-test contract for dropped-fill
 * hangs.
 */
std::vector<HangReport::MshrLeakRow>
findMshrLeaks(const std::vector<const Sm *> &sms, const L2Subsystem &l2,
              Cycle now, Cycle max_age,
              std::vector<InvariantViolation> *out);

/** Build a HangReport SM row from a live SM. */
HangReport::SmRow smRow(const Sm &sm, Cycle now);

/** Fill the report's memory-system row from the L2 subsystem. */
HangReport::MemRow memRow(const L2Subsystem &l2, Cycle now);

} // namespace integrity
} // namespace crisp

#endif // CRISP_INTEGRITY_CHECKS_HPP
