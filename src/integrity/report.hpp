#ifndef CRISP_INTEGRITY_REPORT_HPP
#define CRISP_INTEGRITY_REPORT_HPP

#include <atomic>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace crisp
{

namespace telemetry
{
class TelemetrySink;
}

namespace integrity
{

/**
 * Watchdog and invariant-checking knobs for Gpu::run().
 *
 * A cycle simulator's worst failure mode is the silent hang: a lost
 * memory response or a mis-wired dependency makes run() spin to
 * max_cycles and return completed=false with zero diagnostics. With a
 * non-zero checkInterval the GPU audits itself while running and stops
 * with a HangReport the moment an invariant breaks or forward progress
 * ceases.
 */
struct RunOptions
{
    /** Cycles between integrity checks; 0 disables the integrity layer. */
    Cycle checkInterval = 0;

    /** What to do when a hang or invariant violation is detected. */
    enum class OnHang
    {
        Panic,   ///< Abort with the rendered report (CI-friendly).
        Report   ///< Stop the run and return the report in RunResult.
    };
    OnHang onHang = OnHang::Report;

    /**
     * Cycles without any forward progress (issued instruction, launched
     * CTA, completed kernel, delivered memory response) before the run is
     * declared hung. 0 derives a default from the configured memory
     * round-trip latency.
     */
    Cycle hangThreshold = 0;

    /**
     * Age in cycles past which an *orphaned* MSHR entry is reported as
     * leaked. Entries with live traffic anywhere between the SM and
     * DRAM are never reported, whatever their age — saturated DRAM can
     * starve a legitimate request well past any fixed threshold. 0
     * derives a default matching hangThreshold.
     */
    Cycle mshrLeakAge = 0;

    /** Run the cross-layer invariant checkers on every watchdog tick. */
    bool checkInvariants = true;

    /**
     * Bounded-stall invariant: with the round-robin fabric arbiter, no
     * parked retry should wait longer than a small multiple of the
     * queue-depth-derived bound numSms * ldstQueueDepth (every other SM
     * draining a full egress queue ahead of it, one grant per round).
     * A retry older than retryWaitBoundFactor times that bound is
     * reported as a "fabric-retry-starvation" violation — either the
     * arbiter lost fairness or the fabric wedged. 0 disables the check.
     */
    uint32_t retryWaitBoundFactor = 16;

    /**
     * Cycles between counter-conservation audits (crisp::audit); 0
     * disables auditing. Independent of checkInterval so the audit can
     * run without the watchdog (and vice versa): fault-matrix tests pin
     * which detector fires first, and benches want the audit alone. A
     * violated identity stops the run with a HangReport whose violations
     * carry "counter-*" check names.
     */
    Cycle auditInterval = 0;

    /**
     * Telemetry sink to attach for the duration of the run (optional).
     * The GPU installs it on entry and restores the previous sink on
     * exit; a hang report then includes the last traced events before
     * the stall.
     */
    telemetry::TelemetrySink *telemetry = nullptr;

    /**
     * Cooperative cancellation token (optional; not owned). Checked at
     * tick granularity by Gpu::run: another thread storing true stops
     * the run before its next tick with RunResult::cancelled set and
     * all counters coherent at a cycle boundary. This is how a job
     * server's deadline monitor or a client disconnect stops a
     * simulation promptly without tearing down the process.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/** One failed integrity check. */
struct InvariantViolation
{
    std::string check;    ///< "mem-conservation", "mshr-leak", ...
    std::string detail;   ///< Human-readable specifics.
    Cycle cycle = 0;      ///< Cycle the violation was detected.
};

/**
 * Everything the watchdog knows about *why* nothing is committing,
 * captured at detection time. Structured fields for tests and tooling;
 * render() produces the human-readable tables.
 */
struct HangReport
{
    Cycle detectedAt = 0;
    Cycle lastProgressAt = 0;
    std::string reason;
    std::vector<InvariantViolation> violations;

    /** Per-SM occupancy and dominant stall reason. */
    struct SmRow
    {
        uint32_t smId = 0;
        uint32_t activeWarps = 0;
        uint32_t activeCtas = 0;
        uint32_t atBarrier = 0;
        uint32_t waitScoreboard = 0;
        uint32_t waitExecUnit = 0;
        uint32_t waitSmem = 0;
        uint32_t waitLdst = 0;
        uint32_t ready = 0;
        uint32_t l1MshrEntries = 0;
        uint64_t ldstQueueDepth = 0;
        uint64_t fabricRetryDepth = 0;
        Cycle fabricRetryMaxWait = 0;
        Cycle fabricRetryOldestAge = 0;
        uint64_t outstandingLoads = 0;
        Addr oldestMissLine = 0;
        Cycle oldestMissAge = 0;
        bool issueFrozen = false;
        std::string dominantStall;
    };
    std::vector<SmRow> sms;

    /** Per-stream queue state and what blocks the front kernel. */
    struct StreamRow
    {
        StreamId id = 0;
        std::string name;
        uint64_t queuedKernels = 0;
        uint64_t activeKernels = 0;
        KernelId blockingDep = 0;    ///< 0 = front kernel is unblocked.
        std::string frontKernel;
        std::string blockReason;
    };
    std::vector<StreamRow> streams;

    /** An outstanding MSHR entry old enough to be a leak. */
    struct MshrLeakRow
    {
        std::string level;           ///< "L1" or "L2".
        uint32_t unit = 0;           ///< SM id (L1) or bank id (L2).
        Addr line = 0;
        Cycle age = 0;
        uint32_t targets = 0;
        std::vector<uint32_t> smIds; ///< SMs awaiting the line's data.
    };
    std::vector<MshrLeakRow> mshrLeaks;

    /** Memory-system queue depths and conservation counters. */
    struct MemRow
    {
        uint64_t queuedRequests = 0;
        uint64_t queuedReads = 0;
        uint64_t mshrEntries = 0;
        uint64_t mshrResponseTargets = 0;
        uint64_t pendingFills = 0;
        uint64_t pendingResponses = 0;
        uint64_t readsAccepted = 0;
        uint64_t responsesDelivered = 0;
        uint64_t dramRequests = 0;
        Cycle requestLinkBacklog = 0;
        Cycle responseLinkBacklog = 0;
        std::vector<size_t> bankQueueDepths;
    };
    MemRow mem;

    /**
     * Human renderings of the last telemetry events before the stall
     * (oldest first); empty when no sink was attached to the run.
     */
    std::vector<std::string> recentEvents;

    /** Render the report as column-aligned tables for a terminal. */
    std::string render() const;
};

} // namespace integrity
} // namespace crisp

#endif // CRISP_INTEGRITY_REPORT_HPP
