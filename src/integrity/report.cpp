#include "integrity/report.hpp"

#include <cinttypes>
#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace crisp
{
namespace integrity
{

namespace
{

std::string
hexLine(Addr line)
{
    return logging_detail::formatMessage("0x%" PRIx64, line);
}

std::string
u64(uint64_t v)
{
    return std::to_string(v);
}

} // namespace

std::string
HangReport::render() const
{
    std::ostringstream out;
    out << "=== CRISP integrity report ===\n";
    out << "detected at cycle " << detectedAt << ", last forward progress at "
        << lastProgressAt << " (" << (detectedAt - lastProgressAt)
        << " cycles ago)\n";
    out << "reason: " << reason << "\n";

    if (!violations.empty()) {
        Table t({"check", "cycle", "detail"});
        for (const auto &v : violations) {
            t.addRow({v.check, u64(v.cycle), v.detail});
        }
        out << "\n-- invariant violations --\n" << t.toText();
    }

    if (!mshrLeaks.empty()) {
        Table t({"level", "unit", "line", "age", "targets", "waiting SMs"});
        for (const auto &leak : mshrLeaks) {
            std::string sms;
            for (uint32_t sm : leak.smIds) {
                if (!sms.empty()) {
                    sms += ',';
                }
                sms += std::to_string(sm);
            }
            t.addRow({leak.level, u64(leak.unit), hexLine(leak.line),
                      u64(leak.age), u64(leak.targets),
                      sms.empty() ? "-" : sms});
        }
        out << "\n-- leaked MSHR entries --\n" << t.toText();
    }

    {
        Table t({"stream", "name", "queued", "active", "front kernel",
                 "blocked on"});
        for (const auto &s : streams) {
            t.addRow({u64(s.id), s.name, u64(s.queuedKernels),
                      u64(s.activeKernels),
                      s.frontKernel.empty() ? "-" : s.frontKernel,
                      s.blockReason.empty() ? "-" : s.blockReason});
        }
        out << "\n-- streams --\n" << t.toText();
    }

    {
        Table t({"sm", "warps", "ctas", "stall", "barrier", "scoreboard",
                 "exec", "smem", "ldst", "ready", "l1 mshr", "retry",
                 "retry wait", "oldest miss"});
        for (const auto &s : sms) {
            t.addRow({u64(s.smId), u64(s.activeWarps), u64(s.activeCtas),
                      s.dominantStall, u64(s.atBarrier),
                      u64(s.waitScoreboard), u64(s.waitExecUnit),
                      u64(s.waitSmem), u64(s.waitLdst), u64(s.ready),
                      u64(s.l1MshrEntries), u64(s.fabricRetryDepth),
                      s.fabricRetryDepth
                          ? u64(s.fabricRetryOldestAge) + " (max " +
                                u64(s.fabricRetryMaxWait) + ")"
                          : "max " + u64(s.fabricRetryMaxWait),
                      s.l1MshrEntries
                          ? hexLine(s.oldestMissLine) + " (" +
                                u64(s.oldestMissAge) + " cycles)"
                          : "-"});
        }
        out << "\n-- SMs --\n" << t.toText();
    }

    out << "\n-- memory system --\n";
    out << "bank queues:";
    for (size_t d : mem.bankQueueDepths) {
        out << " " << d;
    }
    out << "\nqueued reads: " << mem.queuedReads << " / "
        << mem.queuedRequests << " requests, L2 MSHR entries: "
        << mem.mshrEntries << " (" << mem.mshrResponseTargets
        << " response targets), pending fills: " << mem.pendingFills
        << ", pending responses: " << mem.pendingResponses << "\n";
    out << "reads accepted: " << mem.readsAccepted
        << ", responses delivered: " << mem.responsesDelivered
        << ", DRAM requests: " << mem.dramRequests << "\n";
    out << "icnt backlog (cycles): request " << mem.requestLinkBacklog
        << ", response " << mem.responseLinkBacklog << "\n";

    if (!recentEvents.empty()) {
        out << "\n-- last telemetry events before the stall --\n";
        for (const std::string &line : recentEvents) {
            out << line << "\n";
        }
    }
    return out.str();
}

} // namespace integrity
} // namespace crisp
