#include "integrity/checks.hpp"

#include <cinttypes>

#include "common/logging.hpp"

namespace crisp
{
namespace integrity
{

using logging_detail::formatMessage;

void
checkConservation(const std::vector<const Sm *> &sms, const L2Subsystem &l2,
                  Cycle now, std::vector<InvariantViolation> &out)
{
    const L2Subsystem::InFlight f = l2.inFlight();

    // 1. Cumulative conservation on the L2 side: every accepted read is
    // either still outstanding or has been delivered. A dropped response
    // makes the left side exceed the right side forever.
    const uint64_t outstanding =
        f.queuedReads + f.mshrResponseTargets + f.pendingResponses;
    if (l2.readsAccepted() != l2.responsesDelivered() + outstanding) {
        out.push_back(
            {"mem-conservation",
             formatMessage("L2 reads accepted (%" PRIu64 ") != delivered "
                           "(%" PRIu64 ") + outstanding (%" PRIu64
                           ": %" PRIu64 " queued + %" PRIu64
                           " mshr targets + %" PRIu64 " responses)",
                           l2.readsAccepted(), l2.responsesDelivered(),
                           outstanding, f.queuedReads,
                           f.mshrResponseTargets, f.pendingResponses),
             now});
    }

    // 2. Structural cross-layer conservation: each outstanding L1 MSHR
    // line sent exactly one read into the fabric (or parked it in the
    // SM's retry queue), so the totals must balance at cycle boundaries.
    uint64_t l1_entries = 0;
    uint64_t retained = 0;
    for (const Sm *sm : sms) {
        l1_entries += sm->l1Mshr().entriesInUse();
        retained += sm->pendingFabricReads();
    }
    if (l1_entries != retained + outstanding) {
        out.push_back(
            {"mem-conservation",
             formatMessage("outstanding L1 MSHR lines (%" PRIu64 ") != "
                           "fabric-retry (%" PRIu64 ") + in-flight in L2 "
                           "(%" PRIu64 ")",
                           l1_entries, retained, outstanding),
             now});
    }
}

void
checkSmAccounting(const std::vector<const Sm *> &sms, Cycle now,
                  std::vector<InvariantViolation> &out)
{
    for (const Sm *sm : sms) {
        std::string detail;
        if (!sm->auditAccounting(&detail)) {
            out.push_back({"sm-accounting", detail, now});
        }
    }
}

void
checkBoundedRetryWait(const std::vector<const Sm *> &sms, Cycle now,
                      Cycle bound, std::vector<InvariantViolation> &out)
{
    if (bound == 0) {
        return;
    }
    for (const Sm *sm : sms) {
        const Cycle age = sm->oldestFabricRetryAge(now);
        if (age > bound) {
            out.push_back(
                {"fabric-retry-starvation",
                 formatMessage("SM %u fabric retry parked for %" PRIu64
                               " cycles (bound %" PRIu64
                               "): arbitration lost fairness or the "
                               "fabric wedged",
                               sm->smId(), age, bound),
                 now});
        }
    }
}

std::vector<HangReport::MshrLeakRow>
findMshrLeaks(const std::vector<const Sm *> &sms, const L2Subsystem &l2,
              Cycle now, Cycle max_age,
              std::vector<InvariantViolation> *out)
{
    std::vector<HangReport::MshrLeakRow> leaks;
    auto report = [&](const HangReport::MshrLeakRow &row) {
        if (out) {
            std::string sm_list;
            for (uint32_t sm : row.smIds) {
                if (!sm_list.empty()) {
                    sm_list += ',';
                }
                sm_list += std::to_string(sm);
            }
            out->push_back(
                {"mshr-leak",
                 formatMessage("%s MSHR entry for line 0x%" PRIx64
                               " in %s %u outstanding for %" PRIu64
                               " cycles (%u targets, waiting SMs: %s)",
                               row.level.c_str(), row.line,
                               row.level == "L1" ? "SM" : "bank",
                               row.unit, row.age, row.targets,
                               sm_list.empty() ? "-" : sm_list.c_str()),
                 now});
        }
        leaks.push_back(row);
    };

    for (const Sm *sm : sms) {
        if (sm->l1Mshr().entriesInUse() == 0 ||
            now - sm->l1Mshr().oldestAllocation() < max_age) {
            continue;
        }
        for (const auto &entry : sm->l1Mshr().entries()) {
            const Cycle age = now - entry.allocatedAt;
            if (age < max_age) {
                break;   // entries() is sorted oldest first
            }
            // Old but still live somewhere between here and DRAM means
            // starved, not leaked: under saturation a request can queue
            // for tens of thousands of cycles and still complete.
            if (sm->fabricRetryHasLine(entry.line) ||
                l2.lineInFlightFor(sm->smId(), entry.line)) {
                continue;
            }
            HangReport::MshrLeakRow row;
            row.level = "L1";
            row.unit = sm->smId();
            row.line = entry.line;
            row.age = age;
            row.targets = entry.targets;
            row.smIds = {sm->smId()};
            report(row);
        }
    }

    // Cheap pre-check so per-cycle scans don't snapshot a healthy L2.
    const Cycle l2_oldest = l2.oldestMshrAllocation();
    if (l2_oldest == ~0ull || now - l2_oldest < max_age) {
        return leaks;
    }
    for (const auto &entry : l2.mshrEntries()) {
        const Cycle age = now - entry.allocatedAt;
        if (age < max_age) {
            break;   // sorted oldest first
        }
        // A fill still on its way back will clear this entry; only an
        // entry nothing will ever fill is a leak.
        if (l2.fillInFlight(entry.bank, entry.line)) {
            continue;
        }
        HangReport::MshrLeakRow row;
        row.level = "L2";
        row.unit = entry.bank;
        row.line = entry.line;
        row.age = age;
        row.targets = entry.targets;
        row.smIds = entry.smIds;
        report(row);
    }
    return leaks;
}

HangReport::SmRow
smRow(const Sm &sm, Cycle now)
{
    const Sm::IntegrityProbe p = sm.probe(now);
    HangReport::SmRow row;
    row.smId = sm.smId();
    row.activeWarps = p.activeWarps;
    row.activeCtas = p.activeCtas;
    row.atBarrier = p.atBarrier;
    row.waitScoreboard = p.waitScoreboard;
    row.waitExecUnit = p.waitExecUnit;
    row.waitSmem = p.waitSmem;
    row.waitLdst = p.waitLdst;
    row.ready = p.ready;
    row.l1MshrEntries = p.l1MshrEntries;
    row.ldstQueueDepth = p.ldstQueueDepth;
    row.fabricRetryDepth = p.fabricRetryDepth;
    row.fabricRetryMaxWait = p.fabricRetryMaxWait;
    row.fabricRetryOldestAge = p.fabricRetryOldestAge;
    row.outstandingLoads = p.outstandingLoads;
    row.oldestMissLine = p.oldestMissLine;
    row.oldestMissAge = p.oldestMissAge;
    row.issueFrozen = p.issueFrozen;
    row.dominantStall = p.dominantStall();
    return row;
}

HangReport::MemRow
memRow(const L2Subsystem &l2, Cycle now)
{
    const L2Subsystem::InFlight f = l2.inFlight();
    HangReport::MemRow row;
    row.queuedRequests = f.queuedRequests;
    row.queuedReads = f.queuedReads;
    row.mshrEntries = f.mshrEntries;
    row.mshrResponseTargets = f.mshrResponseTargets;
    row.pendingFills = f.pendingFills;
    row.pendingResponses = f.pendingResponses;
    row.readsAccepted = l2.readsAccepted();
    row.responsesDelivered = l2.responsesDelivered();
    row.dramRequests = l2.dramRequests();
    row.requestLinkBacklog = l2.requestLinkBacklog(now);
    row.responseLinkBacklog = l2.responseLinkBacklog(now);
    row.bankQueueDepths = l2.bankQueueDepths();
    return row;
}

} // namespace integrity
} // namespace crisp
