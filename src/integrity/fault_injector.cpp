#include "integrity/fault_injector.hpp"

namespace crisp
{
namespace integrity
{

FaultInjector::FaultInjector(const FaultConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

bool
FaultInjector::roll(double prob)
{
    if (prob <= 0.0) {
        return false;
    }
    return prob >= 1.0 || rng_.nextDouble() < prob;
}

MemFaultHook::Action
FaultInjector::onDramFill(const MemRequest &req, Cycle now, Cycle &delay)
{
    if (droppedFills_ < cfg_.maxDroppedFills && roll(cfg_.dropFillProb)) {
        ++droppedFills_;
        log_.push_back({"drop-fill", now, req.line, req.smId});
        return Action::Drop;
    }
    if (delayedFills_ < cfg_.maxDelayedFills && roll(cfg_.delayFillProb)) {
        ++delayedFills_;
        delay = cfg_.fillDelay;
        log_.push_back({"delay-fill", now, req.line, req.smId});
        return Action::Delay;
    }
    return Action::None;
}

MemFaultHook::Action
FaultInjector::onResponse(const MemRequest &req, Cycle now, Cycle &delay)
{
    if (droppedResponses_ < cfg_.maxDroppedResponses &&
        roll(cfg_.dropResponseProb)) {
        ++droppedResponses_;
        log_.push_back({"drop-response", now, req.line, req.smId});
        return Action::Drop;
    }
    if (delayedResponses_ < cfg_.maxDelayedResponses &&
        roll(cfg_.delayResponseProb)) {
        ++delayedResponses_;
        delay = cfg_.responseDelay;
        log_.push_back({"delay-response", now, req.line, req.smId});
        return Action::Delay;
    }
    return Action::None;
}

bool
FaultInjector::issueFrozen(uint32_t sm_id, Cycle now) const
{
    if (cfg_.freezeSm == FaultConfig::kNoSm || sm_id != cfg_.freezeSm) {
        return false;
    }
    if (now < cfg_.freezeAtCycle) {
        return false;
    }
    return cfg_.freezeDuration == 0 ||
           now < cfg_.freezeAtCycle + cfg_.freezeDuration;
}

bool
FaultInjector::corruptNextDependency()
{
    if (cfg_.corruptNthDependency == 0 || dependencyCorrupted_) {
        return false;
    }
    if (++dependenciesSeen_ != cfg_.corruptNthDependency) {
        return false;
    }
    dependencyCorrupted_ = true;
    log_.push_back({"corrupt-dependency", 0, 0, 0});
    return true;
}

} // namespace integrity
} // namespace crisp
