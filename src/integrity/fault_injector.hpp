#ifndef CRISP_INTEGRITY_FAULT_INJECTOR_HPP
#define CRISP_INTEGRITY_FAULT_INJECTOR_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "mem/fault_hook.hpp"

namespace crisp
{
namespace integrity
{

/**
 * Configuration of the deterministic fault injector.
 *
 * Each fault class mirrors a real simulator-bug family:
 *  - dropped DRAM fills  -> leaked L2 MSHR entries (lost fill bug);
 *  - dropped responses   -> orphaned L1 MSHR entries / load trackers
 *                           (lost wakeup bug);
 *  - delayed fills/responses -> latency spikes that must NOT trip any
 *                           detector (false-positive regression guard);
 *  - frozen SM issue     -> a core that silently stops committing;
 *  - corrupted dependency-> a stream whose front kernel waits on an id
 *                           that can never complete.
 *
 * Probabilistic faults draw from a seeded xoshiro Rng, so every run is
 * reproducible bit-for-bit; max counts allow "exactly one fault" tests.
 */
struct FaultConfig
{
    uint64_t seed = 0x5eedull;

    /** Probability a returning DRAM fill is dropped (L2 MSHR leak). */
    double dropFillProb = 0.0;
    uint32_t maxDroppedFills = 1;

    /** Probability a returning DRAM fill is delayed by fillDelay. */
    double delayFillProb = 0.0;
    Cycle fillDelay = 1000;
    uint32_t maxDelayedFills = ~0u;

    /** Probability a due SM response is dropped (conservation breach). */
    double dropResponseProb = 0.0;
    uint32_t maxDroppedResponses = 1;

    /** Probability a due SM response is delayed by responseDelay. */
    double delayResponseProb = 0.0;
    Cycle responseDelay = 1000;
    uint32_t maxDelayedResponses = ~0u;

    /** Freeze this SM's issue stage from freezeAtCycle on. */
    static constexpr uint32_t kNoSm = ~0u;
    uint32_t freezeSm = kNoSm;
    Cycle freezeAtCycle = 0;
    Cycle freezeDuration = 0;    ///< 0 = frozen forever.

    /**
     * Corrupt the Nth dependency id seen at enqueue time (1-based; 0 =
     * never). The corrupted id is one that was never enqueued, so the
     * stream-liveness checker must report the kernel as permanently stuck.
     */
    uint32_t corruptNthDependency = 0;
};

/**
 * Deterministic fault injector: implements the memory-system fault hook
 * and exposes the issue-freeze and dependency-corruption faults for the
 * Gpu to consult. Keeps a log of every injected fault so tests can
 * correlate detections with injections.
 */
class FaultInjector : public MemFaultHook
{
  public:
    explicit FaultInjector(const FaultConfig &cfg);

    // MemFaultHook
    Action onDramFill(const MemRequest &req, Cycle now,
                      Cycle &delay) override;
    Action onResponse(const MemRequest &req, Cycle now,
                      Cycle &delay) override;

    /** True when @p sm_id's issue stage is frozen at @p now. */
    bool issueFrozen(uint32_t sm_id, Cycle now) const;

    /**
     * Called by the Gpu for every enqueued dependency; true when this one
     * must be corrupted (counts calls, fires on the Nth).
     */
    bool corruptNextDependency();

    /** A sentinel kernel id guaranteed never to be enqueued. */
    static constexpr KernelId kCorruptDependencyId = 0x7fffffffu;

    struct Injection
    {
        std::string kind;    ///< "drop-fill", "delay-response", ...
        Cycle cycle = 0;
        Addr line = 0;
        uint32_t smId = 0;
    };
    const std::vector<Injection> &injections() const { return log_; }

    const FaultConfig &config() const { return cfg_; }

  private:
    bool roll(double prob);

    FaultConfig cfg_;
    Rng rng_;
    uint32_t droppedFills_ = 0;
    uint32_t delayedFills_ = 0;
    uint32_t droppedResponses_ = 0;
    uint32_t delayedResponses_ = 0;
    uint32_t dependenciesSeen_ = 0;
    bool dependencyCorrupted_ = false;
    std::vector<Injection> log_;
};

} // namespace integrity
} // namespace crisp

#endif // CRISP_INTEGRITY_FAULT_INJECTOR_HPP
