#ifndef CRISP_GRAPHICS_SAMPLER_HPP
#define CRISP_GRAPHICS_SAMPLER_HPP

#include <vector>

#include "graphics/texture.hpp"
#include "graphics/vec.hpp"

namespace crisp
{

/** Texture filtering mode. */
enum class TexFilter : uint8_t
{
    Nearest,
    Bilinear,
    /** Bilinear on the two nearest mip levels, blended by fractional LoD. */
    Trilinear,
};

/**
 * Texture unit model: mipmap level selection and texel address generation.
 *
 * LoD is computed from the screen-space texture coordinate derivatives
 * (ddx, ddy) that the rasterizer pre-computes per fragment (§III): the
 * texture unit looks the value up instead of deriving it from quads at
 * execution time. With LoD disabled the unit always references level 0,
 * which is the configuration the paper's Fig 9 uses as the broken baseline.
 */
class Sampler
{
  public:
    /**
     * Level-of-detail from UV derivatives.
     * @param duvdx d(uv)/dx in normalized coordinates per pixel
     * @param duvdy d(uv)/dy in normalized coordinates per pixel
     * @return fractional LoD, clamped to >= 0
     */
    static float computeLod(const Texture2D &tex, const Vec2 &duvdx,
                            const Vec2 &duvdy);

    /**
     * Byte addresses touched by one sample (1 texel for nearest, up to 4
     * for bilinear). Duplicates are *not* removed here; the texture unit
     * merges them when the warp's accesses are coalesced.
     */
    static void footprint(const Texture2D &tex, const Vec2 &uv, float lod,
                          uint32_t layer, TexFilter filter,
                          std::vector<Addr> &out);

    /** Functional sample used when rendering actual images. */
    static Texel sample(const Texture2D &tex, const Vec2 &uv, float lod,
                        uint32_t layer, TexFilter filter);

    /** Integer mip level for a fractional LoD (nearest-level policy). */
    static uint32_t selectLevel(const Texture2D &tex, float lod);
};

} // namespace crisp

#endif // CRISP_GRAPHICS_SAMPLER_HPP
