#include "graphics/mesh.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace crisp
{

Mesh::Mesh(std::string name, std::vector<Vertex> vertices,
           std::vector<uint32_t> indices, AddressSpace &heap)
    : name_(std::move(name)),
      vertices_(std::move(vertices)),
      indices_(std::move(indices))
{
    fatal_if(indices_.size() % 3 != 0, "mesh %s index count not a multiple "
             "of 3", name_.c_str());
    for (uint32_t idx : indices_) {
        fatal_if(idx >= vertices_.size(), "mesh %s index out of range",
                 name_.c_str());
    }
    vbAddr_ = heap.alloc(static_cast<uint64_t>(vertices_.size()) *
                         Vertex::kStrideBytes);
    ibAddr_ = heap.alloc(4ull * indices_.size());
}

Mesh
Mesh::deformed(const std::string &name, const Mesh &src, float time,
               float amplitude, float frequency, AddressSpace &heap)
{
    std::vector<Vertex> verts = src.vertices();
    for (Vertex &v : verts) {
        const float phase = frequency *
            (v.position.x + v.position.y + v.position.z) + time;
        const float d = amplitude * std::sin(phase);
        v.position.x += v.normal.x * d;
        v.position.y += v.normal.y * d;
        v.position.z += v.normal.z * d;
    }
    return Mesh(name, std::move(verts), src.indices(), heap);
}

Mesh
Mesh::makePlane(const std::string &name, uint32_t n, float size,
                float uv_tile, AddressSpace &heap)
{
    fatal_if(n == 0, "plane needs at least one quad");
    std::vector<Vertex> verts;
    std::vector<uint32_t> idx;
    const float step = size / static_cast<float>(n);
    for (uint32_t z = 0; z <= n; ++z) {
        for (uint32_t x = 0; x <= n; ++x) {
            Vertex v;
            v.position = {x * step - size / 2, 0.0f, z * step - size / 2};
            v.normal = {0.0f, 1.0f, 0.0f};
            v.uv = {uv_tile * x / n, uv_tile * z / n};
            verts.push_back(v);
        }
    }
    const uint32_t pitch = n + 1;
    for (uint32_t z = 0; z < n; ++z) {
        for (uint32_t x = 0; x < n; ++x) {
            const uint32_t a = z * pitch + x;
            idx.insert(idx.end(), {a, a + 1, a + pitch});
            idx.insert(idx.end(), {a + 1, a + pitch + 1, a + pitch});
        }
    }
    return Mesh(name, std::move(verts), std::move(idx), heap);
}

Mesh
Mesh::makeSphere(const std::string &name, uint32_t stacks, uint32_t slices,
                 float radius, AddressSpace &heap)
{
    fatal_if(stacks < 2 || slices < 3, "sphere tessellation too coarse");
    std::vector<Vertex> verts;
    std::vector<uint32_t> idx;
    for (uint32_t s = 0; s <= stacks; ++s) {
        const float phi = M_PI * s / stacks;
        for (uint32_t t = 0; t <= slices; ++t) {
            const float theta = 2.0f * M_PI * t / slices;
            Vertex v;
            v.normal = {std::sin(phi) * std::cos(theta), std::cos(phi),
                        std::sin(phi) * std::sin(theta)};
            v.position = v.normal * radius;
            v.uv = {static_cast<float>(t) / slices,
                    static_cast<float>(s) / stacks};
            verts.push_back(v);
        }
    }
    const uint32_t pitch = slices + 1;
    for (uint32_t s = 0; s < stacks; ++s) {
        for (uint32_t t = 0; t < slices; ++t) {
            const uint32_t a = s * pitch + t;
            idx.insert(idx.end(), {a, a + pitch, a + 1});
            idx.insert(idx.end(), {a + 1, a + pitch, a + pitch + 1});
        }
    }
    return Mesh(name, std::move(verts), std::move(idx), heap);
}

Mesh
Mesh::makeBox(const std::string &name, const Vec3 &extent, AddressSpace &heap,
              float uv_tile)
{
    std::vector<Vertex> verts;
    std::vector<uint32_t> idx;
    const Vec3 h = extent * 0.5f;
    const Vec3 normals[6] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0},
                             {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
    for (const Vec3 &nrm : normals) {
        // Build a tangent frame per face.
        const Vec3 up = std::fabs(nrm.y) > 0.9f ? Vec3{1, 0, 0}
                                                : Vec3{0, 1, 0};
        const Vec3 tan = nrm.cross(up).normalized();
        const Vec3 bit = nrm.cross(tan);
        const uint32_t base = static_cast<uint32_t>(verts.size());
        for (int i = 0; i < 4; ++i) {
            const float su = (i == 1 || i == 2) ? 1.0f : -1.0f;
            const float sv = (i >= 2) ? 1.0f : -1.0f;
            Vertex v;
            v.position = Vec3{nrm.x * h.x, nrm.y * h.y, nrm.z * h.z} +
                         Vec3{tan.x * h.x, tan.y * h.y, tan.z * h.z} * su +
                         Vec3{bit.x * h.x, bit.y * h.y, bit.z * h.z} * sv;
            v.normal = nrm;
            v.uv = {uv_tile * (su + 1) / 2, uv_tile * (sv + 1) / 2};
            verts.push_back(v);
        }
        idx.insert(idx.end(),
                   {base, base + 1, base + 2, base, base + 2, base + 3});
    }
    return Mesh(name, std::move(verts), std::move(idx), heap);
}

Mesh
Mesh::makeCylinder(const std::string &name, uint32_t slices, float radius,
                   float height, AddressSpace &heap, float uv_tile)
{
    fatal_if(slices < 3, "cylinder tessellation too coarse");
    std::vector<Vertex> verts;
    std::vector<uint32_t> idx;
    for (uint32_t ring = 0; ring <= 1; ++ring) {
        for (uint32_t t = 0; t <= slices; ++t) {
            const float theta = 2.0f * M_PI * t / slices;
            Vertex v;
            v.normal = {std::cos(theta), 0.0f, std::sin(theta)};
            v.position = {radius * v.normal.x, ring * height,
                          radius * v.normal.z};
            v.uv = {uv_tile * t / slices,
                    uv_tile * 0.5f * static_cast<float>(ring)};
            verts.push_back(v);
        }
    }
    const uint32_t pitch = slices + 1;
    for (uint32_t t = 0; t < slices; ++t) {
        idx.insert(idx.end(), {t, t + pitch, t + 1});
        idx.insert(idx.end(), {t + 1, t + pitch, t + pitch + 1});
    }
    return Mesh(name, std::move(verts), std::move(idx), heap);
}

Mesh
Mesh::makeRock(const std::string &name, uint32_t stacks, uint32_t slices,
               float radius, uint64_t seed, AddressSpace &heap)
{
    Mesh sphere = makeSphere(name, stacks, slices, radius, heap);
    // Perturb radially with deterministic noise; keep the shared heap
    // allocation from the sphere constructor.
    Rng rng(seed);
    std::vector<Vertex> verts = sphere.vertices_;
    // Seam vertices (first/last slice column) must stay matched, so perturb
    // by a hash of the normal direction rather than per-vertex randomness.
    for (auto &v : verts) {
        const float a = v.normal.x * 12.9898f + v.normal.y * 78.233f +
                        v.normal.z * 37.719f +
                        static_cast<float>(rng.nextDouble() * 0.0);
        const float noise = std::fabs(std::sin(a * 43758.5453f));
        const float scale = 0.75f + 0.5f * noise;
        v.position = v.normal * (radius * scale);
    }
    sphere.vertices_ = std::move(verts);
    return sphere;
}

} // namespace crisp
