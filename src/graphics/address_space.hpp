#ifndef CRISP_GRAPHICS_ADDRESS_SPACE_HPP
#define CRISP_GRAPHICS_ADDRESS_SPACE_HPP

#include "common/types.hpp"

namespace crisp
{

/**
 * Bump allocator for the simulated GPU's global address space.
 *
 * The trace-driven model needs every resource (textures, vertex buffers,
 * framebuffers, compute arrays, inter-stage pipeline buffers) to live at a
 * distinct global address so the cache hierarchy sees realistic conflict
 * and reuse behaviour. Nothing is ever freed: a simulation allocates its
 * working set once, like a resident Vulkan device heap.
 */
class AddressSpace
{
  public:
    /** @param base first byte of the device heap */
    explicit AddressSpace(Addr base = 0x1000'0000ull) : next_(base) {}

    /** Allocate @p bytes aligned to @p align (power of two). */
    Addr
    alloc(uint64_t bytes, uint64_t align = kLineBytes)
    {
        next_ = (next_ + align - 1) & ~(align - 1);
        const Addr out = next_;
        next_ += bytes;
        return out;
    }

    Addr allocatedEnd() const { return next_; }

  private:
    Addr next_;
};

} // namespace crisp

#endif // CRISP_GRAPHICS_ADDRESS_SPACE_HPP
