#ifndef CRISP_GRAPHICS_RASTER_HPP
#define CRISP_GRAPHICS_RASTER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "graphics/framebuffer.hpp"
#include "graphics/vec.hpp"

namespace crisp
{

/**
 * A shaded sample produced by the rasterizer.
 *
 * The texture-coordinate derivatives (ddx, ddy) are computed here, during
 * rasterization, and later looked up by the texture unit for mip selection
 * — the paper's approach to LoD without strict quad execution (§III).
 */
struct Fragment
{
    uint16_t x = 0;
    uint16_t y = 0;
    float depth = 0.0f;
    Vec2 uv;
    Vec2 duvdx;
    Vec2 duvdy;
    uint32_t tri = 0;     ///< Drawcall-local triangle id (attribute fetch).
    uint32_t layer = 0;   ///< Texture array layer (instanced draws).
};

/** Fragments binned to one screen tile. */
struct TileBin
{
    uint32_t tileX = 0;
    uint32_t tileY = 0;
    std::vector<Fragment> frags;
};

/** Counters over one drawcall's rasterization. */
struct RasterStats
{
    uint64_t trisSubmitted = 0;
    uint64_t trisCulledFrustum = 0;
    uint64_t trisCulledBackface = 0;
    uint64_t trisCulledDegenerate = 0;
    uint64_t fragsGenerated = 0;
    uint64_t fragsEarlyZKilled = 0;
};

/**
 * Tiled rasterizer with early-Z.
 *
 * Implements the fixed-function stages 4-5 of the modeled pipeline (Fig 2):
 * clip-space culling, screen mapping, edge-function coverage at pixel
 * centers, perspective-correct attribute interpolation, early depth test
 * against the framebuffer, analytic LoD derivatives, and binning into
 * screen tiles (Immediate Tiled Rendering). Pixels are visited in 2x2 quad
 * order so warps formed from consecutive fragments contain whole quads.
 */
class Rasterizer
{
  public:
    /** @param tile_size square tile edge in pixels */
    Rasterizer(Framebuffer &fb, uint32_t tile_size = 16);

    /**
     * Rasterize one triangle given clip-space positions and per-vertex uv.
     * Fragments that survive early-Z are appended to the tile bins.
     */
    void submit(const Vec4 clip[3], const Vec2 uv[3], uint32_t tri_id,
                uint32_t layer);

    /** Bins with at least one fragment, in tile raster order. */
    std::vector<TileBin> takeBins();

    const RasterStats &stats() const { return stats_; }
    uint32_t tileSize() const { return tileSize_; }
    uint32_t tilesX() const { return tilesX_; }
    uint32_t tilesY() const { return tilesY_; }

  private:
    Framebuffer &fb_;
    uint32_t tileSize_;
    uint32_t tilesX_;
    uint32_t tilesY_;
    RasterStats stats_;
    std::map<uint32_t, TileBin> bins_;  // tile index -> bin
};

} // namespace crisp

#endif // CRISP_GRAPHICS_RASTER_HPP
