#include "graphics/raster.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace crisp
{

Rasterizer::Rasterizer(Framebuffer &fb, uint32_t tile_size)
    : fb_(fb), tileSize_(tile_size)
{
    fatal_if(tile_size == 0, "tile size must be positive");
    tilesX_ = (fb.width() + tile_size - 1) / tile_size;
    tilesY_ = (fb.height() + tile_size - 1) / tile_size;
}

void
Rasterizer::submit(const Vec4 clip[3], const Vec2 uv[3], uint32_t tri_id,
                   uint32_t layer)
{
    stats_.trisSubmitted++;

    // Near-plane and frustum culling. Triangles that straddle the near
    // plane are dropped rather than clipped; evaluation scenes keep
    // geometry in front of the camera so this loses nothing in practice.
    for (int i = 0; i < 3; ++i) {
        if (clip[i].w <= 1e-5f) {
            stats_.trisCulledFrustum++;
            return;
        }
    }
    auto outside = [&](auto pred) {
        return pred(clip[0]) && pred(clip[1]) && pred(clip[2]);
    };
    if (outside([](const Vec4 &v) { return v.x < -v.w; }) ||
        outside([](const Vec4 &v) { return v.x > v.w; }) ||
        outside([](const Vec4 &v) { return v.y < -v.w; }) ||
        outside([](const Vec4 &v) { return v.y > v.w; }) ||
        outside([](const Vec4 &v) { return v.z < 0.0f; }) ||
        outside([](const Vec4 &v) { return v.z > v.w; })) {
        stats_.trisCulledFrustum++;
        return;
    }

    // Screen mapping (y down).
    const float w = static_cast<float>(fb_.width());
    const float h = static_cast<float>(fb_.height());
    Vec2 p[3];
    float zndc[3];
    float invw[3];
    for (int i = 0; i < 3; ++i) {
        invw[i] = 1.0f / clip[i].w;
        p[i].x = (clip[i].x * invw[i] * 0.5f + 0.5f) * w;
        p[i].y = (0.5f - clip[i].y * invw[i] * 0.5f) * h;
        zndc[i] = clip[i].z * invw[i];
    }

    // Signed area; back-face cull. Vulkan's default front face is
    // counter-clockwise in framebuffer coordinates (y down), which is a
    // positive signed area here.
    const float area = (p[1].x - p[0].x) * (p[2].y - p[0].y) -
                       (p[2].x - p[0].x) * (p[1].y - p[0].y);
    if (std::fabs(area) < 1e-8f) {
        stats_.trisCulledDegenerate++;
        return;
    }
    if (area < 0.0f) {
        stats_.trisCulledBackface++;
        return;
    }
    const float inv_area = 1.0f / area;

    // Barycentric coordinates are affine in screen space:
    // lambda_i(x, y) = li_a + li_b * x + li_c * y.
    float lb[3];
    float lc[3];
    float la[3];
    for (int i = 0; i < 3; ++i) {
        const Vec2 &q = p[(i + 1) % 3];
        const Vec2 &r = p[(i + 2) % 3];
        lb[i] = (q.y - r.y) * inv_area;
        lc[i] = (r.x - q.x) * inv_area;
        la[i] = (q.x * r.y - r.x * q.y) * inv_area;
    }

    auto interpolate = [&](float x, float y, Vec2 &out_uv,
                           float &out_z) {
        float lam[3];
        for (int i = 0; i < 3; ++i) {
            lam[i] = la[i] + lb[i] * x + lc[i] * y;
        }
        // Perspective-correct uv; affine depth.
        const float denom =
            lam[0] * invw[0] + lam[1] * invw[1] + lam[2] * invw[2];
        const float inv_denom = denom != 0.0f ? 1.0f / denom : 0.0f;
        out_uv.x = (lam[0] * invw[0] * uv[0].x + lam[1] * invw[1] * uv[1].x +
                    lam[2] * invw[2] * uv[2].x) *
                   inv_denom;
        out_uv.y = (lam[0] * invw[0] * uv[0].y + lam[1] * invw[1] * uv[1].y +
                    lam[2] * invw[2] * uv[2].y) *
                   inv_denom;
        out_z = lam[0] * zndc[0] + lam[1] * zndc[1] + lam[2] * zndc[2];
    };

    // Pixel bounding box clamped to the screen.
    const float min_xf = std::min({p[0].x, p[1].x, p[2].x});
    const float max_xf = std::max({p[0].x, p[1].x, p[2].x});
    const float min_yf = std::min({p[0].y, p[1].y, p[2].y});
    const float max_yf = std::max({p[0].y, p[1].y, p[2].y});
    const int32_t min_x = std::max(0, static_cast<int32_t>(min_xf));
    const int32_t max_x = std::min(static_cast<int32_t>(fb_.width()) - 1,
                                   static_cast<int32_t>(max_xf));
    const int32_t min_y = std::max(0, static_cast<int32_t>(min_yf));
    const int32_t max_y = std::min(static_cast<int32_t>(fb_.height()) - 1,
                                   static_cast<int32_t>(max_yf));
    if (min_x > max_x || min_y > max_y) {
        stats_.trisCulledFrustum++;
        return;
    }

    // Visit in 2x2 quad order so consecutive fragments form quads.
    const int32_t qminx = min_x & ~1;
    const int32_t qminy = min_y & ~1;
    for (int32_t qy = qminy; qy <= max_y; qy += 2) {
        for (int32_t qx = qminx; qx <= max_x; qx += 2) {
            for (int32_t sub = 0; sub < 4; ++sub) {
                const int32_t x = qx + (sub & 1);
                const int32_t y = qy + (sub >> 1);
                if (x < min_x || x > max_x || y < min_y || y > max_y) {
                    continue;
                }
                const float cx = static_cast<float>(x) + 0.5f;
                const float cy = static_cast<float>(y) + 0.5f;
                float lam[3];
                bool inside = true;
                for (int i = 0; i < 3; ++i) {
                    lam[i] = la[i] + lb[i] * cx + lc[i] * cy;
                    if (lam[i] < 0.0f) {
                        inside = false;
                        break;
                    }
                }
                if (!inside) {
                    continue;
                }
                Vec2 f_uv;
                float f_z;
                interpolate(cx, cy, f_uv, f_z);
                stats_.fragsGenerated++;
                if (!fb_.depthTestAndSet(static_cast<uint32_t>(x),
                                         static_cast<uint32_t>(y), f_z)) {
                    stats_.fragsEarlyZKilled++;
                    continue;
                }
                // Analytic derivatives for LoD: evaluate uv one pixel to
                // the right and below.
                Vec2 uv_dx;
                Vec2 uv_dy;
                float dummy;
                interpolate(cx + 1.0f, cy, uv_dx, dummy);
                interpolate(cx, cy + 1.0f, uv_dy, dummy);

                Fragment frag;
                frag.x = static_cast<uint16_t>(x);
                frag.y = static_cast<uint16_t>(y);
                frag.depth = f_z;
                frag.uv = f_uv;
                frag.duvdx = uv_dx - f_uv;
                frag.duvdy = uv_dy - f_uv;
                frag.tri = tri_id;
                frag.layer = layer;

                const uint32_t tile_index =
                    (static_cast<uint32_t>(y) / tileSize_) * tilesX_ +
                    static_cast<uint32_t>(x) / tileSize_;
                TileBin &bin = bins_[tile_index];
                bin.tileX = static_cast<uint32_t>(x) / tileSize_;
                bin.tileY = static_cast<uint32_t>(y) / tileSize_;
                bin.frags.push_back(frag);
            }
        }
    }
}

std::vector<TileBin>
Rasterizer::takeBins()
{
    std::vector<TileBin> out;
    out.reserve(bins_.size());
    for (auto &[index, bin] : bins_) {
        out.push_back(std::move(bin));
    }
    bins_.clear();
    return out;
}

} // namespace crisp
