#include "graphics/framebuffer.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/logging.hpp"

namespace crisp
{

Framebuffer::Framebuffer(uint32_t width, uint32_t height, AddressSpace &heap)
    : width_(width), height_(height)
{
    fatal_if(width == 0 || height == 0, "framebuffer with zero dimension");
    colorBase_ = heap.alloc(4ull * width * height);
    depthBase_ = heap.alloc(4ull * width * height);
    color_.resize(4ull * width * height);
    depth_.resize(static_cast<size_t>(width) * height);
    clear();
}

void
Framebuffer::clear(const Texel &c)
{
    for (size_t i = 0; i < depth_.size(); ++i) {
        depth_[i] = 1.0f;
        color_[4 * i + 0] = static_cast<uint8_t>(c.r * 255.0f);
        color_[4 * i + 1] = static_cast<uint8_t>(c.g * 255.0f);
        color_[4 * i + 2] = static_cast<uint8_t>(c.b * 255.0f);
        color_[4 * i + 3] = static_cast<uint8_t>(c.a * 255.0f);
    }
}

bool
Framebuffer::depthTestAndSet(uint32_t x, uint32_t y, float depth)
{
    panic_if(x >= width_ || y >= height_, "depth test out of bounds");
    float &d = depth_[static_cast<size_t>(y) * width_ + x];
    if (depth < d) {
        d = depth;
        return true;
    }
    return false;
}

float
Framebuffer::depthAt(uint32_t x, uint32_t y) const
{
    panic_if(x >= width_ || y >= height_, "depth read out of bounds");
    return depth_[static_cast<size_t>(y) * width_ + x];
}

void
Framebuffer::writeColor(uint32_t x, uint32_t y, const Texel &c)
{
    panic_if(x >= width_ || y >= height_, "color write out of bounds");
    const size_t i = (static_cast<size_t>(y) * width_ + x) * 4;
    color_[i + 0] = static_cast<uint8_t>(std::clamp(c.r, 0.0f, 1.0f) * 255);
    color_[i + 1] = static_cast<uint8_t>(std::clamp(c.g, 0.0f, 1.0f) * 255);
    color_[i + 2] = static_cast<uint8_t>(std::clamp(c.b, 0.0f, 1.0f) * 255);
    color_[i + 3] = static_cast<uint8_t>(std::clamp(c.a, 0.0f, 1.0f) * 255);
}

Texel
Framebuffer::colorAt(uint32_t x, uint32_t y) const
{
    panic_if(x >= width_ || y >= height_, "color read out of bounds");
    const size_t i = (static_cast<size_t>(y) * width_ + x) * 4;
    return {color_[i] / 255.0f, color_[i + 1] / 255.0f,
            color_[i + 2] / 255.0f, color_[i + 3] / 255.0f};
}

Addr
Framebuffer::colorAddr(uint32_t x, uint32_t y) const
{
    return colorBase_ + 4ull * (static_cast<Addr>(y) * width_ + x);
}

Addr
Framebuffer::depthAddr(uint32_t x, uint32_t y) const
{
    return depthBase_ + 4ull * (static_cast<Addr>(y) * width_ + x);
}

bool
Framebuffer::writePpm(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f) {
        warn("cannot write PPM to %s", path.c_str());
        return false;
    }
    f << "P6\n" << width_ << " " << height_ << "\n255\n";
    for (size_t i = 0; i < depth_.size(); ++i) {
        f.put(static_cast<char>(color_[4 * i]));
        f.put(static_cast<char>(color_[4 * i + 1]));
        f.put(static_cast<char>(color_[4 * i + 2]));
    }
    return static_cast<bool>(f);
}

double
Framebuffer::diff(const Framebuffer &other) const
{
    panic_if(width_ != other.width_ || height_ != other.height_,
             "framebuffer size mismatch in diff");
    uint64_t total = 0;
    for (size_t i = 0; i < color_.size(); ++i) {
        total += static_cast<uint64_t>(
            std::abs(static_cast<int>(color_[i]) -
                     static_cast<int>(other.color_[i])));
    }
    return static_cast<double>(total) / static_cast<double>(color_.size());
}

} // namespace crisp
