#include "graphics/sampler.hpp"

#include <algorithm>
#include <cmath>

namespace crisp
{

float
Sampler::computeLod(const Texture2D &tex, const Vec2 &duvdx,
                    const Vec2 &duvdy)
{
    // Scale derivatives into texel space of the base level.
    const float w = static_cast<float>(tex.width());
    const float h = static_cast<float>(tex.height());
    const float lx = duvdx.x * w;
    const float ly = duvdx.y * h;
    const float rx = duvdy.x * w;
    const float ry = duvdy.y * h;
    const float len_x = std::sqrt(lx * lx + ly * ly);
    const float len_y = std::sqrt(rx * rx + ry * ry);
    const float rho = std::max(len_x, len_y);
    if (rho <= 1.0f) {
        return 0.0f;
    }
    return std::log2(rho);
}

uint32_t
Sampler::selectLevel(const Texture2D &tex, float lod)
{
    const float clamped = std::clamp(
        lod, 0.0f, static_cast<float>(tex.numLevels() - 1));
    return static_cast<uint32_t>(clamped + 0.5f) >= tex.numLevels()
        ? tex.numLevels() - 1
        : static_cast<uint32_t>(clamped + 0.5f);
}

namespace
{

/** Convert normalized uv to integer texel coords at a level (wrap). */
void
texelCoords(const Texture2D &tex, uint32_t level, const Vec2 &uv,
            int32_t &x, int32_t &y, float &fx, float &fy)
{
    const float w = static_cast<float>(tex.levelWidth(level));
    const float h = static_cast<float>(tex.levelHeight(level));
    // Texel centers at (i + 0.5) / dim.
    const float sx = uv.x * w - 0.5f;
    const float sy = uv.y * h - 0.5f;
    x = static_cast<int32_t>(std::floor(sx));
    y = static_cast<int32_t>(std::floor(sy));
    fx = sx - static_cast<float>(x);
    fy = sy - static_cast<float>(y);
}

int32_t
wrap(int32_t v, int32_t dim)
{
    return ((v % dim) + dim) % dim;
}

} // namespace

namespace
{

/** Append the four bilinear corner addresses at one level. */
void
bilinearCorners(const Texture2D &tex, uint32_t level, const Vec2 &uv,
                uint32_t layer, std::vector<Addr> &out)
{
    const int32_t w = static_cast<int32_t>(tex.levelWidth(level));
    const int32_t h = static_cast<int32_t>(tex.levelHeight(level));
    int32_t x;
    int32_t y;
    float fx;
    float fy;
    texelCoords(tex, level, uv, x, y, fx, fy);
    for (int32_t dy = 0; dy < 2; ++dy) {
        for (int32_t dx = 0; dx < 2; ++dx) {
            out.push_back(tex.texelAddr(level, layer, wrap(x + dx, w),
                                        wrap(y + dy, h)));
        }
    }
}

} // namespace

void
Sampler::footprint(const Texture2D &tex, const Vec2 &uv, float lod,
                   uint32_t layer, TexFilter filter, std::vector<Addr> &out)
{
    if (filter == TexFilter::Trilinear) {
        // Two bilinear footprints on the straddling levels (the upper one
        // clamps at the top of the chain, duplicating the lower's size so
        // callers always see eight addresses).
        const float clamped = std::clamp(
            lod, 0.0f, static_cast<float>(tex.numLevels() - 1));
        const uint32_t lo = static_cast<uint32_t>(clamped);
        const uint32_t hi = std::min(lo + 1, tex.numLevels() - 1);
        bilinearCorners(tex, lo, uv, layer, out);
        bilinearCorners(tex, hi, uv, layer, out);
        return;
    }
    const uint32_t level = selectLevel(tex, lod);
    if (filter == TexFilter::Nearest) {
        const int32_t w = static_cast<int32_t>(tex.levelWidth(level));
        const int32_t h = static_cast<int32_t>(tex.levelHeight(level));
        int32_t x;
        int32_t y;
        float fx;
        float fy;
        texelCoords(tex, level, uv, x, y, fx, fy);
        const int32_t nx = wrap(x + (fx >= 0.5f ? 1 : 0), w);
        const int32_t ny = wrap(y + (fy >= 0.5f ? 1 : 0), h);
        out.push_back(tex.texelAddr(level, layer, nx, ny));
        return;
    }
    bilinearCorners(tex, level, uv, layer, out);
}

Texel
Sampler::sample(const Texture2D &tex, const Vec2 &uv, float lod,
                uint32_t layer, TexFilter filter)
{
    if (filter == TexFilter::Trilinear) {
        const float clamped = std::clamp(
            lod, 0.0f, static_cast<float>(tex.numLevels() - 1));
        const uint32_t lo = static_cast<uint32_t>(clamped);
        const uint32_t hi = std::min(lo + 1, tex.numLevels() - 1);
        const float frac = clamped - static_cast<float>(lo);
        const Texel a = sample(tex, uv, static_cast<float>(lo), layer,
                               TexFilter::Bilinear);
        const Texel b = sample(tex, uv, static_cast<float>(hi), layer,
                               TexFilter::Bilinear);
        Texel out;
        out.r = a.r + (b.r - a.r) * frac;
        out.g = a.g + (b.g - a.g) * frac;
        out.b = a.b + (b.b - a.b) * frac;
        out.a = a.a + (b.a - a.a) * frac;
        return out;
    }
    const uint32_t level = selectLevel(tex, lod);
    const int32_t w = static_cast<int32_t>(tex.levelWidth(level));
    const int32_t h = static_cast<int32_t>(tex.levelHeight(level));
    int32_t x;
    int32_t y;
    float fx;
    float fy;
    texelCoords(tex, level, uv, x, y, fx, fy);

    if (filter == TexFilter::Nearest) {
        return tex.fetch(level, layer, x + (fx >= 0.5f ? 1 : 0),
                         y + (fy >= 0.5f ? 1 : 0));
    }
    const Texel t00 = tex.fetch(level, layer, x, y);
    const Texel t10 = tex.fetch(level, layer, x + 1, y);
    const Texel t01 = tex.fetch(level, layer, x, y + 1);
    const Texel t11 = tex.fetch(level, layer, x + 1, y + 1);
    auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
    Texel out;
    out.r = lerp(lerp(t00.r, t10.r, fx), lerp(t01.r, t11.r, fx), fy);
    out.g = lerp(lerp(t00.g, t10.g, fx), lerp(t01.g, t11.g, fx), fy);
    out.b = lerp(lerp(t00.b, t10.b, fx), lerp(t01.b, t11.b, fx), fy);
    out.a = lerp(lerp(t00.a, t10.a, fx), lerp(t01.a, t11.a, fx), fy);
    (void)w;
    (void)h;
    return out;
}

} // namespace crisp
