#include "graphics/batching.hpp"

#include <unordered_map>

#include "common/logging.hpp"

namespace crisp
{

std::vector<VertexBatch>
buildVertexBatches(const std::vector<uint32_t> &indices, uint32_t batch_size)
{
    fatal_if(batch_size < 3, "batch size must fit at least one triangle");
    panic_if(indices.size() % 3 != 0, "index count not a multiple of 3");

    std::vector<VertexBatch> batches;
    VertexBatch current;
    std::unordered_map<uint32_t, uint32_t> slot;  // mesh index -> batch slot
    slot.reserve(batch_size * 2);

    auto flush = [&]() {
        if (!current.tris.empty()) {
            batches.push_back(std::move(current));
        }
        current = VertexBatch{};
        slot.clear();
    };

    for (size_t i = 0; i + 2 < indices.size(); i += 3) {
        const uint32_t tri[3] = {indices[i], indices[i + 1], indices[i + 2]};
        // Count new unique vertices this triangle would add (repeated
        // vertices within a degenerate triangle count once).
        uint32_t fresh = 0;
        for (int k = 0; k < 3; ++k) {
            bool seen = slot.count(tri[k]) != 0;
            for (int j = 0; j < k; ++j) {
                if (tri[j] == tri[k]) {
                    seen = true;
                }
            }
            if (!seen) {
                ++fresh;
            }
        }

        if (current.uniqueVerts.size() + fresh > batch_size) {
            flush();
        }
        std::array<uint32_t, 3> local{};
        for (int k = 0; k < 3; ++k) {
            auto it = slot.find(tri[k]);
            if (it == slot.end()) {
                const uint32_t s =
                    static_cast<uint32_t>(current.uniqueVerts.size());
                current.uniqueVerts.push_back(tri[k]);
                current.firstUsePos.push_back(static_cast<uint32_t>(i) + k);
                it = slot.emplace(tri[k], s).first;
            }
            local[k] = it->second;
        }
        current.tris.push_back(local);
    }
    flush();
    return batches;
}

uint64_t
totalVsInvocations(const std::vector<VertexBatch> &batches)
{
    uint64_t total = 0;
    for (const auto &b : batches) {
        total += b.uniqueVerts.size();
    }
    return total;
}

} // namespace crisp
