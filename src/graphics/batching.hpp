#ifndef CRISP_GRAPHICS_BATCHING_HPP
#define CRISP_GRAPHICS_BATCHING_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace crisp
{

/** Default batch capacity; Fig 3 finds 96 matches hardware best. */
inline constexpr uint32_t kDefaultVertexBatchSize = 96;

/**
 * A vertex shading batch.
 *
 * Contemporary GPUs no longer keep a post-transform vertex cache; instead
 * the primitive distributor accumulates triangles into fixed-capacity
 * batches and deduplicates vertex references *within the batch only*
 * (Kerbl et al.; paper §I and Fig 2 stage 2). Each unique slot becomes one
 * vertex shader invocation.
 */
struct VertexBatch
{
    /** Mesh vertex indices in first-use order (one VS invocation each). */
    std::vector<uint32_t> uniqueVerts;
    /** Index-stream position of each unique vertex's first use (the
     * address the primitive distributor fetched it from). */
    std::vector<uint32_t> firstUsePos;
    /** Triangles as positions into uniqueVerts. */
    std::vector<std::array<uint32_t, 3>> tris;
};

/**
 * Split an index stream into vertex batches with in-batch deduplication.
 *
 * A batch closes when admitting the next triangle would exceed
 * @p batch_size unique vertices. A vertex referenced by triangles in two
 * different batches is shaded twice — exactly the redundancy hardware
 * accepts to avoid a global vertex cache.
 */
std::vector<VertexBatch> buildVertexBatches(
    const std::vector<uint32_t> &indices,
    uint32_t batch_size = kDefaultVertexBatchSize);

/** Total VS invocations across batches (Fig 3's y/x axis quantity). */
uint64_t totalVsInvocations(const std::vector<VertexBatch> &batches);

} // namespace crisp

#endif // CRISP_GRAPHICS_BATCHING_HPP
