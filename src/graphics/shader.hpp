#ifndef CRISP_GRAPHICS_SHADER_HPP
#define CRISP_GRAPHICS_SHADER_HPP

#include <cstdint>

#include "graphics/scene.hpp"

namespace crisp
{

/**
 * Instruction-mix description of a shader archetype.
 *
 * The paper obtains shaders through a NIR->PTX translator and maps each PTX
 * instruction to a SASS instruction for the trace (§III). CRISP-as-rebuilt
 * takes the equivalent shortcut one level up: each shader archetype (basic,
 * PBR, vertex transform) is described by its instruction mix, and the
 * emission pass lowers it to trace instructions with exact memory
 * addresses. Counts approximate Mesa-compiled GLSL for the same shaders.
 */
struct ShaderCost
{
    uint32_t fp32Ops = 0;    ///< FFMA/FADD/FMUL count per invocation.
    uint32_t intOps = 0;     ///< Address math and packing.
    uint32_t sfuOps = 0;     ///< Transcendentals (normalize, pow, exp).
    uint32_t registers = 32; ///< Live registers per thread.

    /** Vertex transform: two mat4 multiplies plus uv/normal housekeeping. */
    static ShaderCost vertex();

    /** Fragment cost for a shading model. */
    static ShaderCost fragment(ShaderKind kind);
};

} // namespace crisp

#endif // CRISP_GRAPHICS_SHADER_HPP
