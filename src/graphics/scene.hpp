#ifndef CRISP_GRAPHICS_SCENE_HPP
#define CRISP_GRAPHICS_SCENE_HPP

#include <memory>
#include <string>
#include <vector>

#include "graphics/mesh.hpp"
#include "graphics/sampler.hpp"
#include "graphics/texture.hpp"

namespace crisp
{

/**
 * Shading model of a material.
 *
 * The paper contrasts *basic* shading (one texture per drawcall, e.g. the
 * Khronos Sponza) with *Physically-Based Rendering* (eight maps sampled per
 * fragment, e.g. Pistol and the Godot Sponza); the different texture counts
 * and formats drive the L2-composition differences of Fig 11.
 */
enum class ShaderKind : uint8_t
{
    Basic,  ///< Diffuse texture + simple lambert term.
    Pbr,    ///< 8 maps: irradiance, BRDF LUT, albedo, normal, prefilter,
            ///< ambient occlusion, metallic, roughness.
};

/** Material: shader archetype plus its bound textures. */
struct Material
{
    std::string name;
    ShaderKind kind = ShaderKind::Basic;
    std::vector<const Texture2D *> textures;
    TexFilter filter = TexFilter::Bilinear;

    /** Extra per-fragment ALU work (procedural shading, e.g. Material
     * Testers' generated patterns). */
    uint32_t extraFragmentAlu = 0;
};

/** One draw call: a mesh instance batch with a material and transform. */
struct DrawCall
{
    std::string name;
    const Mesh *mesh = nullptr;
    const Material *material = nullptr;
    Mat4 model = Mat4::identity();

    /**
     * Instanced drawing (the Planets workload): the mesh is drawn once per
     * instance with a per-instance transform and texture array layer, all
     * within a single draw call. Instance data is fetched from a dedicated
     * buffer, giving the streaming access pattern described in §V-A.
     */
    uint32_t instanceCount = 1;
    std::vector<Mat4> instanceModels;      ///< size == instanceCount if > 1
    std::vector<uint32_t> instanceLayers;  ///< texture layer per instance
    Addr instanceBufAddr = 0;
};

/** Camera with precomputed view/projection. */
struct Camera
{
    Mat4 view = Mat4::identity();
    Mat4 proj = Mat4::identity();
    Vec3 eye;
};

/**
 * A renderable scene: resources plus the ordered draw list submitted at the
 * vkQueueSubmit equivalent. The scene owns its meshes, textures and
 * materials so workload factories can hand a self-contained object to the
 * pipeline.
 */
struct Scene
{
    std::string name;
    Camera camera;
    std::vector<DrawCall> draws;

    // Owned resources (stable addresses; DrawCall/Material point into them).
    std::vector<std::unique_ptr<Mesh>> meshes;
    std::vector<std::unique_ptr<Texture2D>> textures;
    std::vector<std::unique_ptr<Material>> materials;

    Mesh *
    addMesh(Mesh mesh)
    {
        meshes.push_back(std::make_unique<Mesh>(std::move(mesh)));
        return meshes.back().get();
    }
    Texture2D *
    addTexture(std::unique_ptr<Texture2D> tex)
    {
        textures.push_back(std::move(tex));
        return textures.back().get();
    }
    Material *
    addMaterial(Material mat)
    {
        materials.push_back(std::make_unique<Material>(std::move(mat)));
        return materials.back().get();
    }
};

} // namespace crisp

#endif // CRISP_GRAPHICS_SCENE_HPP
