#include "graphics/pipeline.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"
#include "graphics/sampler.hpp"
#include "isa/trace_builder.hpp"
#include "telemetry/self_profiler.hpp"

namespace crisp
{

uint64_t
RenderSubmission::totalVsInvocations() const
{
    uint64_t total = 0;
    for (const auto &r : reports) {
        total += r.vsInvocations;
    }
    return total;
}

uint64_t
RenderSubmission::totalFragments() const
{
    uint64_t total = 0;
    for (const auto &r : reports) {
        total += r.fragments;
    }
    return total;
}

namespace
{

/** Fixed key light used by the functional shading of all scenes. */
const Vec3 kLightDir = Vec3{0.45f, 0.8f, 0.35f}.normalized();

/** Per-vertex data after functional vertex shading. */
struct ShadedVertex
{
    Vec4 clip;
    Vec2 uv;
    Vec3 worldNormal;
};

/** Data shared by a drawcall's vertex-shader trace generator. */
struct VsKernelData
{
    std::vector<VertexBatch> batches;
    Addr vbAddr = 0;
    Addr ibAddr = 0;
    Addr attrBase = 0;
    Addr uniformAddr = 0;
    Addr instanceBufAddr = 0;
    uint32_t instanceCount = 1;
    uint32_t batchSize = kDefaultVertexBatchSize;
    ShaderCost cost;

    /** Output slot stride: two 16 B attribute stores per vertex. */
    static constexpr uint32_t kOutStride = 32;

    uint64_t slotsPerInstance() const
    {
        return static_cast<uint64_t>(batches.size()) * batchSize;
    }
};

/** Vertex-shader trace generator: one CTA per (instance, batch). */
class VsCtaGenerator : public CtaGenerator
{
  public:
    explicit VsCtaGenerator(std::shared_ptr<const VsKernelData> data)
        : data_(std::move(data))
    {
    }

    CtaTrace
    generate(uint32_t cta_index) const override
    {
        const VsKernelData &d = *data_;
        const uint32_t n_batches = static_cast<uint32_t>(d.batches.size());
        const uint32_t instance = cta_index / n_batches;
        const uint32_t batch_id = cta_index % n_batches;
        const VertexBatch &batch = d.batches[batch_id];
        const uint64_t slot_base =
            instance * d.slotsPerInstance() +
            static_cast<uint64_t>(batch_id) * d.batchSize;

        CtaTrace cta;
        const uint32_t count =
            static_cast<uint32_t>(batch.uniqueVerts.size());
        for (uint32_t first = 0; first < count; first += kWarpSize) {
            const uint32_t lanes = std::min(kWarpSize, count - first);
            TraceBuilder tb(lanes);

            // Uniforms (combined MVP) through the constant cache.
            tb.memUniform(Opcode::LDC, 1, d.uniformAddr, 16,
                          DataClass::Pipeline);

            // Primitive distributor index fetch (recreated traffic).
            std::vector<Addr> idx_addrs;
            std::vector<Addr> v0_addrs;
            std::vector<Addr> v1_addrs;
            for (uint32_t l = 0; l < lanes; ++l) {
                const uint32_t slot = first + l;
                idx_addrs.push_back(d.ibAddr +
                                    4ull * batch.firstUsePos[slot]);
                const Addr v = d.vbAddr +
                               static_cast<Addr>(batch.uniqueVerts[slot]) *
                                   Vertex::kStrideBytes;
                v0_addrs.push_back(v);
                v1_addrs.push_back(v + 16);
            }
            tb.mem(Opcode::LDG, 2, std::move(idx_addrs), 4,
                   DataClass::Pipeline);
            tb.mem(Opcode::LDG, 3, std::move(v0_addrs), 16,
                   DataClass::Pipeline);
            tb.mem(Opcode::LDG, 4, std::move(v1_addrs), 16,
                   DataClass::Pipeline);

            if (d.instanceCount > 1) {
                // Per-instance transform fetch: streaming pattern unique to
                // instanced draws (Planets, §V-A).
                tb.memUniform(Opcode::LDG, 9,
                              d.instanceBufAddr + 64ull * instance, 16,
                              DataClass::Pipeline);
            }

            // Address math then the transform FMA chains.
            for (uint32_t i = 0; i < d.cost.intOps; ++i) {
                tb.alu(Opcode::IMAD, 5, 2, 1);
            }
            for (uint32_t i = 0; i < d.cost.fp32Ops; ++i) {
                tb.alu(Opcode::FFMA, static_cast<uint8_t>(6 + (i & 1)),
                       (i & 1) ? 3 : 4, 1);
            }

            // Post-transform attributes to the L2-backed attribute buffer
            // (consumed by rasterizers on other SMs).
            std::vector<Addr> o0;
            std::vector<Addr> o1;
            for (uint32_t l = 0; l < lanes; ++l) {
                const Addr out = d.attrBase + (slot_base + first + l) *
                                                  VsKernelData::kOutStride;
                o0.push_back(out);
                o1.push_back(out + 16);
            }
            tb.mem(Opcode::STG, 6, std::move(o0), 16, DataClass::Pipeline);
            tb.mem(Opcode::STG, 7, std::move(o1), 16, DataClass::Pipeline);
            tb.exit();
            cta.warps.push_back(tb.take());
        }
        return cta;
    }

  private:
    std::shared_ptr<const VsKernelData> data_;
};

/** Data shared by a drawcall's fragment-shader trace generator. */
struct FsKernelData
{
    /** CTAs as lists of warps, each warp a list of fragments. */
    std::vector<std::vector<std::vector<Fragment>>> ctas;
    const Material *material = nullptr;
    /** Per-triangle attribute addresses (3 shaded vertices each). */
    std::vector<std::array<Addr, 3>> triAttrAddrs;
    Addr uniformAddr = 0;
    bool lodEnabled = true;
    bool emitDepthTraffic = false;
    ShaderCost cost;
    Addr colorBase = 0;
    Addr depthBase = 0;
    uint32_t fbWidth = 0;
};

/** Fragment-shader trace generator: one CTA per packed warp group. */
class FsCtaGenerator : public CtaGenerator
{
  public:
    explicit FsCtaGenerator(std::shared_ptr<const FsKernelData> data)
        : data_(std::move(data))
    {
    }

    CtaTrace
    generate(uint32_t cta_index) const override
    {
        const FsKernelData &d = *data_;
        panic_if(cta_index >= d.ctas.size(), "FS CTA index out of range");
        CtaTrace cta;
        for (const auto &warp_frags : d.ctas[cta_index]) {
            cta.warps.push_back(buildWarp(d, warp_frags));
        }
        return cta;
    }

  private:
    static WarpTrace
    buildWarp(const FsKernelData &d, const std::vector<Fragment> &frags)
    {
        const uint32_t lanes = static_cast<uint32_t>(frags.size());
        TraceBuilder tb(lanes);

        tb.memUniform(Opcode::LDC, 1, d.uniformAddr, 16,
                      DataClass::Pipeline);

        // Rasterizer-side attribute reads: the redistribution traffic of
        // post-cull primitives through the L2 (§III). Attributes are
        // fetched once per distinct triangle covered by the warp — the
        // raster unit holds per-primitive parameters on-chip, so the
        // traffic scales with primitives, not fragments.
        std::vector<uint32_t> tris;
        for (const Fragment &f : frags) {
            if (std::find(tris.begin(), tris.end(), f.tri) == tris.end()) {
                tris.push_back(f.tri);
            }
        }
        if (tris.size() > lanes) {
            tris.resize(lanes);
        }
        const uint32_t tri_mask = tris.size() >= 32
            ? 0xffffffffu
            : ((1u << tris.size()) - 1);
        for (int k = 0; k < 3; ++k) {
            std::vector<Addr> addrs;
            addrs.reserve(tris.size());
            for (uint32_t t : tris) {
                addrs.push_back(d.triAttrAddrs[t][k]);
            }
            tb.mask(tri_mask);
            tb.mem(Opcode::LDG, static_cast<uint8_t>(2 + k),
                   std::move(addrs), 16, DataClass::Pipeline);
        }
        tb.mask(0xffffffffu);

        // Interpolation setup.
        for (uint32_t i = 0; i < d.cost.intOps; ++i) {
            tb.alu(Opcode::IMAD, 5, 2, 3);
        }

        const auto &textures = d.material->textures;
        const uint32_t n_tex = static_cast<uint32_t>(textures.size());
        const uint32_t alu_per_tex =
            n_tex > 0 ? d.cost.fp32Ops / (n_tex + 1) : d.cost.fp32Ops;

        uint32_t fp_left = d.cost.fp32Ops;
        const TexFilter filter = d.material->filter;
        const uint32_t corners = filter == TexFilter::Trilinear ? 8
            : filter == TexFilter::Bilinear ? 4
                                            : 1;
        for (uint32_t t = 0; t < n_tex; ++t) {
            const Texture2D &tex = *textures[t];
            // Per-lane footprints: bilinear filtering fetches all four
            // corner texels (one TEX instruction per corner), which is
            // where the texture unit's merging and the L1's reuse of
            // overlapping footprints come from.
            std::vector<std::vector<Addr>> per_corner(corners);
            for (const Fragment &f : frags) {
                const float lod = d.lodEnabled
                    ? Sampler::computeLod(tex, f.duvdx, f.duvdy)
                    : 0.0f;
                std::vector<Addr> fp;
                Sampler::footprint(tex, f.uv, lod, f.layer, filter, fp);
                for (uint32_t c = 0; c < corners; ++c) {
                    per_corner[c].push_back(fp[c]);
                }
            }
            for (uint32_t c = 0; c < corners; ++c) {
                tb.mem(Opcode::TEX, static_cast<uint8_t>(10 + (t & 7)),
                       std::move(per_corner[c]),
                       static_cast<uint8_t>(texFormatBytes(tex.format())),
                       DataClass::Texture);
            }
            const uint32_t chunk = std::min(alu_per_tex, fp_left);
            for (uint32_t i = 0; i < chunk; ++i) {
                tb.alu(Opcode::FFMA, static_cast<uint8_t>(6 + (i & 1)),
                       static_cast<uint8_t>(10 + (t & 7)), 5);
            }
            fp_left -= chunk;
        }
        for (uint32_t i = 0; i < fp_left; ++i) {
            tb.alu(Opcode::FFMA, static_cast<uint8_t>(6 + (i & 1)), 7, 1);
        }
        for (uint32_t i = 0; i < d.cost.sfuOps; ++i) {
            tb.alu(Opcode::MUFU_EX2, 8, 6);
        }

        if (d.emitDepthTraffic) {
            // Early-Z read-modify-write against the depth buffer.
            std::vector<Addr> depth_addrs;
            depth_addrs.reserve(lanes);
            for (const Fragment &f : frags) {
                depth_addrs.push_back(
                    d.depthBase +
                    4ull * (static_cast<Addr>(f.y) * d.fbWidth + f.x));
            }
            std::vector<Addr> depth_w = depth_addrs;
            tb.mem(Opcode::LDG, 9, std::move(depth_addrs), 4,
                   DataClass::Pipeline);
            tb.mem(Opcode::STG, 9, std::move(depth_w), 4,
                   DataClass::Pipeline);
        }

        // Color output to the framebuffer (ROP blending skipped, §III).
        std::vector<Addr> color_addrs;
        color_addrs.reserve(lanes);
        for (const Fragment &f : frags) {
            color_addrs.push_back(
                d.colorBase +
                4ull * (static_cast<Addr>(f.y) * d.fbWidth + f.x));
        }
        tb.mem(Opcode::STG, 8, std::move(color_addrs), 4,
               DataClass::Pipeline);
        tb.exit();
        return tb.take();
    }

    std::shared_ptr<const FsKernelData> data_;
};

/** Functional fragment shading for the image output. */
Texel
shadeFragment(const Material &mat, const Fragment &frag, float face_shade,
              bool lod_enabled, TexFilter filter)
{
    auto sample_map = [&](uint32_t t) {
        const Texture2D &tex = *mat.textures[t];
        const float lod = lod_enabled
            ? Sampler::computeLod(tex, frag.duvdx, frag.duvdy)
            : 0.0f;
        return Sampler::sample(tex, frag.uv, lod, frag.layer, filter);
    };

    Texel out;
    if (mat.kind == ShaderKind::Basic) {
        const Texel albedo = sample_map(0);
        const float light = 0.25f + 0.75f * face_shade;
        out.r = albedo.r * light;
        out.g = albedo.g * light;
        out.b = albedo.b * light;
        return out;
    }

    // PBR: combine the 8 maps into a plausible image. Map order:
    // 0 irradiance, 1 BRDF LUT, 2 albedo, 3 normal, 4 prefilter, 5 AO,
    // 6 metallic, 7 roughness.
    const Texel irr = sample_map(0);
    const Texel albedo = sample_map(2);
    const Texel prefilter = sample_map(4);
    const Texel ao = sample_map(5);
    const Texel metallic = sample_map(6);
    const Texel rough = sample_map(7);
    const float direct = 0.2f + 0.8f * face_shade;
    const float spec = (1.0f - rough.r) * (0.3f + 0.7f * metallic.r);
    out.r = albedo.r * direct * ao.r + irr.r * 0.15f + prefilter.r * spec *
            0.25f;
    out.g = albedo.g * direct * ao.r + irr.g * 0.15f + prefilter.g * spec *
            0.25f;
    out.b = albedo.b * direct * ao.r + irr.b * 0.15f + prefilter.b * spec *
            0.25f;
    return out;
}

} // namespace

RenderPipeline::RenderPipeline(const PipelineConfig &cfg, AddressSpace &heap)
    : cfg_(cfg), heap_(heap), fb_(cfg.width, cfg.height, heap)
{
    fatal_if(cfg_.batchSize < 3, "batch size must fit a triangle");
    fatal_if(cfg_.maxWarpsPerCta == 0, "need at least one warp per CTA");
}

RenderSubmission
RenderPipeline::submit(const Scene &scene)
{
    telemetry::SelfProfiler::Scope prof_scope(profiler_,
                                              telemetry::Component::Raster);
    RenderSubmission out;
    fb_.clear();

    uint32_t draw_index = 0;
    for (const DrawCall &draw : scene.draws) {
        fatal_if(draw.mesh == nullptr || draw.material == nullptr,
                 "drawcall %s missing mesh or material", draw.name.c_str());
        const Mesh &mesh = *draw.mesh;
        const Material &mat = *draw.material;
        const uint32_t instances = std::max(1u, draw.instanceCount);
        fatal_if(instances > 1 && draw.instanceModels.size() != instances,
                 "instanced drawcall %s needs per-instance transforms",
                 draw.name.c_str());

        DrawcallReport report;
        report.name = draw.name;
        report.drawIndex = draw_index++;
        report.texturesPerFragment =
            static_cast<uint32_t>(mat.textures.size());

        // --- Stage 2: vertex batching with in-batch dedup ---------------
        auto vs_data = std::make_shared<VsKernelData>();
        vs_data->batches = buildVertexBatches(mesh.indices(),
                                              cfg_.batchSize);
        vs_data->vbAddr = mesh.vbAddr();
        vs_data->ibAddr = mesh.ibAddr();
        vs_data->uniformAddr = heap_.alloc(256);
        vs_data->instanceBufAddr = draw.instanceBufAddr;
        vs_data->instanceCount = instances;
        vs_data->batchSize = cfg_.batchSize;
        vs_data->cost = ShaderCost::vertex();
        const uint64_t total_slots =
            vs_data->slotsPerInstance() * instances;
        vs_data->attrBase =
            heap_.alloc(total_slots * VsKernelData::kOutStride);

        report.batches = vs_data->batches.size() * instances;

        auto fs_data = std::make_shared<FsKernelData>();
        fs_data->material = &mat;
        fs_data->uniformAddr = vs_data->uniformAddr;
        fs_data->lodEnabled = cfg_.lodEnabled;
        fs_data->cost = ShaderCost::fragment(mat.kind);
        fs_data->cost.fp32Ops += mat.extraFragmentAlu;
        fs_data->colorBase = fb_.colorAddr(0, 0);
        fs_data->depthBase = fb_.depthAddr(0, 0);
        fs_data->emitDepthTraffic = cfg_.emitDepthTraffic;
        fs_data->fbWidth = fb_.width();

        Rasterizer rast(fb_, cfg_.tileSize);
        std::vector<float> tri_shade;

        // --- Stages 3-5: vertex shading, assembly/cull, rasterization ---
        for (uint32_t inst = 0; inst < instances; ++inst) {
            const Mat4 &model = instances > 1 ? draw.instanceModels[inst]
                                              : draw.model;
            const Mat4 mvp = scene.camera.proj * scene.camera.view * model;
            const uint32_t layer =
                inst < draw.instanceLayers.size() ? draw.instanceLayers[inst]
                                                  : 0;
            for (uint32_t b = 0;
                 b < static_cast<uint32_t>(vs_data->batches.size()); ++b) {
                const VertexBatch &batch = vs_data->batches[b];
                report.vsInvocations += batch.uniqueVerts.size();
                report.vsThreadsLaunched +=
                    ((batch.uniqueVerts.size() + kWarpSize - 1) /
                     kWarpSize) * kWarpSize;

                std::vector<ShadedVertex> shaded(batch.uniqueVerts.size());
                for (size_t s = 0; s < batch.uniqueVerts.size(); ++s) {
                    const Vertex &v = mesh.vertices()[batch.uniqueVerts[s]];
                    shaded[s].clip = mvp * Vec4(v.position, 1.0f);
                    shaded[s].uv = v.uv;
                    // Rotation-only normal transform approximation.
                    const Vec4 n4 = model * Vec4(v.normal, 0.0f);
                    shaded[s].worldNormal = n4.xyz().normalized();
                }

                const uint64_t slot_base =
                    inst * vs_data->slotsPerInstance() +
                    static_cast<uint64_t>(b) * cfg_.batchSize;
                for (const auto &tri : batch.tris) {
                    const uint32_t tri_id =
                        static_cast<uint32_t>(fs_data->triAttrAddrs.size());
                    std::array<Addr, 3> attrs{};
                    Vec4 clip[3];
                    Vec2 uv[3];
                    Vec3 nrm_sum;
                    for (int k = 0; k < 3; ++k) {
                        clip[k] = shaded[tri[k]].clip;
                        uv[k] = shaded[tri[k]].uv;
                        nrm_sum = nrm_sum + shaded[tri[k]].worldNormal;
                        attrs[k] = vs_data->attrBase +
                                   (slot_base + tri[k]) *
                                       VsKernelData::kOutStride;
                    }
                    fs_data->triAttrAddrs.push_back(attrs);
                    tri_shade.push_back(std::max(
                        0.0f, nrm_sum.normalized().dot(kLightDir)));
                    rast.submit(clip, uv, tri_id, layer);
                }
            }
        }
        report.raster = rast.stats();

        // --- Stage 6: fragment warp formation and functional shading ----
        std::vector<TileBin> bins = rast.takeBins();
        std::vector<std::vector<Fragment>> warps;
        for (TileBin &bin : bins) {
            // Sort into quad-major order so warps hold whole quads.
            std::stable_sort(bin.frags.begin(), bin.frags.end(),
                             [](const Fragment &a, const Fragment &b) {
                                 const uint32_t qa =
                                     (a.y / 2) * 65536u + (a.x / 2);
                                 const uint32_t qb =
                                     (b.y / 2) * 65536u + (b.x / 2);
                                 if (qa != qb) {
                                     return qa < qb;
                                 }
                                 return (a.y % 2) * 2 + (a.x % 2) <
                                        (b.y % 2) * 2 + (b.x % 2);
                             });
            for (const Fragment &f : bin.frags) {
                fb_.writeColor(f.x, f.y,
                               shadeFragment(mat, f, tri_shade[f.tri],
                                             cfg_.lodEnabled,
                                             cfg_.functionalFilter));
            }
            for (size_t first = 0; first < bin.frags.size();
                 first += kWarpSize) {
                const size_t last =
                    std::min(bin.frags.size(), first + kWarpSize);
                warps.emplace_back(bin.frags.begin() + first,
                                   bin.frags.begin() + last);
            }
        }
        report.fragments = report.raster.fragsGenerated -
                           report.raster.fragsEarlyZKilled;
        report.fsWarps = warps.size();

        // Pack warps into CTAs of maxWarpsPerCta.
        for (size_t first = 0; first < warps.size();
             first += cfg_.maxWarpsPerCta) {
            const size_t last =
                std::min(warps.size(), first + cfg_.maxWarpsPerCta);
            fs_data->ctas.emplace_back(warps.begin() + first,
                                       warps.begin() + last);
        }
        report.fsCtas = fs_data->ctas.size();

        // --- Kernel construction -----------------------------------------
        const uint32_t drawcall_id = ++nextDrawcall_;
        KernelInfo vs_kernel;
        vs_kernel.name = draw.name + ".vs";
        vs_kernel.drawcall = drawcall_id;
        vs_kernel.grid = {static_cast<uint32_t>(vs_data->batches.size()) *
                              instances,
                          1, 1};
        vs_kernel.cta = {cfg_.batchSize, 1, 1};
        vs_kernel.regsPerThread = vs_data->cost.registers;
        vs_kernel.source =
            std::make_shared<VsCtaGenerator>(std::move(vs_data));
        report.vsKernelIndex = static_cast<uint32_t>(out.kernels.size());
        out.kernels.push_back(std::move(vs_kernel));
        out.dependsOn.push_back(-1);

        if (!fs_data->ctas.empty()) {
            KernelInfo fs_kernel;
            fs_kernel.name = draw.name + ".fs";
            fs_kernel.drawcall = drawcall_id;
            fs_kernel.grid = {static_cast<uint32_t>(fs_data->ctas.size()), 1,
                              1};
            fs_kernel.cta = {cfg_.maxWarpsPerCta * kWarpSize, 1, 1};
            fs_kernel.regsPerThread = fs_data->cost.registers;
            fs_kernel.source =
                std::make_shared<FsCtaGenerator>(std::move(fs_data));
            report.fsKernelIndex = static_cast<uint32_t>(out.kernels.size());
            out.kernels.push_back(std::move(fs_kernel));
            out.dependsOn.push_back(
                static_cast<int>(report.vsKernelIndex));
        }

        out.reports.push_back(std::move(report));
    }
    return out;
}

Histogram
texLinesPerCtaHistogram(const KernelInfo &kernel, uint64_t max_bucket,
                        uint32_t max_ctas)
{
    Histogram hist(max_bucket);
    const uint32_t total = kernel.numCtas();
    const uint32_t limit =
        max_ctas == 0 ? total : std::min(total, max_ctas);
    for (uint32_t c = 0; c < limit; ++c) {
        const CtaTrace cta = kernel.source->generate(c);
        std::set<Addr> lines;
        for (const auto &warp : cta.warps) {
            for (const auto &in : warp.instrs) {
                if (in.opcode != Opcode::TEX) {
                    continue;
                }
                for (Addr a : coalesceToLines(in)) {
                    lines.insert(a);
                }
            }
        }
        hist.add(lines.size());
    }
    return hist;
}

} // namespace crisp
