#ifndef CRISP_GRAPHICS_VEC_HPP
#define CRISP_GRAPHICS_VEC_HPP

#include <cmath>

namespace crisp
{

/**
 * @file
 * Minimal vector/matrix math for the functional rendering pipeline.
 * Column-major Mat4 with the usual model/view/projection helpers; only what
 * the vertex transform, rasterizer and samplers need.
 */

struct Vec2
{
    float x = 0.0f;
    float y = 0.0f;

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(float s) const { return {x * s, y * s}; }
};

struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }

    float dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }
    Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    float length() const { return std::sqrt(dot(*this)); }
    Vec3
    normalized() const
    {
        const float len = length();
        return len > 0.0f ? *this * (1.0f / len) : Vec3{};
    }
};

struct Vec4
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    Vec4() = default;
    Vec4(float xx, float yy, float zz, float ww) : x(xx), y(yy), z(zz), w(ww)
    {
    }
    Vec4(const Vec3 &v, float ww) : x(v.x), y(v.y), z(v.z), w(ww) {}

    Vec3 xyz() const { return {x, y, z}; }
};

/** Column-major 4x4 matrix: m[c][r]. */
struct Mat4
{
    float m[4][4] = {};

    static Mat4
    identity()
    {
        Mat4 r;
        for (int i = 0; i < 4; ++i) {
            r.m[i][i] = 1.0f;
        }
        return r;
    }

    static Mat4
    translation(const Vec3 &t)
    {
        Mat4 r = identity();
        r.m[3][0] = t.x;
        r.m[3][1] = t.y;
        r.m[3][2] = t.z;
        return r;
    }

    static Mat4
    scaling(const Vec3 &s)
    {
        Mat4 r;
        r.m[0][0] = s.x;
        r.m[1][1] = s.y;
        r.m[2][2] = s.z;
        r.m[3][3] = 1.0f;
        return r;
    }

    static Mat4
    rotationY(float radians)
    {
        Mat4 r = identity();
        const float c = std::cos(radians);
        const float s = std::sin(radians);
        r.m[0][0] = c;
        r.m[0][2] = -s;
        r.m[2][0] = s;
        r.m[2][2] = c;
        return r;
    }

    static Mat4
    rotationX(float radians)
    {
        Mat4 r = identity();
        const float c = std::cos(radians);
        const float s = std::sin(radians);
        r.m[1][1] = c;
        r.m[1][2] = s;
        r.m[2][1] = -s;
        r.m[2][2] = c;
        return r;
    }

    /** Right-handed perspective projection (depth 0..1 after divide). */
    static Mat4
    perspective(float fovy_rad, float aspect, float znear, float zfar)
    {
        Mat4 r;
        const float f = 1.0f / std::tan(fovy_rad / 2.0f);
        r.m[0][0] = f / aspect;
        r.m[1][1] = f;
        r.m[2][2] = zfar / (znear - zfar);
        r.m[2][3] = -1.0f;
        r.m[3][2] = (znear * zfar) / (znear - zfar);
        return r;
    }

    static Mat4
    lookAt(const Vec3 &eye, const Vec3 &center, const Vec3 &up)
    {
        const Vec3 fwd = (center - eye).normalized();
        const Vec3 side = fwd.cross(up).normalized();
        const Vec3 upv = side.cross(fwd);
        Mat4 r = identity();
        r.m[0][0] = side.x;
        r.m[1][0] = side.y;
        r.m[2][0] = side.z;
        r.m[0][1] = upv.x;
        r.m[1][1] = upv.y;
        r.m[2][1] = upv.z;
        r.m[0][2] = -fwd.x;
        r.m[1][2] = -fwd.y;
        r.m[2][2] = -fwd.z;
        r.m[3][0] = -side.dot(eye);
        r.m[3][1] = -upv.dot(eye);
        r.m[3][2] = fwd.dot(eye);
        return r;
    }

    Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 r;
        for (int c = 0; c < 4; ++c) {
            for (int row = 0; row < 4; ++row) {
                float acc = 0.0f;
                for (int k = 0; k < 4; ++k) {
                    acc += m[k][row] * o.m[c][k];
                }
                r.m[c][row] = acc;
            }
        }
        return r;
    }

    Vec4
    operator*(const Vec4 &v) const
    {
        Vec4 r;
        r.x = m[0][0] * v.x + m[1][0] * v.y + m[2][0] * v.z + m[3][0] * v.w;
        r.y = m[0][1] * v.x + m[1][1] * v.y + m[2][1] * v.z + m[3][1] * v.w;
        r.z = m[0][2] * v.x + m[1][2] * v.y + m[2][2] * v.z + m[3][2] * v.w;
        r.w = m[0][3] * v.x + m[1][3] * v.y + m[2][3] * v.z + m[3][3] * v.w;
        return r;
    }
};

} // namespace crisp

#endif // CRISP_GRAPHICS_VEC_HPP
