#include "graphics/texture.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace crisp
{

uint32_t
texFormatBytes(TexFormat fmt)
{
    switch (fmt) {
      case TexFormat::R8: return 1;
      case TexFormat::RG8: return 2;
      case TexFormat::RGBA8: return 4;
      case TexFormat::RGBA16F: return 8;
      default:
        panic("unknown texture format %d", static_cast<int>(fmt));
    }
}

void
texTileDims(TexFormat fmt, uint32_t &tile_w, uint32_t &tile_h)
{
    switch (fmt) {
      case TexFormat::R8:
      case TexFormat::RG8:
        tile_w = 8;
        tile_h = 8;
        break;
      case TexFormat::RGBA8:
      case TexFormat::RGBA16F:
        tile_w = 4;
        tile_h = 4;
        break;
      default:
        panic("unknown texture format %d", static_cast<int>(fmt));
    }
}

Texture2D::Texture2D(std::string name, uint32_t width, uint32_t height,
                     TexFormat fmt, AddressSpace &heap, uint32_t layers,
                     bool mipmapped, uint64_t pattern_seed)
    : name_(std::move(name)),
      width_(width),
      height_(height),
      layers_(layers),
      fmt_(fmt)
{
    fatal_if(width == 0 || height == 0 || layers == 0,
             "texture %s has a zero dimension", name_.c_str());

    // Total levels: log2(max dim) + 1 (paper §VI-B).
    uint32_t levels = 1;
    if (mipmapped) {
        uint32_t dim = std::max(width_, height_);
        while (dim > 1) {
            dim /= 2;
            ++levels;
        }
    }

    uint32_t tile_w;
    uint32_t tile_h;
    texTileDims(fmt_, tile_w, tile_h);
    uint64_t offset = 0;
    for (uint32_t l = 0; l < levels; ++l) {
        levelOffsets_.push_back(offset);
        // Block-linear storage pads each level to whole tiles.
        const uint64_t tiles_x = (levelWidthRaw(l) + tile_w - 1) / tile_w;
        const uint64_t tiles_y = (levelHeightRaw(l) + tile_h - 1) / tile_h;
        offset += tiles_x * tiles_y * tile_w * tile_h * layers_ *
                  texFormatBytes(fmt_);
    }
    sizeBytes_ = offset;
    base_ = heap.alloc(sizeBytes_);

    buildContent(pattern_seed);
    buildMipChain();
}

// levelWidth/levelHeight must be usable from the constructor before
// levelOffsets_ is complete, so the raw versions take no bounds check.
uint32_t
Texture2D::levelWidth(uint32_t level) const
{
    panic_if(level >= numLevels(), "level %u out of range", level);
    return levelWidthRaw(level);
}

uint32_t
Texture2D::levelHeight(uint32_t level) const
{
    panic_if(level >= numLevels(), "level %u out of range", level);
    return levelHeightRaw(level);
}

Addr
Texture2D::texelAddr(uint32_t level, uint32_t layer, uint32_t x,
                     uint32_t y) const
{
    panic_if(level >= numLevels(), "level %u out of range", level);
    const uint32_t w = levelWidthRaw(level);
    const uint32_t h = levelHeightRaw(level);
    panic_if(layer >= layers_, "layer %u out of range", layer);
    x = std::min(x, w - 1);
    y = std::min(y, h - 1);

    // Block-linear addressing: tiles are row-major, texels row-major
    // within a tile, layers stacked per level.
    uint32_t tile_w;
    uint32_t tile_h;
    texTileDims(fmt_, tile_w, tile_h);
    const uint64_t tiles_x = (w + tile_w - 1) / tile_w;
    const uint64_t tiles_y = (h + tile_h - 1) / tile_h;
    const uint64_t tile_index =
        (static_cast<uint64_t>(y) / tile_h) * tiles_x + x / tile_w;
    const uint64_t in_tile =
        (static_cast<uint64_t>(y) % tile_h) * tile_w + x % tile_w;
    const uint64_t layer_bytes =
        tiles_x * tiles_y * tile_w * tile_h * texFormatBytes(fmt_);
    return base_ + levelOffsets_[level] + layer * layer_bytes +
           (tile_index * tile_w * tile_h + in_tile) * texFormatBytes(fmt_);
}

Texel
Texture2D::fetch(uint32_t level, uint32_t layer, int32_t x, int32_t y) const
{
    level = std::min(level, numLevels() - 1);
    layer = std::min(layer, layers_ - 1);
    const int32_t w = static_cast<int32_t>(levelWidthRaw(level));
    const int32_t h = static_cast<int32_t>(levelHeightRaw(level));
    // Wrap addressing.
    x = ((x % w) + w) % w;
    y = ((y % h) + h) % h;
    return data_[level][(static_cast<size_t>(layer) * h + y) * w + x];
}

void
Texture2D::buildContent(uint64_t seed)
{
    data_.resize(numLevels());
    data_[0].resize(static_cast<size_t>(width_) * height_ * layers_);
    Rng rng(seed * 0x51ed2701u + 11);

    // Procedural content: a layered pattern of large colour patches with
    // high-frequency detail, so downsampling (mipmapping) changes values
    // smoothly and rendered output is visually interpretable.
    for (uint32_t layer = 0; layer < layers_; ++layer) {
        const float hue = rng.nextDouble() * 6.0f;
        const float checker = 8.0f + static_cast<float>(rng.nextBelow(24));
        for (uint32_t y = 0; y < height_; ++y) {
            for (uint32_t x = 0; x < width_; ++x) {
                const float u = static_cast<float>(x) / width_;
                const float v = static_cast<float>(y) / height_;
                const int cx = static_cast<int>(u * checker);
                const int cy = static_cast<int>(v * checker);
                const float base = ((cx + cy) % 2 == 0) ? 0.85f : 0.35f;
                const float detail =
                    0.15f * std::sin(u * 97.0f + hue) *
                    std::cos(v * 83.0f + hue);
                Texel t;
                t.r = std::clamp(base + detail, 0.0f, 1.0f);
                t.g = std::clamp(
                    base * (0.5f + 0.5f * std::sin(hue)) + detail, 0.0f,
                    1.0f);
                t.b = std::clamp(
                    base * (0.5f + 0.5f * std::cos(hue)) - detail, 0.0f,
                    1.0f);
                data_[0][(static_cast<size_t>(layer) * height_ + y) *
                             width_ + x] = t;
            }
        }
    }
}

void
Texture2D::buildMipChain()
{
    for (uint32_t l = 1; l < numLevels(); ++l) {
        const uint32_t pw = levelWidthRaw(l - 1);
        const uint32_t ph = levelHeightRaw(l - 1);
        const uint32_t w = levelWidthRaw(l);
        const uint32_t h = levelHeightRaw(l);
        data_[l].resize(static_cast<size_t>(w) * h * layers_);
        for (uint32_t layer = 0; layer < layers_; ++layer) {
            for (uint32_t y = 0; y < h; ++y) {
                for (uint32_t x = 0; x < w; ++x) {
                    // 2x2 box filter from the previous level.
                    Texel acc;
                    acc.a = 0.0f;
                    int count = 0;
                    for (uint32_t dy = 0; dy < 2; ++dy) {
                        for (uint32_t dx = 0; dx < 2; ++dx) {
                            const uint32_t sx = std::min(2 * x + dx, pw - 1);
                            const uint32_t sy = std::min(2 * y + dy, ph - 1);
                            const Texel &s =
                                data_[l - 1]
                                     [(static_cast<size_t>(layer) * ph + sy) *
                                          pw + sx];
                            acc.r += s.r;
                            acc.g += s.g;
                            acc.b += s.b;
                            acc.a += s.a;
                            ++count;
                        }
                    }
                    const float inv = 1.0f / static_cast<float>(count);
                    acc.r *= inv;
                    acc.g *= inv;
                    acc.b *= inv;
                    acc.a *= inv;
                    data_[l][(static_cast<size_t>(layer) * h + y) * w + x] =
                        acc;
                }
            }
        }
    }
}

uint64_t
Texture2D::levelBytes(uint32_t level) const
{
    return static_cast<uint64_t>(levelWidthRaw(level)) *
           levelHeightRaw(level) * layers_ * texFormatBytes(fmt_);
}

} // namespace crisp
