#ifndef CRISP_GRAPHICS_FRAMEBUFFER_HPP
#define CRISP_GRAPHICS_FRAMEBUFFER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graphics/address_space.hpp"
#include "graphics/texture.hpp"

namespace crisp
{

/**
 * Color + depth render target.
 *
 * Holds both functional contents (RGBA8 color, float depth, dumpable as a
 * PPM image: Figs 5 and 8) and simulated addresses so fragment-shader color
 * writes generate realistic pipeline memory traffic.
 */
class Framebuffer
{
  public:
    Framebuffer(uint32_t width, uint32_t height, AddressSpace &heap);

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }

    void clear(const Texel &color = {0.05f, 0.05f, 0.08f, 1.0f});

    /** Depth test (less-than) and conditional depth write. */
    bool depthTestAndSet(uint32_t x, uint32_t y, float depth);

    /** Read current depth (1.0 = far plane). */
    float depthAt(uint32_t x, uint32_t y) const;

    void writeColor(uint32_t x, uint32_t y, const Texel &color);
    Texel colorAt(uint32_t x, uint32_t y) const;

    /** Address of the 4-byte color pixel (STG targets). */
    Addr colorAddr(uint32_t x, uint32_t y) const;
    /** Address of the 4-byte depth value. */
    Addr depthAddr(uint32_t x, uint32_t y) const;

    /** Dump color as a binary PPM. @return false on I/O failure. */
    bool writePpm(const std::string &path) const;

    /** Mean absolute per-channel difference vs another framebuffer. */
    double diff(const Framebuffer &other) const;

  private:
    uint32_t width_;
    uint32_t height_;
    Addr colorBase_;
    Addr depthBase_;
    std::vector<uint8_t> color_;  // RGBA8
    std::vector<float> depth_;
};

} // namespace crisp

#endif // CRISP_GRAPHICS_FRAMEBUFFER_HPP
