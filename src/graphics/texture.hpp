#ifndef CRISP_GRAPHICS_TEXTURE_HPP
#define CRISP_GRAPHICS_TEXTURE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graphics/address_space.hpp"

namespace crisp
{

/** Texel storage formats used by the evaluated materials. */
enum class TexFormat : uint8_t
{
    R8,       ///< 1 byte/texel (masks: ambient occlusion, roughness...).
    RG8,      ///< 2 bytes/texel (normal XY).
    RGBA8,    ///< 4 bytes/texel (albedo and most colour maps).
    RGBA16F,  ///< 8 bytes/texel (HDR irradiance/prefilter maps).
};

/** Bytes per texel for a format. */
uint32_t texFormatBytes(TexFormat fmt);

/**
 * Block-linear tile edge for a format: GPU textures are stored in small
 * 2D tiles so one cache line covers a square texel neighborhood instead of
 * a 1D row run. Narrow formats use larger tiles so a tile still spans
 * 64-128 bytes.
 */
void texTileDims(TexFormat fmt, uint32_t &tile_w, uint32_t &tile_h);

/** A sampled RGBA colour in [0,1]. */
struct Texel
{
    float r = 0.0f;
    float g = 0.0f;
    float b = 0.0f;
    float a = 1.0f;
};

/**
 * A 2D texture (optionally an array texture with several layers) with a
 * full mipmap chain.
 *
 * Mip level L is the base image downsampled by 2^L per axis; the driver
 * generates levels 0..log2(dim) with a box filter before execution (§VI-B).
 * The texture owns a region of the simulated address space so the sampler
 * can compute the byte address of every texel; the same storage also holds
 * functional texel values so examples can render actual images.
 */
class Texture2D
{
  public:
    /**
     * Create a texture with procedural content.
     *
     * @param layers number of array layers (Planets' 3D texture uses > 1)
     * @param mipmapped generate the full chain; false keeps only level 0
     */
    Texture2D(std::string name, uint32_t width, uint32_t height,
              TexFormat fmt, AddressSpace &heap, uint32_t layers = 1,
              bool mipmapped = true, uint64_t pattern_seed = 1);

    const std::string &name() const { return name_; }
    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }
    uint32_t layers() const { return layers_; }
    TexFormat format() const { return fmt_; }
    uint32_t numLevels() const
    {
        return static_cast<uint32_t>(levelOffsets_.size());
    }
    Addr baseAddr() const { return base_; }
    uint64_t sizeBytes() const { return sizeBytes_; }

    uint32_t levelWidth(uint32_t level) const;
    uint32_t levelHeight(uint32_t level) const;

    /**
     * Byte address of texel (x, y) of @p layer at @p level; this is the
     * address the TEX instruction carries into the unified L1.
     */
    Addr texelAddr(uint32_t level, uint32_t layer, uint32_t x,
                   uint32_t y) const;

    /** Functional texel fetch with wrap addressing. */
    Texel fetch(uint32_t level, uint32_t layer, int32_t x, int32_t y) const;

  private:
    void buildContent(uint64_t seed);
    void buildMipChain();
    uint64_t levelBytes(uint32_t level) const;

    uint32_t levelWidthRaw(uint32_t level) const
    {
        const uint32_t w = width_ >> level;
        return w == 0 ? 1 : w;
    }
    uint32_t levelHeightRaw(uint32_t level) const
    {
        const uint32_t h = height_ >> level;
        return h == 0 ? 1 : h;
    }

    std::string name_;
    uint32_t width_;
    uint32_t height_;
    uint32_t layers_;
    TexFormat fmt_;
    Addr base_ = 0;
    uint64_t sizeBytes_ = 0;
    /** Byte offset of each level from base (all layers contiguous). */
    std::vector<uint64_t> levelOffsets_;
    /** Functional storage: per level, layers * w * h texels. */
    std::vector<std::vector<Texel>> data_;
};

} // namespace crisp

#endif // CRISP_GRAPHICS_TEXTURE_HPP
