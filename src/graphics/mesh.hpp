#ifndef CRISP_GRAPHICS_MESH_HPP
#define CRISP_GRAPHICS_MESH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graphics/address_space.hpp"
#include "graphics/vec.hpp"

namespace crisp
{

/** One vertex of an indexed mesh (interleaved layout in device memory). */
struct Vertex
{
    Vec3 position;
    Vec3 normal;
    Vec2 uv;

    /** Interleaved stride in the simulated vertex buffer. */
    static constexpr uint32_t kStrideBytes = 32;
};

/**
 * An indexed triangle mesh resident in the simulated address space.
 *
 * Vertex data lives at vbAddr with Vertex::kStrideBytes stride; indices are
 * 32-bit at ibAddr. The index stream's locality is what the batch-based
 * vertex shading stage (Fig 2, stage 2) exploits, so procedural meshes are
 * generated with the strip-order index patterns real content has.
 */
class Mesh
{
  public:
    Mesh(std::string name, std::vector<Vertex> vertices,
         std::vector<uint32_t> indices, AddressSpace &heap);

    const std::string &name() const { return name_; }
    const std::vector<Vertex> &vertices() const { return vertices_; }
    const std::vector<uint32_t> &indices() const { return indices_; }
    uint32_t triangleCount() const
    {
        return static_cast<uint32_t>(indices_.size() / 3);
    }

    Addr vertexAddr(uint32_t index) const
    {
        return vbAddr_ + static_cast<Addr>(index) * Vertex::kStrideBytes;
    }
    Addr indexAddr(uint32_t i) const { return ibAddr_ + 4ull * i; }
    Addr vbAddr() const { return vbAddr_; }
    Addr ibAddr() const { return ibAddr_; }

    // --- Procedural constructors used by the evaluation scenes -----------

    /** Flat grid of (n x n) quads in the XZ plane, uv spanning [0, tile]. */
    static Mesh makePlane(const std::string &name, uint32_t n, float size,
                          float uv_tile, AddressSpace &heap);

    /** UV sphere with the given tessellation. */
    static Mesh makeSphere(const std::string &name, uint32_t stacks,
                           uint32_t slices, float radius,
                           AddressSpace &heap);

    /** Axis-aligned box with per-face uv spanning [0, uv_tile]. */
    static Mesh makeBox(const std::string &name, const Vec3 &extent,
                        AddressSpace &heap, float uv_tile = 1.0f);

    /** Open cylinder (columns in the Sponza-like atrium). */
    static Mesh makeCylinder(const std::string &name, uint32_t slices,
                             float radius, float height, AddressSpace &heap,
                             float uv_tile = 2.0f);

    /**
     * Irregular rocky blob (asteroids in the Planets scene): a sphere with
     * deterministic radial noise.
     */
    static Mesh makeRock(const std::string &name, uint32_t stacks,
                         uint32_t slices, float radius, uint64_t seed,
                         AddressSpace &heap);

    /**
     * Deformed copy of @p src at animation time @p time: every vertex is
     * displaced along its normal by a travelling sine wave
     * (amplitude * sin(frequency * (x + y + z) + time)), the per-frame
     * pose of a skinned or cloth-simulated mesh. The copy allocates
     * fresh vertex/index buffers from @p heap, modeling the dynamic
     * vertex re-upload a deforming mesh costs every frame — each frame's
     * vertex fetch traffic therefore misses on cold lines instead of
     * re-hitting the previous frame's.
     */
    static Mesh deformed(const std::string &name, const Mesh &src,
                         float time, float amplitude, float frequency,
                         AddressSpace &heap);

  private:
    std::string name_;
    std::vector<Vertex> vertices_;
    std::vector<uint32_t> indices_;
    Addr vbAddr_ = 0;
    Addr ibAddr_ = 0;
};

} // namespace crisp

#endif // CRISP_GRAPHICS_MESH_HPP
