#include "graphics/shader.hpp"

namespace crisp
{

ShaderCost
ShaderCost::vertex()
{
    ShaderCost c;
    // clip = P * V * M * pos (one combined mat4: 16 FFMA) plus normal
    // transform (9 FFMA) and viewport/uv housekeeping.
    c.fp32Ops = 30;
    c.intOps = 6;
    c.sfuOps = 0;
    c.registers = 32;
    return c;
}

ShaderCost
ShaderCost::fragment(ShaderKind kind)
{
    ShaderCost c;
    switch (kind) {
      case ShaderKind::Basic:
        // Interpolate + one diffuse lookup + lambert term.
        c.fp32Ops = 14;
        c.intOps = 6;
        c.sfuOps = 1;
        c.registers = 32;
        break;
      case ShaderKind::Pbr:
        // Cook-Torrance style direct light + IBL combination over 8 maps:
        // dominated by FMA chains and several transcendentals (pow, exp,
        // rsqrt) — mirrors the paper's description of PBR complexity.
        c.fp32Ops = 96;
        c.intOps = 18;
        c.sfuOps = 6;
        c.registers = 48;
        break;
    }
    return c;
}

} // namespace crisp
