#ifndef CRISP_GRAPHICS_PIPELINE_HPP
#define CRISP_GRAPHICS_PIPELINE_HPP

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "graphics/batching.hpp"
#include "graphics/framebuffer.hpp"
#include "graphics/raster.hpp"
#include "graphics/scene.hpp"
#include "graphics/shader.hpp"
#include "isa/trace.hpp"

namespace crisp
{

namespace telemetry
{
class SelfProfiler;
}

/** Rendering pipeline configuration. */
struct PipelineConfig
{
    uint32_t width = 640;
    uint32_t height = 360;
    uint32_t tileSize = 16;
    uint32_t batchSize = kDefaultVertexBatchSize;
    /**
     * Mipmapped texturing. When false the texture unit always references
     * level 0 — the broken-baseline configuration of Fig 9.
     */
    bool lodEnabled = true;
    /** Warps per fragment-shader CTA (256 threads at the default 8). */
    uint32_t maxWarpsPerCta = 8;
    /** Filter used for functional (image-producing) sampling. */
    TexFilter functionalFilter = TexFilter::Bilinear;
    /**
     * Recreate the early-Z depth traffic in the fragment traces: one
     * 4-byte depth read (and a write for survivors) per fragment through
     * the L2, tagged as pipeline data. Off by default to match the
     * paper's black-box treatment of the ROP/depth path.
     */
    bool emitDepthTraffic = false;
};

/** Per-drawcall record of what the functional pipeline produced. */
struct DrawcallReport
{
    std::string name;
    uint32_t drawIndex = 0;
    uint64_t batches = 0;
    /** Exact vertex-shader invocations (sum of batch unique vertices). */
    uint64_t vsInvocations = 0;
    /** VS thread count as the simulator reports it: warps x 32 (Fig 3). */
    uint64_t vsThreadsLaunched = 0;
    RasterStats raster;
    uint64_t fragments = 0;
    uint64_t fsWarps = 0;
    uint64_t fsCtas = 0;
    uint32_t texturesPerFragment = 0;
    /** Indices into RenderSubmission::kernels (~0u when absent). */
    uint32_t vsKernelIndex = ~0u;
    uint32_t fsKernelIndex = ~0u;
};

/**
 * Result of one frame submission: the trace kernels to replay on the
 * timing model (in submission order) plus functional per-drawcall reports.
 */
struct RenderSubmission
{
    std::vector<KernelInfo> kernels;
    /**
     * Intra-frame dependencies: kernel i may start once kernel
     * dependsOn[i] (an index into kernels) completes; -1 = immediately.
     * A drawcall's fragment kernel depends on its own vertex kernel only,
     * so consecutive drawcalls overlap as in Immediate Tiled Rendering.
     */
    std::vector<int> dependsOn;
    std::vector<DrawcallReport> reports;

    uint64_t totalVsInvocations() const;
    uint64_t totalFragments() const;
};

/**
 * The CRISP rendering pipeline (Fig 2).
 *
 * Functionally executes every stage at submit time — vertex batching with
 * in-batch dedup, vertex shading, primitive assembly with frustum/backface
 * culling, ITR tile binning, edge-function rasterization with early-Z and
 * analytic LoD, mipmapped texture sampling, framebuffer writes — and emits
 * SASS-like trace kernels (one vertex + one fragment kernel per drawcall)
 * for the Accel-Sim-class timing model. Fixed-function stages appear in the
 * traces only through the memory traffic they recreate (attribute writes
 * and reads through L2); the ROP is skipped entirely (§III).
 *
 * The Scene must outlive any Gpu run that replays the returned kernels
 * (trace generators reference its textures).
 */
class RenderPipeline
{
  public:
    RenderPipeline(const PipelineConfig &cfg, AddressSpace &heap);

    /** Render a frame: fills the framebuffer and returns the kernels. */
    RenderSubmission submit(const Scene &scene);

    Framebuffer &framebuffer() { return fb_; }
    const Framebuffer &framebuffer() const { return fb_; }
    const PipelineConfig &config() const { return cfg_; }

    /**
     * Attach the telemetry self-profiler (not owned; nullptr detaches).
     * Attributes the functional rasterization work done at submit time.
     */
    void setProfiler(telemetry::SelfProfiler *profiler)
    {
        profiler_ = profiler;
    }

  private:
    PipelineConfig cfg_;
    AddressSpace &heap_;
    Framebuffer fb_;
    telemetry::SelfProfiler *profiler_ = nullptr;
    /** Drawcall ids are unique across all frames of this pipeline. */
    uint32_t nextDrawcall_ = 0;
};

/**
 * Static trace analysis for Fig 10: for every CTA of a (fragment) kernel,
 * count the distinct 128 B cache lines referenced by its TEX instructions.
 *
 * @param max_ctas cap on CTAs examined (0 = all)
 */
Histogram texLinesPerCtaHistogram(const KernelInfo &kernel,
                                  uint64_t max_bucket = 63,
                                  uint32_t max_ctas = 0);

} // namespace crisp

#endif // CRISP_GRAPHICS_PIPELINE_HPP
