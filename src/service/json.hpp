#ifndef CRISP_SERVICE_JSON_HPP
#define CRISP_SERVICE_JSON_HPP

#include "common/json.hpp"

namespace crisp::service
{

/**
 * The JSON value model now lives in crisp::Json (src/common/json.hpp):
 * the scenario loader reads the same documents the protocol does, and
 * common is the one library everything links. This alias keeps the
 * service's historical spelling working.
 */
using Json = crisp::Json;

} // namespace crisp::service

#endif // CRISP_SERVICE_JSON_HPP
