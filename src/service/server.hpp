#ifndef CRISP_SERVICE_SERVER_HPP
#define CRISP_SERVICE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "service/chaos.hpp"
#include "service/job.hpp"
#include "service/retry.hpp"
#include "traceio/cache.hpp"

namespace crisp
{
class Gpu;
}

namespace crisp::service
{

/**
 * JobServer configuration. The quota caps are the server's admission
 * ceilings: a job may ask for anything up to them, never past them.
 */
struct ServerConfig
{
    /** Worker threads running simulations concurrently. */
    uint32_t workers = 4;
    /** Bounded admission queue; a full queue rejects, never blocks. */
    size_t queueCapacity = 64;

    /** Per-job quota ceilings (admission rejects requests above these). */
    JobQuota maxQuota{2'000'000'000ull, 600.0, 8};

    /** Total instructions a replayed trace may carry (resource bomb cap). */
    uint64_t maxTraceInstructions = 100'000'000;

    /** Watchdog cadence for every job run (0 disables — not advised). */
    Cycle watchdogInterval = 1024;
    /** Forward-progress hang threshold (0 = derived from the machine). */
    Cycle hangThreshold = 0;
    /** Counter-conservation audit cadence (0 disables). */
    Cycle auditInterval = 4096;

    RetryPolicy retry;

    /** Directory terminal JobReports are flushed to (empty = no spool). */
    std::string spoolDir;
    /** Trace-cache directory shared by all jobs (empty = cache off). */
    std::string cacheDir;

    ChaosConfig chaos;

    /** Deadline/disconnect monitor cadence. */
    double monitorPeriodSec = 0.005;
};

/**
 * The crispd job server core: admission control, a bounded job queue,
 * K worker threads running simulations under watchdog + audit + quota,
 * a monitor thread enforcing wall-clock deadlines, retry-with-backoff
 * for transient trace failures, and graceful drain.
 *
 * Robustness contract: no job — malformed, over-quota, hanging, or
 * actively sabotaged by chaos mode — takes the server down or damages a
 * neighbouring job. Every admitted job reaches exactly one terminal
 * JobState and leaves a JobReport (spooled to disk when a spool
 * directory is configured). The public API is thread-safe; the protocol
 * layer calls it from one thread per client connection.
 */
class JobServer
{
  public:
    explicit JobServer(ServerConfig cfg);
    ~JobServer();

    JobServer(const JobServer &) = delete;
    JobServer &operator=(const JobServer &) = delete;

    /** Admission verdict: an id on accept, a reason on reject. */
    struct Admission
    {
        bool accepted = false;
        JobId id = 0;
        std::string error;
    };

    /**
     * Validate and enqueue a job. Rejection reasons: "malformed: ..."
     * (bad payload/machine/params), "over-quota: ..." (asks past the
     * server caps), "queue-full", "shutting-down". Validation happens
     * here, before the job can reach a fatal() in the builders.
     */
    Admission submit(const JobSpec &spec);

    /**
     * Request cancellation of a queued or running job. True if the job
     * exists and was not already terminal. The job lands in Cancelled
     * (possibly after its current tick completes).
     */
    bool cancel(JobId id, const std::string &why = "cancelled by client");

    /** Current snapshot: state always valid, run fields once terminal. */
    std::optional<JobReport> report(JobId id) const;

    /** Block until the job is terminal; nullopt for an unknown id. */
    std::optional<JobReport> wait(JobId id);

    /** Stop admitting new jobs (submissions reject with "shutting-down"). */
    void beginShutdown();

    /**
     * Drain: stop admissions, give running jobs @p grace_sec to finish,
     * then cancel whatever remains and wait for every job to reach a
     * terminal state before stopping the threads. Returns true when all
     * jobs finished within the grace period (no forced cancellation).
     */
    bool drain(double grace_sec);

    /** Jobs admitted but not yet picked up by a worker. */
    size_t queueDepth() const;
    /** Jobs currently executing on workers. */
    size_t runningJobs() const;

    /** Monotonic server counters (all terminal states + rejections). */
    struct Counters
    {
        uint64_t accepted = 0;
        uint64_t rejectedInvalid = 0;
        uint64_t rejectedOverQuota = 0;
        uint64_t rejectedFull = 0;
        uint64_t rejectedShutdown = 0;
        uint64_t completed = 0;
        uint64_t failed = 0;
        uint64_t cancelled = 0;
        uint64_t timedOut = 0;
        uint64_t overQuota = 0;
        uint64_t hung = 0;
        uint64_t retries = 0;
        /** Highest queue depth ever observed (bound check in tests). */
        uint64_t queuePeak = 0;
    };
    Counters counters() const;

    const ServerConfig &config() const { return cfg_; }

    /** The shared trace cache (tests probe its stats). */
    const traceio::TraceCache &cache() const { return cache_; }

    /** Admission validation, exposed for tests: empty = admissible. */
    std::string admissionError(const JobSpec &spec) const;

  private:
    /** Why a job's cancel flag was raised (classifies the terminal state). */
    enum class CancelCause
    {
        None,
        Client,     ///< cancel() from the protocol layer.
        Deadline,   ///< Monitor: wall-clock quota exceeded.
        Shutdown,   ///< drain() grace period expired.
        Disconnect, ///< Chaos: simulated client disconnect.
    };

    struct Record
    {
        JobId id = 0;
        JobSpec spec;
        JobState state = JobState::Queued;
        std::atomic<bool> cancelFlag{false};
        CancelCause cancelCause = CancelCause::None; ///< Guarded by mu_.
        std::string cancelMessage;                   ///< Guarded by mu_.
        std::chrono::steady_clock::time_point started{};
        bool startedSet = false;
        ChaosPlan chaos;
        JobReport report;
    };

    /** Workload/scene/trace objects that must outlive the job's run. */
    struct BuildContext;

    void workerLoop();
    void monitorLoop();
    JobReport runJob(Record &rec);
    bool buildJob(const JobSpec &spec, BuildContext &ctx, Gpu &gpu,
                  StreamId stream, std::string &error, bool &transient);
    bool buildScenarioJob(const JobSpec &spec, BuildContext &ctx,
                          Gpu &gpu, std::string &error);
    void cancelLocked(Record &rec, CancelCause cause,
                      const std::string &why);
    void finishCancelled(Record &rec, JobReport &rep);
    void spool(const JobReport &rep);
    void corruptCacheEntry(uint64_t seed);
    bool allTerminalLocked() const;
    void bumpTerminalLocked(JobState s);

    ServerConfig cfg_;
    traceio::TraceCache cache_;
    ChaosMonkey chaos_;

    /**
     * Build-vs-sabotage exclusion. Chaos cache corruption takes the
     * exclusive side; every job's build phase (cache open + CTA
     * materialization) takes the shared side. A cache file is therefore
     * either corrupted *before* a build opens it (detected by the CRC
     * scan, rejected, rebuilt — the recovery under test) or after the
     * job has fully materialized its CTAs in memory (harmless). Without
     * this, corruption could land between a file's validation and a
     * lazy CTA read, which the replay layer treats as fatal.
     */
    mutable std::shared_mutex cacheMu_;

    mutable std::mutex mu_;
    std::condition_variable queueCv_; ///< Workers: queue or stop.
    std::condition_variable doneCv_;  ///< Waiters/drain: job terminal.
    std::deque<std::shared_ptr<Record>> queue_;
    std::map<JobId, std::shared_ptr<Record>> jobs_;
    Counters counters_;
    JobId nextId_ = 1;
    size_t running_ = 0;
    bool accepting_ = true;
    bool stop_ = false;

    std::vector<std::thread> workers_;
    std::thread monitor_;
};

} // namespace crisp::service

#endif // CRISP_SERVICE_SERVER_HPP
