#ifndef CRISP_SERVICE_CHAOS_HPP
#define CRISP_SERVICE_CHAOS_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "service/job.hpp"

namespace crisp::service
{

/**
 * Chaos-mode configuration (`crispd --chaos-seed N`): deterministic,
 * per-job fault plans that route the existing integrity::FaultInjector
 * plus service-level faults (cache corruption, surprise client
 * disconnects) through the server. The point is not to test the
 * simulator — integrity_test does that — but to prove the *server*
 * contains every failure: a chaos run must end drained, leak-free, and
 * with every job in a terminal state.
 */
struct ChaosConfig
{
    /** 0 disables chaos entirely. */
    uint64_t seed = 0;
    /** Probability a job runs under an injected simulator fault. */
    double faultProb = 0.25;
    /** Probability the job's cache entry is corrupted before it runs. */
    double corruptCacheProb = 0.15;
    /** Probability the client "disconnects" (cancel at a random time). */
    double disconnectProb = 0.15;
    /** Latest disconnect, seconds after the job starts running. */
    double maxDisconnectDelaySec = 0.2;
};

/**
 * Per-job chaos plan. Derived deterministically from (seed, job id), so
 * a failing soak run reproduces from its seed alone.
 */
struct ChaosPlan
{
    bool injectFault = false;
    JobFaultSpec fault;
    bool corruptCache = false;
    /** < 0 = no disconnect; else cancel this many sec after start. */
    double disconnectAfterSec = -1.0;
};

/** Plan generator; stateless between jobs (each plan reseeds). */
class ChaosMonkey
{
  public:
    explicit ChaosMonkey(const ChaosConfig &cfg) : cfg_(cfg) {}

    bool enabled() const { return cfg_.seed != 0; }
    const ChaosConfig &config() const { return cfg_; }

    ChaosPlan planFor(JobId id) const;

  private:
    ChaosConfig cfg_;
};

} // namespace crisp::service

#endif // CRISP_SERVICE_CHAOS_HPP
