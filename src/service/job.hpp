#ifndef CRISP_SERVICE_JOB_HPP
#define CRISP_SERVICE_JOB_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "service/json.hpp"

namespace crisp::service
{

/** Server-assigned job identifier (monotonic, never reused). */
using JobId = uint64_t;

/**
 * Per-job resource quotas, validated at admission against the server's
 * caps. Every axis a job could use to exhaust the host is bounded:
 * simulated cycles (CPU time in the cycle loop), wall-clock seconds
 * (everything else: workload generation, trace I/O, retries), and
 * engine worker threads (host-thread budget; K concurrent jobs at T
 * threads each must fit the machine).
 */
struct JobQuota
{
    /** Simulated-cycle budget; the run stops here if nothing else does. */
    Cycle maxCycles = 50'000'000;
    /** Wall-clock deadline enforced by the server's monitor thread. */
    double maxWallSec = 60.0;
    /** Cycle-engine threads the job's Gpu may use. */
    uint32_t maxEngineThreads = 1;
};

/**
 * Deterministic faults a job may request (soak/chaos testing): the
 * service-level handle on integrity::FaultConfig. A frozen SM or a
 * corrupted dependency turns the job into a guaranteed hang, which the
 * watchdog must contain without touching neighbouring jobs.
 */
struct JobFaultSpec
{
    bool enabled = false;
    uint64_t seed = 0x5eed;
    /** Freeze SM 0's issue stage from this cycle on (0 = never). */
    Cycle freezeSmAt = 0;
    /** Corrupt the Nth enqueued dependency id (0 = never). */
    uint32_t corruptNthDependency = 0;
    /** Probability a DRAM fill is dropped (counter-audit violation). */
    double dropFillProb = 0.0;
};

/**
 * One simulation job: which GPU to model, what to run on it, and the
 * quotas it runs under. Exactly one payload — a named compute workload,
 * a named rendering scene, a packed CRTR trace path, or an inline
 * scenario document — must be set; admission rejects everything else
 * before it can reach a fatal() in the builders.
 */
struct JobSpec
{
    std::string name;                ///< Client label (reports/spool).

    // --- Machine ----------------------------------------------------------
    std::string gpuPreset = "rtx3070"; ///< rtx3070 | orin | generic.
    uint32_t numSms = 0;             ///< Optional override (0 = preset's).

    // --- Payload (exactly one) --------------------------------------------
    /** Compute workload: MICRO | VIO | HOLO | NN. */
    std::string workload;
    uint32_t frames = 1;             ///< VIO.
    uint32_t width = 160, height = 120; ///< VIO / scene resolution.
    uint32_t points = 2;             ///< HOLO.
    uint32_t layers = 2;             ///< NN.
    uint32_t ctas = 8;               ///< MICRO.
    uint32_t iterations = 4;         ///< MICRO.
    /** Rendering scene: SPL | SPH | PT | IT | PL | MT. */
    std::string scene;
    /** Packed CRTR trace to replay. */
    std::string tracePath;
    /**
     * Inline scenario document (the full JSON text of a *.json scenario
     * file, sent verbatim — no shared filesystem needed). Validated by
     * the scenario loader at admission; its "gpu" section is
     * authoritative for the job's machine, overriding gpuPreset/numSms.
     */
    std::string scenarioText;

    JobQuota quota;
    JobFaultSpec fault;

    /**
     * Parse a spec from the protocol's "job" object. Unknown fields are
     * ignored (forward compatibility); structural violations (wrong
     * types where it matters) surface later as admission errors since
     * every accessor falls back to the default.
     */
    static JobSpec fromJson(const Json &j);
    Json toJson() const;
};

/** Lifecycle states. Queued/Running are transient; the rest terminal. */
enum class JobState
{
    Queued,
    Running,
    Completed,  ///< Simulation drained within every quota.
    Failed,     ///< Build/load error (after retries, if transient).
    Cancelled,  ///< Client cancel or server shutdown.
    TimedOut,   ///< Wall-clock deadline cancelled the run.
    OverQuota,  ///< Simulated-cycle budget exhausted mid-run.
    Hung,       ///< Watchdog/audit stopped the run with a HangReport.
};

const char *jobStateName(JobState s);
bool jobStateTerminal(JobState s);

/**
 * The structured terminal record of one job — what the protocol returns
 * from wait/status and what the spool directory persists. A failed or
 * hung job produces one of these instead of taking the daemon down;
 * the hang evidence (reason + violated checks) rides along so a spooled
 * report is diagnosable without re-running the job.
 */
struct JobReport
{
    JobId id = 0;
    std::string name;
    JobState state = JobState::Queued;
    /** Failure/cancel/hang reason; empty for clean completions. */
    std::string message;
    /** Transient-failure retries spent before the terminal state. */
    uint32_t retries = 0;
    Cycle cycles = 0;            ///< Simulated cycles executed.
    double wallSec = 0.0;        ///< Wall-clock from dequeue to terminal.
    uint64_t instructions = 0;   ///< Sum over streams.
    uint64_t kernelsCompleted = 0;
    /** Check names of integrity/audit violations ("counter-*", ...). */
    std::vector<std::string> violations;

    Json toJson() const;
    static JobReport fromJson(const Json &j);
};

} // namespace crisp::service

#endif // CRISP_SERVICE_JOB_HPP
