#include "service/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.hpp"
#include "core/sm.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "integrity/fault_injector.hpp"
#include "scenario/build.hpp"
#include "traceio/reader.hpp"
#include "workloads/cached.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp::service
{

namespace
{

GpuConfig
presetFor(const std::string &name)
{
    if (name == "orin") {
        return GpuConfig::jetsonOrin();
    }
    if (name == "generic") {
        return GpuConfig();
    }
    return GpuConfig::rtx3070();
}

/** Sleep up to @p sec, returning early once @p cancel goes true. */
void
interruptibleSleep(double sec, const std::atomic<bool> &cancel)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(sec));
    while (std::chrono::steady_clock::now() < deadline) {
        if (cancel.load(std::memory_order_relaxed)) {
            return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/**
 * Replace every disk-backed CTA source with an in-memory copy. A
 * running job must never re-read a shared cache file: chaos mode (or
 * an operator's rm) may mutate it, and the lazy replay path treats a
 * file changing underneath as fatal. Called with the cache lock held
 * shared, so the file cannot be corrupted mid-materialization either.
 */
void
materializeFileBacked(std::vector<KernelInfo> &kernels)
{
    for (KernelInfo &k : kernels) {
        if (dynamic_cast<const traceio::FileCtaSource *>(k.source.get()) ==
            nullptr) {
            continue;
        }
        std::vector<CtaTrace> ctas;
        ctas.reserve(k.numCtas());
        for (uint32_t c = 0; c < k.numCtas(); ++c) {
            ctas.push_back(k.source->generate(c));
        }
        k.source = std::make_shared<VectorCtaSource>(std::move(ctas));
    }
}

bool
validRange(uint32_t v, uint32_t lo, uint32_t hi)
{
    return v >= lo && v <= hi;
}

/**
 * Daemon-side envelope caps on an (already schema-valid) scenario. The
 * loader bounds each field against structural insanity; these are the
 * tighter shared-server limits, mirroring the caps admission puts on
 * the spec's own workload parameters.
 */
std::string
scenarioAdmissionError(const scenario::Scenario &sc)
{
    if (sc.graphics.present) {
        if (!validRange(sc.graphics.frames, 1, 8)) {
            return "malformed: scenario graphics.frames out of range "
                   "(1..8)";
        }
        if (!validRange(sc.graphics.width, 16, 640) ||
            !validRange(sc.graphics.height, 16, 480)) {
            return "malformed: scenario graphics resolution out of range "
                   "(16x16..640x480)";
        }
    }
    if (sc.compute.present) {
        const scenario::ComputeDesc &cd = sc.compute;
        if (!validRange(cd.frames, 1, 8)) {
            return "malformed: scenario compute.frames out of range "
                   "(1..8)";
        }
        if (!validRange(cd.width, 16, 640) ||
            !validRange(cd.height, 16, 480)) {
            return "malformed: scenario compute resolution out of range "
                   "(16x16..640x480)";
        }
        if (!validRange(cd.points, 1, 8)) {
            return "malformed: scenario compute.points out of range "
                   "(1..8)";
        }
        if (!validRange(cd.layers, 1, 8)) {
            return "malformed: scenario compute.layers out of range "
                   "(1..8)";
        }
        for (const scenario::KernelNode &kn : cd.kernels) {
            if (!validRange(kn.ctas, 1, 4096)) {
                return "malformed: scenario kernel '" + kn.name +
                       "' ctas out of range (1..4096)";
            }
            if (!validRange(kn.iterations, 1, 1024)) {
                return "malformed: scenario kernel '" + kn.name +
                       "' iterations out of range (1..1024)";
            }
        }
        const uint64_t launches =
            uint64_t{cd.schedule.bursts} * cd.kernels.size();
        if (launches > 256) {
            return "over-quota: scenario launches " +
                   std::to_string(launches) +
                   " kernels (bursts x kernels, cap 256)";
        }
    }
    return "";
}

} // namespace

/** Objects the enqueued trace generators reference during the run. */
struct JobServer::BuildContext
{
    AddressSpace heap{0x8000'0000ull};
    std::unique_ptr<Scene> scene;
    std::unique_ptr<RenderPipeline> pipeline;
    scenario::Materialized scen;
};

JobServer::JobServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cacheDir.empty() ? traceio::TraceCache()
                                   : traceio::TraceCache(cfg_.cacheDir)),
      chaos_(cfg_.chaos)
{
    fatal_if(cfg_.workers == 0, "crispd needs at least one worker");
    fatal_if(cfg_.queueCapacity == 0, "crispd needs a non-zero queue bound");
    if (!cfg_.spoolDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.spoolDir, ec);
        if (ec) {
            warn("crispd: cannot create spool dir %s (%s); spooling off",
                 cfg_.spoolDir.c_str(), ec.message().c_str());
            cfg_.spoolDir.clear();
        }
    }
    workers_.reserve(cfg_.workers);
    for (uint32_t i = 0; i < cfg_.workers; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
    monitor_ = std::thread([this] { monitorLoop(); });
}

JobServer::~JobServer()
{
    drain(0.0);
}

std::string
JobServer::admissionError(const JobSpec &spec) const
{
    const int payloads = (spec.workload.empty() ? 0 : 1) +
        (spec.scene.empty() ? 0 : 1) + (spec.tracePath.empty() ? 0 : 1) +
        (spec.scenarioText.empty() ? 0 : 1);
    if (payloads != 1) {
        return "malformed: exactly one of workload, scene, trace, "
               "scenario required";
    }
    if (!spec.workload.empty() && spec.workload != "MICRO" &&
        spec.workload != "VIO" && spec.workload != "HOLO" &&
        spec.workload != "NN") {
        return "malformed: unknown workload '" + spec.workload +
               "' (MICRO|VIO|HOLO|NN)";
    }
    if (!spec.scene.empty()) {
        const std::vector<std::string> &names = allSceneNames();
        if (std::find(names.begin(), names.end(), spec.scene) ==
            names.end()) {
            return "malformed: unknown scene '" + spec.scene + "'";
        }
    }
    if (!spec.scenarioText.empty()) {
        scenario::Scenario sc;
        scenario::ScenarioError serr;
        if (!scenario::loadScenarioText(spec.scenarioText, "<scenario>",
                                        sc, serr)) {
            return "malformed: scenario " + serr.str();
        }
        const std::string scerr = scenarioAdmissionError(sc);
        if (!scerr.empty()) {
            return scerr;
        }
    }
    if (spec.gpuPreset != "rtx3070" && spec.gpuPreset != "orin" &&
        spec.gpuPreset != "generic") {
        return "malformed: unknown gpu preset '" + spec.gpuPreset +
               "' (rtx3070|orin|generic)";
    }
    if (spec.numSms > 128) {
        return "malformed: numSms " + std::to_string(spec.numSms) +
               " out of range (<= 128)";
    }
    // Parameter bounds keep a single job's build phase (and the eager
    // CTA materialization) within a sane memory/time envelope; anything
    // bigger belongs in a bench run, not a shared daemon.
    if (!validRange(spec.frames, 1, 8)) {
        return "malformed: frames out of range (1..8)";
    }
    if (!validRange(spec.width, 16, 640) ||
        !validRange(spec.height, 16, 480)) {
        return "malformed: resolution out of range (16x16..640x480)";
    }
    if (!validRange(spec.points, 1, 8)) {
        return "malformed: points out of range (1..8)";
    }
    if (!validRange(spec.layers, 1, 8)) {
        return "malformed: layers out of range (1..8)";
    }
    if (!validRange(spec.ctas, 1, 4096)) {
        return "malformed: ctas out of range (1..4096)";
    }
    if (!validRange(spec.iterations, 1, 1024)) {
        return "malformed: iterations out of range (1..1024)";
    }
    if (spec.fault.dropFillProb < 0.0 || spec.fault.dropFillProb > 1.0) {
        return "malformed: drop_fill_prob outside [0,1]";
    }
    if (spec.quota.maxCycles == 0) {
        return "malformed: max_cycles must be positive";
    }
    if (spec.quota.maxCycles > cfg_.maxQuota.maxCycles) {
        return "over-quota: max_cycles " +
               std::to_string(spec.quota.maxCycles) + " exceeds the cap " +
               std::to_string(cfg_.maxQuota.maxCycles);
    }
    if (!(spec.quota.maxWallSec > 0.0)) {
        return "malformed: max_wall_sec must be positive";
    }
    if (spec.quota.maxWallSec > cfg_.maxQuota.maxWallSec) {
        return "over-quota: max_wall_sec exceeds the cap " +
               std::to_string(cfg_.maxQuota.maxWallSec);
    }
    if (spec.quota.maxEngineThreads == 0) {
        return "malformed: max_threads must be positive";
    }
    if (spec.quota.maxEngineThreads > cfg_.maxQuota.maxEngineThreads) {
        return "over-quota: max_threads " +
               std::to_string(spec.quota.maxEngineThreads) +
               " exceeds the cap " +
               std::to_string(cfg_.maxQuota.maxEngineThreads);
    }
    return "";
}

JobServer::Admission
JobServer::submit(const JobSpec &spec)
{
    Admission a;
    const std::string err = admissionError(spec);
    if (!err.empty()) {
        a.error = err;
        std::lock_guard<std::mutex> lk(mu_);
        if (err.rfind("over-quota", 0) == 0) {
            ++counters_.rejectedOverQuota;
        } else {
            ++counters_.rejectedInvalid;
        }
        return a;
    }

    auto rec = std::make_shared<Record>();
    rec->spec = spec;
    if (!spec.scenarioText.empty()) {
        // A scenario's "gpu" section is authoritative for its job; fold
        // it into the spec so runJob builds the scenario's machine.
        scenario::Scenario sc;
        scenario::ScenarioError serr;
        if (scenario::loadScenarioText(spec.scenarioText, "<scenario>",
                                       sc, serr)) {
            rec->spec.gpuPreset = sc.gpu.preset;
            rec->spec.numSms = sc.gpu.numSms;
        }
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (!accepting_) {
            a.error = "shutting-down";
            ++counters_.rejectedShutdown;
            return a;
        }
        if (queue_.size() >= cfg_.queueCapacity) {
            a.error = "queue-full";
            ++counters_.rejectedFull;
            return a;
        }
        rec->id = nextId_++;
        if (chaos_.enabled()) {
            rec->chaos = chaos_.planFor(rec->id);
            // A client-requested fault wins over the chaos plan's: the
            // soak uses explicit faults to pin down hang containment.
            if (rec->chaos.injectFault && !rec->spec.fault.enabled) {
                rec->spec.fault = rec->chaos.fault;
            }
        }
        queue_.push_back(rec);
        jobs_[rec->id] = rec;
        ++counters_.accepted;
        counters_.queuePeak =
            std::max(counters_.queuePeak,
                     static_cast<uint64_t>(queue_.size()));
    }
    queueCv_.notify_one();
    a.accepted = true;
    a.id = rec->id;
    return a;
}

bool
JobServer::cancel(JobId id, const std::string &why)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || jobStateTerminal(it->second->state)) {
        return false;
    }
    cancelLocked(*it->second, CancelCause::Client, why);
    return true;
}

void
JobServer::cancelLocked(Record &rec, CancelCause cause,
                        const std::string &why)
{
    if (rec.cancelCause == CancelCause::None) {
        rec.cancelCause = cause;
        rec.cancelMessage = why;
    }
    rec.cancelFlag.store(true, std::memory_order_relaxed);
}

std::optional<JobReport>
JobServer::report(JobId id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        return std::nullopt;
    }
    const Record &rec = *it->second;
    if (jobStateTerminal(rec.state)) {
        return rec.report;
    }
    JobReport r;
    r.id = rec.id;
    r.name = rec.spec.name;
    r.state = rec.state;
    return r;
}

std::optional<JobReport>
JobServer::wait(JobId id)
{
    std::unique_lock<std::mutex> lk(mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        return std::nullopt;
    }
    std::shared_ptr<Record> rec = it->second;
    doneCv_.wait(lk, [&] { return jobStateTerminal(rec->state); });
    return rec->report;
}

void
JobServer::beginShutdown()
{
    std::lock_guard<std::mutex> lk(mu_);
    accepting_ = false;
}

bool
JobServer::drain(double grace_sec)
{
    bool graceful = false;
    {
        std::unique_lock<std::mutex> lk(mu_);
        accepting_ = false;
        graceful = doneCv_.wait_for(
            lk,
            std::chrono::duration<double>(grace_sec < 0.0 ? 0.0 : grace_sec),
            [&] { return allTerminalLocked(); });
        if (!graceful) {
            for (auto &[id, rec] : jobs_) {
                if (!jobStateTerminal(rec->state)) {
                    cancelLocked(*rec, CancelCause::Shutdown,
                                 "server shutting down");
                }
            }
        }
        // Cancellation lands at tick granularity, so this converges in
        // (worst-case) one watchdog interval of simulation per job; the
        // bound is a backstop against a worker wedged outside the cycle
        // loop, which would otherwise hang shutdown forever.
        const bool landed = doneCv_.wait_for(
            lk, std::chrono::seconds(60),
            [&] { return allTerminalLocked(); });
        if (!landed) {
            warn("crispd: %zu job(s) still not terminal after forced "
                 "cancellation; abandoning them",
                 jobs_.size());
        }
        stop_ = true;
    }
    queueCv_.notify_all();
    doneCv_.notify_all();
    for (std::thread &w : workers_) {
        if (w.joinable()) {
            w.join();
        }
    }
    if (monitor_.joinable()) {
        monitor_.join();
    }
    std::lock_guard<std::mutex> lk(mu_);
    return graceful && allTerminalLocked();
}

size_t
JobServer::queueDepth() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
}

size_t
JobServer::runningJobs() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return running_;
}

JobServer::Counters
JobServer::counters() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return counters_;
}

bool
JobServer::allTerminalLocked() const
{
    for (const auto &[id, rec] : jobs_) {
        if (!jobStateTerminal(rec->state)) {
            return false;
        }
    }
    return true;
}

void
JobServer::bumpTerminalLocked(JobState s)
{
    switch (s) {
      case JobState::Completed: ++counters_.completed; break;
      case JobState::Failed: ++counters_.failed; break;
      case JobState::Cancelled: ++counters_.cancelled; break;
      case JobState::TimedOut: ++counters_.timedOut; break;
      case JobState::OverQuota: ++counters_.overQuota; break;
      case JobState::Hung: ++counters_.hung; break;
      default: break;
    }
}

void
JobServer::workerLoop()
{
    for (;;) {
        std::shared_ptr<Record> rec;
        {
            std::unique_lock<std::mutex> lk(mu_);
            queueCv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_) {
                    return;
                }
                continue;
            }
            rec = queue_.front();
            queue_.pop_front();
            rec->state = JobState::Running;
            rec->started = std::chrono::steady_clock::now();
            rec->startedSet = true;
            ++running_;
        }

        JobReport rep = runJob(*rec);

        // Spool before publishing the terminal state, so "drained"
        // implies "on disk".
        spool(rep);
        {
            std::lock_guard<std::mutex> lk(mu_);
            rec->report = rep;
            rec->state = rep.state;
            --running_;
            bumpTerminalLocked(rep.state);
        }
        doneCv_.notify_all();
    }
}

void
JobServer::monitorLoop()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
        const auto now = std::chrono::steady_clock::now();
        for (auto &[id, rec] : jobs_) {
            if (rec->state != JobState::Running || !rec->startedSet ||
                rec->cancelFlag.load(std::memory_order_relaxed)) {
                continue;
            }
            const double elapsed =
                std::chrono::duration<double>(now - rec->started).count();
            if (rec->spec.quota.maxWallSec > 0.0 &&
                elapsed > rec->spec.quota.maxWallSec) {
                char msg[96];
                std::snprintf(msg, sizeof(msg),
                              "wall-clock deadline (%.3gs) exceeded",
                              rec->spec.quota.maxWallSec);
                cancelLocked(*rec, CancelCause::Deadline, msg);
                continue;
            }
            if (rec->chaos.disconnectAfterSec >= 0.0 &&
                elapsed > rec->chaos.disconnectAfterSec) {
                cancelLocked(*rec, CancelCause::Disconnect,
                             "client disconnected (chaos)");
            }
        }
        doneCv_.wait_for(lk,
                         std::chrono::duration<double>(
                             cfg_.monitorPeriodSec));
    }
}

void
JobServer::finishCancelled(Record &rec, JobReport &rep)
{
    std::lock_guard<std::mutex> lk(mu_);
    rep.state = rec.cancelCause == CancelCause::Deadline
        ? JobState::TimedOut
        : JobState::Cancelled;
    rep.message =
        rec.cancelMessage.empty() ? "cancelled" : rec.cancelMessage;
}

JobReport
JobServer::runJob(Record &rec)
{
    JobReport rep;
    rep.id = rec.id;
    rep.name = rec.spec.name;
    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed = [&t0] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    const JobSpec &spec = rec.spec;

    if (rec.chaos.corruptCache) {
        corruptCacheEntry(cfg_.chaos.seed ^ rec.id);
    }

    Rng backoff(0xb0ffull ^ (rec.id * 0x9e3779b97f4a7c15ull));
    uint32_t attempt = 0;

    for (;;) {
        if (rec.cancelFlag.load(std::memory_order_relaxed)) {
            finishCancelled(rec, rep);
            rep.retries = attempt;
            rep.wallSec = elapsed();
            return rep;
        }

        // Fresh machine per attempt: a retried build must not inherit
        // kernels half-enqueued by the failed one.
        GpuConfig gcfg = presetFor(spec.gpuPreset);
        if (spec.numSms != 0) {
            gcfg.numSms = spec.numSms;
        }
        gcfg.finalize();
        Gpu gpu(gcfg);

        engine::EngineConfig ec;
        ec.threads = spec.quota.maxEngineThreads;
        ec.fastForward = true;
        gpu.setEngine(ec);

        std::unique_ptr<integrity::FaultInjector> injector;
        if (spec.fault.enabled) {
            integrity::FaultConfig fc;
            fc.seed = spec.fault.seed;
            if (spec.fault.freezeSmAt != 0) {
                fc.freezeSm = 0;
                fc.freezeAtCycle = spec.fault.freezeSmAt;
            }
            fc.corruptNthDependency = spec.fault.corruptNthDependency;
            fc.dropFillProb = spec.fault.dropFillProb;
            fc.maxDroppedFills = 4;
            injector =
                std::make_unique<integrity::FaultInjector>(fc);
            gpu.setFaultInjector(injector.get());
        }

        // Scenario jobs create their own graphics/compute streams (in
        // the same order as crisp_sim's hand path, for replay parity);
        // every other payload runs on a single "job" stream.
        const StreamId stream = spec.scenarioText.empty()
            ? gpu.createStream("job")
            : kInvalidStream;
        BuildContext ctx;
        std::string err;
        bool transient = false;
        bool built = false;
        {
            std::shared_lock<std::shared_mutex> cacheLk(cacheMu_);
            built = buildJob(spec, ctx, gpu, stream, err, transient);
        }
        if (!built) {
            if (transient && attempt < cfg_.retry.maxRetries) {
                const double delay =
                    backoffDelaySec(cfg_.retry, attempt, backoff);
                ++attempt;
                {
                    std::lock_guard<std::mutex> lk(mu_);
                    ++counters_.retries;
                }
                interruptibleSleep(delay, rec.cancelFlag);
                continue;
            }
            rep.state = JobState::Failed;
            rep.message = err;
            rep.retries = attempt;
            rep.wallSec = elapsed();
            return rep;
        }
        rep.retries = attempt;

        integrity::RunOptions opts;
        opts.checkInterval = cfg_.watchdogInterval;
        opts.hangThreshold = cfg_.hangThreshold;
        opts.auditInterval = cfg_.auditInterval;
        opts.onHang = integrity::RunOptions::OnHang::Report;
        opts.cancel = &rec.cancelFlag;

        const Gpu::RunResult r = gpu.run(spec.quota.maxCycles, opts);
        rep.cycles = r.cycles;
        rep.instructions =
            gpu.stats().sumOver(&StreamStats::instructions);
        rep.kernelsCompleted =
            gpu.stats().sumOver(&StreamStats::kernelsCompleted);
        if (r.hang.has_value()) {
            rep.state = JobState::Hung;
            rep.message = r.hang->reason;
            for (const integrity::InvariantViolation &v :
                 r.hang->violations) {
                rep.violations.push_back(v.check);
            }
        } else if (r.cancelled) {
            finishCancelled(rec, rep);
        } else if (r.completed) {
            rep.state = JobState::Completed;
        } else {
            rep.state = JobState::OverQuota;
            rep.message = "simulated-cycle quota (" +
                std::to_string(spec.quota.maxCycles) + ") exhausted";
        }
        rep.wallSec = elapsed();
        return rep;
    }
}

bool
JobServer::buildJob(const JobSpec &spec, BuildContext &ctx, Gpu &gpu,
                    StreamId stream, std::string &error, bool &transient)
{
    transient = false;

    if (!spec.scenarioText.empty()) {
        return buildScenarioJob(spec, ctx, gpu, error);
    }
    if (spec.workload == "MICRO") {
        ComputeKernelDesc d;
        d.name = "micro";
        d.ctas = spec.ctas;
        d.threadsPerCta = 128;
        d.regsPerThread = 32;
        d.iterations = spec.iterations;
        d.fp32Ops = 8;
        d.intOps = 2;
        MemPattern p;
        p.kind = MemPatternKind::Broadcast;
        p.base = ctx.heap.alloc(1 << 14, 128);
        p.regionBytes = 1 << 14;
        p.count = 1;
        d.loads.push_back(p);
        gpu.enqueueKernel(stream, buildComputeKernel(d));
        return true;
    }
    if (spec.workload == "VIO" || spec.workload == "HOLO" ||
        spec.workload == "NN") {
        std::vector<KernelInfo> kernels;
        if (spec.workload == "VIO") {
            kernels = buildVioCached(cache_, ctx.heap, spec.frames,
                                     spec.width, spec.height);
        } else if (spec.workload == "HOLO") {
            kernels = buildHoloCached(cache_, ctx.heap, spec.points);
        } else {
            kernels = buildNnCached(cache_, ctx.heap, spec.layers);
        }
        materializeFileBacked(kernels);
        for (KernelInfo &k : kernels) {
            gpu.enqueueKernel(stream, std::move(k));
        }
        return true;
    }
    if (!spec.scene.empty()) {
        ctx.scene = std::make_unique<Scene>(
            buildSceneByName(spec.scene, ctx.heap));
        PipelineConfig pc;
        pc.width = spec.width;
        pc.height = spec.height;
        ctx.pipeline = std::make_unique<RenderPipeline>(pc, ctx.heap);
        const RenderSubmission sub = ctx.pipeline->submit(*ctx.scene);
        submitFrame(gpu, stream, sub);
        return true;
    }

    // Packed CRTR trace. Everything a hostile or stale file could carry
    // is checked here — against *this* job's machine — because the
    // enqueue path treats impossible kernels as programmer error
    // (fatal), and a daemon must not die for a client's file.
    auto reader =
        std::make_shared<traceio::TraceReader>(spec.tracePath);
    if (!reader->valid()) {
        error = reader->error().render();
        transient = reader->error().transient();
        return false;
    }
    if (reader->totals().instrCount > cfg_.maxTraceInstructions) {
        error = "over-quota: trace carries " +
                std::to_string(reader->totals().instrCount) +
                " instructions (cap " +
                std::to_string(cfg_.maxTraceInstructions) + ")";
        return false;
    }
    std::vector<KernelInfo> kernels;
    std::vector<int32_t> deps;
    for (size_t i = 0; i < reader->kernelCount(); ++i) {
        const traceio::KernelHeaderRecord &h = reader->kernel(i).header;
        KernelInfo info;
        info.name = h.name;
        info.grid = h.grid;
        info.cta = h.cta;
        info.regsPerThread = h.regsPerThread;
        info.smemPerCta = h.smemPerCta;
        info.drawcall = h.drawcall;
        if (info.numCtas() == 0) {
            error = "trace kernel '" + h.name + "' launches zero CTAs";
            return false;
        }
        const CtaFootprint fp = CtaFootprint::of(info);
        const SmConfig &sm = gpu.config().sm;
        if (fp.threads > sm.maxWarps * kWarpSize ||
            fp.registers > sm.registers || fp.smemBytes > sm.smemBytes) {
            error = "trace kernel '" + h.name +
                    "' exceeds SM capacity on " + gpu.config().name;
            return false;
        }
        // Materialize CTAs now (readCta has an error channel; a lazy
        // source failing mid-run does not).
        std::vector<CtaTrace> ctas;
        ctas.reserve(info.numCtas());
        for (uint32_t c = 0; c < info.numCtas(); ++c) {
            CtaTrace cta;
            traceio::TraceError cerr;
            if (!reader->readCta(i, c, cta, cerr)) {
                error = cerr.render();
                transient = cerr.transient();
                return false;
            }
            ctas.push_back(std::move(cta));
        }
        info.source =
            std::make_shared<VectorCtaSource>(std::move(ctas));
        kernels.push_back(std::move(info));
        deps.push_back(h.dependsOn);
    }
    std::vector<KernelId> ids;
    ids.reserve(kernels.size());
    for (size_t i = 0; i < kernels.size(); ++i) {
        const int32_t dep = deps[i];
        const KernelId dep_id =
            (dep >= 0 && dep < static_cast<int32_t>(ids.size()))
            ? ids[static_cast<size_t>(dep)]
            : Gpu::kNoDependency;
        ids.push_back(gpu.enqueueKernelAfter(stream, std::move(kernels[i]),
                                             dep_id));
    }
    return true;
}

bool
JobServer::buildScenarioJob(const JobSpec &spec, BuildContext &ctx,
                            Gpu &gpu, std::string &error)
{
    scenario::Scenario sc;
    scenario::ScenarioError serr;
    if (!scenario::loadScenarioText(spec.scenarioText, "<scenario>", sc,
                                    serr)) {
        // Admission validated the text, so this is unreachable short of
        // record corruption — fail the job, never the daemon.
        error = "scenario " + serr.str();
        return false;
    }

    std::string why;
    if (!cache_.enabled() || !scenario::flattenable(sc, why) ||
        scenario::computeReadsFrame(sc)) {
        // Live build: arrival schedules have no packed representation,
        // frame-sampling compute needs the pipeline the graphics entry
        // would have skipped, and without a cache there is nothing to
        // hit. submitScenario mirrors crisp_sim's order bit-for-bit.
        scenario::submitScenario(sc, gpu, ctx.heap, ctx.scen);
        return true;
    }

    // Cacheable: the two sides are independent entries keyed by the
    // canonicalized scenario text (machine section included) plus the
    // heap base. Graphics allocates first on both the build and the
    // replay path, so each side's addresses reproduce no matter which
    // combination of entries hits.
    const std::string base = "crisp-scenario/r1/heap=" +
        std::to_string(ctx.heap.allocatedEnd()) + "/" + sc.canonicalText;

    StreamId gfx = kInvalidStream;
    StreamId cmp = kInvalidStream;
    if (sc.graphics.present) {
        gfx = gpu.createStream("graphics");
    }
    if (sc.compute.present) {
        cmp = gpu.createStream("compute");
    }

    const auto enqueue = [&](StreamId s,
                             traceio::TraceCache::CachedSubmission &&sub) {
        materializeFileBacked(sub.kernels);
        std::vector<KernelId> ids;
        ids.reserve(sub.kernels.size());
        for (size_t i = 0; i < sub.kernels.size(); ++i) {
            const int dep = sub.dependsOn[i];
            const KernelId dep_id =
                (dep >= 0 && dep < static_cast<int>(ids.size()))
                ? ids[static_cast<size_t>(dep)]
                : Gpu::kNoDependency;
            ids.push_back(gpu.enqueueKernelAfter(
                s, std::move(sub.kernels[i]), dep_id));
        }
    };

    if (gfx != kInvalidStream) {
        enqueue(gfx,
                cache_.loadOrBuildSubmission(
                    base + "#gfx", ctx.heap, [&](AddressSpace &h) {
                        traceio::TraceCache::CachedSubmission s;
                        scenario::flattenGraphicsSide(sc, h, ctx.scen,
                                                      s.kernels,
                                                      s.dependsOn);
                        return s;
                    }));
    }
    if (cmp != kInvalidStream) {
        enqueue(cmp,
                cache_.loadOrBuildSubmission(
                    base + "#cmp", ctx.heap, [&](AddressSpace &h) {
                        traceio::TraceCache::CachedSubmission s;
                        scenario::flattenComputeSide(sc, h, nullptr,
                                                     s.kernels,
                                                     s.dependsOn);
                        return s;
                    }));
    }
    return true;
}

void
JobServer::spool(const JobReport &rep)
{
    if (cfg_.spoolDir.empty()) {
        return;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "job-%06llu.json",
                  static_cast<unsigned long long>(rep.id));
    const std::string path = cfg_.spoolDir + "/" + name;
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<uint64_t>(getpid()));
    std::error_code ec;
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        f << rep.toJson().dump() << "\n";
        f.flush();
        if (!f) {
            warn("crispd: cannot spool %s", path.c_str());
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("crispd: cannot move %s into place: %s", tmp.c_str(),
             ec.message().c_str());
        std::filesystem::remove(tmp, ec);
    }
}

void
JobServer::corruptCacheEntry(uint64_t seed)
{
    if (!cache_.enabled()) {
        return;
    }
    std::unique_lock<std::shared_mutex> lk(cacheMu_);
    std::vector<std::string> files;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(cache_.dir(), ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (it->path().extension() == ".crtr") {
            files.push_back(it->path().string());
        }
    }
    if (files.empty()) {
        return;
    }
    std::sort(files.begin(), files.end());
    Rng rng(seed);
    const std::string &victim = files[rng.nextBelow(files.size())];
    std::fstream f(victim,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (!f) {
        return;
    }
    f.seekg(0, std::ios::end);
    const int64_t size = static_cast<int64_t>(f.tellg());
    if (size <= 16) {
        return;
    }
    // Flip one byte past the header: the next open's CRC scan must
    // reject the file, drop it, and rebuild — never replay it.
    const int64_t pos =
        16 + static_cast<int64_t>(
                 rng.nextBelow(static_cast<uint64_t>(size - 16)));
    f.seekg(pos);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x5a);
    f.seekp(pos);
    f.write(&b, 1);
}

} // namespace crisp::service
