#include "service/job.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace crisp::service
{

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Completed: return "completed";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
      case JobState::TimedOut: return "timed-out";
      case JobState::OverQuota: return "over-quota";
      case JobState::Hung: return "hung";
    }
    return "?";
}

bool
jobStateTerminal(JobState s)
{
    return s != JobState::Queued && s != JobState::Running;
}

namespace
{

JobState
stateFromName(const std::string &name)
{
    for (JobState s : {JobState::Queued, JobState::Running,
                       JobState::Completed, JobState::Failed,
                       JobState::Cancelled, JobState::TimedOut,
                       JobState::OverQuota, JobState::Hung}) {
        if (name == jobStateName(s)) {
            return s;
        }
    }
    return JobState::Failed;
}

uint32_t
u32Field(const Json &j, const char *key, uint32_t fallback)
{
    return static_cast<uint32_t>(
        j.at(key).asU64(fallback));
}

} // namespace

JobSpec
JobSpec::fromJson(const Json &j)
{
    JobSpec spec;
    spec.name = j.at("name").asString();
    if (const Json *g = j.find("gpu")) {
        spec.gpuPreset = g->asString();
    }
    spec.numSms = u32Field(j, "num_sms", 0);
    spec.workload = j.at("workload").asString();
    spec.frames = u32Field(j, "frames", spec.frames);
    spec.width = u32Field(j, "width", spec.width);
    spec.height = u32Field(j, "height", spec.height);
    spec.points = u32Field(j, "points", spec.points);
    spec.layers = u32Field(j, "layers", spec.layers);
    spec.ctas = u32Field(j, "ctas", spec.ctas);
    spec.iterations = u32Field(j, "iterations", spec.iterations);
    spec.scene = j.at("scene").asString();
    spec.tracePath = j.at("trace").asString();
    spec.scenarioText = j.at("scenario").asString();
    if (const Json *q = j.find("quota")) {
        spec.quota.maxCycles = q->at("max_cycles").asU64(
            spec.quota.maxCycles);
        spec.quota.maxWallSec = q->at("max_wall_sec").asDouble(
            spec.quota.maxWallSec);
        spec.quota.maxEngineThreads = static_cast<uint32_t>(
            q->at("max_threads").asU64(spec.quota.maxEngineThreads));
    }
    if (const Json *f = j.find("fault")) {
        spec.fault.enabled = true;
        spec.fault.seed = f->at("seed").asU64(spec.fault.seed);
        spec.fault.freezeSmAt = f->at("freeze_sm_at").asU64(0);
        spec.fault.corruptNthDependency = static_cast<uint32_t>(
            f->at("corrupt_dependency").asU64(0));
        spec.fault.dropFillProb = f->at("drop_fill_prob").asDouble(0.0);
    }
    return spec;
}

Json
JobSpec::toJson() const
{
    Json j = Json::object();
    j.set("name", Json::str(name));
    j.set("gpu", Json::str(gpuPreset));
    if (numSms != 0) {
        j.set("num_sms", Json::number(uint64_t{numSms}));
    }
    if (!workload.empty()) {
        j.set("workload", Json::str(workload));
        j.set("frames", Json::number(uint64_t{frames}));
        j.set("width", Json::number(uint64_t{width}));
        j.set("height", Json::number(uint64_t{height}));
        j.set("points", Json::number(uint64_t{points}));
        j.set("layers", Json::number(uint64_t{layers}));
        j.set("ctas", Json::number(uint64_t{ctas}));
        j.set("iterations", Json::number(uint64_t{iterations}));
    }
    if (!scene.empty()) {
        j.set("scene", Json::str(scene));
        j.set("width", Json::number(uint64_t{width}));
        j.set("height", Json::number(uint64_t{height}));
    }
    if (!tracePath.empty()) {
        j.set("trace", Json::str(tracePath));
    }
    if (!scenarioText.empty()) {
        j.set("scenario", Json::str(scenarioText));
    }
    Json q = Json::object();
    q.set("max_cycles", Json::number(quota.maxCycles));
    q.set("max_wall_sec", Json::number(quota.maxWallSec));
    q.set("max_threads", Json::number(uint64_t{quota.maxEngineThreads}));
    j.set("quota", std::move(q));
    if (fault.enabled) {
        Json f = Json::object();
        f.set("seed", Json::number(fault.seed));
        if (fault.freezeSmAt != 0) {
            f.set("freeze_sm_at", Json::number(fault.freezeSmAt));
        }
        if (fault.corruptNthDependency != 0) {
            f.set("corrupt_dependency",
                  Json::number(uint64_t{fault.corruptNthDependency}));
        }
        if (fault.dropFillProb != 0.0) {
            f.set("drop_fill_prob", Json::number(fault.dropFillProb));
        }
        j.set("fault", std::move(f));
    }
    return j;
}

Json
JobReport::toJson() const
{
    Json j = Json::object();
    j.set("id", Json::number(id));
    j.set("name", Json::str(name));
    j.set("state", Json::str(jobStateName(state)));
    j.set("message", Json::str(message));
    j.set("retries", Json::number(uint64_t{retries}));
    j.set("cycles", Json::number(cycles));
    j.set("wall_sec", Json::number(wallSec));
    j.set("instructions", Json::number(instructions));
    j.set("kernels_completed", Json::number(kernelsCompleted));
    Json v = Json::array();
    for (const std::string &check : violations) {
        v.push(Json::str(check));
    }
    j.set("violations", std::move(v));
    return j;
}

JobReport
JobReport::fromJson(const Json &j)
{
    JobReport r;
    r.id = j.at("id").asU64(0);
    r.name = j.at("name").asString();
    r.state = stateFromName(j.at("state").asString());
    r.message = j.at("message").asString();
    r.retries = static_cast<uint32_t>(j.at("retries").asU64(0));
    r.cycles = j.at("cycles").asU64(0);
    r.wallSec = j.at("wall_sec").asDouble(0.0);
    r.instructions = j.at("instructions").asU64(0);
    r.kernelsCompleted = j.at("kernels_completed").asU64(0);
    for (const Json &v : j.at("violations").items()) {
        r.violations.push_back(v.asString());
    }
    return r;
}

} // namespace crisp::service
