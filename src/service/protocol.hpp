#ifndef CRISP_SERVICE_PROTOCOL_HPP
#define CRISP_SERVICE_PROTOCOL_HPP

#include <string>

#include "service/json.hpp"
#include "service/server.hpp"

namespace crisp::service
{

/**
 * @file
 * The crispd wire protocol: line-delimited JSON over a local stream
 * socket. One request object per line, one response object per line,
 * in order. Every response carries "ok"; failures add "error" with a
 * "malformed: ..." / "over-quota: ..." / "unknown-job" reason.
 *
 * Requests:
 *   {"cmd":"ping"}                         -> {"ok":true,"pong":true}
 *   {"cmd":"submit","job":{...}}           -> {"ok":true,"id":N}
 *   {"cmd":"status","id":N}                -> {"ok":true,"report":{...}}
 *   {"cmd":"wait","id":N}                  -> {"ok":true,"report":{...}}
 *                                             (blocks until terminal)
 *   {"cmd":"cancel","id":N}                -> {"ok":true,"cancelled":b}
 *   {"cmd":"counters"}                     -> {"ok":true,"counters":{...}}
 *   {"cmd":"shutdown"}                     -> {"ok":true} and the daemon
 *                                             begins a graceful drain.
 *
 * Dispatch is a pure function of (server, request line) so the whole
 * protocol is unit-testable without sockets; the daemon's connection
 * threads are a thin transport around it.
 */

/**
 * Handle one request line; returns the response line (no newline).
 * Never throws and never fatals on client input — a malformed line is
 * a malformed-response, not a daemon incident. Sets
 * @p shutdown_requested when the client asked the daemon to drain.
 */
std::string handleRequestLine(JobServer &server, const std::string &line,
                              bool &shutdown_requested);

/** Server counters as the protocol's "counters" object. */
Json countersToJson(const JobServer::Counters &c);

} // namespace crisp::service

#endif // CRISP_SERVICE_PROTOCOL_HPP
