#include "service/protocol.hpp"

namespace crisp::service
{

namespace
{

std::string
errorResponse(const std::string &why)
{
    Json r = Json::object();
    r.set("ok", Json::boolean(false));
    r.set("error", Json::str(why));
    return r.dump();
}

std::string
reportResponse(const JobReport &rep)
{
    Json r = Json::object();
    r.set("ok", Json::boolean(true));
    r.set("report", rep.toJson());
    return r.dump();
}

} // namespace

Json
countersToJson(const JobServer::Counters &c)
{
    Json j = Json::object();
    j.set("accepted", Json::number(c.accepted));
    j.set("rejected_invalid", Json::number(c.rejectedInvalid));
    j.set("rejected_over_quota", Json::number(c.rejectedOverQuota));
    j.set("rejected_full", Json::number(c.rejectedFull));
    j.set("rejected_shutdown", Json::number(c.rejectedShutdown));
    j.set("completed", Json::number(c.completed));
    j.set("failed", Json::number(c.failed));
    j.set("cancelled", Json::number(c.cancelled));
    j.set("timed_out", Json::number(c.timedOut));
    j.set("over_quota", Json::number(c.overQuota));
    j.set("hung", Json::number(c.hung));
    j.set("retries", Json::number(c.retries));
    j.set("queue_peak", Json::number(c.queuePeak));
    return j;
}

std::string
handleRequestLine(JobServer &server, const std::string &line,
                  bool &shutdown_requested)
{
    Json req;
    std::string perr;
    if (!Json::parse(line, req, perr)) {
        return errorResponse("malformed: " + perr);
    }
    if (!req.isObject()) {
        return errorResponse("malformed: request must be an object");
    }
    const Json *cmd = req.find("cmd");
    if (cmd == nullptr || !cmd->isString()) {
        return errorResponse("malformed: missing string field 'cmd'");
    }
    const std::string &c = cmd->asString();

    if (c == "ping") {
        Json r = Json::object();
        r.set("ok", Json::boolean(true));
        r.set("pong", Json::boolean(true));
        return r.dump();
    }

    if (c == "submit") {
        const Json *job = req.find("job");
        if (job == nullptr || !job->isObject()) {
            return errorResponse("malformed: missing object field 'job'");
        }
        const JobServer::Admission a = server.submit(JobSpec::fromJson(*job));
        if (!a.accepted) {
            return errorResponse(a.error);
        }
        Json r = Json::object();
        r.set("ok", Json::boolean(true));
        r.set("id", Json::number(a.id));
        return r.dump();
    }

    if (c == "status" || c == "wait" || c == "cancel") {
        const Json *idField = req.find("id");
        if (idField == nullptr || !idField->isNumber()) {
            return errorResponse("malformed: missing numeric field 'id'");
        }
        const JobId id = idField->asU64();
        if (c == "cancel") {
            const bool cancelled = server.cancel(id);
            Json r = Json::object();
            r.set("ok", Json::boolean(true));
            r.set("cancelled", Json::boolean(cancelled));
            return r.dump();
        }
        const std::optional<JobReport> rep =
            c == "wait" ? server.wait(id) : server.report(id);
        if (!rep.has_value()) {
            return errorResponse("unknown-job");
        }
        return reportResponse(*rep);
    }

    if (c == "counters") {
        Json r = Json::object();
        r.set("ok", Json::boolean(true));
        r.set("counters", countersToJson(server.counters()));
        return r.dump();
    }

    if (c == "shutdown") {
        shutdown_requested = true;
        server.beginShutdown();
        Json r = Json::object();
        r.set("ok", Json::boolean(true));
        return r.dump();
    }

    return errorResponse("malformed: unknown cmd '" + c + "'");
}

} // namespace crisp::service
