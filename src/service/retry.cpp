#include "service/retry.hpp"

#include <algorithm>

namespace crisp::service
{

double
backoffDelaySec(const RetryPolicy &policy, uint32_t attempt, Rng &rng)
{
    // 2^attempt without overflow: the cap dominates long before 2^63.
    const double exp =
        attempt >= 63 ? policy.maxDelaySec
                      : policy.baseDelaySec *
                            static_cast<double>(uint64_t{1} << attempt);
    const double ceiling =
        std::clamp(exp, 0.0, policy.maxDelaySec);
    return rng.nextDouble() * ceiling;
}

} // namespace crisp::service
