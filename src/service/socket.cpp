#include "service/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crisp::service
{

namespace
{

/** Fill a sockaddr_un; false when the path does not fit. */
bool
makeAddr(const std::string &path, sockaddr_un &addr, std::string &err)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        err = "socket path too long: " + path;
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
listenUnix(const std::string &path, int backlog, std::string &err)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr, err)) {
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        err = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, backlog) != 0) {
        err = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &err)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr, err)) {
        return -1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        err = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a client that hung up mid-response costs an
        // EPIPE return, not a SIGPIPE through the whole daemon.
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
LineReader::readLine(std::string &line)
{
    for (;;) {
        const size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            line.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return true;
        }
        if (buf_.size() > kMaxLine) {
            return false;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            return false;
        }
        buf_.append(chunk, static_cast<size_t>(n));
    }
}

} // namespace crisp::service
