#include "service/chaos.hpp"

namespace crisp::service
{

ChaosPlan
ChaosMonkey::planFor(JobId id) const
{
    ChaosPlan plan;
    if (!enabled()) {
        return plan;
    }
    // splitmix-style mix so consecutive job ids land on uncorrelated
    // streams; the Rng's own reseed expands it further.
    Rng rng(cfg_.seed ^ (id * 0x9e3779b97f4a7c15ull));

    if (rng.nextDouble() < cfg_.faultProb) {
        plan.injectFault = true;
        plan.fault.enabled = true;
        plan.fault.seed = rng.next();
        // Pick one fault family per job; each must leave the job in a
        // terminal state the server can classify:
        //   frozen SM      -> watchdog hang (no forward progress),
        //   corrupt dep    -> stream-liveness violation,
        //   dropped fill   -> counter-audit / MSHR-leak violation.
        switch (rng.nextBelow(3)) {
          case 0:
            plan.fault.freezeSmAt = 100 + rng.nextBelow(400);
            break;
          case 1:
            plan.fault.corruptNthDependency =
                1 + static_cast<uint32_t>(rng.nextBelow(3));
            break;
          default:
            plan.fault.dropFillProb = 0.05;
            break;
        }
    }
    if (rng.nextDouble() < cfg_.corruptCacheProb) {
        plan.corruptCache = true;
    }
    if (rng.nextDouble() < cfg_.disconnectProb) {
        plan.disconnectAfterSec =
            rng.nextDouble() * cfg_.maxDisconnectDelaySec;
    }
    return plan;
}

} // namespace crisp::service
