#ifndef CRISP_SERVICE_SOCKET_HPP
#define CRISP_SERVICE_SOCKET_HPP

#include <string>

namespace crisp::service
{

/**
 * @file
 * Thin AF_UNIX stream-socket helpers for the crispd transport. No
 * framing beyond newline-delimited lines (the protocol layer's unit);
 * no global state; every failure is a return value, never a fatal —
 * a flaky client must not take the daemon down.
 */

/**
 * Create, bind and listen on a unix socket at @p path (an existing
 * socket file is unlinked first — crispd owns its socket path).
 * Returns the listening fd, or -1 with @p err filled.
 */
int listenUnix(const std::string &path, int backlog, std::string &err);

/** Connect to a unix socket; returns the fd or -1 with @p err filled. */
int connectUnix(const std::string &path, std::string &err);

/** Write all of @p data, retrying short writes; false on error/EPIPE. */
bool writeAll(int fd, const std::string &data);

/**
 * Buffered newline-delimited reader over one fd. readLine strips the
 * trailing '\n' and returns false on EOF or error with nothing (or a
 * partial unterminated line) pending. Lines are capped at 1 MiB — a
 * client streaming an unbounded "line" is a protocol violation, not a
 * reason to grow without limit.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    bool readLine(std::string &line);

  private:
    static constexpr size_t kMaxLine = 1 << 20;

    int fd_;
    std::string buf_;
};

} // namespace crisp::service

#endif // CRISP_SERVICE_SOCKET_HPP
