#ifndef CRISP_SERVICE_RETRY_HPP
#define CRISP_SERVICE_RETRY_HPP

#include <cstdint>

#include "common/rng.hpp"

namespace crisp::service
{

/**
 * Retry policy for transient job failures (trace-cache read races,
 * corrupt cache entries, I/O errors): capped exponential backoff with
 * full jitter. Deterministic given the Rng, so soak tests replay the
 * exact same schedule.
 */
struct RetryPolicy
{
    /** Attempts after the first (0 = fail immediately). */
    uint32_t maxRetries = 2;
    /** First-retry backoff ceiling, doubled per attempt. */
    double baseDelaySec = 0.01;
    /** Hard cap on any single backoff. */
    double maxDelaySec = 0.5;
};

/**
 * Backoff before retry @p attempt (0-based): uniform in
 * [0, min(base * 2^attempt, cap)) — "full jitter", which decorrelates
 * retry storms from many jobs failing on the same shared resource at
 * once (e.g. a corrupted cache entry every worker hits together).
 */
double backoffDelaySec(const RetryPolicy &policy, uint32_t attempt,
                       Rng &rng);

} // namespace crisp::service

#endif // CRISP_SERVICE_RETRY_HPP
