#ifndef CRISP_ENGINE_WORKER_POOL_HPP
#define CRISP_ENGINE_WORKER_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crisp
{
namespace engine
{

/**
 * Persistent worker pool for the parallel cycle engine.
 *
 * `run(fn)` executes fn(lane) once per lane, with lane 0 running on the
 * calling thread and lanes 1..lanes-1 on persistent worker threads, and
 * returns only after every lane has finished — one fork/join barrier per
 * call. The barrier is latency-critical (the engine crosses it every
 * simulated cycle, i.e. every few microseconds), so both sides spin
 * briefly on atomics before parking on a condition variable: a busy
 * simulation never pays a futex round-trip, an idle one stops burning
 * cores after a few tens of microseconds.
 *
 * The pool imposes no ordering between lanes; determinism is the
 * caller's job (shard state disjointly, merge in a fixed order after
 * run() returns).
 */
class WorkerPool
{
  public:
    /** @param lanes total lanes including the caller (min 1). */
    explicit WorkerPool(uint32_t lanes);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    uint32_t lanes() const
    {
        return static_cast<uint32_t>(workers_.size()) + 1;
    }

    /** Run fn(lane) on every lane; returns after all lanes complete. */
    void run(const std::function<void(uint32_t lane)> &fn);

  private:
    void workerMain(uint32_t lane);

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Valid between a generation bump and the matching completion;
     *  published by the release bump of generation_. */
    const std::function<void(uint32_t)> *job_ = nullptr;
    std::atomic<uint64_t> generation_{0};
    std::atomic<uint32_t> remaining_{0};
    std::atomic<uint32_t> sleepers_{0};
    std::atomic<bool> callerWaiting_{false};
    std::atomic<bool> shutdown_{false};
    /** Spin iterations before parking; 0 on an oversubscribed host. */
    uint32_t spinBudget_ = 0;
    std::vector<std::thread> workers_;
};

} // namespace engine
} // namespace crisp

#endif // CRISP_ENGINE_WORKER_POOL_HPP
