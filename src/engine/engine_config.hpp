#ifndef CRISP_ENGINE_ENGINE_CONFIG_HPP
#define CRISP_ENGINE_ENGINE_CONFIG_HPP

#include <cstdint>

namespace crisp
{
namespace engine
{

/**
 * Cycle-engine configuration: how the per-cycle work of the GPU model is
 * scheduled onto host threads.
 *
 * The default (one thread, no staging, no fast-forward) is the bit-exact
 * legacy path: SMs step serially and talk to the L2 fabric directly.
 * Raising `threads` shards SM stepping across a persistent worker pool
 * with deterministic merge points, so simulation outputs are identical
 * for any thread count (see docs/ARCHITECTURE.md, "Parallel cycle
 * engine").
 */
struct EngineConfig
{
    /**
     * Worker lanes stepping SM shards (including the calling thread).
     * 0 and 1 both mean serial execution. Values above the SM count are
     * clamped: an SM is the unit of sharding. Values above the host's
     * core count are also clamped (oversubscribed lanes time-slice one
     * core and the per-cycle barrier makes that strictly slower than
     * serial) unless allowOversubscribe is set.
     */
    uint32_t threads = 1;

    /**
     * Permit more lanes than host cores. Engine outputs are identical
     * for any thread count, so determinism/stress tests set this to
     * exercise the multi-lane code paths on small hosts; performance
     * runs leave it off and get the clamp.
     */
    bool allowOversubscribe = false;

    /**
     * Force staged fabric semantics even when stepping serially. With
     * more than one thread staging is always on; this knob exists so
     * determinism tests can run the staged path at one thread and prove
     * the outputs do not depend on the thread count.
     */
    bool stagedFabric = false;

    /**
     * Idle-cycle fast-forward: when a tick performs no work anywhere in
     * the machine, compute the earliest cycle at which anything can
     * happen (writeback, L2/DRAM event, kernel promotion, counter
     * sample, controller epoch) and jump there in one step, crediting
     * the skipped cycles to the per-stream active-cycle counters.
     * Defaults to off: the legacy path ticks through idle spells.
     */
    bool fastForward = false;

    /** True when SM stepping must stage instead of submitting directly. */
    bool staged() const { return threads > 1 || stagedFabric; }
};

} // namespace engine
} // namespace crisp

#endif // CRISP_ENGINE_ENGINE_CONFIG_HPP
