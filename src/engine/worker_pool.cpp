#include "engine/worker_pool.hpp"

namespace crisp
{
namespace engine
{
namespace
{

/**
 * Spin budget before parking on the condition variable. At the engine's
 * per-cycle cadence (a few microseconds between barriers) the budget
 * covers the gap comfortably; an idle machine parks after ~10-50 us.
 * When the host has fewer cores than the pool has lanes, spinning only
 * steals cycles from the lane holding the work, so the budget drops to
 * zero and every wait parks immediately.
 */
constexpr uint32_t kSpinLimit = 20000;

uint32_t
spinBudgetFor(uint32_t lanes)
{
    const uint32_t cores = std::thread::hardware_concurrency();
    return (cores != 0 && cores >= lanes) ? kSpinLimit : 0;
}

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

} // namespace

WorkerPool::WorkerPool(uint32_t lanes) : spinBudget_(spinBudgetFor(lanes))
{
    const uint32_t extra = lanes > 1 ? lanes - 1 : 0;
    workers_.reserve(extra);
    for (uint32_t i = 0; i < extra; ++i) {
        workers_.emplace_back([this, lane = i + 1] { workerMain(lane); });
    }
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (std::thread &t : workers_) {
        t.join();
    }
}

void
WorkerPool::workerMain(uint32_t lane)
{
    uint64_t seen = 0;
    for (;;) {
        // Fast path: spin until the next generation is published.
        uint32_t spins = 0;
        while (generation_.load(std::memory_order_acquire) == seen &&
               !shutdown_.load(std::memory_order_acquire)) {
            if (++spins > spinBudget_) {
                std::unique_lock<std::mutex> lock(mutex_);
                sleepers_.fetch_add(1, std::memory_order_relaxed);
                wake_.wait(lock, [&] {
                    return shutdown_.load(std::memory_order_acquire) ||
                           generation_.load(std::memory_order_acquire) !=
                               seen;
                });
                sleepers_.fetch_sub(1, std::memory_order_relaxed);
                break;
            }
            cpuRelax();
        }
        if (shutdown_.load(std::memory_order_acquire)) {
            return;
        }
        seen = generation_.load(std::memory_order_acquire);
        (*job_)(lane);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            callerWaiting_.load(std::memory_order_acquire)) {
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_one();
        }
    }
}

void
WorkerPool::run(const std::function<void(uint32_t)> &fn)
{
    if (workers_.empty()) {
        fn(0);
        return;
    }
    job_ = &fn;
    remaining_.store(static_cast<uint32_t>(workers_.size()),
                     std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
        // A worker past the generation re-check under the lock cannot
        // sleep through this bump; one before it sees the new value in
        // its wait predicate. Either way the notify cannot be lost.
        std::lock_guard<std::mutex> lock(mutex_);
        wake_.notify_all();
    }
    fn(0);
    uint32_t spins = 0;
    while (remaining_.load(std::memory_order_acquire) != 0) {
        if (++spins > spinBudget_) {
            std::unique_lock<std::mutex> lock(mutex_);
            callerWaiting_.store(true, std::memory_order_release);
            done_.wait(lock, [&] {
                return remaining_.load(std::memory_order_acquire) == 0;
            });
            callerWaiting_.store(false, std::memory_order_release);
            break;
        }
        cpuRelax();
    }
    job_ = nullptr;
}

} // namespace engine
} // namespace crisp
