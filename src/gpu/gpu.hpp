#ifndef CRISP_GPU_GPU_HPP
#define CRISP_GPU_GPU_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "core/sm.hpp"
#include "engine/engine_config.hpp"
#include "gpu/gpu_config.hpp"
#include "integrity/report.hpp"
#include "mem/l2_subsystem.hpp"

namespace crisp
{

namespace engine
{
class WorkerPool;
}

namespace integrity
{
class FaultInjector;
}

namespace telemetry
{
class TelemetrySink;
class SelfProfiler;
}

class Gpu;

/**
 * Remote-memory port of one device in a multi-GPU machine.
 *
 * A Gpu with a port attached asks it who owns each submitted line; lines
 * owned by another device are handed to the port (the inter-GPU fabric)
 * instead of the local L2, and fills that arrive at a peer's L2 are handed
 * back through it. Implemented by mgpu::InterGpuFabric; single-GPU builds
 * never attach one, so the single-device paths are untouched.
 */
class RemoteMemPort
{
  public:
    virtual ~RemoteMemPort() = default;

    /** Device that currently owns @p line (page migration may move it). */
    virtual uint32_t ownerOf(Addr line) const = 0;

    /**
     * Route a request from its stamped srcDevice toward ownerOf(line).
     * @return false when the link's bounded request queue is full — the
     * SM parks the request in its egress retry queue exactly as it does
     * for a refused local L2 submit.
     */
    virtual bool submitRemote(MemRequest req, Cycle now) = 0;

    /**
     * Hand back a fill that completed on @p from_device's L2 on behalf
     * of a peer (resp.srcDevice != from_device). Responses are never
     * refused; the fabric queues them and charges response-link
     * latency/bandwidth on the from_device → srcDevice link.
     */
    virtual void submitRemoteResponse(MemRequest resp, uint32_t from_device,
                                      Cycle now) = 0;
};

/** GPU spatial-partitioning methods modeled by CRISP (§III-A, Fig 4). */
enum class PartitionPolicy
{
    /**
     * Accel-Sim default: CTAs of one kernel launch exhaustively before the
     * next kernel is considered; big kernels leave no room for concurrency.
     */
    Exhaustive,
    /** MPS: SMs split between streams; L2 and memory fully shared. */
    Mps,
    /** MiG: SMs split and L2 banks partitioned per stream. */
    Mig,
    /**
     * Fine-grained intra-SM partitioning (Vulkan async-compute style):
     * every SM runs both streams under per-stream resource quotas.
     */
    FineGrained,
};

/** Partition policy plus per-stream resource shares (default: even). */
struct PartitionConfig
{
    PartitionPolicy policy = PartitionPolicy::Exhaustive;
    /** Resource share per stream; missing streams share what is left. */
    std::map<StreamId, double> share;
    /**
     * Under FineGrained sharing, warps of this stream issue ahead of other
     * streams' warps — the async-compute arrangement where the graphics
     * queue keeps priority and compute fills idle issue slots. Ignored for
     * the inter-SM policies.
     */
    StreamId priorityStream = kInvalidStream;
};

/**
 * Observer/controller attached to the GPU's cycle loop.
 *
 * The dynamic partitioning mechanisms (Warped-Slicer, TAP) are implemented
 * as controllers: they watch launches, completions and cycles, and steer
 * quotas / set windows through the Gpu's public hooks.
 */
class GpuController
{
  public:
    virtual ~GpuController() = default;
    virtual void onKernelLaunch(Gpu &gpu, const KernelInfo &info,
                                KernelId id)
    {
        (void)gpu;
        (void)info;
        (void)id;
    }
    virtual void onKernelComplete(Gpu &gpu, StreamId stream, KernelId id)
    {
        (void)gpu;
        (void)stream;
        (void)id;
    }
    virtual void onCycle(Gpu &gpu, Cycle now)
    {
        (void)gpu;
        (void)now;
    }

    /**
     * Earliest future cycle at which this controller needs onCycle to run
     * during a machine-wide idle spell. The default (now + 1) disables
     * idle fast-forward while the controller is attached — controllers
     * that only act on epoch boundaries can override this to let the
     * engine jump to their next epoch.
     */
    virtual Cycle nextWakeCycle(const Gpu &gpu, Cycle now) const
    {
        (void)gpu;
        return now + 1;
    }
};

/**
 * Top-level GPU model: SMs + shared L2/DRAM + the CTA scheduler with the
 * paper's partitioning policies, driven by in-order streams of trace
 * kernels. Statistics are kept **per stream** (§III-A).
 */
class Gpu : public MemFabricPort
{
  public:
    explicit Gpu(const GpuConfig &cfg);
    ~Gpu();

    /** Create an in-order command stream. */
    StreamId createStream(const std::string &name);

    /** Sentinel for enqueueKernelAfter: no dependency. */
    static constexpr KernelId kNoDependency = 0;

    /**
     * Append a kernel to a stream (kernel.stream is overwritten). The
     * kernel starts only after the previously enqueued kernel on this
     * stream completes (classic in-order stream semantics).
     */
    KernelId enqueueKernel(StreamId stream, KernelInfo info);

    /**
     * Append a kernel that may start as soon as @p depends_on (a kernel
     * previously enqueued on the same stream) has completed —
     * kNoDependency starts immediately. This models the rendering
     * pipeline's drawcall overlap: a drawcall's fragment kernel waits only
     * for its own vertex kernel, not for earlier drawcalls to drain
     * (Immediate Tiled Rendering keeps multiple draws in flight).
     */
    KernelId enqueueKernelAfter(StreamId stream, KernelInfo info,
                                KernelId depends_on);

    /**
     * Like enqueueKernelAfter, with a fixed-function stage delay: the
     * kernel becomes eligible @p delay cycles after its dependency
     * completes. Models the paper's §IV suggestion that unmodeled
     * fixed-function stages (primitive assembly, binning) behave as FIFO
     * queues with fixed latency between the shader stages.
     */
    KernelId enqueueKernelAfter(StreamId stream, KernelInfo info,
                                KernelId depends_on, Cycle delay);

    /**
     * Append a kernel that becomes eligible no earlier than the absolute
     * cycle @p not_before, independent of other kernels' completion.
     * Models an arrival schedule: work that reaches the GPU at a known
     * wall-clock point (a burst of inference requests landing mid-frame)
     * rather than as a dependency of earlier work. Stream order still
     * holds — a kernel queued behind it cannot overtake it — so arrival
     * times on one stream should be enqueued in ascending order.
     */
    KernelId enqueueKernelAt(StreamId stream, KernelInfo info,
                             Cycle not_before);

    /**
     * Select the partitioning method; applies SM/bank masks and quotas.
     * Shares must be non-negative and sum to at most 1.0, and every named
     * stream (including priorityStream) must exist.
     */
    void setPartition(const PartitionConfig &partition);

    /** Attach a dynamic controller (not owned). */
    void addController(GpuController *controller);

    /**
     * Attach a fault injector (not owned; nullptr detaches). Wires the
     * memory-system fault hook into the L2 and lets the injector freeze
     * SM issue stages and corrupt enqueued dependency ids.
     */
    void setFaultInjector(integrity::FaultInjector *injector);

    /**
     * Attach a telemetry sink (not owned; nullptr detaches). Wires the
     * sink into the L2 and every SM, registers the existing streams, and
     * arms the counter sampler per the sink's config. Emission sites are
     * gated on the pointer, so a detached sink costs one branch each.
     */
    void setTelemetry(telemetry::TelemetrySink *sink);

    /** The attached telemetry sink, or nullptr (controllers emit via this). */
    telemetry::TelemetrySink *telemetry() const { return telemetry_; }

    /**
     * Configure the cycle engine (thread count, staged fabric, idle
     * fast-forward). Must be called before the first tick; threads are
     * clamped to the SM count. The default EngineConfig is the bit-exact
     * serial legacy path.
     */
    void setEngine(const engine::EngineConfig &engine);
    const engine::EngineConfig &engineConfig() const { return engine_; }

    /** Idle fast-forward bookkeeping: jumps taken and cycles skipped. */
    uint64_t fastForwardJumps() const { return ffJumps_; }
    uint64_t fastForwardCycles() const { return ffCyclesSkipped_; }

    /** Advance one core cycle. */
    void tick();

    /** Run until everything drains or @p max_cycles elapse. */
    struct RunResult
    {
        Cycle cycles = 0;
        bool completed = false;
        /** Set when RunOptions::cancel stopped the run between ticks. */
        bool cancelled = false;
        /** Set when the integrity layer stopped the run (OnHang::Report). */
        std::optional<integrity::HangReport> hang;
    };
    /**
     * With a non-zero opts.checkInterval, a forward-progress watchdog and
     * the cross-layer invariant checkers audit the machine while it runs;
     * a detected hang or violation stops the run with a HangReport (or
     * panics, per opts.onHang).
     */
    RunResult run(Cycle max_cycles = ~0ull,
                  const integrity::RunOptions &opts = {});

    bool done() const;
    Cycle now() const { return cycle_; }

    // --- Introspection and controller hooks -------------------------------

    StatsRegistry &stats() { return stats_; }
    const StatsRegistry &stats() const { return stats_; }
    L2Subsystem &l2() { return *l2_; }
    const L2Subsystem &l2() const { return *l2_; }
    /** Access one SM; fatal on an out-of-range index. */
    Sm &sm(uint32_t index);
    uint32_t numSms() const { return static_cast<uint32_t>(sms_.size()); }
    /** Read-only view over all SMs, in index order (audit/integrity). */
    std::vector<const Sm *> constSms() const;
    const GpuConfig &config() const { return cfg_; }

    /** Uniform intra-SM quota for @p stream as a fraction of SM resources. */
    void setUniformQuota(StreamId stream, double share);

    /** Per-SM quota override (Warped-Slicer's sampling phase). */
    void setSmQuota(uint32_t sm_index, StreamId stream, const SmQuota &quota);

    /** Quota helper: footprint share of one SM's resources. */
    SmQuota quotaFromShare(double share) const;

    /** Streams that still have queued or running kernels. */
    uint32_t busyStreams() const;

    /** Number of kernels still queued (not yet fully committed). */
    uint64_t pendingKernels() const;

    /** Kernels of @p stream still queued or in flight (0 for unknown). */
    uint64_t pendingKernels(StreamId stream) const;

    /** First cycle at which every kernel of @p stream had committed. */
    Cycle streamFinishCycle(StreamId stream) const;

    /** One completed kernel's execution record. */
    struct KernelRecord
    {
        KernelId id = 0;
        std::string name;
        StreamId stream = 0;
        uint32_t ctas = 0;
        Cycle launchCycle = 0;
        Cycle completeCycle = 0;
    };

    /** Execution log of every completed kernel, in completion order. */
    const std::vector<KernelRecord> &kernelLog() const
    {
        return kernelLog_;
    }

    // MemFabricPort
    bool submitToL2(MemRequest req, Cycle now) override;

    // --- Multi-GPU lift ----------------------------------------------------

    /** Device id within a MultiGpu machine (0 for standalone). */
    uint32_t deviceId() const { return deviceId_; }
    void setDeviceId(uint32_t id) { deviceId_ = id; }

    /** Attach the inter-GPU fabric (not owned; nullptr detaches). */
    void setRemotePort(RemoteMemPort *port) { remote_ = port; }

    /**
     * Base for stream ids created by this device. MultiGpu gives every
     * device a disjoint range so per-stream stats keyed by id stay
     * unambiguous machine-wide. Must be set before any createStream.
     */
    void setStreamIdBase(StreamId base);

    /**
     * Fabric delivery of a remote request into this device's local L2
     * (routing already decided; never re-routed). @return false when the
     * destination bank queue refuses — the fabric keeps it parked.
     */
    bool acceptRemoteRequest(MemRequest req, Cycle now);

    /**
     * Fabric delivery of a remote fill back to the SM that issued it.
     * Counts the stream's remoteResponses on this (the issuing) device.
     */
    void deliverRemoteResponse(const MemRequest &resp, Cycle now);

  private:
    struct QueuedKernel
    {
        KernelId id = 0;
        KernelInfo info;
        KernelId dependsOn = kNoDependency;
        Cycle delay = 0;          ///< Fixed-function latency after dep.
        Cycle notBefore = 0;      ///< Earliest eligibility (arrival time).
    };

    struct ActiveKernel
    {
        KernelId id = 0;
        KernelInfo info;
        uint32_t nextCta = 0;
        uint32_t ctasDone = 0;
    };

    struct StreamState
    {
        std::string name;
        std::deque<QueuedKernel> queue;
        std::vector<ActiveKernel> active;
        std::set<KernelId> completed;
        std::map<KernelId, Cycle> completedAt;
        std::set<KernelId> everEnqueued;
        KernelId lastEnqueued = kNoDependency;
        Cycle finishCycle = 0;
        bool everUsed = false;
    };

    /** Kernels of one stream allowed in flight simultaneously. */
    static constexpr size_t kMaxActiveKernels = 6;

    KernelId enqueueInternal(StreamId stream, KernelInfo info,
                             KernelId depends_on, Cycle delay,
                             Cycle not_before);
    void applyPartition();
    void issueCtas();
    void onCtaDone(uint32_t sm_id, StreamId stream, KernelId kernel);
    void promoteReadyKernels(StreamState &ss);
    const std::vector<uint32_t> &allowedSms(StreamId stream);
    void sampleCounters();
    /**
     * Round-robin fabric arbitration: the per-cycle memory phase shared
     * by the serial and staged engines. Grants rotate across SMs from a
     * start derived purely from the cycle number (fast-forward safe),
     * one request per SM per grant round, until no SM can make progress.
     * Main thread only, before any SM steps.
     */
    void memoryPhase();
    void stepSmsStaged();

    // Idle fast-forward internals (used by run()).
    uint64_t totalWorkCount() const;
    Cycle nextWakeCycle() const;
    void fastForwardTo(Cycle target);

    // Integrity-layer internals (watchdog state lives in run()).
    uint64_t progressSignature() const;
    bool progressImminent() const;
    void checkStreamLiveness(
        std::vector<integrity::InvariantViolation> &out) const;
    std::vector<integrity::HangReport::StreamRow> streamRows() const;
    integrity::HangReport
    buildHangReport(Cycle last_progress, std::string reason,
                    std::vector<integrity::InvariantViolation> violations,
                    std::vector<integrity::HangReport::MshrLeakRow> leaks)
        const;

    GpuConfig cfg_;
    StatsRegistry stats_;
    std::unique_ptr<L2Subsystem> l2_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::map<StreamId, StreamState> streams_;
    std::map<StreamId, std::vector<uint32_t>> smAssignment_;
    std::vector<uint32_t> allSms_;
    /** Per-tick "SM accepted a CTA this cycle" scratch for issueCtas():
     *  reused so the per-cycle scheduler pass does not allocate. */
    std::vector<uint8_t> issueLaunchedScratch_;
    /** Arbitration rotation scratch for memoryPhase(), reused per tick. */
    std::vector<Sm *> memPhaseScratch_;
    std::vector<GpuController *> controllers_;
    integrity::FaultInjector *faultInjector_ = nullptr;
    PartitionConfig partition_;
    std::vector<KernelRecord> kernelLog_;
    std::map<KernelId, Cycle> launchCycles_;
    Cycle cycle_ = 0;
    StreamId nextStream_ = 0;
    KernelId nextKernel_ = 1;
    uint32_t deviceId_ = 0;
    RemoteMemPort *remote_ = nullptr;

    // --- Cycle engine ------------------------------------------------------

    engine::EngineConfig engine_;
    std::unique_ptr<engine::WorkerPool> pool_;
    uint64_t ffJumps_ = 0;
    uint64_t ffCyclesSkipped_ = 0;

    // --- Telemetry ---------------------------------------------------------

    /** Kernel accounting for one drawcall's begin/end span. */
    struct DrawcallTrack
    {
        uint32_t kernelsLeft = 0;   ///< Enqueued kernels not yet complete.
        bool begun = false;         ///< Begin event already emitted.
    };

    /**
     * Column indices of the counter sampler, resolved once per sink
     * instead of re-interning every name (and re-building "occ." + name
     * strings) on every sample. Interning happens lazily on the first
     * sample so the column order of the emitted CSV is unchanged:
     * occupancy columns first (stream-id order), then the fixed machine
     * columns, then occupancy columns of streams created later.
     */
    struct SampleColumns
    {
        bool resolved = false;
        std::map<StreamId, uint32_t> occ;
        uint32_t smActiveWarps = 0, smReady = 0, smAtBarrier = 0;
        uint32_t smWaitScoreboard = 0, smWaitExecUnit = 0;
        uint32_t smWaitSmem = 0, smWaitLdst = 0, l1Mshr = 0;
        uint32_t l2Accesses = 0, l2Hits = 0, l2HitRate = 0, l2Mshr = 0;
        uint32_t l2CompTexture = 0, l2CompPipeline = 0;
        uint32_t l2CompCompute = 0, l2Valid = 0;
    };

    telemetry::TelemetrySink *telemetry_ = nullptr;
    telemetry::SelfProfiler *profiler_ = nullptr;
    SampleColumns sampleColumns_;
    std::map<std::pair<StreamId, uint32_t>, DrawcallTrack> drawcalls_;
    Cycle sampleInterval_ = 0;
    Cycle compositionInterval_ = 0;
    Cycle nextSample_ = 0;
    Cycle nextComposition_ = 0;
    CacheComposition lastComposition_;
};

} // namespace crisp

#endif // CRISP_GPU_GPU_HPP
