#ifndef CRISP_GPU_GPU_CONFIG_HPP
#define CRISP_GPU_GPU_CONFIG_HPP

#include <string>

#include "core/sm_config.hpp"
#include "engine/engine_config.hpp"
#include "mem/l2_subsystem.hpp"

namespace crisp
{

/**
 * Whole-GPU configuration (the paper's Table II).
 *
 * Two presets are provided: the NVIDIA RTX 3070 desktop GPU and the Jetson
 * Orin mobile GPU, matching the paper's simulation configurations: SM count,
 * 64 warps and 4 schedulers per SM, 4 units of each execution class, 64K
 * registers per SM, a 4 MB L2 and the respective DRAM bandwidths converted
 * into bytes per core cycle.
 */
struct GpuConfig
{
    std::string name = "generic";
    uint32_t numSms = 16;
    double coreClockMhz = 1000.0;
    std::string memoryDesc = "DRAM";
    double memoryBandwidthGBs = 256.0;

    SmConfig sm;
    L2Config l2;
    /** Cycle-engine scheduling (threads, staged fabric, fast-forward). */
    engine::EngineConfig engine;

    /** DRAM bandwidth expressed in bytes per core clock cycle. */
    double dramBytesPerCycle() const
    {
        return memoryBandwidthGBs * 1e9 / (coreClockMhz * 1e6);
    }

    /** Convert a cycle count into milliseconds of simulated time. */
    double cyclesToMs(Cycle cycles) const
    {
        return static_cast<double>(cycles) / (coreClockMhz * 1e3);
    }

    /** Finalize derived fields (DRAM/icnt bandwidth); call after edits. */
    void finalize();

    /** Desktop GPU preset (Table II, RTX 3070). */
    static GpuConfig rtx3070();

    /** Mobile GPU preset (Table II, Jetson Orin). */
    static GpuConfig jetsonOrin();
};

} // namespace crisp

#endif // CRISP_GPU_GPU_CONFIG_HPP
