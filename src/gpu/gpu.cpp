#include "gpu/gpu.hpp"

#include <algorithm>
#include <cinttypes>
#include <thread>
#include <utility>

#include "audit/audit.hpp"
#include "common/logging.hpp"
#include "engine/worker_pool.hpp"
#include "integrity/checks.hpp"
#include "integrity/fault_injector.hpp"
#include "telemetry/sink.hpp"

namespace crisp
{

namespace
{

/** Telemetry events attached to a hang report, newest last. */
constexpr size_t kHangReportEvents = 16;

/** Drawcall display name: the kernel name minus its stage suffix. */
std::string
drawcallName(const std::string &kernel_name)
{
    const size_t dot = kernel_name.rfind('.');
    return dot == std::string::npos ? kernel_name
                                    : kernel_name.substr(0, dot);
}

} // namespace

Gpu::Gpu(const GpuConfig &cfg) : cfg_(cfg)
{
    fatal_if(cfg_.numSms == 0, "GPU needs at least one SM");
    l2_ = std::make_unique<L2Subsystem>(cfg_.l2, &stats_);
    l2_->setResponseHandler([this](const MemRequest &resp) {
        // A fill completed on behalf of a peer device goes back out over
        // the fabric; only local fills wake a local SM.
        if (remote_ != nullptr && resp.srcDevice != deviceId_) {
            remote_->submitRemoteResponse(resp, deviceId_, cycle_);
            return;
        }
        panic_if(resp.smId >= sms_.size(), "response for unknown SM %u",
                 resp.smId);
        sms_[resp.smId]->memResponse(resp, cycle_);
    });
    sms_.reserve(cfg_.numSms);
    for (uint32_t i = 0; i < cfg_.numSms; ++i) {
        sms_.push_back(std::make_unique<Sm>(i, cfg_.sm, this, &stats_));
        sms_.back()->setCtaDoneHandler(
            [this](uint32_t sm_id, StreamId stream, KernelId kernel) {
                onCtaDone(sm_id, stream, kernel);
            });
        // The GPU-level round-robin arbiter owns every SM's fabric-facing
        // memory phase, whichever engine is configured.
        sms_.back()->setExternalMemPhase(true);
        allSms_.push_back(i);
    }
    memPhaseScratch_.reserve(cfg_.numSms);
    setEngine(cfg_.engine);
}

Gpu::~Gpu() = default;

void
Gpu::setEngine(const engine::EngineConfig &engine)
{
    fatal_if(cycle_ != 0,
             "cycle engine must be configured before the first tick");
    engine_ = engine;
    // The SM is the unit of sharding: more lanes than SMs only adds
    // barrier cost. 0 and 1 both mean serial. Lanes beyond the host's
    // cores only time-slice, so they are clamped too unless the caller
    // explicitly opts into oversubscription (outputs are identical for
    // any thread count, so this is purely a performance guard).
    uint32_t max_threads = numSms();
    if (!engine.allowOversubscribe) {
        const uint32_t cores = std::thread::hardware_concurrency();
        if (cores != 0) {
            max_threads = std::min(max_threads, cores);
        }
    }
    engine_.threads = std::max<uint32_t>(
        1, std::min<uint32_t>(engine.threads, max_threads));
    const bool staged = engine_.staged();
    for (auto &sm : sms_) {
        sm->setStagedFabric(staged);
    }
    pool_.reset();
    if (engine_.threads > 1) {
        pool_ = std::make_unique<engine::WorkerPool>(engine_.threads);
    }
}

StreamId
Gpu::createStream(const std::string &name)
{
    const StreamId id = nextStream_++;
    streams_[id].name = name;
    if (telemetry_) {
        telemetry_->registerStream(id, name);
    }
    return id;
}

KernelId
Gpu::enqueueKernel(StreamId stream, KernelInfo info)
{
    auto it = streams_.find(stream);
    fatal_if(it == streams_.end(), "enqueue on unknown stream %u", stream);
    return enqueueKernelAfter(stream, std::move(info),
                              it->second.lastEnqueued);
}

KernelId
Gpu::enqueueKernelAfter(StreamId stream, KernelInfo info,
                        KernelId depends_on)
{
    return enqueueKernelAfter(stream, std::move(info), depends_on, 0);
}

KernelId
Gpu::enqueueKernelAfter(StreamId stream, KernelInfo info,
                        KernelId depends_on, Cycle delay)
{
    return enqueueInternal(stream, std::move(info), depends_on, delay, 0);
}

KernelId
Gpu::enqueueKernelAt(StreamId stream, KernelInfo info, Cycle not_before)
{
    return enqueueInternal(stream, std::move(info), kNoDependency, 0,
                           not_before);
}

KernelId
Gpu::enqueueInternal(StreamId stream, KernelInfo info, KernelId depends_on,
                     Cycle delay, Cycle not_before)
{
    auto it = streams_.find(stream);
    fatal_if(it == streams_.end(), "enqueue on unknown stream %u", stream);
    // Dependencies must name a kernel previously enqueued on this stream;
    // anything else would make the new kernel wait forever on an id that
    // can never complete (the classic silent-hang bug this validation and
    // the stream-liveness checker both exist for).
    fatal_if(depends_on != kNoDependency &&
                 !it->second.everEnqueued.count(depends_on),
             "stream %s: kernel %s depends on id %u, which was never "
             "enqueued on this stream", it->second.name.c_str(),
             info.name.c_str(), depends_on);
    fatal_if(!info.source, "kernel %s has no trace source",
             info.name.c_str());
    fatal_if(info.numCtas() == 0, "kernel %s launches zero CTAs",
             info.name.c_str());
    // A CTA that can never fit an empty SM would hang the machine.
    const CtaFootprint fp = CtaFootprint::of(info);
    fatal_if(fp.threads > cfg_.sm.maxWarps * kWarpSize ||
                 fp.registers > cfg_.sm.registers ||
                 fp.smemBytes > cfg_.sm.smemBytes,
             "kernel %s CTA (%u threads, %u regs, %u B smem) exceeds SM "
             "capacity", info.name.c_str(), fp.threads, fp.registers,
             fp.smemBytes);
    info.stream = stream;
    // Count the drawcall's kernels at enqueue time so the drawcall-end
    // event fires only when the *last* of them completes — not in the gap
    // between a vertex kernel finishing and its fragment kernel launching.
    if (info.drawcall != 0) {
        drawcalls_[{stream, info.drawcall}].kernelsLeft++;
    }
    const KernelId id = nextKernel_++;
    QueuedKernel q;
    q.id = id;
    q.info = std::move(info);
    q.dependsOn = depends_on;
    q.delay = delay;
    q.notBefore = not_before;
    // Fault injection: overwrite the (validated) dependency with an id
    // that can never complete, after validation so only the injector can
    // smuggle one in. The stream-liveness checker must catch it.
    if (faultInjector_ && depends_on != kNoDependency &&
        faultInjector_->corruptNextDependency()) {
        q.dependsOn = integrity::FaultInjector::kCorruptDependencyId;
    }
    it->second.queue.push_back(std::move(q));
    it->second.lastEnqueued = id;
    it->second.everUsed = true;
    it->second.everEnqueued.insert(id);
    return id;
}

void
Gpu::setPartition(const PartitionConfig &partition)
{
    double total = 0.0;
    for (const auto &[id, share] : partition.share) {
        fatal_if(!streams_.count(id),
                 "partition names stream %u, which does not exist", id);
        fatal_if(share < 0.0,
                 "negative partition share %.3f for stream %u (%s)", share,
                 id, streams_.at(id).name.c_str());
        total += share;
    }
    fatal_if(total > 1.0 + 1e-9,
             "partition shares sum to %.3f (must be <= 1.0)", total);
    fatal_if(partition.priorityStream != kInvalidStream &&
                 !streams_.count(partition.priorityStream),
             "priority stream %u does not exist", partition.priorityStream);
    partition_ = partition;
    applyPartition();
}

void
Gpu::addController(GpuController *controller)
{
    panic_if(controller == nullptr, "null controller");
    controllers_.push_back(controller);
}

void
Gpu::setTelemetry(telemetry::TelemetrySink *sink)
{
    telemetry_ = sink;
    profiler_ = sink && sink->config().selfProfile ? &sink->profiler()
                                                   : nullptr;
    l2_->setTelemetry(sink);
    for (auto &sm : sms_) {
        sm->setProfiler(profiler_);
    }
    sampleInterval_ = sink ? sink->config().sampleInterval : 0;
    compositionInterval_ = 0;
    if (sink) {
        compositionInterval_ = sink->config().compositionInterval
                                   ? sink->config().compositionInterval
                                   : sampleInterval_;
        for (const auto &[id, ss] : streams_) {
            sink->registerStream(id, ss.name);
        }
    }
    // Arm the sampler cadences: the first sample lands on the next tick.
    nextSample_ = 0;
    nextComposition_ = 0;
    lastComposition_ = CacheComposition{};
    // Column ids belong to the sink's series: re-resolve for a new sink.
    sampleColumns_ = SampleColumns{};
}

void
Gpu::setFaultInjector(integrity::FaultInjector *injector)
{
    faultInjector_ = injector;
    l2_->setFaultHook(injector);
    if (injector == nullptr) {
        for (auto &sm : sms_) {
            sm->setIssueFrozen(false);
        }
    }
}

Sm &
Gpu::sm(uint32_t index)
{
    fatal_if(index >= sms_.size(), "SM index %u out of range (GPU has %u "
             "SMs)", index, numSms());
    return *sms_[index];
}

SmQuota
Gpu::quotaFromShare(double share) const
{
    SmQuota q;
    q.maxThreads =
        static_cast<uint32_t>(share * cfg_.sm.maxWarps * kWarpSize);
    q.maxRegisters = static_cast<uint32_t>(share * cfg_.sm.registers);
    q.maxSmemBytes = static_cast<uint32_t>(share * cfg_.sm.smemBytes);
    return q;
}

void
Gpu::setUniformQuota(StreamId stream, double share)
{
    const SmQuota q = quotaFromShare(share);
    for (auto &sm : sms_) {
        sm->setQuota(stream, q);
    }
}

void
Gpu::setSmQuota(uint32_t sm_index, StreamId stream, const SmQuota &quota)
{
    panic_if(sm_index >= sms_.size(), "SM index out of range");
    sms_[sm_index]->setQuota(stream, quota);
}

void
Gpu::applyPartition()
{
    smAssignment_.clear();
    for (auto &sm : sms_) {
        sm->clearQuotas();
        sm->clearIssuePriorities();
    }
    l2_->clearBankMasks();

    if (partition_.policy == PartitionPolicy::Exhaustive) {
        return;
    }

    // Determine the resource share of each stream (default: even split).
    std::vector<StreamId> ids;
    for (const auto &[id, ss] : streams_) {
        ids.push_back(id);
    }
    fatal_if(ids.empty(), "partitioning with no streams");
    std::map<StreamId, double> share;
    double assigned = 0.0;
    uint32_t unassigned = 0;
    for (StreamId id : ids) {
        auto it = partition_.share.find(id);
        if (it != partition_.share.end()) {
            share[id] = it->second;
            assigned += it->second;
        } else {
            ++unassigned;
        }
    }
    for (StreamId id : ids) {
        if (!share.count(id)) {
            share[id] = std::max(0.0, 1.0 - assigned) / unassigned;
        }
    }

    if (partition_.policy == PartitionPolicy::FineGrained) {
        // All SMs run all streams under per-stream quotas.
        for (StreamId id : ids) {
            setUniformQuota(id, share[id]);
        }
        if (partition_.priorityStream != kInvalidStream) {
            for (auto &sm : sms_) {
                sm->setIssuePriority(partition_.priorityStream, -1);
            }
        }
        return;
    }

    // MPS / MiG: contiguous SM ranges proportional to the share.
    uint32_t next_sm = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        uint32_t count = (i + 1 == ids.size())
            ? cfg_.numSms - next_sm
            : std::max<uint32_t>(
                  1, static_cast<uint32_t>(share[ids[i]] * cfg_.numSms));
        count = std::min(count, cfg_.numSms - next_sm);
        auto &assign = smAssignment_[ids[i]];
        for (uint32_t s = 0; s < count; ++s) {
            assign.push_back(next_sm++);
        }
    }

    if (partition_.policy == PartitionPolicy::Mig) {
        // Bank-level L2 partitioning: contiguous bank ranges per stream.
        uint32_t next_bank = 0;
        const uint32_t banks = cfg_.l2.numBanks;
        for (size_t i = 0; i < ids.size(); ++i) {
            uint32_t count = (i + 1 == ids.size())
                ? banks - next_bank
                : std::max<uint32_t>(
                      1, static_cast<uint32_t>(share[ids[i]] * banks));
            count = std::min(count, banks - next_bank);
            uint64_t mask = 0;
            for (uint32_t b = 0; b < count; ++b) {
                mask |= 1ull << (next_bank++);
            }
            l2_->setStreamBankMask(ids[i], mask);
        }
    }
}

const std::vector<uint32_t> &
Gpu::allowedSms(StreamId stream)
{
    auto it = smAssignment_.find(stream);
    return it == smAssignment_.end() ? allSms_ : it->second;
}

void
Gpu::promoteReadyKernels(StreamState &ss)
{
    while (!ss.queue.empty() && ss.active.size() < kMaxActiveKernels) {
        const QueuedKernel &front = ss.queue.front();
        // Arrival gate: a kernel enqueued with an absolute arrival time
        // (enqueueKernelAt) is invisible to the scheduler until then.
        if (cycle_ < front.notBefore) {
            break;
        }
        if (front.dependsOn != kNoDependency) {
            if (!ss.completed.count(front.dependsOn)) {
                break;
            }
            // Fixed-function FIFO latency between the dependency's
            // completion and this kernel's eligibility (paper SIV).
            if (front.delay > 0 &&
                cycle_ < ss.completedAt[front.dependsOn] + front.delay) {
                break;
            }
        }
        ActiveKernel ak;
        ak.id = front.id;
        ak.info = std::move(ss.queue.front().info);
        ss.queue.pop_front();
        ss.active.push_back(std::move(ak));
        launchCycles_[ss.active.back().id] = cycle_;
        if (telemetry_) {
            const ActiveKernel &launched = ss.active.back();
            telemetry_->emit(
                {cycle_, telemetry::EventKind::KernelLaunch, 0,
                 launched.info.stream, launched.id,
                 telemetry_->internName(launched.info.name)});
            if (launched.info.drawcall != 0) {
                auto &dc = drawcalls_[{launched.info.stream,
                                       launched.info.drawcall}];
                if (!dc.begun) {
                    dc.begun = true;
                    telemetry_->emit(
                        {cycle_, telemetry::EventKind::DrawcallBegin, 0,
                         launched.info.stream, launched.info.drawcall,
                         telemetry_->internName(
                             drawcallName(launched.info.name))});
                }
            }
        }
        for (auto *c : controllers_) {
            c->onKernelLaunch(*this, ss.active.back().info,
                              ss.active.back().id);
        }
    }
}

void
Gpu::issueCtas()
{
    // Track which SMs already accepted a CTA this cycle (launch throughput
    // of one CTA per SM per cycle).
    issueLaunchedScratch_.assign(sms_.size(), 0);
    std::vector<uint8_t> &launched = issueLaunchedScratch_;

    for (auto &[id, ss] : streams_) {
        promoteReadyKernels(ss);
        bool starved = false;
        for (ActiveKernel &ak : ss.active) {
            const uint32_t total = ak.info.numCtas();
            if (ak.nextCta >= total) {
                continue;   // all issued, waiting for commits
            }
            for (uint32_t sm_id : allowedSms(id)) {
                if (launched[sm_id]) {
                    continue;
                }
                if (ak.nextCta >= total) {
                    break;
                }
                if (sms_[sm_id]->canAccept(ak.info)) {
                    sms_[sm_id]->launchCta(ak.info, ak.id, ak.nextCta++,
                                           cycle_);
                    launched[sm_id] = true;
                    if (telemetry_) {
                        telemetry_->emit(
                            {cycle_, telemetry::EventKind::CtaDispatch,
                             sm_id, id, ak.id, ak.nextCta - 1});
                    }
                }
            }
            if (ak.nextCta < total) {
                starved = true;
            }
        }
        if (partition_.policy == PartitionPolicy::Exhaustive && starved) {
            // The default scheduler drains one kernel before the next
            // stream's kernel may claim resources.
            break;
        }
    }
}

void
Gpu::onCtaDone(uint32_t sm_id, StreamId stream, KernelId kernel)
{
    auto it = streams_.find(stream);
    panic_if(it == streams_.end(), "CTA done for unknown stream %u", stream);
    StreamState &ss = it->second;
    auto ak = std::find_if(ss.active.begin(), ss.active.end(),
                           [&](const ActiveKernel &k) {
                               return k.id == kernel;
                           });
    panic_if(ak == ss.active.end(),
             "CTA done for inactive kernel %u on stream %u", kernel, stream);
    if (telemetry_) {
        // b is the retirement ordinal: commit order, not launch index.
        telemetry_->emit({cycle_, telemetry::EventKind::CtaRetire, sm_id,
                          stream, kernel, ak->ctasDone});
    }
    if (++ak->ctasDone == ak->info.numCtas()) {
        ss.completed.insert(kernel);
        ss.completedAt[kernel] = cycle_;
        KernelRecord rec;
        rec.id = kernel;
        rec.name = ak->info.name;
        rec.stream = stream;
        rec.ctas = ak->info.numCtas();
        rec.launchCycle = launchCycles_[kernel];
        rec.completeCycle = cycle_;
        kernelLog_.push_back(std::move(rec));
        if (telemetry_) {
            telemetry_->emit(
                {cycle_, telemetry::EventKind::KernelComplete, 0, stream,
                 kernel, telemetry_->internName(ak->info.name)});
        }
        if (ak->info.drawcall != 0) {
            auto dc = drawcalls_.find({stream, ak->info.drawcall});
            if (dc != drawcalls_.end() && --dc->second.kernelsLeft == 0) {
                if (telemetry_ && dc->second.begun) {
                    telemetry_->emit(
                        {cycle_, telemetry::EventKind::DrawcallEnd, 0,
                         stream, ak->info.drawcall,
                         telemetry_->internName(
                             drawcallName(ak->info.name))});
                }
                drawcalls_.erase(dc);
            }
        }
        ss.active.erase(ak);
        stats_.stream(stream).kernelsCompleted++;
        for (auto *c : controllers_) {
            c->onKernelComplete(*this, stream, kernel);
        }
        if (ss.queue.empty() && ss.active.empty()) {
            ss.finishCycle = cycle_;
        }
    }
}

void
Gpu::tick()
{
    ++cycle_;
    if (faultInjector_) {
        const uint32_t target = faultInjector_->config().freezeSm;
        if (target < sms_.size()) {
            sms_[target]->setIssueFrozen(
                faultInjector_->issueFrozen(target, cycle_));
        }
    }
    {
        telemetry::SelfProfiler::Scope prof_scope(
            profiler_, telemetry::Component::CtaScheduler);
        issueCtas();
    }
    memoryPhase();
    {
        telemetry::SelfProfiler::Scope prof_scope(
            profiler_, telemetry::Component::SmIssue);
        if (engine_.staged()) {
            stepSmsStaged();
        } else {
            for (auto &sm : sms_) {
                sm->step(cycle_);
            }
        }
    }
    l2_->step(cycle_);
    {
        telemetry::SelfProfiler::Scope prof_scope(
            profiler_, telemetry::Component::Controllers);
        for (auto *c : controllers_) {
            c->onCycle(*this, cycle_);
        }
    }
    if (telemetry_ && sampleInterval_ != 0 && cycle_ >= nextSample_) {
        nextSample_ = cycle_ + sampleInterval_;
        sampleCounters();
    }
}

void
Gpu::memoryPhase()
{
    // Round-robin fabric arbitration (ROADMAP item 5): instead of each
    // SM flushing its whole retry queue and LDST unit before the next SM
    // runs — which starved high-index SMs for tens of thousands of
    // cycles under saturation — grants interleave one request per SM per
    // round. The rotation start is a pure function of the cycle number,
    // so idle fast-forward (which skips ticks entirely) cannot desync
    // the arbiter between a ticked and a jumped run, and the serial and
    // staged engines share this exact phase: the request stream the L2
    // sees is identical for any thread count.
    memPhaseScratch_.clear();
    const size_t n = sms_.size();
    const size_t start = static_cast<size_t>(cycle_ % n);
    bool any_work = false;
    for (size_t i = 0; i < n; ++i) {
        Sm *sm = sms_[(start + i) % n].get();
        sm->beginMemPhase(cycle_);
        if (sm->hasMemPhaseWork()) {
            memPhaseScratch_.push_back(sm);
            any_work = true;
        }
    }
    if (!any_work) {
        return;
    }
    telemetry::SelfProfiler::Scope prof_scope(
        profiler_, telemetry::Component::L1Ldst);
    // Grant rounds, retry stage first across ALL SMs: parked requests
    // are the oldest traffic in the machine, so they claim the bank
    // slots freed since last cycle before any fresh LDST line can.
    // SMs that can no longer make progress this cycle (out of work, out
    // of budget, or blocked on backpressure) are compacted out in
    // place; rotation order is preserved across rounds.
    auto rounds = [this](bool (Sm::*grant)(Cycle)) {
        while (!memPhaseScratch_.empty()) {
            size_t kept = 0;
            for (Sm *sm : memPhaseScratch_) {
                if ((sm->*grant)(cycle_)) {
                    memPhaseScratch_[kept++] = sm;
                }
            }
            memPhaseScratch_.resize(kept);
        }
    };
    rounds(&Sm::memPhaseGrantRetry);
    memPhaseScratch_.clear();
    for (size_t i = 0; i < n; ++i) {
        Sm *sm = sms_[(start + i) % n].get();
        if (sm->hasMemPhaseWork()) {
            memPhaseScratch_.push_back(sm);
        }
    }
    rounds(&Sm::memPhaseGrantLdst);
}

void
Gpu::stepSmsStaged()
{
    // The fabric-facing memory phase already ran under the arbiter in
    // memoryPhase(), serially on the main thread, so workers below never
    // touch the fabric.

    // Sharded SM stepping over the SM-private stages (writebacks, issue,
    // execute). Workers touch only their own SM's state: stats and
    // profiler deltas land in per-SM shadows, CTA-done callbacks in
    // per-SM lists. The shard→lane assignment is strided but the merge
    // below runs in SM-id order, so outputs are independent of the lane
    // count and of thread scheduling.
    if (pool_) {
        // Capture only `this`: the closure stays inside std::function's
        // small-buffer storage, so the per-cycle dispatch never allocates.
        pool_->run([this](uint32_t lane) {
            const uint32_t lanes = pool_->lanes();
            const size_t count = sms_.size();
            for (size_t i = lane; i < count; i += lanes) {
                sms_[i]->step(cycle_);
            }
        });
    } else {
        // Staged semantics at one thread: the determinism baseline.
        for (auto &sm : sms_) {
            sm->step(cycle_);
        }
    }

    // Post-barrier merge, main thread, SM-id order — the same order the
    // serial loop delivered CTA completions and accumulated stats in.
    for (auto &sm : sms_) {
        sm->flushStagedCtaDones();
        sm->flushShadowStats();
        sm->flushShadowProfiler();
    }
}

void
Gpu::sampleCounters()
{
    telemetry::CounterSeries &series = telemetry_->series();
    series.beginRow(cycle_);

    // Resolve the fixed column ids once per sink: interning by name costs
    // a string construction and a map lookup per column per sample, which
    // dominated this function's profile at tight sample intervals. The
    // intern order matches what re-interning every sample produced, so
    // the exported CSV is unchanged (occupancy columns resolve first,
    // just below).
    SampleColumns &cols = sampleColumns_;

    // Per-stream warp occupancy as a fraction of all warp slots — the same
    // arithmetic the Fig 13 occupancy sampler used, so ported benches emit
    // identical values. Streams created after the first sample intern
    // their column on their first sample, as before.
    const double slots =
        static_cast<double>(numSms()) * cfg_.sm.maxWarps;
    for (const auto &[id, ss] : streams_) {
        uint32_t warps = 0;
        for (const auto &sm : sms_) {
            warps += sm->activeWarpsOf(id);
        }
        auto it = cols.occ.find(id);
        if (it == cols.occ.end()) {
            it = cols.occ.emplace(id, series.column("occ." + ss.name))
                     .first;
        }
        series.set(it->second, warps / slots);
    }

    if (!cols.resolved) {
        cols.resolved = true;
        cols.smActiveWarps = series.column("sm.activeWarps");
        cols.smReady = series.column("sm.ready");
        cols.smAtBarrier = series.column("sm.atBarrier");
        cols.smWaitScoreboard = series.column("sm.waitScoreboard");
        cols.smWaitExecUnit = series.column("sm.waitExecUnit");
        cols.smWaitSmem = series.column("sm.waitSmem");
        cols.smWaitLdst = series.column("sm.waitLdst");
        cols.l1Mshr = series.column("l1.mshr");
        cols.l2Accesses = series.column("l2.accesses");
        cols.l2Hits = series.column("l2.hits");
        cols.l2HitRate = series.column("l2.hitRate");
        cols.l2Mshr = series.column("l2.mshr");
        cols.l2CompTexture = series.column("l2.comp.texture");
        cols.l2CompPipeline = series.column("l2.comp.pipeline");
        cols.l2CompCompute = series.column("l2.comp.compute");
        cols.l2Valid = series.column("l2.valid");
    }

    // Machine-wide warp-state breakdown from the SM integrity probes.
    uint64_t active = 0, ready = 0, barrier = 0, scoreboard = 0, exec = 0,
             smem = 0, ldst = 0, l1_mshr = 0;
    for (const auto &sm : sms_) {
        const Sm::IntegrityProbe p = sm->probe(cycle_);
        active += p.activeWarps;
        ready += p.ready;
        barrier += p.atBarrier;
        scoreboard += p.waitScoreboard;
        exec += p.waitExecUnit;
        smem += p.waitSmem;
        ldst += p.waitLdst;
        l1_mshr += p.l1MshrEntries;
    }
    series.set(cols.smActiveWarps, static_cast<double>(active));
    series.set(cols.smReady, static_cast<double>(ready));
    series.set(cols.smAtBarrier, static_cast<double>(barrier));
    series.set(cols.smWaitScoreboard, static_cast<double>(scoreboard));
    series.set(cols.smWaitExecUnit, static_cast<double>(exec));
    series.set(cols.smWaitSmem, static_cast<double>(smem));
    series.set(cols.smWaitLdst, static_cast<double>(ldst));
    series.set(cols.l1Mshr, static_cast<double>(l1_mshr));

    // L2 hit/miss and MSHR depth.
    series.set(cols.l2Accesses, static_cast<double>(l2_->accesses()));
    series.set(cols.l2Hits, static_cast<double>(l2_->hits()));
    series.set(cols.l2HitRate, l2_->hitRate());
    const L2Subsystem::InFlight inflight = l2_->inFlight();
    series.set(cols.l2Mshr, static_cast<double>(inflight.mshrEntries));

    // The composition walk is O(cache lines), so it runs on its own
    // (usually slower) cadence; rows in between carry the last snapshot.
    if (cycle_ >= nextComposition_) {
        nextComposition_ = cycle_ + compositionInterval_;
        lastComposition_ = l2_->composition();
    }
    series.set(cols.l2CompTexture,
               lastComposition_.fraction(DataClass::Texture));
    series.set(cols.l2CompPipeline,
               lastComposition_.fraction(DataClass::Pipeline));
    series.set(cols.l2CompCompute,
               lastComposition_.fraction(DataClass::Compute));
    series.set(cols.l2Valid, lastComposition_.validFraction());
}

uint64_t
Gpu::totalWorkCount() const
{
    uint64_t work = l2_->workCount();
    for (const auto &sm : sms_) {
        work += sm->workCount();
    }
    return work;
}

Cycle
Gpu::nextWakeCycle() const
{
    Cycle wake = kNeverCycle;
    auto consider = [&](Cycle at) {
        if (at != kNeverCycle) {
            wake = std::min(wake, std::max(at, cycle_ + 1));
        }
    };

    // Controllers default to now + 1 (no jumping past their onCycle);
    // epoch-based ones can override nextWakeCycle to permit it.
    for (const auto *c : controllers_) {
        consider(c->nextWakeCycle(*this, cycle_));
    }

    // The counter sampler's next row.
    if (telemetry_ && sampleInterval_ != 0) {
        consider(nextSample_);
    }

    // Kernel promotion timers: a front kernel held back only by a
    // fixed-function delay becomes eligible at a known cycle. Fronts
    // blocked on an incomplete dependency or the active-kernel limit
    // wake via a kernel completion, which is always preceded by SM/L2
    // work (covered below).
    for (const auto &[id, ss] : streams_) {
        if (ss.queue.empty() || ss.active.size() >= kMaxActiveKernels) {
            continue;
        }
        const QueuedKernel &front = ss.queue.front();
        if (front.dependsOn == kNoDependency) {
            // Promotes on the next tick, or at its arrival time if it
            // carries one (consider() clamps to cycle_ + 1).
            consider(front.notBefore);
            continue;
        }
        auto done_at = ss.completedAt.find(front.dependsOn);
        if (done_at != ss.completedAt.end()) {
            consider(std::max(done_at->second + front.delay,
                              front.notBefore));
        }
    }

    for (const auto &sm : sms_) {
        consider(sm->nextWorkCycle(cycle_));
    }
    consider(l2_->nextEventCycle(cycle_));
    return wake;
}

void
Gpu::fastForwardTo(Cycle target)
{
    // Every skipped cycle is a proven zero-work tick: the only per-cycle
    // state it would have advanced is the per-stream active-cycle
    // counters, credited here so counters and timestamps match the
    // ticked-through run exactly.
    const uint64_t skipped = target - cycle_;
    for (auto &sm : sms_) {
        sm->creditIdleCycles(skipped);
    }
    cycle_ = target;
    ++ffJumps_;
    ffCyclesSkipped_ += skipped;
}

bool
Gpu::done() const
{
    for (const auto &[id, ss] : streams_) {
        if (!ss.active.empty() || !ss.queue.empty()) {
            return false;
        }
    }
    for (const auto &sm : sms_) {
        if (!sm->idle()) {
            return false;
        }
    }
    return l2_->idle();
}

uint64_t
Gpu::progressSignature() const
{
    // Any of these moving means the machine is getting somewhere: warps
    // issuing, CTAs launching, kernels finishing, or memory responses
    // arriving. Stall counters and queue churn deliberately don't count.
    uint64_t sig = l2_->responsesDelivered();
    for (const auto &[id, st] : stats_.allStreams()) {
        sig += st.instructions + st.ctasLaunched + st.kernelsCompleted;
    }
    return sig;
}

bool
Gpu::progressImminent() const
{
    // A machine-wide idle spell is legal while a fixed-function stage
    // delay holds back the only runnable kernel (enqueueKernelAfter with
    // a delay): the front kernel's dependency has completed and promotion
    // is scheduled, so this is not a hang no matter how long the delay.
    for (const auto &[id, ss] : streams_) {
        if (!ss.active.empty() || ss.queue.empty()) {
            continue;
        }
        const QueuedKernel &front = ss.queue.front();
        if (front.dependsOn == kNoDependency) {
            return true;   // promotes on the next tick (or at arrival)
        }
        auto done_at = ss.completedAt.find(front.dependsOn);
        if (done_at != ss.completedAt.end() &&
            cycle_ < std::max(done_at->second + front.delay,
                              front.notBefore)) {
            return true;
        }
    }
    return false;
}

std::vector<const Sm *>
Gpu::constSms() const
{
    std::vector<const Sm *> sms;
    sms.reserve(sms_.size());
    for (const auto &sm : sms_) {
        sms.push_back(sm.get());
    }
    return sms;
}

void
Gpu::checkStreamLiveness(
    std::vector<integrity::InvariantViolation> &out) const
{
    // A front kernel whose dependency is neither completed nor active on
    // its stream waits on an id that can never complete (streams promote
    // in order, so a valid dependency is always ahead of its dependent).
    for (const auto &[id, ss] : streams_) {
        if (ss.queue.empty()) {
            continue;
        }
        const QueuedKernel &front = ss.queue.front();
        if (front.dependsOn == kNoDependency ||
            ss.completed.count(front.dependsOn)) {
            continue;
        }
        const bool pending =
            std::any_of(ss.active.begin(), ss.active.end(),
                        [&](const ActiveKernel &ak) {
                            return ak.id == front.dependsOn;
                        });
        if (pending) {
            continue;
        }
        out.push_back(
            {"stream-liveness",
             logging_detail::formatMessage(
                 "stream %u (%s): kernel %u (%s) waits on dependency %u, "
                 "which is neither completed nor running on this stream "
                 "and so can never be satisfied", id, ss.name.c_str(),
                 front.id, front.info.name.c_str(), front.dependsOn),
             cycle_});
    }
}

std::vector<integrity::HangReport::StreamRow>
Gpu::streamRows() const
{
    std::vector<integrity::HangReport::StreamRow> rows;
    for (const auto &[id, ss] : streams_) {
        integrity::HangReport::StreamRow row;
        row.id = id;
        row.name = ss.name;
        row.queuedKernels = ss.queue.size();
        row.activeKernels = ss.active.size();
        if (!ss.queue.empty()) {
            const QueuedKernel &front = ss.queue.front();
            row.frontKernel = front.info.name;
            if (front.dependsOn != kNoDependency &&
                !ss.completed.count(front.dependsOn)) {
                row.blockingDep = front.dependsOn;
                row.blockReason = logging_detail::formatMessage(
                    "waiting on kernel %u", front.dependsOn);
            } else if (front.dependsOn != kNoDependency && front.delay > 0 &&
                       cycle_ < ss.completedAt.at(front.dependsOn) +
                                    front.delay) {
                row.blockReason = "fixed-function delay";
            } else if (ss.active.size() >= kMaxActiveKernels) {
                row.blockReason = "active-kernel limit";
            } else {
                row.blockReason = "SM resources";
            }
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

integrity::HangReport
Gpu::buildHangReport(
    Cycle last_progress, std::string reason,
    std::vector<integrity::InvariantViolation> violations,
    std::vector<integrity::HangReport::MshrLeakRow> leaks) const
{
    integrity::HangReport report;
    report.detectedAt = cycle_;
    report.lastProgressAt = last_progress;
    report.reason = std::move(reason);
    report.violations = std::move(violations);
    report.mshrLeaks = std::move(leaks);
    for (const auto &sm : sms_) {
        report.sms.push_back(integrity::smRow(*sm, cycle_));
    }
    report.streams = streamRows();
    report.mem = integrity::memRow(*l2_, cycle_);
    if (telemetry_) {
        for (const telemetry::Event &e :
             telemetry_->lastEvents(kHangReportEvents)) {
            report.recentEvents.push_back(telemetry_->describe(e));
        }
    }
    return report;
}

Gpu::RunResult
Gpu::run(Cycle max_cycles, const integrity::RunOptions &opts)
{
    RunResult result;
    const Cycle interval = opts.checkInterval;

    // Attach the caller's sink for the duration of the run.
    telemetry::TelemetrySink *const previous_sink = telemetry_;
    if (opts.telemetry) {
        setTelemetry(opts.telemetry);
    }

    // Auto thresholds scale with the configured memory round trip, so a
    // clean-but-slow machine (deep queues, DRAM contention) never trips
    // the watchdog while a genuine hang is caught within a few round
    // trips.
    const Cycle roundtrip =
        cfg_.l2.l2Latency + 2 * cfg_.l2.icntLatency + cfg_.l2.dramLatency;
    const Cycle hang_threshold =
        opts.hangThreshold ? opts.hangThreshold : 8 * roundtrip + 10000;
    const Cycle leak_age =
        opts.mshrLeakAge ? opts.mshrLeakAge : hang_threshold;
    // Bounded-stall bound: the arbiter's worst case has every other SM
    // draining a full egress queue ahead of a parked request, one grant
    // per round, times the configured safety factor (0 disables).
    const Cycle retry_bound = static_cast<Cycle>(opts.retryWaitBoundFactor) *
                              numSms() * cfg_.sm.ldstQueueDepth;

    uint64_t last_sig = progressSignature();
    Cycle last_progress = cycle_;
    Cycle next_check = cycle_ + interval;
    const Cycle audit_interval = opts.auditInterval;
    Cycle next_audit = cycle_ + audit_interval;
    const std::vector<const Sm *> sms = constSms();
    // Reused across audit firings so a tight cadence (e.g. every 4096
    // cycles) tallies in-flight requests without allocating each time.
    SmallFlatMap<StreamId, uint64_t> audit_scratch;

    // Idle fast-forward: armed per run, and never under fault injection
    // (a frozen SM's "idle" is exactly what the watchdog must observe
    // tick by tick). Zero-work ticks are detected by the machine-wide
    // work counter standing still across a tick.
    const bool fast_forward =
        engine_.fastForward && faultInjector_ == nullptr;
    uint64_t last_work = fast_forward ? totalWorkCount() : 0;

    while (cycle_ < max_cycles) {
        if (done()) {
            result.completed = true;
            break;
        }
        // Cooperative cancellation: a relaxed load per tick (the flag
        // carries no data, only the stop request), checked before the
        // tick so the machine stops at a clean cycle boundary with every
        // counter identity intact — the audit checkers pass on a
        // cancelled run exactly as they do mid-flight.
        if (opts.cancel && opts.cancel->load(std::memory_order_relaxed)) {
            result.cancelled = true;
            break;
        }
        tick();
        if (fast_forward) {
            const uint64_t work = totalWorkCount();
            if (work == last_work) {
                // Nothing happened this tick: jump to just before the
                // earliest cycle anything can happen, clamped so the
                // watchdog still runs at its exact cadence and the run
                // still ends at max_cycles. kNeverCycle (a dead machine)
                // is left to the watchdog at normal speed.
                // The watchdog clamps the jump (it must observe time
                // pass at its exact cadence); the counter audit does
                // not — its identities depend only on counter state,
                // which is frozen across idle ticks, and an overdue
                // audit fires on the first tick after the jump anyway.
                const Cycle wake = nextWakeCycle();
                Cycle limit = max_cycles;
                if (interval != 0) {
                    limit = std::min(limit, next_check);
                }
                if (wake != kNeverCycle && std::min(wake, limit) >
                                               cycle_ + 1) {
                    fastForwardTo(std::min(wake, limit) - 1);
                }
            }
            last_work = work;
        }
        const bool check_due = interval != 0 && cycle_ >= next_check;
        const bool audit_due =
            audit_interval != 0 && cycle_ >= next_audit;
        if (!check_due && !audit_due) {
            continue;
        }

        std::vector<integrity::InvariantViolation> violations;
        std::vector<integrity::HangReport::MshrLeakRow> leaks;
        bool hung = false;
        if (check_due) {
            next_check = cycle_ + interval;
            const uint64_t sig = progressSignature();
            if (sig != last_sig) {
                last_sig = sig;
                last_progress = cycle_;
            }
            if (opts.checkInvariants) {
                integrity::checkConservation(sms, *l2_, cycle_,
                                             violations);
                integrity::checkSmAccounting(sms, cycle_, violations);
                leaks = integrity::findMshrLeaks(sms, *l2_, cycle_,
                                                 leak_age, &violations);
                integrity::checkBoundedRetryWait(sms, cycle_, retry_bound,
                                                 violations);
                checkStreamLiveness(violations);
            }
            hung = cycle_ - last_progress >= hang_threshold &&
                   !progressImminent();
        }
        if (audit_due) {
            next_audit = cycle_ + audit_interval;
            audit::auditAll(stats_, sms, *l2_, cycle_, audit_scratch,
                            violations);
        }
        if (violations.empty() && !hung) {
            continue;
        }

        std::string reason;
        if (hung) {
            reason = logging_detail::formatMessage(
                "no forward progress for %" PRIu64 " cycles",
                cycle_ - last_progress);
        } else {
            reason = "invariant violation: " + violations.front().check;
        }
        integrity::HangReport report = buildHangReport(
            last_progress, std::move(reason), std::move(violations),
            std::move(leaks));
        if (opts.onHang == integrity::RunOptions::OnHang::Panic) {
            panic("%s", report.render().c_str());
        }
        result.hang = std::move(report);
        break;
    }
    result.cycles = cycle_;
    if (opts.telemetry) {
        setTelemetry(previous_sink);
    }
    return result;
}

uint32_t
Gpu::busyStreams() const
{
    uint32_t count = 0;
    for (const auto &[id, ss] : streams_) {
        if (!ss.active.empty() || !ss.queue.empty()) {
            ++count;
        }
    }
    return count;
}

uint64_t
Gpu::pendingKernels() const
{
    uint64_t count = 0;
    for (const auto &[id, ss] : streams_) {
        count += ss.queue.size() + ss.active.size();
    }
    return count;
}

uint64_t
Gpu::pendingKernels(StreamId stream) const
{
    auto it = streams_.find(stream);
    return it == streams_.end()
        ? 0
        : it->second.queue.size() + it->second.active.size();
}

Cycle
Gpu::streamFinishCycle(StreamId stream) const
{
    auto it = streams_.find(stream);
    fatal_if(it == streams_.end(), "unknown stream %u", stream);
    return it->second.finishCycle;
}

bool
Gpu::submitToL2(MemRequest req, Cycle now)
{
    req.srcDevice = deviceId_;
    if (remote_ != nullptr && remote_->ownerOf(req.line) != deviceId_) {
        if (!remote_->submitRemote(req, now)) {
            return false;
        }
        stats_.stream(req.stream).remoteAccesses++;
        return true;
    }
    return l2_->submit(std::move(req), now);
}

void
Gpu::setStreamIdBase(StreamId base)
{
    fatal_if(!streams_.empty(),
             "setStreamIdBase after streams were created");
    nextStream_ = base;
}

bool
Gpu::acceptRemoteRequest(MemRequest req, Cycle now)
{
    return l2_->submit(std::move(req), now);
}

void
Gpu::deliverRemoteResponse(const MemRequest &resp, Cycle now)
{
    panic_if(resp.srcDevice != deviceId_,
             "remote response routed to device %u for device %u",
             deviceId_, resp.srcDevice);
    panic_if(resp.smId >= sms_.size(), "remote response for unknown SM %u",
             resp.smId);
    stats_.stream(resp.stream).remoteResponses++;
    sms_[resp.smId]->memResponse(resp, now);
}

} // namespace crisp
