#include "gpu/gpu_config.hpp"

namespace crisp
{

void
GpuConfig::finalize()
{
    l2.dramBytesPerCycle = dramBytesPerCycle();
    // Crossbar bandwidth scales with the SM count (32 B/cycle per SM port).
    l2.icntBytesPerCycle = 32.0 * numSms;
}

GpuConfig
GpuConfig::rtx3070()
{
    GpuConfig cfg;
    cfg.name = "RTX 3070";
    cfg.numSms = 46;
    cfg.coreClockMhz = 1132.0;
    cfg.memoryDesc = "GDDR6";
    cfg.memoryBandwidthGBs = 448.0;

    cfg.sm.maxWarps = 64;
    cfg.sm.numSchedulers = 4;
    cfg.sm.registers = 65536;
    // 128 KB combined L1 + shared memory. The graphics driver carves the
    // majority for shared memory, leaving a 32 KB L1/texture cache slice
    // (GA10x carveout behaviour); this is also what pushes texture reuse
    // out to the L2, as the paper's hit rates reflect.
    cfg.sm.l1SizeBytes = 32 * 1024;
    cfg.sm.smemBytes = 96 * 1024;

    cfg.l2.numBanks = 16;
    cfg.l2.bankGeometry = {4ull * 1024 * 1024 / 16, 16, kLineBytes};
    cfg.finalize();
    return cfg;
}

GpuConfig
GpuConfig::jetsonOrin()
{
    GpuConfig cfg;
    cfg.name = "Jetson Orin";
    cfg.numSms = 14;
    cfg.coreClockMhz = 1300.0;
    cfg.memoryDesc = "LPDDR5";
    cfg.memoryBandwidthGBs = 200.0;

    cfg.sm.maxWarps = 64;
    cfg.sm.numSchedulers = 4;
    cfg.sm.registers = 65536;
    // 196 KB combined L1 + shared memory. Orin's larger array leaves a
    // 64 KB L1 slice beside a 132 KB shared-memory carveout.
    cfg.sm.l1SizeBytes = 64 * 1024;
    cfg.sm.smemBytes = 132 * 1024;

    cfg.l2.numBanks = 8;
    cfg.l2.bankGeometry = {4ull * 1024 * 1024 / 8, 16, kLineBytes};
    cfg.finalize();
    return cfg;
}

} // namespace crisp
