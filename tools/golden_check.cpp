// golden_check: compare bench CSV outputs against checked-in goldens.
//
// Usage:
//   golden_check [--goldens DIR] [--tolerances FILE] [--update] CSV...
//
// Each CSV is compared cell-by-cell against DIR/<basename>. Numeric cells
// compare within a per-column relative tolerance (default 0: the simulator
// is deterministic, so counters must match exactly); other cells compare
// as strings. --update copies the current CSVs over the goldens instead,
// which is how an intentional accounting change lands: the refreshed
// goldens appear in the same diff as the change that moved them.
//
// Exit status: 0 when every file matches, 1 on any drift (with a
// per-column diff on stdout), 2 on usage/IO errors.
//
// Tolerance file format, one rule per line (# comments allowed):
//   <csv-basename>,<column-name>,<relative-tolerance>
// '*' wildcards the file or column. The most specific matching rule wins
// (file+column > file+* > *+column > *,*).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

struct ToleranceRule
{
    std::string file;     // basename or "*"
    std::string column;   // column name or "*"
    double relTol = 0.0;
};

std::string
basenameOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/** Parse one CSV record honoring Table::toCsv quoting (RFC 4180 style:
 *  cells containing , " or newline are quoted, embedded quotes doubled).
 *  Returns false at end of input. */
bool
readRecord(std::istream &in, std::vector<std::string> &cells)
{
    cells.clear();
    std::string cell;
    bool in_quotes = false;
    bool saw_any = false;
    int c;
    while ((c = in.get()) != EOF) {
        saw_any = true;
        if (in_quotes) {
            if (c == '"') {
                if (in.peek() == '"') {
                    cell.push_back('"');
                    in.get();
                } else {
                    in_quotes = false;
                }
            } else {
                cell.push_back(static_cast<char>(c));
            }
            continue;
        }
        if (c == '"' && cell.empty()) {
            in_quotes = true;
        } else if (c == ',') {
            cells.push_back(cell);
            cell.clear();
        } else if (c == '\n') {
            cells.push_back(cell);
            return true;
        } else if (c != '\r') {
            cell.push_back(static_cast<char>(c));
        }
    }
    if (saw_any) {
        cells.push_back(cell);
        return true;
    }
    return false;
}

bool
loadCsv(const std::string &path, std::vector<std::vector<std::string>> &rows)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::vector<std::string> cells;
    while (readRecord(in, cells)) {
        rows.push_back(cells);
    }
    return true;
}

bool
parseNumber(const std::string &s, double &value)
{
    if (s.empty()) {
        return false;
    }
    char *end = nullptr;
    value = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size() && std::isfinite(value);
}

double
toleranceFor(const std::vector<ToleranceRule> &rules,
             const std::string &file, const std::string &column)
{
    // Most specific match wins; scan in ascending specificity so later
    // assignments override earlier ones.
    double tol = 0.0;
    int best = -1;
    for (const auto &r : rules) {
        const bool fm = r.file == "*" || r.file == file;
        const bool cm = r.column == "*" || r.column == column;
        if (!fm || !cm) {
            continue;
        }
        const int spec = (r.file != "*" ? 2 : 0) + (r.column != "*" ? 1 : 0);
        if (spec > best) {
            best = spec;
            tol = r.relTol;
        }
    }
    return tol;
}

bool
loadTolerances(const std::string &path, std::vector<ToleranceRule> &rules)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        const size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#') {
            continue;
        }
        std::stringstream ss(line);
        ToleranceRule rule;
        std::string tol;
        if (!std::getline(ss, rule.file, ',') ||
            !std::getline(ss, rule.column, ',') || !std::getline(ss, tol)) {
            std::fprintf(stderr, "golden_check: bad tolerance line: %s\n",
                         line.c_str());
            return false;
        }
        rule.relTol = std::strtod(tol.c_str(), nullptr);
        rules.push_back(rule);
    }
    return true;
}

bool
copyFile(const std::string &from, const std::string &to)
{
    std::ifstream in(from, std::ios::binary);
    std::ofstream out(to, std::ios::binary);
    if (!in || !out) {
        return false;
    }
    out << in.rdbuf();
    return static_cast<bool>(out);
}

/** Compare one CSV against its golden; prints per-column diffs. */
bool
compareFile(const std::string &csv, const std::string &golden,
            const std::vector<ToleranceRule> &rules, uint64_t &diffs)
{
    const std::string base = basenameOf(csv);
    std::vector<std::vector<std::string>> cur, gold;
    if (!loadCsv(csv, cur)) {
        std::printf("%s: cannot read current output\n", csv.c_str());
        ++diffs;
        return false;
    }
    if (!loadCsv(golden, gold)) {
        std::printf("%s: no golden at %s (run with --update to bless)\n",
                    base.c_str(), golden.c_str());
        ++diffs;
        return false;
    }
    bool ok = true;
    if (cur.size() != gold.size()) {
        std::printf("%s: row count %zu != golden %zu\n", base.c_str(),
                    cur.size(), gold.size());
        ++diffs;
        ok = false;
    }
    const std::vector<std::string> &header =
        gold.empty() ? std::vector<std::string>{} : gold[0];
    const size_t rows = std::min(cur.size(), gold.size());
    for (size_t r = 0; r < rows; ++r) {
        if (cur[r].size() != gold[r].size()) {
            std::printf("%s: row %zu has %zu cells, golden has %zu\n",
                        base.c_str(), r, cur[r].size(), gold[r].size());
            ++diffs;
            ok = false;
            continue;
        }
        for (size_t c = 0; c < cur[r].size(); ++c) {
            const std::string &a = cur[r][c];
            const std::string &b = gold[r][c];
            if (a == b) {
                continue;
            }
            const std::string col =
                c < header.size() ? header[c] : std::to_string(c);
            double va = 0.0;
            double vb = 0.0;
            if (r > 0 && parseNumber(a, va) && parseNumber(b, vb)) {
                const double tol = toleranceFor(rules, base, col);
                const double scale =
                    std::max({std::fabs(va), std::fabs(vb), 1.0});
                const double rel = std::fabs(va - vb) / scale;
                if (rel <= tol) {
                    continue;
                }
                std::printf("%s: row %zu column \"%s\": current %s vs "
                            "golden %s (rel err %.4g > tol %.4g)\n",
                            base.c_str(), r, col.c_str(), a.c_str(),
                            b.c_str(), rel, tol);
            } else {
                std::printf("%s: row %zu column \"%s\": current \"%s\" vs "
                            "golden \"%s\"\n",
                            base.c_str(), r, col.c_str(), a.c_str(),
                            b.c_str());
            }
            ++diffs;
            ok = false;
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string goldens_dir = "goldens";
    std::string tolerances_path;
    bool update = false;
    std::vector<std::string> csvs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--goldens" && i + 1 < argc) {
            goldens_dir = argv[++i];
        } else if (arg == "--tolerances" && i + 1 < argc) {
            tolerances_path = argv[++i];
        } else if (arg == "--update") {
            update = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: golden_check [--goldens DIR] "
                        "[--tolerances FILE] [--update] CSV...\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "golden_check: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            csvs.push_back(arg);
        }
    }
    if (csvs.empty()) {
        std::fprintf(stderr, "golden_check: no CSV files given\n");
        return 2;
    }

    std::vector<ToleranceRule> rules;
    if (!tolerances_path.empty() &&
        !loadTolerances(tolerances_path, rules)) {
        std::fprintf(stderr, "golden_check: cannot read tolerances %s\n",
                     tolerances_path.c_str());
        return 2;
    }

    if (update) {
        for (const auto &csv : csvs) {
            const std::string golden =
                goldens_dir + "/" + basenameOf(csv);
            if (!copyFile(csv, golden)) {
                std::fprintf(stderr, "golden_check: cannot update %s\n",
                             golden.c_str());
                return 2;
            }
            std::printf("updated %s\n", golden.c_str());
        }
        return 0;
    }

    uint64_t diffs = 0;
    uint64_t failed_files = 0;
    for (const auto &csv : csvs) {
        const std::string golden = goldens_dir + "/" + basenameOf(csv);
        if (!compareFile(csv, golden, rules, diffs)) {
            ++failed_files;
        }
    }
    if (failed_files != 0) {
        std::printf("golden_check: %llu difference(s) in %llu of %zu "
                    "file(s)\n",
                    static_cast<unsigned long long>(diffs),
                    static_cast<unsigned long long>(failed_files),
                    csvs.size());
        return 1;
    }
    std::printf("golden_check: %zu file(s) match\n", csvs.size());
    return 0;
}
