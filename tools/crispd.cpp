/**
 * @file
 * crispd: the CRISP simulation job daemon.
 *
 *   crispd --socket PATH [--workers N] [--queue N] [--spool DIR]
 *          [--cache DIR] [--grace SEC] [--chaos-seed N]
 *          [--max-cycles N] [--max-wall SEC] [--max-threads N]
 *          [--watchdog CYC] [--hang-threshold CYC] [--audit CYC]
 *          [--retries N]
 *
 * Serves the line-delimited JSON protocol (src/service/protocol.hpp)
 * on a unix socket, one thread per connection, jobs on a bounded queue
 * behind admission control. SIGTERM/SIGINT (or a "shutdown" request)
 * stops admissions, drains running jobs for --grace seconds, cancels
 * whatever remains, flushes every report to the spool directory, and
 * exits 0 on a clean drain.
 */

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"

using namespace crisp;
using namespace crisp::service;

namespace
{

/** Self-pipe: signal handlers may only write; poll() sees the byte. */
int g_wakePipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_wakePipe[1], &byte, 1);
}

void
usage()
{
    fatal("usage: crispd --socket PATH [--workers N] [--queue N] "
          "[--spool DIR] [--cache DIR] [--grace SEC] [--chaos-seed N] "
          "[--max-cycles N] [--max-wall SEC] [--max-threads N] "
          "[--watchdog CYC] [--hang-threshold CYC] [--audit CYC] "
          "[--retries N]");
}

uint64_t
parseU64(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    fatal_if(end == value || *end != '\0',
             "%s needs a non-negative integer, got '%s'", flag, value);
    return static_cast<uint64_t>(v);
}

double
parseSec(const char *flag, const char *value)
{
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    fatal_if(end == value || *end != '\0' || !(v >= 0.0),
             "%s needs a non-negative number of seconds, got '%s'", flag,
             value);
    return v;
}

/** One client connection: requests in, responses out, until EOF. */
void
serveConnection(JobServer &server, int fd,
                std::atomic<bool> &shutdown_flag)
{
    LineReader reader(fd);
    std::string line;
    while (reader.readLine(line)) {
        bool shutdown_requested = false;
        const std::string resp =
            handleRequestLine(server, line, shutdown_requested);
        if (!writeAll(fd, resp + "\n")) {
            break;
        }
        if (shutdown_requested) {
            shutdown_flag.store(true);
            const char byte = 1;
            [[maybe_unused]] const ssize_t n =
                ::write(g_wakePipe[1], &byte, 1);
        }
    }
    ::close(fd);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    double grace_sec = 10.0;
    ServerConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs a value", arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--socket") == 0) {
            socket_path = next();
        } else if (std::strcmp(arg, "--workers") == 0) {
            cfg.workers =
                static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--queue") == 0) {
            cfg.queueCapacity =
                static_cast<size_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--spool") == 0) {
            cfg.spoolDir = next();
        } else if (std::strcmp(arg, "--cache") == 0) {
            cfg.cacheDir = next();
        } else if (std::strcmp(arg, "--grace") == 0) {
            grace_sec = parseSec(arg, next());
        } else if (std::strcmp(arg, "--chaos-seed") == 0) {
            cfg.chaos.seed = parseU64(arg, next());
        } else if (std::strcmp(arg, "--max-cycles") == 0) {
            cfg.maxQuota.maxCycles = parseU64(arg, next());
        } else if (std::strcmp(arg, "--max-wall") == 0) {
            cfg.maxQuota.maxWallSec = parseSec(arg, next());
        } else if (std::strcmp(arg, "--max-threads") == 0) {
            cfg.maxQuota.maxEngineThreads =
                static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--watchdog") == 0) {
            cfg.watchdogInterval = parseU64(arg, next());
        } else if (std::strcmp(arg, "--hang-threshold") == 0) {
            cfg.hangThreshold = parseU64(arg, next());
        } else if (std::strcmp(arg, "--audit") == 0) {
            cfg.auditInterval = parseU64(arg, next());
        } else if (std::strcmp(arg, "--retries") == 0) {
            cfg.retry.maxRetries =
                static_cast<uint32_t>(parseU64(arg, next()));
        } else {
            usage();
        }
    }
    if (socket_path.empty()) {
        usage();
    }

    fatal_if(::pipe(g_wakePipe) != 0, "crispd: cannot create signal pipe");
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    std::string err;
    const int listen_fd = listenUnix(socket_path, 16, err);
    fatal_if(listen_fd < 0, "crispd: %s", err.c_str());

    JobServer server(cfg);
    inform("crispd: listening on %s (workers=%u queue=%zu chaos=%s)",
           socket_path.c_str(), cfg.workers, cfg.queueCapacity,
           cfg.chaos.seed != 0 ? "on" : "off");

    std::atomic<bool> shutdown_flag{false};
    std::mutex conns_mu;
    std::vector<std::thread> conns;
    std::vector<int> conn_fds;

    pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {g_wakePipe[0], POLLIN, 0};
    while (!shutdown_flag.load()) {
        fds[0].revents = 0;
        fds[1].revents = 0;
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR) {
                continue;
            }
            warn("crispd: poll: %s", std::strerror(errno));
            break;
        }
        if (fds[1].revents != 0) {
            break; // Signal or protocol shutdown.
        }
        if ((fds[0].revents & POLLIN) == 0) {
            continue;
        }
        const int client = ::accept(listen_fd, nullptr, nullptr);
        if (client < 0) {
            continue;
        }
        std::lock_guard<std::mutex> lk(conns_mu);
        conn_fds.push_back(client);
        conns.emplace_back([&server, client, &shutdown_flag] {
            serveConnection(server, client, shutdown_flag);
        });
    }

    // Shutdown sequence: stop accepting connections and jobs, drain the
    // jobs (this is where the grace period and forced cancellation
    // live), then hang up on idle clients and collect their threads —
    // in that order, because a client blocked in "wait" only unblocks
    // once its job reaches a terminal state.
    ::close(listen_fd);
    server.beginShutdown();
    inform("crispd: draining (grace %.1fs)", grace_sec);
    const bool drained = server.drain(grace_sec);
    {
        std::lock_guard<std::mutex> lk(conns_mu);
        for (int fd : conn_fds) {
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    for (std::thread &t : conns) {
        if (t.joinable()) {
            t.join();
        }
    }
    ::unlink(socket_path.c_str());

    // Exit 0 when shutdown was safe: every admitted job reached a
    // terminal state (and therefore has a spooled report). "drained"
    // only distinguishes whether the grace period sufficed or forced
    // cancellation was needed; both are clean exits.
    const JobServer::Counters c = server.counters();
    const uint64_t terminal = c.completed + c.failed + c.cancelled +
        c.timedOut + c.overQuota + c.hung;
    inform("crispd: drained=%s accepted=%llu completed=%llu failed=%llu "
           "cancelled=%llu timed-out=%llu over-quota=%llu hung=%llu "
           "retries=%llu",
           drained ? "clean" : "forced",
           static_cast<unsigned long long>(c.accepted),
           static_cast<unsigned long long>(c.completed),
           static_cast<unsigned long long>(c.failed),
           static_cast<unsigned long long>(c.cancelled),
           static_cast<unsigned long long>(c.timedOut),
           static_cast<unsigned long long>(c.overQuota),
           static_cast<unsigned long long>(c.hung));
    return terminal == c.accepted ? 0 : 1;
}
