#!/usr/bin/env python3
"""Gate single-thread engine throughput against the checked-in trajectory.

Usage:
    tools/check_perf_regression.py BENCH_engine.json BENCH_engine_throughput.json

Compares the fresh run's threads=1 cycles_per_sec (per num_sms config)
against the most recent entry of the checked-in trajectory. Fails (exit 1)
if any config regressed by more than the tolerance (default 15%, override
with CRISP_PERF_TOLERANCE=0.25 etc.).

The checked-in numbers come from whatever host last blessed the
trajectory; CI runners are typically faster, so this gate catches code
regressions, not host variance in the other direction. When the runner is
genuinely slower than the blessing host, raise the tolerance rather than
re-blessing from CI.
"""

import json
import os
import sys


def single_thread_rates(configs):
    """{num_sms: cycles_per_sec at threads=1} for a configs array."""
    rates = {}
    for cfg in configs:
        for run in cfg.get("runs", []):
            if run.get("threads") == 1:
                rates[cfg["num_sms"]] = run["cycles_per_sec"]
                break
    return rates


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        trajectory_doc = json.load(f)
    with open(sys.argv[2]) as f:
        fresh_doc = json.load(f)

    trajectory = trajectory_doc.get("trajectory")
    if not trajectory:
        print(f"{sys.argv[1]}: no trajectory entries", file=sys.stderr)
        return 2
    reference = trajectory[-1]
    ref_rates = single_thread_rates(reference.get("configs", []))
    new_rates = single_thread_rates(fresh_doc.get("configs", []))
    if not ref_rates or not new_rates:
        print("missing threads=1 runs in reference or fresh results",
              file=sys.stderr)
        return 2

    tolerance = float(os.environ.get("CRISP_PERF_TOLERANCE", "0.15"))
    label = reference.get("label", "latest")
    failed = False
    for num_sms, ref in sorted(ref_rates.items()):
        new = new_rates.get(num_sms)
        if new is None:
            print(f"num_sms={num_sms}: missing from fresh run (skipped)")
            continue
        ratio = new / ref
        status = "OK"
        if ratio < 1.0 - tolerance:
            status = "REGRESSION"
            failed = True
        print(f"num_sms={num_sms}: {new:.0f} vs {ref:.0f} c/s "
              f"({label}) -> {ratio:.2f}x  {status}")
    for num_sms in sorted(set(new_rates) - set(ref_rates)):
        # A config the benchmark grew after the last blessing has no
        # reference yet: it gains a gate once a trajectory entry records
        # it, never retroactively.
        print(f"num_sms={num_sms}: no reference in trajectory entry "
              f"'{label}' (warned, skipped)")
    if failed:
        print(f"single-thread throughput regressed more than "
              f"{tolerance:.0%} vs checked-in trajectory", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
