#!/usr/bin/env bash
# Run every CSV-producing fig/table bench from the repository root and
# compare the outputs against the checked-in goldens (goldens/*.csv).
#
# Usage:
#   tools/run_golden_suite.sh BUILD_DIR            # check against goldens
#   tools/run_golden_suite.sh BUILD_DIR --update   # bless current outputs
#
# The check writes the per-column diff to golden_diff.txt (CI uploads it
# as an artifact on failure). Benches run with the counter audit enabled
# at its default cadence (see bench_util.hpp), so a conservation
# violation fails the suite even before the CSV diff does.
set -uo pipefail

BUILD=${1:?usage: tools/run_golden_suite.sh BUILD_DIR [--update]}
MODE=${2:-}
cd "$(dirname "$0")/.."

BENCHES=(
    table2_configs
    fig3_vertex_invocations
    fig6_frametime_correlation
    fig6b_pcie_anomaly
    fig9_l1tex_lod
    fig10_texlines_histogram
    fig11_l2_composition
    fig12_warped_slicer
    fig13_occupancy_timeline
    fig14_tap
    fig15_tap_l2_composition
    ablation_pipeline
    ablation_memory
)

CSVS=(
    table2_configs.csv
    fig3_vertex_invocations.csv
    fig3_batch_sweep.csv
    fig6_frametime.csv
    fig6b_pcie.csv
    fig9_l1tex.csv
    fig10_texlines.csv
    fig11a_pistol.csv
    fig11b_sponza.csv
    fig12_warped_slicer.csv
    fig13_occupancy.csv
    fig14_tap.csv
    fig15_tap_l2.csv
    ablation_batching.csv
    ablation_overlap.csv
    ablation_lod.csv
    ablation_l1.csv
    ablation_l2bw.csv
    ablation_mshr.csv
    ablation_sectors.csv
)

status=0
for b in "${BENCHES[@]}"; do
    echo "== ${b}"
    if ! "${BUILD}/bench/${b}" > /dev/null; then
        echo "bench ${b} exited nonzero" >&2
        status=1
    fi
done

if [ "${MODE}" = "--update" ]; then
    "${BUILD}/tools/golden_check" --goldens goldens --update "${CSVS[@]}" \
        || status=1
else
    "${BUILD}/tools/golden_check" --goldens goldens \
        --tolerances goldens/tolerances.csv "${CSVS[@]}" \
        | tee golden_diff.txt
    [ "${PIPESTATUS[0]}" -ne 0 ] && status=1
fi

exit "${status}"
