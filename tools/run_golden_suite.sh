#!/usr/bin/env bash
# Run every CSV-producing fig/table bench from the repository root and
# compare the outputs against the checked-in goldens (goldens/*.csv).
#
# Usage:
#   tools/run_golden_suite.sh BUILD_DIR            # check against goldens
#   tools/run_golden_suite.sh BUILD_DIR --update   # bless current outputs
#
# Each bench is checked against the specific CSVs it produces, so the
# suite can print a per-bench pass/fail summary and name the first
# diverging bench in its failure message. The check appends per-column
# diffs to golden_diff.txt (CI uploads it as an artifact on failure).
# Benches run with the counter audit enabled at its default cadence
# (see bench_util.hpp), so a conservation violation fails the suite
# even before the CSV diff does.
#
# Every bench runs under timeout(1) (BENCH_TIMEOUT seconds, default
# 600), so a hung bench fails the suite with its name instead of
# wedging CI until the runner-level kill — which reports nothing.
#
# Trace-cache replay is the default: CRISP_TRACE_CACHE points at a
# suite-local directory unless the caller already set it, so the first
# run cold-populates the cache and later runs replay packed traces
# instead of regenerating workloads. Replay is gated by the same CSV
# byte-identity as everything else — a replayed trace that drifts from
# generation fails the suite. Set CRISP_TRACE_CACHE= (empty) to force
# generation.
set -euo pipefail

BUILD=${1:?usage: tools/run_golden_suite.sh BUILD_DIR [--update]}
MODE=${2:-}
BENCH_TIMEOUT=${BENCH_TIMEOUT:-600}
cd "$(dirname "$0")/.."

if [ -z "${CRISP_TRACE_CACHE+x}" ]; then
    export CRISP_TRACE_CACHE="${BUILD}/trace_cache"
fi
if [ -n "${CRISP_TRACE_CACHE}" ]; then
    mkdir -p "${CRISP_TRACE_CACHE}"
    echo "trace cache: ${CRISP_TRACE_CACHE}"
else
    echo "trace cache: disabled (CRISP_TRACE_CACHE empty)"
fi

# If anything aborts the suite mid-bench (set -e, a signal, the
# runner's own kill), name the bench in flight: a suite that dies
# silently is indistinguishable from a hung one.
current_bench=""
on_exit() {
    local rc=$?
    if [ "${rc}" -ne 0 ] && [ -n "${current_bench}" ]; then
        echo "golden suite aborted (exit ${rc}) while running:" \
            "${current_bench}" >&2
    fi
}
trap on_exit EXIT

# bench executable -> the CSV files it writes.
BENCHES=(
    table2_configs
    fig3_vertex_invocations
    fig6_frametime_correlation
    fig6b_pcie_anomaly
    fig9_l1tex_lod
    fig10_texlines_histogram
    fig11_l2_composition
    fig12_warped_slicer
    fig13_occupancy_timeline
    fig14_tap
    fig15_tap_l2_composition
    fig16_mgpu_occupancy
    fig17_interconnect
    ablation_pipeline
    ablation_memory
    scenario_suite
)
declare -A BENCH_CSVS=(
    [table2_configs]="table2_configs.csv"
    [fig3_vertex_invocations]="fig3_vertex_invocations.csv fig3_batch_sweep.csv"
    [fig6_frametime_correlation]="fig6_frametime.csv"
    [fig6b_pcie_anomaly]="fig6b_pcie.csv"
    [fig9_l1tex_lod]="fig9_l1tex.csv"
    [fig10_texlines_histogram]="fig10_texlines.csv"
    [fig11_l2_composition]="fig11a_pistol.csv fig11b_sponza.csv"
    [fig12_warped_slicer]="fig12_warped_slicer.csv"
    [fig13_occupancy_timeline]="fig13_occupancy.csv"
    [fig14_tap]="fig14_tap.csv"
    [fig15_tap_l2_composition]="fig15_tap_l2.csv"
    [fig16_mgpu_occupancy]="fig16_mgpu_occupancy.csv"
    [fig17_interconnect]="fig17_interconnect.csv"
    [ablation_pipeline]="ablation_batching.csv ablation_overlap.csv ablation_lod.csv"
    [ablation_memory]="ablation_l1.csv ablation_l2bw.csv ablation_mshr.csv ablation_sectors.csv"
    [scenario_suite]="scenario_suite.csv"
)

declare -A RESULT=()
first_failure=""

note_failure() {
    RESULT[$1]="FAIL ($2)"
    if [ -z "${first_failure}" ]; then
        first_failure=$1
    fi
}

: > golden_diff.txt
for b in "${BENCHES[@]}"; do
    echo "== ${b}"
    current_bench=${b}
    rc=0
    timeout --foreground "${BENCH_TIMEOUT}" "${BUILD}/bench/${b}" \
        > /dev/null || rc=$?
    # timeout(1): 124 = timed out (SIGTERM), 137 = 128+SIGKILL (the
    # --kill-after escalation or the OOM killer).
    if [ "${rc}" -eq 124 ] || [ "${rc}" -eq 137 ]; then
        note_failure "${b}" "hung: killed after ${BENCH_TIMEOUT}s"
        continue
    elif [ "${rc}" -ne 0 ]; then
        note_failure "${b}" "crashed: exit ${rc}"
        continue
    fi
    # shellcheck disable=SC2206  # deliberate word split: list of CSVs
    csvs=(${BENCH_CSVS[$b]})
    if [ "${MODE}" = "--update" ]; then
        if ! "${BUILD}/tools/golden_check" --goldens goldens --update \
                "${csvs[@]}"; then
            note_failure "${b}" "golden update failed"
            continue
        fi
    else
        if ! "${BUILD}/tools/golden_check" --goldens goldens \
                --tolerances goldens/tolerances.csv "${csvs[@]}" \
                | tee -a golden_diff.txt; then
            note_failure "${b}" "diverges from golden"
            continue
        fi
    fi
    RESULT[$b]="PASS"
done
current_bench=""

echo
echo "== golden suite summary"
for b in "${BENCHES[@]}"; do
    printf '%-28s %s\n' "${b}" "${RESULT[$b]}"
done

if [ -n "${first_failure}" ]; then
    echo "golden suite FAILED: first diverging bench: ${first_failure}" \
        "(${RESULT[$first_failure]})" >&2
    exit 1
fi
echo "golden suite: all ${#BENCHES[@]} benches match"
