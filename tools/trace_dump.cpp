/**
 * @file
 * trace_dump: human-readable summary of a CRTR trace file.
 *
 *   trace_dump FILE...
 *
 * Per file: container metadata and totals; per kernel: launch
 * parameters, instruction mix by executing pipeline, the per-kernel
 * memory footprint in distinct 128 B lines, and a coalescing histogram
 * (distinct lines touched per memory instruction — the access stream
 * the L1 actually sees). Exit 1 if any file is rejected; rejection
 * prints the trace-io diagnosis, never crashes.
 */

#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "isa/opcode.hpp"
#include "traceio/reader.hpp"

using namespace crisp;

namespace
{

/** CTAs examined per kernel for the mix/footprint scan (keeps the dump
 *  bounded on full-frame fragment kernels; the header says when capped). */
constexpr uint32_t kMaxCtasExamined = 256;

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::FP32: return "fp32";
      case OpClass::INT: return "int";
      case OpClass::SFU: return "sfu";
      case OpClass::Tensor: return "tensor";
      case OpClass::MemGlobal: return "ldst";
      case OpClass::MemShared: return "smem";
      case OpClass::MemConst: return "const";
      case OpClass::MemTexture: return "tex";
      case OpClass::Control: return "ctrl";
      case OpClass::Barrier: return "bar";
      default: return "?";
    }
}

bool
dumpFile(const std::string &path)
{
    traceio::TraceReader reader(path);
    if (!reader.valid()) {
        std::fprintf(stderr, "trace_dump: %s: %s\n", path.c_str(),
                     reader.error().render().c_str());
        return false;
    }

    const traceio::EndRecord &totals = reader.totals();
    std::printf("=== %s ===\n", path.c_str());
    std::printf("format v%u, fingerprint: %s\n", reader.version(),
                reader.fingerprint().c_str());
    std::printf("%llu kernels, %llu CTAs, %llu instructions, heap "
                "footprint %llu bytes\n\n",
                static_cast<unsigned long long>(totals.kernelCount),
                static_cast<unsigned long long>(totals.ctaCount),
                static_cast<unsigned long long>(totals.instrCount),
                static_cast<unsigned long long>(totals.heapBytesUsed));

    for (size_t ki = 0; ki < reader.kernelCount(); ++ki) {
        const traceio::TraceReader::Kernel &k = reader.kernel(ki);
        const traceio::KernelHeaderRecord &h = k.header;
        std::printf("kernel %zu: %s\n", ki, h.name.c_str());
        std::printf("  grid %ux%ux%u, cta %ux%ux%u, %u regs/thread, "
                    "%u B smem, drawcall %u, depends on %d\n",
                    h.grid.x, h.grid.y, h.grid.z, h.cta.x, h.cta.y, h.cta.z,
                    h.regsPerThread, h.smemPerCta, h.drawcall, h.dependsOn);

        uint64_t mix[static_cast<size_t>(OpClass::NumClasses)] = {};
        std::unordered_set<Addr> lines;
        Histogram coalesce(kWarpSize);
        uint64_t scanned_instrs = 0;
        const uint32_t ctas = std::min<uint32_t>(h.ctaCount,
                                                 kMaxCtasExamined);
        for (uint32_t ci = 0; ci < ctas; ++ci) {
            CtaTrace cta;
            traceio::TraceError err;
            if (!reader.readCta(ki, ci, cta, err)) {
                std::fprintf(stderr, "trace_dump: %s: %s\n", path.c_str(),
                             err.render().c_str());
                return false;
            }
            for (const WarpTrace &w : cta.warps) {
                for (const TraceInstr &in : w.instrs) {
                    ++mix[static_cast<size_t>(opcodeClass(in.opcode))];
                    ++scanned_instrs;
                    if (!in.addrs.empty()) {
                        const std::vector<Addr> touched =
                            coalesceToLines(in);
                        coalesce.add(touched.size());
                        lines.insert(touched.begin(), touched.end());
                    }
                }
            }
        }

        std::printf("  %llu instrs in %u/%u CTAs%s\n",
                    static_cast<unsigned long long>(scanned_instrs), ctas,
                    h.ctaCount,
                    ctas < h.ctaCount ? " (scan capped; mix/footprint are "
                                        "over the scanned prefix)"
                                      : "");
        std::printf("  instr mix:");
        for (size_t c = 0; c < static_cast<size_t>(OpClass::NumClasses);
             ++c) {
            if (mix[c] == 0) {
                continue;
            }
            std::printf(" %s %.1f%%", opClassName(static_cast<OpClass>(c)),
                        100.0 * static_cast<double>(mix[c]) /
                            static_cast<double>(scanned_instrs));
        }
        std::printf("\n");
        if (coalesce.totalSamples() > 0) {
            std::printf("  memory: %zu distinct 128 B lines (%.1f KiB), "
                        "lines/access mean %.2f mode %llu max %llu\n",
                        lines.size(),
                        static_cast<double>(lines.size()) * kLineBytes /
                            1024.0,
                        coalesce.mean(),
                        static_cast<unsigned long long>(
                            coalesce.modeBucket()),
                        static_cast<unsigned long long>(
                            coalesce.maxValue()));
        } else {
            std::printf("  memory: no memory instructions in the scanned "
                        "CTAs\n");
        }
    }
    std::printf("\n");
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: trace_dump FILE...\n");
        return 2;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i) {
        ok = dumpFile(argv[i]) && ok;
    }
    return ok ? 0 : 1;
}
