// crisp_profile: run representative workloads under the telemetry
// self-profiler and emit a ranked hotspot report.
//
// The optimization loop this serves (ROADMAP item 5, "Parallelizing a
// modern GPU simulator"): profile first, attack the top of the ranking,
// re-verify byte-identity with tools/run_golden_suite.sh, re-profile.
// The JSON keeps the targets data-driven; docs/PROFILING.md describes
// how to read it.
//
// Usage:
//   crisp_profile [--out FILE] [--scenario NAME]
//
// Scenarios:
//   mixed    (default) one Sponza-PBR frame + VIO compute concurrently —
//            exercises the graphics pipeline, SM issue, L1/L2 and DRAM.
//   compute  VIO + HOLO + NN compute streams only (no raster time).
//
// Output: a JSON object with per-component exclusive wall time ranked
// descending, plus whole-run throughput (cycles/sec) so successive runs
// form a comparable series.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "telemetry/self_profiler.hpp"
#include "telemetry/sink.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

#include <chrono>

namespace crisp
{
namespace
{

struct Options
{
    std::string out = "crisp_profile.json";
    std::string scenario = "mixed";
};

GpuConfig
profileGpu()
{
    // The graphics pipeline sizes raster work off the modeled machine;
    // use the same RTX 3070 model the golden benches run so the hotspot
    // ranking reflects the code paths the suite actually exercises.
    GpuConfig cfg = GpuConfig::rtx3070();
    cfg.name = "crisp-profile";
    return cfg;
}

/**
 * Scenario state that must outlive gpu.run(): fragment kernels keep raw
 * Material pointers into the Scene, so the scene (and the pipeline that
 * owns the framebuffer) stay resident until the simulation drains.
 */
struct ScenarioState
{
    Scene scene;
    AddressSpace fbHeap{0x4000'0000ull};
    std::unique_ptr<RenderPipeline> pipe;
};

/** Enqueue the scenario's work; returns after all streams are loaded. */
void
loadScenario(Gpu &gpu, AddressSpace &heap, ScenarioState &state,
             const std::string &scenario)
{
    if (scenario == "mixed" || scenario == "graphics") {
        state.scene = buildSponza(heap, /*pbr=*/true);
        PipelineConfig pc;
        pc.width = 640;
        pc.height = 360;
        state.pipe = std::make_unique<RenderPipeline>(pc, state.fbHeap);
        const StreamId gfx = gpu.createStream("graphics");
        submitFrame(gpu, gfx, state.pipe->submit(state.scene));
    }
    if (scenario == "mixed") {
        const StreamId cmp = gpu.createStream("vio");
        for (const KernelInfo &k : buildVio(heap)) {
            gpu.enqueueKernel(cmp, k);
        }
    }
    if (scenario == "compute") {
        const StreamId vio = gpu.createStream("vio");
        for (const KernelInfo &k : buildVio(heap)) {
            gpu.enqueueKernel(vio, k);
        }
        const StreamId holo = gpu.createStream("holo");
        for (const KernelInfo &k : buildHolo(heap)) {
            gpu.enqueueKernel(holo, k);
        }
        const StreamId nn = gpu.createStream("nn");
        for (const KernelInfo &k : buildNn(heap)) {
            gpu.enqueueKernel(nn, k);
        }
    }
}

int
runProfile(const Options &opt)
{
    telemetry::TelemetryConfig tc;
    tc.selfProfile = true;
    telemetry::TelemetrySink sink(tc);

    AddressSpace heap;
    Gpu gpu(profileGpu());
    gpu.setTelemetry(&sink);
    ScenarioState state;
    loadScenario(gpu, heap, state, opt.scenario);

    const auto t0 = std::chrono::steady_clock::now();
    const auto r = gpu.run(2'000'000'000ull);
    const double wall_sec = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
    fatal_if(!r.completed, "profile scenario did not drain");

    const telemetry::SelfProfiler &prof = sink.profiler();
    const double total_ns = prof.totalNanos();

    // Rank components by exclusive time, descending.
    struct Row
    {
        telemetry::Component c;
        double ns;
    };
    std::vector<Row> rows;
    const auto n =
        static_cast<size_t>(telemetry::Component::NumComponents);
    for (size_t i = 0; i < n; ++i) {
        const auto c = static_cast<telemetry::Component>(i);
        rows.push_back({c, prof.nanos(c)});
    }
    for (size_t i = 1; i < rows.size(); ++i) {  // insertion sort, n = 8
        Row key = rows[i];
        size_t j = i;
        while (j > 0 && rows[j - 1].ns < key.ns) {
            rows[j] = rows[j - 1];
            --j;
        }
        rows[j] = key;
    }

    std::printf("%s", prof.render(r.cycles).c_str());
    std::printf("\ncycles=%llu  wall=%.3fs  %.1f cycles/sec\n",
                static_cast<unsigned long long>(r.cycles), wall_sec,
                static_cast<double>(r.cycles) / wall_sec);

    FILE *f = std::fopen(opt.out.c_str(), "w");
    fatal_if(f == nullptr, "cannot write %s", opt.out.c_str());
    std::fprintf(f, "{\n  \"tool\": \"crisp_profile\",\n");
    std::fprintf(f, "  \"scenario\": \"%s\",\n", opt.scenario.c_str());
    std::fprintf(f, "  \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(r.cycles));
    std::fprintf(f, "  \"wall_sec\": %.6f,\n", wall_sec);
    std::fprintf(f, "  \"cycles_per_sec\": %.1f,\n",
                 static_cast<double>(r.cycles) / wall_sec);
    std::fprintf(f, "  \"profiled_sec\": %.6f,\n", total_ns / 1e9);
    std::fprintf(f, "  \"hotspots\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::fprintf(
            f,
            "    {\"component\": \"%s\", \"seconds\": %.6f, "
            "\"share\": %.4f, \"ns_per_cycle\": %.2f}%s\n",
            telemetry::componentName(row.c), row.ns / 1e9,
            total_ns > 0 ? row.ns / total_ns : 0.0,
            r.cycles > 0 ? row.ns / static_cast<double>(r.cycles) : 0.0,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", opt.out.c_str());
    return 0;
}

} // namespace
} // namespace crisp

int
main(int argc, char **argv)
{
    crisp::Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (arg == "--scenario" && i + 1 < argc) {
            opt.scenario = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--out FILE] "
                         "[--scenario mixed|graphics|compute]\n",
                         argv[0]);
            return 2;
        }
    }
    if (opt.scenario != "mixed" && opt.scenario != "graphics" &&
        opt.scenario != "compute") {
        std::fprintf(stderr, "unknown scenario '%s'\n",
                     opt.scenario.c_str());
        return 2;
    }
    return crisp::runProfile(opt);
}
