/**
 * @file
 * crisp_submit: command-line client for crispd.
 *
 *   crisp_submit --socket PATH submit [--name S]
 *       (--workload MICRO|VIO|HOLO|NN | --scene NAME | --trace FILE |
 *        --scenario FILE)
 *       [--gpu rtx3070|orin|generic] [--sms N] [--frames N] [--width N]
 *       [--height N] [--points N] [--layers N] [--ctas N]
 *       [--iterations N] [--max-cycles N] [--max-wall SEC]
 *       [--max-threads N] [--freeze-at CYC] [--corrupt-dep N]
 *       [--drop-fill P] [--fault-seed N] [--wait]
 *   crisp_submit --socket PATH submit-json RAW   (RAW sent as the job
 *       object verbatim — deliberately malformed submissions for tests)
 *   crisp_submit --socket PATH raw LINE          (LINE sent as the whole
 *       request line, bypassing all client-side validation)
 *   crisp_submit --socket PATH status ID
 *   crisp_submit --socket PATH wait ID
 *   crisp_submit --socket PATH cancel ID
 *   crisp_submit --socket PATH counters
 *   crisp_submit --socket PATH ping
 *   crisp_submit --socket PATH shutdown
 *
 * --scenario reads the file, validates it with the scenario loader
 * before connecting, and sends its text inline (the daemon needs no
 * shared filesystem). A malformed scenario file prints the loader's
 * file:line:col diagnostic and exits 2 without contacting the daemon.
 *
 * Prints each response line to stdout. Exit codes: 0 = the server said
 * ok, 2 = the server rejected the request ("ok":false) or the scenario
 * file failed validation, 1 = transport or usage error.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hpp"
#include "scenario/scenario.hpp"
#include "service/job.hpp"
#include "service/json.hpp"
#include "service/socket.hpp"

using namespace crisp;
using namespace crisp::service;

namespace
{

void
usage()
{
    fatal("usage: crisp_submit --socket PATH "
          "(submit [flags] | submit-json RAW | raw LINE | status ID | "
          "wait ID | cancel ID | counters | ping | shutdown); see the "
          "file header for submit flags");
}

uint64_t
parseU64(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    fatal_if(end == value || *end != '\0',
             "%s needs a non-negative integer, got '%s'", flag, value);
    return static_cast<uint64_t>(v);
}

double
parseDouble(const char *flag, const char *value)
{
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    fatal_if(end == value || *end != '\0',
             "%s needs a number, got '%s'", flag, value);
    return v;
}

/** Send one request line, print and return the response. 1 exit on I/O. */
std::string
roundTrip(int fd, LineReader &reader, const std::string &request)
{
    if (!writeAll(fd, request + "\n")) {
        fatal("crisp_submit: cannot write to daemon");
    }
    std::string response;
    if (!reader.readLine(response)) {
        fatal("crisp_submit: daemon closed the connection");
    }
    std::printf("%s\n", response.c_str());
    return response;
}

/** True when the response object carries "ok": true. */
bool
responseOk(const std::string &response)
{
    Json j;
    std::string err;
    if (!Json::parse(response, j, err)) {
        return false;
    }
    const Json *ok = j.find("ok");
    return ok != nullptr && ok->asBool();
}

std::string
idRequest(const char *cmd, uint64_t id)
{
    Json r = Json::object();
    r.set("cmd", Json::str(cmd));
    r.set("id", Json::number(id));
    return r.dump();
}

std::string
bareRequest(const char *cmd)
{
    Json r = Json::object();
    r.set("cmd", Json::str(cmd));
    return r.dump();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string command;
    std::string scenario_file;
    JobSpec spec;
    bool wait_after_submit = false;
    std::string raw_payload;
    uint64_t job_id = 0;
    bool have_job_id = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs a value", arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--socket") == 0) {
            socket_path = next();
        } else if (command.empty() && arg[0] != '-') {
            command = arg;
            if (command == "submit-json" || command == "raw") {
                raw_payload = next();
            } else if (command == "status" || command == "wait" ||
                       command == "cancel") {
                job_id = parseU64(command.c_str(), next());
                have_job_id = true;
            }
        } else if (std::strcmp(arg, "--name") == 0) {
            spec.name = next();
        } else if (std::strcmp(arg, "--workload") == 0) {
            spec.workload = next();
        } else if (std::strcmp(arg, "--scene") == 0) {
            spec.scene = next();
        } else if (std::strcmp(arg, "--trace") == 0) {
            spec.tracePath = next();
        } else if (std::strcmp(arg, "--scenario") == 0) {
            scenario_file = next();
        } else if (std::strcmp(arg, "--gpu") == 0) {
            spec.gpuPreset = next();
        } else if (std::strcmp(arg, "--sms") == 0) {
            spec.numSms = static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--frames") == 0) {
            spec.frames = static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--width") == 0) {
            spec.width = static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--height") == 0) {
            spec.height = static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--points") == 0) {
            spec.points = static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--layers") == 0) {
            spec.layers = static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--ctas") == 0) {
            spec.ctas = static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--iterations") == 0) {
            spec.iterations =
                static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--max-cycles") == 0) {
            spec.quota.maxCycles = parseU64(arg, next());
        } else if (std::strcmp(arg, "--max-wall") == 0) {
            spec.quota.maxWallSec = parseDouble(arg, next());
        } else if (std::strcmp(arg, "--max-threads") == 0) {
            spec.quota.maxEngineThreads =
                static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--freeze-at") == 0) {
            spec.fault.enabled = true;
            spec.fault.freezeSmAt = parseU64(arg, next());
        } else if (std::strcmp(arg, "--corrupt-dep") == 0) {
            spec.fault.enabled = true;
            spec.fault.corruptNthDependency =
                static_cast<uint32_t>(parseU64(arg, next()));
        } else if (std::strcmp(arg, "--drop-fill") == 0) {
            spec.fault.enabled = true;
            spec.fault.dropFillProb = parseDouble(arg, next());
        } else if (std::strcmp(arg, "--fault-seed") == 0) {
            spec.fault.seed = parseU64(arg, next());
        } else if (std::strcmp(arg, "--wait") == 0) {
            wait_after_submit = true;
        } else {
            usage();
        }
    }
    if (socket_path.empty() || command.empty()) {
        usage();
    }

    if (!scenario_file.empty()) {
        // Validate locally before touching the daemon: a malformed file
        // gets the loader's file:line:col diagnostic and exit 2, the
        // same code the server's rejection would produce.
        std::string text;
        {
            FILE *f = std::fopen(scenario_file.c_str(), "rb");
            if (f == nullptr) {
                std::fprintf(stderr, "crisp_submit: cannot read %s\n",
                             scenario_file.c_str());
                return 2;
            }
            char buf[4096];
            size_t n;
            while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
                text.append(buf, n);
            }
            std::fclose(f);
        }
        scenario::Scenario sc;
        scenario::ScenarioError serr;
        if (!scenario::loadScenarioText(text, scenario_file, sc, serr)) {
            std::fprintf(stderr, "crisp_submit: %s\n",
                         serr.str().c_str());
            return 2;
        }
        spec.scenarioText = std::move(text);
    }

    std::string err;
    const int fd = connectUnix(socket_path, err);
    fatal_if(fd < 0, "crisp_submit: %s", err.c_str());
    LineReader reader(fd);

    std::string request;
    if (command == "submit") {
        Json r = Json::object();
        r.set("cmd", Json::str("submit"));
        r.set("job", spec.toJson());
        request = r.dump();
    } else if (command == "submit-json") {
        // The payload is spliced in verbatim: invalid JSON here makes
        // the whole request line invalid, which is exactly what the
        // malformed-input tests need the daemon to survive.
        request = "{\"cmd\":\"submit\",\"job\":" + raw_payload + "}";
    } else if (command == "raw") {
        request = raw_payload;
    } else if (have_job_id) {
        request = idRequest(command.c_str(), job_id);
    } else if (command == "ping" || command == "counters" ||
               command == "shutdown") {
        request = bareRequest(command.c_str());
    } else {
        usage();
    }

    std::string response = roundTrip(fd, reader, request);
    bool ok = responseOk(response);

    if (ok && command == "submit" && wait_after_submit) {
        Json j;
        std::string perr;
        if (Json::parse(response, j, perr)) {
            const Json *id = j.find("id");
            if (id != nullptr && id->isNumber()) {
                response =
                    roundTrip(fd, reader, idRequest("wait", id->asU64()));
                ok = responseOk(response);
            }
        }
    }

    ::close(fd);
    return ok ? 0 : 2;
}
