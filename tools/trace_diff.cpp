/**
 * @file
 * trace_diff: structural comparison of two CRTR trace files.
 *
 *   trace_diff A B
 *
 * Compares the kernel streams chunk by chunk — launch parameters,
 * dependency graph, then every CTA/warp/instruction — and reports the
 * first divergence with its exact location. Fingerprints are compared
 * and reported, so a cold- vs warm-cache pair can be asserted
 * identical end to end.
 *
 * Exit 0: identical. Exit 1: traces differ. Exit 2: a file could not
 * be read (the trace-io diagnosis goes to stderr).
 */

#include <cstdio>
#include <string>

#include "traceio/reader.hpp"

using namespace crisp;

namespace
{

bool
diffKernelHeader(size_t ki, const traceio::KernelHeaderRecord &a,
                 const traceio::KernelHeaderRecord &b)
{
    auto differ = [&](const char *field, const std::string &va,
                      const std::string &vb) {
        std::printf("kernel %zu: %s differs: %s vs %s\n", ki, field,
                    va.c_str(), vb.c_str());
        return true;
    };
    if (a.name != b.name) {
        return differ("name", a.name, b.name);
    }
    if (!(a.grid == b.grid)) {
        return differ("grid",
                      std::to_string(a.grid.x) + "x" +
                          std::to_string(a.grid.y) + "x" +
                          std::to_string(a.grid.z),
                      std::to_string(b.grid.x) + "x" +
                          std::to_string(b.grid.y) + "x" +
                          std::to_string(b.grid.z));
    }
    if (!(a.cta == b.cta)) {
        return differ("cta",
                      std::to_string(a.cta.x) + "x" +
                          std::to_string(a.cta.y) + "x" +
                          std::to_string(a.cta.z),
                      std::to_string(b.cta.x) + "x" +
                          std::to_string(b.cta.y) + "x" +
                          std::to_string(b.cta.z));
    }
    if (a.regsPerThread != b.regsPerThread) {
        return differ("regsPerThread", std::to_string(a.regsPerThread),
                      std::to_string(b.regsPerThread));
    }
    if (a.smemPerCta != b.smemPerCta) {
        return differ("smemPerCta", std::to_string(a.smemPerCta),
                      std::to_string(b.smemPerCta));
    }
    if (a.drawcall != b.drawcall) {
        return differ("drawcall", std::to_string(a.drawcall),
                      std::to_string(b.drawcall));
    }
    if (a.dependsOn != b.dependsOn) {
        return differ("dependsOn", std::to_string(a.dependsOn),
                      std::to_string(b.dependsOn));
    }
    return false;
}

/** Locate and print the first divergence inside a CTA pair. */
void
explainCtaDiff(size_t ki, uint32_t ci, const CtaTrace &a, const CtaTrace &b)
{
    if (a.warps.size() != b.warps.size()) {
        std::printf("kernel %zu CTA %u: warp count differs: %zu vs %zu\n",
                    ki, ci, a.warps.size(), b.warps.size());
        return;
    }
    for (size_t w = 0; w < a.warps.size(); ++w) {
        const WarpTrace &wa = a.warps[w];
        const WarpTrace &wb = b.warps[w];
        if (wa == wb) {
            continue;
        }
        if (wa.threadCount != wb.threadCount) {
            std::printf("kernel %zu CTA %u warp %zu: thread count differs: "
                        "%u vs %u\n",
                        ki, ci, w, wa.threadCount, wb.threadCount);
            return;
        }
        if (wa.instrs.size() != wb.instrs.size()) {
            std::printf("kernel %zu CTA %u warp %zu: instr count differs: "
                        "%zu vs %zu\n",
                        ki, ci, w, wa.instrs.size(), wb.instrs.size());
            return;
        }
        for (size_t i = 0; i < wa.instrs.size(); ++i) {
            if (!(wa.instrs[i] == wb.instrs[i])) {
                std::printf("kernel %zu CTA %u warp %zu instr %zu differs "
                            "(%s vs %s)\n",
                            ki, ci, w, i, opcodeName(wa.instrs[i].opcode),
                            opcodeName(wb.instrs[i].opcode));
                return;
            }
        }
    }
    std::printf("kernel %zu CTA %u differs\n", ki, ci);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr, "usage: trace_diff A B\n");
        return 2;
    }
    traceio::TraceReader a(argv[1]);
    traceio::TraceReader b(argv[2]);
    for (const traceio::TraceReader *r : {&a, &b}) {
        if (!r->valid()) {
            std::fprintf(stderr, "trace_diff: %s: %s\n", r->path().c_str(),
                         r->error().render().c_str());
            return 2;
        }
    }

    bool differs = false;
    if (a.fingerprint() != b.fingerprint()) {
        std::printf("fingerprint differs:\n  %s\n  %s\n",
                    a.fingerprint().c_str(), b.fingerprint().c_str());
        differs = true;
    }
    if (a.kernelCount() != b.kernelCount()) {
        std::printf("kernel count differs: %zu vs %zu\n", a.kernelCount(),
                    b.kernelCount());
        differs = true;
    }

    const size_t kernels = std::min(a.kernelCount(), b.kernelCount());
    for (size_t ki = 0; ki < kernels; ++ki) {
        if (diffKernelHeader(ki, a.kernel(ki).header, b.kernel(ki).header)) {
            differs = true;
            continue; // headers differ: CTA-level diff would be noise
        }
        const uint32_t ctas = a.kernel(ki).header.ctaCount;
        for (uint32_t ci = 0; ci < ctas; ++ci) {
            CtaTrace ca;
            CtaTrace cb;
            traceio::TraceError err;
            if (!a.readCta(ki, ci, ca, err)) {
                std::fprintf(stderr, "trace_diff: %s: %s\n",
                             a.path().c_str(), err.render().c_str());
                return 2;
            }
            if (!b.readCta(ki, ci, cb, err)) {
                std::fprintf(stderr, "trace_diff: %s: %s\n",
                             b.path().c_str(), err.render().c_str());
                return 2;
            }
            if (!(ca == cb)) {
                explainCtaDiff(ki, ci, ca, cb);
                differs = true;
                break; // first diverging CTA per kernel is enough signal
            }
        }
    }

    if (!differs) {
        std::printf("traces are structurally identical (%zu kernels)\n",
                    a.kernelCount());
        return 0;
    }
    return 1;
}
