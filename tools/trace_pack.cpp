/**
 * @file
 * trace_pack: generate a workload and pack it into a CRTR trace file.
 *
 * Compute workloads (the paper's §V-B generators):
 *   trace_pack --out vio.crtr --workload VIO [--frames N] [--width W]
 *              [--height H]
 *   trace_pack --out holo.crtr --workload HOLO [--points N]
 *   trace_pack --out nn.crtr --workload NN [--layers N]
 *
 * Rendering scenes (packs the frame's vertex/fragment kernels plus the
 * drawcall dependency graph the submission carries):
 *   trace_pack --out spl.crtr --scene SPL [--width W] [--height H]
 *
 * Scenario files (packs both sides, graphics frames first then compute,
 * with every dependency; arrival-schedule scenarios — bursts, "at",
 * delays — have no packed representation and are rejected):
 *   trace_pack --out run.crtr --scenario scenarios/file.json
 *
 * The packed file replays through traceio::submitLoaded with
 * byte-identical StreamStats to live generation.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "graphics/pipeline.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"
#include "traceio/writer.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"

using namespace crisp;

namespace
{

void
usage()
{
    fatal("usage: trace_pack --out FILE (--workload VIO|HOLO|NN|TIMEWARP "
          "[--frames N] [--points N] [--layers N] | --scene "
          "SPL|SPH|PT|IT|PL|MT | --scenario FILE) [--width W] "
          "[--height H]");
}

uint32_t
parseU32(const char *flag, const char *value)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(value, &end, 10);
    fatal_if(end == value || *end != '\0' || v == 0 || v > 0xffffffffull,
             "%s needs a positive integer, got '%s'", flag, value);
    return static_cast<uint32_t>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out;
    std::string workload;
    std::string scene_name;
    std::string scenario_path;
    uint32_t frames = 2;
    uint32_t points = 3;
    uint32_t layers = 4;
    uint32_t width = 0;
    uint32_t height = 0;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            fatal_if(i + 1 >= argc, "%s needs a value", arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--out") == 0) {
            out = next();
        } else if (std::strcmp(arg, "--workload") == 0) {
            workload = next();
        } else if (std::strcmp(arg, "--scene") == 0) {
            scene_name = next();
        } else if (std::strcmp(arg, "--scenario") == 0) {
            scenario_path = next();
        } else if (std::strcmp(arg, "--frames") == 0) {
            frames = parseU32(arg, next());
        } else if (std::strcmp(arg, "--points") == 0) {
            points = parseU32(arg, next());
        } else if (std::strcmp(arg, "--layers") == 0) {
            layers = parseU32(arg, next());
        } else if (std::strcmp(arg, "--width") == 0) {
            width = parseU32(arg, next());
        } else if (std::strcmp(arg, "--height") == 0) {
            height = parseU32(arg, next());
        } else {
            usage();
        }
    }
    const int payloads = (workload.empty() ? 0 : 1) +
        (scene_name.empty() ? 0 : 1) + (scenario_path.empty() ? 0 : 1);
    if (out.empty() || payloads != 1) {
        usage();
    }

    std::vector<KernelInfo> kernels;
    std::vector<int> depends_on;
    std::string fingerprint;
    AddressSpace heap(0x8000'0000ull);
    const Addr heap_base = heap.allocatedEnd();

    // The Scene/submission must outlive packing: trace generators
    // reference their textures while the writer streams CTAs out.
    Scene scene;
    scenario::Materialized mat;
    if (!scenario_path.empty()) {
        scenario::Scenario sc;
        scenario::ScenarioError serr;
        if (!scenario::loadScenarioFile(scenario_path, sc, serr)) {
            fatal("%s", serr.str().c_str());
        }
        scenario::Flattened flat;
        std::string why;
        if (!scenario::flattenScenario(sc, heap, mat, flat, why)) {
            fatal("cannot pack %s: %s", scenario_path.c_str(),
                  why.c_str());
        }
        // One trace, graphics frames first then compute, dependency
        // indices re-based onto the concatenated list. A trace replays
        // on a single stream, whose FIFO order already serializes the
        // two sides the way the indices allow.
        kernels = std::move(flat.gfxKernels);
        depends_on = std::move(flat.gfxDependsOn);
        const int offset = static_cast<int>(kernels.size());
        for (size_t i = 0; i < flat.cmpKernels.size(); ++i) {
            kernels.push_back(std::move(flat.cmpKernels[i]));
            const int dep = flat.cmpDependsOn[i];
            depends_on.push_back(dep < 0 ? -1 : dep + offset);
        }
        fingerprint = "trace_pack/scenario/" + sc.canonicalText;
    } else if (!workload.empty()) {
        char desc[128];
        if (workload == "VIO") {
            const uint32_t w = width != 0 ? width : 320;
            const uint32_t h = height != 0 ? height : 240;
            kernels = buildVio(heap, frames, w, h);
            std::snprintf(desc, sizeof(desc),
                          "trace_pack/vio/frames=%u/w=%u/h=%u", frames, w, h);
        } else if (workload == "HOLO") {
            kernels = buildHolo(heap, points);
            std::snprintf(desc, sizeof(desc), "trace_pack/holo/points=%u",
                          points);
        } else if (workload == "NN") {
            kernels = buildNn(heap, layers);
            std::snprintf(desc, sizeof(desc), "trace_pack/nn/layers=%u",
                          layers);
        } else if (workload == "TIMEWARP") {
            const uint32_t w = width != 0 ? width : 640;
            const uint32_t h = height != 0 ? height : 360;
            const Addr frame_color = heap.alloc(
                static_cast<uint64_t>(w) * h * 4);
            kernels = buildTimewarp(heap, frame_color, w, h);
            std::snprintf(desc, sizeof(desc),
                          "trace_pack/timewarp/w=%u/h=%u", w, h);
        } else {
            fatal("unknown workload '%s' (VIO, HOLO, NN, TIMEWARP)",
                  workload.c_str());
        }
        fingerprint = desc;
    } else {
        const uint32_t w = width != 0 ? width : 480;
        const uint32_t h = height != 0 ? height : 270;
        scene = buildSceneByName(scene_name, heap);
        PipelineConfig pc;
        pc.width = w;
        pc.height = h;
        AddressSpace fb_heap(0x4000'0000ull);
        RenderPipeline pipe(pc, fb_heap);
        RenderSubmission sub = pipe.submit(scene);
        kernels = std::move(sub.kernels);
        depends_on = std::move(sub.dependsOn);
        char desc[128];
        std::snprintf(desc, sizeof(desc), "trace_pack/scene=%s/w=%u/h=%u",
                      scene_name.c_str(), w, h);
        fingerprint = desc;
    }

    traceio::TraceError err;
    if (!traceio::writeTrace(out, fingerprint, kernels, depends_on,
                             heap.allocatedEnd() - heap_base, err)) {
        fatal("packing failed: %s", err.render().c_str());
    }

    uint64_t ctas = 0;
    for (const KernelInfo &k : kernels) {
        ctas += k.numCtas();
    }
    std::printf("packed %zu kernels (%llu CTAs) into %s\n", kernels.size(),
                static_cast<unsigned long long>(ctas), out.c_str());
    std::printf("fingerprint: %s\n", fingerprint.c_str());
    return 0;
}
