#include <gtest/gtest.h>

#include <map>

#include "core/sm.hpp"
#include "isa/trace_builder.hpp"

namespace crisp
{
namespace
{

/** Fabric stub: answers every read a fixed delay after submission. */
class TestFabric : public MemFabricPort
{
  public:
    explicit TestFabric(Cycle delay = 100) : delay_(delay) {}

    bool
    submitToL2(MemRequest req, Cycle now) override
    {
        ++submissions_;
        if (req.write) {
            ++writes_;
            return true;
        }
        pending_.emplace(now + delay_, req);
        return true;
    }

    /** Deliver due responses into @p sm. */
    void
    step(Sm &sm, Cycle now)
    {
        while (!pending_.empty() && pending_.begin()->first <= now) {
            auto node = pending_.extract(pending_.begin());
            sm.memResponse(node.mapped(), now);
        }
    }

    uint64_t submissions() const { return submissions_; }
    uint64_t writes() const { return writes_; }

  private:
    Cycle delay_;
    uint64_t submissions_ = 0;
    uint64_t writes_ = 0;
    std::multimap<Cycle, MemRequest> pending_;
};

KernelInfo
oneWarpKernel(WarpTrace warp, uint32_t regs = 16)
{
    CtaTrace cta;
    cta.warps.push_back(std::move(warp));
    KernelInfo k;
    k.name = "test";
    k.grid = {1, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = regs;
    k.source = std::make_shared<VectorCtaSource>(
        std::vector<CtaTrace>{std::move(cta)});
    return k;
}

struct SmHarness
{
    SmConfig cfg;
    TestFabric fabric;
    StatsRegistry stats;
    std::unique_ptr<Sm> sm;
    Cycle now = 0;

    explicit SmHarness(Cycle mem_delay = 100) : fabric(mem_delay)
    {
        sm = std::make_unique<Sm>(0, cfg, &fabric, &stats);
    }

    /** Step until the SM idles; returns cycles taken. */
    Cycle
    runToIdle(Cycle budget = 100000)
    {
        const Cycle start = now;
        while (!sm->idle() && now - start < budget) {
            ++now;
            sm->step(now);
            fabric.step(*sm, now);
        }
        return now - start;
    }
};

TEST(SmTest, RunsSimpleAluWarp)
{
    SmHarness h;
    TraceBuilder tb(32);
    for (int i = 0; i < 10; ++i) {
        tb.alu(Opcode::FFMA, static_cast<uint8_t>(4 + i), 1, 2);
    }
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    ASSERT_TRUE(h.sm->canAccept(k));
    h.sm->launchCta(k, 1, 0, h.now);
    h.runToIdle();
    EXPECT_TRUE(h.sm->idle());
    EXPECT_EQ(h.stats.stream(0).instructions, 11u);
    EXPECT_EQ(h.stats.stream(0).warpsLaunched, 1u);
    EXPECT_EQ(h.stats.stream(0).ctasLaunched, 1u);
}

TEST(SmTest, DependentChainSlowerThanIndependent)
{
    // Dependent chain of 32 FFMA.
    SmHarness h1;
    TraceBuilder tb1(32);
    tb1.aluChain(Opcode::FFMA, 5, 2, 32);
    tb1.exit();
    auto k1 = oneWarpKernel(tb1.take());
    h1.sm->launchCta(k1, 1, 0, 0);
    const Cycle dep_cycles = h1.runToIdle();

    // 32 independent FFMA (distinct dests, no chains).
    SmHarness h2;
    TraceBuilder tb2(32);
    for (int i = 0; i < 32; ++i) {
        tb2.alu(Opcode::FFMA, static_cast<uint8_t>(8 + (i % 32)), 1, 2);
    }
    tb2.exit();
    auto k2 = oneWarpKernel(tb2.take());
    h2.sm->launchCta(k2, 1, 0, 0);
    const Cycle indep_cycles = h2.runToIdle();

    EXPECT_GT(dep_cycles, indep_cycles * 2);
}

TEST(SmTest, SfuHasLowerThroughputThanFp32)
{
    SmHarness h1;
    TraceBuilder tb1(32);
    for (int i = 0; i < 64; ++i) {
        tb1.alu(Opcode::FFMA, static_cast<uint8_t>(8 + (i % 8)), 1, 2);
    }
    tb1.exit();
    auto k1 = oneWarpKernel(tb1.take());
    h1.sm->launchCta(k1, 1, 0, 0);
    const Cycle fp = h1.runToIdle();

    SmHarness h2;
    TraceBuilder tb2(32);
    for (int i = 0; i < 64; ++i) {
        tb2.alu(Opcode::MUFU_SIN, static_cast<uint8_t>(8 + (i % 8)), 1);
    }
    tb2.exit();
    auto k2 = oneWarpKernel(tb2.take());
    h2.sm->launchCta(k2, 1, 0, 0);
    const Cycle sfu = h2.runToIdle();

    EXPECT_GT(sfu, fp * 2);
}

TEST(SmTest, LoadMissRoundTripAndL1Hit)
{
    SmHarness h(/*mem_delay=*/200);
    TraceBuilder tb(32);
    tb.memUniform(Opcode::LDG, 4, 0x1000, 4, DataClass::Compute);
    tb.alu(Opcode::FFMA, 5, 4, 4);  // depends on the load
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    h.sm->launchCta(k, 1, 0, 0);
    const Cycle first = h.runToIdle();
    EXPECT_GT(first, 200u);  // paid the fabric latency
    EXPECT_EQ(h.fabric.submissions(), 1u);
    EXPECT_EQ(h.stats.stream(0).l1Accesses, 1u);
    EXPECT_EQ(h.stats.stream(0).l1Hits, 0u);

    // Second CTA loads the same line: an L1 hit, no fabric traffic.
    auto k2 = oneWarpKernel([&] {
        TraceBuilder t(32);
        t.memUniform(Opcode::LDG, 4, 0x1000, 4, DataClass::Compute);
        t.alu(Opcode::FFMA, 5, 4, 4);
        t.exit();
        return t.take();
    }());
    h.sm->launchCta(k2, 2, 0, h.now);
    const Cycle second = h.runToIdle();
    EXPECT_EQ(h.fabric.submissions(), 1u);
    EXPECT_EQ(h.stats.stream(0).l1Hits, 1u);
    EXPECT_LT(second, first);
}

TEST(SmTest, TexCountsAsTextureAccess)
{
    SmHarness h;
    TraceBuilder tb(32);
    tb.memStrided(Opcode::TEX, 4, 0x8000, 4, 4, DataClass::Texture);
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    h.sm->launchCta(k, 1, 0, 0);
    h.runToIdle();
    EXPECT_EQ(h.stats.stream(0).l1TexAccesses, 1u);
}

TEST(SmTest, StoresAreFireAndForget)
{
    SmHarness h;
    TraceBuilder tb(32);
    tb.memStrided(Opcode::STG, 4, 0x2000, 4, 4, DataClass::Compute);
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    h.sm->launchCta(k, 1, 0, 0);
    const Cycle cycles = h.runToIdle();
    EXPECT_LT(cycles, 50u);  // no latency dependence on the store
    EXPECT_EQ(h.fabric.writes(), 1u);
}

TEST(SmTest, CoalescedLoadProducesOneRequest)
{
    SmHarness h;
    TraceBuilder tb(32);
    tb.memStrided(Opcode::LDG, 4, 0x4000, 4, 4, DataClass::Compute);
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    h.sm->launchCta(k, 1, 0, 0);
    h.runToIdle();
    EXPECT_EQ(h.fabric.submissions(), 1u);
}

TEST(SmTest, UncoalescedLoadProducesManyRequests)
{
    SmHarness h;
    TraceBuilder tb(32);
    tb.memStrided(Opcode::LDG, 4, 0x40000, kLineBytes, 4,
                  DataClass::Compute);
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    h.sm->launchCta(k, 1, 0, 0);
    h.runToIdle();
    EXPECT_EQ(h.fabric.submissions(), 32u);
    EXPECT_EQ(h.stats.stream(0).l1Accesses, 32u);
}

TEST(SmTest, SharedMemoryConflictsAreCounted)
{
    // All lanes hit the same bank with distinct words: 32-way conflict.
    SmHarness h;
    TraceBuilder tb(32);
    tb.memStrided(Opcode::LDS, 4, 0, 32 * 4, 4, DataClass::Compute);
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    h.sm->launchCta(k, 1, 0, 0);
    h.runToIdle();
    EXPECT_EQ(h.stats.stream(0).smemAccesses, 1u);
    EXPECT_EQ(h.stats.stream(0).smemBankConflicts, 31u);

    // Lane-linear words are conflict-free.
    SmHarness h2;
    TraceBuilder tb2(32);
    tb2.memStrided(Opcode::LDS, 4, 0, 4, 4, DataClass::Compute);
    tb2.exit();
    auto k2 = oneWarpKernel(tb2.take());
    h2.sm->launchCta(k2, 1, 0, 0);
    h2.runToIdle();
    EXPECT_EQ(h2.stats.stream(0).smemBankConflicts, 0u);
}

TEST(SmTest, BarrierSynchronizesWarps)
{
    SmHarness h(/*mem_delay=*/500);
    // Warp 0: slow load then barrier. Warp 1: barrier then ALU.
    CtaTrace cta;
    {
        TraceBuilder tb(32);
        tb.memUniform(Opcode::LDG, 4, 0x9000, 4, DataClass::Compute);
        tb.alu(Opcode::FFMA, 5, 4, 4);
        tb.bar();
        tb.exit();
        cta.warps.push_back(tb.take());
    }
    {
        TraceBuilder tb(32);
        tb.bar();
        tb.alu(Opcode::FFMA, 5, 1, 2);
        tb.exit();
        cta.warps.push_back(tb.take());
    }
    KernelInfo k;
    k.name = "barrier";
    k.grid = {1, 1, 1};
    k.cta = {64, 1, 1};
    k.regsPerThread = 16;
    k.source = std::make_shared<VectorCtaSource>(
        std::vector<CtaTrace>{std::move(cta)});
    h.sm->launchCta(k, 1, 0, 0);
    const Cycle cycles = h.runToIdle();
    // Warp 1 must have waited for warp 0's 500-cycle load.
    EXPECT_GT(cycles, 500u);
    EXPECT_TRUE(h.sm->idle());
}

/** A CTA whose warps park on a long-latency load (stays resident). */
CtaTrace
parkedCta(uint32_t warps)
{
    CtaTrace cta;
    for (uint32_t w = 0; w < warps; ++w) {
        TraceBuilder tb(32);
        tb.memUniform(Opcode::LDG, 4, 0xB000 + 0x40 * w, 4,
                      DataClass::Compute);
        tb.alu(Opcode::FFMA, 5, 4, 4);
        tb.exit();
        cta.warps.push_back(tb.take());
    }
    return cta;
}

TEST(SmTest, ResourceAccounting)
{
    SmHarness h(/*mem_delay=*/50000);
    KernelInfo big;
    big.name = "big";
    big.grid = {4, 1, 1};
    big.cta = {1024, 1, 1};
    big.regsPerThread = 64;  // 64K regs per CTA: only one fits
    big.source = std::make_shared<VectorCtaSource>(std::vector<CtaTrace>(
        4, parkedCta(32)));
    ASSERT_TRUE(h.sm->canAccept(big));
    h.sm->launchCta(big, 1, 0, 0);
    for (int i = 0; i < 10; ++i) {
        ++h.now;
        h.sm->step(h.now);
    }
    // 1024 threads * 64 regs = 65536 = all registers: no second CTA.
    EXPECT_FALSE(h.sm->canAccept(big));
    h.runToIdle(200000);
    EXPECT_TRUE(h.sm->canAccept(big));  // resources freed at CTA commit
}

TEST(SmTest, QuotaRestrictsStream)
{
    SmHarness h(/*mem_delay=*/50000);
    SmQuota q;
    q.maxThreads = 128;
    h.sm->setQuota(0, q);
    KernelInfo k;
    k.name = "quota";
    k.grid = {2, 1, 1};
    k.cta = {128, 1, 1};
    k.regsPerThread = 16;
    k.source = std::make_shared<VectorCtaSource>(std::vector<CtaTrace>(
        2, parkedCta(4)));
    ASSERT_TRUE(h.sm->canAccept(k));
    h.sm->launchCta(k, 1, 0, 0);
    for (int i = 0; i < 10; ++i) {
        ++h.now;
        h.sm->step(h.now);
    }
    EXPECT_FALSE(h.sm->canAccept(k));  // quota, not capacity, blocks
    h.sm->clearQuotas();
    EXPECT_TRUE(h.sm->canAccept(k));
    h.runToIdle(200000);
}

TEST(SmTest, CtaDoneHandlerFires)
{
    SmHarness h;
    int done = 0;
    h.sm->setCtaDoneHandler(
        [&](uint32_t, StreamId, KernelId) { ++done; });
    TraceBuilder tb(32);
    tb.alu(Opcode::MOV, 1).exit();
    auto k = oneWarpKernel(tb.take());
    h.sm->launchCta(k, 1, 0, 0);
    h.runToIdle();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(h.sm->activeWarps(), 0u);
    EXPECT_EQ(h.sm->activeCtas(), 0u);
}

TEST(SmTest, PerStreamOccupancyTracked)
{
    SmHarness h(/*mem_delay=*/10000);
    // A warp parked on a long load keeps the CTA resident.
    TraceBuilder tb(32);
    tb.memUniform(Opcode::LDG, 4, 0xA000, 4, DataClass::Compute);
    tb.alu(Opcode::FFMA, 5, 4, 4);
    tb.exit();
    auto k = oneWarpKernel(tb.take());
    k.stream = 7;
    h.sm->launchCta(k, 1, 0, 0);
    for (int i = 0; i < 50; ++i) {
        ++h.now;
        h.sm->step(h.now);
    }
    EXPECT_EQ(h.sm->activeWarpsOf(7), 1u);
    EXPECT_EQ(h.sm->activeWarpsOf(3), 0u);
    EXPECT_EQ(h.sm->usedThreadsOf(7), 32u);
    EXPECT_GT(h.sm->issuedInstrsOf(7), 0u);
    h.runToIdle(20000);
}

} // namespace
} // namespace crisp
