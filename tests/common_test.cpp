#include <gtest/gtest.h>

#include <cmath>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace crisp
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(9);
    for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.nextBelow(bound), bound);
        }
    }
    EXPECT_EQ(rng.nextBelow(0), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0;
    double sum2 = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Histogram, BasicCounts)
{
    Histogram h(10);
    h.add(3);
    h.add(3);
    h.add(5);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.count(5), 1u);
    EXPECT_EQ(h.totalSamples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), (3.0 + 3.0 + 5.0) / 3.0);
    EXPECT_EQ(h.modeBucket(), 3u);
    EXPECT_EQ(h.minValue(), 3u);
    EXPECT_EQ(h.maxValue(), 5u);
}

TEST(Histogram, ClampsOverflowIntoLastBucket)
{
    Histogram h(4);
    h.add(100);
    EXPECT_EQ(h.count(4), 1u);
    // Mean keeps the true value even when the bucket clamps.
    EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a(8);
    Histogram b(8);
    a.add(1);
    b.add(1);
    b.add(2);
    a.merge(b);
    EXPECT_EQ(a.count(1), 2u);
    EXPECT_EQ(a.count(2), 1u);
    EXPECT_EQ(a.totalSamples(), 3u);
}

TEST(Histogram, EmptyIsSane)
{
    Histogram h(4);
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(Histogram, SelfConsistentAfterAddsAndMerge)
{
    Histogram h(4);
    EXPECT_TRUE(h.selfConsistent());
    h.add(1);
    h.add(100); // clamps into the overflow bucket but still counts once
    EXPECT_TRUE(h.selfConsistent());

    Histogram other(4);
    other.add(2);
    h.merge(other);
    EXPECT_TRUE(h.selfConsistent());
    EXPECT_EQ(h.totalSamples(), 3u);
}

TEST(StreamStatsAbsorb, FirstCycleKeepsEarliestSetValue)
{
    // Shadow deltas from the parallel cycle engine can arrive out of
    // order: an SM that launched its first CTA later may reach the merge
    // barrier first. firstCycle must end up as the minimum over *set*
    // (non-zero) values, regardless of absorb order.
    StreamStats s;
    StreamStats late;
    late.firstCycle = 100;
    late.lastCycle = 120;
    s.absorb(late);
    EXPECT_EQ(s.firstCycle, 100u);

    StreamStats early;
    early.firstCycle = 50;
    early.lastCycle = 60;
    s.absorb(early);
    EXPECT_EQ(s.firstCycle, 50u); // earlier mark wins even when absorbed second
    EXPECT_EQ(s.lastCycle, 120u);

    StreamStats unset; // 0 == unset, must not clobber a real mark
    s.absorb(unset);
    EXPECT_EQ(s.firstCycle, 50u);

    StreamStats s2;
    StreamStats only;
    only.firstCycle = 70;
    s2.absorb(only);
    EXPECT_EQ(s2.firstCycle, 70u); // empty accumulator adopts the first mark
}

TEST(StreamStatsAbsorb, CountersAndMergesAdd)
{
    StreamStats s;
    s.l1MshrMerges = 2;
    s.l2MshrMerges = 3;
    StreamStats d;
    d.l1MshrMerges = 5;
    d.l2MshrMerges = 7;
    d.l1Accesses = 11;
    s.absorb(d);
    EXPECT_EQ(s.l1MshrMerges, 7u);
    EXPECT_EQ(s.l2MshrMerges, 10u);
    EXPECT_EQ(s.l1Accesses, 11u);
}

TEST(Metrics, PearsonPerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Metrics, PearsonAntiCorrelation)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {3, 2, 1};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Metrics, PearsonDegenerateInputs)
{
    EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1.0}, {2.0}), 0.0);
    EXPECT_DOUBLE_EQ(pearson({1.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(Metrics, MapeBasics)
{
    std::vector<double> ref = {100, 200};
    std::vector<double> pred = {110, 180};
    size_t skipped = 99;
    EXPECT_NEAR(mape(ref, pred, &skipped), (10.0 + 10.0) / 2.0, 1e-9);
    EXPECT_EQ(skipped, 0u);
}

TEST(Metrics, MapeSkipsZeroReference)
{
    std::vector<double> ref = {0, 100};
    std::vector<double> pred = {50, 150};
    size_t skipped = 0;
    EXPECT_NEAR(mape(ref, pred, &skipped), 50.0, 1e-9);
    EXPECT_EQ(skipped, 1u);
    // Without the out-param the value is unchanged (the skip is logged).
    EXPECT_NEAR(mape(ref, pred), 50.0, 1e-9);
    // All-zero reference: everything skipped, MAPE defined as 0.
    EXPECT_DOUBLE_EQ(mape({0, 0}, {1, 2}, &skipped), 0.0);
    EXPECT_EQ(skipped, 2u);
}

TEST(Metrics, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, -1.0}), 0.0);
}

TEST(StreamStatsTest, Rates)
{
    StreamStats st;
    st.l1Accesses = 10;
    st.l1Hits = 7;
    st.l2Accesses = 4;
    st.l2Hits = 1;
    st.instructions = 100;
    st.firstCycle = 10;
    st.lastCycle = 60;
    EXPECT_DOUBLE_EQ(st.l1HitRate(), 0.7);
    EXPECT_DOUBLE_EQ(st.l2HitRate(), 0.25);
    EXPECT_DOUBLE_EQ(st.ipc(), 2.0);
}

TEST(StatsRegistryTest, CountersAndStreams)
{
    StatsRegistry stats;
    stats.add("foo");
    stats.add("foo", 4);
    EXPECT_EQ(stats.get("foo"), 5u);
    EXPECT_EQ(stats.get("missing"), 0u);

    stats.stream(0).instructions = 10;
    stats.stream(1).instructions = 20;
    EXPECT_EQ(stats.sumOver(&StreamStats::instructions), 30u);
    EXPECT_NE(stats.findStream(0), nullptr);
    EXPECT_EQ(stats.findStream(9), nullptr);

    stats.clear();
    EXPECT_EQ(stats.get("foo"), 0u);
    EXPECT_EQ(stats.allStreams().size(), 0u);
}

TEST(TableTest, TextAndCsv)
{
    Table t({"name", "value"});
    t.addRow({"a", Table::num(1.5, 1)});
    t.addRow({"with,comma", "2"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(DataClassTest, Names)
{
    EXPECT_STREQ(dataClassName(DataClass::Texture), "texture");
    EXPECT_STREQ(dataClassName(DataClass::Pipeline), "pipeline");
    EXPECT_STREQ(dataClassName(DataClass::Compute), "compute");
    EXPECT_STREQ(dataClassName(DataClass::Unknown), "unknown");
}

} // namespace
} // namespace crisp
