#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "gpu/gpu.hpp"
#include "integrity/report.hpp"
#include "traceio/cache.hpp"
#include "traceio/format.hpp"
#include "traceio/reader.hpp"
#include "traceio/replay.hpp"
#include "traceio/writer.hpp"
#include "workloads/cached.hpp"
#include "workloads/compute.hpp"

namespace crisp
{
namespace
{

using traceio::TraceError;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<uint8_t>
readAll(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// --- Random trace construction (the property tests' generator) ------------

TraceInstr
randomInstr(Rng &rng)
{
    TraceInstr in;
    in.opcode = static_cast<Opcode>(
        rng.nextBelow(static_cast<uint64_t>(Opcode::NumOpcodes)));
    in.dst = rng.nextBelow(4) == 0 ? kNoReg
                                   : static_cast<uint8_t>(rng.nextBelow(64));
    for (auto &s : in.srcs) {
        s = rng.nextBelow(3) == 0 ? kNoReg
                                  : static_cast<uint8_t>(rng.nextBelow(64));
    }
    // Sparse, full, and single-lane masks all appear.
    switch (rng.nextBelow(3)) {
      case 0: in.activeMask = 0xffffffffu; break;
      case 1: in.activeMask = static_cast<uint32_t>(rng.next()) | 1u; break;
      default: in.activeMask = 1u << rng.nextBelow(32); break;
    }
    if (isMemory(in.opcode)) {
        in.accessBytes = static_cast<uint8_t>(1u << rng.nextBelow(5));
        in.dataClass = static_cast<DataClass>(rng.range(
            1, static_cast<int64_t>(DataClass::NumClasses) - 1));
        const uint32_t lanes = in.activeLanes();
        const Addr base = rng.next() & 0xffff'ffff'ffull;
        for (uint32_t l = 0; l < lanes; ++l) {
            switch (rng.nextBelow(3)) {
              case 0: // unit stride (the delta-coding fast path)
                in.addrs.push_back(base + 4ull * l);
                break;
              case 1: // gather: arbitrary addresses, including descending
                in.addrs.push_back(rng.next() & 0xffff'ffff'ffull);
                break;
              default: // broadcast
                in.addrs.push_back(base);
                break;
            }
        }
    }
    return in;
}

CtaTrace
randomCta(Rng &rng)
{
    CtaTrace cta;
    const uint64_t warps = 1 + rng.nextBelow(4);
    for (uint64_t w = 0; w < warps; ++w) {
        WarpTrace warp;
        warp.threadCount = 1 + static_cast<uint32_t>(rng.nextBelow(32));
        const uint64_t instrs = rng.nextBelow(40);
        for (uint64_t i = 0; i < instrs; ++i) {
            warp.instrs.push_back(randomInstr(rng));
        }
        cta.warps.push_back(std::move(warp));
    }
    return cta;
}

KernelInfo
randomKernel(Rng &rng, const std::string &name)
{
    KernelInfo info;
    info.name = name;
    info.grid = {1 + static_cast<uint32_t>(rng.nextBelow(5)), 1, 1};
    info.cta = {32 * (1 + static_cast<uint32_t>(rng.nextBelow(4))), 1, 1};
    info.regsPerThread = 16 + static_cast<uint32_t>(rng.nextBelow(48));
    info.smemPerCta = static_cast<uint32_t>(rng.nextBelow(3)) * 4096;
    info.drawcall = static_cast<uint32_t>(rng.nextBelow(4));
    std::vector<CtaTrace> ctas;
    for (uint32_t c = 0; c < info.numCtas(); ++c) {
        ctas.push_back(randomCta(rng));
    }
    info.source = std::make_shared<VectorCtaSource>(std::move(ctas));
    return info;
}

/** Pack kernels to @p path; fail the test on writer errors. */
void
packOrDie(const std::string &path, const std::vector<KernelInfo> &kernels,
          const std::vector<int> &deps = {})
{
    TraceError err;
    ASSERT_TRUE(traceio::writeTrace(path, "test-fingerprint", kernels, deps,
                                    /*heap_bytes_used=*/0, err))
        << err.render();
}

// --- Round-trip properties -------------------------------------------------

TEST(TraceRoundTrip, RandomKernelsSurviveWriteReadBitExactly)
{
    Rng rng(0xc0ffee);
    const std::string path = tempPath("roundtrip.crtr");
    for (int iter = 0; iter < 8; ++iter) {
        std::vector<KernelInfo> kernels;
        const uint64_t n = 1 + rng.nextBelow(4);
        for (uint64_t k = 0; k < n; ++k) {
            kernels.push_back(
                randomKernel(rng, "k" + std::to_string(k)));
        }
        packOrDie(path, kernels);

        traceio::LoadedTrace loaded;
        TraceError err;
        ASSERT_TRUE(traceio::loadTrace(path, loaded, err)) << err.render();
        ASSERT_EQ(loaded.kernels.size(), kernels.size());
        for (size_t k = 0; k < kernels.size(); ++k) {
            const KernelInfo &a = kernels[k];
            const KernelInfo &b = loaded.kernels[k];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.grid, b.grid);
            EXPECT_EQ(a.cta, b.cta);
            EXPECT_EQ(a.regsPerThread, b.regsPerThread);
            EXPECT_EQ(a.smemPerCta, b.smemPerCta);
            EXPECT_EQ(a.drawcall, b.drawcall);
            for (uint32_t c = 0; c < a.numCtas(); ++c) {
                EXPECT_EQ(a.source->generate(c), b.source->generate(c))
                    << "kernel " << k << " CTA " << c << " iter " << iter;
            }
        }
    }
}

TEST(TraceRoundTrip, DependencyGraphSurvives)
{
    Rng rng(42);
    std::vector<KernelInfo> kernels;
    for (int k = 0; k < 4; ++k) {
        kernels.push_back(randomKernel(rng, "dep" + std::to_string(k)));
    }
    const std::vector<int> deps = {-1, 0, -1, 2};
    const std::string path = tempPath("deps.crtr");
    packOrDie(path, kernels, deps);

    traceio::LoadedTrace loaded;
    TraceError err;
    ASSERT_TRUE(traceio::loadTrace(path, loaded, err)) << err.render();
    EXPECT_EQ(loaded.dependsOn, deps);
    EXPECT_EQ(loaded.fingerprint, "test-fingerprint");
}

TEST(TraceRoundTrip, ForwardDependencyIsRejectedAtWrite)
{
    Rng rng(7);
    std::vector<KernelInfo> kernels = {randomKernel(rng, "a"),
                                       randomKernel(rng, "b")};
    TraceError err;
    EXPECT_FALSE(traceio::writeTrace(tempPath("fwd.crtr"), "fp", kernels,
                                     {1, -1}, 0, err));
    EXPECT_EQ(err.kind, TraceError::Kind::Schema);
}

// --- Corruption is diagnosed, never UB ------------------------------------

class TraceCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(0xbadf00d);
        path_ = tempPath("corruption.crtr");
        packOrDie(path_, {randomKernel(rng, "victim")});
        bytes_ = readAll(path_);
        ASSERT_GT(bytes_.size(), 64u);
    }

    std::string path_;
    std::vector<uint8_t> bytes_;
};

TEST_F(TraceCorruption, TruncationAtEveryRegionIsDiagnosed)
{
    // Cut inside the header, inside a chunk prelude, inside a payload,
    // and just before the End chunk: all must diagnose, none may crash.
    for (const size_t keep :
         {size_t(3), size_t(6), size_t(12), bytes_.size() / 2,
          bytes_.size() - 1}) {
        writeAll(path_, {bytes_.begin(), bytes_.begin() + keep});
        traceio::TraceReader reader(path_);
        ASSERT_FALSE(reader.valid()) << "kept " << keep << " bytes";
        EXPECT_TRUE(reader.error().kind == TraceError::Kind::Truncated ||
                    reader.error().kind == TraceError::Kind::Corrupt)
            << reader.error().render();
        EXPECT_FALSE(reader.error().detail.empty());
    }
}

TEST_F(TraceCorruption, FlippedPayloadByteFailsTheChunkCrc)
{
    // Flip one byte inside the Meta chunk's payload (which starts at
    // offset 8 + prelude): the chunk CRC must catch it.
    std::vector<uint8_t> flipped = bytes_;
    flipped[8 + traceio::kChunkPrelude + 2] ^= 0x40;
    writeAll(path_, flipped);
    traceio::TraceReader reader(path_);
    ASSERT_FALSE(reader.valid());
    EXPECT_EQ(reader.error().kind, TraceError::Kind::Corrupt);

    const integrity::InvariantViolation v = reader.error().violation();
    EXPECT_EQ(v.check, "trace-io-corrupt");
    EXPECT_NE(v.detail.find("offset"), std::string::npos);
}

TEST_F(TraceCorruption, VersionMismatchIsDiagnosed)
{
    std::vector<uint8_t> skewed = bytes_;
    skewed[4] = traceio::kFormatVersion + 1;
    writeAll(path_, skewed);
    traceio::TraceReader reader(path_);
    ASSERT_FALSE(reader.valid());
    EXPECT_EQ(reader.error().kind, TraceError::Kind::Version);
    EXPECT_NE(reader.error().detail.find("version"), std::string::npos);
}

TEST_F(TraceCorruption, WrongMagicIsDiagnosed)
{
    std::vector<uint8_t> nonsense = bytes_;
    nonsense[0] = 'X';
    writeAll(path_, nonsense);
    traceio::TraceReader reader(path_);
    ASSERT_FALSE(reader.valid());
    EXPECT_EQ(reader.error().kind, TraceError::Kind::BadMagic);
}

TEST_F(TraceCorruption, MissingFileIsDiagnosed)
{
    traceio::TraceReader reader(tempPath("never-written.crtr"));
    ASSERT_FALSE(reader.valid());
    EXPECT_EQ(reader.error().kind, TraceError::Kind::Io);
}

TEST_F(TraceCorruption, MidReplayCorruptionIsFatalNotUb)
{
    traceio::LoadedTrace loaded;
    TraceError err;
    ASSERT_TRUE(traceio::loadTrace(path_, loaded, err)) << err.render();
    // Corrupt the file *after* the reader validated it; the lazy CTA
    // source re-verifies the CRC on every read and must fatal() with a
    // diagnosis instead of decoding garbage. Flip a byte inside kernel
    // 0 CTA 0's payload specifically — that is the chunk generate(0)
    // will re-read.
    traceio::TraceReader reader(path_);
    ASSERT_TRUE(reader.valid());
    const uint64_t cta0 = reader.kernel(0).ctaOffsets.at(0);
    std::vector<uint8_t> flipped = bytes_;
    flipped.at(cta0 + traceio::kChunkPrelude + 1) ^= 0x01;
    writeAll(path_, flipped);
    EXPECT_EXIT(loaded.kernels[0].source->generate(0),
                ::testing::ExitedWithCode(1), "trace replay failed");
}

// --- Replay equivalence ----------------------------------------------------

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.name = "traceio-test";
    cfg.numSms = 4;
    cfg.l2.numBanks = 2;
    cfg.finalize();
    return cfg;
}

std::vector<KernelInfo>
smallWorkload(AddressSpace &heap)
{
    ComputeKernelDesc d;
    d.name = "replay.kernel";
    d.ctas = 8;
    d.threadsPerCta = 128;
    d.iterations = 2;
    d.fp32Ops = 6;
    d.intOps = 2;
    d.loads = {{MemPatternKind::Streaming, heap.alloc(1 << 16), 1 << 16, 4,
                2, 128}};
    d.store = {MemPatternKind::Streaming, heap.alloc(1 << 16), 1 << 16, 4,
               1, 128};
    d.hasStore = true;
    return {buildComputeKernel(d)};
}

void
expectStreamStatsIdentical(const StreamStats &a, const StreamStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.warpsLaunched, b.warpsLaunched);
    EXPECT_EQ(a.ctasLaunched, b.ctasLaunched);
    EXPECT_EQ(a.kernelsCompleted, b.kernelsCompleted);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1MshrMerges, b.l1MshrMerges);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2MshrMerges, b.l2MshrMerges);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.smemAccesses, b.smemAccesses);
    EXPECT_EQ(a.smemBankConflicts, b.smemBankConflicts);
    EXPECT_EQ(a.firstCycle, b.firstCycle);
    EXPECT_EQ(a.lastCycle, b.lastCycle);
}

TEST(TraceReplay, StreamStatsAreByteIdenticalToLiveGeneration)
{
    AddressSpace heap(0x8000'0000ull);
    const Addr heap_base = heap.allocatedEnd();
    const std::vector<KernelInfo> kernels = smallWorkload(heap);

    // Live run.
    Gpu live(smallGpu());
    const StreamId ls = live.createStream("compute");
    for (const KernelInfo &k : kernels) {
        live.enqueueKernel(ls, k);
    }
    const auto live_run = live.run(100'000'000ull);
    ASSERT_TRUE(live_run.completed);

    // Pack, load, replay.
    const std::string path = tempPath("replay.crtr");
    TraceError err;
    ASSERT_TRUE(traceio::writeTrace(path, "replay-test", kernels, {},
                                    heap.allocatedEnd() - heap_base, err))
        << err.render();
    traceio::LoadedTrace loaded;
    ASSERT_TRUE(traceio::loadTrace(path, loaded, err)) << err.render();
    EXPECT_EQ(loaded.heapBytesUsed, heap.allocatedEnd() - heap_base);

    Gpu replay(smallGpu());
    const StreamId rs = replay.createStream("compute");
    traceio::submitLoaded(replay, rs, loaded);
    const auto replay_run = replay.run(100'000'000ull);
    ASSERT_TRUE(replay_run.completed);

    EXPECT_EQ(live_run.cycles, replay_run.cycles);
    expectStreamStatsIdentical(live.stats().stream(ls),
                               replay.stats().stream(rs));
}

// --- Trace cache -----------------------------------------------------------

class TraceCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = tempPath("trace-cache");
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
};

TEST_F(TraceCacheTest, MissPopulatesThenHitReplaysIdentically)
{
    traceio::TraceCache cache(dir_);
    ASSERT_TRUE(cache.enabled());

    AddressSpace heap_a(0x8000'0000ull);
    const std::vector<KernelInfo> built =
        buildNnCached(cache, heap_a, /*layers=*/2);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    AddressSpace heap_b(0x8000'0000ull);
    const std::vector<KernelInfo> replayed =
        buildNnCached(cache, heap_b, /*layers=*/2);
    EXPECT_EQ(cache.stats().hits, 1u);

    // The replayed workload is the built one, bit for bit, and the heap
    // advanced exactly as live generation advanced it.
    EXPECT_EQ(heap_a.allocatedEnd(), heap_b.allocatedEnd());
    ASSERT_EQ(built.size(), replayed.size());
    for (size_t k = 0; k < built.size(); ++k) {
        ASSERT_EQ(built[k].numCtas(), replayed[k].numCtas());
        EXPECT_EQ(built[k].name, replayed[k].name);
        for (uint32_t c = 0; c < built[k].numCtas(); ++c) {
            EXPECT_EQ(built[k].source->generate(c),
                      replayed[k].source->generate(c));
        }
    }
}

TEST_F(TraceCacheTest, DifferentParametersMissSeparately)
{
    traceio::TraceCache cache(dir_);
    AddressSpace heap(0x8000'0000ull);
    buildNnCached(cache, heap, 2);
    AddressSpace heap2(0x8000'0000ull);
    buildNnCached(cache, heap2, 3); // different layer count: its own key
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(TraceCacheTest, CorruptCacheEntryIsRejectedAndRebuilt)
{
    traceio::TraceCache cache(dir_);
    AddressSpace heap(0x8000'0000ull);
    buildHoloCached(cache, heap, 2);
    EXPECT_EQ(cache.stats().misses, 1u);

    const std::string path = cache.pathForKey(
        computeCacheKey("holo", "points=2", 0x8000'0000ull));
    ASSERT_TRUE(std::filesystem::exists(path));
    std::vector<uint8_t> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0xff;
    writeAll(path, bytes);

    AddressSpace heap2(0x8000'0000ull);
    bool hit = true;
    cache.loadOrBuild(computeCacheKey("holo", "points=2", 0x8000'0000ull),
                      heap2,
                      [](AddressSpace &h) { return buildHolo(h, 2); },
                      &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.stats().rejects, 1u);
    EXPECT_EQ(cache.stats().misses, 2u);

    // The rebuild replaced the damaged file with a valid one.
    traceio::TraceReader reader(path);
    EXPECT_TRUE(reader.valid()) << reader.error().render();
}

TEST_F(TraceCacheTest, DisabledCacheBuildsLive)
{
    traceio::TraceCache cache;
    EXPECT_FALSE(cache.enabled());
    AddressSpace heap(0x8000'0000ull);
    bool hit = true;
    const std::vector<KernelInfo> kernels = cache.loadOrBuild(
        "whatever", heap, [](AddressSpace &h) { return buildHolo(h, 2); },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_FALSE(kernels.empty());
    EXPECT_EQ(cache.stats().misses, 0u); // disabled: not even a miss
}

TEST_F(TraceCacheTest, ConcurrentPopulateOfOneKeyIsSafe)
{
    // Two threads race loadOrBuild on the same key, repeatedly, on a
    // fresh entry each round. Whoever loses the tmp-file rename race
    // must treat it as a miss-that-populated (counted in
    // populateRaces), never as a failure, and the surviving entry must
    // always be readable.
    constexpr int kRounds = 6;
    traceio::TraceCache cache(dir_);
    ASSERT_TRUE(cache.enabled());

    for (int round = 0; round < kRounds; ++round) {
        const std::string key = computeCacheKey(
            "race", "round=" + std::to_string(round), 0x8000'0000ull);
        std::atomic<int> ready{0};
        std::atomic<bool> go{false};
        auto populate = [&] {
            ready.fetch_add(1);
            while (!go.load()) {
            }
            AddressSpace heap(0x8000'0000ull);
            const std::vector<KernelInfo> kernels = cache.loadOrBuild(
                key, heap,
                [](AddressSpace &h) { return buildHolo(h, 2); });
            EXPECT_FALSE(kernels.empty());
        };
        std::thread a(populate), b(populate);
        while (ready.load() != 2) {
        }
        go.store(true);
        a.join();
        b.join();

        // The entry exists and is valid regardless of who won.
        traceio::TraceReader reader(cache.pathForKey(key));
        EXPECT_TRUE(reader.valid()) << reader.error().render();
    }

    const auto &s = cache.stats();
    // A lost rename race is a populate race, never a store failure,
    // and every loadOrBuild call is accounted as a hit or a miss.
    EXPECT_EQ(s.storeFailures.load(), 0u);
    EXPECT_EQ(s.rejects.load(), 0u);
    EXPECT_EQ(s.hits.load() + s.misses.load(),
              uint64_t(2 * kRounds));
    EXPECT_GE(s.misses.load(), uint64_t(kRounds));
    EXPECT_LE(s.populateRaces.load(), s.misses.load());
}

} // namespace
} // namespace crisp
