#include <gtest/gtest.h>

#include <set>

#include "graphics/batching.hpp"
#include "graphics/framebuffer.hpp"
#include "graphics/mesh.hpp"
#include "graphics/pipeline.hpp"
#include "graphics/raster.hpp"
#include "graphics/sampler.hpp"
#include "graphics/texture.hpp"

namespace crisp
{
namespace
{

TEST(TextureTest, FormatBytes)
{
    EXPECT_EQ(texFormatBytes(TexFormat::R8), 1u);
    EXPECT_EQ(texFormatBytes(TexFormat::RG8), 2u);
    EXPECT_EQ(texFormatBytes(TexFormat::RGBA8), 4u);
    EXPECT_EQ(texFormatBytes(TexFormat::RGBA16F), 8u);
}

TEST(TextureTest, MipLevelCountIsLog2Plus1)
{
    AddressSpace heap;
    Texture2D t("t", 64, 64, TexFormat::RGBA8, heap);
    EXPECT_EQ(t.numLevels(), 7u);  // 64..1
    EXPECT_EQ(t.levelWidth(0), 64u);
    EXPECT_EQ(t.levelWidth(3), 8u);
    EXPECT_EQ(t.levelWidth(6), 1u);

    Texture2D flat("flat", 64, 64, TexFormat::RGBA8, heap, 1,
                   /*mipmapped=*/false);
    EXPECT_EQ(flat.numLevels(), 1u);
}

TEST(TextureTest, NonSquareLevels)
{
    AddressSpace heap;
    Texture2D t("t", 64, 16, TexFormat::RGBA8, heap);
    EXPECT_EQ(t.numLevels(), 7u);
    EXPECT_EQ(t.levelHeight(4), 1u);  // clamps at 1
    EXPECT_EQ(t.levelWidth(4), 4u);
}

TEST(TextureTest, TexelAddressesDistinctAcrossLevelsAndLayers)
{
    AddressSpace heap;
    Texture2D t("t", 16, 16, TexFormat::RGBA8, heap, 4);
    std::set<Addr> addrs;
    for (uint32_t level = 0; level < t.numLevels(); ++level) {
        for (uint32_t layer = 0; layer < 4; ++layer) {
            addrs.insert(t.texelAddr(level, layer, 0, 0));
        }
    }
    EXPECT_EQ(addrs.size(), t.numLevels() * 4u);
    // Addresses stay inside the texture's allocation.
    for (Addr a : addrs) {
        EXPECT_GE(a, t.baseAddr());
        EXPECT_LT(a, t.baseAddr() + t.sizeBytes());
    }
}

TEST(TextureTest, BlockLinearLayoutKeepsNeighborhoodsInOneLine)
{
    AddressSpace heap;
    Texture2D t("t", 32, 32, TexFormat::RGBA8, heap);
    // Within a 4x4 tile, texels are contiguous.
    EXPECT_EQ(t.texelAddr(0, 0, 1, 0) - t.texelAddr(0, 0, 0, 0), 4u);
    EXPECT_EQ(t.texelAddr(0, 0, 0, 1) - t.texelAddr(0, 0, 0, 0), 16u);
    // A whole 4x4 tile (64 B) lands in a single 128 B cache line.
    const Addr line0 = t.texelAddr(0, 0, 0, 0) / kLineBytes;
    for (uint32_t y = 0; y < 4; ++y) {
        for (uint32_t x = 0; x < 4; ++x) {
            EXPECT_EQ(t.texelAddr(0, 0, x, y) / kLineBytes, line0);
        }
    }
    // The next tile over starts exactly one tile later.
    EXPECT_EQ(t.texelAddr(0, 0, 4, 0) - t.texelAddr(0, 0, 0, 0), 64u);
}

TEST(TextureTest, MipChainAveragesContent)
{
    AddressSpace heap;
    Texture2D t("t", 8, 8, TexFormat::RGBA8, heap);
    // The top level is the average of everything below.
    double sum = 0.0;
    for (uint32_t y = 0; y < 8; ++y) {
        for (uint32_t x = 0; x < 8; ++x) {
            sum += t.fetch(0, 0, x, y).r;
        }
    }
    const double mean_base = sum / 64.0;
    const double top = t.fetch(t.numLevels() - 1, 0, 0, 0).r;
    EXPECT_NEAR(top, mean_base, 0.02);
}

TEST(SamplerTest, MagnificationSelectsLevelZero)
{
    AddressSpace heap;
    Texture2D t("t", 64, 64, TexFormat::RGBA8, heap);
    const float lod = Sampler::computeLod(t, {0.001f, 0.0f},
                                          {0.0f, 0.001f});
    EXPECT_FLOAT_EQ(lod, 0.0f);
    EXPECT_EQ(Sampler::selectLevel(t, lod), 0u);
}

TEST(SamplerTest, MinificationRaisesLevel)
{
    AddressSpace heap;
    Texture2D t("t", 64, 64, TexFormat::RGBA8, heap);
    // One pixel step covers 4 texels: lod = log2(4) = 2.
    const float lod = Sampler::computeLod(t, {4.0f / 64.0f, 0.0f},
                                          {0.0f, 4.0f / 64.0f});
    EXPECT_NEAR(lod, 2.0f, 1e-4);
    EXPECT_EQ(Sampler::selectLevel(t, lod), 2u);
    // LoD clamps at the last level.
    EXPECT_EQ(Sampler::selectLevel(t, 100.0f), t.numLevels() - 1);
}

TEST(SamplerTest, FootprintSizes)
{
    AddressSpace heap;
    Texture2D t("t", 32, 32, TexFormat::RGBA8, heap);
    std::vector<Addr> fp;
    Sampler::footprint(t, {0.4f, 0.6f}, 0.0f, 0, TexFilter::Nearest, fp);
    EXPECT_EQ(fp.size(), 1u);
    fp.clear();
    Sampler::footprint(t, {0.4f, 0.6f}, 0.0f, 0, TexFilter::Bilinear, fp);
    EXPECT_EQ(fp.size(), 4u);
}

TEST(SamplerTest, Fig7MipmapMergesNeighboringLookups)
{
    // The paper's Fig 7: four texel requests within a 2x2 region of level 0
    // collide onto one texel at level 1.
    AddressSpace heap;
    Texture2D t("t", 4, 4, TexFormat::RGBA8, heap);
    const Vec2 uvs[4] = {{0.05f, 0.05f}, {0.30f, 0.05f},
                         {0.05f, 0.30f}, {0.30f, 0.30f}};
    std::set<Addr> level0;
    std::set<Addr> level1;
    for (const Vec2 &uv : uvs) {
        std::vector<Addr> fp;
        Sampler::footprint(t, uv, 0.0f, 0, TexFilter::Nearest, fp);
        level0.insert(fp[0]);
        fp.clear();
        Sampler::footprint(t, uv, 1.0f, 0, TexFilter::Nearest, fp);
        level1.insert(fp[0]);
    }
    EXPECT_EQ(level0.size(), 4u);
    EXPECT_EQ(level1.size(), 1u);
}

TEST(SamplerTest, FunctionalSampleInRange)
{
    AddressSpace heap;
    Texture2D t("t", 32, 32, TexFormat::RGBA8, heap);
    for (float lod : {0.0f, 1.5f, 5.0f}) {
        const Texel c =
            Sampler::sample(t, {0.7f, 0.2f}, lod, 0, TexFilter::Bilinear);
        EXPECT_GE(c.r, 0.0f);
        EXPECT_LE(c.r, 1.0f);
    }
}

TEST(MeshTest, PlaneCounts)
{
    AddressSpace heap;
    Mesh m = Mesh::makePlane("p", 4, 8.0f, 1.0f, heap);
    EXPECT_EQ(m.vertices().size(), 25u);
    EXPECT_EQ(m.triangleCount(), 32u);
}

TEST(MeshTest, SphereIsClosedAndValid)
{
    AddressSpace heap;
    Mesh m = Mesh::makeSphere("s", 8, 12, 1.0f, heap);
    EXPECT_EQ(m.triangleCount(), 8u * 12u * 2u);
    for (uint32_t idx : m.indices()) {
        EXPECT_LT(idx, m.vertices().size());
    }
    // All vertices on the unit sphere.
    for (const Vertex &v : m.vertices()) {
        EXPECT_NEAR(v.position.length(), 1.0f, 1e-4);
    }
}

TEST(MeshTest, AddressesAssignedAndStrided)
{
    AddressSpace heap;
    Mesh m = Mesh::makeBox("b", {1, 1, 1}, heap);
    EXPECT_EQ(m.vertexAddr(1) - m.vertexAddr(0), Vertex::kStrideBytes);
    EXPECT_EQ(m.indexAddr(3) - m.indexAddr(0), 12u);
    EXPECT_NE(m.vbAddr(), m.ibAddr());
}

TEST(MeshTest, RockIsDeterministic)
{
    AddressSpace heap_a;
    AddressSpace heap_b;
    Mesh a = Mesh::makeRock("r", 8, 12, 1.0f, 5, heap_a);
    Mesh b = Mesh::makeRock("r", 8, 12, 1.0f, 5, heap_b);
    ASSERT_EQ(a.vertices().size(), b.vertices().size());
    for (size_t i = 0; i < a.vertices().size(); ++i) {
        EXPECT_FLOAT_EQ(a.vertices()[i].position.x,
                        b.vertices()[i].position.x);
    }
}

TEST(BatchingTest, RespectsBatchCapacity)
{
    AddressSpace heap;
    Mesh m = Mesh::makePlane("p", 16, 8.0f, 1.0f, heap);
    for (uint32_t batch : {8u, 32u, 96u}) {
        const auto batches = buildVertexBatches(m.indices(), batch);
        for (const auto &b : batches) {
            EXPECT_LE(b.uniqueVerts.size(), batch);
            EXPECT_FALSE(b.tris.empty());
            EXPECT_EQ(b.uniqueVerts.size(), b.firstUsePos.size());
        }
    }
}

TEST(BatchingTest, DedupWithinBatchOnly)
{
    AddressSpace heap;
    Mesh m = Mesh::makePlane("p", 16, 8.0f, 1.0f, heap);
    const uint64_t total_indices = m.indices().size();
    const uint64_t distinct = m.vertices().size();

    // Tiny batches: nearly no reuse captured.
    const auto tiny = buildVertexBatches(m.indices(), 3);
    EXPECT_EQ(totalVsInvocations(tiny), total_indices);

    // One huge batch: full dedup.
    const auto huge = buildVertexBatches(
        m.indices(), static_cast<uint32_t>(distinct) + 16);
    EXPECT_EQ(totalVsInvocations(huge), distinct);

    // The default 96 lies strictly between.
    const auto mid = buildVertexBatches(m.indices(), 96);
    EXPECT_LT(totalVsInvocations(mid), total_indices);
    EXPECT_GT(totalVsInvocations(mid), distinct);
}

TEST(BatchingTest, InvocationsMonotonicInBatchSize)
{
    AddressSpace heap;
    Mesh m = Mesh::makeSphere("s", 16, 24, 1.0f, heap);
    uint64_t prev = ~0ull;
    for (uint32_t batch : {8u, 16u, 32u, 64u, 96u, 192u}) {
        const uint64_t inv =
            totalVsInvocations(buildVertexBatches(m.indices(), batch));
        EXPECT_LE(inv, prev);
        prev = inv;
    }
}

TEST(BatchingTest, TrianglesPreservedAcrossBatches)
{
    AddressSpace heap;
    Mesh m = Mesh::makeSphere("s", 8, 12, 1.0f, heap);
    const auto batches = buildVertexBatches(m.indices(), 24);
    uint64_t tris = 0;
    for (const auto &b : batches) {
        tris += b.tris.size();
        // Every local index maps to a valid unique vertex.
        for (const auto &t : b.tris) {
            for (uint32_t v : t) {
                EXPECT_LT(v, b.uniqueVerts.size());
            }
        }
    }
    EXPECT_EQ(tris, m.triangleCount());
}

TEST(FramebufferTest, DepthTestAndColor)
{
    AddressSpace heap;
    Framebuffer fb(8, 8, heap);
    EXPECT_FLOAT_EQ(fb.depthAt(3, 3), 1.0f);
    EXPECT_TRUE(fb.depthTestAndSet(3, 3, 0.5f));
    EXPECT_FALSE(fb.depthTestAndSet(3, 3, 0.7f));  // farther: fails
    EXPECT_TRUE(fb.depthTestAndSet(3, 3, 0.2f));   // nearer: passes
    fb.writeColor(3, 3, {1.0f, 0.0f, 0.0f, 1.0f});
    const Texel c = fb.colorAt(3, 3);
    EXPECT_NEAR(c.r, 1.0f, 1e-2);
    EXPECT_NEAR(c.g, 0.0f, 1e-2);
}

TEST(FramebufferTest, AddressesAreDistinctPerPixel)
{
    AddressSpace heap;
    Framebuffer fb(4, 4, heap);
    EXPECT_EQ(fb.colorAddr(1, 0) - fb.colorAddr(0, 0), 4u);
    EXPECT_EQ(fb.colorAddr(0, 1) - fb.colorAddr(0, 0), 16u);
    EXPECT_NE(fb.colorAddr(0, 0), fb.depthAddr(0, 0));
}

TEST(RasterTest, FullscreenTriangleCoversCenter)
{
    AddressSpace heap;
    Framebuffer fb(32, 32, heap);
    Rasterizer rast(fb);
    // A large front-facing triangle covering the screen center.
    const Vec4 clip[3] = {{-2.0f, -2.0f, 0.5f, 1.0f},
                          {0.0f, 2.0f, 0.5f, 1.0f},
                          {2.0f, -2.0f, 0.5f, 1.0f}};
    const Vec2 uv[3] = {{0, 0}, {0.5f, 1}, {1, 0}};
    rast.submit(clip, uv, 0, 0);
    const auto bins = rast.takeBins();
    EXPECT_FALSE(bins.empty());
    bool covered_center = false;
    uint64_t frags = 0;
    for (const auto &bin : bins) {
        for (const auto &f : bin.frags) {
            ++frags;
            covered_center |= f.x == 16 && f.y == 16;
        }
    }
    EXPECT_TRUE(covered_center);
    EXPECT_GT(frags, 32u * 32u / 2u);
    EXPECT_EQ(rast.stats().trisCulledBackface, 0u);
}

TEST(RasterTest, BackfaceCulled)
{
    AddressSpace heap;
    Framebuffer fb(32, 32, heap);
    Rasterizer rast(fb);
    // Same triangle with reversed winding.
    const Vec4 clip[3] = {{-2.0f, -2.0f, 0.5f, 1.0f},
                          {2.0f, -2.0f, 0.5f, 1.0f},
                          {0.0f, 2.0f, 0.5f, 1.0f}};
    const Vec2 uv[3] = {{0, 0}, {1, 0}, {0.5f, 1}};
    rast.submit(clip, uv, 0, 0);
    EXPECT_EQ(rast.stats().trisCulledBackface, 1u);
    EXPECT_TRUE(rast.takeBins().empty());
}

TEST(RasterTest, OffscreenTriangleFrustumCulled)
{
    AddressSpace heap;
    Framebuffer fb(32, 32, heap);
    Rasterizer rast(fb);
    const Vec4 clip[3] = {{5.0f, 5.0f, 0.5f, 1.0f},
                          {6.0f, 5.0f, 0.5f, 1.0f},
                          {5.0f, 6.0f, 0.5f, 1.0f}};
    const Vec2 uv[3] = {{0, 0}, {1, 0}, {0, 1}};
    rast.submit(clip, uv, 0, 0);
    EXPECT_EQ(rast.stats().trisCulledFrustum, 1u);
}

TEST(RasterTest, EarlyZKillsOccludedFragments)
{
    AddressSpace heap;
    Framebuffer fb(32, 32, heap);
    Rasterizer rast(fb);
    const Vec2 uv[3] = {{0, 0}, {0.5f, 1}, {1, 0}};
    // Near triangle first.
    const Vec4 near_tri[3] = {{-2.0f, -2.0f, 0.2f, 1.0f},
                              {0.0f, 2.0f, 0.2f, 1.0f},
                              {2.0f, -2.0f, 0.2f, 1.0f}};
    rast.submit(near_tri, uv, 0, 0);
    const uint64_t frags_near = rast.stats().fragsGenerated;
    // Same shape behind: every covered pixel fails early-Z.
    const Vec4 far_tri[3] = {{-2.0f, -2.0f, 0.8f, 1.0f},
                             {0.0f, 2.0f, 0.8f, 1.0f},
                             {2.0f, -2.0f, 0.8f, 1.0f}};
    rast.submit(far_tri, uv, 1, 0);
    EXPECT_EQ(rast.stats().fragsEarlyZKilled,
              rast.stats().fragsGenerated - frags_near);
    EXPECT_GT(rast.stats().fragsEarlyZKilled, 0u);
}

TEST(RasterTest, UvInterpolationAtCenter)
{
    AddressSpace heap;
    Framebuffer fb(64, 64, heap);
    Rasterizer rast(fb);
    const Vec4 clip[3] = {{-4.0f, -4.0f, 0.5f, 1.0f},
                          {0.0f, 4.0f, 0.5f, 1.0f},
                          {4.0f, -4.0f, 0.5f, 1.0f}};
    const Vec2 uv[3] = {{0, 0}, {0.5f, 1}, {1, 0}};
    rast.submit(clip, uv, 0, 0);
    for (const auto &bin : rast.takeBins()) {
        for (const auto &f : bin.frags) {
            if (f.x == 32 && f.y == 32) {
                // Screen center: uv should be near the triangle's middle.
                EXPECT_NEAR(f.uv.x, 0.5f, 0.05f);
                EXPECT_GT(f.uv.y, 0.2f);
                EXPECT_LT(f.uv.y, 0.8f);
            }
            // Derivatives of a screen-mapped triangle are finite and small.
            EXPECT_LT(std::fabs(f.duvdx.x), 1.0f);
            EXPECT_LT(std::fabs(f.duvdy.y), 1.0f);
        }
    }
}

TEST(RasterTest, QuadOrderWithinTiles)
{
    AddressSpace heap;
    Framebuffer fb(16, 16, heap);
    Rasterizer rast(fb, 16);
    const Vec4 clip[3] = {{-4.0f, -4.0f, 0.5f, 1.0f},
                          {0.0f, 4.0f, 0.5f, 1.0f},
                          {4.0f, -4.0f, 0.5f, 1.0f}};
    const Vec2 uv[3] = {{0, 0}, {0.5f, 1}, {1, 0}};
    rast.submit(clip, uv, 0, 0);
    const auto bins = rast.takeBins();
    ASSERT_EQ(bins.size(), 1u);
    // Consecutive runs of 4 fragments from a full quad share a 2x2 block.
    const auto &frags = bins[0].frags;
    uint32_t full_quads = 0;
    for (size_t i = 0; i + 3 < frags.size(); i += 4) {
        const uint32_t qx = frags[i].x / 2;
        const uint32_t qy = frags[i].y / 2;
        bool same = true;
        for (size_t k = 1; k < 4; ++k) {
            same &= frags[i + k].x / 2 == qx && frags[i + k].y / 2 == qy;
        }
        full_quads += same;
    }
    EXPECT_GT(full_quads, 0u);
}

} // namespace
} // namespace crisp
