#include <gtest/gtest.h>

#include <map>

#include "core/sm.hpp"
#include "isa/trace_builder.hpp"

namespace crisp
{
namespace
{

/** Fabric stub with configurable latency (same as core_test). */
class DelayFabric : public MemFabricPort
{
  public:
    explicit DelayFabric(Cycle delay) : delay_(delay) {}

    bool
    submitToL2(MemRequest req, Cycle now) override
    {
        if (!req.write) {
            pending_.emplace(now + delay_, req);
        }
        return true;
    }

    void
    step(Sm &sm, Cycle now)
    {
        while (!pending_.empty() && pending_.begin()->first <= now) {
            auto node = pending_.extract(pending_.begin());
            sm.memResponse(node.mapped(), now);
        }
    }

  private:
    Cycle delay_;
    std::multimap<Cycle, MemRequest> pending_;
};

KernelInfo
warpKernel(WarpTrace warp, StreamId stream = 0, uint32_t regs = 16)
{
    CtaTrace cta;
    cta.warps.push_back(std::move(warp));
    KernelInfo k;
    k.name = "prop";
    k.stream = stream;
    k.grid = {1, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = regs;
    k.source = std::make_shared<VectorCtaSource>(
        std::vector<CtaTrace>{std::move(cta)});
    return k;
}

// ---------------------------------------------------------------------
// Instruction latency sweep: a two-instruction dependence chain takes at
// least the producing class's latency.
// ---------------------------------------------------------------------

struct LatencyCase
{
    Opcode op;
    const char *name;
};

class LatencySweep : public ::testing::TestWithParam<LatencyCase>
{
};

TEST_P(LatencySweep, DependenceChainPaysProducerLatency)
{
    const LatencyCase c = GetParam();
    SmConfig cfg;
    DelayFabric fabric(100);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);

    TraceBuilder tb(32);
    tb.alu(c.op, 5, 1, 2);
    tb.alu(Opcode::FFMA, 6, 5, 5);  // depends on the producer
    tb.exit();
    const auto k = warpKernel(tb.take());
    sm.launchCta(k, 1, 0, 0);
    Cycle now = 0;
    while (!sm.idle() && now < 10000) {
        ++now;
        sm.step(now);
        fabric.step(sm, now);
    }
    const Cycle expect = cfg.latencyFor(opcodeClass(c.op));
    EXPECT_GE(now, expect);
    EXPECT_LE(now, expect + cfg.fp32Latency + 8);
}

INSTANTIATE_TEST_SUITE_P(
    Classes, LatencySweep,
    ::testing::Values(LatencyCase{Opcode::FFMA, "fp32"},
                      LatencyCase{Opcode::IMAD, "int"},
                      LatencyCase{Opcode::MUFU_SIN, "sfu"},
                      LatencyCase{Opcode::HMMA, "tensor"}),
    [](const ::testing::TestParamInfo<LatencyCase> &info) {
        return info.param.name;
    });

// ---------------------------------------------------------------------
// Barrier sweep: all warp counts synchronize and drain.
// ---------------------------------------------------------------------

class BarrierSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BarrierSweep, AllWarpsDrain)
{
    const uint32_t warps = GetParam();
    SmConfig cfg;
    DelayFabric fabric(50);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);

    CtaTrace cta;
    for (uint32_t w = 0; w < warps; ++w) {
        TraceBuilder tb(32);
        // Stagger work before the barrier so arrival times differ.
        tb.aluChain(Opcode::FFMA, 5, 2, w + 1);
        tb.bar();
        tb.alu(Opcode::IADD, 6, 1);
        tb.exit();
        cta.warps.push_back(tb.take());
    }
    KernelInfo k;
    k.name = "bar";
    k.grid = {1, 1, 1};
    k.cta = {warps * 32, 1, 1};
    k.regsPerThread = 16;
    k.source = std::make_shared<VectorCtaSource>(
        std::vector<CtaTrace>{std::move(cta)});
    ASSERT_TRUE(sm.canAccept(k));
    sm.launchCta(k, 1, 0, 0);
    Cycle now = 0;
    while (!sm.idle() && now < 100000) {
        ++now;
        sm.step(now);
        fabric.step(sm, now);
    }
    EXPECT_TRUE(sm.idle()) << warps << " warps deadlocked at the barrier";
    EXPECT_EQ(stats.stream(0).instructions,
              static_cast<uint64_t>(warps) * (warps + 1) / 2 +
                  3ull * warps);
}

INSTANTIATE_TEST_SUITE_P(WarpCounts, BarrierSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

// ---------------------------------------------------------------------
// Regression: a lower-priority stream must not starve the priority
// stream's issue slots or head-of-line block its memory instructions.
// ---------------------------------------------------------------------

TEST(PriorityRegression, PriorityStreamProgressesUnderFlood)
{
    SmConfig cfg;
    DelayFabric fabric(200);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);
    sm.setIssuePriority(/*stream=*/1, -1);

    // Stream 0 floods: many warps of back-to-back loads + ALU.
    KernelInfo flood;
    {
        CtaTrace cta;
        for (int w = 0; w < 24; ++w) {
            TraceBuilder tb(32);
            for (int i = 0; i < 30; ++i) {
                tb.memStrided(Opcode::LDG, 4,
                              0x100000 + 0x4000 * w + 0x100 * i,
                              kLineBytes, 4, DataClass::Compute);
                tb.alu(Opcode::IMAD, 5, 4, 4);
            }
            tb.exit();
            cta.warps.push_back(tb.take());
        }
        flood.name = "flood";
        flood.stream = 0;
        flood.grid = {1, 1, 1};
        flood.cta = {24 * 32, 1, 1};
        flood.regsPerThread = 16;
        flood.source = std::make_shared<VectorCtaSource>(
            std::vector<CtaTrace>{std::move(cta)});
    }
    sm.launchCta(flood, 1, 0, 0);

    // Let the flood occupy the LDST queue first.
    Cycle now = 0;
    for (int i = 0; i < 20; ++i) {
        ++now;
        sm.step(now);
        fabric.step(sm, now);
    }

    // Priority stream: one short warp with a load.
    TraceBuilder tb(32);
    tb.memUniform(Opcode::LDG, 4, 0x900000, 4, DataClass::Texture);
    tb.alu(Opcode::FFMA, 5, 4, 4);
    tb.exit();
    auto k = warpKernel(tb.take(), /*stream=*/1);
    ASSERT_TRUE(sm.canAccept(k));
    sm.launchCta(k, 2, 0, now);
    const Cycle launch = now;
    while (stats.stream(1).instructions < 3 && now - launch < 5000) {
        ++now;
        sm.step(now);
        fabric.step(sm, now);
    }
    // Without priority, the flood's LDST entries would delay this far
    // beyond a couple of memory round trips.
    EXPECT_LT(now - launch, 1500u);
    while (!sm.idle() && now < 200000) {
        ++now;
        sm.step(now);
        fabric.step(sm, now);
    }
}

// ---------------------------------------------------------------------
// Quota invariant under churn: per-stream thread usage never exceeds the
// quota while CTAs launch and retire.
// ---------------------------------------------------------------------

class QuotaSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(QuotaSweep, UsageNeverExceedsQuota)
{
    const uint32_t quota_threads = GetParam();
    SmConfig cfg;
    DelayFabric fabric(80);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);
    SmQuota q;
    q.maxThreads = quota_threads;
    sm.setQuota(2, q);

    KernelInfo k;
    {
        CtaTrace cta;
        TraceBuilder tb(32);
        tb.memUniform(Opcode::LDG, 4, 0x5000, 4, DataClass::Compute);
        tb.alu(Opcode::FFMA, 5, 4, 4);
        tb.exit();
        cta.warps.push_back(tb.take());
        cta.warps.push_back(cta.warps[0]);
        k.name = "quota";
        k.stream = 2;
        k.grid = {64, 1, 1};
        k.cta = {64, 1, 1};
        k.regsPerThread = 16;
        k.source = std::make_shared<VectorCtaSource>(
            std::vector<CtaTrace>(64, cta));
    }
    uint32_t launched = 0;
    Cycle now = 0;
    while ((launched < 64 || !sm.idle()) && now < 500000) {
        if (launched < 64 && sm.canAccept(k)) {
            sm.launchCta(k, 1, launched++, now);
        }
        ++now;
        sm.step(now);
        fabric.step(sm, now);
        EXPECT_LE(sm.usedThreadsOf(2), quota_threads);
    }
    EXPECT_EQ(launched, 64u);
    EXPECT_TRUE(sm.idle());
}

INSTANTIATE_TEST_SUITE_P(Quotas, QuotaSweep,
                         ::testing::Values(64u, 128u, 256u, 1024u));


// ---------------------------------------------------------------------
// LRR scheduler option: both policies drain the same workload; LRR
// spreads issue across warps instead of sticking with one.
// ---------------------------------------------------------------------

class SchedulerSweep : public ::testing::TestWithParam<SchedulerPolicy>
{
};

TEST_P(SchedulerSweep, MultiWarpKernelDrains)
{
    SmConfig cfg;
    cfg.scheduler = GetParam();
    DelayFabric fabric(100);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);
    CtaTrace cta;
    for (int w = 0; w < 12; ++w) {
        TraceBuilder tb(32);
        tb.memStrided(Opcode::LDG, 4, 0x10000 + w * 0x1000, 4, 4,
                      DataClass::Compute);
        tb.aluChain(Opcode::FFMA, 5, 4, 10);
        tb.exit();
        cta.warps.push_back(tb.take());
    }
    KernelInfo k;
    k.name = "sched";
    k.grid = {1, 1, 1};
    k.cta = {12 * 32, 1, 1};
    k.regsPerThread = 16;
    k.source = std::make_shared<VectorCtaSource>(
        std::vector<CtaTrace>{std::move(cta)});
    sm.launchCta(k, 1, 0, 0);
    Cycle now = 0;
    while (!sm.idle() && now < 100000) {
        ++now;
        sm.step(now);
        fabric.step(sm, now);
    }
    EXPECT_TRUE(sm.idle());
    EXPECT_EQ(stats.stream(0).instructions, 12u * 12u);
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerSweep,
                         ::testing::Values(SchedulerPolicy::Gto,
                                           SchedulerPolicy::Lrr),
                         [](const auto &info) {
                             return info.param == SchedulerPolicy::Gto
                                 ? "Gto"
                                 : "Lrr";
                         });

// ---------------------------------------------------------------------
// Determinism: the same kernel replayed twice takes identical cycles.
// ---------------------------------------------------------------------

TEST(CoreProperty, SimulationIsDeterministic)
{
    auto run_once = []() {
        SmConfig cfg;
        DelayFabric fabric(120);
        StatsRegistry stats;
        Sm sm(0, cfg, &fabric, &stats);
        CtaTrace cta;
        for (int w = 0; w < 8; ++w) {
            TraceBuilder tb(32);
            tb.memStrided(Opcode::LDG, 4, 0x10000 + w * 0x800, 4, 4,
                          DataClass::Compute);
            tb.aluChain(Opcode::FFMA, 5, 4, 12);
            tb.memStrided(Opcode::STG, 5, 0x80000 + w * 0x800, 4, 4,
                          DataClass::Compute);
            tb.exit();
            cta.warps.push_back(tb.take());
        }
        KernelInfo k;
        k.name = "det";
        k.grid = {1, 1, 1};
        k.cta = {256, 1, 1};
        k.regsPerThread = 16;
        k.source = std::make_shared<VectorCtaSource>(
            std::vector<CtaTrace>{std::move(cta)});
        sm.launchCta(k, 1, 0, 0);
        Cycle now = 0;
        while (!sm.idle() && now < 100000) {
            ++now;
            sm.step(now);
            fabric.step(sm, now);
        }
        return std::make_pair(now, stats.stream(0).instructions);
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace crisp
