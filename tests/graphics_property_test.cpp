#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "graphics/batching.hpp"
#include "graphics/mesh.hpp"
#include "graphics/pipeline.hpp"
#include "graphics/raster.hpp"
#include "graphics/sampler.hpp"
#include "workloads/scenes.hpp"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------------
// Rasterizer geometric properties over random triangles.
// ---------------------------------------------------------------------

class RandomTriangleSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomTriangleSweep, FragmentsLieInsideTheirTriangle)
{
    Rng rng(GetParam());
    AddressSpace heap;
    Framebuffer fb(128, 128, heap);
    Rasterizer rast(fb);

    Vec4 clip[3];
    Vec2 uv[3] = {{0, 0}, {1, 0}, {0, 1}};
    for (int i = 0; i < 3; ++i) {
        clip[i] = Vec4(static_cast<float>(rng.uniform(-1.2, 1.2)),
                       static_cast<float>(rng.uniform(-1.2, 1.2)), 0.5f,
                       1.0f);
    }
    rast.submit(clip, uv, 0, 0);

    // Screen-space vertices (same transform as the rasterizer).
    Vec2 p[3];
    for (int i = 0; i < 3; ++i) {
        p[i].x = (clip[i].x * 0.5f + 0.5f) * 128.0f;
        p[i].y = (0.5f - clip[i].y * 0.5f) * 128.0f;
    }
    const float area = (p[1].x - p[0].x) * (p[2].y - p[0].y) -
                       (p[2].x - p[0].x) * (p[1].y - p[0].y);
    uint64_t frags = 0;
    for (const auto &bin : rast.takeBins()) {
        for (const auto &f : bin.frags) {
            ++frags;
            const float cx = f.x + 0.5f;
            const float cy = f.y + 0.5f;
            // All three sub-areas must have the sign of the full area.
            for (int e = 0; e < 3; ++e) {
                const Vec2 &a = p[e];
                const Vec2 &b = p[(e + 1) % 3];
                const float edge =
                    (b.x - a.x) * (cy - a.y) - (cx - a.x) * (b.y - a.y);
                EXPECT_GE(edge * area, -1e-2f)
                    << "fragment outside its triangle";
            }
            // uv interpolation stays within the triangle's uv hull.
            EXPECT_GE(f.uv.x, -1e-3f);
            EXPECT_LE(f.uv.x, 1.0f + 1e-3f);
            EXPECT_GE(f.uv.y, -1e-3f);
            EXPECT_LE(f.uv.y, 1.0f + 1e-3f);
        }
    }
    EXPECT_EQ(frags, rast.stats().fragsGenerated -
                         rast.stats().fragsEarlyZKilled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTriangleSweep,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Winding regressions (found during bring-up: planes viewed from above
// were backface-culled and spheres showed their inside).
// ---------------------------------------------------------------------

TEST(WindingRegression, PlaneVisibleFromAbove)
{
    AddressSpace heap;
    Scene scene;
    scene.camera.eye = {0.0f, 5.0f, 8.0f};
    scene.camera.view = Mat4::lookAt(scene.camera.eye, {0, 0, 0},
                                     {0, 1, 0});
    scene.camera.proj = Mat4::perspective(1.0f, 1.0f, 0.1f, 100.0f);
    Mesh *plane =
        scene.addMesh(Mesh::makePlane("p", 4, 10.0f, 1.0f, heap));
    Material mat;
    mat.kind = ShaderKind::Basic;
    mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
        "t", 32, 32, TexFormat::RGBA8, heap)));
    Material *m = scene.addMaterial(std::move(mat));
    DrawCall d;
    d.name = "p";
    d.mesh = plane;
    d.material = m;
    scene.draws.push_back(std::move(d));

    PipelineConfig pc;
    pc.width = 64;
    pc.height = 64;
    RenderPipeline pipe(pc, heap);
    const RenderSubmission sub = pipe.submit(scene);
    EXPECT_GT(sub.reports[0].fragments, 500u);
    EXPECT_EQ(sub.reports[0].raster.trisCulledBackface, 0u);
}

TEST(WindingRegression, SphereShowsFrontHemisphere)
{
    AddressSpace heap;
    Scene scene;
    scene.camera.eye = {0.0f, 0.0f, 3.0f};
    scene.camera.view = Mat4::lookAt(scene.camera.eye, {0, 0, 0},
                                     {0, 1, 0});
    scene.camera.proj = Mat4::perspective(1.0f, 1.0f, 0.1f, 100.0f);
    Mesh *ball =
        scene.addMesh(Mesh::makeSphere("s", 16, 24, 1.0f, heap));
    Material mat;
    mat.kind = ShaderKind::Basic;
    mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
        "t", 32, 32, TexFormat::RGBA8, heap)));
    Material *m = scene.addMaterial(std::move(mat));
    DrawCall d;
    d.name = "s";
    d.mesh = ball;
    d.material = m;
    scene.draws.push_back(std::move(d));

    PipelineConfig pc;
    pc.width = 64;
    pc.height = 64;
    RenderPipeline pipe(pc, heap);
    pipe.submit(scene);
    // Front surface is at view distance 2 (depth much closer than the
    // back surface at distance 4).
    const float zn = 0.1f;
    const float zf = 100.0f;
    auto ndc = [&](float dist) {
        return (zf / (zn - zf) * -dist + (zn * zf) / (zn - zf)) / dist;
    };
    EXPECT_NEAR(pipe.framebuffer().depthAt(32, 32), ndc(2.0f), 0.002f);
}

// ---------------------------------------------------------------------
// Early-Z order independence of the final depth buffer.
// ---------------------------------------------------------------------

TEST(RasterProperty, DepthBufferOrderIndependent)
{
    AddressSpace heap_a;
    AddressSpace heap_b;
    Framebuffer fb_a(64, 64, heap_a);
    Framebuffer fb_b(64, 64, heap_b);
    const Vec2 uv[3] = {{0, 0}, {0.5f, 1}, {1, 0}};
    const Vec4 near_tri[3] = {{-2.0f, -2.0f, 0.2f, 1.0f},
                              {0.0f, 2.0f, 0.2f, 1.0f},
                              {2.0f, -2.0f, 0.2f, 1.0f}};
    const Vec4 far_tri[3] = {{-2.0f, -2.0f, 0.8f, 1.0f},
                             {0.0f, 2.0f, 0.8f, 1.0f},
                             {2.0f, -2.0f, 0.8f, 1.0f}};
    {
        Rasterizer r(fb_a);
        r.submit(near_tri, uv, 0, 0);
        r.submit(far_tri, uv, 1, 0);
    }
    {
        Rasterizer r(fb_b);
        r.submit(far_tri, uv, 0, 0);
        r.submit(near_tri, uv, 1, 0);
    }
    for (uint32_t y = 0; y < 64; ++y) {
        for (uint32_t x = 0; x < 64; ++x) {
            ASSERT_FLOAT_EQ(fb_a.depthAt(x, y), fb_b.depthAt(x, y));
        }
    }
}

// ---------------------------------------------------------------------
// Sampler LoD monotonicity over derivative magnitudes and formats.
// ---------------------------------------------------------------------

class LodSweep : public ::testing::TestWithParam<TexFormat>
{
};

TEST_P(LodSweep, LodMonotonicInDerivative)
{
    AddressSpace heap;
    Texture2D tex("t", 128, 128, GetParam(), heap);
    float prev = -1.0f;
    for (float scale : {0.5f, 1.0f, 2.0f, 4.0f, 8.0f, 32.0f}) {
        const float d = scale / 128.0f;
        const float lod =
            Sampler::computeLod(tex, {d, 0.0f}, {0.0f, d});
        EXPECT_GE(lod, prev);
        prev = lod;
    }
    // And the selected level is bounded by the chain length.
    EXPECT_LT(Sampler::selectLevel(tex, prev), tex.numLevels());
}

TEST_P(LodSweep, FootprintAddressesInsideAllocation)
{
    AddressSpace heap;
    Texture2D tex("t", 64, 32, GetParam(), heap, 2);
    Rng rng(7);
    std::vector<Addr> fp;
    for (int i = 0; i < 200; ++i) {
        fp.clear();
        const Vec2 uv = {static_cast<float>(rng.uniform(-2.0, 2.0)),
                         static_cast<float>(rng.uniform(-2.0, 2.0))};
        const float lod = static_cast<float>(rng.uniform(0.0, 8.0));
        const uint32_t layer = static_cast<uint32_t>(rng.nextBelow(2));
        Sampler::footprint(tex, uv, lod, layer, TexFilter::Bilinear, fp);
        for (Addr a : fp) {
            EXPECT_GE(a, tex.baseAddr());
            EXPECT_LT(a, tex.baseAddr() + tex.sizeBytes());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, LodSweep,
                         ::testing::Values(TexFormat::R8, TexFormat::RG8,
                                           TexFormat::RGBA8,
                                           TexFormat::RGBA16F));

// ---------------------------------------------------------------------
// Batching conservation properties over batch sizes.
// ---------------------------------------------------------------------

class BatchSizeSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(BatchSizeSweep, TriangleAndVertexConservation)
{
    const uint32_t batch_size = GetParam();
    AddressSpace heap;
    const Mesh mesh = Mesh::makeSphere("s", 12, 18, 1.0f, heap);
    const auto batches = buildVertexBatches(mesh.indices(), batch_size);

    uint64_t tris = 0;
    for (const auto &b : batches) {
        tris += b.tris.size();
        // Every triangle's local references resolve to the same mesh
        // vertex the original index stream named.
        for (const auto &t : b.tris) {
            for (uint32_t v : t) {
                ASSERT_LT(v, b.uniqueVerts.size());
            }
        }
        // Unique really means unique within the batch.
        std::set<uint32_t> seen(b.uniqueVerts.begin(),
                                b.uniqueVerts.end());
        EXPECT_EQ(seen.size(), b.uniqueVerts.size());
        // First-use positions point at matching index entries.
        for (size_t s = 0; s < b.uniqueVerts.size(); ++s) {
            ASSERT_LT(b.firstUsePos[s], mesh.indices().size());
            EXPECT_EQ(mesh.indices()[b.firstUsePos[s]],
                      b.uniqueVerts[s]);
        }
    }
    EXPECT_EQ(tris, mesh.triangleCount());

    // Invocations bounded between full-dedup and no-dedup.
    const uint64_t inv = totalVsInvocations(batches);
    EXPECT_GE(inv, mesh.vertices().size());
    EXPECT_LE(inv, mesh.indices().size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatchSizeSweep,
                         ::testing::Values(3u, 8u, 24u, 96u, 333u));


// ---------------------------------------------------------------------
// Trilinear filtering extension.
// ---------------------------------------------------------------------

TEST(TrilinearTest, FootprintSpansTwoLevels)
{
    AddressSpace heap;
    Texture2D tex("t", 64, 64, TexFormat::RGBA8, heap);
    std::vector<Addr> fp;
    Sampler::footprint(tex, {0.4f, 0.6f}, 1.5f, 0, TexFilter::Trilinear,
                       fp);
    ASSERT_EQ(fp.size(), 8u);
    // The two bilinear quartets live in different mip levels: disjoint
    // address ranges.
    const Addr lo_min = *std::min_element(fp.begin(), fp.begin() + 4);
    const Addr hi_min = *std::min_element(fp.begin() + 4, fp.end());
    EXPECT_NE(lo_min / 4096, hi_min / 4096);
}

TEST(TrilinearTest, TopOfChainClampsBothLevels)
{
    AddressSpace heap;
    Texture2D tex("t", 16, 16, TexFormat::RGBA8, heap);
    std::vector<Addr> fp;
    Sampler::footprint(tex, {0.5f, 0.5f}, 100.0f, 0, TexFilter::Trilinear,
                       fp);
    ASSERT_EQ(fp.size(), 8u);
    // Both quartets reference the 1x1 top level.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(fp[i], fp[i + 4]);
    }
}

TEST(TrilinearTest, SampleBlendsBetweenLevels)
{
    AddressSpace heap;
    Texture2D tex("t", 32, 32, TexFormat::RGBA8, heap);
    const Vec2 uv = {0.3f, 0.7f};
    const Texel lo = Sampler::sample(tex, uv, 1.0f, 0,
                                     TexFilter::Bilinear);
    const Texel hi = Sampler::sample(tex, uv, 2.0f, 0,
                                     TexFilter::Bilinear);
    const Texel mid = Sampler::sample(tex, uv, 1.5f, 0,
                                      TexFilter::Trilinear);
    EXPECT_NEAR(mid.r, 0.5f * (lo.r + hi.r), 1e-5f);
    EXPECT_NEAR(mid.g, 0.5f * (lo.g + hi.g), 1e-5f);
}

TEST(TrilinearTest, PipelineEmitsEightTexFetchesPerSample)
{
    AddressSpace heap;
    Scene scene;
    scene.camera.eye = {0.0f, 0.0f, 3.0f};
    scene.camera.view = Mat4::lookAt(scene.camera.eye, {0, 0, 0},
                                     {0, 1, 0});
    scene.camera.proj = Mat4::perspective(1.0f, 1.0f, 0.1f, 100.0f);
    Mesh *ball = scene.addMesh(Mesh::makeSphere("s", 10, 14, 1.0f, heap));
    Material mat;
    mat.kind = ShaderKind::Basic;
    mat.filter = TexFilter::Trilinear;
    mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
        "t", 64, 64, TexFormat::RGBA8, heap)));
    Material *m = scene.addMaterial(std::move(mat));
    DrawCall d;
    d.name = "s";
    d.mesh = ball;
    d.material = m;
    scene.draws.push_back(std::move(d));

    PipelineConfig pc;
    pc.width = 64;
    pc.height = 64;
    RenderPipeline pipe(pc, heap);
    const RenderSubmission sub = pipe.submit(scene);
    ASSERT_EQ(sub.kernels.size(), 2u);
    const CtaTrace cta = sub.kernels[1].source->generate(0);
    uint32_t tex = 0;
    for (const auto &in : cta.warps[0].instrs) {
        tex += in.opcode == Opcode::TEX;
    }
    EXPECT_EQ(tex, 8u);  // 1 map x (4 corners x 2 levels)
}

// ---------------------------------------------------------------------
// Pipeline-level invariants across scenes and resolutions.
// ---------------------------------------------------------------------

class SceneResolutionSweep
    : public ::testing::TestWithParam<std::tuple<const char *, uint32_t>>
{
};

TEST_P(SceneResolutionSweep, ReportInvariants)
{
    const auto [name, width] = GetParam();
    AddressSpace heap;
    const Scene scene = buildSceneByName(name, heap);
    PipelineConfig pc;
    pc.width = width;
    pc.height = width * 9 / 16;
    RenderPipeline pipe(pc, heap);
    const RenderSubmission sub = pipe.submit(scene);

    ASSERT_EQ(sub.kernels.size(), sub.dependsOn.size());
    for (const auto &r : sub.reports) {
        EXPECT_GE(r.vsThreadsLaunched, r.vsInvocations);
        EXPECT_LE(r.fragments, r.raster.fragsGenerated);
        EXPECT_EQ(r.fragments, r.raster.fragsGenerated -
                                   r.raster.fragsEarlyZKilled);
        if (r.fsKernelIndex != ~0u) {
            // FS kernel depends on this drawcall's VS kernel.
            EXPECT_EQ(sub.dependsOn[r.fsKernelIndex],
                      static_cast<int>(r.vsKernelIndex));
            EXPECT_EQ(sub.kernels[r.fsKernelIndex].numCtas(), r.fsCtas);
        }
        // Fragments bounded by the framebuffer with some overdraw slack.
        EXPECT_LT(r.fragments, 4ull * pc.width * pc.height);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Scenes, SceneResolutionSweep,
    ::testing::Combine(::testing::Values("SPL", "PT", "IT"),
                       ::testing::Values(96u, 320u)));

// Functional determinism: submitting the same scene twice produces the
// same image and the same kernel shapes.
TEST(PipelineProperty, SubmitIsDeterministic)
{
    auto run = []() {
        AddressSpace heap;
        const Scene scene = buildSceneByName("PL", heap);
        PipelineConfig pc;
        pc.width = 160;
        pc.height = 90;
        RenderPipeline pipe(pc, heap);
        const RenderSubmission sub = pipe.submit(scene);
        uint64_t sig = sub.totalFragments() * 1000003ull +
                       sub.totalVsInvocations();
        for (const auto &k : sub.kernels) {
            sig = sig * 31 + k.numCtas();
        }
        return sig;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace crisp
