#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "integrity/fault_injector.hpp"
#include "partition/warped_slicer.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/sink.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp
{
namespace
{

using telemetry::Event;
using telemetry::EventKind;
using telemetry::TelemetryConfig;
using telemetry::TelemetrySink;

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.name = "small";
    cfg.numSms = 4;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 4;
    cfg.l2.bankGeometry = {128 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

RenderSubmission
smallFrame(AddressSpace &heap)
{
    static std::vector<std::unique_ptr<Scene>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Scene>(buildSceneByName("PT", heap)));
    PipelineConfig pc;
    pc.width = 160;
    pc.height = 90;
    RenderPipeline pipe(pc, heap);
    return pipe.submit(*keep_alive.back());
}

void
enqueueVio(Gpu &gpu, StreamId stream, AddressSpace &heap)
{
    for (const KernelInfo &k : buildVio(heap, 1, 160, 120)) {
        gpu.enqueueKernel(stream, k);
    }
}

Event
mkEvent(Cycle cycle, uint64_t payload)
{
    Event e;
    e.cycle = cycle;
    e.kind = EventKind::CtaDispatch;
    e.a = payload;
    return e;
}

// ---------------------------------------------------------------------
// Ring buffer semantics.
// ---------------------------------------------------------------------

TEST(TelemetryRingTest, KeepsNewestOnWraparound)
{
    TelemetryConfig tc;
    tc.eventCapacity = 8;
    TelemetrySink sink(tc);
    for (uint64_t i = 0; i < 20; ++i) {
        sink.emit(mkEvent(i, i));
    }
    EXPECT_EQ(sink.emitted(), 20u);
    EXPECT_EQ(sink.dropped(), 12u);
    const std::vector<Event> events = sink.events();
    ASSERT_EQ(events.size(), 8u);
    // Oldest-first linearization of the newest 8 records: 12..19.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].a, 12u + i);
    }
    // Per-kind counts survive the wraparound.
    EXPECT_EQ(sink.count(EventKind::CtaDispatch), 20u);
    EXPECT_EQ(sink.count(EventKind::Repartition), 0u);
}

TEST(TelemetryRingTest, LastEventsClampsToRetained)
{
    TelemetryConfig tc;
    tc.eventCapacity = 8;
    TelemetrySink sink(tc);
    for (uint64_t i = 0; i < 5; ++i) {
        sink.emit(mkEvent(i, i));
    }
    EXPECT_EQ(sink.dropped(), 0u);
    const std::vector<Event> last2 = sink.lastEvents(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_EQ(last2[0].a, 3u);
    EXPECT_EQ(last2[1].a, 4u);
    EXPECT_EQ(sink.lastEvents(64).size(), 5u);
}

// ---------------------------------------------------------------------
// Counter series: sampling cadence and columnar storage.
// ---------------------------------------------------------------------

// A run of C cycles sampled every N cycles yields exactly ceil(C/N) rows
// (first sample on cycle 1), the contract the bench CSVs rely on.
TEST(TelemetrySamplerTest, ExactCadence)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    TelemetryConfig tc;
    tc.sampleInterval = 7;
    TelemetrySink sink(tc);
    gpu.setTelemetry(&sink);
    const auto r = gpu.run(500'000'000ull);
    ASSERT_TRUE(r.completed);

    const auto &series = sink.series();
    const Cycle n = tc.sampleInterval;
    EXPECT_EQ(series.rows(), (r.cycles + n - 1) / n);
    ASSERT_FALSE(series.cycles().empty());
    EXPECT_EQ(series.cycles().front(), 1u);
    for (size_t i = 1; i < series.cycles().size(); ++i) {
        EXPECT_EQ(series.cycles()[i], series.cycles()[i - 1] + n);
    }
    // The standard columns exist and have one value per row.
    for (const char *col : {"occ.compute", "sm.activeWarps", "l2.hitRate",
                            "l2.comp.compute"}) {
        ASSERT_TRUE(series.hasColumn(col)) << col;
        EXPECT_EQ(series.values(col).size(), series.rows()) << col;
    }
}

TEST(TelemetrySamplerTest, LateColumnsAreBackfilled)
{
    telemetry::CounterSeries series;
    const uint32_t a = series.column("a");
    series.beginRow(10);
    series.set(a, 1.0);
    series.beginRow(20);
    const uint32_t b = series.column("b");
    series.set(b, 2.0);
    ASSERT_EQ(series.rows(), 2u);
    EXPECT_DOUBLE_EQ(series.values("b")[0], 0.0);
    EXPECT_DOUBLE_EQ(series.values("b")[1], 2.0);
    EXPECT_DOUBLE_EQ(series.values("a")[1], 0.0);
}

// ---------------------------------------------------------------------
// Event stream shape from a real run.
// ---------------------------------------------------------------------

TEST(TelemetryEventTest, FrameEmitsBalancedKernelAndDrawcallEvents)
{
    AddressSpace heap;
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("graphics");
    submitFrame(gpu, gfx, smallFrame(heap));

    TelemetrySink sink;
    gpu.setTelemetry(&sink);
    const auto r = gpu.run(500'000'000ull);
    ASSERT_TRUE(r.completed);

    EXPECT_GT(sink.count(EventKind::KernelLaunch), 0u);
    EXPECT_EQ(sink.count(EventKind::KernelLaunch),
              sink.count(EventKind::KernelComplete));
    EXPECT_GT(sink.count(EventKind::DrawcallBegin), 0u);
    EXPECT_EQ(sink.count(EventKind::DrawcallBegin),
              sink.count(EventKind::DrawcallEnd));
    EXPECT_GT(sink.count(EventKind::CtaDispatch), 0u);
    EXPECT_EQ(sink.count(EventKind::CtaDispatch),
              sink.count(EventKind::CtaRetire));
    // Every event carries the frame's stream or the machine pseudo-unit.
    for (const Event &e : sink.events()) {
        EXPECT_EQ(e.stream, gfx) << static_cast<int>(e.kind);
        EXPECT_FALSE(sink.describe(e).empty());
    }
}

// Two identical runs produce identical event streams — telemetry is a
// pure observer and the simulator is deterministic.
TEST(TelemetryEventTest, IdenticalRunsProduceIdenticalStreams)
{
    auto trace = [](TelemetrySink &sink) {
        AddressSpace heap(0x8000'0000ull);
        Gpu gpu(smallGpu());
        const StreamId s = gpu.createStream("compute");
        enqueueVio(gpu, s, heap);
        gpu.setTelemetry(&sink);
        const auto r = gpu.run(500'000'000ull);
        ASSERT_TRUE(r.completed);
    };
    TelemetryConfig tc;
    tc.sampleInterval = 50;
    TelemetrySink a(tc);
    TelemetrySink b(tc);
    trace(a);
    trace(b);
    ASSERT_EQ(a.emitted(), b.emitted());
    EXPECT_TRUE(a.events() == b.events());
    ASSERT_EQ(a.series().rows(), b.series().rows());
    for (const std::string &col : a.series().columnNames()) {
        EXPECT_TRUE(a.series().values(col) == b.series().values(col))
            << col;
    }
}

// Attaching a sink must not change simulated timing.
TEST(TelemetryEventTest, TracingDoesNotChangeSimulatedCycles)
{
    auto cycles = [](TelemetrySink *sink) {
        AddressSpace heap(0x8000'0000ull);
        Gpu gpu(smallGpu());
        const StreamId s = gpu.createStream("compute");
        enqueueVio(gpu, s, heap);
        if (sink != nullptr) {
            gpu.setTelemetry(sink);
        }
        const auto r = gpu.run(500'000'000ull);
        EXPECT_TRUE(r.completed);
        return r.cycles;
    };
    TelemetryConfig tc;
    tc.sampleInterval = 1;
    TelemetrySink sink(tc);
    EXPECT_EQ(cycles(nullptr), cycles(&sink));
}

// ---------------------------------------------------------------------
// Chrome trace export.
// ---------------------------------------------------------------------

// Structural well-formedness without a JSON parser: balanced delimiters
// outside strings, array framing, and the fields Perfetto requires.
void
expectWellFormedJsonArray(const std::string &json)
{
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '[' || c == '{') {
            ++depth;
        } else if (c == ']' || c == '}') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
}

TEST(ChromeTraceTest, ConcurrentRunExportsAllTracks)
{
    AddressSpace heap;
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("graphics");
    const StreamId cmp = gpu.createStream("compute");
    submitFrame(gpu, gfx, smallFrame(heap));
    AddressSpace cheap(0x8000'0000ull);
    enqueueVio(gpu, cmp, cheap);

    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    part.priorityStream = gfx;
    gpu.setPartition(part);
    WarpedSlicerConfig wc;
    wc.streamA = gfx;
    wc.streamB = cmp;
    WarpedSlicer slicer(wc);
    gpu.addController(&slicer);

    TelemetrySink sink;
    gpu.setTelemetry(&sink);
    const auto r = gpu.run(500'000'000ull);
    ASSERT_TRUE(r.completed);

    const std::string json = telemetry::chromeTraceJson(sink);
    expectWellFormedJsonArray(json);
    // Duration events for kernels, metadata naming the processes, and
    // the machine track for repartition decisions.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("graphics"), std::string::npos);
    EXPECT_NE(json.find("compute"), std::string::npos);
    EXPECT_GT(sink.count(EventKind::Repartition), 0u);
    EXPECT_NE(json.find("repartition"), std::string::npos);
    EXPECT_NE(json.find("drawcall"), std::string::npos);
}

TEST(ChromeTraceTest, EmptySinkStillProducesValidJson)
{
    TelemetrySink sink;
    expectWellFormedJsonArray(telemetry::chromeTraceJson(sink));
}

// ---------------------------------------------------------------------
// Integration with the integrity layer: hang reports carry the last
// events before the stall.
// ---------------------------------------------------------------------

TEST(TelemetryIntegrityTest, HangReportAttachesRecentEvents)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");

    integrity::FaultConfig fc;
    fc.dropFillProb = 1.0;
    fc.maxDroppedFills = 1;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);
    enqueueVio(gpu, s, heap);

    TelemetrySink sink;
    integrity::RunOptions opts;
    opts.checkInterval = 500;
    opts.mshrLeakAge = 2000;
    opts.telemetry = &sink;
    const auto r = gpu.run(10'000'000ull, opts);

    ASSERT_FALSE(r.completed);
    ASSERT_TRUE(r.hang.has_value());
    ASSERT_FALSE(r.hang->recentEvents.empty());
    EXPECT_LE(r.hang->recentEvents.size(), 16u);
    const std::string text = r.hang->render();
    EXPECT_NE(text.find("last telemetry events"), std::string::npos);
    // The sink was installed by RunOptions and detached afterwards.
    EXPECT_GT(sink.emitted(), 0u);
    EXPECT_EQ(gpu.telemetry(), nullptr);
}

} // namespace
} // namespace crisp
