#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "integrity/report.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"
#include "service/chaos.hpp"
#include "service/job.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "service/server.hpp"
#include "traceio/writer.hpp"
#include "workloads/compute.hpp"

namespace crisp
{
namespace
{

using namespace crisp::service;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(f)),
                                std::istreambuf_iterator<char>());
}

/** A tiny valid MICRO job (~600 simulated cycles). */
JobSpec
microSpec(const char *name = "micro")
{
    JobSpec spec;
    spec.name = name;
    spec.workload = "MICRO";
    spec.ctas = 2;
    spec.iterations = 2;
    return spec;
}

/**
 * A job guaranteed to make no forward progress: SM 0's issue stage
 * freezes at cycle 64. Under the server's default hang threshold the
 * watchdog contains it as Hung; with a huge threshold it just burns
 * cycles until something else (deadline, cancel, cycle quota) stops
 * it — which is exactly what the deadline/cancel/queue tests need.
 */
JobSpec
frozenSpec(const char *name = "frozen")
{
    JobSpec spec = microSpec(name);
    spec.iterations = 64;
    spec.fault.enabled = true;
    spec.fault.freezeSmAt = 64;
    return spec;
}

/** Pack a small valid compute kernel as a CRTR trace file. */
std::string
writeSmallTrace(const char *name)
{
    ComputeKernelDesc desc;
    desc.name = "svc-trace";
    desc.ctas = 2;
    desc.threadsPerCta = 64;
    desc.regsPerThread = 32;
    desc.iterations = 2;
    desc.fp32Ops = 4;
    desc.intOps = 2;
    const KernelInfo kernel = buildComputeKernel(desc);
    const std::string path = tempPath(name);
    traceio::TraceError err;
    EXPECT_TRUE(traceio::writeTrace(path, "service-test", {kernel}, {-1},
                                    1 << 20, err))
        << err.render();
    return path;
}

// --- JSON -----------------------------------------------------------------

TEST(ServiceJson, RoundTripNestedDocument)
{
    Json doc = Json::object();
    doc.set("name", Json::str("line1\nline2\t\"quoted\""));
    doc.set("count", Json::number(uint64_t{123456789}));
    doc.set("ratio", Json::number(0.25));
    doc.set("flag", Json::boolean(true));
    doc.set("none", Json::null());
    Json arr = Json::array();
    arr.push(Json::number(uint64_t{1}));
    arr.push(Json::str("two"));
    Json inner = Json::object();
    inner.set("deep", Json::boolean(false));
    arr.push(std::move(inner));
    doc.set("items", std::move(arr));

    const std::string text = doc.dump();
    // Protocol lines must be single-line even when strings carry \n.
    EXPECT_EQ(text.find('\n'), std::string::npos);

    Json back;
    std::string err;
    ASSERT_TRUE(Json::parse(text, back, err)) << err;
    EXPECT_EQ(back.at("name").asString(), "line1\nline2\t\"quoted\"");
    EXPECT_EQ(back.at("count").asU64(), 123456789u);
    EXPECT_DOUBLE_EQ(back.at("ratio").asDouble(), 0.25);
    EXPECT_TRUE(back.at("flag").asBool());
    EXPECT_TRUE(back.at("none").isNull());
    ASSERT_EQ(back.at("items").items().size(), 3u);
    EXPECT_EQ(back.at("items").items()[1].asString(), "two");
    EXPECT_FALSE(back.at("items").items()[2].at("deep").asBool(true));
}

TEST(ServiceJson, MalformedInputsAreRejectedNotCrashes)
{
    const char *bad[] = {
        "",
        "{",
        "}",
        "{\"a\":}",
        "{\"a\":1,}",
        "[1,2",
        "\"unterminated",
        "{\"a\" 1}",
        "nul",
        "truex",
        "{\"a\":1} trailing",
        "\"bad escape \\q\"",
        "{\"dup\":1 \"dup\":2}",
        "01",
        "- 1",
        "\x01",
    };
    for (const char *text : bad) {
        Json out;
        std::string err;
        EXPECT_FALSE(Json::parse(text, out, err))
            << "accepted: " << text;
        EXPECT_FALSE(err.empty());
    }
}

TEST(ServiceJson, NumberAccessorsFallBackOnMismatch)
{
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(
        "{\"neg\":-4,\"frac\":1.5,\"big\":4294967296,\"s\":\"7\"}", doc,
        err))
        << err;
    // asU64 refuses negatives and non-integers, not just non-numbers.
    EXPECT_EQ(doc.at("neg").asU64(99), 99u);
    EXPECT_EQ(doc.at("frac").asU64(99), 99u);
    EXPECT_EQ(doc.at("big").asU64(), 4294967296ull);
    EXPECT_EQ(doc.at("s").asU64(99), 99u);
    EXPECT_DOUBLE_EQ(doc.at("neg").asDouble(), -4.0);
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_TRUE(doc.at("missing").isNull());
}

// --- Retry backoff --------------------------------------------------------

TEST(ServiceRetry, BackoffIsBoundedAndCapped)
{
    RetryPolicy policy;
    policy.baseDelaySec = 0.01;
    policy.maxDelaySec = 0.05;
    Rng rng(42);
    for (uint32_t attempt = 0; attempt < 16; ++attempt) {
        const double ceiling =
            std::min(policy.baseDelaySec * double(1ull << attempt),
                     policy.maxDelaySec);
        for (int trial = 0; trial < 50; ++trial) {
            const double d = backoffDelaySec(policy, attempt, rng);
            EXPECT_GE(d, 0.0);
            EXPECT_LT(d, ceiling + 1e-12)
                << "attempt " << attempt;
        }
    }
}

TEST(ServiceRetry, BackoffIsDeterministicGivenTheRng)
{
    RetryPolicy policy;
    Rng a(7), b(7);
    for (uint32_t attempt = 0; attempt < 8; ++attempt) {
        EXPECT_DOUBLE_EQ(backoffDelaySec(policy, attempt, a),
                         backoffDelaySec(policy, attempt, b));
    }
}

// --- Chaos planning -------------------------------------------------------

TEST(ServiceChaos, PlansAreDeterministicPerJobId)
{
    ChaosConfig cfg;
    cfg.seed = 0xc4a05;
    ChaosMonkey monkey(cfg);
    ASSERT_TRUE(monkey.enabled());
    for (JobId id = 1; id <= 64; ++id) {
        const ChaosPlan x = monkey.planFor(id);
        const ChaosPlan y = monkey.planFor(id);
        EXPECT_EQ(x.injectFault, y.injectFault);
        EXPECT_EQ(x.corruptCache, y.corruptCache);
        EXPECT_DOUBLE_EQ(x.disconnectAfterSec, y.disconnectAfterSec);
        EXPECT_EQ(x.fault.seed, y.fault.seed);
        EXPECT_LE(x.disconnectAfterSec, cfg.maxDisconnectDelaySec);
    }
}

TEST(ServiceChaos, SeedZeroDisablesEverything)
{
    ChaosMonkey monkey(ChaosConfig{});
    EXPECT_FALSE(monkey.enabled());
    for (JobId id = 1; id <= 16; ++id) {
        const ChaosPlan p = monkey.planFor(id);
        EXPECT_FALSE(p.injectFault);
        EXPECT_FALSE(p.corruptCache);
        EXPECT_LT(p.disconnectAfterSec, 0.0);
    }
}

// --- Job spec / report serialization --------------------------------------

TEST(ServiceJob, SpecJsonRoundTrip)
{
    JobSpec spec;
    spec.name = "rt";
    spec.gpuPreset = "orin";
    spec.numSms = 4;
    spec.workload = "NN";
    spec.layers = 3;
    spec.quota.maxCycles = 123456;
    spec.quota.maxWallSec = 2.5;
    spec.quota.maxEngineThreads = 2;
    spec.fault.enabled = true;
    spec.fault.seed = 99;
    spec.fault.freezeSmAt = 1000;
    spec.fault.dropFillProb = 0.125;

    const JobSpec back = JobSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.gpuPreset, spec.gpuPreset);
    EXPECT_EQ(back.numSms, spec.numSms);
    EXPECT_EQ(back.workload, spec.workload);
    EXPECT_EQ(back.layers, spec.layers);
    EXPECT_EQ(back.quota.maxCycles, spec.quota.maxCycles);
    EXPECT_DOUBLE_EQ(back.quota.maxWallSec, spec.quota.maxWallSec);
    EXPECT_EQ(back.quota.maxEngineThreads, spec.quota.maxEngineThreads);
    EXPECT_EQ(back.fault.enabled, spec.fault.enabled);
    EXPECT_EQ(back.fault.seed, spec.fault.seed);
    EXPECT_EQ(back.fault.freezeSmAt, spec.fault.freezeSmAt);
    EXPECT_DOUBLE_EQ(back.fault.dropFillProb, spec.fault.dropFillProb);
}

TEST(ServiceJob, ReportJsonRoundTrip)
{
    JobReport rep;
    rep.id = 17;
    rep.name = "boom";
    rep.state = JobState::Hung;
    rep.message = "no forward progress for 3072 cycles";
    rep.retries = 2;
    rep.cycles = 4096;
    rep.wallSec = 0.75;
    rep.instructions = 1440;
    rep.kernelsCompleted = 1;
    rep.violations = {"counter-l2-fills", "forward-progress"};

    const JobReport back = JobReport::fromJson(rep.toJson());
    EXPECT_EQ(back.id, rep.id);
    EXPECT_EQ(back.name, rep.name);
    EXPECT_EQ(back.state, rep.state);
    EXPECT_EQ(back.message, rep.message);
    EXPECT_EQ(back.retries, rep.retries);
    EXPECT_EQ(back.cycles, rep.cycles);
    EXPECT_DOUBLE_EQ(back.wallSec, rep.wallSec);
    EXPECT_EQ(back.instructions, rep.instructions);
    EXPECT_EQ(back.kernelsCompleted, rep.kernelsCompleted);
    EXPECT_EQ(back.violations, rep.violations);
}

TEST(ServiceJob, StateNamesAndTerminality)
{
    EXPECT_STREQ(jobStateName(JobState::Queued), "queued");
    EXPECT_STREQ(jobStateName(JobState::TimedOut), "timed-out");
    EXPECT_FALSE(jobStateTerminal(JobState::Queued));
    EXPECT_FALSE(jobStateTerminal(JobState::Running));
    EXPECT_TRUE(jobStateTerminal(JobState::Completed));
    EXPECT_TRUE(jobStateTerminal(JobState::Failed));
    EXPECT_TRUE(jobStateTerminal(JobState::Cancelled));
    EXPECT_TRUE(jobStateTerminal(JobState::TimedOut));
    EXPECT_TRUE(jobStateTerminal(JobState::OverQuota));
    EXPECT_TRUE(jobStateTerminal(JobState::Hung));
}

// --- Server fixture -------------------------------------------------------

class ServiceTest : public ::testing::Test
{
  protected:
    /** Small, fast server config suitable for a single-core CI box. */
    ServerConfig
    baseConfig()
    {
        ServerConfig cfg;
        cfg.workers = 2;
        cfg.queueCapacity = 16;
        cfg.retry.baseDelaySec = 0.001;
        cfg.retry.maxDelaySec = 0.01;
        cfg.monitorPeriodSec = 0.002;
        return cfg;
    }

    /** Spin until the server reports @p n running jobs (or time out). */
    static bool
    waitRunning(const JobServer &server, size_t n, double timeout_sec = 5.0)
    {
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::duration<double>(timeout_sec);
        while (std::chrono::steady_clock::now() < deadline) {
            if (server.runningJobs() >= n) {
                return true;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return false;
    }
};

// --- Admission control ----------------------------------------------------

TEST_F(ServiceTest, AdmissionValidatesPayloadAndQuota)
{
    JobServer server(baseConfig());

    EXPECT_TRUE(server.admissionError(microSpec()).empty());

    JobSpec none;
    EXPECT_NE(server.admissionError(none).find("malformed"),
              std::string::npos);

    JobSpec both = microSpec();
    both.scene = "SPL";
    EXPECT_NE(server.admissionError(both).find("malformed"),
              std::string::npos);

    JobSpec badWorkload = microSpec();
    badWorkload.workload = "FFT";
    EXPECT_NE(server.admissionError(badWorkload).find("unknown workload"),
              std::string::npos);

    JobSpec badScene;
    badScene.scene = "NOPE";
    EXPECT_NE(server.admissionError(badScene).find("unknown scene"),
              std::string::npos);

    JobSpec badPreset = microSpec();
    badPreset.gpuPreset = "h100";
    EXPECT_NE(server.admissionError(badPreset).find("unknown gpu preset"),
              std::string::npos);

    JobSpec hugeCtas = microSpec();
    hugeCtas.ctas = 1u << 20;
    EXPECT_NE(server.admissionError(hugeCtas).find("ctas out of range"),
              std::string::npos);

    JobSpec badProb = microSpec();
    badProb.fault.enabled = true;
    badProb.fault.dropFillProb = 1.5;
    EXPECT_NE(server.admissionError(badProb).find("drop_fill_prob"),
              std::string::npos);

    JobSpec overCycles = microSpec();
    overCycles.quota.maxCycles =
        server.config().maxQuota.maxCycles + 1;
    EXPECT_EQ(server.admissionError(overCycles).rfind("over-quota", 0), 0u);

    JobSpec overWall = microSpec();
    overWall.quota.maxWallSec = server.config().maxQuota.maxWallSec * 2;
    EXPECT_EQ(server.admissionError(overWall).rfind("over-quota", 0), 0u);

    JobSpec overThreads = microSpec();
    overThreads.quota.maxEngineThreads =
        server.config().maxQuota.maxEngineThreads + 1;
    EXPECT_EQ(server.admissionError(overThreads).rfind("over-quota", 0),
              0u);

    JobSpec zeroCycles = microSpec();
    zeroCycles.quota.maxCycles = 0;
    EXPECT_NE(server.admissionError(zeroCycles).find("max_cycles"),
              std::string::npos);

    const JobServer::Counters c = server.counters();
    // admissionError() alone must not move the rejection counters.
    EXPECT_EQ(c.rejectedInvalid + c.rejectedOverQuota, 0u);
}

TEST_F(ServiceTest, SubmitCountsRejectionsByKind)
{
    JobServer server(baseConfig());

    JobSpec invalid;
    const JobServer::Admission a = server.submit(invalid);
    EXPECT_FALSE(a.accepted);
    EXPECT_EQ(a.error.rfind("malformed", 0), 0u);

    JobSpec over = microSpec();
    over.quota.maxCycles = server.config().maxQuota.maxCycles + 1;
    const JobServer::Admission b = server.submit(over);
    EXPECT_FALSE(b.accepted);
    EXPECT_EQ(b.error.rfind("over-quota", 0), 0u);

    const JobServer::Counters c = server.counters();
    EXPECT_EQ(c.rejectedInvalid, 1u);
    EXPECT_EQ(c.rejectedOverQuota, 1u);
    EXPECT_EQ(c.accepted, 0u);
}

TEST_F(ServiceTest, FullQueueRejectsInsteadOfBlocking)
{
    ServerConfig cfg = baseConfig();
    cfg.workers = 1;
    cfg.queueCapacity = 2;
    // Huge hang threshold: the frozen job occupies the worker instead
    // of being contained, which is what this test needs.
    cfg.hangThreshold = 1'000'000'000;
    JobServer server(cfg);

    const JobServer::Admission running = server.submit(frozenSpec());
    ASSERT_TRUE(running.accepted) << running.error;
    ASSERT_TRUE(waitRunning(server, 1));

    const JobServer::Admission q1 = server.submit(microSpec("q1"));
    const JobServer::Admission q2 = server.submit(microSpec("q2"));
    ASSERT_TRUE(q1.accepted);
    ASSERT_TRUE(q2.accepted);
    EXPECT_EQ(server.queueDepth(), 2u);

    const JobServer::Admission q3 = server.submit(microSpec("q3"));
    EXPECT_FALSE(q3.accepted);
    EXPECT_EQ(q3.error, "queue-full");
    EXPECT_EQ(server.counters().rejectedFull, 1u);
    EXPECT_EQ(server.counters().queuePeak, 2u);

    // Unblock the worker and let the queued jobs finish.
    EXPECT_TRUE(server.cancel(running.id));
    const auto rep = server.wait(running.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Cancelled);
    EXPECT_TRUE(server.drain(30.0));
}

TEST_F(ServiceTest, ShutdownRejectsNewAdmissions)
{
    JobServer server(baseConfig());
    server.beginShutdown();
    const JobServer::Admission a = server.submit(microSpec());
    EXPECT_FALSE(a.accepted);
    EXPECT_EQ(a.error, "shutting-down");
    EXPECT_EQ(server.counters().rejectedShutdown, 1u);
    EXPECT_TRUE(server.drain(1.0));
}

// --- Lifecycle ------------------------------------------------------------

TEST_F(ServiceTest, SmallJobCompletesWithStats)
{
    JobServer server(baseConfig());
    const JobServer::Admission a = server.submit(microSpec());
    ASSERT_TRUE(a.accepted) << a.error;

    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Completed);
    EXPECT_TRUE(rep->message.empty()) << rep->message;
    EXPECT_GT(rep->cycles, 0u);
    EXPECT_GT(rep->instructions, 0u);
    EXPECT_EQ(rep->kernelsCompleted, 1u);
    EXPECT_EQ(rep->retries, 0u);
    EXPECT_GE(rep->wallSec, 0.0);
    EXPECT_EQ(server.counters().completed, 1u);
    EXPECT_FALSE(server.wait(a.id + 999).has_value());
}

TEST_F(ServiceTest, WallClockDeadlineTimesTheJobOut)
{
    ServerConfig cfg = baseConfig();
    cfg.hangThreshold = 1'000'000'000; // Let the deadline fire first.
    JobServer server(cfg);

    JobSpec spec = frozenSpec("deadline");
    spec.quota.maxCycles = 1'000'000'000ull;
    spec.quota.maxWallSec = 0.2;
    const JobServer::Admission a = server.submit(spec);
    ASSERT_TRUE(a.accepted) << a.error;

    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::TimedOut);
    EXPECT_NE(rep->message.find("deadline"), std::string::npos)
        << rep->message;
    EXPECT_GE(rep->wallSec, 0.2);
    EXPECT_EQ(server.counters().timedOut, 1u);
}

TEST_F(ServiceTest, ClientCancelStopsARunningJob)
{
    ServerConfig cfg = baseConfig();
    cfg.hangThreshold = 1'000'000'000;
    JobServer server(cfg);

    JobSpec spec = frozenSpec("cancel-me");
    spec.quota.maxCycles = 1'000'000'000ull;
    const JobServer::Admission a = server.submit(spec);
    ASSERT_TRUE(a.accepted) << a.error;
    ASSERT_TRUE(waitRunning(server, 1));

    EXPECT_TRUE(server.cancel(a.id));
    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Cancelled);
    EXPECT_NE(rep->message.find("cancelled by client"), std::string::npos);
    // A terminal job cannot be cancelled again.
    EXPECT_FALSE(server.cancel(a.id));
    EXPECT_FALSE(server.cancel(a.id + 999));
}

TEST_F(ServiceTest, FrozenSmIsContainedAsHung)
{
    JobServer server(baseConfig()); // Default (derived) hang threshold.
    const JobServer::Admission a = server.submit(frozenSpec());
    ASSERT_TRUE(a.accepted) << a.error;

    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Hung);
    EXPECT_NE(rep->message.find("progress"), std::string::npos)
        << rep->message;
    EXPECT_EQ(server.counters().hung, 1u);

    // The server survives and runs the next job normally.
    const JobServer::Admission b = server.submit(microSpec("after-hang"));
    ASSERT_TRUE(b.accepted);
    const auto rep2 = server.wait(b.id);
    ASSERT_TRUE(rep2.has_value());
    EXPECT_EQ(rep2->state, JobState::Completed);
}

TEST_F(ServiceTest, CycleQuotaExhaustionIsOverQuota)
{
    ServerConfig cfg = baseConfig();
    cfg.hangThreshold = 1'000'000'000;
    JobServer server(cfg);

    JobSpec spec = frozenSpec("tiny-budget");
    spec.quota.maxCycles = 20'000; // Frozen: burns this quickly.
    const JobServer::Admission a = server.submit(spec);
    ASSERT_TRUE(a.accepted) << a.error;

    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::OverQuota);
    EXPECT_NE(rep->message.find("quota"), std::string::npos);
    EXPECT_EQ(server.counters().overQuota, 1u);
}

// --- Trace jobs: retry, structural failure, success -----------------------

TEST_F(ServiceTest, CorruptTraceRetriesThenFails)
{
    const std::string path = writeSmallTrace("svc-corrupt.crtr");
    std::vector<uint8_t> bytes = readBytes(path);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x5a; // Payload corruption -> CRC Corrupt.
    writeBytes(path, bytes);

    ServerConfig cfg = baseConfig();
    cfg.retry.maxRetries = 2;
    JobServer server(cfg);

    JobSpec spec;
    spec.name = "corrupt-trace";
    spec.tracePath = path;
    const JobServer::Admission a = server.submit(spec);
    ASSERT_TRUE(a.accepted) << a.error;

    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Failed);
    // A transient (Corrupt) failure spends the full retry budget.
    EXPECT_EQ(rep->retries, 2u);
    EXPECT_FALSE(rep->message.empty());
    EXPECT_EQ(server.counters().retries, 2u);
    EXPECT_EQ(server.counters().failed, 1u);
}

TEST_F(ServiceTest, StructurallyInvalidTraceFailsWithoutRetry)
{
    const std::string path = tempPath("svc-junk.crtr");
    writeBytes(path, {'n', 'o', 't', ' ', 'a', ' ',
                      't', 'r', 'a', 'c', 'e', '!'});

    JobServer server(baseConfig());
    JobSpec spec;
    spec.name = "junk-trace";
    spec.tracePath = path;
    const JobServer::Admission a = server.submit(spec);
    ASSERT_TRUE(a.accepted) << a.error;

    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Failed);
    // BadMagic is structural: retrying cannot help, so none are spent.
    EXPECT_EQ(rep->retries, 0u);
    EXPECT_EQ(server.counters().retries, 0u);
}

TEST_F(ServiceTest, ValidTraceReplaysToCompletion)
{
    const std::string path = writeSmallTrace("svc-valid.crtr");
    JobServer server(baseConfig());
    JobSpec spec;
    spec.name = "valid-trace";
    spec.tracePath = path;
    const JobServer::Admission a = server.submit(spec);
    ASSERT_TRUE(a.accepted) << a.error;

    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Completed) << rep->message;
    EXPECT_GT(rep->instructions, 0u);
    EXPECT_EQ(rep->kernelsCompleted, 1u);
}

// --- Protocol dispatch ----------------------------------------------------

TEST_F(ServiceTest, ProtocolHandlesTheFullRequestSurface)
{
    JobServer server(baseConfig());
    bool shutdown = false;

    auto call = [&](const std::string &line) {
        const std::string resp = handleRequestLine(server, line, shutdown);
        Json j;
        std::string err;
        EXPECT_TRUE(Json::parse(resp, j, err)) << resp;
        return j;
    };

    // Malformed transport-level input never crashes the dispatcher.
    EXPECT_FALSE(call("this is not json").at("ok").asBool(true));
    EXPECT_FALSE(call("[1,2,3]").at("ok").asBool(true));
    EXPECT_FALSE(call("{\"no\":\"cmd\"}").at("ok").asBool(true));
    EXPECT_FALSE(call("{\"cmd\":\"warp-ten\"}").at("ok").asBool(true));
    EXPECT_FALSE(call("{\"cmd\":\"submit\"}").at("ok").asBool(true));
    EXPECT_FALSE(call("{\"cmd\":\"status\"}").at("ok").asBool(true));

    EXPECT_TRUE(call("{\"cmd\":\"ping\"}").at("pong").asBool());

    // Submit a real job through the wire format and wait on it.
    Json submit = Json::object();
    submit.set("cmd", Json::str("submit"));
    submit.set("job", microSpec("wire").toJson());
    const Json accepted = call(submit.dump());
    ASSERT_TRUE(accepted.at("ok").asBool());
    const JobId id = accepted.at("id").asU64();
    ASSERT_GT(id, 0u);

    Json wait = Json::object();
    wait.set("cmd", Json::str("wait"));
    wait.set("id", Json::number(id));
    const Json done = call(wait.dump());
    ASSERT_TRUE(done.at("ok").asBool());
    EXPECT_EQ(done.at("report").at("state").asString(), "completed");

    // Rejections surface the admission reason verbatim.
    Json badJob = Json::object();
    badJob.set("cmd", Json::str("submit"));
    badJob.set("job", Json::object());
    const Json rejected = call(badJob.dump());
    EXPECT_FALSE(rejected.at("ok").asBool(true));
    EXPECT_EQ(rejected.at("error").asString().rfind("malformed", 0), 0u);

    // Unknown ids are an error, not a crash or a hang.
    const Json unknown = call("{\"cmd\":\"wait\",\"id\":424242}");
    EXPECT_FALSE(unknown.at("ok").asBool(true));
    EXPECT_EQ(unknown.at("error").asString(), "unknown-job");

    const Json counters = call("{\"cmd\":\"counters\"}");
    ASSERT_TRUE(counters.at("ok").asBool());
    EXPECT_EQ(counters.at("counters").at("completed").asU64(), 1u);
    EXPECT_GE(counters.at("counters").at("rejected_invalid").asU64(), 1u);

    EXPECT_FALSE(shutdown);
    EXPECT_TRUE(call("{\"cmd\":\"shutdown\"}").at("ok").asBool());
    EXPECT_TRUE(shutdown);
    EXPECT_FALSE(call(submit.dump()).at("ok").asBool(true));
    EXPECT_TRUE(server.drain(5.0));
}

// --- Drain ----------------------------------------------------------------

TEST_F(ServiceTest, DrainForceCancelsStragglersButStaysTerminal)
{
    ServerConfig cfg = baseConfig();
    cfg.workers = 1;
    cfg.hangThreshold = 1'000'000'000;
    JobServer server(cfg);

    JobSpec spec = frozenSpec("straggler");
    spec.quota.maxCycles = 1'000'000'000ull;
    const JobServer::Admission a = server.submit(spec);
    ASSERT_TRUE(a.accepted) << a.error;
    ASSERT_TRUE(waitRunning(server, 1));

    // Zero grace: the frozen job cannot finish, so the drain is forced.
    EXPECT_FALSE(server.drain(0.0));
    const auto rep = server.report(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Cancelled);
    EXPECT_NE(rep->message.find("shutting down"), std::string::npos)
        << rep->message;
}

// --- Spool ----------------------------------------------------------------

TEST_F(ServiceTest, TerminalReportsAreSpooledAsJson)
{
    const std::string spool = tempPath("svc-spool");
    std::filesystem::remove_all(spool);

    ServerConfig cfg = baseConfig();
    cfg.spoolDir = spool;
    JobServer server(cfg);

    const JobServer::Admission ok = server.submit(microSpec("spooled"));
    const JobServer::Admission hang = server.submit(frozenSpec());
    ASSERT_TRUE(ok.accepted);
    ASSERT_TRUE(hang.accepted);
    ASSERT_TRUE(server.wait(ok.id).has_value());
    ASSERT_TRUE(server.wait(hang.id).has_value());

    size_t files = 0;
    bool sawCompleted = false, sawHung = false;
    for (const auto &e : std::filesystem::directory_iterator(spool)) {
        ++files;
        std::ifstream f(e.path());
        std::string text((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
        Json j;
        std::string err;
        ASSERT_TRUE(Json::parse(text, j, err))
            << e.path() << ": " << err;
        const JobReport rep = JobReport::fromJson(j);
        sawCompleted |= rep.state == JobState::Completed;
        sawHung |= rep.state == JobState::Hung;
    }
    EXPECT_EQ(files, 2u);
    EXPECT_TRUE(sawCompleted);
    EXPECT_TRUE(sawHung);
}

// --- Scenario jobs ---------------------------------------------------------

/** A tiny flattenable compute-only scenario (one small kernel chain). */
const char *kTinyScenario = R"({
    "crisp_scenario": 1, "name": "svc-scn",
    "compute": {
        "buffers": [ { "name": "b", "bytes": 65536 } ],
        "kernels": [
            { "name": "k0", "ctas": 2, "threads_per_cta": 64,
              "regs_per_thread": 16, "iterations": 2, "fp32_ops": 4,
              "loads": [ { "buffer": "b", "access_bytes": 4,
                           "count": 1 } ] },
            { "name": "k1", "after": "k0", "ctas": 2,
              "threads_per_cta": 64, "regs_per_thread": 16,
              "iterations": 2, "int_ops": 2 }
        ]
    }
})";

JobSpec
scenarioSpec(const char *text, const char *name = "scn")
{
    JobSpec spec;
    spec.name = name;
    spec.scenarioText = text;
    return spec;
}

TEST_F(ServiceTest, ScenarioAdmissionValidatesDocumentAndCaps)
{
    JobServer server(baseConfig());

    EXPECT_TRUE(server.admissionError(scenarioSpec(kTinyScenario)).empty());

    // A scenario is a payload like any other: exactly one per job.
    JobSpec both = microSpec();
    both.scenarioText = kTinyScenario;
    EXPECT_NE(server.admissionError(both).find("exactly one"),
              std::string::npos);

    // Malformed documents are rejected with the loader's coordinates.
    const std::string bad =
        server.admissionError(scenarioSpec("{\"crisp_scenario\": 2}"));
    EXPECT_EQ(bad.rfind("malformed: scenario", 0), 0u) << bad;
    EXPECT_NE(bad.find(":1:"), std::string::npos) << bad;

    // The daemon's caps are stricter than the loader's schema bounds.
    const JobSpec frames = scenarioSpec(R"({
        "crisp_scenario": 1, "name": "x",
        "graphics": { "preset": "SPL", "width": 64, "height": 64,
                      "frames": 12 }
    })");
    EXPECT_NE(server.admissionError(frames).find("frames out of range"),
              std::string::npos);

    const JobSpec ctas = scenarioSpec(R"({
        "crisp_scenario": 1, "name": "x",
        "compute": { "kernels": [ { "name": "k", "ctas": 8192 } ] }
    })");
    EXPECT_NE(server.admissionError(ctas).find("ctas out of range"),
              std::string::npos);

    const JobSpec bursts = scenarioSpec(R"({
        "crisp_scenario": 1, "name": "x",
        "compute": {
            "kernels": [ { "name": "k", "ctas": 2 } ],
            "schedule": { "bursts": 512, "period": 1000 }
        }
    })");
    EXPECT_EQ(server.admissionError(bursts).rfind("over-quota", 0), 0u);
}

TEST_F(ServiceTest, ScenarioJobMatchesADirectRunExactly)
{
    JobServer server(baseConfig());
    const JobServer::Admission a =
        server.submit(scenarioSpec(kTinyScenario));
    ASSERT_TRUE(a.accepted) << a.error;
    const auto rep = server.wait(a.id);
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(rep->state, JobState::Completed);
    EXPECT_EQ(rep->kernelsCompleted, 2u);

    // Rebuild the job's machine by hand: same preset, same engine, same
    // run options. The daemon adds nothing to the simulation itself.
    scenario::Scenario sc;
    scenario::ScenarioError serr;
    ASSERT_TRUE(
        scenario::loadScenarioText(kTinyScenario, "mem", sc, serr))
        << serr.str();
    Gpu gpu(scenario::gpuConfigFor(sc));
    engine::EngineConfig ec;
    ec.threads = 1;
    ec.fastForward = true;
    gpu.setEngine(ec);
    AddressSpace heap;
    scenario::Materialized mat;
    scenario::submitScenario(sc, gpu, heap, mat);
    integrity::RunOptions opts;
    opts.checkInterval = server.config().watchdogInterval;
    opts.hangThreshold = server.config().hangThreshold;
    opts.auditInterval = server.config().auditInterval;
    const Gpu::RunResult r = gpu.run(JobSpec().quota.maxCycles, opts);
    ASSERT_TRUE(r.completed);

    EXPECT_EQ(rep->cycles, r.cycles);
    EXPECT_EQ(rep->instructions,
              gpu.stats().sumOver(&StreamStats::instructions));
    EXPECT_EQ(rep->kernelsCompleted,
              gpu.stats().sumOver(&StreamStats::kernelsCompleted));
}

TEST_F(ServiceTest, ScenarioResubmissionHitsTheCacheIdentically)
{
    const std::string cacheDir = tempPath("svc-scn-cache");
    std::filesystem::remove_all(cacheDir);
    ServerConfig cfg = baseConfig();
    cfg.cacheDir = cacheDir;
    JobServer server(cfg);

    const JobServer::Admission a =
        server.submit(scenarioSpec(kTinyScenario, "scn-miss"));
    ASSERT_TRUE(a.accepted) << a.error;
    const auto first = server.wait(a.id);
    ASSERT_TRUE(first.has_value());
    ASSERT_EQ(first->state, JobState::Completed);
    const uint64_t missesAfterFirst = server.cache().stats().misses;
    EXPECT_GT(missesAfterFirst, 0u);

    const JobServer::Admission b =
        server.submit(scenarioSpec(kTinyScenario, "scn-hit"));
    ASSERT_TRUE(b.accepted) << b.error;
    const auto second = server.wait(b.id);
    ASSERT_TRUE(second.has_value());
    ASSERT_EQ(second->state, JobState::Completed);
    EXPECT_GT(server.cache().stats().hits, 0u);
    EXPECT_EQ(server.cache().stats().misses, missesAfterFirst);

    // The replayed submission is the built one, bit for bit.
    EXPECT_EQ(first->cycles, second->cycles);
    EXPECT_EQ(first->instructions, second->instructions);
    EXPECT_EQ(first->kernelsCompleted, second->kernelsCompleted);
}

TEST_F(ServiceTest, ScenarioGpuSectionOverridesTheSpecMachine)
{
    JobServer server(baseConfig());
    // Same workload on a 4-SM machine vs the full preset: fewer SMs must
    // cost cycles, proving the scenario's "gpu" section reached runJob.
    const char *narrow = R"({
        "crisp_scenario": 1, "name": "narrow",
        "gpu": { "preset": "rtx3070", "num_sms": 2 },
        "compute": {
            "kernels": [ { "name": "k", "ctas": 64,
                           "threads_per_cta": 128,
                           "regs_per_thread": 32, "iterations": 8,
                           "fp32_ops": 8 } ]
        }
    })";
    const char *wide = R"({
        "crisp_scenario": 1, "name": "wide",
        "compute": {
            "kernels": [ { "name": "k", "ctas": 64,
                           "threads_per_cta": 128,
                           "regs_per_thread": 32, "iterations": 8,
                           "fp32_ops": 8 } ]
        }
    })";
    const JobServer::Admission a = server.submit(scenarioSpec(narrow));
    const JobServer::Admission b = server.submit(scenarioSpec(wide));
    ASSERT_TRUE(a.accepted) << a.error;
    ASSERT_TRUE(b.accepted) << b.error;
    const auto ra = server.wait(a.id);
    const auto rb = server.wait(b.id);
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    ASSERT_EQ(ra->state, JobState::Completed);
    ASSERT_EQ(rb->state, JobState::Completed);
    EXPECT_GT(ra->cycles, rb->cycles);
}

// --- The chaos soak -------------------------------------------------------

/**
 * The acceptance soak: a few hundred mixed jobs — valid, malformed,
 * over-quota, guaranteed-hanging, and client-cancelled — through a
 * 4-worker chaos-mode server. Every admitted job must reach exactly one
 * terminal state, the queue must respect its bound, and the counters
 * must conserve. Chaos mode stacks random fault injection, cache
 * corruption, and simulated disconnects on top of the scripted mix.
 */
TEST_F(ServiceTest, SoakMixedJobsAllReachTerminalStates)
{
    const std::string spool = tempPath("svc-soak-spool");
    const std::string cacheDir = tempPath("svc-soak-cache");
    std::filesystem::remove_all(spool);
    std::filesystem::remove_all(cacheDir);

    const std::string goodTrace = writeSmallTrace("svc-soak.crtr");
    const std::string badTrace = tempPath("svc-soak-bad.crtr");
    {
        std::vector<uint8_t> bytes = readBytes(goodTrace);
        bytes[bytes.size() / 2] ^= 0x5a;
        writeBytes(badTrace, bytes);
    }

    ServerConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 32;
    cfg.retry.maxRetries = 1;
    cfg.retry.baseDelaySec = 0.001;
    cfg.retry.maxDelaySec = 0.005;
    cfg.monitorPeriodSec = 0.002;
    cfg.spoolDir = spool;
    cfg.cacheDir = cacheDir;
    cfg.chaos.seed = 0x5047c4a05ull;
    cfg.chaos.maxDisconnectDelaySec = 0.02;
    JobServer server(cfg);

    constexpr int kJobs = 220;
    std::vector<JobId> admitted;
    std::vector<JobId> toCancel;
    uint64_t rejected = 0;

    for (int i = 0; i < kJobs; ++i) {
        JobSpec spec;
        bool cancelAfter = false;
        switch (i % 10) {
          case 0: // Malformed: no payload at all.
            spec.name = "soak-malformed";
            break;
          case 1: { // Over-quota ask.
            spec = microSpec("soak-over");
            spec.quota.maxCycles = cfg.maxQuota.maxCycles + 1;
            break;
          }
          case 2: // Guaranteed hang (contained by the watchdog).
            spec = frozenSpec("soak-frozen");
            break;
          case 3: // Client cancels straight after submitting.
            spec = microSpec("soak-cancelled");
            spec.iterations = 64;
            cancelAfter = true;
            break;
          case 4: // Trace replay.
            spec.name = "soak-trace";
            spec.tracePath = (i % 20 == 4) ? badTrace : goodTrace;
            break;
          case 5: // Dropped-fill fault: audit evidence, still terminal.
            spec = microSpec("soak-dropfill");
            spec.fault.enabled = true;
            spec.fault.seed = 0x5eed + uint64_t(i);
            spec.fault.dropFillProb = 0.5;
            break;
          default: // Plain small jobs, lightly varied.
            spec = microSpec("soak-micro");
            spec.ctas = 1 + (i % 3);
            spec.iterations = 1 + (i % 4);
            break;
        }

        // The queue is much smaller than the job count; pace the
        // submissions so the mix actually flows through the workers
        // instead of the tail bouncing off a full queue (a handful of
        // "queue-full" rejections can still race through, and that is
        // part of the contract being tested).
        const auto spaceDeadline = std::chrono::steady_clock::now() +
            std::chrono::seconds(20);
        while (server.queueDepth() + 1 >= cfg.queueCapacity &&
               std::chrono::steady_clock::now() < spaceDeadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        const JobServer::Admission a = server.submit(spec);
        if (!a.accepted) {
            ++rejected;
            const bool expectedReason = a.error == "queue-full" ||
                a.error.rfind("malformed", 0) == 0 ||
                a.error.rfind("over-quota", 0) == 0;
            EXPECT_TRUE(expectedReason) << a.error;
            continue;
        }
        admitted.push_back(a.id);
        if (cancelAfter) {
            toCancel.push_back(a.id);
        }
        EXPECT_LE(server.queueDepth(), cfg.queueCapacity);
        if (!toCancel.empty() && (i % 4) == 3) {
            server.cancel(toCancel.back());
            toCancel.pop_back();
        }
        // Brief pause every few jobs so the queue drains instead of
        // rejecting the whole tail on a single-core box.
        if (i % 8 == 7) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    for (JobId id : toCancel) {
        server.cancel(id);
    }

    ASSERT_GE(admitted.size(), 150u);
    EXPECT_TRUE(server.drain(60.0) || server.queueDepth() == 0);

    // Every admitted job is terminal with a coherent report.
    uint64_t terminalByScan = 0;
    for (JobId id : admitted) {
        const auto rep = server.report(id);
        ASSERT_TRUE(rep.has_value()) << "job " << id;
        EXPECT_TRUE(jobStateTerminal(rep->state))
            << "job " << id << " state " << jobStateName(rep->state);
        ++terminalByScan;
        if (rep->state == JobState::Completed) {
            EXPECT_GT(rep->instructions, 0u) << "job " << id;
            EXPECT_TRUE(rep->message.empty()) << rep->message;
        } else {
            EXPECT_FALSE(rep->message.empty())
                << "job " << id << " state " << jobStateName(rep->state);
        }
    }
    EXPECT_EQ(terminalByScan, admitted.size());

    // Counters conserve: accepted == sum of terminal outcomes, and the
    // queue never exceeded its bound.
    const JobServer::Counters c = server.counters();
    EXPECT_EQ(c.accepted, admitted.size());
    EXPECT_EQ(c.accepted, c.completed + c.failed + c.cancelled +
                  c.timedOut + c.overQuota + c.hung);
    EXPECT_LE(c.queuePeak, cfg.queueCapacity);
    EXPECT_EQ(c.rejectedInvalid + c.rejectedOverQuota + c.rejectedFull +
                  c.rejectedShutdown,
              rejected);
    EXPECT_GT(c.completed, 0u);
    EXPECT_GT(c.hung, 0u);
    EXPECT_GT(c.cancelled, 0u);

    // Exactly one spooled report per admitted job.
    size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(spool)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, admitted.size());
}

} // namespace
} // namespace crisp
