#include <gtest/gtest.h>

#include <array>
#include <set>

#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "partition/tap.hpp"
#include "partition/warped_slicer.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.name = "small";
    cfg.numSms = 4;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 4;
    cfg.l2.bankGeometry = {128 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

RenderSubmission
smallFrame(AddressSpace &heap)
{
    // Built once per test; the scene must outlive the gpu run, so the
    // caller owns the heap and we leak the scene into a static holder.
    static std::vector<std::unique_ptr<Scene>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Scene>(buildSceneByName("PT", heap)));
    PipelineConfig pc;
    pc.width = 160;
    pc.height = 90;
    RenderPipeline pipe(pc, heap);
    return pipe.submit(*keep_alive.back());
}

// ---------------------------------------------------------------------
// Every partitioning policy completes a mixed workload with per-stream
// progress on both streams.
// ---------------------------------------------------------------------

class PolicySweep : public ::testing::TestWithParam<PartitionPolicy>
{
};

TEST_P(PolicySweep, MixedWorkloadDrains)
{
    AddressSpace heap;
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("graphics");
    const StreamId cmp = gpu.createStream("compute");
    const RenderSubmission frame = smallFrame(heap);
    submitFrame(gpu, gfx, frame);
    AddressSpace cheap(0x8000'0000ull);
    for (const KernelInfo &k : buildVio(cheap, 1, 160, 120)) {
        gpu.enqueueKernel(cmp, k);
    }
    PartitionConfig part;
    part.policy = GetParam();
    if (part.policy == PartitionPolicy::FineGrained) {
        part.priorityStream = gfx;
    }
    gpu.setPartition(part);
    const auto r = gpu.run(500'000'000ull);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(gpu.stats().stream(gfx).instructions, 0u);
    EXPECT_GT(gpu.stats().stream(cmp).instructions, 0u);
    EXPECT_GT(gpu.stats().stream(gfx).l1TexAccesses, 0u);
    EXPECT_EQ(gpu.stats().stream(cmp).l1TexAccesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Values(PartitionPolicy::Exhaustive, PartitionPolicy::Mps,
                      PartitionPolicy::Mig, PartitionPolicy::FineGrained),
    [](const ::testing::TestParamInfo<PartitionPolicy> &info) {
        switch (info.param) {
          case PartitionPolicy::Exhaustive: return "Exhaustive";
          case PartitionPolicy::Mps: return "Mps";
          case PartitionPolicy::Mig: return "Mig";
          case PartitionPolicy::FineGrained: return "FineGrained";
          default: return "Unknown";
        }
    });

// ---------------------------------------------------------------------
// submitFrame dependency: a fragment kernel never launches before its
// vertex kernel completes; independent drawcalls do overlap.
// ---------------------------------------------------------------------

TEST(SubmitFrameTest, FragmentWaitsForItsVertexKernel)
{
    AddressSpace heap;
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("graphics");
    const RenderSubmission frame = smallFrame(heap);
    const std::vector<KernelId> ids = submitFrame(gpu, gfx, frame);

    struct Watcher : GpuController
    {
        std::map<KernelId, Cycle> launch;
        std::map<KernelId, Cycle> complete;
        void
        onKernelLaunch(Gpu &gpu, const KernelInfo &, KernelId id) override
        {
            launch[id] = gpu.now();
        }
        void
        onKernelComplete(Gpu &gpu, StreamId, KernelId id) override
        {
            complete[id] = gpu.now();
        }
    } watcher;
    gpu.addController(&watcher);
    ASSERT_TRUE(gpu.run(500'000'000ull).completed);

    bool overlap_seen = false;
    for (const auto &r : frame.reports) {
        if (r.fsKernelIndex == ~0u) {
            continue;
        }
        const KernelId vs = ids[r.vsKernelIndex];
        const KernelId fs = ids[r.fsKernelIndex];
        ASSERT_TRUE(watcher.launch.count(fs));
        ASSERT_TRUE(watcher.complete.count(vs));
        EXPECT_GE(watcher.launch[fs], watcher.complete[vs])
            << r.name << ": FS launched before its VS completed";
    }
    // At least one kernel launched before an earlier one completed
    // (pipelining across drawcalls).
    std::vector<KernelId> sorted = ids;
    for (size_t i = 1; i < sorted.size(); ++i) {
        if (watcher.launch.count(sorted[i]) &&
            watcher.complete.count(sorted[i - 1]) &&
            watcher.launch[sorted[i]] < watcher.complete[sorted[i - 1]]) {
            overlap_seen = true;
        }
    }
    EXPECT_TRUE(overlap_seen) << "drawcalls never overlapped";
}

// ---------------------------------------------------------------------
// Dynamic quota changes mid-run: the machine stays consistent and the
// freed-at-commit semantics let the other stream grow (§III-A).
// ---------------------------------------------------------------------

TEST(DynamicRepartition, QuotaFlipMidRunDrains)
{
    AddressSpace cheap;
    Gpu gpu(smallGpu());
    const StreamId a = gpu.createStream("a");
    const StreamId b = gpu.createStream("b");
    ComputeKernelDesc d;
    d.name = "loop";
    d.ctas = 64;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.iterations = 3;
    d.fp32Ops = 24;
    d.loads = {{MemPatternKind::Streaming, cheap.alloc(1 << 20), 1 << 20,
                4, 2, 128}};
    gpu.enqueueKernel(a, buildComputeKernel(d));
    d.name = "loop2";
    gpu.enqueueKernel(b, buildComputeKernel(d));
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    gpu.setPartition(part);

    struct Flipper : GpuController
    {
        StreamId a;
        StreamId b;
        bool flipped = false;
        void
        onCycle(Gpu &gpu, Cycle now) override
        {
            if (!flipped && now > 2000) {
                flipped = true;
                gpu.setUniformQuota(a, 0.25);
                gpu.setUniformQuota(b, 0.75);
            }
        }
    } flipper;
    flipper.a = a;
    flipper.b = b;
    gpu.addController(&flipper);
    ASSERT_TRUE(gpu.run(100'000'000ull).completed);
    EXPECT_TRUE(flipper.flipped);
}

// ---------------------------------------------------------------------
// Whole-machine determinism including L2, controllers and two streams.
// ---------------------------------------------------------------------

TEST(ConcurrentDeterminism, SameRunSameCycles)
{
    auto run_once = []() {
        AddressSpace heap;
        Gpu gpu(smallGpu());
        const StreamId gfx = gpu.createStream("g");
        const StreamId cmp = gpu.createStream("c");
        const RenderSubmission frame = smallFrame(heap);
        submitFrame(gpu, gfx, frame);
        AddressSpace cheap(0x8000'0000ull);
        for (const KernelInfo &k : buildHolo(cheap, 1)) {
            gpu.enqueueKernel(cmp, k);
        }
        PartitionConfig part;
        part.policy = PartitionPolicy::FineGrained;
        part.priorityStream = gfx;
        gpu.setPartition(part);
        const auto r = gpu.run(500'000'000ull);
        return std::make_tuple(r.cycles,
                               gpu.stats().stream(gfx).instructions,
                               gpu.stats().stream(cmp).l2Accesses);
    };
    EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------
// Controllers compose: TAP and Warped-Slicer attached simultaneously
// (set partitioning + dynamic quotas) still drain.
// ---------------------------------------------------------------------

TEST(Controllers, TapAndSlicerCompose)
{
    AddressSpace heap;
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("g");
    const StreamId cmp = gpu.createStream("c");
    const RenderSubmission frame = smallFrame(heap);
    submitFrame(gpu, gfx, frame);
    AddressSpace cheap(0x8000'0000ull);
    for (const KernelInfo &k : buildNn(cheap, 2)) {
        gpu.enqueueKernel(cmp, k);
    }
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    part.priorityStream = gfx;
    gpu.setPartition(part);

    WarpedSlicerConfig wc;
    wc.streamA = gfx;
    wc.streamB = cmp;
    wc.sampleCycles = 500;
    WarpedSlicer slicer(wc);
    gpu.addController(&slicer);
    TapConfig tc;
    tc.gfxStream = gfx;
    tc.computeStream = cmp;
    tc.epoch = 1000;
    TapController tap(tc, gpu);
    gpu.addController(&tap);

    ASSERT_TRUE(gpu.run(500'000'000ull).completed);
    EXPECT_GE(slicer.samplingPhases(), 1u);
    EXPECT_FALSE(tap.decisions().empty());
}


// ---------------------------------------------------------------------
// More than two workloads (§IV: "the simulation framework can be easily
// extended to support more than 2 workloads"): graphics plus two compute
// streams share the machine under fine-grained quotas.
// ---------------------------------------------------------------------

TEST(ThreeStreams, GraphicsPlusTwoComputeStreamsDrain)
{
    AddressSpace heap;
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("graphics");
    const StreamId vio = gpu.createStream("vio");
    const StreamId atw = gpu.createStream("atw");
    const RenderSubmission frame = smallFrame(heap);
    submitFrame(gpu, gfx, frame);
    AddressSpace cheap(0x8000'0000ull);
    for (const KernelInfo &k : buildVio(cheap, 1, 160, 120)) {
        gpu.enqueueKernel(vio, k);
    }
    for (const KernelInfo &k :
         buildTimewarp(cheap, cheap.alloc(4ull * 160 * 90), 160, 90)) {
        gpu.enqueueKernel(atw, k);
    }
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    part.share[gfx] = 0.5;
    part.share[vio] = 0.25;
    part.share[atw] = 0.25;
    part.priorityStream = gfx;
    gpu.setPartition(part);
    ASSERT_TRUE(gpu.run(800'000'000ull).completed);
    for (StreamId s : {gfx, vio, atw}) {
        EXPECT_GT(gpu.stats().stream(s).instructions, 0u) << s;
        EXPECT_GT(gpu.streamFinishCycle(s), 0u);
    }
}

TEST(ThreeStreams, MpsSplitsSmsThreeWays)
{
    AddressSpace cheap;
    GpuConfig cfg = smallGpu();
    cfg.numSms = 6;
    cfg.finalize();
    Gpu gpu(cfg);
    const StreamId a = gpu.createStream("a");
    const StreamId b = gpu.createStream("b");
    const StreamId c = gpu.createStream("c");
    ComputeKernelDesc d;
    d.name = "k";
    d.ctas = 24;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.fp32Ops = 32;
    d.loads = {{MemPatternKind::Streaming, cheap.alloc(1 << 20), 1 << 20,
                4, 1, 128}};
    for (StreamId s : {a, b, c}) {
        gpu.enqueueKernel(s, buildComputeKernel(d));
    }
    PartitionConfig part;
    part.policy = PartitionPolicy::Mps;
    gpu.setPartition(part);

    struct Sampler : GpuController
    {
        std::array<std::set<uint32_t>, 3> smsUsed;
        std::array<StreamId, 3> ids;
        void
        onCycle(Gpu &gpu, Cycle) override
        {
            for (uint32_t s = 0; s < gpu.numSms(); ++s) {
                for (int i = 0; i < 3; ++i) {
                    if (gpu.sm(s).activeCtasOf(ids[i]) > 0) {
                        smsUsed[i].insert(s);
                    }
                }
            }
        }
    } sampler;
    sampler.ids = {a, b, c};
    gpu.addController(&sampler);
    ASSERT_TRUE(gpu.run(400'000'000ull).completed);
    // Each stream ran on a disjoint pair of SMs.
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(sampler.smsUsed[i].size(), 2u);
        for (int j = i + 1; j < 3; ++j) {
            for (uint32_t sm : sampler.smsUsed[i]) {
                EXPECT_EQ(sampler.smsUsed[j].count(sm), 0u);
            }
        }
    }
}


// ---------------------------------------------------------------------
// Fixed-function FIFO latency between shader stages (SIV): a fragment
// kernel becomes eligible only delay cycles after its vertex kernel
// completed.
// ---------------------------------------------------------------------

TEST(SubmitFrameTest, FixedFunctionDelayPostponesFragmentKernels)
{
    AddressSpace heap;
    const RenderSubmission frame = smallFrame(heap);

    struct Watcher : GpuController
    {
        std::map<KernelId, Cycle> launch;
        std::map<KernelId, Cycle> complete;
        void
        onKernelLaunch(Gpu &gpu, const KernelInfo &, KernelId id) override
        {
            launch[id] = gpu.now();
        }
        void
        onKernelComplete(Gpu &gpu, StreamId, KernelId id) override
        {
            complete[id] = gpu.now();
        }
    };

    auto run = [&](Cycle delay) {
        Gpu gpu(smallGpu());
        const StreamId gfx = gpu.createStream("graphics");
        const std::vector<KernelId> ids =
            submitFrame(gpu, gfx, frame, delay);
        Watcher watcher;
        gpu.addController(&watcher);
        EXPECT_TRUE(gpu.run(500'000'000ull).completed);
        Cycle min_gap = ~0ull;
        for (const auto &r : frame.reports) {
            if (r.fsKernelIndex == ~0u) {
                continue;
            }
            const Cycle vs_done = watcher.complete[ids[r.vsKernelIndex]];
            const Cycle fs_start = watcher.launch[ids[r.fsKernelIndex]];
            min_gap = std::min(min_gap, fs_start - vs_done);
        }
        return min_gap;
    };

    EXPECT_GE(run(500), 500u);
    EXPECT_LT(run(0), 500u);
}

// NN's small-batch grids cannot fill a large machine (paper §V-B).
TEST(WorkloadShape, NnUnderfillsBigGpu)
{
    AddressSpace heap;
    const auto kernels = buildNn(heap, 1);
    const GpuConfig rtx = GpuConfig::rtx3070();
    for (const auto &k : kernels) {
        EXPECT_LT(k.numCtas(), rtx.numSms)
            << "NN grid should not fill 46 SMs";
    }
}

} // namespace
} // namespace crisp
