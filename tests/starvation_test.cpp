#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>

#include "engine/engine_config.hpp"
#include "gpu/gpu.hpp"
#include "integrity/report.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------------
// Fabric-starvation regression tests, replaying the divergent-gather
// scenario that exposed the bug: with the memory phase draining SMs in
// fixed id order, low-id SMs flushed their whole retry queue into the
// L2 banks before high-id SMs got a slot, and the worst-case parked
// wait grew monotonically with the SM index — 66,522 cycles on sm 42
// of 46, against ~39 on sm 0. The round-robin arbiter bounds this.
// ---------------------------------------------------------------------

scenario::Scenario
loadRayTraversal()
{
    scenario::Scenario sc;
    scenario::ScenarioError err;
    const std::string path =
        std::string(CRISP_SCENARIO_DIR) + "/ray_traversal.json";
    EXPECT_TRUE(scenario::loadScenarioFile(path, sc, err)) << err.str();
    return sc;
}

std::string
statsDump(const StatsRegistry &stats)
{
    std::ostringstream os;
    for (const auto &[id, st] : stats.allStreams()) {
        os << id << ':' << st.cycles << ',' << st.instructions << ','
           << st.warpsLaunched << ',' << st.ctasLaunched << ','
           << st.kernelsCompleted << ',' << st.l1Accesses << ','
           << st.l1Hits << ',' << st.l1TexAccesses << ',' << st.l2Accesses
           << ',' << st.l2Hits << ',' << st.dramReads << ','
           << st.dramWrites << ',' << st.smemAccesses << ','
           << st.smemBankConflicts << ',' << st.firstCycle << ','
           << st.lastCycle << '\n';
    }
    return os.str();
}

TEST(Starvation, RayTraversalRetryWaitIsBounded)
{
    const scenario::Scenario sc = loadRayTraversal();
    Gpu gpu(scenario::gpuConfigFor(sc));
    AddressSpace heap;
    scenario::Materialized mat;
    scenario::submitScenario(sc, gpu, heap, mat);

    // Default integrity options include the bounded-stall invariant
    // (retryWaitBoundFactor 16 -> 16 * 46 SMs * 32 queue depth =
    // 23,552 cycles at this config): the run must complete without the
    // checker tripping.
    integrity::RunOptions opts;
    opts.checkInterval = 5'000;
    const auto r = gpu.run(50'000'000ull, opts);
    ASSERT_TRUE(r.completed);
    EXPECT_FALSE(r.hang.has_value());

    Cycle max_wait = 0;
    for (const Sm *sm : gpu.constSms()) {
        max_wait = std::max(max_wait, sm->maxFabricRetryWait());
    }
    // The scenario genuinely exercises the retry path...
    EXPECT_GT(max_wait, 0u);
    // ...and the arbiter bounds the worst parked wait. The residual is
    // bank-bandwidth saturation, not arbitration: quadrupling
    // bankBytesPerCycle collapses the wait to ~2.2k cycles while
    // quadrupling DRAM bandwidth changes nothing, i.e. the worst waiter
    // is a queue head taking its fair turn at a saturated bank slice.
    // Measured 15,989 under round-robin vs 66,522 under the fixed-order
    // drain; 20,000 leaves headroom for timing drift while still
    // failing loudly on any return of ordered draining.
    EXPECT_LT(max_wait, 20'000u);
}

TEST(Starvation, RayTraversalIsThreadCountInvariant)
{
    const auto run = [](uint32_t threads) {
        const scenario::Scenario sc = loadRayTraversal();
        Gpu gpu(scenario::gpuConfigFor(sc));
        engine::EngineConfig ec;
        ec.threads = threads;
        ec.allowOversubscribe = true;
        gpu.setEngine(ec);
        AddressSpace heap;
        scenario::Materialized mat;
        scenario::submitScenario(sc, gpu, heap, mat);
        const auto r = gpu.run(50'000'000ull);
        EXPECT_TRUE(r.completed);
        return std::make_tuple(r.cycles, statsDump(gpu.stats()));
    };

    // The arbiter runs in the serial memory phase of both engines, so
    // the grant order — and with it every stat — is byte-identical for
    // any worker count.
    const auto serial = run(1);
    EXPECT_EQ(serial, run(2));
    EXPECT_EQ(serial, run(4));
}

} // namespace
} // namespace crisp
