#include <gtest/gtest.h>

#include <atomic>

#include "audit/audit.hpp"
#include "gpu/gpu.hpp"
#include "workloads/compute.hpp"

namespace crisp
{
namespace
{

GpuConfig
tinyGpu(uint32_t sms = 4)
{
    GpuConfig cfg;
    cfg.name = "tiny";
    cfg.numSms = sms;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 4;
    cfg.l2.bankGeometry = {64 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

ComputeKernelDesc
simpleDesc(const std::string &name, uint32_t ctas)
{
    ComputeKernelDesc d;
    d.name = name;
    d.ctas = ctas;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.fp32Ops = 16;
    d.intOps = 4;
    d.loads = {{MemPatternKind::Streaming, 0x100000, 1 << 20, 4, 2, 128}};
    d.store = {MemPatternKind::Streaming, 0x200000, 1 << 20, 4, 1, 128};
    d.hasStore = true;
    return d;
}

TEST(GpuTest, ConfigPresetsMatchTableII)
{
    const GpuConfig rtx = GpuConfig::rtx3070();
    EXPECT_EQ(rtx.numSms, 46u);
    EXPECT_EQ(rtx.sm.registers, 65536u);
    EXPECT_EQ(rtx.sm.maxWarps, 64u);
    EXPECT_EQ(rtx.sm.numSchedulers, 4u);
    EXPECT_DOUBLE_EQ(rtx.memoryBandwidthGBs, 448.0);
    // 4 MB L2 total.
    EXPECT_EQ(rtx.l2.numBanks * rtx.l2.bankGeometry.sizeBytes,
              4ull * 1024 * 1024);

    const GpuConfig orin = GpuConfig::jetsonOrin();
    EXPECT_EQ(orin.numSms, 14u);
    EXPECT_DOUBLE_EQ(orin.memoryBandwidthGBs, 200.0);
    EXPECT_EQ(orin.l2.numBanks * orin.l2.bankGeometry.sizeBytes,
              4ull * 1024 * 1024);
    // Orin's bytes-per-cycle is lower despite the same L2 size.
    EXPECT_LT(orin.dramBytesPerCycle(), rtx.dramBytesPerCycle());
}

TEST(GpuTest, RunsOneKernelToCompletion)
{
    Gpu gpu(tinyGpu());
    const StreamId s = gpu.createStream("compute");
    gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("k", 8)));
    const auto result = gpu.run(2'000'000);
    ASSERT_TRUE(result.completed);
    const auto &st = gpu.stats().stream(s);
    EXPECT_EQ(st.ctasLaunched, 8u);
    EXPECT_EQ(st.kernelsCompleted, 1u);
    EXPECT_GT(st.instructions, 0u);
    EXPECT_GT(st.l1Accesses, 0u);
    EXPECT_GT(st.l2Accesses, 0u);
}

TEST(GpuTest, StreamKernelsExecuteInOrder)
{
    Gpu gpu(tinyGpu());
    const StreamId s = gpu.createStream("ordered");

    struct Watcher : GpuController
    {
        std::vector<KernelId> launches;
        std::vector<KernelId> completions;
        void
        onKernelLaunch(Gpu &, const KernelInfo &, KernelId id) override
        {
            launches.push_back(id);
        }
        void
        onKernelComplete(Gpu &, StreamId, KernelId id) override
        {
            completions.push_back(id);
        }
    } watcher;
    gpu.addController(&watcher);

    const KernelId k1 =
        gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("k1", 4)));
    const KernelId k2 =
        gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("k2", 4)));
    ASSERT_TRUE(gpu.run(2'000'000).completed);

    ASSERT_EQ(watcher.launches.size(), 2u);
    ASSERT_EQ(watcher.completions.size(), 2u);
    EXPECT_EQ(watcher.launches[0], k1);
    EXPECT_EQ(watcher.completions[0], k1);
    // The second kernel launches only after the first completes.
    EXPECT_EQ(watcher.launches[1], k2);
}

TEST(GpuTest, TwoStreamsBothComplete)
{
    Gpu gpu(tinyGpu());
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("compute");
    gpu.enqueueKernel(a, buildComputeKernel(simpleDesc("ka", 6)));
    gpu.enqueueKernel(b, buildComputeKernel(simpleDesc("kb", 6)));
    ASSERT_TRUE(gpu.run(2'000'000).completed);
    EXPECT_EQ(gpu.stats().stream(a).kernelsCompleted, 1u);
    EXPECT_EQ(gpu.stats().stream(b).kernelsCompleted, 1u);
    EXPECT_GT(gpu.streamFinishCycle(a), 0u);
    EXPECT_GT(gpu.streamFinishCycle(b), 0u);
}

/** Controller that samples per-stream SM residency every cycle. */
struct ResidencySampler : GpuController
{
    StreamId a;
    StreamId b;
    bool sawShared = false;       ///< Some SM ran both streams at once.
    bool sawAOnHighSm = false;    ///< Stream A resident on the top SM.
    bool sawBOnLowSm = false;     ///< Stream B resident on SM 0.

    void
    onCycle(Gpu &gpu, Cycle) override
    {
        for (uint32_t s = 0; s < gpu.numSms(); ++s) {
            const bool has_a = gpu.sm(s).activeCtasOf(a) > 0;
            const bool has_b = gpu.sm(s).activeCtasOf(b) > 0;
            sawShared |= has_a && has_b;
            if (s == gpu.numSms() - 1) {
                sawAOnHighSm |= has_a;
            }
            if (s == 0) {
                sawBOnLowSm |= has_b;
            }
        }
    }
};

TEST(GpuTest, MpsPartitionSeparatesSms)
{
    Gpu gpu(tinyGpu(4));
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("compute");
    gpu.enqueueKernel(a, buildComputeKernel(simpleDesc("ka", 16)));
    gpu.enqueueKernel(b, buildComputeKernel(simpleDesc("kb", 16)));
    PartitionConfig part;
    part.policy = PartitionPolicy::Mps;
    gpu.setPartition(part);

    ResidencySampler sampler;
    sampler.a = a;
    sampler.b = b;
    gpu.addController(&sampler);
    ASSERT_TRUE(gpu.run(2'000'000).completed);

    // Inter-SM partitioning: no SM ever runs both streams; stream A gets
    // the low half, stream B the high half.
    EXPECT_FALSE(sampler.sawShared);
    EXPECT_FALSE(sampler.sawAOnHighSm);
    EXPECT_FALSE(sampler.sawBOnLowSm);
}

TEST(GpuTest, FineGrainedSharesEverySm)
{
    Gpu gpu(tinyGpu(2));
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("compute");
    gpu.enqueueKernel(a, buildComputeKernel(simpleDesc("ka", 32)));
    gpu.enqueueKernel(b, buildComputeKernel(simpleDesc("kb", 32)));
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    gpu.setPartition(part);

    ResidencySampler sampler;
    sampler.a = a;
    sampler.b = b;
    gpu.addController(&sampler);
    ASSERT_TRUE(gpu.run(4'000'000).completed);
    EXPECT_TRUE(sampler.sawShared);
}

TEST(GpuTest, ExhaustivePolicyPrioritizesFirstStream)
{
    // One kernel big enough to fill the machine: with the default policy
    // the second stream only starts once stream 0 cannot issue more.
    Gpu gpu(tinyGpu(2));
    const StreamId a = gpu.createStream("first");
    const StreamId b = gpu.createStream("second");
    gpu.enqueueKernel(a, buildComputeKernel(simpleDesc("ka", 64)));
    gpu.enqueueKernel(b, buildComputeKernel(simpleDesc("kb", 4)));
    ASSERT_TRUE(gpu.run(4'000'000).completed);
    const auto &sa = gpu.stats().stream(a);
    const auto &sb = gpu.stats().stream(b);
    EXPECT_EQ(sa.ctasLaunched, 64u);
    EXPECT_EQ(sb.ctasLaunched, 4u);
    // Stream a started first.
    EXPECT_LE(sa.firstCycle, sb.firstCycle);
}

TEST(GpuTest, MigAppliesBankMasks)
{
    Gpu gpu(tinyGpu(4));
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("compute");
    gpu.enqueueKernel(a, buildComputeKernel(simpleDesc("ka", 8)));
    gpu.enqueueKernel(b, buildComputeKernel(simpleDesc("kb", 8)));
    PartitionConfig part;
    part.policy = PartitionPolicy::Mig;
    gpu.setPartition(part);
    ASSERT_TRUE(gpu.run(4'000'000).completed);
    EXPECT_EQ(gpu.stats().stream(a).kernelsCompleted, 1u);
    EXPECT_EQ(gpu.stats().stream(b).kernelsCompleted, 1u);
}

TEST(GpuTest, QuotaFromShare)
{
    Gpu gpu(tinyGpu());
    const SmQuota half = gpu.quotaFromShare(0.5);
    EXPECT_EQ(half.maxThreads, gpu.config().sm.maxWarps * kWarpSize / 2);
    EXPECT_EQ(half.maxRegisters, gpu.config().sm.registers / 2);
    EXPECT_EQ(half.maxSmemBytes, gpu.config().sm.smemBytes / 2);
}

TEST(GpuTest, PendingKernelsAndBusyStreams)
{
    Gpu gpu(tinyGpu());
    const StreamId s = gpu.createStream("q");
    gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("k1", 2)));
    gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("k2", 2)));
    EXPECT_EQ(gpu.pendingKernels(), 2u);
    EXPECT_EQ(gpu.busyStreams(), 1u);
    ASSERT_TRUE(gpu.run(2'000'000).completed);
    EXPECT_EQ(gpu.pendingKernels(), 0u);
    EXPECT_EQ(gpu.busyStreams(), 0u);
}

TEST(GpuTest, PerStreamStatsAreSeparate)
{
    Gpu gpu(tinyGpu());
    const StreamId a = gpu.createStream("a");
    const StreamId b = gpu.createStream("b");
    auto desc_a = simpleDesc("ka", 4);
    auto desc_b = simpleDesc("kb", 4);
    desc_b.fp32Ops = 64;  // b issues more instructions per thread
    gpu.enqueueKernel(a, buildComputeKernel(desc_a));
    gpu.enqueueKernel(b, buildComputeKernel(desc_b));
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    gpu.setPartition(part);
    ASSERT_TRUE(gpu.run(4'000'000).completed);
    EXPECT_GT(gpu.stats().stream(b).instructions,
              gpu.stats().stream(a).instructions);
}


TEST(GpuTest, KernelLogRecordsExecutionWindows)
{
    Gpu gpu(tinyGpu());
    const StreamId s = gpu.createStream("log");
    gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("k1", 4)));
    gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("k2", 4)));
    ASSERT_TRUE(gpu.run(2'000'000).completed);
    const auto &log = gpu.kernelLog();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].name, "k1");
    EXPECT_EQ(log[1].name, "k2");
    for (const auto &rec : log) {
        EXPECT_EQ(rec.ctas, 4u);
        EXPECT_GE(rec.completeCycle, rec.launchCycle);
    }
    // In-order stream: k2 launches after k1 completes.
    EXPECT_GE(log[1].launchCycle, log[0].completeCycle);
}

TEST(GpuTest, MidFlightCancellationLeavesCoherentState)
{
    Gpu gpu(tinyGpu());
    const StreamId s = gpu.createStream("compute");
    gpu.enqueueKernel(s, buildComputeKernel(simpleDesc("big", 64)));

    // A controller raises the cancellation token mid-kernel; the run
    // must stop at the next watchdog check, between ticks.
    struct Trigger : GpuController
    {
        std::atomic<bool> cancel{false};
        void
        onCycle(Gpu &, Cycle now) override
        {
            if (now >= 300) {
                cancel.store(true);
            }
        }
    } trigger;
    gpu.addController(&trigger);

    integrity::RunOptions opts;
    opts.checkInterval = 64;
    opts.cancel = &trigger.cancel;
    const auto r = gpu.run(2'000'000, opts);

    EXPECT_TRUE(r.cancelled);
    EXPECT_FALSE(r.completed);
    EXPECT_FALSE(r.hang.has_value());
    EXPECT_GE(r.cycles, 300u);
    // Stopped at a check boundary shortly after the token was raised,
    // not at the cycle budget.
    EXPECT_LT(r.cycles, 300u + 2 * opts.checkInterval);

    // The truncated run is partial but coherent: work was launched and
    // counted, nothing was fabricated as finished.
    const auto &st = gpu.stats().stream(s);
    EXPECT_GT(st.instructions, 0u);
    EXPECT_GT(st.ctasLaunched, 0u);
    EXPECT_LE(st.ctasLaunched, 64u);
    EXPECT_EQ(st.kernelsCompleted, 0u);

    // Every cross-layer counter identity holds at the truncation point.
    std::vector<integrity::InvariantViolation> violations;
    audit::auditAll(gpu.stats(), gpu.constSms(), gpu.l2(), r.cycles,
                    violations);
    for (const auto &v : violations) {
        ADD_FAILURE() << v.check << ": " << v.detail;
    }
}

} // namespace
} // namespace crisp
